package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"videodb/internal/interval"
)

func TestBeforeCases(t *testing.T) {
	cases := []struct {
		name string
		g, h interval.Generalized
		want bool
	}{
		{"gap", interval.FromPairs(0, 1), interval.FromPairs(3, 4), true},
		{"touch closed-closed", interval.FromPairs(0, 1), interval.FromPairs(1, 2), false},
		{"touch open right", interval.New(interval.ClosedOpen(0, 1)), interval.FromPairs(1, 2), true},
		{"touch open left", interval.FromPairs(0, 1), interval.New(interval.OpenClosed(1, 2)), true},
		{"overlap", interval.FromPairs(0, 5), interval.FromPairs(3, 8), false},
		{"interleaved fragments", interval.FromPairs(0, 1, 10, 11), interval.FromPairs(5, 6), false},
		{"multi before", interval.FromPairs(0, 1, 2, 3), interval.FromPairs(5, 6, 8, 9), true},
		{"empty left", interval.Empty(), interval.FromPairs(0, 1), true},
		{"empty right", interval.FromPairs(0, 1), interval.Empty(), true},
		{"same", interval.FromPairs(0, 1), interval.FromPairs(0, 1), false},
	}
	for _, tc := range cases {
		for name, c := range map[string]Comparer{"algebraic": Algebraic{}, "constraint": Constraint{}} {
			if got := c.Before(tc.g, tc.h); got != tc.want {
				t.Errorf("%s/%s: Before(%v, %v) = %v, want %v", tc.name, name, tc.g, tc.h, got, tc.want)
			}
		}
	}
}

func TestWithinCases(t *testing.T) {
	g := interval.FromPairs(10, 20, 30, 40)
	cases := []struct {
		w    interval.Span
		want bool
	}{
		{interval.Closed(0, 50), true},
		{interval.Closed(10, 40), true},
		{interval.Open(10, 40), false}, // endpoints 10 and 40 escape
		{interval.Closed(10, 35), false},
		{interval.Closed(15, 50), false},
	}
	for _, tc := range cases {
		for name, c := range map[string]Comparer{"algebraic": Algebraic{}, "constraint": Constraint{}} {
			if got := c.Within(g, tc.w); got != tc.want {
				t.Errorf("%s: Within(%v, %v) = %v, want %v", name, g, tc.w, got, tc.want)
			}
		}
	}
}

func genG(r *rand.Rand) interval.Generalized {
	n := r.Intn(4)
	spans := make([]interval.Span, n)
	for i := range spans {
		lo := float64(r.Intn(15) - 5)
		spans[i] = interval.Span{
			Lo: lo, Hi: lo + float64(r.Intn(6)),
			LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0,
		}
	}
	return interval.New(spans...)
}

// TestEvaluatorsAgree is the E8 correctness property: the point-based
// (constraint) and interval-based (algebraic) evaluators coincide on all
// relations.
func TestEvaluatorsAgree(t *testing.T) {
	a, c := Algebraic{}, Constraint{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, h := genG(r), genG(r)
		w := interval.Span{Lo: float64(r.Intn(10) - 5), Hi: float64(r.Intn(10)), LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0}
		if a.Before(g, h) != c.Before(g, h) {
			t.Logf("Before disagreement: %v vs %v", g, h)
			return false
		}
		if a.Overlaps(g, h) != c.Overlaps(g, h) {
			t.Logf("Overlaps disagreement: %v vs %v", g, h)
			return false
		}
		if a.Contains(g, h) != c.Contains(g, h) {
			t.Logf("Contains disagreement: %v vs %v", g, h)
			return false
		}
		if a.Equals(g, h) != c.Equals(g, h) {
			t.Logf("Equals disagreement: %v vs %v", g, h)
			return false
		}
		if a.Within(g, w) != c.Within(g, w) {
			t.Logf("Within disagreement: %v in %v", g, w)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBeforeAgainstPointSemantics(t *testing.T) {
	// Before means: for all x ∈ g, y ∈ h: x < y. Check against sampling.
	a := Algebraic{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, h := genG(r), genG(r)
		claim := a.Before(g, h)
		for x := -6.0; x <= 12; x += 0.5 {
			if !g.Contains(x) {
				continue
			}
			for y := -6.0; y <= 12; y += 0.5 {
				if h.Contains(y) && x >= y && claim {
					return false // counterexample to claimed Before
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHullRelation(t *testing.T) {
	g := interval.FromPairs(0, 1, 5, 6)
	h := interval.FromPairs(2, 3)
	// Hull of g is [0,6], which contains [2,3] even though g's exact
	// point set does not — the convex coarsening interval-only systems
	// are stuck with.
	if got := HullRelation(g, h); got != interval.RelContains {
		t.Errorf("HullRelation = %v, want contains", got)
	}
	if (Algebraic{}).Contains(g, h) {
		t.Error("exact containment must be false: h sits in g's gap")
	}
	if got := HullRelation(interval.Empty(), h); got != interval.RelInvalid {
		t.Errorf("empty hull relation = %v", got)
	}
}

func TestMeets(t *testing.T) {
	cases := []struct {
		name string
		g, h interval.Generalized
		want bool
	}{
		{"seamless half-open", interval.New(interval.ClosedOpen(0, 10)),
			interval.New(interval.ClosedOpen(10, 20)), true},
		{"closed touch shares a point", interval.FromPairs(0, 10), interval.FromPairs(10, 20), false},
		{"gap", interval.FromPairs(0, 5), interval.FromPairs(10, 20), false},
		{"overlap", interval.FromPairs(0, 15), interval.FromPairs(10, 20), false},
		{"uncovered touching point", interval.New(interval.ClosedOpen(0, 10)),
			interval.New(interval.OpenClosed(10, 20)), false},
		{"fragmented left", interval.New(interval.Closed(0, 1), interval.ClosedOpen(5, 10)),
			interval.New(interval.ClosedOpen(10, 20)), true},
		{"empty left", interval.Empty(), interval.FromPairs(0, 1), false},
		{"empty right", interval.FromPairs(0, 1), interval.Empty(), false},
		{"wrong order", interval.New(interval.ClosedOpen(10, 20)),
			interval.New(interval.ClosedOpen(0, 10)), false},
	}
	for _, tc := range cases {
		if got := Meets(tc.g, tc.h); got != tc.want {
			t.Errorf("%s: Meets(%v, %v) = %v, want %v", tc.name, tc.g, tc.h, got, tc.want)
		}
	}
}
