// Package temporal provides two interchangeable evaluators for temporal
// relationships between generalized intervals, mirroring the discussion
// in Sections 1–2 of the paper (and Toman's PODS'96 point-vs-interval
// comparison, reference [39]):
//
//   - Algebraic evaluates relations directly on the canonical
//     generalized-interval representation (the interval-based approach of
//     related systems such as VideoStar, with explicit operators like
//     equals/before/overlaps);
//   - Constraint evaluates the same relations by translating intervals to
//     dense-order constraint formulas and using satisfiability and
//     entailment (the paper's point-based approach).
//
// The two must agree on every input; experiment E8 measures their
// relative cost, and the property tests in this package verify the
// agreement.
package temporal

import (
	"videodb/internal/constraint"
	"videodb/internal/interval"
)

// Comparer decides temporal relationships between generalized intervals.
type Comparer interface {
	// Before reports whether every instant of g strictly precedes every
	// instant of h (vacuously true if either is empty).
	Before(g, h interval.Generalized) bool
	// Overlaps reports whether g and h share an instant.
	Overlaps(g, h interval.Generalized) bool
	// Contains reports whether g contains every instant of h — the
	// paper's contains rule (h.duration ⇒ g.duration).
	Contains(g, h interval.Generalized) bool
	// Equals reports whether g and h contain the same instants.
	Equals(g, h interval.Generalized) bool
	// Within reports whether g lies entirely inside the window w.
	Within(g interval.Generalized, w interval.Span) bool
}

// Algebraic is the interval-based evaluator: relations computed on the
// normalized span representation.
type Algebraic struct{}

// Before implements Comparer.
func (Algebraic) Before(g, h interval.Generalized) bool {
	if g.IsEmpty() || h.IsEmpty() {
		return true
	}
	last := g.Spans()[len(g.Spans())-1]
	first := h.Spans()[0]
	if last.Hi < first.Lo {
		return true
	}
	// Touching bound: strict precedence unless both endpoints include the
	// touching instant.
	return last.Hi == first.Lo && (last.HiOpen || first.LoOpen)
}

// Overlaps implements Comparer.
func (Algebraic) Overlaps(g, h interval.Generalized) bool { return g.Overlaps(h) }

// Contains implements Comparer.
func (Algebraic) Contains(g, h interval.Generalized) bool { return g.ContainsGen(h) }

// Equals implements Comparer.
func (Algebraic) Equals(g, h interval.Generalized) bool { return g.Equal(h) }

// Within implements Comparer.
func (Algebraic) Within(g interval.Generalized, w interval.Span) bool {
	return interval.New(w).ContainsGen(g)
}

// Constraint is the point-based evaluator: intervals become dense-order
// formulas over time variables and relations become satisfiability or
// entailment questions for the constraint solver.
type Constraint struct{}

// Before implements Comparer: F_g(x) ∧ F_h(y) ⇒ x < y, a genuinely
// two-variable entailment decided by the point-algebra solver.
func (Constraint) Before(g, h interval.Generalized) bool {
	fg := constraint.FromInterval("x", g)
	fh := constraint.FromInterval("y", h)
	lt := constraint.FromAtom(constraint.NewAtom(constraint.V("x"), constraint.Lt, constraint.V("y")))
	return fg.And(fh).Entails(lt)
}

// Overlaps implements Comparer: F_g(t) ∧ F_h(t) satisfiable.
func (Constraint) Overlaps(g, h interval.Generalized) bool {
	fg := constraint.FromInterval("t", g)
	fh := constraint.FromInterval("t", h)
	return fg.And(fh).Satisfiable()
}

// Contains implements Comparer: F_h ⇒ F_g.
func (Constraint) Contains(g, h interval.Generalized) bool {
	fg := constraint.FromInterval("t", g)
	fh := constraint.FromInterval("t", h)
	return fh.Entails(fg)
}

// Equals implements Comparer: mutual entailment.
func (Constraint) Equals(g, h interval.Generalized) bool {
	fg := constraint.FromInterval("t", g)
	fh := constraint.FromInterval("t", h)
	return fg.Equivalent(fh)
}

// Within implements Comparer: F_g ⇒ F_w, the exact query shape of the
// paper's "does the object appear in the temporal frame [a,b]".
func (Constraint) Within(g interval.Generalized, w interval.Span) bool {
	fg := constraint.FromInterval("t", g)
	fw := constraint.FromInterval("t", interval.New(w))
	return fg.Entails(fw)
}

// Meets reports whether g ends exactly where h begins: they share no
// instant, there is no gap between g's last fragment and h's first, and
// every instant of g precedes every instant of h. Empty operands never
// meet anything.
func Meets(g, h interval.Generalized) bool {
	if g.IsEmpty() || h.IsEmpty() || g.Overlaps(h) {
		return false
	}
	if !(Algebraic{}).Before(g, h) {
		return false
	}
	last := g.Spans()[len(g.Spans())-1]
	first := h.Spans()[0]
	return interval.Meets(last, first)
}

// HullRelation classifies the Allen relation between the hulls of two
// generalized intervals (the coarse interval-based summary related
// systems expose when intervals must be convex).
func HullRelation(g, h interval.Generalized) interval.Relation {
	return interval.Classify(g.Hull(), h.Hull())
}
