package datalog

import (
	"strings"
	"testing"

	"videodb/internal/object"
	"videodb/internal/store"
)

func TestProvenanceChain(t *testing.T) {
	s := store.New()
	s.AddFact(store.NewFact("next", object.Str("a"), object.Str("b")))
	s.AddFact(store.NewFact("next", object.Str("b"), object.Str("c")))
	p := NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))).Named("base"),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))).Named("step"),
	)
	e := mustEngine(t, s, p, TraceProvenance())
	out, err := e.Why("reach", object.Str("a"), object.Str("c"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`reach("a", "c")  [by step]`,
		`reach("a", "b")  [by base]`,
		`next("a", "b")  [fact]`,
		`next("b", "c")  [fact]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Why output missing %q:\n%s", want, out)
		}
	}

	// Derivation structure is inspectable programmatically.
	d := e.DerivationOf("reach", object.Str("a"), object.Str("c"))
	if d == nil || d.Rule != "step" || len(d.Premises) != 2 {
		t.Fatalf("derivation = %+v", d)
	}
	if d.Premises[0].Pred != "reach" || d.Premises[1].Pred != "next" {
		t.Errorf("premises = %v", d.Premises)
	}

	// EDB facts and unknown tuples have no derivation.
	if e.DerivationOf("next", object.Str("a"), object.Str("b")) != nil {
		t.Error("EDB fact should have no derivation record")
	}
	out, err = e.Why("reach", object.Str("c"), object.Str("a"))
	if err != nil || !strings.Contains(out, "[unknown]") {
		t.Errorf("unknown tuple: %q, %v", out, err)
	}
}

func TestProvenanceConditions(t *testing.T) {
	s := ropeStore(t)
	p := NewProgram(NewRule(
		Rel("q", Var("G")),
		Interval(Var("G")),
		Member(TermOp(Oid("o1")), AttrOp(Var("G"), "entities")),
	).Named("find"))
	e := mustEngine(t, s, p, TraceProvenance())
	out, err := e.Why("q", object.Ref("gi1"))
	if err != nil {
		t.Fatal(err)
	}
	// Conditions show with the variable substituted.
	if !strings.Contains(out, "Interval(gi1)") || !strings.Contains(out, "o1 in gi1.entities") {
		t.Errorf("conditions not substituted:\n%s", out)
	}
}

func TestWhyRequiresTracing(t *testing.T) {
	e := mustEngine(t, store.New(), NewProgram())
	if _, err := e.Why("p", object.Num(1)); err == nil {
		t.Error("Why without TraceProvenance should fail")
	}
}

func TestSubstituteWordBoundaries(t *testing.T) {
	b := bindings{"X": object.Num(1), "X1": object.Num(2)}
	lit := Cmp(TermOp(Var("X1")), 0, TermOp(Var("X")))
	got := substitute(lit, b)
	if got != "2 < 1" {
		t.Errorf("substitute = %q", got)
	}
}
