package datalog

import (
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

func temporalStore(t testing.TB) *store.Store {
	t.Helper()
	s := store.New()
	s.Put(object.NewInterval("early", interval.New(interval.ClosedOpen(0, 10))))
	s.Put(object.NewInterval("mid", interval.New(interval.ClosedOpen(10, 20))))
	s.Put(object.NewInterval("late", interval.New(interval.ClosedOpen(30, 40))))
	s.Put(object.NewInterval("wide", interval.New(interval.ClosedOpen(5, 35))))
	s.Put(object.NewInterval("frag", interval.FromPairs(2, 4, 32, 34)))
	return s
}

func TestTemporalAtoms(t *testing.T) {
	s := temporalStore(t)
	cases := []struct {
		rel  TemporalRel
		l, r string
		want bool
	}{
		{TempBefore, "early", "late", true},
		{TempBefore, "early", "mid", true}, // [0,10) precedes [10,20): no shared instant
		{TempBefore, "mid", "early", false},
		{TempAfter, "late", "early", true},
		{TempMeets, "early", "mid", true},
		{TempMeets, "early", "late", false},
		{TempMetBy, "mid", "early", true},
		{TempOverlaps, "wide", "mid", true},
		{TempOverlaps, "early", "late", false},
		{TempEquals, "early", "early", true},
		{TempEquals, "early", "mid", false},
		{TempContains, "wide", "mid", true},
		{TempContains, "wide", "frag", false}, // frag starts at 2, before wide
		{TempDuring, "mid", "wide", true},
	}
	for _, tc := range cases {
		p := NewProgram(NewRule(
			Rel("q", Oid(object.OID(tc.l))),
			Interval(Oid(object.OID(tc.l))),
			TemporalAtom{Rel: tc.rel,
				Left:  AttrOp(Oid(object.OID(tc.l)), "duration"),
				Right: AttrOp(Oid(object.OID(tc.r)), "duration")},
		))
		e := mustEngine(t, s, p)
		got, err := e.Ask(Rel("q", Oid(object.OID(tc.l))))
		if err != nil {
			t.Fatalf("%s %s %s: %v", tc.l, tc.rel, tc.r, err)
		}
		if got != tc.want {
			t.Errorf("%s %s %s = %v, want %v", tc.l, tc.rel, tc.r, got, tc.want)
		}
	}
}

func TestTemporalAtomFixesBeforeSemantics(t *testing.T) {
	// "before" between touching half-open intervals: [0,10) and [10,20)
	// share no instant and every instant of the first precedes the
	// second, so before holds — and meets also holds (the seamless case).
	s := temporalStore(t)
	p := NewProgram(NewRule(
		Rel("b", Var("X"), Var("Y")),
		Interval(Var("X")), Interval(Var("Y")),
		Temporal(AttrOp(Var("X"), "duration"), TempBefore, AttrOp(Var("Y"), "duration")),
	))
	e := mustEngine(t, s, p)
	ok, err := e.Ask(Rel("b", Oid("early"), Oid("mid")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("[0,10) should be before [10,20) over a dense order")
	}
}

func TestTemporalAtomAgainstConstant(t *testing.T) {
	s := temporalStore(t)
	win := object.Temporal(interval.FromPairs(25, 50))
	p := NewProgram(NewRule(
		Rel("q", Var("G")),
		Interval(Var("G")),
		Temporal(AttrOp(Var("G"), "duration"), TempBefore, TermOp(Const(win))),
	))
	e := mustEngine(t, s, p)
	wantOIDs(t, oidResults(t, e, Rel("q", Var("G"))), "early", "mid")
}

func TestTemporalAtomNonTemporalOperand(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("e").Set("name", object.Str("x")))
	p := NewProgram(NewRule(
		Rel("q", Var("O")),
		ObjectAtom(Var("O")),
		Temporal(AttrOp(Var("O"), "name"), TempBefore, AttrOp(Var("O"), "name")),
	))
	e := mustEngine(t, s, p)
	res, err := e.Query(Rel("q", Var("O")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("non-temporal operands must not satisfy temporal atoms: %v", res)
	}
}
