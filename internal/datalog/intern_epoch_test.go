package datalog

import (
	"fmt"
	"sync"
	"testing"

	"videodb/internal/object"
)

// Regression test for the unbounded global value interner: before the
// epoch mechanism, every value a process ever interned stayed in the
// table forever, so a server that opened and closed databases leaked
// the union of all their constants. Now the table resets when the last
// acquirer releases; repeated open/intern/close cycles must not grow it.
//
// This test must live in package datalog: here we can guarantee no other
// acquirer is active, so the release actually drops the epoch to zero.
// (core-package tests routinely leave DBs un-Closed, pinning the epoch.)
func TestInternerEpochReset(t *testing.T) {
	// Earlier tests in this package intern values without acquiring;
	// flush them so every cycle starts from a clean table.
	AcquireInterner()
	ReleaseInterner()

	const perCycle = 1000
	var sizes []int
	for cycle := 0; cycle < 5; cycle++ {
		AcquireInterner()
		for i := 0; i < perCycle; i++ {
			valueID(object.Str(fmt.Sprintf("cycle%d-value%d", cycle, i)))
		}
		got := InternStats().Values
		if got < perCycle {
			t.Fatalf("cycle %d: interned %d values but table reports %d", cycle, perCycle, got)
		}
		sizes = append(sizes, got)
		ReleaseInterner()
	}
	// Each cycle interns distinct strings; without the epoch reset the
	// table would grow by ~perCycle per cycle. With it, every cycle
	// starts empty and ends at the same size.
	for i, n := range sizes {
		if n != sizes[0] {
			t.Fatalf("intern table grew across open/close cycles: %v", sizes)
		}
		_ = i
	}
	if InternStats().Values != 0 {
		t.Fatalf("table not empty after last release: %d values", InternStats().Values)
	}
}

// Ids stay stable while any acquirer is live: an overlapping acquire
// must see the same id for the same value, and the reset only happens
// after the last release.
func TestInternerEpochOverlap(t *testing.T) {
	AcquireInterner()
	idA := valueID(object.Str("pinned"))
	AcquireInterner() // second DB opens
	ReleaseInterner() // first DB closes — epoch still pinned
	if got := valueID(object.Str("pinned")); got != idA {
		t.Fatalf("id changed while epoch pinned: %d vs %d", got, idA)
	}
	if InternStats().Values == 0 {
		t.Fatal("table reset while an acquirer was still live")
	}
	ReleaseInterner() // last release: reset
	if got := InternStats().Values; got != 0 {
		t.Fatalf("table has %d values after last release", got)
	}
}

// Concurrent interning against acquire/release churn must be safe
// (valueID loads the epoch pointer atomically). Run under -race.
func TestInternerEpochConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				AcquireInterner()
				valueID(object.Str(fmt.Sprintf("w%d-%d", w, i%100)))
				valueID(object.Num(float64(i % 50)))
				ReleaseInterner()
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		_ = InternStats()
	}
	close(stop)
	wg.Wait()
}
