package datalog

import "time"

// Query profiling: the EXPLAIN ANALYZE companion to Explain. An engine
// built with WithProfiling records, while the fixpoint runs, where the
// evaluation spent its time — per rule (wall time, task evaluations,
// firings, newly derived tuples) and per TP round (wall time, tasks,
// firings, derived) — plus the solver-budget consumption and the memo
// traffic of the run. The record is assembled into an immutable Profile
// when the run ends and published under the engine's stats lock, so
// concurrent readers never observe a half-built profile.
//
// Profiling is opt-in because the per-task time.Now calls, while cheap,
// are not free on the hot path; an unprofiled engine pays only a nil
// check per task.

// Profile reports where a fixpoint computation spent its time.
//
// Timing semantics: rule and round times are wall-clock. Under serial
// evaluation the rule times of a round sum to at most that round's time
// (the round also pays advance/boundary work). Under Parallel(n) the
// per-rule times are summed across workers, so they can exceed the
// round's wall time — they then measure aggregate compute, not latency.
type Profile struct {
	Rules  []RuleProfile  `json:"rules"`
	Rounds []RoundProfile `json:"rounds"`

	// Total is the wall time of the whole fixpoint, including snapshot
	// and cache warming outside any round.
	Total time.Duration `json:"totalNs"`

	// SolverSteps is the number of elementary constraint-solver steps the
	// run consumed from its budget (compare MaxSolverSteps).
	SolverSteps int64 `json:"solverSteps"`

	// MemoHits and MemoMisses are the solver-memo lookups attributed to
	// this run (the same per-engine counters RunStats reports).
	MemoHits   uint64 `json:"memoHits"`
	MemoMisses uint64 `json:"memoMisses"`
}

// RuleProfile is the profile of one rule across the whole run.
type RuleProfile struct {
	Rule    string        `json:"rule"`    // rendered rule
	Stratum int           `json:"stratum"` // stratum the rule evaluates in
	Evals   int           `json:"evals"`   // (rule, delta) tasks executed
	Firings int           `json:"firings"` // successful head instantiations
	Derived int           `json:"derived"` // tuples this rule newly derived
	Time    time.Duration `json:"ns"`      // cumulative evaluation wall time
}

// RoundProfile is the profile of one TP round.
type RoundProfile struct {
	Round   int           `json:"round"`   // 1-based, global across strata
	Stratum int           `json:"stratum"` // stratum the round ran in
	Tasks   int           `json:"tasks"`   // (rule, delta) tasks evaluated
	Firings int           `json:"firings"` // head instantiations this round
	Derived int           `json:"derived"` // tuples newly derived this round
	Time    time.Duration `json:"ns"`      // round wall time (tasks + boundary)
}

// WithProfiling enables the per-rule / per-round profiler for this
// engine's Run; read the result with Profile after the run completes.
func WithProfiling() Option { return func(e *Engine) { e.profiling = true } }

// Profile returns the profile of the completed Run, or nil if the engine
// was not built with WithProfiling or has not finished running. It is
// safe to call concurrently with Run.
func (e *Engine) Profile() *Profile {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.profile
}

// profileState accumulates per-rule counters while a profiled run
// executes. The run goroutine owns the engine's instance; each parallel
// worker accumulates into a private instance that merges at the round
// barrier, so no counter is ever written concurrently.
type profileState struct {
	ruleTime    []time.Duration
	ruleEvals   []int
	ruleFirings []int
	ruleDerived []int
	rounds      []RoundProfile
}

func newProfileState(nRules int) *profileState {
	return &profileState{
		ruleTime:    make([]time.Duration, nRules),
		ruleEvals:   make([]int, nRules),
		ruleFirings: make([]int, nRules),
		ruleDerived: make([]int, nRules),
	}
}

func (p *profileState) addEval(rule int, d time.Duration) {
	p.ruleTime[rule] += d
	p.ruleEvals[rule]++
}

// mergeWorker folds a parallel worker's private counters into the run's.
// Worker states never carry rounds; those are recorded at the barrier.
func (p *profileState) mergeWorker(w *profileState) {
	for i := range p.ruleTime {
		p.ruleTime[i] += w.ruleTime[i]
		p.ruleEvals[i] += w.ruleEvals[i]
		p.ruleFirings[i] += w.ruleFirings[i]
	}
}

// evalTask evaluates one (rule, delta) task, timing it when profiling.
func (e *Engine) evalTask(t evalTask) error {
	if e.prof == nil {
		return e.evalRule(t.ruleIdx, t.delta)
	}
	start := time.Now()
	err := e.evalRule(t.ruleIdx, t.delta)
	e.prof.addEval(t.ruleIdx, time.Since(start))
	return err
}

// buildProfile assembles and publishes the immutable Profile at the end
// of a profiled run (called from the run goroutine's final defer, after
// the stats have their memo counts).
func (e *Engine) buildProfile(total time.Duration) {
	p := &Profile{
		Rules:       make([]RuleProfile, len(e.prog.Rules)),
		Rounds:      append([]RoundProfile{}, e.prof.rounds...),
		Total:       total,
		SolverSteps: e.budget.Spent(),
		MemoHits:    e.stats.MemoHits,
		MemoMisses:  e.stats.MemoMisses,
	}
	for i, r := range e.prog.Rules {
		p.Rules[i] = RuleProfile{
			Rule:    r.String(),
			Stratum: e.ruleStrata[i],
			Evals:   e.prof.ruleEvals[i],
			Firings: e.prof.ruleFirings[i],
			Derived: e.prof.ruleDerived[i],
			Time:    e.prof.ruleTime[i],
		}
	}
	e.statsMu.Lock()
	e.profile = p
	e.statsMu.Unlock()
}
