package datalog

import (
	"fmt"
	"sort"

	"videodb/internal/object"
)

// Result is one answer to a query: the tuple of values matching the query
// atom's argument positions.
type Result struct {
	Values []object.Value
}

// String renders the result tuple.
func (r Result) String() string { return rowKey(r.Values) }

// noteGoal registers a query-goal predicate. Goals registered before Run
// are pre-warmed into the EDB cache (warmGoalPreds); goals that appear
// only later fall back to the locked accessor below.
func (e *Engine) noteGoal(pred string) {
	e.goalMu.Lock()
	e.goalPreds[pred] = true
	e.goalMu.Unlock()
}

// edbRowsShared reads EDB rows under the goal lock: queries may run
// concurrently once Run has completed, and a goal predicate that was not
// pre-warmed must not lazily write the shared cache unsynchronized.
func (e *Engine) edbRowsShared(pred string) []row {
	e.goalMu.Lock()
	defer e.goalMu.Unlock()
	return e.edbRows(pred)
}

// Rows returns every tuple of the predicate (extensional facts plus
// derived tuples) in canonical order, computing the fixpoint first if
// necessary.
func (e *Engine) Rows(pred string) ([][]object.Value, error) {
	e.noteGoal(pred)
	if err := e.Run(); err != nil {
		return nil, err
	}
	var rows []row
	if rel, ok := e.derived[pred]; ok {
		rows = rel.sortedRows() // EDB facts were seeded into the relation
	} else {
		rows = append([]row(nil), e.edbRowsShared(pred)...)
		sort.Slice(rows, func(i, j int) bool { return rowKey(rows[i]) < rowKey(rows[j]) })
	}
	out := make([][]object.Value, len(rows))
	for i, r := range rows {
		out[i] = append([]object.Value(nil), r...)
	}
	return out, nil
}

// Query answers a query ?q(s) (Definition 13): the pattern's constants
// must match and its variables are projected out. Repeated variables in
// the pattern enforce equality. Results are distinct tuples of the
// pattern's variable bindings in first-occurrence order, canonically
// sorted.
func (e *Engine) Query(q RelAtom) ([]Result, error) {
	e.noteGoal(q.Pred)
	if err := e.Run(); err != nil {
		return nil, err
	}
	for _, t := range q.Args {
		if t.IsConcat() {
			return nil, fmt.Errorf("datalog: constructive terms are not allowed in queries")
		}
	}
	var varOrder []string
	seenVar := map[string]bool{}
	for _, t := range q.Args {
		if t.IsVar() && !seenVar[t.Name()] {
			seenVar[t.Name()] = true
			varOrder = append(varOrder, t.Name())
		}
	}

	rows, err := e.Rows(q.Pred)
	if err != nil {
		return nil, err
	}
	var out []Result
	seen := map[string]bool{}
	b := make(bindings)
	for _, tuple := range rows {
		if len(tuple) != len(q.Args) {
			continue
		}
		undo, ok := unifyArgs(q.Args, tuple, b)
		if ok {
			vals := make([]object.Value, len(varOrder))
			for i, v := range varOrder {
				vals[i] = b[v]
			}
			if k := rowKey(vals); !seen[k] {
				seen[k] = true
				out = append(out, Result{Values: vals})
			}
		}
		for _, v := range undo {
			delete(b, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return rowKey(out[i].Values) < rowKey(out[j].Values) })
	return out, nil
}

// QueryOIDs runs Query and extracts single-column object references,
// failing if the query has a different shape.
func (e *Engine) QueryOIDs(q RelAtom) ([]object.OID, error) {
	res, err := e.Query(q)
	if err != nil {
		return nil, err
	}
	out := make([]object.OID, 0, len(res))
	for _, r := range res {
		if len(r.Values) != 1 {
			return nil, fmt.Errorf("datalog: QueryOIDs needs a single-variable query, got %d columns", len(r.Values))
		}
		oid, ok := r.Values[0].AsRef()
		if !ok {
			return nil, fmt.Errorf("datalog: QueryOIDs: non-reference answer %s", r.Values[0])
		}
		out = append(out, oid)
	}
	return out, nil
}

// Ask reports whether the (possibly ground) query has at least one
// answer.
func (e *Engine) Ask(q RelAtom) (bool, error) {
	res, err := e.Query(q)
	if err != nil {
		return false, err
	}
	return len(res) > 0, nil
}
