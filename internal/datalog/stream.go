package datalog

import (
	"fmt"

	"videodb/internal/object"
	"videodb/internal/store"
)

// Streaming execution: the default evaluator pulls tuples through a
// rule's compiled plan with composable iterator operators instead of the
// recursive join kernel. Each plan step becomes an operator with
// open/next/close behavior over a shared frame:
//
//   scan/index-probe (stepRel)   — cursor over an extent, delta, or a
//                                  constant-pushdown store scan, probing
//                                  the interned join index when bound
//                                  positions make it selective;
//   class enumeration            — cursor over the class's candidate
//                                  oids, narrowed by the entity index or
//                                  a pushed interval window;
//   check/assign/filter          — one-shot operators that pass or fail
//                                  the current binding.
//
// The pipeline is demand-driven: a tuple flows to the head as soon as
// every operator accepts it, so no per-literal intermediate relation is
// materialized, and cancellation (tick) cuts mid-stream. The executor is
// exactly equivalent to the recursive kernel — same plan order, same
// matches, same error surfaces — which the differential oracle asserts;
// WithoutStreaming selects the recursive kernel as the materializing
// ablation.

// opState is the runtime state of one operator.
type opState struct {
	step *planStep

	// stepRel cursor
	rows   []row
	vids   [][]uint64 // carried value ids, aligned with rows (may be nil)
	ids    []int      // posting list when probing the join index
	useIDs bool
	i      int

	// stepClassEnum cursor
	oids []object.OID

	// one-shot operators
	done bool
}

// runPipeline evaluates one (rule, delta) task by pulling tuples through
// the compiled steps.
func (e *Engine) runPipeline(cr *compiledRule, steps []planStep, fr *frame) error {
	n := len(steps)
	if n == 0 {
		return e.fireHead(cr, fr)
	}
	ops := make([]opState, n)
	for i := range ops {
		ops[i].step = &steps[i]
	}
	d := 0
	e.openOp(&ops[0], fr)
	for d >= 0 {
		ok, err := e.nextOp(cr, &ops[d], fr)
		if err != nil {
			return err
		}
		if !ok {
			d--
			continue
		}
		if d == n-1 {
			if err := e.fireHead(cr, fr); err != nil {
				return err
			}
			continue
		}
		d++
		e.openOp(&ops[d], fr)
	}
	return nil
}

// openOp (re)initializes an operator for the current outer binding.
func (e *Engine) openOp(op *opState, fr *frame) {
	st := op.step
	op.i = 0
	op.done = false
	op.useIDs = false
	op.ids = nil
	switch st.kind {
	case stepRel:
		var rows []row
		var vids [][]uint64
		var rel *relation
		probes := st.probes
		if st.constSig != "" && !st.useDelta && !e.idb[st.pred] {
			// Constant pushdown: scan the store once with the constant
			// bindings applied inside its lock, and cache the (much
			// smaller) result relation; only variable-bound positions are
			// probe candidates on it.
			rel = e.edbFiltered(st)
			rows, vids = rel.rows, rel.vids
			probes = st.varProbes
		} else {
			rows, vids, rel = e.relAccessIDs(st.pred, st.useDelta)
		}
		op.rows, op.vids = rows, vids
		if e.useJoinIndex && rel != nil && len(rows) >= 16 && len(probes) > 0 {
			// Probe every bound position and scan the most selective
			// (shortest) posting list.
			var ids []int
			for pi, k := range probes {
				cand := rel.lookup64(k, st.probeID(fr, k))
				if pi == 0 || len(cand) < len(ids) {
					ids = cand
					if len(ids) == 0 {
						break
					}
				}
			}
			op.ids = ids
			op.useIDs = true
		}

	case stepClassEnum:
		op.oids = e.classEnumCandidates(st, fr)
	}
}

// nextOp advances an operator; it reports whether a new binding is
// available. Exhausted operators restore the frame (unbinding what they
// bound) before reporting false, so the caller just pops to the previous
// operator.
func (e *Engine) nextOp(cr *compiledRule, op *opState, fr *frame) (bool, error) {
	st := op.step
	switch st.kind {
	case stepRel:
		for {
			var t row
			var tids []uint64
			if op.useIDs {
				if op.i >= len(op.ids) {
					st.clearFresh(fr)
					return false, nil
				}
				ri := op.ids[op.i]
				t = op.rows[ri]
				if ri < len(op.vids) {
					tids = op.vids[ri]
				}
			} else {
				if op.i >= len(op.rows) {
					st.clearFresh(fr)
					return false, nil
				}
				if op.i < len(op.vids) {
					tids = op.vids[op.i]
				}
				t = op.rows[op.i]
			}
			op.i++
			if err := e.tick(); err != nil {
				return false, err
			}
			st.clearFresh(fr)
			if st.matchIDs(fr, t, tids) {
				return true, nil
			}
		}

	case stepClassEnum:
		slot := st.classArg.slot
		if op.i >= len(op.oids) {
			fr.unbind(slot)
			return false, nil
		}
		if err := e.tick(); err != nil {
			return false, err
		}
		fr.bind(slot, object.Ref(op.oids[op.i]))
		op.i++
		return true, nil

	case stepClassCheck:
		if op.done {
			return false, nil
		}
		op.done = true
		v := st.classArg.val
		if st.classArg.slot >= 0 {
			v = fr.vals[st.classArg.slot]
		}
		return e.isKind(v, st.classKind), nil

	case stepAssign:
		if op.done {
			fr.unbind(st.assignSlot)
			return false, nil
		}
		op.done = true
		v, err := e.resolveOp(st.assignSrc, fr)
		if err != nil {
			return false, fmt.Errorf("datalog: rule %s: %w", cr.rule.label(), err)
		}
		if v.IsNull() {
			return false, nil // undefined attribute: the atom cannot hold
		}
		fr.bind(st.assignSlot, v)
		return true, nil

	default: // stepFilter
		if op.done {
			return false, nil
		}
		op.done = true
		ok, err := st.filter(e, fr)
		if err != nil {
			return false, fmt.Errorf("datalog: rule %s: %w", cr.rule.label(), err)
		}
		return ok, nil
	}
}

// edbFiltered returns the extensional relation restricted to the step's
// constant arguments, scanned through the store's pushdown API and cached
// under the step's constant signature. Worker goroutines never write the
// shared cache: warmEDBCaches pre-fills it for compiled plans, and a
// worker that still misses (per-evaluation compilation) scans privately.
func (e *Engine) edbFiltered(st *planStep) *relation {
	if rel, ok := e.edbCache[st.constSig]; ok {
		return rel
	}
	binds := make([]store.ArgBind, 0, len(st.args))
	for k, a := range st.args {
		if a.slot < 0 {
			binds = append(binds, store.ArgBind{Pos: k, Val: a.val})
		}
	}
	rel := newRelation(e.in)
	e.st.ScanFacts(st.pred, binds, func(f store.Fact) bool {
		rel.rows = append(rel.rows, row(f.Args))
		if rel.interned() {
			rel.vids = append(rel.vids, vidsOf(row(f.Args)))
		}
		return true
	})
	if e.collect == nil {
		e.edbCache[st.constSig] = rel
	}
	return rel
}

// warmFilteredScans pre-fills the pushdown scan cache for every compiled
// step that uses one, so parallel workers read a complete cache.
func (e *Engine) warmFilteredScans() {
	if !e.streaming {
		return
	}
	for _, cr := range e.compiled {
		if cr == nil {
			continue
		}
		for _, steps := range cr.plans {
			for i := range steps {
				st := &steps[i]
				if st.kind == stepRel && st.constSig != "" && !st.useDelta && !e.idb[st.pred] {
					e.edbFiltered(st)
				}
			}
		}
	}
}
