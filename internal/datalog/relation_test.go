package datalog

import (
	"testing"

	"videodb/internal/object"
)

// both runs a relation test in the interned-key (streaming) and
// string-key (materializing ablation) modes.
func both(t *testing.T, fn func(t *testing.T, in *pairInterner)) {
	t.Run("interned", func(t *testing.T) { fn(t, newPairInterner()) })
	t.Run("strings", func(t *testing.T) { fn(t, nil) })
}

func TestRelationProposeAdvance(t *testing.T) {
	both(t, func(t *testing.T, in *pairInterner) {
		r := newRelation(in)
		a := row{object.Num(1), object.Str("x")}
		if !r.propose(a) {
			t.Error("first propose should be new")
		}
		if r.propose(row{object.Num(1), object.Str("x")}) {
			t.Error("duplicate propose should be rejected")
		}
		if len(r.rows) != 0 {
			t.Error("proposals must not be visible before advance")
		}
		if !r.advance() {
			t.Error("advance with pending proposals should report change")
		}
		if len(r.rows) != 1 || len(r.delta) != 1 {
			t.Errorf("rows=%d delta=%d", len(r.rows), len(r.delta))
		}
		if r.advance() {
			t.Error("advance with nothing pending should report no change")
		}
		if len(r.delta) != 0 {
			t.Error("delta should drain")
		}
	})
}

// lookupVal probes position pos for the value through whichever index
// the relation's key mode uses.
func lookupVal(r *relation, pos int, v object.Value) []int {
	if r.interned() {
		return r.lookup64(pos, valueID(v))
	}
	return r.lookupStr(pos, v.String())
}

func TestRelationLookup(t *testing.T) {
	both(t, func(t *testing.T, in *pairInterner) {
		r := newRelation(in)
		for i := 0; i < 10; i++ {
			r.propose(row{object.Num(float64(i % 3)), object.Num(float64(i))})
		}
		r.advance()
		hits := lookupVal(r, 0, object.Num(1))
		want := 0
		for i := 0; i < 10; i++ {
			if i%3 == 1 {
				want++
			}
		}
		if len(hits) != want {
			t.Errorf("lookup(0, 1) = %d hits, want %d", len(hits), want)
		}
		for _, ri := range hits {
			if n, _ := r.rows[ri][0].AsNumber(); n != 1 {
				t.Errorf("row %d has key %v", ri, r.rows[ri][0])
			}
		}
		// Index extends over rows added later.
		r.propose(row{object.Num(1), object.Num(100)})
		r.advance()
		if got := lookupVal(r, 0, object.Num(1)); len(got) != want+1 {
			t.Errorf("after growth: %d hits, want %d", len(got), want+1)
		}
		// Secondary position and misses.
		if got := lookupVal(r, 1, object.Num(100)); len(got) != 1 {
			t.Errorf("lookup(1, 100) = %d hits", len(got))
		}
		if got := lookupVal(r, 0, object.Num(99)); len(got) != 0 {
			t.Errorf("miss returned %d hits", len(got))
		}
		// Out-of-range position is safe.
		if got := lookupVal(r, 7, object.Str("x")); len(got) != 0 {
			t.Errorf("out-of-range position returned %d hits", len(got))
		}
	})
}

func TestJoinIndexAblationEquivalence(t *testing.T) {
	s := ropeStore(t)
	p := NewProgram(
		NewRule(Rel("appears", Var("O"), Var("G")),
			Interval(Var("G")), ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G"), "entities"))),
		NewRule(Rel("pair", Var("A"), Var("B")),
			Rel("appears", Var("A"), Var("G")),
			Rel("appears", Var("B"), Var("G"))),
	)
	with := mustEngine(t, s, p)
	without := mustEngine(t, s, p, WithoutJoinIndex())
	r1, err1 := with.Rows("pair")
	r2, err2 := without.Rows("pair")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("with %d vs without %d", len(r1), len(r2))
	}
	for i := range r1 {
		if rowKey(r1[i]) != rowKey(r2[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}
