package datalog

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// entailStore builds n generalized intervals with varied spans, so Entail
// checks exercise the constraint solver (and its memo) across rounds.
func entailStore(t testing.TB, n int) *store.Store {
	t.Helper()
	st := store.New()
	for i := 0; i < n; i++ {
		lo := float64(i % 17)
		o := object.NewInterval(object.OID(fmt.Sprintf("g%03d", i)),
			interval.New(interval.Open(lo, lo+3+float64(i%5))))
		if err := st.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// entailProgram derives the pairs (G1, G2) whose durations entail: a
// memo-heavy quadratic workload (every pair re-solves the same small set
// of duration formulas).
func entailProgram() Program {
	return NewProgram(NewRule(
		Rel("cover", Var("G1"), Var("G2")),
		Interval(Var("G1")),
		Interval(Var("G2")),
		Entails(AttrOp(Var("G2"), "duration"), AttrOp(Var("G1"), "duration")),
	))
}

// TestMemoStatsPerEngine is the double-counting regression test: two
// engines running memo-heavy programs concurrently must report per-engine
// MemoHits+MemoMisses that sum exactly to the global memo counter delta.
// Under the old snapshot-and-diff accounting each engine counted the
// other's traffic too, so the per-engine sum exceeded the global delta.
func TestMemoStatsPerEngine(t *testing.T) {
	constraint.ResetMemo()
	before := constraint.MemoSnapshot()

	const engines = 4
	var wg sync.WaitGroup
	stats := make([]RunStats, engines)
	for i := 0; i < engines; i++ {
		e := mustEngine(t, entailStore(t, 40+i), entailProgram())
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			if err := e.Run(); err != nil {
				t.Errorf("engine %d: %v", i, err)
				return
			}
			stats[i] = e.Stats()
		}(i, e)
	}
	wg.Wait()
	after := constraint.MemoSnapshot()

	globalDelta := (after.Hits - before.Hits) + (after.Misses - before.Misses)
	var perEngine uint64
	for i, st := range stats {
		if st.MemoHits+st.MemoMisses == 0 {
			t.Errorf("engine %d reports no memo traffic; the workload should be memo-heavy", i)
		}
		perEngine += st.MemoHits + st.MemoMisses
	}
	if perEngine != globalDelta {
		t.Errorf("per-engine memo lookups sum to %d, global delta is %d (double-counting?)",
			perEngine, globalDelta)
	}
}

// TestProfileMatchesRunStats checks the profile's totals against the
// run's statistics: rounds, firings and derived sums must match exactly,
// and (under serial evaluation) the per-rule times must sum to within the
// total round time.
func TestProfileMatchesRunStats(t *testing.T) {
	constraint.ResetMemo() // a cold memo forces real solves, so SolverSteps > 0
	st := entailStore(t, 30)
	for i := 0; i < 10; i++ {
		st.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%02d", i)), object.Str(fmt.Sprintf("n%02d", i+1))))
	}
	prog := NewProgram(
		NewRule(
			Rel("cover", Var("G1"), Var("G2")),
			Interval(Var("G1")),
			Interval(Var("G2")),
			Entails(AttrOp(Var("G2"), "duration"), AttrOp(Var("G1"), "duration")),
		),
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("next", Var("X"), Var("Y")), Rel("reach", Var("Y"), Var("Z"))),
	)
	e := mustEngine(t, st, prog, WithProfiling())
	if e.Profile() != nil {
		t.Fatal("Profile should be nil before Run")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	p := e.Profile()
	if p == nil {
		t.Fatal("Profile is nil after a profiled Run")
	}
	rs := e.Stats()

	if len(p.Rounds) != rs.Rounds {
		t.Errorf("profile has %d rounds, RunStats %d", len(p.Rounds), rs.Rounds)
	}
	var roundFirings, roundDerived int
	var roundTime time.Duration
	for _, r := range p.Rounds {
		roundFirings += r.Firings
		roundDerived += r.Derived
		roundTime += r.Time
	}
	if roundFirings != rs.Firings {
		t.Errorf("round firings sum to %d, RunStats.Firings = %d", roundFirings, rs.Firings)
	}
	if roundDerived != rs.Derived {
		t.Errorf("round derived sum to %d, RunStats.Derived = %d", roundDerived, rs.Derived)
	}

	var ruleFirings, ruleDerived, ruleEvals int
	var ruleTime time.Duration
	for _, r := range p.Rules {
		ruleFirings += r.Firings
		ruleDerived += r.Derived
		ruleEvals += r.Evals
		ruleTime += r.Time
	}
	if ruleFirings != rs.Firings {
		t.Errorf("rule firings sum to %d, RunStats.Firings = %d", ruleFirings, rs.Firings)
	}
	if ruleDerived != rs.Derived {
		t.Errorf("rule derived sum to %d, RunStats.Derived = %d", ruleDerived, rs.Derived)
	}
	if ruleEvals == 0 {
		t.Error("no rule evaluations recorded")
	}
	// Serial evaluation: rule time is a subset of round time, which is a
	// subset of the total (rounds exclude snapshot/warming overhead).
	if ruleTime > roundTime {
		t.Errorf("per-rule times (%v) exceed total round time (%v) under serial evaluation",
			ruleTime, roundTime)
	}
	if roundTime > p.Total {
		t.Errorf("round times (%v) exceed the profile total (%v)", roundTime, p.Total)
	}
	if p.SolverSteps <= 0 {
		t.Error("an Entails workload should consume solver steps")
	}
	if p.MemoHits != rs.MemoHits || p.MemoMisses != rs.MemoMisses {
		t.Errorf("profile memo counters (%d/%d) disagree with RunStats (%d/%d)",
			p.MemoHits, p.MemoMisses, rs.MemoHits, rs.MemoMisses)
	}
}

// TestProfileParallelMatchesSerial checks that parallel evaluation
// preserves the profile's count invariants (times may differ).
func TestProfileParallelMatchesSerial(t *testing.T) {
	serial := mustEngine(t, entailStore(t, 25), entailProgram(), WithProfiling())
	par := mustEngine(t, entailStore(t, 25), entailProgram(), WithProfiling(), Parallel(4))
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	if err := par.Run(); err != nil {
		t.Fatal(err)
	}
	ps, pp := serial.Profile(), par.Profile()
	if ps == nil || pp == nil {
		t.Fatal("missing profiles")
	}
	for i := range ps.Rules {
		if ps.Rules[i].Firings != pp.Rules[i].Firings {
			t.Errorf("rule %d: firings %d (serial) vs %d (parallel)",
				i, ps.Rules[i].Firings, pp.Rules[i].Firings)
		}
		if ps.Rules[i].Derived != pp.Rules[i].Derived {
			t.Errorf("rule %d: derived %d (serial) vs %d (parallel)",
				i, ps.Rules[i].Derived, pp.Rules[i].Derived)
		}
	}
}

// TestStatsDuringParallelRun calls Stats and Profile concurrently with a
// Parallel(n) Run; under -race this fails if the reads race with the
// worker merges (the satellite bugfix: stats snapshots are published at
// round boundaries, not read from the run goroutine's working copy).
func TestStatsDuringParallelRun(t *testing.T) {
	e := mustEngine(t, chainStore(60), reachProgram(), Parallel(4), WithProfiling())

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := e.Stats()
			if st.Derived < 0 {
				t.Error("impossible stats")
			}
			_ = e.Profile()
		}
	}()

	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	if got, want := e.Stats().Rounds, 60; got < want {
		t.Errorf("rounds = %d, want at least %d", got, want)
	}
	if p := e.Profile(); p == nil || len(p.Rounds) != e.Stats().Rounds {
		t.Errorf("profile rounds inconsistent with stats after concurrent reads")
	}
}
