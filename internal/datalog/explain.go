package datalog

import (
	"fmt"
	"strings"

	"videodb/internal/object"
)

// Explain renders the evaluation strategy for a program over the
// engine's store: the stratum of every rule, the planned body order, and
// which generators can use the store's inverted index. It is purely
// informational — the same planner drives evaluation.
func (e *Engine) Explain() string {
	var b strings.Builder
	for s := 0; s <= e.maxStratum; s++ {
		wrote := false
		for i, r := range e.prog.Rules {
			if e.ruleStrata[i] != s {
				continue
			}
			if !wrote {
				fmt.Fprintf(&b, "stratum %d:\n", s)
				wrote = true
			}
			b.WriteString(e.explainRule(r))
		}
	}
	if b.Len() == 0 {
		return "(empty program)\n"
	}
	return b.String()
}

// ExplainRule renders the plan of a single rule.
func (e *Engine) ExplainRule(r Rule) string { return e.explainRule(r) }

func (e *Engine) explainRule(r Rule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  rule %s\n", r.String())
	plan, err := planBody(r.Body, -1)
	if err != nil {
		fmt.Fprintf(&b, "    plan error: %v\n", err)
		return b.String()
	}
	bound := map[string]bool{}
	for step, pos := range plan {
		lit := r.Body[pos]
		role := "filter"
		note := ""
		switch a := lit.(type) {
		case RelAtom:
			role = "scan"
			if e.idb[a.Pred] {
				role = "scan (derived)"
			}
		case ClassAtom:
			role = "enumerate"
			if v, isVar := classVar(a); !isVar || bound[v] {
				role = "check"
			} else if a.Kind == object.GenInterval && e.useMemberIndex {
				if _, ok := e.planIndexHint(a, r, plan, step, bound); ok {
					role = "index lookup (entities)"
				}
			}
		case NotAtom:
			role = "anti-join"
		case CmpAtom:
			role = "filter"
			for _, as := range a.assignments() {
				if !bound[as.target] {
					role = fmt.Sprintf("assign %s", as.target)
					bound[as.target] = true
					break
				}
			}
		case MemberAtom, EntailAtom:
			role = "filter"
		}
		fmt.Fprintf(&b, "    %d. %-26s %s%s\n", step+1, role, lit, note)
		if lit.binds() {
			lit.collectVars(bound)
		}
	}
	return b.String()
}

func classVar(a ClassAtom) (string, bool) {
	if a.Arg.IsVar() {
		return a.Arg.Name(), true
	}
	return "", false
}

// planIndexHint mirrors indexableMember for explanation purposes: it
// checks whether a later membership constraint pins the class atom's
// variable to a known-at-runtime entity (a bound variable or constant).
func (e *Engine) planIndexHint(a ClassAtom, r Rule, plan []int, i int, bound map[string]bool) (string, bool) {
	if !a.Arg.IsVar() {
		return "", false
	}
	v := a.Arg.Name()
	for _, pos := range plan[i+1:] {
		m, ok := r.Body[pos].(MemberAtom)
		if !ok || len(m.Elems) == 0 {
			continue
		}
		if m.Set.Attr != object.AttrEntities || !m.Set.Term.IsVar() || m.Set.Term.Name() != v {
			continue
		}
		elem := m.Elems[0]
		if elem.Attr != "" {
			continue
		}
		if !elem.Term.IsVar() {
			return elem.Term.String(), true
		}
		if bound[elem.Term.Name()] {
			return elem.Term.Name(), true
		}
	}
	return "", false
}
