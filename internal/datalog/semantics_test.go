package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// This file checks the engine against the paper's declarative semantics
// (Definitions 14–22, Theorems 1 and 3) using an independent
// reference implementation of the immediate consequence operator TP:
// valuations are enumerated by brute force over the active domain, with
// no sharing of the engine's join machinery.

// groundAtoms is an interpretation: a set of ground relational atoms.
type groundAtoms map[string]row // key: pred \x00 rowKey

func atomKey(pred string, t row) string { return pred + "\x00" + rowKey(t) }

// refTP computes TP(I) — the immediate consequences of I and the program
// (Definition 21) — by enumerating all valuations of each rule's
// variables over the active domain.
func refTP(t *testing.T, st *store.Store, p Program, I groundAtoms) groundAtoms {
	t.Helper()
	// Filter atoms are evaluated with the engine's operand resolution,
	// which only consults the store (no derived state involved).
	filterCtx, err := NewEngine(st, NewProgram())
	if err != nil {
		t.Fatal(err)
	}

	// Active domain: every value appearing in the store or in I.
	domainSet := map[string]object.Value{}
	add := func(v object.Value) { domainSet[v.String()] = v }
	for _, oid := range st.OIDs() {
		add(object.Ref(oid))
	}
	for _, rel := range st.Relations() {
		for _, f := range st.Facts(rel) {
			for _, v := range f.Args {
				add(v)
			}
		}
	}
	for _, tuple := range I {
		for _, v := range tuple {
			add(v)
		}
	}
	var domain []object.Value
	for _, v := range domainSet {
		domain = append(domain, v)
	}

	holds := func(pred string, tuple row) bool {
		if _, ok := I[atomKey(pred, tuple)]; ok {
			return true
		}
		// EDB facts are part of every interpretation's base.
		for _, f := range st.Facts(pred) {
			if rowKey(row(f.Args)) == rowKey(tuple) {
				return true
			}
		}
		return false
	}

	out := groundAtoms{}
	for k, v := range I {
		out[k] = v
	}
	for _, r := range p.Rules {
		vars := map[string]bool{}
		r.Head.collectVars(vars)
		for _, l := range r.Body {
			l.collectVars(vars)
		}
		var names []string
		for v := range vars {
			names = append(names, v)
		}
		// Enumerate every valuation (domain^len(names)).
		assign := make(bindings, len(names))
		var walk func(i int)
		walk = func(i int) {
			if i == len(names) {
				if refRuleFires(t, filterCtx, st, r, assign, holds) {
					tuple := make(row, len(r.Head.Args))
					for j, tm := range r.Head.Args {
						v, ok := termValue(tm, assign)
						if !ok {
							return
						}
						tuple[j] = v
					}
					out[atomKey(r.Head.Pred, tuple)] = tuple
				}
				return
			}
			for _, v := range domain {
				assign[names[i]] = v
				walk(i + 1)
			}
			delete(assign, names[i])
		}
		walk(0)
	}
	return out
}

// refRuleFires checks every body literal under the total valuation
// (Definition 16).
func refRuleFires(t *testing.T, filterCtx *Engine, st *store.Store, r Rule, b bindings, holds func(string, row) bool) bool {
	t.Helper()
	for _, l := range r.Body {
		switch a := l.(type) {
		case RelAtom:
			tuple := make(row, len(a.Args))
			for i, tm := range a.Args {
				v, ok := termValue(tm, b)
				if !ok {
					return false
				}
				tuple[i] = v
			}
			if !holds(a.Pred, tuple) {
				return false
			}
		case ClassAtom:
			v, ok := termValue(a.Arg, b)
			if !ok {
				return false
			}
			oid, isRef := v.AsRef()
			if !isRef {
				return false
			}
			o := st.Get(oid)
			if o == nil || o.Kind() != a.Kind {
				return false
			}
		case NotAtom:
			tuple := make(row, len(a.Atom.Args))
			for i, tm := range a.Atom.Args {
				v, ok := termValue(tm, b)
				if !ok {
					return false
				}
				tuple[i] = v
			}
			if holds(a.Atom.Pred, tuple) {
				return false
			}
		default:
			ok, err := filterCtx.evalFilter(l, b)
			if err != nil || !ok {
				return false
			}
		}
	}
	return true
}

// refFixpoint iterates refTP stratum by stratum from the empty
// interpretation (negation is non-monotone, so lower strata must be
// complete before their predicates are negated).
func refFixpoint(t *testing.T, st *store.Store, p Program) groundAtoms {
	t.Helper()
	strata, maxStratum, err := stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	I := groundAtoms{}
	for s := 0; s <= maxStratum; s++ {
		var rules []Rule
		for _, r := range p.Rules {
			if strata[r.Head.Pred] == s {
				rules = append(rules, r)
			}
		}
		sub := Program{Rules: rules}
		for i := 0; ; i++ {
			if i > 1000 {
				t.Fatal("reference fixpoint did not converge")
			}
			next := refTP(t, st, sub, I)
			if len(next) == len(I) {
				break
			}
			I = next
		}
	}
	return I
}

// engineAtoms extracts the engine's derived interpretation (IDB tuples,
// excluding EDB seeds so the comparison matches refFixpoint, which keeps
// EDB facts in the base).
func engineAtoms(t *testing.T, e *Engine, p Program, st *store.Store) groundAtoms {
	t.Helper()
	edb := map[string]bool{}
	for _, pred := range p.IDB() {
		for _, f := range st.Facts(pred) {
			edb[atomKey(pred, row(f.Args))] = true
		}
	}
	out := groundAtoms{}
	for _, pred := range p.IDB() {
		rows, err := e.Rows(pred)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			k := atomKey(pred, r)
			if !edb[k] {
				out[k] = r
			}
		}
	}
	return out
}

// semanticsFixture builds a small store and a program using class atoms,
// constraints, recursion and (optionally) negation — but no constructive
// rules, which the reference evaluator does not model.
func semanticsFixture(seed int64, withNeg bool) (*store.Store, Program) {
	r := rand.New(rand.NewSource(seed))
	st := store.New()
	ents := []object.OID{"e0", "e1", "e2"}
	for _, oid := range ents {
		st.Put(object.NewEntity(oid).Set("n", object.Num(float64(r.Intn(3)))))
	}
	for i := 0; i < 2; i++ {
		var members []object.OID
		for _, e := range ents {
			if r.Intn(2) == 0 {
				members = append(members, e)
			}
		}
		lo := float64(r.Intn(20))
		st.Put(object.NewInterval(object.OID(fmt.Sprintf("g%d", i)),
			interval.FromPairs(lo, lo+5)).
			Set(object.AttrEntities, object.RefSet(members...)))
	}
	for i := 0; i < 3; i++ {
		st.AddFact(store.RefFact("edge", ents[r.Intn(3)], ents[r.Intn(3)]))
	}
	rules := []Rule{
		NewRule(Rel("appears", Var("O"), Var("G")),
			Interval(Var("G")), ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G"), "entities"))),
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("Y"), Var("Z"))),
		NewRule(Rel("low", Var("O")),
			ObjectAtom(Var("O")),
			Cmp(AttrOp(Var("O"), "n"), constraint.Lt, TermOp(Const(object.Num(2))))),
	}
	if withNeg {
		rules = append(rules, NewRule(Rel("isolated", Var("O"), Var("G")),
			ObjectAtom(Var("O")), Interval(Var("G")),
			Not(Rel("appears", Var("O"), Var("G")))))
	}
	return st, NewProgram(rules...)
}

// TestEngineMatchesDeclarativeSemantics: the engine's fixpoint equals the
// reference least fixpoint (Theorem 3: minimal model = least fixpoint).
func TestEngineMatchesDeclarativeSemantics(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, withNeg := range []bool{false, true} {
			st, p := semanticsFixture(seed, withNeg)
			e := mustEngine(t, st, p)
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			got := engineAtoms(t, e, p, st)
			want := refFixpoint(t, st, p)
			if len(got) != len(want) {
				t.Fatalf("seed %d neg=%v: engine %d atoms, reference %d\nengine: %v\nref: %v",
					seed, withNeg, len(got), len(want), keys(got), keys(want))
			}
			for k := range want {
				if _, ok := got[k]; !ok {
					t.Fatalf("seed %d neg=%v: reference atom %q missing from engine", seed, withNeg, k)
				}
			}
		}
	}
}

// TestFixpointIsModel (Lemma 3/4): the computed fixpoint is closed under
// TP.
func TestFixpointIsModel(t *testing.T) {
	st, p := semanticsFixture(3, false)
	e := mustEngine(t, st, p)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	F := engineAtoms(t, e, p, st)
	if next := refTP(t, st, p, F); len(next) != len(F) {
		t.Fatalf("fixpoint not closed under TP: %d -> %d atoms", len(F), len(next))
	}
}

// TestFixpointIsMinimalModel (Theorem 1/3): removing any derived atom
// breaks closure — every atom of the least model is supported by a
// derivation from the rest.
func TestFixpointIsMinimalModel(t *testing.T) {
	st, p := semanticsFixture(5, false)
	e := mustEngine(t, st, p)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	F := engineAtoms(t, e, p, st)
	if len(F) == 0 {
		t.Skip("fixture derived nothing")
	}
	for k := range F {
		sub := groundAtoms{}
		for k2, v2 := range F {
			if k2 != k {
				sub[k2] = v2
			}
		}
		next := refTP(t, st, p, sub)
		if _, rederived := next[k]; !rederived {
			t.Errorf("atom %q is not supported: F \\ {a} is still closed", strings.ReplaceAll(k, "\x00", " "))
		}
	}
}

func keys(g groundAtoms) []string {
	var out []string
	for k := range g {
		out = append(out, strings.ReplaceAll(k, "\x00", " "))
	}
	return out
}
