package datalog

import "videodb/internal/store"

// CompiledProgram is a program's reusable compilation artifact: the
// validated rules, their stratification, and the compiled execution form
// of every rule. Compilation depends only on the program (plans, strata
// and interned constants are store-independent), so one CompiledProgram
// can back any number of engines over any stores — the cross-query plan
// cache in internal/core holds these and stamps out engines per query
// with NewEngineWith, skipping parse/validate/stratify/compile on a hit.
//
// The artifact is immutable after CompileProgram returns and safe for
// concurrent NewEngineWith calls.
type CompiledProgram struct {
	prog          Program
	predStrata    map[string]int
	ruleStrata    []int
	maxStratum    int
	growsAt       []bool
	intervalsGrow bool
	compiled      []*compiledRule
}

// Program returns the compiled program's rules.
func (cp *CompiledProgram) Program() Program { return cp.prog }

// CompileProgram validates, stratifies, and compiles the program once.
// Rules that fail to compile (e.g. a constraint atom over variables no
// body literal binds) keep a nil entry, exactly as NewEngine leaves
// them, so the error surfaces at evaluation time.
func CompileProgram(prog Program) (*CompiledProgram, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	strata, maxStratum, err := stratify(prog)
	if err != nil {
		return nil, err
	}
	cp := &CompiledProgram{
		prog:       prog,
		predStrata: strata,
		maxStratum: maxStratum,
		growsAt:    make([]bool, maxStratum+1),
		ruleStrata: make([]int, len(prog.Rules)),
	}
	// Compilation needs an engine shell for deltaPositionsIn (idb map and
	// stratification); the shell never touches a store here.
	e := newEngineShell(nil, prog)
	e.predStrata = cp.predStrata
	e.maxStratum = cp.maxStratum
	e.ruleStrata = cp.ruleStrata
	for i, r := range prog.Rules {
		cp.ruleStrata[i] = strata[r.Head.Pred]
		if r.IsConstructive() {
			cp.intervalsGrow = true
			cp.growsAt[cp.ruleStrata[i]] = true
		}
	}
	e.growsAt = cp.growsAt
	e.intervalsGrow = cp.intervalsGrow
	for _, pred := range prog.IDB() {
		e.idb[pred] = true
	}
	cp.compiled = make([]*compiledRule, len(prog.Rules))
	for i, r := range prog.Rules {
		if cr, err := e.compileRule(r, cp.ruleStrata[i]); err == nil {
			cp.compiled[i] = cr
		}
	}
	return cp, nil
}

// NewEngineWith prepares an engine over the store from an
// already-compiled program, skipping validation, stratification, and —
// for the default configuration — rule compilation. Options that change
// what the plans must contain (EagerExtension widens the delta
// positions; WithoutPlanCache asks for per-evaluation planning) fall
// back to recompiling, so the engine always behaves exactly as
// NewEngine(st, cp.Program(), opts...) would.
func NewEngineWith(st *store.Store, cp *CompiledProgram, opts ...Option) *Engine {
	e := newEngineShell(st, cp.prog)
	e.predStrata = cp.predStrata
	e.maxStratum = cp.maxStratum
	e.ruleStrata = cp.ruleStrata
	e.intervalsGrow = cp.intervalsGrow
	// growsAt is mutated by the eager option in finishInit: copy it.
	e.growsAt = append([]bool(nil), cp.growsAt...)
	e.finishInit(opts)
	e.compiled = make([]*compiledRule, len(cp.prog.Rules))
	if e.usePlanCache {
		if e.eager {
			for i, r := range cp.prog.Rules {
				if cr, err := e.compileRule(r, e.ruleStrata[i]); err == nil {
					e.compiled[i] = cr
				}
			}
		} else {
			copy(e.compiled, cp.compiled)
		}
	}
	return e
}
