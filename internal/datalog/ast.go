// Package datalog implements the declarative, rule-based constraint query
// language of Section 6 of "A Database Approach for Modeling and Querying
// Video Data": definite clauses over relation predicates, the built-in
// class predicates Interval and Object, attribute comparison atoms,
// membership/set-order constraints and temporal entailment constraints,
// with the interpreted concatenation ⊕ allowed in rule heads (constructive
// rules).
//
// The semantics is the minimal model / least fixpoint of the immediate
// consequence operator TP over the extended active domain (Definitions
// 14–22): whenever a constructive rule fires, the newly created
// generalized interval object joins the domain and participates in
// subsequent iterations. Termination follows from the idempotence of ⊕ at
// the object-identity level (Section 6.1).
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"videodb/internal/constraint"
	"videodb/internal/object"
)

// Pos is a source position (1-based line and column) carried by rules and
// literals parsed from VideoQL text. The zero Pos means "no position" —
// rules built through the Go API have none, and every consumer (error
// formatting, the static analyzer) treats it as absent rather than as
// line 0.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsZero reports whether the position is absent.
func (p Pos) IsZero() bool { return p.Line == 0 && p.Col == 0 }

// String renders "line:col", or "-" for the zero position.
func (p Pos) String() string {
	if p.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// PosOf returns the source position of a literal (zero if the literal was
// built programmatically).
func PosOf(l Literal) Pos {
	switch a := l.(type) {
	case RelAtom:
		return a.Pos
	case ClassAtom:
		return a.Pos
	case CmpAtom:
		return a.Pos
	case MemberAtom:
		return a.Pos
	case EntailAtom:
		return a.Pos
	case TemporalAtom:
		return a.Pos
	case NotAtom:
		return a.Pos
	}
	return Pos{}
}

// Term is a term of the language: an object/value variable, a constant
// value, or a constructive concatenation I1 ⊕ I2 (heads only).
type Term struct {
	name        string // variable name if non-empty
	val         object.Value
	left, right *Term // concatenation operands if non-nil
}

// Var returns a variable term. Variable names are conventionally
// capitalized (X, G1, O), but any non-empty string works.
func Var(name string) Term { return Term{name: name} }

// Const returns a constant term holding the value.
func Const(v object.Value) Term { return Term{val: v} }

// Oid returns a constant term referencing an object.
func Oid(id object.OID) Term { return Const(object.Ref(id)) }

// Concat returns the constructive term l ⊕ r (Section 6.1). Constructive
// terms may appear only in rule heads.
func Concat(l, r Term) Term {
	ll, rr := l, r
	return Term{left: &ll, right: &rr}
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.name != "" }

// IsConcat reports whether the term is a constructive concatenation.
func (t Term) IsConcat() bool { return t.left != nil }

// Name returns the variable name ("" for non-variables).
func (t Term) Name() string { return t.name }

// Value returns the constant value (Null for non-constants).
func (t Term) Value() object.Value {
	if t.IsVar() || t.IsConcat() {
		return object.Null()
	}
	return t.val
}

// String renders the term.
func (t Term) String() string {
	switch {
	case t.IsVar():
		return t.name
	case t.IsConcat():
		return t.left.String() + " + " + t.right.String()
	default:
		return t.val.String()
	}
}

func (t Term) collectVars(dst map[string]bool) {
	switch {
	case t.IsVar():
		dst[t.name] = true
	case t.IsConcat():
		t.left.collectVars(dst)
		t.right.collectVars(dst)
	}
}

// Operand is either a plain term or an attribute access O.Attr, the two
// operand shapes of the paper's inequality and constraint atoms.
type Operand struct {
	Term Term
	Attr string // non-empty for attribute access
}

// TermOp wraps a term as an operand.
func TermOp(t Term) Operand { return Operand{Term: t} }

// AttrOp builds the attribute access t.attr.
func AttrOp(t Term, attr string) Operand { return Operand{Term: t, Attr: attr} }

// String renders the operand.
func (o Operand) String() string {
	if o.Attr != "" {
		return o.Term.String() + "." + o.Attr
	}
	return o.Term.String()
}

func (o Operand) collectVars(dst map[string]bool) { o.Term.collectVars(dst) }

// Literal is one body element of a rule: a positive relational atom, a
// class atom, or one of the constraint atom forms. Constraint atoms act
// as filters; relational and class atoms bind variables.
type Literal interface {
	fmt.Stringer
	// binds reports whether the literal is a positive (binding) literal
	// for the purposes of range restriction (Definition 11).
	binds() bool
	collectVars(dst map[string]bool)
}

// RelAtom is a relational atom P(t1, …, tn). In heads, terms may be
// constructive.
type RelAtom struct {
	Pred string
	Args []Term
	Pos  Pos // source position of the predicate name, if parsed
}

// Rel builds a relational atom.
func Rel(pred string, args ...Term) RelAtom { return RelAtom{Pred: pred, Args: args} }

func (a RelAtom) binds() bool { return true }

func (a RelAtom) collectVars(dst map[string]bool) {
	for _, t := range a.Args {
		t.collectVars(dst)
	}
}

// String renders the atom.
func (a RelAtom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// ClassAtom is one of the built-in unary class predicates of Definition 8:
// Interval(t) (all generalized interval objects, including those created
// by concatenation) or Object(t) (all other objects).
type ClassAtom struct {
	Kind object.Kind
	Arg  Term
	Pos  Pos
}

// Interval builds the class atom Interval(t).
func Interval(t Term) ClassAtom { return ClassAtom{Kind: object.GenInterval, Arg: t} }

// ObjectAtom builds the class atom Object(t).
func ObjectAtom(t Term) ClassAtom { return ClassAtom{Kind: object.Entity, Arg: t} }

func (a ClassAtom) binds() bool { return true }

func (a ClassAtom) collectVars(dst map[string]bool) { a.Arg.collectVars(dst) }

// String renders the atom.
func (a ClassAtom) String() string {
	name := "Object"
	if a.Kind == object.GenInterval {
		name = "Interval"
	}
	return name + "(" + a.Arg.String() + ")"
}

// CmpAtom is an inequality atom of Definition 9: O.Att θ c,
// O.Att θ O'.Att', or comparisons between plain terms. An equality whose
// one side is a plain variable additionally acts as an assignment: once
// the other side is determined, the variable is bound to its value
// (attribute projection, e.g. "O.score = S"). Range restriction and the
// planner both understand this binding role.
type CmpAtom struct {
	Left  Operand
	Op    constraint.Op
	Right Operand
	Pos   Pos
}

// assignment describes one way an equality atom can bind a variable:
// target takes the value of src.
type assignment struct {
	target string
	src    Operand
}

// assignments returns the candidate binding orientations of the atom
// (each plain-variable side can be the target, determined by the other
// side).
func (a CmpAtom) assignments() []assignment {
	if a.Op != constraint.Eq {
		return nil
	}
	var out []assignment
	if a.Left.Attr == "" && a.Left.Term.IsVar() {
		out = append(out, assignment{target: a.Left.Term.Name(), src: a.Right})
	}
	if a.Right.Attr == "" && a.Right.Term.IsVar() {
		out = append(out, assignment{target: a.Right.Term.Name(), src: a.Left})
	}
	return out
}

// Cmp builds a comparison atom.
func Cmp(left Operand, op constraint.Op, right Operand) CmpAtom {
	return CmpAtom{Left: left, Op: op, Right: right}
}

func (a CmpAtom) binds() bool { return false }

func (a CmpAtom) collectVars(dst map[string]bool) {
	a.Left.collectVars(dst)
	a.Right.collectVars(dst)
}

// String renders the atom.
func (a CmpAtom) String() string {
	return fmt.Sprintf("%s %s %s", a.Left, a.Op, a.Right)
}

// MemberAtom is a set-order constraint over attribute values: the
// primitive e ∈ S (Subset=false, one element) or {e1, …, ek} ⊆ S
// (Subset=true). S and the elements are operands, so both
// "o ∈ G.entities" and "{o1,o2} ⊆ G.entities" are expressible.
type MemberAtom struct {
	Elems  []Operand
	Set    Operand
	Subset bool
	Pos    Pos
}

// Member builds e ∈ set.
func Member(e Operand, set Operand) MemberAtom {
	return MemberAtom{Elems: []Operand{e}, Set: set}
}

// SubsetAtom builds {e1, …, ek} ⊆ set.
func SubsetAtom(set Operand, elems ...Operand) MemberAtom {
	return MemberAtom{Elems: elems, Set: set, Subset: true}
}

func (a MemberAtom) binds() bool { return false }

func (a MemberAtom) collectVars(dst map[string]bool) {
	for _, e := range a.Elems {
		e.collectVars(dst)
	}
	a.Set.collectVars(dst)
}

// String renders the atom.
func (a MemberAtom) String() string {
	if !a.Subset && len(a.Elems) == 1 {
		return a.Elems[0].String() + " in " + a.Set.String()
	}
	parts := make([]string, len(a.Elems))
	for i, e := range a.Elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "} subset " + a.Set.String()
}

// EntailAtom is the complex arithmetic constraint left ⇒ right between
// temporal values: it holds when every instant satisfying the left
// operand's constraint satisfies the right's (e.g. "G.duration ⇒
// (t > a and t < b)" and the contains rule's "G2.duration ⇒ G1.duration").
type EntailAtom struct {
	Left, Right Operand
	Pos         Pos
}

// Entails builds left ⇒ right.
func Entails(left, right Operand) EntailAtom { return EntailAtom{Left: left, Right: right} }

func (a EntailAtom) binds() bool { return false }

func (a EntailAtom) collectVars(dst map[string]bool) {
	a.Left.collectVars(dst)
	a.Right.collectVars(dst)
}

// String renders the atom.
func (a EntailAtom) String() string {
	return a.Left.String() + " => " + a.Right.String()
}

// VarsOf returns the variables of the literal in first-occurrence
// (syntactic) order.
func VarsOf(l Literal) []string {
	var out []string
	seen := map[string]bool{}
	add := func(t Term) {
		var walk func(Term)
		walk = func(t Term) {
			switch {
			case t.IsVar():
				if !seen[t.name] {
					seen[t.name] = true
					out = append(out, t.name)
				}
			case t.IsConcat():
				walk(*t.left)
				walk(*t.right)
			}
		}
		walk(t)
	}
	switch a := l.(type) {
	case RelAtom:
		for _, t := range a.Args {
			add(t)
		}
	case ClassAtom:
		add(a.Arg)
	case CmpAtom:
		add(a.Left.Term)
		add(a.Right.Term)
	case MemberAtom:
		for _, e := range a.Elems {
			add(e.Term)
		}
		add(a.Set.Term)
	case EntailAtom:
		add(a.Left.Term)
		add(a.Right.Term)
	case NotAtom:
		for _, t := range a.Atom.Args {
			add(t)
		}
	case TemporalAtom:
		add(a.Left.Term)
		add(a.Right.Term)
	}
	return out
}

// TemporalRel names an Allen-style temporal relation usable in
// TemporalAtom. The paper expresses temporal conditions through
// entailment only; these operators are the interval-based vocabulary of
// related systems (VideoStar's equals/before/…) provided as an extension,
// evaluated on the same canonical generalized intervals.
type TemporalRel string

// The supported temporal relations between two generalized intervals.
const (
	TempBefore   TemporalRel = "before"   // every instant of L precedes every instant of R
	TempAfter    TemporalRel = "after"    // converse of before
	TempMeets    TemporalRel = "meets"    // L before R with a seamless touch
	TempMetBy    TemporalRel = "metby"    // converse of meets
	TempOverlaps TemporalRel = "overlaps" // L and R share an instant
	TempEquals   TemporalRel = "equals"   // same instants
	TempContains TemporalRel = "contains" // L ⊇ R
	TempDuring   TemporalRel = "during"   // L ⊆ R
)

// ParseTemporalRel recognizes a temporal relation keyword.
func ParseTemporalRel(s string) (TemporalRel, bool) {
	switch TemporalRel(s) {
	case TempBefore, TempAfter, TempMeets, TempMetBy, TempOverlaps,
		TempEquals, TempContains, TempDuring:
		return TemporalRel(s), true
	}
	return "", false
}

// TemporalAtom is the constraint "Left rel Right" between temporal
// operands (duration attributes or temporal constants), e.g.
// "G1.duration before G2.duration".
type TemporalAtom struct {
	Rel         TemporalRel
	Left, Right Operand
	Pos         Pos
}

// Temporal builds a temporal relation atom.
func Temporal(left Operand, rel TemporalRel, right Operand) TemporalAtom {
	return TemporalAtom{Rel: rel, Left: left, Right: right}
}

func (a TemporalAtom) binds() bool { return false }

func (a TemporalAtom) collectVars(dst map[string]bool) {
	a.Left.collectVars(dst)
	a.Right.collectVars(dst)
}

// String renders the atom.
func (a TemporalAtom) String() string {
	return fmt.Sprintf("%s %s %s", a.Left, a.Rel, a.Right)
}

// NotAtom is a negated relational atom, "not p(t1, …, tn)". Negation is
// an extension beyond the paper's positive fragment: programs must be
// stratified (no recursion through negation), and the engine evaluates
// strata bottom-up so a negated predicate is complete before it is
// tested. Like constraint atoms, negated atoms are filters: every
// variable they use must be bound by a positive literal.
type NotAtom struct {
	Atom RelAtom
	Pos  Pos
}

// Not negates a relational atom.
func Not(a RelAtom) NotAtom { return NotAtom{Atom: a} }

func (a NotAtom) binds() bool { return false }

func (a NotAtom) collectVars(dst map[string]bool) { a.Atom.collectVars(dst) }

// String renders the atom.
func (a NotAtom) String() string { return "not " + a.Atom.String() }

// Rule is a definite clause H ← L1, …, Ln, c1, …, cm (Definition 10). The
// optional Name labels the rule in errors and explanations.
type Rule struct {
	Name string
	Head RelAtom
	Body []Literal
	Pos  Pos // source position of the rule (its label or head), if parsed
}

// NewRule builds a rule.
func NewRule(head RelAtom, body ...Literal) Rule { return Rule{Head: head, Body: body} }

// Named attaches a name to the rule.
func (r Rule) Named(name string) Rule {
	r.Name = name
	return r
}

// IsConstructive reports whether the head contains a concatenation term.
func (r Rule) IsConstructive() bool {
	for _, t := range r.Head.Args {
		if t.IsConcat() {
			return true
		}
	}
	return false
}

// String renders the rule in the paper's notation.
func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	s := r.Head.String() + " :- " + strings.Join(parts, ", ")
	if r.Name != "" {
		s = r.Name + ": " + s
	}
	return s
}

// Validate checks the static conditions on rules: non-empty head
// predicate, range restriction (every variable occurs in a binding body
// literal, Definition 11), and constructive terms only in heads.
func (r Rule) Validate() error {
	if r.Head.Pred == "" {
		return fmt.Errorf("datalog: rule %s: empty head predicate", r.label())
	}
	bound := map[string]bool{}
	for _, l := range r.Body {
		if l.binds() {
			l.collectVars(bound)
		}
	}
	// Equality assignments extend the bound set (fixpoint: chains like
	// O.a = S, S = T resolve in order).
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			cmp, ok := l.(CmpAtom)
			if !ok {
				continue
			}
			for _, as := range cmp.assignments() {
				if bound[as.target] {
					continue
				}
				srcVars := map[string]bool{}
				as.src.collectVars(srcVars)
				ok := true
				for v := range srcVars {
					if !bound[v] {
						ok = false
						break
					}
				}
				if ok {
					bound[as.target] = true
					changed = true
				}
			}
		}
	}
	for _, l := range r.Body {
		switch a := l.(type) {
		case RelAtom:
			for _, t := range a.Args {
				if t.IsConcat() {
					return fmt.Errorf("datalog: rule %s: constructive term %s in body", r.label(), t)
				}
			}
		case NotAtom:
			for _, t := range a.Atom.Args {
				if t.IsConcat() {
					return fmt.Errorf("datalog: rule %s: constructive term %s in body", r.label(), t)
				}
			}
		}
	}
	all := map[string]bool{}
	r.Head.collectVars(all)
	for _, l := range r.Body {
		l.collectVars(all)
	}
	var unbound []string
	for v := range all {
		if !bound[v] {
			unbound = append(unbound, v)
		}
	}
	if len(unbound) > 0 {
		sort.Strings(unbound)
		return fmt.Errorf("datalog: rule %s is not range-restricted: variable(s) %s do not occur in a positive body literal",
			r.label(), strings.Join(unbound, ", "))
	}
	return nil
}

func (r Rule) label() string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("%q", r.Head.String())
}

// Program is a collection of range-restricted rules (Definition 12).
type Program struct {
	Rules []Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) Program { return Program{Rules: rules} }

// Validate validates every rule.
func (p Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// IDB returns the sorted set of predicates defined by rule heads.
func (p Program) IDB() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for pred := range set {
		out = append(out, pred)
	}
	sort.Strings(out)
	return out
}

// Reachable returns the subprogram relevant to answering queries over
// the goal predicate: rules whose head predicate the goal (transitively)
// depends on through positive or negated body atoms, plus — when any kept
// rule reads the Interval class — every constructive rule (they grow the
// Interval extension and therefore influence the goal even if their head
// predicate is never referenced). Evaluating only the reachable
// subprogram yields the same answers for the goal.
func (p Program) Reachable(goal string) Program {
	kept := NewDepGraph(p).ReachableRules(goal)
	var rules []Rule
	for i, r := range p.Rules {
		if kept[i] {
			rules = append(rules, r)
		}
	}
	return Program{Rules: rules}
}

// String renders the program, one rule per line.
func (p Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}
