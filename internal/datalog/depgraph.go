package datalog

import (
	"sort"

	"videodb/internal/object"
)

// DepGraph is the predicate-dependency graph of a program: one node per
// predicate (IDB heads, EDB predicates referenced in bodies, and the
// internal pseudo-predicate tracking growth of the Interval class), one
// edge head → body predicate for every body atom. It is the shared
// substrate for stratification, goal-reachability pruning, and the static
// analyzer's unreachable-rule pass, which previously each re-derived it
// ad hoc inside stratify.go and Program.Reachable.
//
// Constructive rules couple to the Interval class exactly as in
// stratification: every constructive rule also "defines" the interval
// pseudo-predicate, and every rule whose body reads Interval(G) depends
// on it. That keeps ReachableRules consistent with evaluation — a
// constructive rule influences any goal that enumerates the Interval
// class even when its head predicate is never referenced by name.
type DepGraph struct {
	prog Program
	idb  map[string]bool
	// ruleDeps[i] lists the dependency edges induced by rule i (one per
	// relational, negated, or Interval-class body atom).
	ruleDeps [][]DepEdge
	// byPred[p] lists the dependency edges of every rule defining p
	// (constructive rules contribute their edges to the pseudo-predicate
	// as well).
	byPred map[string][]DepEdge
	// definers[p] lists the indices of rules defining p; for the
	// pseudo-predicate, the constructive rules.
	definers map[string][]int
}

// DepEdge is one dependency: the rule at index Rule defines predicate
// From and uses predicate To in its body (negated when Negative).
type DepEdge struct {
	From     string
	To       string
	Negative bool
	Rule     int // index into the program's rule slice
}

// NewDepGraph builds the dependency graph of the program.
func NewDepGraph(p Program) *DepGraph {
	g := &DepGraph{
		prog:     p,
		idb:      make(map[string]bool),
		ruleDeps: make([][]DepEdge, len(p.Rules)),
		byPred:   make(map[string][]DepEdge),
		definers: make(map[string][]int),
	}
	for _, r := range p.Rules {
		g.idb[r.Head.Pred] = true
	}
	for i, r := range p.Rules {
		for _, l := range r.Body {
			switch a := l.(type) {
			case RelAtom:
				g.ruleDeps[i] = append(g.ruleDeps[i], DepEdge{From: r.Head.Pred, To: a.Pred, Rule: i})
			case NotAtom:
				g.ruleDeps[i] = append(g.ruleDeps[i], DepEdge{From: r.Head.Pred, To: a.Atom.Pred, Negative: true, Rule: i})
			case ClassAtom:
				if a.Kind == object.GenInterval {
					g.ruleDeps[i] = append(g.ruleDeps[i], DepEdge{From: r.Head.Pred, To: intervalPseudo, Rule: i})
				}
			}
		}
		g.definers[r.Head.Pred] = append(g.definers[r.Head.Pred], i)
		g.byPred[r.Head.Pred] = append(g.byPred[r.Head.Pred], g.ruleDeps[i]...)
		if r.IsConstructive() {
			g.definers[intervalPseudo] = append(g.definers[intervalPseudo], i)
			for _, e := range g.ruleDeps[i] {
				e.From = intervalPseudo
				g.byPred[intervalPseudo] = append(g.byPred[intervalPseudo], e)
			}
		}
	}
	return g
}

// IDB reports whether the predicate is defined by some rule head.
func (g *DepGraph) IDB(pred string) bool { return g.idb[pred] }

// RuleDeps returns the dependency edges induced by the rule at index i.
func (g *DepGraph) RuleDeps(i int) []DepEdge { return g.ruleDeps[i] }

// Dependencies returns the dependency edges of the predicate: the body
// predicates used by the rules defining it, in rule order.
func (g *DepGraph) Dependencies(pred string) []DepEdge { return g.byPred[pred] }

// Preds returns the sorted predicates appearing in the graph (heads and
// body references; the internal pseudo-predicate is excluded).
func (g *DepGraph) Preds() []string {
	set := map[string]bool{}
	for p := range g.idb {
		set[p] = true
	}
	for _, deps := range g.ruleDeps {
		for _, e := range deps {
			if e.To != intervalPseudo {
				set[e.To] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ReachableRules reports, per rule, whether the rule can contribute to
// answering the goal predicate: its head is on a dependency path from the
// goal, or it is constructive and some kept rule reads the Interval
// class. The semantics matches Program.Reachable exactly.
func (g *DepGraph) ReachableRules(goal string) []bool {
	needed := map[string]bool{goal: true}
	kept := make([]bool, len(g.prog.Rules))
	for changed := true; changed; {
		changed = false
		usesInterval := false
		for i, r := range g.prog.Rules {
			if !kept[i] && needed[r.Head.Pred] {
				kept[i] = true
				changed = true
			}
			if !kept[i] {
				continue
			}
			for _, e := range g.ruleDeps[i] {
				if e.To == intervalPseudo {
					usesInterval = true
					continue
				}
				if !needed[e.To] {
					needed[e.To] = true
					changed = true
				}
			}
		}
		if usesInterval {
			for _, i := range g.definers[intervalPseudo] {
				if !kept[i] {
					kept[i] = true
					needed[g.prog.Rules[i].Head.Pred] = true
					changed = true
				}
			}
		}
	}
	return kept
}

// NegationCycle returns a predicate cycle that passes through a negated
// dependency — the witness that the program is not stratifiable — or nil
// when every negation is stratified. The slice is a closed path: it
// starts and ends with the same predicate, and each entry depends on its
// successor. The first step is the negated dependency.
func (g *DepGraph) NegationCycle() []string {
	try := func(e DepEdge) []string {
		// e.From negates e.To; the negation is unstratifiable iff e.To
		// transitively depends back on e.From.
		if path := g.depPath(e.To, e.From); path != nil {
			return append([]string{e.From}, path...)
		}
		return nil
	}
	for i, r := range g.prog.Rules {
		for _, e := range g.ruleDeps[i] {
			if !e.Negative {
				continue
			}
			if c := try(e); c != nil {
				return c
			}
			// A constructive rule's negations also act on behalf of the
			// Interval pseudo-predicate it grows.
			if r.IsConstructive() {
				e.From = intervalPseudo
				if c := try(e); c != nil {
					return c
				}
			}
		}
	}
	return nil
}

// depPath returns a dependency path from predicate src to predicate dst
// (both inclusive; a single-element path when src == dst), or nil when
// dst is not reachable from src.
func (g *DepGraph) depPath(src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, e := range g.byPred[p] {
			if _, seen := prev[e.To]; seen {
				continue
			}
			prev[e.To] = p
			if e.To == dst {
				var rev []string
				for cur := dst; cur != ""; cur = prev[cur] {
					rev = append(rev, cur)
				}
				out := make([]string, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			queue = append(queue, e.To)
		}
	}
	return nil
}
