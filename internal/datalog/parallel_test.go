package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// TestParallelEquivalentToSerial: the parallel evaluator must compute the
// same fixpoint as the serial one on random instances (including
// negation and constructive rules, which take the serial path inside a
// parallel round).
func TestParallelEquivalentToSerial(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, p := randomInstance(r)
		serial := mustEngine(t, s, p)
		par := mustEngine(t, s, p, Parallel(4))
		if err := serial.Run(); err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		if err := par.Run(); err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		for _, pred := range p.IDB() {
			r1, _ := serial.Rows(pred)
			r2, _ := par.Rows(pred)
			if len(r1) != len(r2) {
				t.Fatalf("seed %d: %s has %d vs %d tuples", seed, pred, len(r1), len(r2))
			}
			for i := range r1 {
				if rowKey(r1[i]) != rowKey(r2[i]) {
					t.Fatalf("seed %d: %s row %d differs", seed, pred, i)
				}
			}
		}
		if len(serial.Created()) != len(par.Created()) {
			t.Fatalf("seed %d: created %d vs %d", seed, len(serial.Created()), len(par.Created()))
		}
		if serial.Stats().Derived != par.Stats().Derived {
			t.Errorf("seed %d: derived %d vs %d", seed, serial.Stats().Derived, par.Stats().Derived)
		}
	}
}

func TestParallelWithNegation(t *testing.T) {
	s := store.New()
	for i := 0; i < 50; i++ {
		s.AddFact(store.NewFact("n", object.Num(float64(i))))
		if i%3 == 0 {
			s.AddFact(store.NewFact("skip", object.Num(float64(i))))
		}
	}
	p := NewProgram(
		NewRule(Rel("kept", Var("X")), Rel("n", Var("X")), Not(Rel("skip", Var("X")))),
		NewRule(Rel("pair", Var("X"), Var("Y")),
			Rel("kept", Var("X")), Rel("kept", Var("Y"))),
	)
	serial := mustEngine(t, s, p)
	par := mustEngine(t, s, p, Parallel(8))
	r1, err1 := serial.Rows("pair")
	r2, err2 := par.Rows("pair")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	want := 33 * 33 // 50 - 17 multiples of 3 (0,3,...,48)
	if len(r1) != want || len(r2) != want {
		t.Errorf("pairs: serial %d, parallel %d, want %d", len(r1), len(r2), want)
	}
}

func TestParallelErrorPropagates(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("e1"))
	s.Put(object.NewEntity("e2"))
	s.Put(object.NewInterval("g1", interval.FromPairs(0, 1)))
	// Two plain rules plus a failing constructive rule.
	p := NewProgram(
		NewRule(Rel("a", Var("X")), ObjectAtom(Var("X"))),
		NewRule(Rel("b", Var("X")), ObjectAtom(Var("X"))),
		NewRule(Rel("bad", Concat(Oid("e1"), Oid("g1"))), Interval(Oid("g1"))),
	)
	e := mustEngine(t, s, p, Parallel(4))
	if err := e.Run(); err == nil {
		t.Error("constructive error must propagate in parallel mode")
	}
}

func TestParallelLargeJoin(t *testing.T) {
	// A wider instance to actually exercise the worker pool.
	s := store.New()
	for i := 0; i < 200; i++ {
		s.AddFact(store.NewFact("edge",
			object.Str(fmt.Sprintf("n%03d", i)), object.Str(fmt.Sprintf("n%03d", (i+1)%200))))
	}
	var rules []Rule
	for k := 0; k < 8; k++ {
		rules = append(rules, NewRule(
			Rel(fmt.Sprintf("hop%d", k), Var("X"), Var("Z")),
			Rel("edge", Var("X"), Var("Y")),
			Rel("edge", Var("Y"), Var("Z")),
		))
	}
	p := NewProgram(rules...)
	serial := mustEngine(t, s, p)
	par := mustEngine(t, s, p, Parallel(8))
	for k := 0; k < 8; k++ {
		pred := fmt.Sprintf("hop%d", k)
		r1, _ := serial.Rows(pred)
		r2, _ := par.Rows(pred)
		if len(r1) != 200 || len(r2) != 200 {
			t.Fatalf("%s: %d vs %d", pred, len(r1), len(r2))
		}
	}
}
