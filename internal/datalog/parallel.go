package datalog

import (
	"fmt"
	"sync"
)

// Parallel rule evaluation: within one TP round, the (rule, delta) tasks
// are independent — they read the previous round's extents and only
// produce proposals for the next round — so they can run on worker
// goroutines. Each worker evaluates with a private collector; proposals
// merge at the round barrier, preserving the exact TP semantics.
// Constructive rules mutate the shared extended-domain state and are
// evaluated serially, as is everything when provenance tracing is on
// (the recorded derivation must be the deterministic first one).

// Parallel evaluates each round's rules on up to workers goroutines.
// workers ≤ 1 keeps the serial evaluator.
func Parallel(workers int) Option { return func(e *Engine) { e.workers = workers } }

type proposal struct {
	pred  string
	tuple row
}

type evalTask struct {
	rule  Rule
	delta int
}

// runTasks evaluates a round's tasks, in parallel when configured.
func (e *Engine) runTasks(tasks []evalTask) error {
	if e.workers <= 1 || e.trace || len(tasks) < 2 {
		for _, t := range tasks {
			if err := e.evalRule(t.rule, t.delta); err != nil {
				return err
			}
		}
		return nil
	}

	var serial, parallel []evalTask
	for _, t := range tasks {
		if t.rule.IsConstructive() {
			serial = append(serial, t)
		} else {
			parallel = append(parallel, t)
		}
	}
	for _, t := range serial {
		if err := e.evalRule(t.rule, t.delta); err != nil {
			return err
		}
	}
	if len(parallel) == 0 {
		return nil
	}

	e.warmEDBCaches()
	workers := e.workers
	if workers > len(parallel) {
		workers = len(parallel)
	}
	type result struct {
		proposals []proposal
		firings   int
		err       error
	}
	taskCh := make(chan evalTask)
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A shallow copy shares the read-only round state; the
			// collector redirects head firings into a private buffer.
			local := *e
			local.collect = &[]proposal{}
			local.stats = RunStats{}
			var firstErr error
			for t := range taskCh {
				if firstErr != nil {
					continue // drain
				}
				firstErr = local.evalRule(t.rule, t.delta)
			}
			results <- result{proposals: *local.collect, firings: local.stats.Firings, err: firstErr}
		}()
	}
	for _, t := range parallel {
		taskCh <- t
	}
	close(taskCh)
	wg.Wait()
	close(results)

	var firstErr error
	for res := range results {
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		e.stats.Firings += res.firings
		for _, p := range res.proposals {
			rel, ok := e.derived[p.pred]
			if !ok {
				return fmt.Errorf("datalog: internal: proposal for unknown predicate %q", p.pred)
			}
			if rel.propose(p.tuple) {
				e.stats.Derived++
			}
		}
	}
	return firstErr
}

// warmEDBCaches pre-fills the lazily built EDB caches so worker
// goroutines never write shared maps.
func (e *Engine) warmEDBCaches() {
	for _, r := range e.prog.Rules {
		for _, l := range r.Body {
			switch a := l.(type) {
			case RelAtom:
				if !e.idb[a.Pred] {
					e.edbRows(a.Pred)
				}
			case NotAtom:
				if !e.idb[a.Atom.Pred] {
					e.hasTuple(a.Atom.Pred, nil)
				}
			}
		}
	}
}
