package datalog

import (
	"fmt"
	"sync"
)

// Parallel rule evaluation: within one TP round, the (rule, delta) tasks
// are independent — they read the previous round's extents and only
// produce proposals for the next round — so they can run on worker
// goroutines. Each worker evaluates with a private collector; proposals
// merge at the round barrier, preserving the exact TP semantics.
// Constructive rules mutate the shared extended-domain state and are
// evaluated serially, as is everything when provenance tracing is on
// (the recorded derivation must be the deterministic first one).

// Parallel evaluates each round's rules on up to workers goroutines.
// workers ≤ 1 keeps the serial evaluator.
func Parallel(workers int) Option { return func(e *Engine) { e.workers = workers } }

type proposal struct {
	pred  string
	tuple row
	rule  int // producing rule index, for per-rule profiling at the merge
}

// evalTask identifies one unit of round work by rule index (into
// prog.Rules / compiled) and delta body position (-1 = full extent).
type evalTask struct {
	ruleIdx int
	delta   int
}

// runTasks evaluates a round's tasks, in parallel when configured. On a
// task error the remaining queued tasks are cancelled, and the error of
// the earliest task (by queue position) that failed is returned, so the
// reported error does not depend on goroutine scheduling.
func (e *Engine) runTasks(tasks []evalTask) error {
	if e.workers <= 1 || e.trace || len(tasks) < 2 {
		for _, t := range tasks {
			if err := e.evalTask(t); err != nil {
				return err
			}
		}
		return nil
	}

	var serial, par []evalTask
	for _, t := range tasks {
		if e.prog.Rules[t.ruleIdx].IsConstructive() {
			serial = append(serial, t)
		} else {
			par = append(par, t)
		}
	}
	for _, t := range serial {
		if err := e.evalTask(t); err != nil {
			return err
		}
	}
	if len(par) == 0 {
		return nil
	}

	e.warmEDBCaches()
	e.warmFilteredScans()
	workers := e.workers
	if workers > len(par) {
		workers = len(par)
	}
	type indexedTask struct {
		evalTask
		idx int
	}
	type result struct {
		proposals []proposal
		firings   int
		prof      *profileState
		err       error
		errIdx    int
	}
	taskCh := make(chan indexedTask)
	done := make(chan struct{})
	var cancel sync.Once
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A shallow copy shares the read-only round state (including the
			// compiled plans); the collector redirects head firings into a
			// private buffer, and a profiled run gets a private counter set
			// that merges at the barrier.
			local := *e
			local.collect = &[]proposal{}
			local.stats = RunStats{}
			if local.prof != nil {
				local.prof = newProfileState(len(local.prog.Rules))
			}
			res := result{errIdx: -1}
			for t := range taskCh {
				if err := local.evalTask(t.evalTask); err != nil {
					res.err, res.errIdx = err, t.idx
					cancel.Do(func() { close(done) })
					break
				}
			}
			res.proposals = *local.collect
			res.firings = local.stats.Firings
			res.prof = local.prof
			results <- res
		}()
	}
feed:
	for i, t := range par {
		select {
		case taskCh <- indexedTask{evalTask: t, idx: i}:
		case <-done:
			break feed // a worker failed: stop feeding queued tasks
		}
	}
	close(taskCh)
	wg.Wait()
	close(results)

	firstErr, firstIdx := error(nil), -1
	for res := range results {
		if res.err != nil && (firstIdx < 0 || res.errIdx < firstIdx) {
			firstErr, firstIdx = res.err, res.errIdx
		}
		e.stats.Firings += res.firings
		if e.prof != nil && res.prof != nil {
			e.prof.mergeWorker(res.prof)
		}
		for _, p := range res.proposals {
			rel, ok := e.derived[p.pred]
			if !ok {
				return fmt.Errorf("datalog: internal: proposal for unknown predicate %q", p.pred)
			}
			if rel.propose(p.tuple) {
				e.stats.Derived++
				if e.prof != nil {
					e.prof.ruleDerived[p.rule]++
				}
				// Workers fire into private buffers without counting Derived;
				// the merge is where duplicates resolve, so the MaxDerived
				// guard is authoritative here.
				if e.stats.Derived > e.maxDerived {
					return e.derivedLimitErr()
				}
			}
		}
	}
	return firstErr
}

// warmEDBCaches pre-fills the lazily built EDB caches — rows for every
// extensional predicate a rule body or registered query goal reads, and
// negation key sets for negated extensional predicates — so worker
// goroutines never write a shared map.
func (e *Engine) warmEDBCaches() {
	for _, r := range e.prog.Rules {
		for _, l := range r.Body {
			switch a := l.(type) {
			case RelAtom:
				if !e.idb[a.Pred] {
					e.edbRows(a.Pred)
				}
			case NotAtom:
				if !e.idb[a.Atom.Pred] {
					e.hasTuple(a.Atom.Pred, nil)
				}
			}
		}
	}
	e.goalMu.Lock()
	goals := make([]string, 0, len(e.goalPreds))
	for p := range e.goalPreds {
		goals = append(goals, p)
	}
	e.goalMu.Unlock()
	for _, p := range goals {
		if !e.idb[p] {
			e.edbRows(p)
		}
	}
}
