package datalog

import (
	"context"
	"errors"
	"fmt"

	"videodb/internal/constraint"
)

// Cancellation and resource guards. An engine built with WithContext
// observes its context cooperatively: once per fixpoint round, every
// cancelCheckInterval candidate tuples inside the join kernel (so a
// single pathological join cannot outlive its request), and — through a
// constraint.Budget installed for the run — inside constraint-level
// checks. Cancelled evaluations return an error that errors.Is-matches
// both ErrCanceled and the context's own cause (context.Canceled or
// context.DeadlineExceeded), so callers can distinguish "the client went
// away" from "the query was wrong".

// ErrCanceled marks evaluation errors caused by context cancellation or
// deadline expiry. Test with errors.Is (or IsCanceled).
var ErrCanceled = errors.New("datalog: evaluation canceled")

// ErrLimitExceeded marks evaluation errors caused by a resource guard
// tripping: MaxRounds, MaxDerived, MaxCreated, or a solver step budget.
// Test with errors.Is.
var ErrLimitExceeded = errors.New("datalog: resource limit exceeded")

// IsCanceled reports whether err (anywhere in its chain) is a
// cancellation error produced by a context-aware evaluation.
func IsCanceled(err error) bool { return errors.Is(err, ErrCanceled) }

// canceledError carries the context's error so callers can also match
// context.Canceled / context.DeadlineExceeded.
type canceledError struct{ cause error }

func (c *canceledError) Error() string {
	return fmt.Sprintf("datalog: evaluation canceled: %v", c.cause)
}

func (c *canceledError) Unwrap() error { return c.cause }

func (c *canceledError) Is(target error) bool { return target == ErrCanceled }

// WithContext makes the engine observe ctx: evaluation stops with an
// ErrCanceled-wrapped error soon after ctx is done — within one fixpoint
// round, and within cancelCheckInterval tuples inside a join.
func WithContext(ctx context.Context) Option { return func(e *Engine) { e.ctx = ctx } }

// MaxDerived bounds the number of derived tuples (excluding EDB seeds) a
// run may produce, alongside the MaxRounds iteration guard: recursion
// through wide joins can blow up the extent long before the round bound
// trips. Exceeding it returns an ErrLimitExceeded-wrapped error.
func MaxDerived(n int) Option { return func(e *Engine) { e.maxDerived = n } }

// MaxSolverSteps bounds the constraint-solver step budget of one run
// (0 = unlimited). The budget also carries the engine's cancellation
// check into constraint-level evaluation.
func MaxSolverSteps(n int64) Option { return func(e *Engine) { e.maxSolverSteps = n } }

// cancelCheckInterval is the number of join-kernel candidate tuples
// between context checks; a power of two so the hot-path test is a mask.
const cancelCheckInterval = 1 << 10

// checkCancel reports the context's cancellation as a typed error.
func (e *Engine) checkCancel() error {
	if e.ctx == nil {
		return nil
	}
	if err := e.ctx.Err(); err != nil {
		return &canceledError{cause: err}
	}
	return nil
}

// tick is called once per candidate tuple in the join kernel and class
// enumeration; it checks the context every cancelCheckInterval calls.
// With no context attached it is a single branch.
func (e *Engine) tick() error {
	if e.ctx == nil {
		return nil
	}
	e.ticks++
	if e.ticks&(cancelCheckInterval-1) != 0 {
		return nil
	}
	return e.checkCancel()
}

// spendSolver charges the run's constraint budget, translating budget
// exhaustion into the engine's limit error. Cancellation errors from the
// budget's check function pass through unchanged.
func (e *Engine) spendSolver(n int64) error {
	if err := e.budget.Spend(n); err != nil {
		return e.solverErr(err)
	}
	return nil
}

// solverErr translates an error escaping a budgeted solver call: budget
// exhaustion becomes the engine's typed limit error, while cancellation
// errors (from the budget's check function) pass through unchanged.
func (e *Engine) solverErr(err error) error {
	if errors.Is(err, constraint.ErrBudget) {
		return fmt.Errorf("%w: %v (raise MaxSolverSteps if intended)", ErrLimitExceeded, err)
	}
	return err
}
