package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// Differential oracle for the compiled evaluator: the default engine
// (compiled rule plans + constraint-solver memo) must produce exactly the
// fixpoint of the reference evaluator (per-evaluation planning, memo off),
// including under parallel evaluation. Caching and compilation are
// representation changes only — any observable difference is a bug.

// oracleCase is one store+program instance for differential comparison.
type oracleCase struct {
	name string
	st   *store.Store
	prog Program
}

func oracleCases(t *testing.T) []oracleCase {
	t.Helper()
	var cases []oracleCase

	// Structured instances covering each literal kind the compiler
	// classifies: relational recursion, negation, class enumeration with
	// the member-index lookahead, attribute assignment, comparison
	// filters, temporal atoms, entailment, and constructive heads.
	{
		s := store.New()
		for i := 0; i < 12; i++ {
			s.AddFact(store.NewFact("next",
				object.Str(fmt.Sprintf("n%02d", i)), object.Str(fmt.Sprintf("n%02d", i+1))))
		}
		cases = append(cases, oracleCase{"chain-recursion", s, NewProgram(
			NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
			NewRule(Rel("reach", Var("X"), Var("Z")),
				Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))),
		)})
	}
	{
		s := store.New()
		edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"d", "a"}}
		for _, e := range edges {
			s.AddFact(store.NewFact("edge", object.Str(e[0]), object.Str(e[1])))
		}
		cases = append(cases, oracleCase{"stratified-negation", s, NewProgram(
			NewRule(Rel("node", Var("X")), Rel("edge", Var("X"), Var("Y"))),
			NewRule(Rel("node", Var("Y")), Rel("edge", Var("X"), Var("Y"))),
			NewRule(Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("X"), Var("Y"))),
			NewRule(Rel("reach", Var("X"), Var("Z")),
				Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("Y"), Var("Z"))),
			NewRule(Rel("unreached", Var("X"), Var("Y")),
				Rel("node", Var("X")), Rel("node", Var("Y")),
				Not(Rel("reach", Var("X"), Var("Y")))),
		)})
	}
	{
		s := store.New()
		var ents []object.OID
		for i := 0; i < 5; i++ {
			oid := object.OID(fmt.Sprintf("e%d", i))
			ents = append(ents, oid)
			s.Put(object.NewEntity(oid).Set("n", object.Num(float64(i))))
		}
		for i := 0; i < 6; i++ {
			lo := float64(i * 7)
			s.Put(object.NewInterval(object.OID(fmt.Sprintf("g%d", i)),
				interval.FromPairs(lo, lo+10)).
				Set(object.AttrEntities, object.RefSet(ents[i%len(ents)], ents[(i+1)%len(ents)])))
		}
		cases = append(cases, oracleCase{"intervals-constraints", s, NewProgram(
			// Class enumeration + member-index lookahead.
			NewRule(Rel("appears", Var("O"), Var("G")),
				ObjectAtom(Var("O")), Interval(Var("G")),
				Member(TermOp(Var("O")), AttrOp(Var("G"), "entities"))),
			// Attribute assignment + comparison filter.
			NewRule(Rel("popular", Var("O"), Var("N")),
				ObjectAtom(Var("O")),
				Cmp(TermOp(Var("N")), constraint.Eq, AttrOp(Var("O"), "n")),
				Cmp(TermOp(Var("N")), constraint.Ge, TermOp(Const(object.Num(2))))),
			// Temporal atom + entailment (the constraint-memo path).
			NewRule(Rel("covers", Var("G1"), Var("G2")),
				Interval(Var("G1")), Interval(Var("G2")),
				Entails(AttrOp(Var("G2"), "duration"), AttrOp(Var("G1"), "duration"))),
			NewRule(Rel("precedes", Var("G1"), Var("G2")),
				Interval(Var("G1")), Interval(Var("G2")),
				Temporal(AttrOp(Var("G1"), "duration"), TempBefore, AttrOp(Var("G2"), "duration"))),
			// Constructive head (extended active domain).
			NewRule(Rel("merged", Concat(Var("G1"), Var("G2"))),
				Interval(Var("G1")), Interval(Var("G2")), ObjectAtom(Var("O")),
				Member(TermOp(Var("O")), AttrOp(Var("G1"), "entities")),
				Member(TermOp(Var("O")), AttrOp(Var("G2"), "entities"))),
		)})
	}

	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, p := randomInstance(r)
		cases = append(cases, oracleCase{fmt.Sprintf("random-%d", seed), s, p})
	}
	return cases
}

// fixpointOf runs an engine and returns every IDB extent (keyed rows),
// the created objects, and the run stats.
func fixpointOf(t *testing.T, e *Engine, prog Program) (map[string][]string, []*object.Object, RunStats) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ext := make(map[string][]string)
	for _, pred := range prog.IDB() {
		rows, err := e.Rows(pred)
		if err != nil {
			t.Fatalf("Rows(%s): %v", pred, err)
		}
		keys := make([]string, len(rows))
		for i, r := range rows {
			keys[i] = rowKey(r)
		}
		ext[pred] = keys
	}
	return ext, e.Created(), e.Stats()
}

func sameExtents(t *testing.T, name, label string, got, want map[string][]string) {
	t.Helper()
	for pred, w := range want {
		g := got[pred]
		if len(g) != len(w) {
			t.Fatalf("%s: %s: %s has %d vs %d tuples", name, label, pred, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: %s: %s row %d: %q vs %q", name, label, pred, i, g[i], w[i])
			}
		}
	}
}

func sameCreated(t *testing.T, name, label string, got, want []*object.Object) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s: created %d vs %d objects", name, label, len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: %s: created object %d differs: %v vs %v", name, label, i, got[i], want[i])
		}
	}
}

// TestCompiledMatchesSeedEvaluator compares the default engine against
// the reference configuration (plan cache off, constraint memo off) on
// extents, created objects, and RunStats.Derived, and against the naive
// evaluator on extents.
func TestCompiledMatchesSeedEvaluator(t *testing.T) {
	for _, tc := range oracleCases(t) {
		ref := mustEngine(t, tc.st, tc.prog, WithoutPlanCache(), WithoutConstraintMemo())
		refExt, refCreated, refStats := fixpointOf(t, ref, tc.prog)

		def := mustEngine(t, tc.st, tc.prog)
		defExt, defCreated, defStats := fixpointOf(t, def, tc.prog)
		sameExtents(t, tc.name, "compiled vs reference", defExt, refExt)
		sameCreated(t, tc.name, "compiled vs reference", defCreated, refCreated)
		if defStats.Derived != refStats.Derived {
			t.Fatalf("%s: Derived %d vs %d", tc.name, defStats.Derived, refStats.Derived)
		}
		if defStats.Created != refStats.Created {
			t.Fatalf("%s: Created %d vs %d", tc.name, defStats.Created, refStats.Created)
		}

		nv := mustEngine(t, tc.st, tc.prog, Naive())
		nvExt, nvCreated, _ := fixpointOf(t, nv, tc.prog)
		sameExtents(t, tc.name, "compiled vs naive", defExt, nvExt)
		sameCreated(t, tc.name, "compiled vs naive", defCreated, nvCreated)
	}
}

// TestCompiledMatchesUnderParallel repeats the comparison with worker
// pools of several sizes (run with -race in the Makefile's race target).
func TestCompiledMatchesUnderParallel(t *testing.T) {
	for _, tc := range oracleCases(t) {
		ref := mustEngine(t, tc.st, tc.prog, WithoutPlanCache(), WithoutConstraintMemo())
		refExt, refCreated, refStats := fixpointOf(t, ref, tc.prog)
		for _, workers := range []int{2, 4} {
			par := mustEngine(t, tc.st, tc.prog, Parallel(workers))
			parExt, parCreated, parStats := fixpointOf(t, par, tc.prog)
			label := fmt.Sprintf("parallel(%d) vs reference", workers)
			sameExtents(t, tc.name, label, parExt, refExt)
			sameCreated(t, tc.name, label, parCreated, refCreated)
			if parStats.Derived != refStats.Derived {
				t.Fatalf("%s: %s: Derived %d vs %d", tc.name, label, parStats.Derived, refStats.Derived)
			}
		}
	}
}

// TestParallelFirstErrorDeterministic checks the runTasks contract: when
// several tasks fail in one parallel round, the error of the earliest
// task in queue order is reported, independent of goroutine scheduling.
// Two rules' compiled plans are replaced with steps that always error;
// badA precedes badB in rule (and therefore queue) order, so badA's
// error must win on every trial.
func TestParallelFirstErrorDeterministic(t *testing.T) {
	s := store.New()
	for i := 0; i < 8; i++ {
		s.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%02d", i)), object.Str(fmt.Sprintf("n%02d", i+1))))
	}
	prog := NewProgram(
		NewRule(Rel("badA", Var("X")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("p1", Var("X")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("badB", Var("X")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("p2", Var("X")), Rel("next", Var("X"), Var("Y"))),
	)
	poison := func(msg string) []planStep {
		return []planStep{{kind: stepFilter, filter: func(*Engine, *frame) (bool, error) {
			return false, fmt.Errorf("%s", msg)
		}}}
	}
	for trial := 0; trial < 20; trial++ {
		e := mustEngine(t, s, prog, Parallel(4))
		e.compiled[0].plans[-1] = poison("boom badA")
		e.compiled[2].plans[-1] = poison("boom badB")
		err := e.Run()
		if err == nil {
			t.Fatal("expected an evaluation error")
		}
		if !strings.Contains(err.Error(), "boom badA") {
			t.Fatalf("trial %d: expected badA's error first, got: %v", trial, err)
		}
	}
}

// TestConcurrentQueriesRaceFree exercises the warmed EDB caches: queries
// over predicates referenced only as goals (never in a rule body) run
// concurrently after a parallel fixpoint without any goroutine lazily
// writing a shared map. Meaningful under -race.
func TestConcurrentQueriesRaceFree(t *testing.T) {
	s := store.New()
	for i := 0; i < 10; i++ {
		s.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%02d", i)), object.Str(fmt.Sprintf("n%02d", i+1))))
		s.AddFact(store.NewFact("standalone", object.Num(float64(i))))
		s.AddFact(store.NewFact("lonely", object.Num(float64(i)), object.Num(float64(i*2))))
	}
	prog := NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))),
	)
	e := mustEngine(t, s, prog, Parallel(4))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix of derived, body-EDB, and goal-only-EDB predicates; the
			// goal-only ones hit the locked lazy-fill path concurrently.
			if _, err := e.Rows("standalone"); err != nil {
				t.Error(err)
			}
			if _, err := e.Rows("lonely"); err != nil {
				t.Error(err)
			}
			if _, err := e.Query(Rel("reach", Var("X"), Var("Y"))); err != nil {
				t.Error(err)
			}
			if _, err := e.Query(Rel("next", Var("X"), Var("Y"))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}
