package datalog

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"videodb/internal/object"
	"videodb/internal/store"
)

// chainStore builds a next-chain of n facts, whose transitive closure
// derives n(n+1)/2 reach tuples.
func chainStore(n int) *store.Store {
	s := store.New()
	for i := 0; i < n; i++ {
		s.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%d", i)), object.Str(fmt.Sprintf("n%d", i+1))))
	}
	return s
}

func reachProgram() Program {
	return NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))),
	)
}

func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := mustEngine(t, chainStore(5), reachProgram(), WithContext(ctx))
	err := e.Run()
	if err == nil {
		t.Fatal("pre-canceled context should stop evaluation")
	}
	if !IsCanceled(err) {
		t.Errorf("err = %v, want IsCanceled", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want errors.Is ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is context.Canceled", err)
	}
}

func TestDeadlineStopsEvaluation(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	e := mustEngine(t, chainStore(5), reachProgram(), WithContext(ctx))
	err := e.Run()
	if !IsCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want errors.Is context.DeadlineExceeded", err)
	}
}

// trippingCtx is a context whose Err starts reporting Canceled after a
// fixed number of Err calls: a deterministic stand-in for "the client
// disconnects while the join kernel is mid-round".
type trippingCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *trippingCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancelWithinOneRound proves the join kernel observes cancellation
// inside a single fixpoint round: a non-recursive triple cross join over
// 80 facts visits ~512k candidate tuples in round 1 alone, far more than
// cancelCheckInterval, and a context that trips after its second check
// must stop the run while stats.Rounds is still small — not after the
// round completes its full cross product.
func TestCancelWithinOneRound(t *testing.T) {
	s := store.New()
	for i := 0; i < 80; i++ {
		s.AddFact(store.NewFact("e", object.Str(fmt.Sprintf("v%d", i))))
	}
	p := NewProgram(NewRule(
		Rel("triples", Var("A"), Var("B"), Var("C")),
		Rel("e", Var("A")), Rel("e", Var("B")), Rel("e", Var("C")),
	))
	ctx := &trippingCtx{Context: context.Background(), after: 2}
	e := mustEngine(t, s, p, WithContext(ctx))
	err := e.Run()
	if !IsCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	// The run died mid-round: nowhere near the 512000 firings of the full
	// cross product, and within one tick interval of the trip point.
	if e.Stats().Firings >= 80*80*80 {
		t.Errorf("run completed the full cross product (%d firings) before noticing cancellation", e.Stats().Firings)
	}
	if got := ctx.calls.Load(); got > ctx.after+1 {
		t.Errorf("context checked %d times after tripping, want at most 1", got-ctx.after)
	}
}

func TestUncancelledContextDoesNotChangeResults(t *testing.T) {
	s := chainStore(6)
	p := reachProgram()
	plain := mustEngine(t, s, p)
	ctxed := mustEngine(t, s, p, WithContext(context.Background()))
	q := Rel("reach", Var("X"), Var("Y"))
	a, err := plain.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctxed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 6*7/2 {
		t.Errorf("results diverge with a live context: %d vs %d", len(a), len(b))
	}
}

func TestMaxDerivedGuardSerial(t *testing.T) {
	e := mustEngine(t, chainStore(50), reachProgram(), MaxDerived(100))
	err := e.Run()
	if err == nil {
		t.Fatal("MaxDerived(100) should trip on 1275 reach tuples")
	}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("err = %v, want errors.Is ErrLimitExceeded", err)
	}
	if IsCanceled(err) {
		t.Errorf("limit error must not look like a cancellation: %v", err)
	}
	// A generous bound converges normally.
	e2 := mustEngine(t, chainStore(50), reachProgram(), MaxDerived(10_000))
	if err := e2.Run(); err != nil {
		t.Errorf("generous MaxDerived failed: %v", err)
	}
}

func TestMaxDerivedGuardParallel(t *testing.T) {
	e := mustEngine(t, chainStore(50), reachProgram(), MaxDerived(100), Parallel(4))
	err := e.Run()
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("parallel err = %v, want errors.Is ErrLimitExceeded", err)
	}
}

func TestMaxRoundsErrorIsTyped(t *testing.T) {
	e := mustEngine(t, chainStore(5), reachProgram(), MaxRounds(2))
	if err := e.Run(); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("MaxRounds err = %v, want errors.Is ErrLimitExceeded", err)
	}
}

func TestMaxSolverStepsGuard(t *testing.T) {
	s := ropeStore(t)
	// Each candidate G spends one solver step on the temporal filter; a
	// budget of 1 cannot cover both intervals.
	p := NewProgram(NewRule(
		Rel("q", Var("G"), Var("H")),
		Interval(Var("G")), Interval(Var("H")),
		Temporal(AttrOp(Var("G"), "duration"), TempBefore, AttrOp(Var("H"), "duration")),
	))
	e := mustEngine(t, s, p, MaxSolverSteps(1))
	err := e.Run()
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err = %v, want errors.Is ErrLimitExceeded", err)
	}
	// Unlimited (default) evaluates fine.
	e2 := mustEngine(t, s, p)
	if err := e2.Run(); err != nil {
		t.Errorf("unbudgeted run failed: %v", err)
	}
}

// TestCancelReleasesParallelWorkers exercises the worker pool under a
// deadline: the run must return (not deadlock) with a cancellation error.
func TestCancelReleasesParallelWorkers(t *testing.T) {
	s := store.New()
	for i := 0; i < 120; i++ {
		s.AddFact(store.NewFact("e", object.Str(fmt.Sprintf("v%d", i))))
	}
	p := NewProgram(
		NewRule(Rel("pairs", Var("A"), Var("B")), Rel("e", Var("A")), Rel("e", Var("B"))),
		NewRule(Rel("triples", Var("A"), Var("B"), Var("C")),
			Rel("pairs", Var("A"), Var("B")), Rel("e", Var("C"))),
	)
	ctx := &trippingCtx{Context: context.Background(), after: 4}
	e := mustEngine(t, s, p, WithContext(ctx), Parallel(4))
	done := make(chan error, 1)
	go func() { done <- e.Run() }()
	select {
	case err := <-done:
		if !IsCanceled(err) {
			t.Errorf("err = %v, want cancellation", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled parallel run did not return")
	}
}
