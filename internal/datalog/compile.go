package datalog

import (
	"fmt"
	"strings"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
)

// Rule compilation. The seed evaluator re-planned every rule body on every
// (rule, delta) task of every round and carried bindings in a map with
// delete-undo churn. This file compiles each rule once, at NewEngine time,
// into an execution form:
//
//   - a per-rule variable numbering (name -> slot), so bindings live in a
//     flat frame indexed by slot instead of a map;
//   - one ordered step list per delta position (plus -1 for the full
//     round), with every literal classified at compile time: relational
//     scan, class enumeration, class membership check, equality
//     assignment, or filter;
//   - for relational steps, the argument positions that are statically
//     bound when the step runs — the join-index probe candidates. At run
//     time the kernel probes every candidate position and scans the most
//     selective (shortest) posting list, rather than the first bound
//     position the seed evaluator happened to meet;
//   - precomputed join-index key strings for constant arguments, and a
//     per-slot key cache in the frame so a bound value is rendered at most
//     once per binding, not once per probe.
//
// Compilation is purely a change of representation: the step order is the
// exact order planBody chooses, and every runtime decision that depends on
// data (index selectivity, member-index applicability) is still made at
// run time. WithoutPlanCache re-compiles per evaluation for ablation.

// compiledRule is the execution form of one rule. It is immutable after
// compilation, so engines may share it: the cross-query plan cache hands
// the same compiledRule to every engine evaluating the program.
type compiledRule struct {
	rule         Rule
	nVars        int
	varNames     []string       // slot -> variable name
	varSlots     map[string]int // variable name -> slot
	head         []headSpec
	constructive bool               // head contains ⊕ (precomputed for the hot path)
	plans        map[int][]planStep // delta body position (-1 = full) -> steps
}

// headSpec instantiates one head argument from a frame.
type headSpec struct {
	slot   int          // >= 0: variable slot
	val    object.Value // constant (slot < 0, concat == nil)
	vid    uint64       // interned id of val (streaming head dedup)
	concat *Term        // constructive term (evaluated recursively)
}

type stepKind uint8

const (
	stepRel        stepKind = iota // relational atom: scan or index probe
	stepClassEnum                  // class atom generating candidates
	stepClassCheck                 // class atom with a determined argument
	stepAssign                     // equality atom binding its target
	stepFilter                     // constraint atom with all variables bound
)

// opSpec is a compiled operand: a slot or constant, optionally followed by
// an attribute access.
type opSpec struct {
	slot int // >= 0: variable slot; -1: constant
	val  object.Value
	attr string
	src  Operand // original operand, for error messages
}

// argSpec is a compiled relational-atom argument. Constants carry both
// the rendered join-index key (materializing mode) and the globally
// interned value id (streaming mode); ids are process-stable, so compiled
// plans embedding them are safe to share across engines.
type argSpec struct {
	slot int          // >= 0: variable slot; -1: constant
	val  object.Value // constant value
	key  string       // precomputed join-index key for constants
	vid  uint64       // precomputed interned id for constants
}

// memberSpec is a compiled "elem ∈ V.entities" lookahead: if elem resolves
// to an object reference when the class atom runs, the store's inverted
// entity index narrows the candidate set.
type memberSpec struct {
	elem opSpec
}

// filterFunc evaluates a compiled filter literal against a frame. It takes
// the engine as an argument (rather than capturing it) so that the
// shallow-copied worker engines of parallel evaluation reuse the same
// compiled plans.
type filterFunc func(e *Engine, fr *frame) (bool, error)

// planStep is one step of a compiled plan.
type planStep struct {
	kind     stepKind
	pos      int // body literal index
	useDelta bool

	// stepRel
	pred       string
	args       []argSpec
	probes     []int // argument positions statically bound at this step
	varProbes  []int // probes bound by variables (probed after constant pushdown)
	constSig   string // cache key for constant-pushdown scans ("" = no constants)
	freshSlots []int  // slots this step binds (cleared on backtrack)

	// stepClassEnum / stepClassCheck
	classKind   object.Kind
	classArg    argSpec
	memberSpecs []memberSpec
	// window, when set on an Interval enumeration, is the hull of a later
	// solver-decidable guard pinning the variable's duration (G.duration ⇒
	// const): the streaming executor pushes it into the store's interval
	// tree instead of enumerating the whole active domain. The guard still
	// runs, so the pushed scan only needs to over-approximate.
	window *interval.Span

	// stepAssign
	assignSlot int
	assignSrc  opSpec

	// stepFilter
	filter filterFunc
}

// frame is the flat binding store for one rule evaluation: values indexed
// by the rule's compile-time variable numbering, plus a lazily filled
// per-slot cache of join-index keys so a bound value is keyed at most
// once per binding. Interned (streaming) frames cache uint64 ids; string
// frames cache the rendered form. scratch is the head-instantiation
// buffer the streaming executor fills to dedup-check a firing before
// allocating the tuple.
type frame struct {
	vals  []object.Value
	bound []bool

	keys  []string // string-keyed mode
	keyed []bool

	ids  []uint64 // interned mode
	idok []bool

	scratch    row
	scratchIDs []uint64
}

func newFrame(cr *compiledRule, interned bool) *frame {
	n := cr.nVars
	fr := &frame{
		vals:  make([]object.Value, n),
		bound: make([]bool, n),
	}
	if interned {
		fr.ids = make([]uint64, n)
		fr.idok = make([]bool, n)
		fr.scratch = make(row, len(cr.head))
		fr.scratchIDs = make([]uint64, len(cr.head))
	} else {
		fr.keys = make([]string, n)
		fr.keyed = make([]bool, n)
	}
	return fr
}

func (fr *frame) bind(slot int, v object.Value) {
	fr.vals[slot] = v
	fr.bound[slot] = true
	if fr.idok != nil {
		fr.idok[slot] = false
	} else {
		fr.keyed[slot] = false
	}
}

// bindID binds a slot whose interned id is already known (the value came
// from a relation row that carries its ids), pre-filling the frame's id
// cache so later probes and head folds skip the intern-table lookup.
// Interned (streaming) frames only.
func (fr *frame) bindID(slot int, v object.Value, id uint64) {
	fr.vals[slot] = v
	fr.bound[slot] = true
	fr.ids[slot] = id
	fr.idok[slot] = true
}

func (fr *frame) unbind(slot int) {
	fr.bound[slot] = false
	if fr.idok != nil {
		fr.idok[slot] = false
	} else {
		fr.keyed[slot] = false
	}
}

// key returns the join-index key of the bound slot, caching the rendering.
func (fr *frame) key(slot int) string {
	if !fr.keyed[slot] {
		fr.keys[slot] = fr.vals[slot].String()
		fr.keyed[slot] = true
	}
	return fr.keys[slot]
}

// id returns the interned id of the bound slot, caching the intern lookup.
func (fr *frame) id(slot int) uint64 {
	if !fr.idok[slot] {
		fr.ids[slot] = valueID(fr.vals[slot])
		fr.idok[slot] = true
	}
	return fr.ids[slot]
}

// bindingsOf reconstructs a name->value map from the frame (provenance
// tracing only; the hot path never builds it).
func (cr *compiledRule) bindingsOf(fr *frame) bindings {
	b := make(bindings, cr.nVars)
	for s, name := range cr.varNames {
		if fr.bound[s] {
			b[name] = fr.vals[s]
		}
	}
	return b
}

// compileRule builds the execution form of a rule: the variable numbering,
// the head instantiation spec, and one compiled plan per delta position
// the rule can take in its stratum.
func (e *Engine) compileRule(r Rule, stratum int) (*compiledRule, error) {
	cr := compileSkeleton(r)
	deltas := append([]int{-1}, e.deltaPositionsIn(r, stratum)...)
	for _, d := range deltas {
		if _, ok := cr.plans[d]; ok {
			continue
		}
		steps, err := e.compilePlan(cr, r, d)
		if err != nil {
			return nil, fmt.Errorf("datalog: rule %s: %w", r.label(), err)
		}
		cr.plans[d] = steps
	}
	return cr, nil
}

// compileRuleOne builds the execution form with only the plan for one
// delta position — the WithoutPlanCache ablation path, which pays the
// per-evaluation planning cost the seed evaluator paid.
func (e *Engine) compileRuleOne(r Rule, deltaPos int) (*compiledRule, error) {
	cr := compileSkeleton(r)
	steps, err := e.compilePlan(cr, r, deltaPos)
	if err != nil {
		return nil, fmt.Errorf("datalog: rule %s: %w", r.label(), err)
	}
	cr.plans[deltaPos] = steps
	return cr, nil
}

// compileSkeleton numbers the rule's variables and compiles the head spec.
func compileSkeleton(r Rule) *compiledRule {
	cr := &compiledRule{
		rule:     r,
		varSlots: make(map[string]int),
		plans:    make(map[int][]planStep),
	}
	slotOf := func(name string) int {
		if s, ok := cr.varSlots[name]; ok {
			return s
		}
		s := len(cr.varNames)
		cr.varSlots[name] = s
		cr.varNames = append(cr.varNames, name)
		return s
	}
	vars := map[string]bool{}
	for _, l := range r.Body {
		l.collectVars(vars)
	}
	r.Head.collectVars(vars)
	for _, l := range r.Body { // number in body-occurrence order
		for _, v := range VarsOf(l) {
			slotOf(v)
		}
	}
	for v := range vars { // head-only vars (range restriction rejects them later)
		slotOf(v)
	}
	cr.nVars = len(cr.varNames)

	for _, t := range r.Head.Args {
		switch {
		case t.IsConcat():
			tt := t
			cr.constructive = true
			cr.head = append(cr.head, headSpec{slot: -1, concat: &tt})
		case t.IsVar():
			cr.head = append(cr.head, headSpec{slot: slotOf(t.Name())})
		default:
			v := t.Value()
			cr.head = append(cr.head, headSpec{slot: -1, val: v, vid: valueID(v)})
		}
	}
	return cr
}

// compilePlan orders the body with planBody and classifies each literal,
// tracking which slots are bound as the plan progresses.
func (e *Engine) compilePlan(cr *compiledRule, r Rule, deltaPos int) ([]planStep, error) {
	plan, err := planBody(r.Body, deltaPos)
	if err != nil {
		return nil, err
	}
	boundSlots := make([]bool, cr.nVars)
	steps := make([]planStep, 0, len(plan))
	for i, pos := range plan {
		lit := r.Body[pos]
		st := planStep{pos: pos, useDelta: pos == deltaPos}
		switch a := lit.(type) {
		case RelAtom:
			st.kind = stepRel
			st.pred = a.Pred
			st.args = make([]argSpec, len(a.Args))
			seenHere := map[int]bool{}
			for k, t := range a.Args {
				if !t.IsVar() {
					v := t.Value()
					st.args[k] = argSpec{slot: -1, val: v, key: v.String(), vid: valueID(v)}
					st.probes = append(st.probes, k)
					continue
				}
				s := cr.varSlots[t.Name()]
				st.args[k] = argSpec{slot: s}
				switch {
				case boundSlots[s]:
					st.probes = append(st.probes, k)
					st.varProbes = append(st.varProbes, k)
				case !seenHere[s]:
					st.freshSlots = append(st.freshSlots, s)
					seenHere[s] = true
				}
			}
			for _, s := range st.freshSlots {
				boundSlots[s] = true
			}
			// Constant arguments are pushdown candidates: an extensional
			// scan can filter them inside the store instead of copying the
			// full extent and probing an engine-side index. constSig keys
			// the per-engine cache of pushed scans.
			if nc := len(st.probes) - len(st.varProbes); nc > 0 {
				var sig strings.Builder
				sig.WriteString(a.Pred)
				for k, as := range st.args {
					if as.slot < 0 {
						fmt.Fprintf(&sig, "\x00%d\x1f%s", k, as.key)
					}
				}
				st.constSig = sig.String()
			}

		case ClassAtom:
			st.classKind = a.Kind
			if !a.Arg.IsVar() {
				st.kind = stepClassCheck
				st.classArg = argSpec{slot: -1, val: a.Arg.Value()}
				break
			}
			s := cr.varSlots[a.Arg.Name()]
			st.classArg = argSpec{slot: s}
			if boundSlots[s] {
				st.kind = stepClassCheck
				break
			}
			st.kind = stepClassEnum
			st.memberSpecs = e.compileMemberLookahead(cr, r, plan[i+1:], a.Arg.Name(), boundSlots)
			if a.Kind == object.GenInterval {
				st.window = compileWindowLookahead(r, plan[i+1:], a.Arg.Name())
			}
			boundSlots[s] = true

		case CmpAtom:
			target, ok := unboundTarget(cr, a, boundSlots)
			if !ok {
				st.kind = stepFilter
				st.filter = compileFilter(cr, lit)
				break
			}
			src, ok := assignSource(cr, a, target, boundSlots)
			if !ok {
				// No resolvable orientation: evaluate as a filter, which
				// reports the unbound variable exactly as the seed
				// evaluator did.
				st.kind = stepFilter
				st.filter = compileFilter(cr, lit)
				boundSlots[cr.varSlots[target]] = true // mirror planBody's assumption
				break
			}
			st.kind = stepAssign
			st.assignSlot = cr.varSlots[target]
			st.assignSrc = compileOperand(cr, src)
			boundSlots[st.assignSlot] = true

		default:
			st.kind = stepFilter
			st.filter = compileFilter(cr, lit)
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// unboundTarget reports the single unbound plain-variable the equality
// atom could bind, mirroring planBody's assignment placement.
func unboundTarget(cr *compiledRule, a CmpAtom, boundSlots []bool) (string, bool) {
	vars := map[string]bool{}
	a.collectVars(vars)
	target, n := "", 0
	for v := range vars {
		if !boundSlots[cr.varSlots[v]] {
			target = v
			n++
		}
	}
	if n != 1 {
		return "", false
	}
	for _, as := range a.assignments() {
		if as.target == target {
			return target, true
		}
	}
	return "", false
}

// assignSource picks the first assignment orientation whose target is the
// given variable and whose source operand is fully bound.
func assignSource(cr *compiledRule, a CmpAtom, target string, boundSlots []bool) (Operand, bool) {
	for _, as := range a.assignments() {
		if as.target != target {
			continue
		}
		srcVars := map[string]bool{}
		as.src.collectVars(srcVars)
		ok := true
		for v := range srcVars {
			if !boundSlots[cr.varSlots[v]] {
				ok = false
				break
			}
		}
		if ok {
			return as.src, true
		}
	}
	return Operand{}, false
}

// compileMemberLookahead finds later "elem ∈ V.entities" constraints whose
// element is a constant or an already-bound variable; at run time the
// first one resolving to an object reference selects the store's inverted
// entity index.
func (e *Engine) compileMemberLookahead(cr *compiledRule, r Rule, rest []int, classVar string, boundSlots []bool) []memberSpec {
	var specs []memberSpec
	for _, pos := range rest {
		m, ok := r.Body[pos].(MemberAtom)
		if !ok || len(m.Elems) == 0 {
			continue
		}
		if m.Set.Attr != object.AttrEntities || !m.Set.Term.IsVar() || m.Set.Term.Name() != classVar {
			continue
		}
		elem := m.Elems[0]
		if elem.Attr != "" {
			continue
		}
		if elem.Term.IsVar() {
			if !boundSlots[cr.varSlots[elem.Term.Name()]] {
				continue // unbound when the class atom runs; never usable
			}
			specs = append(specs, memberSpec{elem: compileOperand(cr, Operand{Term: elem.Term})})
		} else if !elem.Term.IsConcat() {
			specs = append(specs, memberSpec{elem: compileOperand(cr, Operand{Term: elem.Term})})
		}
	}
	return specs
}

// compileWindowLookahead finds a later solver-decidable guard that pins
// the enumerated interval's duration against a constant temporal value —
// the paper's frame-query shape "G.duration ⇒ (t > a ∧ t < b)" — and
// returns the constant's hull as a pushdown window. Only entailment
// qualifies: its semantics (every instant of G.duration satisfies the
// constant) guarantee that any satisfying nonempty duration lies within
// the hull, so the store's interval-tree scan over-approximates the guard
// (empty durations entail vacuously and are re-added by the executor).
func compileWindowLookahead(r Rule, rest []int, classVar string) *interval.Span {
	for _, pos := range rest {
		a, ok := r.Body[pos].(EntailAtom)
		if !ok {
			continue
		}
		if a.Left.Attr != object.AttrDuration || !a.Left.Term.IsVar() || a.Left.Term.Name() != classVar {
			continue
		}
		if a.Right.Attr != "" || a.Right.Term.IsVar() || a.Right.Term.IsConcat() {
			continue
		}
		rt, ok := a.Right.Term.Value().AsTemporal()
		if !ok || rt.IsEmpty() {
			continue
		}
		w := rt.Hull()
		return &w
	}
	return nil
}

// compileOperand resolves an operand's variable to its slot.
func compileOperand(cr *compiledRule, o Operand) opSpec {
	sp := opSpec{slot: -1, attr: o.Attr, src: o}
	switch {
	case o.Term.IsVar():
		sp.slot = cr.varSlots[o.Term.Name()]
	case o.Term.IsConcat():
		// Constructive terms never appear in bodies (Validate rejects
		// them); keep the null value so evaluation fails cleanly.
	default:
		sp.val = o.Term.Value()
	}
	return sp
}

// resolveOp resolves a compiled operand under the frame: the base value,
// then the attribute projection if any. A null result means "constraint
// cannot hold", matching resolveOperand.
func (e *Engine) resolveOp(sp opSpec, fr *frame) (object.Value, error) {
	var v object.Value
	if sp.slot >= 0 {
		if !fr.bound[sp.slot] {
			return object.Null(), fmt.Errorf("unbound variable %q in constraint operand %s", sp.src.Term.Name(), sp.src)
		}
		v = fr.vals[sp.slot]
	} else {
		v = sp.val
	}
	if sp.attr == "" {
		return v, nil
	}
	oid, isRef := v.AsRef()
	if !isRef {
		return object.Null(), nil
	}
	obj := e.Object(oid)
	if obj == nil {
		return object.Null(), nil
	}
	return obj.Attr(sp.attr), nil
}

// compileFilter builds the evaluator for a filter-position literal.
func compileFilter(cr *compiledRule, l Literal) filterFunc {
	switch a := l.(type) {
	case CmpAtom:
		left, right, op := compileOperand(cr, a.Left), compileOperand(cr, a.Right), a.Op
		return func(e *Engine, fr *frame) (bool, error) {
			lv, err := e.resolveOp(left, fr)
			if err != nil {
				return false, err
			}
			rv, err := e.resolveOp(right, fr)
			if err != nil {
				return false, err
			}
			return compareValues(lv, op, rv), nil
		}

	case MemberAtom:
		set := compileOperand(cr, a.Set)
		elems := make([]opSpec, len(a.Elems))
		for i, el := range a.Elems {
			elems[i] = compileOperand(cr, el)
		}
		return func(e *Engine, fr *frame) (bool, error) {
			sv, err := e.resolveOp(set, fr)
			if err != nil {
				return false, err
			}
			for _, el := range elems {
				ev, err := e.resolveOp(el, fr)
				if err != nil {
					return false, err
				}
				if !sv.ContainsElem(ev) {
					return false, nil
				}
			}
			return true, nil
		}

	case EntailAtom:
		left, right := compileOperand(cr, a.Left), compileOperand(cr, a.Right)
		return func(e *Engine, fr *frame) (bool, error) {
			lv, err := e.resolveOp(left, fr)
			if err != nil {
				return false, err
			}
			rv, err := e.resolveOp(right, fr)
			if err != nil {
				return false, err
			}
			lt, ok1 := lv.AsTemporal()
			rt, ok2 := rv.AsTemporal()
			if !ok1 || !ok2 {
				return false, nil
			}
			// Entailment is decided by the dense-order solver (the paper's
			// point-based route, verdict-identical to interval containment
			// per the temporal package's property tests). The call carries
			// the run budget, so MaxSolverSteps and cancellation reach
			// inside the check and every memo lookup is attributed to this
			// engine; repeated checks across rounds and queries resolve to
			// a memo hit instead of a re-solve.
			ok, err := constraint.DurationFormula(lt).EntailsWithin(constraint.DurationFormula(rt), e.budget)
			if err != nil {
				return false, e.solverErr(err)
			}
			return ok, nil
		}

	case TemporalAtom:
		left, right, rel := compileOperand(cr, a.Left), compileOperand(cr, a.Right), a.Rel
		return func(e *Engine, fr *frame) (bool, error) {
			if err := e.spendSolver(1); err != nil {
				return false, err
			}
			lv, err := e.resolveOp(left, fr)
			if err != nil {
				return false, err
			}
			rv, err := e.resolveOp(right, fr)
			if err != nil {
				return false, err
			}
			lt, ok1 := lv.AsTemporal()
			rt, ok2 := rv.AsTemporal()
			if !ok1 || !ok2 {
				return false, nil
			}
			return evalTemporalRel(rel, lt, rt), nil
		}

	case NotAtom:
		atom := a.Atom
		args := make([]opSpec, len(atom.Args))
		for i, t := range atom.Args {
			args[i] = compileOperand(cr, Operand{Term: t})
		}
		return func(e *Engine, fr *frame) (bool, error) {
			tuple := make(row, len(args))
			for i, sp := range args {
				if sp.slot >= 0 {
					if !fr.bound[sp.slot] {
						return false, fmt.Errorf("unbound variable %q in negated atom %s", atom.Args[i].Name(), a)
					}
					tuple[i] = fr.vals[sp.slot]
				} else {
					tuple[i] = sp.val
				}
			}
			return !e.hasTuple(atom.Pred, tuple), nil
		}

	default:
		return func(e *Engine, fr *frame) (bool, error) {
			return false, fmt.Errorf("unexpected literal %T in filter position", l)
		}
	}
}

// match unifies a tuple against the step's compiled arguments, binding
// fresh slots in place. On failure the caller clears freshSlots (binding
// is idempotent to clear), so no undo list is allocated.
func (st *planStep) match(fr *frame, tuple row) bool {
	if len(tuple) != len(st.args) {
		return false // arity mismatch: the fact cannot unify
	}
	for k := range st.args {
		a := &st.args[k]
		if a.slot < 0 {
			if !a.val.Equal(tuple[k]) {
				return false
			}
			continue
		}
		if fr.bound[a.slot] {
			if !fr.vals[a.slot].Equal(tuple[k]) {
				return false
			}
			continue
		}
		fr.bind(a.slot, tuple[k])
	}
	return true
}

// matchIDs is match for a tuple that carries its interned value ids:
// fresh slots bind value and id together, so downstream index probes and
// head folds read the frame's id cache instead of the intern table.
// Equality checks are unchanged (ids are a cache, not a semantics); ids
// may be nil or short (rows from sources that don't carry them), in
// which case the affected slots bind lazily like match.
func (st *planStep) matchIDs(fr *frame, tuple row, ids []uint64) bool {
	if len(tuple) != len(st.args) {
		return false // arity mismatch: the fact cannot unify
	}
	withIDs := len(ids) == len(tuple)
	for k := range st.args {
		a := &st.args[k]
		if a.slot < 0 {
			if !a.val.Equal(tuple[k]) {
				return false
			}
			continue
		}
		if fr.bound[a.slot] {
			if !fr.vals[a.slot].Equal(tuple[k]) {
				return false
			}
			continue
		}
		if withIDs {
			fr.bindID(a.slot, tuple[k], ids[k])
		} else {
			fr.bind(a.slot, tuple[k])
		}
	}
	return true
}

// clearFresh unbinds the slots this step binds (backtracking).
func (st *planStep) clearFresh(fr *frame) {
	for _, s := range st.freshSlots {
		fr.unbind(s)
	}
}

// probeKey returns the join-index key for the argument at position k:
// precomputed for constants, cached per binding for variables.
func (st *planStep) probeKey(fr *frame, k int) string {
	a := &st.args[k]
	if a.slot < 0 {
		return a.key
	}
	return fr.key(a.slot)
}

// probeID is probeKey for interned (streaming) evaluation.
func (st *planStep) probeID(fr *frame, k int) uint64 {
	a := &st.args[k]
	if a.slot < 0 {
		return a.vid
	}
	return fr.id(a.slot)
}
