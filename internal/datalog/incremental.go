package datalog

import (
	"fmt"

	"videodb/internal/object"
)

// Incremental maintenance: given the extension a previous run computed
// and a net batch of extensional fact changes, RunIncremental brings the
// engine's relations to the fixpoint of the mutated database without
// recomputing from scratch.
//
//   - Insertions propagate semi-naively: the inserted facts form the
//     first delta, and the standard rounds (reusing the compiled plans
//     and the join kernel, parallel when configured) run to fixpoint.
//   - Deletions use delete-and-rederive (DRed): an over-deletion pass
//     marks every tuple with a derivation through a deleted fact
//     (evaluating rule bodies with the deletion delta in each position,
//     against the *pre-batch* extents), the marked tuples are removed,
//     and the affected predicates' rules re-run once against the reduced
//     database to rederive tuples with surviving alternative support;
//     anything rederived then propagates like an insertion.
//
// The method is restricted to programs this is sound for: positive
// (negation-free) and non-constructive — exactly the monotone fragment
// where the fixpoint is determined by the EDB and DRed's
// over-delete/rederive theorem applies. Callers fall back to a full
// recompute otherwise (core.DB.Materialize does this automatically).

// Extension is the materialized extension of a run's IDB predicates:
// predicate name to tuples, in no particular order. The tuples are
// shared, not copied — treat them as immutable.
type Extension map[string][][]object.Value

// FactDelta maps predicate names to tuples of extensional facts added or
// removed since the extension was computed. Deltas must be net: a fact
// both added and removed since the prior run must appear in neither map,
// and inserted facts must be present in (deleted facts absent from) the
// store the engine reads.
type FactDelta map[string][][]object.Value

// SupportsIncremental reports whether the program is in the fragment
// RunIncremental maintains: positive (no negation) and non-constructive
// (no ⊕ in rule heads). Such programs are monotone in the EDB, which is
// what delete-and-rederive requires; they also always stratify into the
// single stratum 0.
func (p Program) SupportsIncremental() bool {
	for _, r := range p.Rules {
		if r.IsConstructive() {
			return false
		}
		for _, l := range r.Body {
			if _, ok := l.(NotAtom); ok {
				return false
			}
		}
	}
	return true
}

// Extensions returns the extension of every IDB predicate. Call after
// Run or RunIncremental has completed; the result is what a later engine
// passes to RunIncremental as prior. The tuple slices are snapshots but
// the tuples themselves are shared with the engine — do not mutate them.
func (e *Engine) Extensions() Extension {
	out := make(Extension, len(e.derived))
	for pred, rel := range e.derived {
		ext := make([][]object.Value, len(rel.rows))
		for i, r := range rel.rows {
			ext[i] = r
		}
		out[pred] = ext
	}
	return out
}

// RunIncremental computes the fixpoint of the engine's program over the
// current store by maintaining prior — the Extensions() of a previous
// run over the pre-batch store — against the net fact changes (ins,
// del). It occupies the engine's single run slot: afterwards Query/Rows
// serve the maintained extension, and a second Run or RunIncremental on
// the same engine is an error. On error (including cancellation) the
// relations are left in an undefined state; discard the engine.
func (e *Engine) RunIncremental(prior Extension, ins, del FactDelta) error {
	called := false
	e.runOnce.Do(func() {
		called = true
		*e.ran = true
		e.runErr = e.runGuarded(func() error { return e.runIncremental(prior, ins, del) })
	})
	if !called {
		return fmt.Errorf("datalog: RunIncremental on an engine that already ran (each engine evaluates once)")
	}
	return e.runErr
}

func (e *Engine) runIncremental(prior Extension, ins, del FactDelta) error {
	switch {
	case e.trace:
		return fmt.Errorf("datalog: incremental maintenance does not record provenance (use a fresh traced run)")
	case e.eager || e.naive:
		return fmt.Errorf("datalog: incremental maintenance requires the default semi-naive evaluator")
	case !e.prog.SupportsIncremental():
		return fmt.Errorf("datalog: program is outside the incrementally maintainable fragment (negation or constructive rules)")
	}

	// Re-materialize the prior extension (it already contains the seeded
	// extensional facts of IDB predicates, so seedEDB is not rerun; fact
	// changes on IDB predicates arrive through ins/del instead). Tuples
	// are shared with the prior run, not copied: relations never mutate
	// a tuple in place, so aliasing is safe.
	for pred, rel := range e.derived {
		for _, t := range prior[pred] {
			rel.seed(row(t))
		}
	}

	insRows := deltaRows(ins)
	delRows := deltaRows(del)

	// Pin the *pre-batch* extents of changed extensional predicates into
	// the EDB cache: over-deletion joins must run against the database
	// the prior extension was computed from. Pre-batch = store minus net
	// inserts plus net deletes.
	changedEDB := make(map[string]bool)
	for pred := range insRows {
		if !e.idb[pred] {
			changedEDB[pred] = true
		}
	}
	for pred := range delRows {
		if !e.idb[pred] {
			changedEDB[pred] = true
		}
	}
	for pred := range changedEDB {
		skip := newKeySet(e.in, len(insRows[pred]))
		for _, t := range insRows[pred] {
			skip.add(t)
		}
		old := newRelation(e.in)
		for _, t := range e.edbRelation(pred).rows {
			if !skip.has(t) {
				old.rows = append(old.rows, t)
			}
		}
		old.rows = append(old.rows, delRows[pred]...)
		e.edbCache[pred] = old
	}

	// Phase 1: DRed over-deletion (serial; the delSet bookkeeping is not
	// worker-safe and deletion deltas are small by construction).
	deleted, err := e.overDelete(delRows)
	if err != nil {
		return err
	}

	// Apply the over-deletion, and drop the pinned pre-batch extents so
	// every later join reads the post-batch store.
	for pred, dels := range deleted {
		if dels.len() == 0 {
			continue
		}
		rel := e.derived[pred]
		kept := make([]row, 0, len(rel.rows)-dels.len())
		var keptVids [][]uint64
		withVids := len(rel.vids) == len(rel.rows) && rel.interned()
		if withVids {
			keptVids = make([][]uint64, 0, cap(kept))
		}
		for i, t := range rel.rows {
			if !dels.has(t) {
				kept = append(kept, t)
				if withVids {
					keptVids = append(keptVids, rel.vids[i])
				}
			}
		}
		rel.rows, rel.vids = kept, keptVids
		for _, t := range e.delTuples[pred] {
			rel.keys.remove(t)
		}
		rel.delta, rel.deltaVids = nil, nil
		rel.next, rel.nextVids = nil, nil
		rel.idx = nil // row indexes shifted; rebuild lazily
	}
	for pred := range changedEDB {
		delete(e.edbCache, pred)
		delete(e.edbKeys, pred)
	}

	// Phase 2: rederive. Rules whose head lost tuples re-run once against
	// the reduced extents (and the post-batch EDB); tuples with surviving
	// alternative derivations are re-proposed and, at the next round
	// boundary, become deltas that propagate like insertions.
	for ri, r := range e.prog.Rules {
		if dels := deleted[r.Head.Pred]; dels != nil && dels.len() > 0 {
			if err := e.evalRule(ri, -1); err != nil {
				return err
			}
		}
	}

	// Phase 3: insertion propagation. Inserted facts on IDB predicates
	// join the proposals; inserted facts on extensional predicates form
	// one EDB delta round. From there the standard semi-naive rounds run
	// to fixpoint (parallel when configured).
	for pred, rows := range insRows {
		if rel, ok := e.derived[pred]; ok {
			for _, t := range rows {
				rel.propose(t)
			}
		}
	}
	e.advance()
	e.edbDelta = make(map[string][]row)
	for pred, rows := range insRows {
		if !e.idb[pred] && len(rows) > 0 {
			e.edbDelta[pred] = rows
		}
	}
	var round1 []evalTask
	for ri, r := range e.prog.Rules {
		for pos, l := range r.Body {
			a, ok := l.(RelAtom)
			if !ok {
				continue
			}
			n := 0
			if e.idb[a.Pred] {
				n = len(e.derived[a.Pred].delta)
			} else {
				n = len(e.edbDelta[a.Pred])
			}
			if n > 0 {
				round1 = append(round1, evalTask{ruleIdx: ri, delta: pos})
			}
		}
	}
	if len(round1) == 0 {
		e.edbDelta = nil
		return nil
	}
	changed, err := e.runRound(round1, 0, false)
	e.edbDelta = nil
	if err != nil {
		return err
	}
	for changed {
		var tasks []evalTask
		for ri, r := range e.prog.Rules {
			for _, p := range e.deltaPositionsIn(r, 0) {
				tasks = append(tasks, evalTask{ruleIdx: ri, delta: p})
			}
		}
		changed, err = e.runRound(tasks, 0, true)
		if err != nil {
			return err
		}
	}
	return nil
}

// overDelete runs the DRed over-deletion pass: starting from the deleted
// base facts, it iterates "which maintained tuples have a one-step
// derivation through the current deletion delta" to fixpoint, against
// the pre-batch extents (relations still hold the full prior extension;
// changed EDB predicates are pinned to their pre-batch rows). Returns
// the per-predicate key sets of over-deleted tuples.
func (e *Engine) overDelete(delRows map[string][]row) (map[string]*keySet, error) {
	e.delMode = true
	e.delSet = make(map[string]*keySet)
	e.delTuples = make(map[string][]row)
	defer func() {
		e.delMode = false
		e.delNext = nil
		e.edbDelta = nil
	}()

	// Seed deltas. A deleted fact on an IDB predicate is itself part of
	// the maintained extent and loses its base support outright.
	cur := make(map[string][]row)
	for pred, rows := range delRows {
		if !e.idb[pred] {
			if len(rows) > 0 {
				cur[pred] = rows
			}
			continue
		}
		rel := e.derived[pred]
		set := e.delSet[pred]
		if set == nil {
			ns := newKeySet(e.in, len(rows))
			set = &ns
			e.delSet[pred] = set
		}
		for _, t := range rows {
			if rel.keys.has(t) && set.add(t) {
				cur[pred] = append(cur[pred], t)
				e.delTuples[pred] = append(e.delTuples[pred], t)
			}
		}
		if len(cur[pred]) == 0 {
			delete(cur, pred)
		}
	}

	for len(cur) > 0 {
		if err := e.checkCancel(); err != nil {
			return nil, err
		}
		e.stats.Rounds++
		e.edbDelta = make(map[string][]row)
		for pred, rows := range cur {
			if e.idb[pred] {
				// The deletion delta replaces the relation's own: drop the
				// carried ids so the executor re-interns lazily rather than
				// reading ids aligned with the displaced delta.
				e.derived[pred].delta, e.derived[pred].deltaVids = rows, nil
			} else {
				e.edbDelta[pred] = rows
			}
		}
		e.delNext = make(map[string][]row)
		for ri, r := range e.prog.Rules {
			for pos, l := range r.Body {
				if a, ok := l.(RelAtom); ok && len(cur[a.Pred]) > 0 {
					if err := e.evalRule(ri, pos); err != nil {
						return nil, err
					}
				}
			}
		}
		for pred := range cur {
			if e.idb[pred] {
				e.derived[pred].delta, e.derived[pred].deltaVids = nil, nil
			}
		}
		cur = e.delNext
		e.delNext = nil
		e.publishStats()
	}
	return e.delSet, nil
}

// deltaRows converts a FactDelta to internal rows, dropping empty
// entries.
func deltaRows(d FactDelta) map[string][]row {
	out := make(map[string][]row, len(d))
	for pred, tuples := range d {
		if len(tuples) == 0 {
			continue
		}
		rows := make([]row, len(tuples))
		for i, t := range tuples {
			rows[i] = row(t)
		}
		out[pred] = rows
	}
	return out
}
