package datalog

import (
	"fmt"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// TestConstructiveConcatenation reproduces the concatenate_Gintervals
// rule of Section 6.2: build the concatenation of every pair of intervals
// sharing the objects o1 and o2.
func TestConstructiveConcatenation(t *testing.T) {
	s := ropeStore(t)
	// o1 is in gi1 and gi2; o2 is in gi1 and gi2 as well.
	p := NewProgram(NewRule(
		Rel("concatenate", Concat(Var("G1"), Var("G2"))),
		Interval(Var("G1")),
		Interval(Var("G2")),
		ObjectAtom(Oid("o1")),
		ObjectAtom(Oid("o2")),
		SubsetAtom(AttrOp(Var("G1"), "entities"), TermOp(Oid("o1")), TermOp(Oid("o2"))),
		SubsetAtom(AttrOp(Var("G2"), "entities"), TermOp(Oid("o1")), TermOp(Oid("o2"))),
	))
	e := mustEngine(t, s, p)
	rows, err := e.Rows("concatenate")
	if err != nil {
		t.Fatal(err)
	}
	// Answers: gi1 (gi1⊕gi1), gi2, and gi1+gi2; the fixpoint terminates
	// even though the created object itself satisfies the body again
	// (absorption).
	got := map[string]bool{}
	for _, r := range rows {
		got[rowKey(r)] = true
	}
	for _, w := range []string{"gi1", "gi2", "gi1+gi2"} {
		if !got[w] {
			t.Errorf("missing %q in %v", w, rows)
		}
	}
	if len(got) != 3 {
		t.Errorf("concatenate = %v", rows)
	}
	if st := e.Stats(); st.Created != 1 {
		t.Errorf("created = %d, want 1", st.Created)
	}

	// The created object merges durations, entities and other attributes.
	created := e.Created()
	if len(created) != 1 {
		t.Fatalf("Created() = %v", created)
	}
	c := created[0]
	if c.OID() != "gi1+gi2" {
		t.Errorf("created oid = %s", c.OID())
	}
	wantDur := interval.New(interval.Open(0, 30), interval.Open(40, 80))
	if !c.Duration().Equal(wantDur) {
		t.Errorf("created duration = %v, want %v", c.Duration(), wantDur)
	}
	if got := c.Attr(object.AttrEntities); !got.Equal(
		object.RefSet("o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9")) {
		t.Errorf("created entities = %v", got)
	}
	if got := c.Attr("subject"); !got.Equal(object.Set(object.Str("murder"), object.Str("Giving a party"))) {
		t.Errorf("created subject = %v", got)
	}
	// The created object participates in queries via Object().
	if e.Object("gi1+gi2") == nil {
		t.Error("created object should resolve")
	}
}

// TestConstructiveTermination checks that a rule concatenating every pair
// of intervals terminates with the union-closure of the base intervals
// (experiment E7's correctness side).
func TestConstructiveTermination(t *testing.T) {
	s := store.New()
	const n = 4
	for i := 0; i < n; i++ {
		s.Put(object.NewInterval(object.OID(fmt.Sprintf("b%d", i)),
			interval.FromPairs(float64(i*10), float64(i*10+5))).
			Set(object.AttrEntities, object.RefSet("x")))
	}
	p := NewProgram(NewRule(
		Rel("all", Concat(Var("G1"), Var("G2"))),
		Interval(Var("G1")),
		Interval(Var("G2")),
	))
	e := mustEngine(t, s, p)
	rows, err := e.Rows("all")
	if err != nil {
		t.Fatal(err)
	}
	// The closure of {b0..b3} under union is all non-empty subsets: 2^4-1,
	// every one reachable as a pairwise concatenation of smaller ones
	// except the singletons, which appear via G ⊕ G.
	want := 1<<n - 1
	if len(rows) != want {
		t.Errorf("closure size = %d, want %d", len(rows), want)
	}
	if st := e.Stats(); st.Created != want-n {
		t.Errorf("created = %d, want %d", st.Created, want-n)
	}
}

func TestConstructiveNestedConcat(t *testing.T) {
	s := store.New()
	s.Put(object.NewInterval("a", interval.FromPairs(0, 1)))
	s.Put(object.NewInterval("b", interval.FromPairs(2, 3)))
	s.Put(object.NewInterval("c", interval.FromPairs(4, 5)))
	p := NewProgram(NewRule(
		Rel("triple", Concat(Concat(Oid("a"), Oid("b")), Oid("c"))),
		Interval(Oid("a")),
	))
	e := mustEngine(t, s, p)
	rows, err := e.Rows("triple")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("triple = %v", rows)
	}
	oid, _ := rows[0][0].AsRef()
	if oid != "a+b+c" {
		t.Errorf("oid = %s", oid)
	}
	obj := e.Object(oid)
	if !obj.Duration().Equal(interval.FromPairs(0, 1, 2, 3, 4, 5)) {
		t.Errorf("duration = %v", obj.Duration())
	}
	// The intermediate a+b is also materialized.
	if e.Object("a+b") == nil {
		t.Error("intermediate concatenation should exist")
	}
}

func TestConcatAssociativityOfAttributes(t *testing.T) {
	// (a⊕b)⊕c and a⊕(b⊕c) must be the same object with the same
	// attribute tuple.
	build := func(t *testing.T, term Term) *object.Object {
		t.Helper()
		s := store.New()
		s.Put(object.NewInterval("a", interval.FromPairs(0, 1)).Set("k", object.Str("x")))
		s.Put(object.NewInterval("b", interval.FromPairs(2, 3)).Set("k", object.Str("y")))
		s.Put(object.NewInterval("c", interval.FromPairs(4, 5)).Set("m", object.Num(1)))
		p := NewProgram(NewRule(Rel("r", term), Interval(Oid("a"))))
		e := mustEngine(t, s, p)
		rows, err := e.Rows("r")
		if err != nil || len(rows) != 1 {
			t.Fatalf("rows = %v, %v", rows, err)
		}
		oid, _ := rows[0][0].AsRef()
		return e.Object(oid)
	}
	left := build(t, Concat(Concat(Oid("a"), Oid("b")), Oid("c")))
	right := build(t, Concat(Oid("a"), Concat(Oid("b"), Oid("c"))))
	if !left.Equal(right) {
		t.Errorf("association changed the object:\n%v\n%v", left, right)
	}
}

func TestConstructiveErrors(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("e1"))
	s.Put(object.NewInterval("g1", interval.FromPairs(0, 1)))

	// Concatenating an entity is an evaluation error.
	p := NewProgram(NewRule(
		Rel("bad", Concat(Oid("e1"), Oid("g1"))),
		Interval(Oid("g1")),
	))
	e := mustEngine(t, s, p)
	if err := e.Run(); err == nil {
		t.Error("concatenating an entity should fail")
	}

	// Concatenating a missing object is an evaluation error.
	p2 := NewProgram(NewRule(
		Rel("bad", Concat(Oid("nosuch"), Oid("g1"))),
		Interval(Oid("g1")),
	))
	e2 := mustEngine(t, s, p2)
	if err := e2.Run(); err == nil {
		t.Error("concatenating a missing object should fail")
	}
}

func TestMaxCreatedGuard(t *testing.T) {
	s := store.New()
	for i := 0; i < 8; i++ {
		s.Put(object.NewInterval(object.OID(fmt.Sprintf("b%d", i)),
			interval.FromPairs(float64(2*i), float64(2*i+1))))
	}
	p := NewProgram(NewRule(
		Rel("all", Concat(Var("G1"), Var("G2"))),
		Interval(Var("G1")),
		Interval(Var("G2")),
	))
	e := mustEngine(t, s, p, MaxCreated(10))
	if err := e.Run(); err == nil {
		t.Error("expected MaxCreated to trip (closure of 8 intervals is 255)")
	}
}

func TestEagerExtension(t *testing.T) {
	// Under Definition 19 the extended domain contains every pairwise
	// concatenation, so Interval(G) can bind to objects no constructive
	// rule built. The query below has no constructive rule at all, yet
	// with eager extension it finds the combined interval covering both
	// fragments.
	s := store.New()
	s.Put(object.NewInterval("g1", interval.FromPairs(0, 10)).
		Set(object.AttrEntities, object.RefSet("x")))
	s.Put(object.NewInterval("g2", interval.FromPairs(20, 30)).
		Set(object.AttrEntities, object.RefSet("x")))
	window := object.Temporal(interval.FromPairs(0, 30))
	p := NewProgram(NewRule(
		Rel("covers", Var("G")),
		Interval(Var("G")),
		Entails(TermOp(Const(object.Temporal(interval.FromPairs(0, 10, 20, 30)))),
			AttrOp(Var("G"), "duration")),
		Entails(AttrOp(Var("G"), "duration"), TermOp(Const(window))),
	))

	plain := mustEngine(t, s, p)
	got, err := plain.QueryOIDs(Rel("covers", Var("G")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("without eager extension: %v", got)
	}

	eager := mustEngine(t, s, p, EagerExtension())
	got, err = eager.QueryOIDs(Rel("covers", Var("G")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "g1+g2" {
		t.Errorf("with eager extension: %v", got)
	}
}
