package datalog

import (
	"math"
	"sync"
	"sync/atomic"

	"videodb/internal/object"
)

// Value interning: the streaming executor identifies tuples by 64-bit keys
// instead of the rendered strings the seed evaluator concatenated. Two
// tables cooperate:
//
//   - a process-wide value interner mapping each distinct Value to a
//     uint64 id. Scalar values (null, string, number, ref) intern through
//     a comparable struct key, so the hot path never renders a string;
//     temporal and set values fall back to their canonical String() form.
//     The table is read-mostly, so lookups go through an atomically
//     published snapshot (no lock); new values land in a small locked
//     overflow map that is folded into a fresh snapshot once it grows.
//     Ids are globally stable, which lets compiled plans precompute the
//     ids of constant arguments and share them across engines (the
//     cross-query plan cache depends on this).
//
//   - a per-engine pair interner assigning ids to (id, id) pairs. A row's
//     key is the left fold of its value ids through the pair table, so
//     equal rows get equal keys and — because pair ids live in a disjoint
//     id space (the high bit) — distinct rows get distinct keys, with no
//     length or separator folding tricks. The table is shared by the
//     shallow-copied worker engines of Parallel(n) and uses the same
//     snapshot+overflow scheme, so the steady state (duplicate-heavy
//     rounds near the fixpoint) reads lock-free.
//
// Neither table ever shrinks or re-issues ids during a run; dedup
// soundness and fixpoint termination rely on that.

const (
	// invalidID is never issued; emptyRowID identifies the zero-length
	// row (value and pair ids start above it).
	invalidID  uint64 = 0
	emptyRowID uint64 = 1
	// pairTag marks ids from the pair space, keeping them disjoint from
	// value ids so the row-key fold is injective.
	pairTag uint64 = 1 << 63
)

// scalarKey is the comparable intern key of a scalar value. Float bits
// are canonicalized so that all NaNs coincide (the rendered key treated
// every NaN as "NaN" too) while -0 and +0 stay distinct (they render
// differently, and dedup must match the seed evaluator exactly).
type scalarKey struct {
	kind object.ValueKind
	str  string
	bits uint64
}

var canonicalNaN = math.Float64bits(math.NaN())

func scalarKeyOf(v object.Value) (scalarKey, bool) {
	switch v.Kind() {
	case object.KindNull:
		return scalarKey{kind: object.KindNull}, true
	case object.KindString:
		s, _ := v.AsString()
		return scalarKey{kind: object.KindString, str: s}, true
	case object.KindRef:
		oid, _ := v.AsRef()
		return scalarKey{kind: object.KindRef, str: string(oid)}, true
	case object.KindNumber:
		n, _ := v.AsNumber()
		bits := math.Float64bits(n)
		if math.IsNaN(n) {
			bits = canonicalNaN
		}
		return scalarKey{kind: object.KindNumber, bits: bits}, true
	default:
		return scalarKey{}, false
	}
}

// valueTables is one immutable snapshot of the global value interner.
type valueTables struct {
	scalars map[scalarKey]uint64
	complex map[string]uint64 // temporal/set values by canonical rendering
}

type valueInterner struct {
	base atomic.Pointer[valueTables]

	mu    sync.Mutex
	overS map[scalarKey]uint64
	overC map[string]uint64
	next  uint64
}

func newValueInterner() *valueInterner {
	in := &valueInterner{
		overS: make(map[scalarKey]uint64),
		overC: make(map[string]uint64),
		next:  emptyRowID, // first issued id is emptyRowID+1
	}
	in.base.Store(&valueTables{
		scalars: map[scalarKey]uint64{},
		complex: map[string]uint64{},
	})
	return in
}

// globalValues is the process-wide value interner. Within an epoch it
// only ever grows; the id of a value is stable for as long as any
// acquirer (an open core.DB) exists, which is what lets compiled plans
// embed constant ids and the metrics layer report the table size
// (InternStats). When the last acquirer releases, the table is replaced
// with a fresh one — see AcquireInterner — so open/close cycles do not
// leak every value the process has ever interned.
var globalValues atomic.Pointer[valueInterner]

func init() { globalValues.Store(newValueInterner()) }

// internEpoch counts the live acquirers of the global value interner.
var internEpoch struct {
	mu     sync.Mutex
	active int
}

// AcquireInterner pins the global value-interner epoch. Every engine
// owner that caches compiled plans (core.DB) acquires on construction
// and releases on Close; interned ids are stable between the two.
func AcquireInterner() {
	internEpoch.mu.Lock()
	internEpoch.active++
	internEpoch.mu.Unlock()
}

// ReleaseInterner undoes one AcquireInterner. When the last acquirer
// releases, the interner is swapped for an empty one, bounding the
// table's footprint across open/close cycles instead of growing for the
// process lifetime. Engines and compiled plans from the closed epoch
// must not be used afterwards (their embedded ids are meaningless in the
// new epoch); per-DB plan caches die with their DB, which is what makes
// the swap safe.
func ReleaseInterner() {
	internEpoch.mu.Lock()
	defer internEpoch.mu.Unlock()
	if internEpoch.active == 0 {
		return
	}
	internEpoch.active--
	if internEpoch.active == 0 {
		globalValues.Store(newValueInterner())
	}
}

// valueID returns the interned id of a value.
func valueID(v object.Value) uint64 {
	in := globalValues.Load()
	if k, ok := scalarKeyOf(v); ok {
		if id, ok := in.base.Load().scalars[k]; ok {
			return id
		}
		in.mu.Lock()
		defer in.mu.Unlock()
		if id, ok := in.base.Load().scalars[k]; ok {
			return id
		}
		if id, ok := in.overS[k]; ok {
			return id
		}
		in.next++
		id := in.next
		in.overS[k] = id
		in.maybePromote()
		return id
	}
	s := v.String()
	if id, ok := in.base.Load().complex[s]; ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.base.Load().complex[s]; ok {
		return id
	}
	if id, ok := in.overC[s]; ok {
		return id
	}
	in.next++
	id := in.next
	in.overC[s] = id
	in.maybePromote()
	return id
}

// maybePromote folds the overflow maps into a fresh base snapshot once
// they dominate lookups. Called with mu held.
func (in *valueInterner) maybePromote() {
	over := len(in.overS) + len(in.overC)
	base := in.base.Load()
	if over < 64 || over*4 < len(base.scalars)+len(base.complex) {
		return
	}
	nt := &valueTables{
		scalars: make(map[scalarKey]uint64, len(base.scalars)+len(in.overS)),
		complex: make(map[string]uint64, len(base.complex)+len(in.overC)),
	}
	for k, id := range base.scalars {
		nt.scalars[k] = id
	}
	for k, id := range in.overS {
		nt.scalars[k] = id
	}
	for s, id := range base.complex {
		nt.complex[s] = id
	}
	for s, id := range in.overC {
		nt.complex[s] = id
	}
	in.base.Store(nt)
	in.overS = make(map[scalarKey]uint64)
	in.overC = make(map[string]uint64)
}

// InternTableStats reports the size of the process-wide value intern
// table (exported through /metrics and /v1/stats).
type InternTableStats struct {
	Values int // distinct interned values
}

// InternStats returns the current size of the global value interner.
func InternStats() InternTableStats {
	in := globalValues.Load()
	in.mu.Lock()
	defer in.mu.Unlock()
	base := in.base.Load()
	return InternTableStats{
		Values: len(base.scalars) + len(base.complex) + len(in.overS) + len(in.overC),
	}
}

// pairKey identifies one cons cell of the row-key fold.
type pairKey [2]uint64

// pairInterner assigns ids to (id, id) pairs; one instance per engine,
// shared by its parallel worker copies.
type pairInterner struct {
	base atomic.Pointer[map[pairKey]uint64]

	mu   sync.Mutex
	over map[pairKey]uint64
	next uint64
}

func newPairInterner() *pairInterner {
	p := &pairInterner{over: make(map[pairKey]uint64)}
	empty := map[pairKey]uint64{}
	p.base.Store(&empty)
	return p
}

func (p *pairInterner) id(a, b uint64) uint64 {
	k := pairKey{a, b}
	if id, ok := (*p.base.Load())[k]; ok {
		return id
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := (*p.base.Load())[k]; ok {
		return id
	}
	if id, ok := p.over[k]; ok {
		return id
	}
	p.next++
	id := p.next | pairTag
	p.over[k] = id
	base := p.base.Load()
	// Promote geometrically (overflow ~half the base) so the total
	// copy work of a growing table stays linear in its final size.
	if n := len(p.over); n >= 64 && n*2 >= len(*base) {
		nt := make(map[pairKey]uint64, len(*base)+n)
		for k, id := range *base {
			nt[k] = id
		}
		for k, id := range p.over {
			nt[k] = id
		}
		p.base.Store(&nt)
		p.over = make(map[pairKey]uint64)
	}
	return id
}

// rowKey64 returns the interned key of a row: the left fold of its value
// ids through the pair table. Injective across rows of any length because
// value and pair ids never collide.
func (p *pairInterner) rowKey64(t row) uint64 {
	if len(t) == 0 {
		return emptyRowID
	}
	k := valueID(t[0])
	for _, v := range t[1:] {
		k = p.id(k, valueID(v))
	}
	return k
}

// foldIDs is rowKey64 over already-interned value ids — the hot path when
// the ids were carried with the tuple (relation rows, frame slots) and no
// value-table probe is needed.
func (p *pairInterner) foldIDs(ids []uint64) uint64 {
	if len(ids) == 0 {
		return emptyRowID
	}
	k := ids[0]
	for _, id := range ids[1:] {
		k = p.id(k, id)
	}
	return k
}

// vidsOf interns every value of a tuple. Relations call it once per
// distinct tuple on entry and carry the result alongside the row, so the
// executor's inner loops (index probes, match bindings, head dedup) fold
// precomputed ids instead of re-probing the value table per firing.
func vidsOf(t row) []uint64 {
	ids := make([]uint64, len(t))
	for i, v := range t {
		ids[i] = valueID(v)
	}
	return ids
}
