package datalog

import (
	"strings"
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/object"
	"videodb/internal/store"
)

func TestExplain(t *testing.T) {
	s := ropeStore(t)
	p := NewProgram(
		NewRule(Rel("appears", Var("O"), Var("G")),
			Interval(Var("G")), ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G"), "entities"))),
		NewRule(Rel("q", Var("G")),
			Interval(Var("G")),
			Member(TermOp(Oid("o5")), AttrOp(Var("G"), "entities"))),
		NewRule(Rel("absent", Var("O")),
			ObjectAtom(Var("O")),
			Not(Rel("appears", Var("O"), Oid("gi1")))),
	)
	e := mustEngine(t, s, p)
	out := e.Explain()

	for _, want := range []string{
		"stratum 0:", "stratum 1:", // negation forces two strata
		"index lookup (entities)", // the q rule uses the inverted index
		"anti-join",               // negation
		"filter",                  // the member constraint
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}

	// The generator runs first, the membership filter second.
	qPlan := e.ExplainRule(p.Rules[1])
	if !strings.Contains(qPlan, "1. index lookup") || !strings.Contains(qPlan, "2. filter") {
		t.Errorf("unexpected plan layout:\n%s", qPlan)
	}
}

func TestExplainWithoutMemberIndex(t *testing.T) {
	s := ropeStore(t)
	p := NewProgram(NewRule(Rel("q", Var("G")),
		Interval(Var("G")),
		Member(TermOp(Oid("o5")), AttrOp(Var("G"), "entities"))))
	e := mustEngine(t, s, p, WithoutMemberIndex())
	out := e.Explain()
	if strings.Contains(out, "index lookup") {
		t.Errorf("index disabled but plan claims index:\n%s", out)
	}
	if !strings.Contains(out, "enumerate") {
		t.Errorf("expected enumeration:\n%s", out)
	}
}

func TestExplainBoundClassAtomAndComparisons(t *testing.T) {
	s := ropeStore(t)
	p := NewProgram(NewRule(Rel("q", Var("O")),
		ObjectAtom(Var("O")),
		Interval(Oid("gi1")),
		Cmp(AttrOp(Var("O"), "name"), constraint.Eq, TermOp(Const(object.Str("David")))),
	))
	e := mustEngine(t, s, p)
	out := e.Explain()
	if !strings.Contains(out, "check") {
		t.Errorf("bound class atom should be a check:\n%s", out)
	}
}

func TestExplainEmptyProgram(t *testing.T) {
	e := mustEngine(t, store.New(), NewProgram())
	if got := e.Explain(); !strings.Contains(got, "empty") {
		t.Errorf("Explain() = %q", got)
	}
}
