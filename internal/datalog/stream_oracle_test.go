package datalog

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"videodb/internal/object"
	"videodb/internal/store"
)

// Differential oracle for the streaming executor: the iterator pipeline
// with interned row keys, store pushdown, and window pushdown must
// produce exactly the fixpoint of the materializing evaluator
// (WithoutStreaming — the recursive join kernel with string row keys, as
// the evaluator existed before this refactor), which itself matches the
// seed semantics through the compiled-evaluator oracle. The executors
// share plans and matching order, so extents, created objects, Derived,
// and Firings must all be identical.

// TestStreamingMatchesMaterializing compares the default (streaming)
// engine against the WithoutStreaming ablation on every oracle case,
// including negation, constructive rules, and randomized instances.
func TestStreamingMatchesMaterializing(t *testing.T) {
	for _, tc := range oracleCases(t) {
		mat := mustEngine(t, tc.st, tc.prog, WithoutStreaming())
		matExt, matCreated, matStats := fixpointOf(t, mat, tc.prog)

		str := mustEngine(t, tc.st, tc.prog)
		strExt, strCreated, strStats := fixpointOf(t, str, tc.prog)

		sameExtents(t, tc.name, "streaming vs materializing", strExt, matExt)
		sameCreated(t, tc.name, "streaming vs materializing", strCreated, matCreated)
		if strStats.Derived != matStats.Derived {
			t.Fatalf("%s: Derived %d vs %d", tc.name, strStats.Derived, matStats.Derived)
		}
		if strStats.Firings != matStats.Firings {
			t.Fatalf("%s: Firings %d vs %d", tc.name, strStats.Firings, matStats.Firings)
		}
		if strStats.Created != matStats.Created {
			t.Fatalf("%s: Created %d vs %d", tc.name, strStats.Created, matStats.Created)
		}
	}
}

// TestStreamingMatchesMaterializingParallel repeats the comparison with
// worker pools in both execution modes (meaningful under -race: workers
// share the round's relations, pushdown caches, and the interner).
func TestStreamingMatchesMaterializingParallel(t *testing.T) {
	for _, tc := range oracleCases(t) {
		ref := mustEngine(t, tc.st, tc.prog, WithoutStreaming())
		refExt, refCreated, refStats := fixpointOf(t, ref, tc.prog)
		for _, workers := range []int{2, 4} {
			for _, mode := range []struct {
				label string
				opts  []Option
			}{
				{"streaming", []Option{Parallel(workers)}},
				{"materializing", []Option{Parallel(workers), WithoutStreaming()}},
			} {
				e := mustEngine(t, tc.st, tc.prog, mode.opts...)
				ext, created, stats := fixpointOf(t, e, tc.prog)
				label := fmt.Sprintf("%s parallel(%d) vs reference", mode.label, workers)
				sameExtents(t, tc.name, label, ext, refExt)
				sameCreated(t, tc.name, label, created, refCreated)
				if stats.Derived != refStats.Derived {
					t.Fatalf("%s: %s: Derived %d vs %d", tc.name, label, stats.Derived, refStats.Derived)
				}
			}
		}
	}
}

// TestStreamingIncrementalMatches runs randomized insert/delete batches
// through RunIncremental in both execution modes and compares each
// against a from-scratch fixpoint of the mutated store.
func TestStreamingIncrementalMatches(t *testing.T) {
	p := NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("Y"), Var("Z"))),
	)
	edge := func(a, b string) store.Fact {
		return store.NewFact("edge", object.Str(a), object.Str(b))
	}
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := store.New()
		nodes := make([]string, 4+r.Intn(4))
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%d", i)
		}
		present := map[[2]string]bool{}
		for i := 0; i < 8+r.Intn(6); i++ {
			e := [2]string{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
			if !present[e] {
				s.AddFact(edge(e[0], e[1]))
				present[e] = true
			}
		}
		// Both modes compute the same prior by construction (checked by
		// the full oracle above); use the streaming one.
		prior := mustEngine(t, s, p)
		if err := prior.Run(); err != nil {
			t.Fatal(err)
		}
		before := make(map[[2]string]bool, len(present))
		for e := range present {
			before[e] = true
		}
		for i := 0; i < 2+r.Intn(5); i++ {
			e := [2]string{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
			if present[e] {
				s.DeleteFact(edge(e[0], e[1]))
				delete(present, e)
			} else {
				s.AddFact(edge(e[0], e[1]))
				present[e] = true
			}
		}
		ins, del := FactDelta{}, FactDelta{}
		for e := range present {
			if !before[e] {
				ins["edge"] = append(ins["edge"], []object.Value{object.Str(e[0]), object.Str(e[1])})
			}
		}
		for e := range before {
			if !present[e] {
				del["edge"] = append(del["edge"], []object.Value{object.Str(e[0]), object.Str(e[1])})
			}
		}

		want := mustEngine(t, s, p)
		wantExt, _, _ := fixpointOf(t, want, p)
		for _, mode := range []struct {
			label string
			opts  []Option
		}{
			{"streaming", nil},
			{"streaming-parallel", []Option{Parallel(4)}},
			{"materializing", []Option{WithoutStreaming()}},
		} {
			inc := mustEngine(t, s, p, mode.opts...)
			if err := inc.RunIncremental(prior.Extensions(), ins, del); err != nil {
				t.Fatalf("seed %d (%s): %v", seed, mode.label, err)
			}
			rows, err := inc.Rows("reach")
			if err != nil {
				t.Fatal(err)
			}
			keys := make([]string, len(rows))
			for i, row := range rows {
				keys[i] = rowKey(row)
			}
			got := map[string][]string{"reach": keys}
			sameExtents(t, fmt.Sprintf("seed-%d", seed), mode.label+" incremental vs recompute",
				got, map[string][]string{"reach": wantExt["reach"]})
		}
	}
}

// trippingContext fails Err() after a fixed number of checks — it drives
// cancellation to trigger *mid-pipeline*, between the engine's periodic
// tick checks, rather than before the run starts.
type trippingContext struct {
	checks  atomic.Int64
	tripAt  int64
	tripped atomic.Bool
}

func (c *trippingContext) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *trippingContext) Done() <-chan struct{}       { return nil }
func (c *trippingContext) Value(any) any               { return nil }
func (c *trippingContext) Err() error {
	if c.checks.Add(1) > c.tripAt {
		c.tripped.Store(true)
		return context.Canceled
	}
	return nil
}

// TestStreamingMidStreamCancellation verifies that the pull pipeline
// observes cancellation between tuples of a large join — not just at
// round boundaries — in both execution modes.
func TestStreamingMidStreamCancellation(t *testing.T) {
	s := store.New()
	const n = 120 // n^2 candidate pairs per round ≫ cancelCheckInterval
	for i := 0; i < n; i++ {
		s.AddFact(store.NewFact("a", object.Num(float64(i))))
		s.AddFact(store.NewFact("b", object.Num(float64(i))))
	}
	p := NewProgram(
		NewRule(Rel("pair", Var("X"), Var("Y")), Rel("a", Var("X")), Rel("b", Var("Y"))),
	)
	for _, mode := range []struct {
		label string
		opts  []Option
	}{
		{"streaming", nil},
		{"materializing", []Option{WithoutStreaming()}},
	} {
		ctx := &trippingContext{tripAt: 3} // survives the run preamble, dies inside the join
		opts := append([]Option{WithContext(ctx)}, mode.opts...)
		e := mustEngine(t, s, p, opts...)
		err := e.Run()
		if !IsCanceled(err) {
			t.Fatalf("%s: want cancellation error, got %v", mode.label, err)
		}
		if !ctx.tripped.Load() {
			t.Fatalf("%s: context never tripped", mode.label)
		}
		// The run died mid-join: strictly between zero and n^2 pairs fired.
		if f := e.Stats().Firings; f >= n*n {
			t.Fatalf("%s: run completed (%d firings) despite cancellation", mode.label, f)
		}
	}
}

// TestLookupFastPathUnderParallel drives the relation join index's
// read-locked fast path from four workers at once: several rules probe
// the same growing recursive relation in each round, so index extension
// (write lock) and covered-index probes (RLock) interleave across
// goroutines. Run with -race (the Makefile race target includes it).
func TestLookupFastPathUnderParallel(t *testing.T) {
	s := store.New()
	const n = 60
	for i := 0; i < n; i++ {
		s.AddFact(store.NewFact("next",
			object.Num(float64(i)), object.Num(float64(i+1))))
	}
	p := NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))),
		// Three more rules that all probe reach on a bound position, so
		// every parallel round issues concurrent lookups.
		NewRule(Rel("meet", Var("X"), Var("Y"), Var("Z")),
			Rel("reach", Var("X"), Var("Z")), Rel("reach", Var("Y"), Var("Z"))),
		NewRule(Rel("fork", Var("X"), Var("Y"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("reach", Var("X"), Var("Z"))),
		NewRule(Rel("thru", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("reach", Var("Y"), Var("Z"))),
	)
	ref := mustEngine(t, s, p)
	refExt, _, _ := fixpointOf(t, ref, p)
	par := mustEngine(t, s, p, Parallel(4))
	parExt, _, _ := fixpointOf(t, par, p)
	sameExtents(t, "lookup-fastpath", "parallel(4) vs serial", parExt, refExt)
}
