package datalog

import (
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/object"
	"videodb/internal/store"
)

func TestAssignmentProjection(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("a").Set("score", object.Num(10)))
	s.Put(object.NewEntity("b").Set("score", object.Num(20)))
	s.Put(object.NewEntity("c")) // no score

	// q(O, S) :- Object(O), O.score = S.
	p := NewProgram(NewRule(
		Rel("q", Var("O"), Var("S")),
		ObjectAtom(Var("O")),
		Cmp(AttrOp(Var("O"), "score"), constraint.Eq, TermOp(Var("S"))),
	))
	e := mustEngine(t, s, p)
	rows, err := e.Rows("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v (objects without the attribute must not match)", rows)
	}
	if oid, _ := rows[0][0].AsRef(); oid != "a" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if n, _ := rows[0][1].AsNumber(); n != 10 {
		t.Errorf("row 0 score = %v", rows[0][1])
	}
}

func TestAssignmentChain(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("a").Set("v", object.Num(7)))
	// S flows from the attribute, T from S.
	p := NewProgram(NewRule(
		Rel("q", Var("T")),
		ObjectAtom(Var("O")),
		Cmp(TermOp(Var("T")), constraint.Eq, TermOp(Var("S"))),
		Cmp(AttrOp(Var("O"), "v"), constraint.Eq, TermOp(Var("S"))),
	))
	e := mustEngine(t, s, p)
	rows, err := e.Rows("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if n, _ := rows[0][0].AsNumber(); n != 7 {
		t.Errorf("T = %v", rows[0][0])
	}
}

func TestAssignmentAsEqualityCheckWhenBound(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("a").Set("x", object.Num(1)).Set("y", object.Num(1)))
	s.Put(object.NewEntity("b").Set("x", object.Num(1)).Set("y", object.Num(2)))
	// S is bound by the first equality, the second becomes a check.
	p := NewProgram(NewRule(
		Rel("sym", Var("O")),
		ObjectAtom(Var("O")),
		Cmp(AttrOp(Var("O"), "x"), constraint.Eq, TermOp(Var("S"))),
		Cmp(AttrOp(Var("O"), "y"), constraint.Eq, TermOp(Var("S"))),
	))
	e := mustEngine(t, s, p)
	wantOIDs(t, oidResults(t, e, Rel("sym", Var("O"))), "a")
}

func TestAssignmentUnsafeStillRejected(t *testing.T) {
	// X = Y with neither bound remains unsafe.
	p := NewProgram(NewRule(
		Rel("q", Var("X")),
		Cmp(TermOp(Var("X")), constraint.Eq, TermOp(Var("Y"))),
	))
	if _, err := NewEngine(store.New(), p); err == nil {
		t.Error("floating equality should be rejected")
	}
	// Non-equality comparisons never bind.
	p2 := NewProgram(NewRule(
		Rel("q", Var("X")),
		Rel("p", Var("O")),
		Cmp(TermOp(Var("X")), constraint.Lt, TermOp(Var("O"))),
	))
	if _, err := NewEngine(store.New(), p2); err == nil {
		t.Error("inequality must not bind")
	}
}

func TestAssignmentFromConstant(t *testing.T) {
	s := store.New()
	s.AddFact(store.NewFact("p", object.Num(1)))
	p := NewProgram(NewRule(
		Rel("q", Var("S")),
		Rel("p", Var("X")),
		Cmp(TermOp(Var("S")), constraint.Eq, TermOp(Const(object.Num(42)))),
	))
	e := mustEngine(t, s, p)
	rows, err := e.Rows("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if n, _ := rows[0][0].AsNumber(); n != 42 {
		t.Errorf("S = %v", rows[0][0])
	}
}
