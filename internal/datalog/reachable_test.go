package datalog

import (
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

func TestReachableKeepsDependencies(t *testing.T) {
	p := NewProgram(
		NewRule(Rel("a", Var("X")), Rel("b", Var("X"))),
		NewRule(Rel("b", Var("X")), Rel("edb", Var("X"))),
		NewRule(Rel("c", Var("X")), Rel("edb", Var("X"))), // irrelevant to a
		NewRule(Rel("d", Var("X")), Rel("c", Var("X"))),   // irrelevant to a
	)
	got := p.Reachable("a")
	if len(got.Rules) != 2 {
		t.Fatalf("kept %d rules: %v", len(got.Rules), got)
	}
	if got.Rules[0].Head.Pred != "a" || got.Rules[1].Head.Pred != "b" {
		t.Errorf("kept = %v", got)
	}
	// Unknown goal keeps nothing.
	if got := p.Reachable("zzz"); len(got.Rules) != 0 {
		t.Errorf("unknown goal kept %v", got)
	}
}

func TestReachableThroughNegation(t *testing.T) {
	p := NewProgram(
		NewRule(Rel("a", Var("X")), Rel("base", Var("X")), Not(Rel("b", Var("X")))),
		NewRule(Rel("b", Var("X")), Rel("other", Var("X"))),
		NewRule(Rel("junk", Var("X")), Rel("other", Var("X"))),
	)
	got := p.Reachable("a")
	if len(got.Rules) != 2 {
		t.Fatalf("kept %v", got)
	}
}

func TestReachableKeepsConstructiveRules(t *testing.T) {
	// q reads the Interval class, so the constructive rule (whose head
	// predicate q never mentions) must be kept: it grows the domain q
	// ranges over.
	p := NewProgram(
		NewRule(Rel("mk", Concat(Var("G1"), Var("G2"))),
			Interval(Var("G1")), Interval(Var("G2"))),
		NewRule(Rel("q", Var("G")), Interval(Var("G"))),
	)
	got := p.Reachable("q")
	if len(got.Rules) != 2 {
		t.Fatalf("kept %v", got)
	}
	// Without an Interval atom in the goal's cone, the constructive rule
	// is dropped.
	p2 := NewProgram(
		NewRule(Rel("mk", Concat(Var("G1"), Var("G2"))),
			Interval(Var("G1")), Interval(Var("G2"))),
		NewRule(Rel("q", Var("X")), Rel("edb", Var("X"))),
	)
	if got := p2.Reachable("q"); len(got.Rules) != 1 {
		t.Fatalf("kept %v", got)
	}
}

func TestReachablePreservesAnswers(t *testing.T) {
	// Differential check: pruned and full programs answer the goal
	// identically, on a program mixing recursion, negation and
	// construction.
	s := store.New()
	s.Put(object.NewInterval("g1", interval.FromPairs(0, 10)).
		Set(object.AttrEntities, object.RefSet("x")))
	s.Put(object.NewInterval("g2", interval.FromPairs(20, 30)).
		Set(object.AttrEntities, object.RefSet("x")))
	s.AddFact(store.NewFact("edge", object.Str("a"), object.Str("b")))
	s.AddFact(store.NewFact("edge", object.Str("b"), object.Str("c")))
	p := NewProgram(
		NewRule(Rel("mk", Concat(Var("G1"), Var("G2"))),
			Interval(Var("G1")), Interval(Var("G2"))),
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("Y"), Var("Z"))),
		NewRule(Rel("wide", Var("G")),
			Interval(Var("G")),
			Entails(TermOp(Const(object.Temporal(interval.FromPairs(0, 10, 20, 30)))),
				AttrOp(Var("G"), "duration"))),
		NewRule(Rel("junk", Var("X"), Var("Y")), Rel("reach", Var("X"), Var("Y"))),
	)
	for _, goal := range []string{"reach", "wide", "mk", "junk"} {
		full := mustEngine(t, s, p)
		pruned := mustEngine(t, s, p.Reachable(goal))
		r1, err1 := full.Rows(goal)
		r2, err2 := pruned.Rows(goal)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", goal, err1, err2)
		}
		if len(r1) != len(r2) {
			t.Fatalf("%s: %d vs %d answers", goal, len(r1), len(r2))
		}
		for i := range r1 {
			if rowKey(r1[i]) != rowKey(r2[i]) {
				t.Fatalf("%s: row %d differs", goal, i)
			}
		}
	}
}
