package datalog

import (
	"fmt"
	"sort"
	"strings"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
	"videodb/internal/temporal"
)

// Engine evaluates a program bottom-up over a store, computing the least
// fixpoint of the immediate consequence operator TP (Definition 22). The
// engine snapshots the store's extensional database when Run is first
// called; create a new engine to re-evaluate after store changes.
type Engine struct {
	st   *store.Store
	prog Program
	idb  map[string]bool

	naive          bool
	eager          bool
	useMemberIndex bool
	useJoinIndex   bool
	maxRounds      int
	maxCreated     int

	derived map[string]*relation

	// Extended active domain bookkeeping (Definition 20): objects created
	// by the concatenation operator. created resolves oids immediately;
	// activeCreated lists those visible to Interval class atoms this
	// round; deltaCreated those that became visible at the last boundary.
	created        map[object.OID]*object.Object
	baseIDs        map[object.OID][]object.OID
	concatKey      map[string]object.OID
	activeCreated  []object.OID
	deltaCreated   []object.OID
	pendingCreated []object.OID

	baseIntervals []object.OID
	baseEntities  []object.OID
	edbCache      map[string]*relation
	edbKeys       map[string]map[string]bool // negation membership for EDB preds

	// Stratification (negation extension): each rule runs in the stratum
	// of its head predicate; lower strata are complete before a negated
	// predicate is tested.
	predStrata map[string]int
	ruleStrata []int
	maxStratum int
	growsAt    []bool // stratum -> has constructive rules
	curStratum int

	intervalsGrow bool
	ran           bool
	stats         RunStats

	// Provenance tracing (TraceProvenance).
	trace bool
	prov  map[string]*Derivation

	// Parallel evaluation (Parallel): worker count and, on worker-local
	// shallow copies, the private proposal buffer.
	workers int
	collect *[]proposal
}

// RunStats reports what a fixpoint computation did.
type RunStats struct {
	Rounds  int // TP iterations until fixpoint
	Derived int // derived tuples (excluding EDB seeds)
	Created int // generalized interval objects created by ⊕
	Firings int // successful rule head instantiations (incl. duplicates)
}

// Option configures an Engine.
type Option func(*Engine)

// Naive switches to naive fixpoint iteration (every rule re-evaluated
// against the full extent each round). Used by the E9 ablation and as a
// differential-testing oracle for the default semi-naive evaluation.
func Naive() Option { return func(e *Engine) { e.naive = true } }

// EagerExtension materializes the full pairwise-concatenation closure of
// the active interval domain each round, following Definition 19
// literally (the extension D₃ᵉˣᵗ contains the concatenation of every pair
// of generalized intervals). Exponential in the worst case; guarded by
// MaxCreated.
func EagerExtension() Option { return func(e *Engine) { e.eager = true } }

// WithoutMemberIndex disables the planner's use of the store's
// entity→interval inverted index for "o ∈ G.entities" generators (E10
// ablation).
func WithoutMemberIndex() Option { return func(e *Engine) { e.useMemberIndex = false } }

// WithoutJoinIndex disables the per-relation hash index on bound
// argument positions, forcing full scans in relational joins (E13
// ablation).
func WithoutJoinIndex() Option { return func(e *Engine) { e.useJoinIndex = false } }

// MaxRounds bounds the number of TP iterations (a safety net; the
// language guarantees termination, so hitting the bound is reported as an
// error).
func MaxRounds(n int) Option { return func(e *Engine) { e.maxRounds = n } }

// MaxCreated bounds the number of ⊕-created objects.
func MaxCreated(n int) Option { return func(e *Engine) { e.maxCreated = n } }

// NewEngine validates the program and prepares an engine over the store.
func NewEngine(st *store.Store, prog Program, opts ...Option) (*Engine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	strata, maxStratum, err := stratify(prog)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		st:             st,
		prog:           prog,
		idb:            make(map[string]bool),
		useMemberIndex: true,
		useJoinIndex:   true,
		maxRounds:      1 << 20,
		maxCreated:     1 << 20,
		derived:        make(map[string]*relation),
		created:        make(map[object.OID]*object.Object),
		baseIDs:        make(map[object.OID][]object.OID),
		concatKey:      make(map[string]object.OID),
		edbCache:       make(map[string]*relation),
		edbKeys:        make(map[string]map[string]bool),
		prov:           make(map[string]*Derivation),
		predStrata:     strata,
		maxStratum:     maxStratum,
		growsAt:        make([]bool, maxStratum+1),
	}
	for _, pred := range prog.IDB() {
		e.idb[pred] = true
		e.derived[pred] = newRelation()
	}
	e.ruleStrata = make([]int, len(prog.Rules))
	for i, r := range prog.Rules {
		e.ruleStrata[i] = strata[r.Head.Pred]
		if r.IsConstructive() {
			e.intervalsGrow = true
			e.growsAt[e.ruleStrata[i]] = true
		}
	}
	for _, o := range opts {
		o(e)
	}
	if e.eager {
		e.intervalsGrow = true
		e.growsAt[0] = true
	}
	return e, nil
}

// Stats returns the statistics of the last Run.
func (e *Engine) Stats() RunStats { return e.stats }

// Run computes the least fixpoint (for programs with negation: the
// perfect model, stratum by stratum). It is idempotent: subsequent calls
// return immediately.
func (e *Engine) Run() error {
	if e.ran {
		return nil
	}
	e.snapshotEDB()
	e.seedEDB()
	for s := 0; s <= e.maxStratum; s++ {
		if err := e.runStratum(s); err != nil {
			return err
		}
	}
	e.ran = true
	return nil
}

// runStratum computes the fixpoint of the rules whose head lives in
// stratum s, with all lower strata complete and fixed.
func (e *Engine) runStratum(s int) error {
	e.curStratum = s
	var rules []Rule
	for i, r := range e.prog.Rules {
		if e.ruleStrata[i] == s {
			rules = append(rules, r)
		}
	}

	// Round 1 of the stratum: every rule against the current extent.
	e.stats.Rounds++
	round1 := make([]evalTask, len(rules))
	for i, r := range rules {
		round1[i] = evalTask{rule: r, delta: -1}
	}
	if err := e.runTasks(round1); err != nil {
		return err
	}
	changed := e.advance()
	if e.eager {
		if err := e.eagerClosure(); err != nil {
			return err
		}
		changed = changed || len(e.pendingCreated) > 0
		e.applyCreatedBoundary()
	}

	for changed {
		e.stats.Rounds++
		if e.stats.Rounds > e.maxRounds {
			return fmt.Errorf("datalog: fixpoint did not converge within %d rounds", e.maxRounds)
		}
		var tasks []evalTask
		if e.naive {
			for _, r := range rules {
				tasks = append(tasks, evalTask{rule: r, delta: -1})
			}
		} else {
			for _, r := range rules {
				for _, p := range e.deltaPositions(r) {
					tasks = append(tasks, evalTask{rule: r, delta: p})
				}
			}
		}
		if err := e.runTasks(tasks); err != nil {
			return err
		}
		changed = e.advance()
		if e.eager {
			if err := e.eagerClosure(); err != nil {
				return err
			}
			changed = changed || len(e.pendingCreated) > 0
			e.applyCreatedBoundary()
		}
	}
	return nil
}

func (e *Engine) snapshotEDB() {
	e.baseIntervals = e.st.Intervals()
	e.baseEntities = e.st.Entities()
}

// seedEDB loads extensional facts of IDB predicates into their relations
// so duplicates are suppressed and the first delta is well-defined.
func (e *Engine) seedEDB() {
	for pred, rel := range e.derived {
		for _, f := range e.st.Facts(pred) {
			rel.propose(append(row(nil), f.Args...))
		}
		rel.advance()
	}
}

// advance applies the round boundary to every relation and the created
// object sets; it reports whether any extent grew.
func (e *Engine) advance() bool {
	changed := false
	for _, rel := range e.derived {
		if rel.advance() {
			changed = true
		}
	}
	if !e.eager {
		if len(e.pendingCreated) > 0 {
			changed = true
		}
		e.applyCreatedBoundary()
	}
	return changed
}

func (e *Engine) applyCreatedBoundary() {
	e.deltaCreated = e.pendingCreated
	e.pendingCreated = nil
	e.activeCreated = append(e.activeCreated, e.deltaCreated...)
}

// deltaPositions returns the body literal indices that must take the
// delta role in semi-naive evaluation: relational atoms over IDB
// predicates of the current stratum (lower strata are complete and never
// produce deltas), and Interval class atoms when the interval domain can
// still grow in this stratum.
func (e *Engine) deltaPositions(r Rule) []int {
	var out []int
	for i, l := range r.Body {
		switch a := l.(type) {
		case RelAtom:
			if e.idb[a.Pred] && e.predStrata[a.Pred] == e.curStratum {
				out = append(out, i)
			}
		case ClassAtom:
			if a.Kind == object.GenInterval && e.intervalsGrow && e.growsAt[e.curStratum] {
				out = append(out, i)
			}
		}
	}
	return out
}

// eagerClosure materializes the concatenation of every pair of active
// intervals (Definition 19's extension), bounded by maxCreated.
func (e *Engine) eagerClosure() error {
	all := append(append([]object.OID(nil), e.baseIntervals...), e.activeCreated...)
	all = append(all, e.pendingCreated...)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if _, err := e.materializeConcat(all[i], all[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- EDB access --------------------------------------------------------------

func (e *Engine) edbRelation(pred string) *relation {
	if rel, ok := e.edbCache[pred]; ok {
		return rel
	}
	facts := e.st.Facts(pred)
	rel := newRelation()
	rel.rows = make([]row, len(facts))
	for i, f := range facts {
		rel.rows[i] = row(f.Args)
	}
	e.edbCache[pred] = rel
	return rel
}

func (e *Engine) edbRows(pred string) []row { return e.edbRelation(pred).rows }

// relAccess returns the rows a relational atom should scan and, when the
// full extent is being read, the relation whose join index can narrow
// the scan.
func (e *Engine) relAccess(pred string, useDelta bool) ([]row, *relation) {
	if rel, ok := e.derived[pred]; ok {
		if useDelta {
			return rel.delta, nil
		}
		return rel.rows, rel
	}
	rel := e.edbRelation(pred)
	return rel.rows, rel
}

// Object resolves an oid against the extended domain: ⊕-created objects
// first, then the store.
func (e *Engine) Object(oid object.OID) *object.Object {
	if o, ok := e.created[oid]; ok {
		return o
	}
	return e.st.Get(oid)
}

// Created returns the ⊕-created generalized interval objects, sorted by
// oid.
func (e *Engine) Created() []*object.Object {
	oids := make([]object.OID, 0, len(e.created))
	for id := range e.created {
		oids = append(oids, id)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	out := make([]*object.Object, len(oids))
	for i, id := range oids {
		out[i] = e.created[id]
	}
	return out
}

// --- Rule evaluation ---------------------------------------------------------

type bindings map[string]object.Value

func (e *Engine) evalRule(r Rule, deltaPos int) error {
	plan, err := planBody(r.Body, deltaPos)
	if err != nil {
		return fmt.Errorf("datalog: rule %s: %w", r.label(), err)
	}
	b := make(bindings)
	return e.join(r, plan, 0, b, deltaPos)
}

func (e *Engine) join(r Rule, plan []int, i int, b bindings, deltaPos int) error {
	if i == len(plan) {
		return e.fireHead(r, b)
	}
	pos := plan[i]
	lit := r.Body[pos]
	useDelta := pos == deltaPos

	switch a := lit.(type) {
	case RelAtom:
		rows, rel := e.relAccess(a.Pred, useDelta)
		// Join index: when some argument is already determined and the
		// extent is large, scan only the matching rows.
		if e.useJoinIndex && rel != nil && len(rows) >= 16 {
			for pos, t := range a.Args {
				v, ok := termValue(t, b)
				if !ok {
					continue
				}
				for _, ri := range rel.lookup(pos, v.String()) {
					tuple := rows[ri]
					if len(tuple) != len(a.Args) {
						continue
					}
					undo, ok := unifyArgs(a.Args, tuple, b)
					if ok {
						if err := e.join(r, plan, i+1, b, deltaPos); err != nil {
							return err
						}
					}
					for _, v := range undo {
						delete(b, v)
					}
				}
				return nil
			}
		}
		for _, tuple := range rows {
			if len(tuple) != len(a.Args) {
				continue // arity mismatch: the fact cannot unify
			}
			undo, ok := unifyArgs(a.Args, tuple, b)
			if ok {
				if err := e.join(r, plan, i+1, b, deltaPos); err != nil {
					return err
				}
			}
			for _, v := range undo {
				delete(b, v)
			}
		}
		return nil

	case ClassAtom:
		// Bound argument: a membership test.
		if v, ok := termValue(a.Arg, b); ok {
			if e.isKind(v, a.Kind) {
				return e.join(r, plan, i+1, b, deltaPos)
			}
			return nil
		}
		for _, oid := range e.classCandidates(a, r, plan, i, b, useDelta) {
			undo, ok := unify(a.Arg, object.Ref(oid), b)
			if ok {
				if err := e.join(r, plan, i+1, b, deltaPos); err != nil {
					return err
				}
			}
			for _, v := range undo {
				delete(b, v)
			}
		}
		return nil

	default:
		if cmp, ok := lit.(CmpAtom); ok {
			handled, err := e.joinAssign(cmp, r, plan, i, b, deltaPos)
			if handled || err != nil {
				return err
			}
		}
		ok, err := e.evalFilter(lit, b)
		if err != nil {
			return fmt.Errorf("datalog: rule %s: %w", r.label(), err)
		}
		if ok {
			return e.join(r, plan, i+1, b, deltaPos)
		}
		return nil
	}
}

// joinAssign executes an equality atom in assignment orientation: when
// one side is an unbound plain variable and the other side resolves, the
// variable is bound to the resolved value (attribute projection). It
// reports whether it handled the literal.
func (e *Engine) joinAssign(cmp CmpAtom, r Rule, plan []int, i int, b bindings, deltaPos int) (bool, error) {
	for _, as := range cmp.assignments() {
		if _, isBound := b[as.target]; isBound {
			continue
		}
		v, err := e.resolveOperand(as.src, b)
		if err != nil {
			continue // source not determined in this orientation
		}
		if v.IsNull() {
			return true, nil // undefined attribute: the atom cannot hold
		}
		b[as.target] = v
		err = e.join(r, plan, i+1, b, deltaPos)
		delete(b, as.target)
		return true, err
	}
	return false, nil
}

// classCandidates enumerates the oids a class atom generator should try.
// For Interval atoms it may consult the store's inverted index when a
// later membership constraint pins the entity.
func (e *Engine) classCandidates(a ClassAtom, r Rule, plan []int, i int, b bindings, useDelta bool) []object.OID {
	if a.Kind == object.Entity {
		return e.baseEntities
	}
	if useDelta {
		return e.deltaCreated
	}
	if e.useMemberIndex {
		if elem, ok := e.indexableMember(a, r, plan, i, b); ok {
			cands := e.st.IntervalsContaining(elem)
			// Created intervals are not in the store index; filter them here.
			for _, oid := range e.activeCreated {
				if containsOID(e.created[oid].Entities(), elem) {
					cands = append(cands, oid)
				}
			}
			return cands
		}
	}
	out := make([]object.OID, 0, len(e.baseIntervals)+len(e.activeCreated))
	out = append(out, e.baseIntervals...)
	out = append(out, e.activeCreated...)
	return out
}

// indexableMember looks ahead in the plan for a constraint of the shape
// "elem ∈ V.entities" where V is the class atom's (unbound) variable and
// elem is already bound to an object reference.
func (e *Engine) indexableMember(a ClassAtom, r Rule, plan []int, i int, b bindings) (object.OID, bool) {
	if !a.Arg.IsVar() {
		return "", false
	}
	v := a.Arg.Name()
	for _, pos := range plan[i+1:] {
		m, ok := r.Body[pos].(MemberAtom)
		if !ok || len(m.Elems) == 0 {
			continue
		}
		if m.Set.Attr != object.AttrEntities || !m.Set.Term.IsVar() || m.Set.Term.Name() != v {
			continue
		}
		elem := m.Elems[0]
		if elem.Attr != "" {
			continue
		}
		if val, ok := termValue(elem.Term, b); ok {
			if oid, isRef := val.AsRef(); isRef {
				return oid, true
			}
		}
	}
	return "", false
}

func containsOID(ids []object.OID, want object.OID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func (e *Engine) isKind(v object.Value, k object.Kind) bool {
	oid, ok := v.AsRef()
	if !ok {
		return false
	}
	o := e.Object(oid)
	return o != nil && o.Kind() == k
}

// termValue resolves a non-constructive term under the bindings; ok is
// false when the term is an unbound variable.
func termValue(t Term, b bindings) (object.Value, bool) {
	if t.IsVar() {
		v, ok := b[t.Name()]
		return v, ok
	}
	if t.IsConcat() {
		return object.Null(), false
	}
	return t.Value(), true
}

// unify matches a term against a value, extending the bindings; it
// returns the variables newly bound (for undo) and whether it succeeded.
func unify(t Term, v object.Value, b bindings) ([]string, bool) {
	if t.IsVar() {
		if cur, ok := b[t.Name()]; ok {
			return nil, cur.Equal(v)
		}
		b[t.Name()] = v
		return []string{t.Name()}, true
	}
	if t.IsConcat() {
		return nil, false
	}
	return nil, t.Value().Equal(v)
}

func unifyArgs(args []Term, tuple row, b bindings) ([]string, bool) {
	var undo []string
	for i, t := range args {
		u, ok := unify(t, tuple[i], b)
		undo = append(undo, u...)
		if !ok {
			for _, v := range undo {
				delete(b, v)
			}
			return nil, false
		}
	}
	return undo, true
}

// --- Filters ------------------------------------------------------------------

func (e *Engine) resolveOperand(o Operand, b bindings) (object.Value, error) {
	v, ok := termValue(o.Term, b)
	if !ok {
		return object.Null(), fmt.Errorf("unbound variable %q in constraint operand %s", o.Term.Name(), o)
	}
	if o.Attr == "" {
		return v, nil
	}
	oid, isRef := v.AsRef()
	if !isRef {
		return object.Null(), nil // non-object has no attributes; constraint fails
	}
	obj := e.Object(oid)
	if obj == nil {
		return object.Null(), nil
	}
	return obj.Attr(o.Attr), nil
}

func (e *Engine) evalFilter(l Literal, b bindings) (bool, error) {
	switch a := l.(type) {
	case CmpAtom:
		lv, err := e.resolveOperand(a.Left, b)
		if err != nil {
			return false, err
		}
		rv, err := e.resolveOperand(a.Right, b)
		if err != nil {
			return false, err
		}
		return compareValues(lv, a.Op, rv), nil

	case MemberAtom:
		set, err := e.resolveOperand(a.Set, b)
		if err != nil {
			return false, err
		}
		for _, el := range a.Elems {
			ev, err := e.resolveOperand(el, b)
			if err != nil {
				return false, err
			}
			if !set.ContainsElem(ev) {
				return false, nil
			}
		}
		return true, nil

	case EntailAtom:
		lv, err := e.resolveOperand(a.Left, b)
		if err != nil {
			return false, err
		}
		rv, err := e.resolveOperand(a.Right, b)
		if err != nil {
			return false, err
		}
		lt, ok1 := lv.AsTemporal()
		rt, ok2 := rv.AsTemporal()
		if !ok1 || !ok2 {
			return false, nil
		}
		return rt.ContainsGen(lt), nil

	case TemporalAtom:
		lv, err := e.resolveOperand(a.Left, b)
		if err != nil {
			return false, err
		}
		rv, err := e.resolveOperand(a.Right, b)
		if err != nil {
			return false, err
		}
		lt, ok1 := lv.AsTemporal()
		rt, ok2 := rv.AsTemporal()
		if !ok1 || !ok2 {
			return false, nil
		}
		return evalTemporalRel(a.Rel, lt, rt), nil

	case NotAtom:
		tuple := make(row, len(a.Atom.Args))
		for i, t := range a.Atom.Args {
			v, ok := termValue(t, b)
			if !ok {
				return false, fmt.Errorf("unbound variable %q in negated atom %s", t.Name(), a)
			}
			tuple[i] = v
		}
		return !e.hasTuple(a.Atom.Pred, tuple), nil

	default:
		return false, fmt.Errorf("unexpected literal %T in filter position", l)
	}
}

// hasTuple reports whether the predicate's extent (EDB plus derived)
// contains the tuple. For negation this is sound because stratification
// guarantees the predicate's stratum is below the current one, so its
// extent is complete.
func (e *Engine) hasTuple(pred string, tuple row) bool {
	key := rowKey(tuple)
	if rel, ok := e.derived[pred]; ok {
		return rel.keys[key] // EDB facts were seeded into the relation
	}
	keys, ok := e.edbKeys[pred]
	if !ok {
		keys = make(map[string]bool)
		for _, r := range e.edbRows(pred) {
			keys[rowKey(r)] = true
		}
		e.edbKeys[pred] = keys
	}
	return keys[key]
}

// evalTemporalRel evaluates an Allen-style relation between generalized
// intervals using the algebraic temporal evaluator.
func evalTemporalRel(rel TemporalRel, l, r interval.Generalized) bool {
	alg := temporal.Algebraic{}
	switch rel {
	case TempBefore:
		return !l.IsEmpty() && !r.IsEmpty() && alg.Before(l, r)
	case TempAfter:
		return !l.IsEmpty() && !r.IsEmpty() && alg.Before(r, l)
	case TempMeets:
		return temporal.Meets(l, r)
	case TempMetBy:
		return temporal.Meets(r, l)
	case TempOverlaps:
		return alg.Overlaps(l, r)
	case TempEquals:
		return alg.Equals(l, r)
	case TempContains:
		return alg.Contains(l, r)
	case TempDuring:
		return alg.Contains(r, l)
	default:
		return false
	}
}

// compareValues evaluates an order comparison between values: numbers
// compare numerically, strings lexically; = and ≠ use structural
// equality for any kinds; order comparisons between other kinds are
// false (the dense order is defined on concrete domains only).
func compareValues(l object.Value, op constraint.Op, r object.Value) bool {
	switch op {
	case constraint.Eq:
		return l.Equal(r)
	case constraint.Ne:
		return !l.Equal(r)
	}
	if ln, ok := l.AsNumber(); ok {
		if rn, ok := r.AsNumber(); ok {
			return op.Holds(ln, rn)
		}
		return false
	}
	if ls, ok := l.AsString(); ok {
		if rs, ok := r.AsString(); ok {
			return op.Holds(float64(strings.Compare(ls, rs)), 0)
		}
	}
	return false
}

// --- Head instantiation --------------------------------------------------------

func (e *Engine) fireHead(r Rule, b bindings) error {
	tuple := make(row, len(r.Head.Args))
	for i, t := range r.Head.Args {
		switch {
		case t.IsConcat():
			oid, err := e.concatTerm(t, b)
			if err != nil {
				return fmt.Errorf("datalog: rule %s: %w", r.label(), err)
			}
			tuple[i] = object.Ref(oid)
		case t.IsVar():
			v, ok := b[t.Name()]
			if !ok {
				return fmt.Errorf("datalog: rule %s: head variable %s unbound (range restriction violated)", r.label(), t.Name())
			}
			tuple[i] = v
		default:
			tuple[i] = t.Value()
		}
	}
	e.stats.Firings++
	if e.collect != nil {
		// Parallel worker: buffer the proposal for the round barrier.
		*e.collect = append(*e.collect, proposal{pred: r.Head.Pred, tuple: tuple})
		return nil
	}
	rel := e.derived[r.Head.Pred]
	if rel.propose(tuple) {
		e.stats.Derived++
		if e.trace {
			e.recordProvenance(r, b, r.Head.Pred, tuple)
		}
	}
	return nil
}

// concatTerm evaluates a (possibly nested) constructive term to the oid
// of the resulting generalized interval object, materializing it in the
// extended active domain if new.
func (e *Engine) concatTerm(t Term, b bindings) (object.OID, error) {
	if !t.IsConcat() {
		v, ok := termValue(t, b)
		if !ok {
			return "", fmt.Errorf("unbound variable %q in constructive term", t.Name())
		}
		oid, isRef := v.AsRef()
		if !isRef {
			return "", fmt.Errorf("concatenation operand %s is not an object reference", v)
		}
		o := e.Object(oid)
		if o == nil {
			return "", fmt.Errorf("concatenation operand %s does not exist", oid)
		}
		if o.Kind() != object.GenInterval {
			return "", fmt.Errorf("concatenation operand %s is not a generalized interval", oid)
		}
		return oid, nil
	}
	l, err := e.concatTerm(*t.left, b)
	if err != nil {
		return "", err
	}
	r, err := e.concatTerm(*t.right, b)
	if err != nil {
		return "", err
	}
	return e.materializeConcat(l, r)
}

func (e *Engine) bases(oid object.OID) []object.OID {
	if b, ok := e.baseIDs[oid]; ok {
		return b
	}
	return []object.OID{oid}
}

// materializeConcat implements the object-creating semantics of Section
// 6.1: the oid of I1 ⊕ I2 is a function of the operand identities — here
// the sorted union of their base-interval identities — which makes ⊕
// idempotent, commutative and associative at the identity level and
// guarantees termination of constructive rules.
func (e *Engine) materializeConcat(l, r object.OID) (object.OID, error) {
	bases := mergeOIDs(e.bases(l), e.bases(r))
	if len(bases) == 1 {
		return bases[0], nil // I ⊕ I ≡ I
	}
	key := oidKey(bases)
	if oid, ok := e.concatKey[key]; ok {
		return oid, nil
	}
	if base, ok := e.sameBases(l, bases); ok {
		// Absorption: concatenating an object with a subset of its own
		// bases yields the object itself.
		return base, nil
	}
	if base, ok := e.sameBases(r, bases); ok {
		return base, nil
	}

	oid := e.freshOID(bases)
	lo, ro := e.Object(l), e.Object(r)
	merged := lo.Merge(ro, oid)
	e.created[oid] = merged
	e.baseIDs[oid] = bases
	e.concatKey[key] = oid
	e.pendingCreated = append(e.pendingCreated, oid)
	e.stats.Created++
	if e.stats.Created > e.maxCreated {
		return "", fmt.Errorf("more than %d objects created by concatenation (raise MaxCreated if intended)", e.maxCreated)
	}
	return oid, nil
}

func (e *Engine) sameBases(oid object.OID, bases []object.OID) (object.OID, bool) {
	own := e.bases(oid)
	if len(own) != len(bases) {
		return "", false
	}
	for i := range own {
		if own[i] != bases[i] {
			return "", false
		}
	}
	return oid, true
}

func (e *Engine) freshOID(bases []object.OID) object.OID {
	parts := make([]string, len(bases))
	for i, b := range bases {
		parts[i] = string(b)
	}
	oid := object.OID(strings.Join(parts, "+"))
	for i := 0; e.Object(oid) != nil; i++ {
		oid = object.OID(fmt.Sprintf("%s#%d", strings.Join(parts, "+"), i))
	}
	return oid
}

func mergeOIDs(a, b []object.OID) []object.OID {
	out := make([]object.OID, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, id := range out {
		if i == 0 || out[i-1] != id {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

func oidKey(bases []object.OID) string {
	parts := make([]string, len(bases))
	for i, b := range bases {
		parts[i] = string(b)
	}
	return strings.Join(parts, "\x00")
}

// --- Planning -----------------------------------------------------------------

// planBody orders the body literals for evaluation: the delta literal (if
// any) first, then greedily preferring evaluable filters (cheap pruning)
// and binding literals that join with already-bound variables. Because
// rules are range-restricted, every filter eventually becomes evaluable.
func planBody(body []Literal, deltaPos int) ([]int, error) {
	placed := make([]bool, len(body))
	bound := map[string]bool{}
	var plan []int

	place := func(i int) {
		placed[i] = true
		plan = append(plan, i)
		if body[i].binds() {
			body[i].collectVars(bound)
		}
	}
	if deltaPos >= 0 {
		place(deltaPos)
	}
	for len(plan) < len(body) {
		// 1. Any filter whose variables are all bound, or an equality
		// assignment whose source side is bound (it then binds its
		// target).
		found, assignVar := -1, ""
		for i, l := range body {
			if placed[i] || l.binds() {
				continue
			}
			vars := map[string]bool{}
			l.collectVars(vars)
			unboundVars := 0
			var unbound string
			for v := range vars {
				if !bound[v] {
					unboundVars++
					unbound = v
				}
			}
			if unboundVars == 0 {
				found, assignVar = i, ""
				break
			}
			if cmp, ok := l.(CmpAtom); ok && unboundVars == 1 {
				for _, as := range cmp.assignments() {
					if as.target == unbound {
						if found < 0 {
							found, assignVar = i, unbound
						}
						break
					}
				}
			}
		}
		if found >= 0 {
			place(found)
			if assignVar != "" {
				bound[assignVar] = true
			}
			continue
		}
		// 2. The binding literal sharing the most bound variables.
		best, bestScore := -1, -1
		for i, l := range body {
			if placed[i] || !l.binds() {
				continue
			}
			vars := map[string]bool{}
			l.collectVars(vars)
			score := 0
			for v := range vars {
				if bound[v] {
					score++
				}
			}
			// Prefer relational atoms slightly: they are usually more
			// selective than class enumeration.
			if _, isRel := l.(RelAtom); isRel {
				score = score*2 + 1
			} else {
				score = score * 2
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("constraint atoms reference variables not bound by any body literal")
		}
		place(best)
	}
	return plan, nil
}
