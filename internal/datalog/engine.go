package datalog

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
	"videodb/internal/temporal"
)

// Engine evaluates a program bottom-up over a store, computing the least
// fixpoint of the immediate consequence operator TP (Definition 22). The
// engine snapshots the store's extensional database when Run is first
// called; create a new engine to re-evaluate after store changes.
type Engine struct {
	st   *store.Store
	prog Program
	idb  map[string]bool

	naive          bool
	eager          bool
	streaming      bool
	useMemberIndex bool
	useJoinIndex   bool
	usePlanCache   bool
	memoOff        bool
	maxRounds      int
	maxCreated     int
	maxDerived     int

	// in is the engine's pair interner (streaming mode): tuples are keyed
	// by interned 64-bit ids instead of rendered strings. nil in the
	// materializing ablation (WithoutStreaming), whose relations fall back
	// to string keys. Shared by parallel worker copies (pointer field).
	in *pairInterner

	// Cancellation (WithContext): ctx is checked once per fixpoint round
	// and every cancelCheckInterval join-kernel tuples (ticks counts them;
	// workers tick on their shallow copies, so no sharing). The solver
	// budget carries both the MaxSolverSteps limit and the cancellation
	// check into constraint-level evaluation; parallel workers share the
	// pointer (Budget is internally atomic).
	//videolint:ignore ctxcheck engine is per-evaluation: built with the caller's ctx and discarded with it, never outliving the request
	ctx            context.Context
	ticks          uint64
	maxSolverSteps int64
	budget         *constraint.Budget

	// Compiled execution forms, aligned with prog.Rules. Populated at
	// NewEngine time; nil entries (WithoutPlanCache ablation) are
	// recompiled on every evaluation.
	compiled []*compiledRule

	derived map[string]*relation

	// Extended active domain bookkeeping (Definition 20): objects created
	// by the concatenation operator. created resolves oids immediately;
	// activeCreated lists those visible to Interval class atoms this
	// round; deltaCreated those that became visible at the last boundary.
	created        map[object.OID]*object.Object
	baseIDs        map[object.OID][]object.OID
	concatKey      map[string]object.OID
	activeCreated  []object.OID
	deltaCreated   []object.OID
	pendingCreated []object.OID

	baseIntervals []object.OID
	baseEntities  []object.OID
	allIntervals  []object.OID // baseIntervals + activeCreated, rebuilt at round boundaries
	edbCache      map[string]*relation
	edbKeys       map[string]*keySet // negation membership for EDB preds

	// Interval-window pushdown support: base intervals with empty
	// durations (excluded from the store's interval tree but vacuously
	// satisfying entailment guards), computed once per run when the
	// program contains entailment atoms.
	needEmpties    bool
	emptyIntervals []object.OID

	// Query-goal predicates registered before Run so warmEDBCaches covers
	// them: no worker or concurrent reader ever lazily writes edbCache.
	goalMu    *sync.Mutex
	goalPreds map[string]bool

	// Stratification (negation extension): each rule runs in the stratum
	// of its head predicate; lower strata are complete before a negated
	// predicate is tested.
	predStrata map[string]int
	ruleStrata []int
	maxStratum int
	growsAt    []bool // stratum -> has constructive rules
	curStratum int

	intervalsGrow bool
	runOnce       *sync.Once
	runErr        error

	// stats is written only by the run goroutine (workers merge at the
	// round barrier). Concurrent readers go through Stats, which returns
	// the snapshot published under statsMu at every round boundary; the
	// pointers are shared by worker copies so there is exactly one lock.
	stats     RunStats
	statsMu   *sync.Mutex
	statsSnap *RunStats

	// Profiling (WithProfiling): prof accumulates while the run executes
	// (workers use private instances, merged at the barrier); profile is
	// the published result, read via Profile under statsMu. curRule is the
	// rule index currently evaluating, for per-rule attribution.
	profiling bool
	prof      *profileState
	profile   *Profile
	curRule   int

	// Provenance tracing (TraceProvenance).
	trace bool
	prov  map[string]*Derivation

	// Parallel evaluation (Parallel): worker count and, on worker-local
	// shallow copies, the private proposal buffer.
	workers int
	collect *[]proposal

	// Incremental maintenance (see incremental.go). edbDelta carries the
	// current round's delta rows of extensional predicates (standard runs
	// never assign delta positions to EDB atoms, so it stays nil there).
	// delMode redirects head firings into delSet/delNext — the DRed
	// over-deletion bookkeeping — instead of proposing tuples; it is only
	// ever set during the serial over-deletion phase.
	edbDelta  map[string][]row
	delMode   bool
	delSet    map[string]*keySet
	delTuples map[string][]row // all marked tuples, for key removal at apply time
	delNext   map[string][]row

	// curRel caches the head relation of the task being evaluated, saving
	// a map lookup per firing (worker copies are private).
	curRel *relation

	// ran records that runOnce has been consumed (by Run or
	// RunIncremental), distinguishing "already evaluated" from "evaluated
	// with a nil error" for RunIncremental's misuse check.
	ran *bool
}

// RunStats reports what a fixpoint computation did.
type RunStats struct {
	Rounds  int // TP iterations until fixpoint
	Derived int // derived tuples (excluding EDB seeds)
	Created int // generalized interval objects created by ⊕
	Firings int // successful rule head instantiations (incl. duplicates)

	// Constraint-solver memo traffic attributed to this run. The counters
	// are threaded through the run's solver budget, so each engine counts
	// exactly its own lookups: concurrent engines sharing the process-wide
	// memo no longer double-count each other's traffic, and their per-run
	// sums add up to the global constraint.MemoSnapshot delta.
	MemoHits   uint64
	MemoMisses uint64

	// SolverSteps is the number of elementary constraint-solver steps the
	// run consumed (compare MaxSolverSteps).
	SolverSteps int64
}

// Option configures an Engine.
type Option func(*Engine)

// Naive switches to naive fixpoint iteration (every rule re-evaluated
// against the full extent each round). Used by the E9 ablation and as a
// differential-testing oracle for the default semi-naive evaluation.
func Naive() Option { return func(e *Engine) { e.naive = true } }

// EagerExtension materializes the full pairwise-concatenation closure of
// the active interval domain each round, following Definition 19
// literally (the extension D₃ᵉˣᵗ contains the concatenation of every pair
// of generalized intervals). Exponential in the worst case; guarded by
// MaxCreated.
func EagerExtension() Option { return func(e *Engine) { e.eager = true } }

// WithoutStreaming selects the materializing evaluator: the recursive
// join kernel with rendered string row keys and no store pushdown, as it
// existed before the streaming executor. Ablation knob — it preserves the
// seed-comparable allocation profile the streaming benchmarks measure
// against.
func WithoutStreaming() Option { return func(e *Engine) { e.streaming = false } }

// WithoutMemberIndex disables the planner's use of the store's
// entity→interval inverted index for "o ∈ G.entities" generators (E10
// ablation).
func WithoutMemberIndex() Option { return func(e *Engine) { e.useMemberIndex = false } }

// WithoutJoinIndex disables the per-relation hash index on bound
// argument positions, forcing full scans in relational joins (E13
// ablation).
func WithoutJoinIndex() Option { return func(e *Engine) { e.useJoinIndex = false } }

// WithoutPlanCache disables the compiled-rule plan cache: every (rule,
// delta) task re-plans and re-classifies the rule body, as the seed
// evaluator did. Ablation knob for benchmarking the cache's contribution.
func WithoutPlanCache() Option { return func(e *Engine) { e.usePlanCache = false } }

// WithoutConstraintMemo turns the constraint-solver memo off for the
// duration of this engine's Run. The memo is process-wide, so this also
// affects other engines running concurrently — it is an ablation knob for
// benchmarks, not a per-engine isolation mechanism.
func WithoutConstraintMemo() Option { return func(e *Engine) { e.memoOff = true } }

// MaxRounds bounds the number of TP iterations (a safety net; the
// language guarantees termination, so hitting the bound is reported as an
// error).
func MaxRounds(n int) Option { return func(e *Engine) { e.maxRounds = n } }

// MaxCreated bounds the number of ⊕-created objects.
func MaxCreated(n int) Option { return func(e *Engine) { e.maxCreated = n } }

// NewEngine validates the program and prepares an engine over the store.
func NewEngine(st *store.Store, prog Program, opts ...Option) (*Engine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	strata, maxStratum, err := stratify(prog)
	if err != nil {
		return nil, err
	}
	e := newEngineShell(st, prog)
	e.predStrata = strata
	e.maxStratum = maxStratum
	e.growsAt = make([]bool, maxStratum+1)
	e.ruleStrata = make([]int, len(prog.Rules))
	for i, r := range prog.Rules {
		e.ruleStrata[i] = strata[r.Head.Pred]
		if r.IsConstructive() {
			e.intervalsGrow = true
			e.growsAt[e.ruleStrata[i]] = true
		}
	}
	e.finishInit(opts)
	// Compile every rule once. A rule that fails to compile (e.g. a
	// constraint atom over variables no body literal binds) keeps a nil
	// entry so the error surfaces at evaluation time, exactly as the
	// per-evaluation planner reported it.
	e.compiled = make([]*compiledRule, len(prog.Rules))
	if e.usePlanCache {
		for i, r := range prog.Rules {
			if cr, err := e.compileRule(r, e.ruleStrata[i]); err == nil {
				e.compiled[i] = cr
			}
		}
	}
	return e, nil
}

// newEngineShell builds an engine with every field that does not depend
// on stratification, options, or compilation. Shared by NewEngine and
// NewEngineWith (the plan-cache entry point, which skips re-validating
// and re-stratifying an already-compiled program).
func newEngineShell(st *store.Store, prog Program) *Engine {
	return &Engine{
		st:             st,
		prog:           prog,
		idb:            make(map[string]bool),
		streaming:      true,
		useMemberIndex: true,
		useJoinIndex:   true,
		usePlanCache:   true,
		maxRounds:      1 << 20,
		maxCreated:     1 << 20,
		maxDerived:     1 << 20,
		derived:        make(map[string]*relation),
		created:        make(map[object.OID]*object.Object),
		baseIDs:        make(map[object.OID][]object.OID),
		concatKey:      make(map[string]object.OID),
		edbCache:       make(map[string]*relation),
		edbKeys:        make(map[string]*keySet),
		goalMu:         &sync.Mutex{},
		goalPreds:      make(map[string]bool),
		statsMu:        &sync.Mutex{},
		statsSnap:      &RunStats{},
		runOnce:        &sync.Once{},
		ran:            new(bool),
		prov:           make(map[string]*Derivation),
	}
}

// finishInit applies the options and builds the option-dependent state:
// the pair interner and the derived relations (keyed according to the
// execution mode), the profiler, and the eager-extension flags.
func (e *Engine) finishInit(opts []Option) {
	for _, o := range opts {
		o(e)
	}
	if e.streaming {
		e.in = newPairInterner()
	}
	for _, pred := range e.prog.IDB() {
		e.idb[pred] = true
		e.derived[pred] = newRelation(e.in)
	}
	if e.profiling {
		e.prof = newProfileState(len(e.prog.Rules))
	}
	if e.eager {
		e.intervalsGrow = true
		e.growsAt[0] = true
	}
	// Entailment guards admit empty durations vacuously; the window
	// pushdown needs the empty-duration interval list to stay a superset.
	for _, r := range e.prog.Rules {
		for _, l := range r.Body {
			if _, ok := l.(EntailAtom); ok {
				e.needEmpties = true
			}
		}
	}
}

// Stats returns the statistics of the last Run. It is safe to call
// concurrently with Run (including Parallel(n) evaluation): mid-run it
// returns the snapshot published at the most recent round boundary; after
// Run returns it reports the final statistics.
func (e *Engine) Stats() RunStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return *e.statsSnap
}

// publishStats copies the run goroutine's private stats into the snapshot
// concurrent Stats readers observe. Called at round boundaries and when
// the run ends.
func (e *Engine) publishStats() {
	e.statsMu.Lock()
	*e.statsSnap = e.stats
	e.statsMu.Unlock()
}

// Run computes the least fixpoint (for programs with negation: the
// perfect model, stratum by stratum). It is idempotent and safe for
// concurrent callers: the fixpoint runs exactly once and subsequent or
// concurrent calls wait for it, then return its result.
func (e *Engine) Run() error {
	e.runOnce.Do(func() {
		*e.ran = true
		e.runErr = e.runFixpoint()
	})
	return e.runErr
}

func (e *Engine) runFixpoint() error {
	return e.runGuarded(func() error {
		e.seedEDB()
		e.warmGoalPreds()
		for s := 0; s <= e.maxStratum; s++ {
			if err := e.runStratum(s); err != nil {
				return err
			}
		}
		return nil
	})
}

// runGuarded wraps a fixpoint computation (full or incremental) with the
// shared run scaffolding: the memo ablation toggle, the solver budget
// that carries cancellation into constraint evaluation, the EDB
// snapshot, and the stats/profile finalizers.
func (e *Engine) runGuarded(body func() error) error {
	if e.memoOff {
		prev := constraint.SetMemoEnabled(false)
		defer constraint.SetMemoEnabled(prev)
	}
	e.budget = constraint.NewBudget(e.maxSolverSteps, e.checkCancel)
	start := time.Now()
	defer e.publishStats() // registered first: runs after the finalizer below
	defer func() {
		// Memo lookups are counted per-engine through the run's budget
		// (solver calls carry it), so concurrent engines sharing the
		// process-wide memo attribute each lookup to exactly one run.
		e.stats.MemoHits, e.stats.MemoMisses = e.budget.MemoCounts()
		e.stats.SolverSteps = e.budget.Spent()
		if e.prof != nil {
			e.buildProfile(time.Since(start))
		}
	}()
	if err := e.checkCancel(); err != nil {
		return err
	}
	e.snapshotEDB()
	return body()
}

// warmGoalPreds pre-fills the EDB caches for predicates registered as
// query goals before Run, so concurrent post-Run queries read a complete
// cache instead of lazily writing a shared map.
func (e *Engine) warmGoalPreds() {
	e.goalMu.Lock()
	goals := make([]string, 0, len(e.goalPreds))
	for p := range e.goalPreds {
		goals = append(goals, p)
	}
	e.goalMu.Unlock()
	for _, p := range goals {
		if !e.idb[p] {
			e.edbRows(p)
		}
	}
}

// runStratum computes the fixpoint of the rules whose head lives in
// stratum s, with all lower strata complete and fixed.
func (e *Engine) runStratum(s int) error {
	e.curStratum = s
	var rules []int
	for i := range e.prog.Rules {
		if e.ruleStrata[i] == s {
			rules = append(rules, i)
		}
	}

	// Round 1 of the stratum: every rule against the current extent.
	round1 := make([]evalTask, len(rules))
	for i, ri := range rules {
		round1[i] = evalTask{ruleIdx: ri, delta: -1}
	}
	changed, err := e.runRound(round1, s, false)
	if err != nil {
		return err
	}

	for changed {
		var tasks []evalTask
		if e.naive {
			for _, ri := range rules {
				tasks = append(tasks, evalTask{ruleIdx: ri, delta: -1})
			}
		} else {
			for _, ri := range rules {
				for _, p := range e.deltaPositions(e.prog.Rules[ri]) {
					tasks = append(tasks, evalTask{ruleIdx: ri, delta: p})
				}
			}
		}
		changed, err = e.runRound(tasks, s, true)
		if err != nil {
			return err
		}
	}
	return nil
}

// runRound evaluates one TP round: the tasks, the round boundary, and —
// when profiling — the round's wall time and firings/derived deltas. The
// published stats snapshot advances at every boundary, so concurrent
// Stats readers see live (round-granular) progress. Shared by runStratum
// and the incremental insertion-propagation phase.
func (e *Engine) runRound(tasks []evalTask, stratum int, guard bool) (bool, error) {
	if err := e.checkCancel(); err != nil {
		return false, err
	}
	e.stats.Rounds++
	if guard && e.stats.Rounds > e.maxRounds {
		return false, fmt.Errorf("%w: fixpoint did not converge within %d rounds", ErrLimitExceeded, e.maxRounds)
	}
	var start time.Time
	f0, d0 := e.stats.Firings, e.stats.Derived
	if e.prof != nil {
		start = time.Now()
	}
	if err := e.runTasks(tasks); err != nil {
		return false, err
	}
	changed := e.advance()
	if e.eager {
		if err := e.eagerClosure(); err != nil {
			return false, err
		}
		changed = changed || len(e.pendingCreated) > 0
		e.applyCreatedBoundary()
	}
	if e.prof != nil {
		e.prof.rounds = append(e.prof.rounds, RoundProfile{
			Round:   e.stats.Rounds,
			Stratum: stratum,
			Tasks:   len(tasks),
			Firings: e.stats.Firings - f0,
			Derived: e.stats.Derived - d0,
			Time:    time.Since(start),
		})
	}
	e.publishStats()
	return changed, nil
}

func (e *Engine) snapshotEDB() {
	e.baseIntervals = e.st.Intervals()
	e.baseEntities = e.st.Entities()
	e.allIntervals = append([]object.OID(nil), e.baseIntervals...)
	if e.streaming && e.needEmpties {
		for _, oid := range e.baseIntervals {
			if o := e.st.Get(oid); o != nil && o.Duration().IsEmpty() {
				e.emptyIntervals = append(e.emptyIntervals, oid)
			}
		}
	}
}

// seedEDB loads extensional facts of IDB predicates into their relations
// so duplicates are suppressed and the first delta is well-defined. The
// dedup sets are pre-sized from the store's fact counts.
func (e *Engine) seedEDB() {
	for pred, rel := range e.derived {
		if n := e.st.FactCount(pred); n > 0 {
			rel.keys.presize(n)
		}
		for _, f := range e.st.Facts(pred) {
			rel.propose(append(row(nil), f.Args...))
		}
		rel.advance()
	}
}

// advance applies the round boundary to every relation and the created
// object sets; it reports whether any extent grew.
func (e *Engine) advance() bool {
	changed := false
	for _, rel := range e.derived {
		if rel.advance() {
			changed = true
		}
	}
	if !e.eager {
		if len(e.pendingCreated) > 0 {
			changed = true
		}
		e.applyCreatedBoundary()
	}
	return changed
}

func (e *Engine) applyCreatedBoundary() {
	e.deltaCreated = e.pendingCreated
	e.pendingCreated = nil
	e.activeCreated = append(e.activeCreated, e.deltaCreated...)
	// The full interval candidate list is rebuilt only here, at the round
	// boundary; class-atom generators read it without re-allocating.
	e.allIntervals = append(e.allIntervals, e.deltaCreated...)
}

// deltaPositions returns the body literal indices that must take the
// delta role in semi-naive evaluation for the current stratum.
func (e *Engine) deltaPositions(r Rule) []int { return e.deltaPositionsIn(r, e.curStratum) }

// deltaPositionsIn returns the delta positions a rule can take when run
// in the given stratum: relational atoms over IDB predicates of that
// stratum (lower strata are complete and never produce deltas), and
// Interval class atoms when the interval domain can still grow there.
// The result depends only on the program and options, so compiled plans
// for these positions are built once at NewEngine time.
func (e *Engine) deltaPositionsIn(r Rule, stratum int) []int {
	var out []int
	for i, l := range r.Body {
		switch a := l.(type) {
		case RelAtom:
			if e.idb[a.Pred] && e.predStrata[a.Pred] == stratum {
				out = append(out, i)
			}
		case ClassAtom:
			if a.Kind == object.GenInterval && e.intervalsGrow && e.growsAt[stratum] {
				out = append(out, i)
			}
		}
	}
	return out
}

// eagerClosure materializes the concatenation of every pair of active
// intervals (Definition 19's extension), bounded by maxCreated.
func (e *Engine) eagerClosure() error {
	all := append(append([]object.OID(nil), e.baseIntervals...), e.activeCreated...)
	all = append(all, e.pendingCreated...)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if _, err := e.materializeConcat(all[i], all[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- EDB access --------------------------------------------------------------

func (e *Engine) edbRelation(pred string) *relation {
	if rel, ok := e.edbCache[pred]; ok {
		return rel
	}
	facts := e.st.Facts(pred)
	rel := newRelation(e.in)
	rel.rows = make([]row, len(facts))
	if rel.interned() {
		rel.vids = make([][]uint64, len(facts))
	}
	for i, f := range facts {
		rel.rows[i] = row(f.Args)
		if rel.interned() {
			rel.vids[i] = vidsOf(rel.rows[i])
		}
	}
	e.edbCache[pred] = rel
	return rel
}

func (e *Engine) edbRows(pred string) []row { return e.edbRelation(pred).rows }

// relAccess returns the rows a relational atom should scan and, when the
// full extent is being read, the relation whose join index can narrow
// the scan.
func (e *Engine) relAccess(pred string, useDelta bool) ([]row, *relation) {
	if rel, ok := e.derived[pred]; ok {
		if useDelta {
			return rel.delta, nil
		}
		return rel.rows, rel
	}
	if useDelta {
		// Only incremental maintenance assigns delta positions to
		// extensional atoms; elsewhere an EDB delta is empty.
		return e.edbDelta[pred], nil
	}
	rel := e.edbRelation(pred)
	return rel.rows, rel
}

// relAccessIDs is relAccess for the streaming executor: it additionally
// returns the rows' carried value ids (aligned with rows; nil when the
// source doesn't carry them, e.g. incremental EDB deltas).
func (e *Engine) relAccessIDs(pred string, useDelta bool) ([]row, [][]uint64, *relation) {
	if rel, ok := e.derived[pred]; ok {
		if useDelta {
			return rel.delta, rel.deltaVids, nil
		}
		return rel.rows, rel.vids, rel
	}
	if useDelta {
		return e.edbDelta[pred], nil, nil
	}
	rel := e.edbRelation(pred)
	return rel.rows, rel.vids, rel
}

// Object resolves an oid against the extended domain: ⊕-created objects
// first, then the store.
func (e *Engine) Object(oid object.OID) *object.Object {
	if o, ok := e.created[oid]; ok {
		return o
	}
	return e.st.Get(oid)
}

// Created returns the ⊕-created generalized interval objects, sorted by
// oid.
func (e *Engine) Created() []*object.Object {
	oids := make([]object.OID, 0, len(e.created))
	for id := range e.created {
		oids = append(oids, id)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	out := make([]*object.Object, len(oids))
	for i, id := range oids {
		out[i] = e.created[id]
	}
	return out
}

// --- Rule evaluation ---------------------------------------------------------

type bindings map[string]object.Value

// evalRule evaluates one (rule, delta) task with the rule's compiled plan.
// With the plan cache disabled (or when compilation failed at NewEngine
// time), the rule is recompiled here and the compilation error, if any,
// surfaces exactly where the per-evaluation planner reported it.
func (e *Engine) evalRule(ruleIdx, deltaPos int) error {
	e.curRule = ruleIdx // per-rule attribution for profiling (worker copies are private)
	cr := e.compiled[ruleIdx]
	if cr == nil {
		var err error
		cr, err = e.compileRuleOne(e.prog.Rules[ruleIdx], deltaPos)
		if err != nil {
			return err
		}
	}
	steps, ok := cr.plans[deltaPos]
	if !ok {
		// Unplanned delta position (defensive; deltaPositionsIn should have
		// covered it). Compile locally without mutating the shared plan map.
		var err error
		steps, err = e.compilePlan(cr, cr.rule, deltaPos)
		if err != nil {
			return fmt.Errorf("datalog: rule %s: %w", cr.rule.label(), err)
		}
	}
	e.curRel = e.derived[cr.rule.Head.Pred]
	fr := newFrame(cr, e.streaming)
	if e.streaming {
		return e.runPipeline(cr, steps, fr)
	}
	return e.runSteps(cr, steps, 0, fr)
}

// runSteps executes the compiled plan from step i under the frame: the
// allocation-lean replacement for the seed's map-based join recursion.
func (e *Engine) runSteps(cr *compiledRule, steps []planStep, i int, fr *frame) error {
	if i == len(steps) {
		return e.fireHead(cr, fr)
	}
	st := &steps[i]
	switch st.kind {
	case stepRel:
		rows, rel := e.relAccess(st.pred, st.useDelta)
		// Join index: when some argument is statically determined and the
		// extent is large, probe every bound position and scan the most
		// selective (shortest) posting list.
		if e.useJoinIndex && rel != nil && len(rows) >= 16 && len(st.probes) > 0 {
			var ids []int
			for pi, k := range st.probes {
				cand := rel.lookupStr(k, st.probeKey(fr, k))
				if pi == 0 || len(cand) < len(ids) {
					ids = cand
					if len(ids) == 0 {
						break
					}
				}
			}
			for _, ri := range ids {
				if err := e.tick(); err != nil {
					return err
				}
				if st.match(fr, rows[ri]) {
					if err := e.runSteps(cr, steps, i+1, fr); err != nil {
						return err
					}
				}
				st.clearFresh(fr)
			}
			return nil
		}
		for _, tuple := range rows {
			if err := e.tick(); err != nil {
				return err
			}
			if st.match(fr, tuple) {
				if err := e.runSteps(cr, steps, i+1, fr); err != nil {
					return err
				}
			}
			st.clearFresh(fr)
		}
		return nil

	case stepClassCheck:
		v := st.classArg.val
		if st.classArg.slot >= 0 {
			v = fr.vals[st.classArg.slot]
		}
		if e.isKind(v, st.classKind) {
			return e.runSteps(cr, steps, i+1, fr)
		}
		return nil

	case stepClassEnum:
		slot := st.classArg.slot
		for _, oid := range e.classEnumCandidates(st, fr) {
			if err := e.tick(); err != nil {
				return err
			}
			fr.bind(slot, object.Ref(oid))
			if err := e.runSteps(cr, steps, i+1, fr); err != nil {
				return err
			}
		}
		fr.unbind(slot)
		return nil

	case stepAssign:
		v, err := e.resolveOp(st.assignSrc, fr)
		if err != nil {
			return fmt.Errorf("datalog: rule %s: %w", cr.rule.label(), err)
		}
		if v.IsNull() {
			return nil // undefined attribute: the atom cannot hold
		}
		fr.bind(st.assignSlot, v)
		err = e.runSteps(cr, steps, i+1, fr)
		fr.unbind(st.assignSlot)
		return err

	default: // stepFilter
		ok, err := st.filter(e, fr)
		if err != nil {
			return fmt.Errorf("datalog: rule %s: %w", cr.rule.label(), err)
		}
		if ok {
			return e.runSteps(cr, steps, i+1, fr)
		}
		return nil
	}
}

// classEnumCandidates enumerates the oids a class-atom generator should
// try. For Interval atoms it may consult the store's inverted index when
// a compiled membership lookahead pins the entity at run time.
func (e *Engine) classEnumCandidates(st *planStep, fr *frame) []object.OID {
	if st.classKind == object.Entity {
		return e.baseEntities
	}
	if st.useDelta {
		return e.deltaCreated
	}
	if e.useMemberIndex {
		for _, ms := range st.memberSpecs {
			v, err := e.resolveOp(ms.elem, fr)
			if err != nil {
				continue
			}
			elem, isRef := v.AsRef()
			if !isRef {
				continue
			}
			cands := e.st.IntervalsContaining(elem)
			// Created intervals are not in the store index; filter them here.
			for _, oid := range e.activeCreated {
				if containsOID(e.created[oid].Entities(), elem) {
					cands = append(cands, oid)
				}
			}
			return cands
		}
	}
	if e.streaming && st.window != nil {
		// Guard pushdown: a later entailment pins this interval's duration
		// inside a constant window, so the store's interval tree yields the
		// candidates whose duration lies within the window's hull. The set
		// stays a superset of the guard's models — empty durations entail
		// vacuously and are re-added, created intervals are screened with
		// the same hull test — and the guard itself still runs.
		cands := e.st.IntervalsWithin(*st.window)
		cands = append(cands, e.emptyIntervals...)
		if len(e.activeCreated) > 0 {
			win := interval.New(*st.window)
			for _, oid := range e.activeCreated {
				d := e.created[oid].Duration()
				if d.IsEmpty() || win.ContainsGen(d) {
					cands = append(cands, oid)
				}
			}
		}
		return cands
	}
	return e.allIntervals
}

func containsOID(ids []object.OID, want object.OID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func (e *Engine) isKind(v object.Value, k object.Kind) bool {
	oid, ok := v.AsRef()
	if !ok {
		return false
	}
	o := e.Object(oid)
	return o != nil && o.Kind() == k
}

// termValue resolves a non-constructive term under the bindings; ok is
// false when the term is an unbound variable.
func termValue(t Term, b bindings) (object.Value, bool) {
	if t.IsVar() {
		v, ok := b[t.Name()]
		return v, ok
	}
	if t.IsConcat() {
		return object.Null(), false
	}
	return t.Value(), true
}

// unify matches a term against a value, extending the bindings; it
// returns the variables newly bound (for undo) and whether it succeeded.
func unify(t Term, v object.Value, b bindings) ([]string, bool) {
	if t.IsVar() {
		if cur, ok := b[t.Name()]; ok {
			return nil, cur.Equal(v)
		}
		b[t.Name()] = v
		return []string{t.Name()}, true
	}
	if t.IsConcat() {
		return nil, false
	}
	return nil, t.Value().Equal(v)
}

func unifyArgs(args []Term, tuple row, b bindings) ([]string, bool) {
	var undo []string
	for i, t := range args {
		u, ok := unify(t, tuple[i], b)
		undo = append(undo, u...)
		if !ok {
			for _, v := range undo {
				delete(b, v)
			}
			return nil, false
		}
	}
	return undo, true
}

// --- Filters ------------------------------------------------------------------

func (e *Engine) resolveOperand(o Operand, b bindings) (object.Value, error) {
	v, ok := termValue(o.Term, b)
	if !ok {
		return object.Null(), fmt.Errorf("unbound variable %q in constraint operand %s", o.Term.Name(), o)
	}
	if o.Attr == "" {
		return v, nil
	}
	oid, isRef := v.AsRef()
	if !isRef {
		return object.Null(), nil // non-object has no attributes; constraint fails
	}
	obj := e.Object(oid)
	if obj == nil {
		return object.Null(), nil
	}
	return obj.Attr(o.Attr), nil
}

func (e *Engine) evalFilter(l Literal, b bindings) (bool, error) {
	switch a := l.(type) {
	case CmpAtom:
		lv, err := e.resolveOperand(a.Left, b)
		if err != nil {
			return false, err
		}
		rv, err := e.resolveOperand(a.Right, b)
		if err != nil {
			return false, err
		}
		return compareValues(lv, a.Op, rv), nil

	case MemberAtom:
		set, err := e.resolveOperand(a.Set, b)
		if err != nil {
			return false, err
		}
		for _, el := range a.Elems {
			ev, err := e.resolveOperand(el, b)
			if err != nil {
				return false, err
			}
			if !set.ContainsElem(ev) {
				return false, nil
			}
		}
		return true, nil

	case EntailAtom:
		lv, err := e.resolveOperand(a.Left, b)
		if err != nil {
			return false, err
		}
		rv, err := e.resolveOperand(a.Right, b)
		if err != nil {
			return false, err
		}
		lt, ok1 := lv.AsTemporal()
		rt, ok2 := rv.AsTemporal()
		if !ok1 || !ok2 {
			return false, nil
		}
		return rt.ContainsGen(lt), nil

	case TemporalAtom:
		lv, err := e.resolveOperand(a.Left, b)
		if err != nil {
			return false, err
		}
		rv, err := e.resolveOperand(a.Right, b)
		if err != nil {
			return false, err
		}
		lt, ok1 := lv.AsTemporal()
		rt, ok2 := rv.AsTemporal()
		if !ok1 || !ok2 {
			return false, nil
		}
		return evalTemporalRel(a.Rel, lt, rt), nil

	case NotAtom:
		tuple := make(row, len(a.Atom.Args))
		for i, t := range a.Atom.Args {
			v, ok := termValue(t, b)
			if !ok {
				return false, fmt.Errorf("unbound variable %q in negated atom %s", t.Name(), a)
			}
			tuple[i] = v
		}
		return !e.hasTuple(a.Atom.Pred, tuple), nil

	default:
		return false, fmt.Errorf("unexpected literal %T in filter position", l)
	}
}

// hasTuple reports whether the predicate's extent (EDB plus derived)
// contains the tuple. For negation this is sound because stratification
// guarantees the predicate's stratum is below the current one, so its
// extent is complete.
func (e *Engine) hasTuple(pred string, tuple row) bool {
	if rel, ok := e.derived[pred]; ok {
		return rel.keys.has(tuple) // EDB facts were seeded into the relation
	}
	ks, ok := e.edbKeys[pred]
	if !ok {
		rows := e.edbRows(pred)
		set := newKeySet(e.in, len(rows))
		for _, r := range rows {
			set.add(r)
		}
		ks = &set
		e.edbKeys[pred] = ks
	}
	return ks.has(tuple)
}

// EvalTemporal evaluates an Allen-style temporal relation between two
// generalized intervals — the semantics the engine applies to a
// TemporalAtom once both operands are known. Exported so the static
// analyzer can decide constant-constant temporal atoms without an engine.
func EvalTemporal(rel TemporalRel, l, r interval.Generalized) bool {
	return evalTemporalRel(rel, l, r)
}

// evalTemporalRel evaluates an Allen-style relation between generalized
// intervals using the algebraic temporal evaluator.
func evalTemporalRel(rel TemporalRel, l, r interval.Generalized) bool {
	alg := temporal.Algebraic{}
	switch rel {
	case TempBefore:
		return !l.IsEmpty() && !r.IsEmpty() && alg.Before(l, r)
	case TempAfter:
		return !l.IsEmpty() && !r.IsEmpty() && alg.Before(r, l)
	case TempMeets:
		return temporal.Meets(l, r)
	case TempMetBy:
		return temporal.Meets(r, l)
	case TempOverlaps:
		return alg.Overlaps(l, r)
	case TempEquals:
		return alg.Equals(l, r)
	case TempContains:
		return alg.Contains(l, r)
	case TempDuring:
		return alg.Contains(r, l)
	default:
		return false
	}
}

// compareValues evaluates an order comparison between values: numbers
// compare numerically, strings lexically; = and ≠ use structural
// equality for any kinds; order comparisons between other kinds are
// false (the dense order is defined on concrete domains only).
func compareValues(l object.Value, op constraint.Op, r object.Value) bool {
	switch op {
	case constraint.Eq:
		return l.Equal(r)
	case constraint.Ne:
		return !l.Equal(r)
	}
	if ln, ok := l.AsNumber(); ok {
		if rn, ok := r.AsNumber(); ok {
			return op.Holds(ln, rn)
		}
		return false
	}
	if ls, ok := l.AsString(); ok {
		if rs, ok := r.AsString(); ok {
			return op.Holds(float64(strings.Compare(ls, rs)), 0)
		}
	}
	return false
}

// --- Head instantiation --------------------------------------------------------

func (e *Engine) fireHead(cr *compiledRule, fr *frame) error {
	r := cr.rule
	// Streaming fast path: instantiate the head into the frame's scratch
	// buffer and dedup-check by interned key before allocating anything —
	// duplicate firings (the majority of firings near the fixpoint)
	// allocate nothing. Constructive heads, over-deletion, and provenance
	// tracing need the materialized tuple or its side effects and take the
	// general path below.
	if e.in != nil && !e.delMode && !e.trace && !cr.constructive {
		s, sids := fr.scratch, fr.scratchIDs
		for i, h := range cr.head {
			if h.slot >= 0 {
				if !fr.bound[h.slot] {
					return fmt.Errorf("datalog: rule %s: head variable %s unbound (range restriction violated)", r.label(), cr.varNames[h.slot])
				}
				s[i] = fr.vals[h.slot]
				sids[i] = fr.id(h.slot)
			} else {
				s[i] = h.val
				sids[i] = h.vid
			}
		}
		e.stats.Firings++
		if e.prof != nil {
			e.prof.ruleFirings[e.curRule]++
		}
		rel := e.curRel
		// Workers read the extent's key set without locking: within a
		// round it is immutable (proposals merge at the barrier), so this
		// filters firings already in the extent; cross-worker duplicates
		// of genuinely new tuples resolve at the merge.
		if rel.keys.hasIDs(sids) {
			return nil
		}
		if e.collect != nil {
			tuple := append(row(nil), s...)
			*e.collect = append(*e.collect, proposal{pred: r.Head.Pred, tuple: tuple, rule: e.curRule})
			return nil
		}
		rel.proposeIDs(s, sids)
		e.stats.Derived++
		if e.prof != nil {
			e.prof.ruleDerived[e.curRule]++
		}
		if e.stats.Derived > e.maxDerived {
			return e.derivedLimitErr()
		}
		return nil
	}

	tuple := make(row, len(cr.head))
	for i, h := range cr.head {
		switch {
		case h.concat != nil:
			oid, err := e.concatTerm(cr, *h.concat, fr)
			if err != nil {
				return fmt.Errorf("datalog: rule %s: %w", r.label(), err)
			}
			tuple[i] = object.Ref(oid)
		case h.slot >= 0:
			if !fr.bound[h.slot] {
				return fmt.Errorf("datalog: rule %s: head variable %s unbound (range restriction violated)", r.label(), cr.varNames[h.slot])
			}
			tuple[i] = fr.vals[h.slot]
		default:
			tuple[i] = h.val
		}
	}
	e.stats.Firings++
	if e.prof != nil {
		e.prof.ruleFirings[e.curRule]++
	}
	if e.delMode {
		// DRed over-deletion: the body matched through a deletion delta,
		// so this head tuple may have lost support. Mark it for deletion
		// (once) if it is part of the maintained extent; rederivation
		// decides later whether alternative support remains.
		pred := r.Head.Pred
		rel := e.derived[pred]
		if rel == nil || !rel.keys.has(tuple) {
			return nil
		}
		set := e.delSet[pred]
		if set == nil {
			ns := newKeySet(e.in, 0)
			set = &ns
			e.delSet[pred] = set
		}
		if set.add(tuple) {
			e.delNext[pred] = append(e.delNext[pred], tuple)
			e.delTuples[pred] = append(e.delTuples[pred], tuple)
		}
		return nil
	}
	if e.collect != nil {
		// Parallel worker: buffer the proposal for the round barrier.
		*e.collect = append(*e.collect, proposal{pred: r.Head.Pred, tuple: tuple, rule: e.curRule})
		return nil
	}
	rel := e.derived[r.Head.Pred]
	if rel.propose(tuple) {
		e.stats.Derived++
		if e.prof != nil {
			e.prof.ruleDerived[e.curRule]++
		}
		if e.stats.Derived > e.maxDerived {
			return e.derivedLimitErr()
		}
		if e.trace {
			e.recordProvenance(r, cr.bindingsOf(fr), r.Head.Pred, tuple)
		}
	}
	return nil
}

func (e *Engine) derivedLimitErr() error {
	return fmt.Errorf("%w: more than %d tuples derived (raise MaxDerived if intended)", ErrLimitExceeded, e.maxDerived)
}

// concatTerm evaluates a (possibly nested) constructive term to the oid
// of the resulting generalized interval object, materializing it in the
// extended active domain if new.
func (e *Engine) concatTerm(cr *compiledRule, t Term, fr *frame) (object.OID, error) {
	if !t.IsConcat() {
		var v object.Value
		if t.IsVar() {
			s, ok := cr.varSlots[t.Name()]
			if !ok || !fr.bound[s] {
				return "", fmt.Errorf("unbound variable %q in constructive term", t.Name())
			}
			v = fr.vals[s]
		} else {
			v = t.Value()
		}
		oid, isRef := v.AsRef()
		if !isRef {
			return "", fmt.Errorf("concatenation operand %s is not an object reference", v)
		}
		o := e.Object(oid)
		if o == nil {
			return "", fmt.Errorf("concatenation operand %s does not exist", oid)
		}
		if o.Kind() != object.GenInterval {
			return "", fmt.Errorf("concatenation operand %s is not a generalized interval", oid)
		}
		return oid, nil
	}
	l, err := e.concatTerm(cr, *t.left, fr)
	if err != nil {
		return "", err
	}
	r, err := e.concatTerm(cr, *t.right, fr)
	if err != nil {
		return "", err
	}
	return e.materializeConcat(l, r)
}

func (e *Engine) bases(oid object.OID) []object.OID {
	if b, ok := e.baseIDs[oid]; ok {
		return b
	}
	return []object.OID{oid}
}

// materializeConcat implements the object-creating semantics of Section
// 6.1: the oid of I1 ⊕ I2 is a function of the operand identities — here
// the sorted union of their base-interval identities — which makes ⊕
// idempotent, commutative and associative at the identity level and
// guarantees termination of constructive rules.
func (e *Engine) materializeConcat(l, r object.OID) (object.OID, error) {
	bases := mergeOIDs(e.bases(l), e.bases(r))
	if len(bases) == 1 {
		return bases[0], nil // I ⊕ I ≡ I
	}
	key := oidKey(bases)
	if oid, ok := e.concatKey[key]; ok {
		return oid, nil
	}
	if base, ok := e.sameBases(l, bases); ok {
		// Absorption: concatenating an object with a subset of its own
		// bases yields the object itself.
		return base, nil
	}
	if base, ok := e.sameBases(r, bases); ok {
		return base, nil
	}

	oid := e.freshOID(bases)
	lo, ro := e.Object(l), e.Object(r)
	merged := lo.Merge(ro, oid)
	e.created[oid] = merged
	e.baseIDs[oid] = bases
	e.concatKey[key] = oid
	e.pendingCreated = append(e.pendingCreated, oid)
	e.stats.Created++
	if e.stats.Created > e.maxCreated {
		return "", fmt.Errorf("%w: more than %d objects created by concatenation (raise MaxCreated if intended)", ErrLimitExceeded, e.maxCreated)
	}
	return oid, nil
}

func (e *Engine) sameBases(oid object.OID, bases []object.OID) (object.OID, bool) {
	own := e.bases(oid)
	if len(own) != len(bases) {
		return "", false
	}
	for i := range own {
		if own[i] != bases[i] {
			return "", false
		}
	}
	return oid, true
}

func (e *Engine) freshOID(bases []object.OID) object.OID {
	parts := make([]string, len(bases))
	for i, b := range bases {
		parts[i] = string(b)
	}
	oid := object.OID(strings.Join(parts, "+"))
	for i := 0; e.Object(oid) != nil; i++ {
		oid = object.OID(fmt.Sprintf("%s#%d", strings.Join(parts, "+"), i))
	}
	return oid
}

func mergeOIDs(a, b []object.OID) []object.OID {
	out := make([]object.OID, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, id := range out {
		if i == 0 || out[i-1] != id {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

func oidKey(bases []object.OID) string {
	parts := make([]string, len(bases))
	for i, b := range bases {
		parts[i] = string(b)
	}
	return strings.Join(parts, "\x00")
}

// --- Planning -----------------------------------------------------------------

// planBody orders the body literals for evaluation: the delta literal (if
// any) first, then greedily preferring evaluable filters (cheap pruning)
// and binding literals that join with already-bound variables. Because
// rules are range-restricted, every filter eventually becomes evaluable.
func planBody(body []Literal, deltaPos int) ([]int, error) {
	placed := make([]bool, len(body))
	bound := map[string]bool{}
	var plan []int

	place := func(i int) {
		placed[i] = true
		plan = append(plan, i)
		if body[i].binds() {
			body[i].collectVars(bound)
		}
	}
	if deltaPos >= 0 {
		place(deltaPos)
	}
	for len(plan) < len(body) {
		// 1. Any filter whose variables are all bound, or an equality
		// assignment whose source side is bound (it then binds its
		// target).
		found, assignVar := -1, ""
		for i, l := range body {
			if placed[i] || l.binds() {
				continue
			}
			vars := map[string]bool{}
			l.collectVars(vars)
			unboundVars := 0
			var unbound string
			for v := range vars {
				if !bound[v] {
					unboundVars++
					unbound = v
				}
			}
			if unboundVars == 0 {
				found, assignVar = i, ""
				break
			}
			if cmp, ok := l.(CmpAtom); ok && unboundVars == 1 {
				for _, as := range cmp.assignments() {
					if as.target == unbound {
						if found < 0 {
							found, assignVar = i, unbound
						}
						break
					}
				}
			}
		}
		if found >= 0 {
			place(found)
			if assignVar != "" {
				bound[assignVar] = true
			}
			continue
		}
		// 2. The binding literal sharing the most bound variables.
		best, bestScore := -1, -1
		for i, l := range body {
			if placed[i] || !l.binds() {
				continue
			}
			vars := map[string]bool{}
			l.collectVars(vars)
			score := 0
			for v := range vars {
				if bound[v] {
					score++
				}
			}
			// Prefer relational atoms slightly: they are usually more
			// selective than class enumeration.
			if _, isRel := l.(RelAtom); isRel {
				score = score*2 + 1
			} else {
				score = score * 2
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("constraint atoms reference variables not bound by any body literal")
		}
		place(best)
	}
	return plan, nil
}
