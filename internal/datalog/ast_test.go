package datalog

import (
	"strings"
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/object"
)

func TestTermBasics(t *testing.T) {
	v := Var("X")
	if !v.IsVar() || v.Name() != "X" || v.IsConcat() {
		t.Error("Var basics")
	}
	c := Const(object.Num(3))
	if c.IsVar() || !c.Value().Equal(object.Num(3)) {
		t.Error("Const basics")
	}
	o := Oid("gi1")
	if got, ok := o.Value().AsRef(); !ok || got != "gi1" {
		t.Error("Oid basics")
	}
	cc := Concat(Var("G1"), Var("G2"))
	if !cc.IsConcat() || cc.IsVar() {
		t.Error("Concat basics")
	}
	if !cc.Value().IsNull() {
		t.Error("Concat has no constant value")
	}
	if got := cc.String(); got != "G1 + G2" {
		t.Errorf("Concat String = %q", got)
	}
	nested := Concat(cc, Var("G3"))
	if got := nested.String(); got != "G1 + G2 + G3" {
		t.Errorf("nested Concat String = %q", got)
	}
}

func TestLiteralStrings(t *testing.T) {
	cases := []struct {
		lit  Literal
		want string
	}{
		{Rel("in", Var("O1"), Var("O2"), Var("G")), "in(O1, O2, G)"},
		{Interval(Var("G")), "Interval(G)"},
		{ObjectAtom(Oid("o1")), "Object(o1)"},
		{Cmp(AttrOp(Var("O"), "name"), constraint.Eq, TermOp(Const(object.Str("David")))),
			`O.name = "David"`},
		{Cmp(AttrOp(Var("O"), "a"), constraint.Lt, AttrOp(Var("P"), "b")), "O.a < P.b"},
		{Member(TermOp(Var("O")), AttrOp(Var("G"), "entities")), "O in G.entities"},
		{SubsetAtom(AttrOp(Var("G"), "entities"), TermOp(Oid("o1")), TermOp(Oid("o2"))),
			"{o1, o2} subset G.entities"},
		{Entails(AttrOp(Var("G2"), "duration"), AttrOp(Var("G1"), "duration")),
			"G2.duration => G1.duration"},
	}
	for _, tc := range cases {
		if got := tc.lit.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestRuleStringAndConstructive(t *testing.T) {
	r := NewRule(
		Rel("q", Var("G")),
		Interval(Var("G")),
		Member(TermOp(Oid("o1")), AttrOp(Var("G"), "entities")),
	).Named("r1")
	want := "r1: q(G) :- Interval(G), o1 in G.entities"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if r.IsConstructive() {
		t.Error("plain rule is not constructive")
	}
	cr := NewRule(Rel("c", Concat(Var("G1"), Var("G2"))), Interval(Var("G1")), Interval(Var("G2")))
	if !cr.IsConstructive() {
		t.Error("concat head is constructive")
	}
}

func TestRuleValidate(t *testing.T) {
	ok := NewRule(
		Rel("q", Var("O")),
		Interval(Oid("gi1")),
		ObjectAtom(Var("O")),
		Member(TermOp(Var("O")), AttrOp(Oid("gi1"), "entities")),
	)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}

	// Head variable not in body.
	bad := NewRule(Rel("q", Var("O"), Var("Z")), ObjectAtom(Var("O")))
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "Z") {
		t.Errorf("expected range-restriction error mentioning Z, got %v", err)
	}

	// Variable only in a constraint atom.
	bad2 := NewRule(
		Rel("q", Var("O")),
		ObjectAtom(Var("O")),
		Cmp(AttrOp(Var("O"), "n"), constraint.Lt, TermOp(Var("Limit"))),
	)
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "Limit") {
		t.Errorf("expected range-restriction error mentioning Limit, got %v", err)
	}

	// Constructive term in body.
	bad3 := NewRule(
		Rel("q", Var("G")),
		Interval(Var("G")),
		Rel("p", Concat(Var("G"), Var("G"))),
	)
	if err := bad3.Validate(); err == nil || !strings.Contains(err.Error(), "constructive") {
		t.Errorf("expected constructive-in-body error, got %v", err)
	}

	// Empty head predicate.
	bad4 := NewRule(RelAtom{Pred: ""})
	if err := bad4.Validate(); err == nil {
		t.Error("expected empty head error")
	}

	// Variables bound via head-only constants are fine; ground rule valid.
	ground := NewRule(Rel("q", Oid("gi1")))
	if err := ground.Validate(); err != nil {
		t.Errorf("ground rule rejected: %v", err)
	}
}

func TestProgramValidateAndIDB(t *testing.T) {
	p := NewProgram(
		NewRule(Rel("a", Var("X")), Rel("b", Var("X"))),
		NewRule(Rel("c", Var("X")), Rel("a", Var("X"))),
		NewRule(Rel("a", Var("X")), Rel("c", Var("X"))),
	)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	idb := p.IDB()
	if len(idb) != 2 || idb[0] != "a" || idb[1] != "c" {
		t.Errorf("IDB = %v", idb)
	}
	if got := p.String(); !strings.Contains(got, "a(X) :- b(X)") {
		t.Errorf("Program String = %q", got)
	}
	bad := NewProgram(NewRule(Rel("a", Var("Y")), Rel("b", Var("X"))))
	if err := bad.Validate(); err == nil {
		t.Error("program with unsafe rule should fail validation")
	}
}

func TestVarsOf(t *testing.T) {
	cases := []struct {
		lit  Literal
		want []string
	}{
		{Rel("p", Var("X"), Const(object.Num(1)), Var("Y"), Var("X")), []string{"X", "Y"}},
		{Interval(Var("G")), []string{"G"}},
		{Cmp(AttrOp(Var("A"), "x"), constraint.Lt, TermOp(Var("B"))), []string{"A", "B"}},
		{Member(TermOp(Var("O")), AttrOp(Var("G"), "entities")), []string{"O", "G"}},
		{Entails(AttrOp(Var("G1"), "duration"), AttrOp(Var("G2"), "duration")), []string{"G1", "G2"}},
		{Not(Rel("p", Var("Z"))), []string{"Z"}},
		{Temporal(AttrOp(Var("L"), "duration"), TempBefore, AttrOp(Var("R"), "duration")), []string{"L", "R"}},
		{Rel("h", Concat(Var("A"), Var("B"))), []string{"A", "B"}},
		{Rel("g", Oid("c")), nil},
	}
	for _, tc := range cases {
		got := VarsOf(tc.lit)
		if len(got) != len(tc.want) {
			t.Errorf("VarsOf(%v) = %v, want %v", tc.lit, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("VarsOf(%v) = %v, want %v", tc.lit, got, tc.want)
				break
			}
		}
	}
}

func TestParseTemporalRelNames(t *testing.T) {
	for _, name := range []string{"before", "after", "meets", "metby", "overlaps", "equals", "contains", "during"} {
		rel, ok := ParseTemporalRel(name)
		if !ok || string(rel) != name {
			t.Errorf("ParseTemporalRel(%q) = %v, %v", name, rel, ok)
		}
	}
	if _, ok := ParseTemporalRel("in"); ok {
		t.Error("'in' is not a temporal relation")
	}
	if _, ok := ParseTemporalRel(""); ok {
		t.Error("empty string is not a temporal relation")
	}
	// String rendering of temporal atoms.
	a := Temporal(AttrOp(Var("X"), "duration"), TempMeets, AttrOp(Var("Y"), "duration"))
	if got := a.String(); got != "X.duration meets Y.duration" {
		t.Errorf("String = %q", got)
	}
}
