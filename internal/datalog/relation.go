package datalog

import (
	"sort"
	"strings"
	"sync"

	"videodb/internal/object"
)

// row is one derived tuple.
type row []object.Value

func rowKey(r row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// relation holds the derived tuples of one IDB predicate, with the delta
// bookkeeping needed by semi-naive evaluation: rows is the full extent,
// delta the tuples added in the previous round, next the tuples derived
// in the current round (applied at the round boundary, matching the
// TP-iteration semantics of Definition 22).
type relation struct {
	rows  []row
	keys  map[string]bool
	delta []row
	next  []row

	// Join index: argument position -> value key -> indexes into rows.
	// Built lazily per position on first use, extended incrementally as
	// rows grow; guarded for parallel workers.
	idxMu sync.Mutex
	idx   map[int]*posIndex
}

// posIndex indexes one argument position of a relation.
type posIndex struct {
	vals    map[string][]int
	covered int // rows[:covered] are indexed
}

func newRelation() *relation {
	return &relation{keys: make(map[string]bool)}
}

// lookup returns the indexes of rows whose argument at pos has the given
// canonical value key. The index for a position is built on first use
// and extended to cover new rows on later calls.
func (r *relation) lookup(pos int, key string) []int {
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if r.idx == nil {
		r.idx = make(map[int]*posIndex)
	}
	pi, ok := r.idx[pos]
	if !ok {
		pi = &posIndex{vals: make(map[string][]int)}
		r.idx[pos] = pi
	}
	for i := pi.covered; i < len(r.rows); i++ {
		if pos < len(r.rows[i]) {
			k := r.rows[i][pos].String()
			pi.vals[k] = append(pi.vals[k], i)
		}
	}
	pi.covered = len(r.rows)
	return pi.vals[key]
}

// propose records a tuple derived this round; duplicates of existing or
// already-proposed tuples are ignored. It reports whether the tuple was
// new.
func (r *relation) propose(t row) bool {
	k := rowKey(t)
	if r.keys[k] {
		return false
	}
	r.keys[k] = true
	r.next = append(r.next, t)
	return true
}

// seed installs a tuple directly into the full extent without delta
// bookkeeping — incremental maintenance re-materializing the extension
// of a prior run (see incremental.go).
func (r *relation) seed(t row) {
	k := rowKey(t)
	if r.keys[k] {
		return
	}
	r.keys[k] = true
	r.rows = append(r.rows, t)
}

// advance applies the round boundary: next becomes delta and joins the
// full extent. It reports whether anything changed.
func (r *relation) advance() bool {
	r.delta = r.next
	r.next = nil
	r.rows = append(r.rows, r.delta...)
	return len(r.delta) > 0
}

// sortedRows returns the rows in canonical (key) order. Keys are
// computed once per row, not per comparison — on large extents the
// comparator would otherwise rebuild each key O(log n) times.
func (r *relation) sortedRows() []row {
	type keyed struct {
		key string
		t   row
	}
	ks := make([]keyed, len(r.rows))
	for i, t := range r.rows {
		ks[i] = keyed{rowKey(t), t}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]row, len(ks))
	for i, k := range ks {
		out[i] = k.t
	}
	return out
}
