package datalog

import (
	"sort"
	"strings"
	"sync"

	"videodb/internal/object"
)

// row is one derived tuple.
type row []object.Value

// rowKey renders the tuple's canonical string key. The streaming executor
// identifies tuples by interned 64-bit keys instead (see intern.go);
// rendered keys remain the canonical *ordering* for query results and the
// dedup key of the materializing ablation (WithoutStreaming).
func rowKey(r row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// rowID is the interned membership key of a tuple with at most four
// values: its value ids, padded with invalidID (which is never issued, so
// padding cannot collide with a real id and shorter rows cannot alias
// longer ones). One fixed-width map probe — no string rendering, no pair
// folding — is the dedup cost of a duplicate firing.
type rowID [4]uint64

// keySet is a membership set of tuples. Interned (streaming) sets key
// rows of arity ≤ 4 by their padded value-id array and longer rows by the
// pair-interner fold; string sets render the row (the materializing
// ablation keeps the seed evaluator's allocation profile).
type keySet struct {
	in   *pairInterner
	arr  map[rowID]bool
	ids  map[uint64]bool // fold keys of rows with arity > 4
	strs map[string]bool
}

func newKeySet(in *pairInterner, n int) keySet {
	if in != nil {
		return keySet{in: in, arr: make(map[rowID]bool, n)}
	}
	return keySet{strs: make(map[string]bool, n)}
}

// presize replaces an empty set's map with one sized for n entries.
func (s *keySet) presize(n int) {
	if s.in != nil {
		if len(s.arr) == 0 && n > 0 {
			s.arr = make(map[rowID]bool, n)
		}
		return
	}
	if len(s.strs) == 0 && n > 0 {
		s.strs = make(map[string]bool, n)
	}
}

// arrKey builds the fixed-width key from a tuple's value ids, reporting
// false when the arity exceeds the array (fold fallback).
func arrKey(t row) (rowID, bool) {
	var k rowID
	if len(t) > len(k) {
		return k, false
	}
	for i, v := range t {
		k[i] = valueID(v)
	}
	return k, true
}

// arrKeyIDs is arrKey over already-interned ids.
func arrKeyIDs(ids []uint64) (rowID, bool) {
	var k rowID
	if len(ids) > len(k) {
		return k, false
	}
	copy(k[:], ids)
	return k, true
}

// add inserts the tuple, reporting whether it was new.
func (s *keySet) add(t row) bool {
	if s.in != nil {
		if k, ok := arrKey(t); ok {
			if s.arr[k] {
				return false
			}
			s.arr[k] = true
			return true
		}
		k := s.in.rowKey64(t)
		if s.ids[k] {
			return false
		}
		if s.ids == nil {
			s.ids = make(map[uint64]bool)
		}
		s.ids[k] = true
		return true
	}
	k := rowKey(t)
	if s.strs[k] {
		return false
	}
	s.strs[k] = true
	return true
}

func (s *keySet) has(t row) bool {
	if s.in != nil {
		if k, ok := arrKey(t); ok {
			return s.arr[k]
		}
		return s.ids[s.in.rowKey64(t)]
	}
	return s.strs[rowKey(t)]
}

// hasIDs answers membership for a tuple whose value ids are already in
// hand (interned mode only — the zero-allocation dedup probe of the
// streaming head path).
func (s *keySet) hasIDs(ids []uint64) bool {
	if k, ok := arrKeyIDs(ids); ok {
		return s.arr[k]
	}
	return s.ids[s.in.foldIDs(ids)]
}

// addIDs inserts a tuple by its value ids (interned mode only).
func (s *keySet) addIDs(ids []uint64) {
	if k, ok := arrKeyIDs(ids); ok {
		s.arr[k] = true
		return
	}
	if s.ids == nil {
		s.ids = make(map[uint64]bool)
	}
	s.ids[s.in.foldIDs(ids)] = true
}

func (s *keySet) remove(t row) {
	if s.in != nil {
		if k, ok := arrKey(t); ok {
			delete(s.arr, k)
			return
		}
		delete(s.ids, s.in.rowKey64(t))
		return
	}
	delete(s.strs, rowKey(t))
}

func (s *keySet) len() int {
	if s.in != nil {
		return len(s.arr) + len(s.ids)
	}
	return len(s.strs)
}

// relation holds the derived tuples of one IDB predicate, with the delta
// bookkeeping needed by semi-naive evaluation: rows is the full extent,
// delta the tuples added in the previous round, next the tuples derived
// in the current round (applied at the round boundary, matching the
// TP-iteration semantics of Definition 22).
type relation struct {
	rows  []row
	keys  keySet
	delta []row
	next  []row

	// Interned mode: per-row value ids, aligned with rows/delta/next.
	// Computed once when a tuple enters the relation, so index building
	// and match bindings never re-probe the value intern table.
	vids      [][]uint64
	deltaVids [][]uint64
	nextVids  [][]uint64

	// Proposal arena: newly derived tuples and their ids are sliced off
	// chunked backing arrays — one allocation per chunk, not two per
	// tuple (see proposeIDs).
	valChunk []object.Value
	idChunk  []uint64

	// Join index: argument position -> value key -> indexes into rows.
	// Built lazily per position on first use, extended incrementally as
	// rows grow. Rows only grow at the single-threaded round boundary, so
	// within a round the index is read-mostly: probes take the read lock
	// and fall through to the write lock only when the index has to be
	// created or extended.
	idxMu sync.RWMutex
	idx   map[int]*posIndex
}

// posIndex indexes one argument position of a relation, keyed like the
// relation's keySet: interned ids or rendered strings.
type posIndex struct {
	vals    map[uint64][]int
	valsS   map[string][]int
	covered int // rows[:covered] are indexed
}

func newRelation(in *pairInterner) *relation { return newRelationSized(in, 0) }

// newRelationSized pre-sizes the dedup set for n expected tuples (the
// store's cardinality estimate for EDB-seeded relations).
func newRelationSized(in *pairInterner, n int) *relation {
	return &relation{keys: newKeySet(in, n)}
}

func (r *relation) interned() bool { return r.keys.in != nil }

// lookup64 returns the indexes of rows whose argument at pos has the
// given interned value id. The index for a position is built on first use
// and extended to cover new rows on later calls; the covering check and
// probe run under the read lock, so concurrent workers only serialize
// while the index actually grows.
func (r *relation) lookup64(pos int, key uint64) []int {
	r.idxMu.RLock()
	if pi, ok := r.idx[pos]; ok && pi.covered == len(r.rows) {
		ids := pi.vals[key]
		r.idxMu.RUnlock()
		return ids
	}
	r.idxMu.RUnlock()

	//videolint:ignore lockcheck double-checked locking: extendIndex re-validates coverage under the write lock before rebuilding
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	pi := r.extendIndex(pos)
	return pi.vals[key]
}

// lookupStr is lookup64 for string-keyed (materializing) relations.
func (r *relation) lookupStr(pos int, key string) []int {
	r.idxMu.RLock()
	if pi, ok := r.idx[pos]; ok && pi.covered == len(r.rows) {
		ids := pi.valsS[key]
		r.idxMu.RUnlock()
		return ids
	}
	r.idxMu.RUnlock()

	//videolint:ignore lockcheck double-checked locking: extendIndex re-validates coverage under the write lock before rebuilding
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	pi := r.extendIndex(pos)
	return pi.valsS[key]
}

// extendIndex creates or extends the position index to cover all rows.
// Caller holds the write lock. The value map is pre-sized from the row
// count — the distinct-value upper bound — so building a large index does
// not rehash repeatedly.
func (r *relation) extendIndex(pos int) *posIndex {
	if r.idx == nil {
		r.idx = make(map[int]*posIndex)
	}
	pi, ok := r.idx[pos]
	if !ok {
		pi = &posIndex{}
		if r.interned() {
			pi.vals = make(map[uint64][]int, len(r.rows))
		} else {
			pi.valsS = make(map[string][]int, len(r.rows))
		}
		r.idx[pos] = pi
	}
	if r.interned() {
		for i := pi.covered; i < len(r.rows); i++ {
			if pos < len(r.rows[i]) {
				var k uint64
				if i < len(r.vids) && pos < len(r.vids[i]) {
					k = r.vids[i][pos]
				} else {
					k = valueID(r.rows[i][pos])
				}
				pi.vals[k] = append(pi.vals[k], i)
			}
		}
	} else {
		for i := pi.covered; i < len(r.rows); i++ {
			if pos < len(r.rows[i]) {
				k := r.rows[i][pos].String()
				pi.valsS[k] = append(pi.valsS[k], i)
			}
		}
	}
	pi.covered = len(r.rows)
	return pi
}

// propose records a tuple derived this round; duplicates of existing or
// already-proposed tuples are ignored. It reports whether the tuple was
// new.
func (r *relation) propose(t row) bool {
	if !r.keys.add(t) {
		return false
	}
	r.next = append(r.next, t)
	if r.interned() {
		r.nextVids = append(r.nextVids, vidsOf(t))
	}
	return true
}

// proposalChunk sizes the arena backing arrays of proposeIDs.
const proposalChunk = 2048

// proposeIDs records a freshly derived tuple whose value ids are already
// computed (the streaming head path reads them from frame caches). The
// values and ids are copied out of the caller's scratch buffers into the
// relation's arena — tuples are sliced off chunked backing arrays, so
// admitting a new tuple costs amortized zero allocations. The caller has
// already established the tuple is new (hasIDs).
func (r *relation) proposeIDs(s row, sids []uint64) {
	r.keys.addIDs(sids)
	n := len(s)
	if cap(r.valChunk)-len(r.valChunk) < n {
		c := proposalChunk
		if n > c {
			c = n
		}
		r.valChunk = make([]object.Value, 0, c)
		r.idChunk = make([]uint64, 0, c)
	}
	vOff := len(r.valChunk)
	r.valChunk = append(r.valChunk, s...)
	iOff := len(r.idChunk)
	r.idChunk = append(r.idChunk, sids...)
	r.next = append(r.next, row(r.valChunk[vOff:len(r.valChunk):len(r.valChunk)]))
	r.nextVids = append(r.nextVids, r.idChunk[iOff:len(r.idChunk):len(r.idChunk)])
}

// seed installs a tuple directly into the full extent without delta
// bookkeeping — incremental maintenance re-materializing the extension
// of a prior run (see incremental.go).
func (r *relation) seed(t row) {
	if !r.keys.add(t) {
		return
	}
	r.rows = append(r.rows, t)
	if r.interned() {
		r.vids = append(r.vids, vidsOf(t))
	}
}

// advance applies the round boundary: next becomes delta and joins the
// full extent. The new proposal buffer is pre-sized from the delta it
// replaces — the previous round's cardinality is the best available
// estimate for the next one. It reports whether anything changed.
func (r *relation) advance() bool {
	r.delta, r.deltaVids = r.next, r.nextVids
	if n := len(r.delta); n > 0 {
		r.next = make([]row, 0, n)
		if r.interned() {
			r.nextVids = make([][]uint64, 0, n)
		}
	} else {
		r.next, r.nextVids = nil, nil
	}
	r.rows = append(r.rows, r.delta...)
	if r.interned() {
		r.vids = append(r.vids, r.deltaVids...)
	}
	return len(r.delta) > 0
}

// sortedRows returns the rows in canonical (key) order. Keys are
// computed once per row, not per comparison — on large extents the
// comparator would otherwise rebuild each key O(log n) times.
func (r *relation) sortedRows() []row {
	type keyed struct {
		key string
		t   row
	}
	ks := make([]keyed, len(r.rows))
	for i, t := range r.rows {
		ks[i] = keyed{rowKey(t), t}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]row, len(ks))
	for i, k := range ks {
		out[i] = k.t
	}
	return out
}
