package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// TestNaiveEquivalentToSeminaive is the differential-testing oracle for
// the evaluator: on randomly generated stores and programs, naive and
// semi-naive evaluation must produce identical fixpoints (same derived
// relations, same created objects).
func TestNaiveEquivalentToSeminaive(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, p := randomInstance(r)
		e1, err := NewEngine(s, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e2, err := NewEngine(s, p, Naive())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := e1.Run(); err != nil {
			t.Fatalf("seed %d semi-naive: %v", seed, err)
		}
		if err := e2.Run(); err != nil {
			t.Fatalf("seed %d naive: %v", seed, err)
		}
		for _, pred := range p.IDB() {
			r1, err1 := e1.Rows(pred)
			r2, err2 := e2.Rows(pred)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: %v %v", seed, err1, err2)
			}
			if len(r1) != len(r2) {
				t.Fatalf("seed %d: %s has %d vs %d tuples\nprogram:\n%s",
					seed, pred, len(r1), len(r2), p)
			}
			for i := range r1 {
				if rowKey(r1[i]) != rowKey(r2[i]) {
					t.Fatalf("seed %d: %s row %d: %s vs %s", seed, pred, i, rowKey(r1[i]), rowKey(r2[i]))
				}
			}
		}
		c1, c2 := e1.Created(), e2.Created()
		if len(c1) != len(c2) {
			t.Fatalf("seed %d: created %d vs %d", seed, len(c1), len(c2))
		}
		for i := range c1 {
			if !c1[i].Equal(c2[i]) {
				t.Fatalf("seed %d: created object %d differs: %v vs %v", seed, i, c1[i], c2[i])
			}
		}
	}
}

// randomInstance builds a small random store and a random (valid) program
// exercising class atoms, membership constraints, entailment, derived
// relations, recursion and occasionally constructive heads.
func randomInstance(r *rand.Rand) (*store.Store, Program) {
	s := store.New()
	nEnt := 2 + r.Intn(4)
	nInt := 2 + r.Intn(4)
	var ents []object.OID
	for i := 0; i < nEnt; i++ {
		oid := object.OID(fmt.Sprintf("e%d", i))
		ents = append(ents, oid)
		s.Put(object.NewEntity(oid).Set("n", object.Num(float64(r.Intn(5)))))
	}
	for i := 0; i < nInt; i++ {
		oid := object.OID(fmt.Sprintf("g%d", i))
		lo := float64(r.Intn(50))
		var members []object.OID
		for _, e := range ents {
			if r.Intn(2) == 0 {
				members = append(members, e)
			}
		}
		s.Put(object.NewInterval(oid, interval.FromPairs(lo, lo+float64(5+r.Intn(20)))).
			Set(object.AttrEntities, object.RefSet(members...)))
	}
	// Random binary EDB facts over entities.
	for i := 0; i < 3+r.Intn(5); i++ {
		s.AddFact(store.RefFact("edge", ents[r.Intn(nEnt)], ents[r.Intn(nEnt)]))
	}

	rules := []Rule{
		// Derived relation over intervals and entities.
		NewRule(Rel("appears", Var("O"), Var("G")),
			Interval(Var("G")), ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G"), "entities"))),
		// Recursion through a derived relation.
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("Y"), Var("Z"))),
		// Join between derived relations.
		NewRule(Rel("together", Var("O1"), Var("O2"), Var("G")),
			Rel("appears", Var("O1"), Var("G")),
			Rel("appears", Var("O2"), Var("G"))),
		// Temporal entailment between intervals.
		NewRule(Rel("contains", Var("G1"), Var("G2")),
			Interval(Var("G1")), Interval(Var("G2")),
			Entails(AttrOp(Var("G2"), "duration"), AttrOp(Var("G1"), "duration"))),
	}
	if r.Intn(2) == 0 {
		// A constructive rule: concatenate intervals sharing an entity.
		rules = append(rules, NewRule(
			Rel("merged", Concat(Var("G1"), Var("G2"))),
			Interval(Var("G1")), Interval(Var("G2")), ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G1"), "entities")),
			Member(TermOp(Var("O")), AttrOp(Var("G2"), "entities"))))
	}
	return s, NewProgram(rules...)
}

func TestSeminaiveDoesLessWorkThanNaive(t *testing.T) {
	// On a recursion-heavy instance semi-naive should fire far fewer rule
	// instantiations than naive while deriving the same result.
	s := store.New()
	const n = 30
	for i := 0; i < n; i++ {
		s.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%02d", i)), object.Str(fmt.Sprintf("n%02d", i+1))))
	}
	p := NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))),
	)
	semi := mustEngine(t, s, p)
	naive := mustEngine(t, s, p, Naive())
	if err := semi.Run(); err != nil {
		t.Fatal(err)
	}
	if err := naive.Run(); err != nil {
		t.Fatal(err)
	}
	r1, _ := semi.Rows("reach")
	r2, _ := naive.Rows("reach")
	if len(r1) != len(r2) {
		t.Fatalf("fixpoints differ: %d vs %d", len(r1), len(r2))
	}
	if semi.Stats().Firings >= naive.Stats().Firings {
		t.Errorf("semi-naive fired %d, naive %d — expected strictly less",
			semi.Stats().Firings, naive.Stats().Firings)
	}
}
