package datalog

import (
	"strings"
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

func TestNegationBasics(t *testing.T) {
	s := ropeStore(t)
	// Objects that never appear in gi1: absent(O) :- Object(O),
	// not appears(O, gi1)  with appears derived first.
	p := NewProgram(
		NewRule(Rel("appears", Var("O"), Var("G")),
			Interval(Var("G")), ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G"), "entities"))),
		NewRule(Rel("absent", Var("O")),
			ObjectAtom(Var("O")),
			Not(Rel("appears", Var("O"), Oid("gi1")))),
	)
	e := mustEngine(t, s, p)
	wantOIDs(t, oidResults(t, e, Rel("absent", Var("O"))), "o5", "o6", "o7", "o8", "o9")
}

func TestNegationOverEDB(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("a"))
	s.Put(object.NewEntity("b"))
	s.Put(object.NewEntity("c"))
	s.AddFact(store.RefFact("likes", "a", "b"))
	// unloved(X) :- Object(X), not liked(X) where liked projects likes.
	p := NewProgram(
		NewRule(Rel("liked", Var("Y")), Rel("likes", Var("X"), Var("Y"))),
		NewRule(Rel("unloved", Var("X")),
			ObjectAtom(Var("X")), Not(Rel("liked", Var("X")))),
	)
	e := mustEngine(t, s, p)
	wantOIDs(t, oidResults(t, e, Rel("unloved", Var("X"))), "a", "c")

	// Direct negation of an EDB relation (no defining rules).
	p2 := NewProgram(NewRule(Rel("solo", Var("X")),
		ObjectAtom(Var("X")),
		Not(Rel("likes", Var("X"), Oid("b")))))
	e2 := mustEngine(t, s, p2)
	wantOIDs(t, oidResults(t, e2, Rel("solo", Var("X"))), "b", "c")
}

func TestNegationUnreachable(t *testing.T) {
	// The classic: nodes not reachable from a source.
	s := store.New()
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"d", "e"}}
	for _, e := range edges {
		s.AddFact(store.NewFact("edge", object.Str(e[0]), object.Str(e[1])))
	}
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		s.AddFact(store.NewFact("node", object.Str(n)))
	}
	p := NewProgram(
		NewRule(Rel("reach", Const(object.Str("a")))),
		NewRule(Rel("reach", Var("Y")),
			Rel("reach", Var("X")), Rel("edge", Var("X"), Var("Y"))),
		NewRule(Rel("unreachable", Var("N")),
			Rel("node", Var("N")), Not(Rel("reach", Var("N")))),
	)
	e := mustEngine(t, s, p)
	res, err := e.Query(Rel("unreachable", Var("N")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("unreachable = %v", res)
	}
	if v, _ := res[0].Values[0].AsString(); v != "d" {
		t.Errorf("first unreachable = %v", res[0])
	}
	if v, _ := res[1].Values[0].AsString(); v != "e" {
		t.Errorf("second unreachable = %v", res[1])
	}
}

func TestNegationMultipleStrata(t *testing.T) {
	// Three strata: base -> not base -> not (not base).
	s := store.New()
	for _, n := range []string{"a", "b", "c"} {
		s.AddFact(store.NewFact("item", object.Str(n)))
	}
	s.AddFact(store.NewFact("flagged", object.Str("a")))
	p := NewProgram(
		NewRule(Rel("clean", Var("X")),
			Rel("item", Var("X")), Not(Rel("flagged", Var("X")))),
		NewRule(Rel("dirty", Var("X")),
			Rel("item", Var("X")), Not(Rel("clean", Var("X")))),
	)
	e := mustEngine(t, s, p)
	res, err := e.Query(Rel("dirty", Var("X")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("dirty = %v", res)
	}
	if v, _ := res[0].Values[0].AsString(); v != "a" {
		t.Errorf("dirty = %v", res)
	}
}

func TestUnstratifiedRejected(t *testing.T) {
	cases := []struct {
		prog Program
		path string // full negation-cycle path the error must report
	}{
		// p :- not p.
		{NewProgram(NewRule(Rel("p", Var("X")),
			Rel("base", Var("X")), Not(Rel("p", Var("X"))))),
			"p -> not p"},
		// Mutual recursion through negation.
		{NewProgram(
			NewRule(Rel("win", Var("X")),
				Rel("move", Var("X"), Var("Y")), Not(Rel("win", Var("Y")))),
		), "win -> not win"},
		// Longer cycle: a -> b -> not a.
		{NewProgram(
			NewRule(Rel("a", Var("X")), Rel("b", Var("X"))),
			NewRule(Rel("b", Var("X")), Rel("base", Var("X")), Not(Rel("a", Var("X")))),
		), "b -> not a -> b"},
	}
	for i, tc := range cases {
		if _, err := NewEngine(store.New(), tc.prog); err == nil {
			t.Errorf("case %d: unstratified program accepted", i)
		} else if !strings.Contains(err.Error(), "stratified") {
			t.Errorf("case %d: error %q should mention stratification", i, err)
		} else if !strings.Contains(err.Error(), tc.path) {
			t.Errorf("case %d: error %q should report the negation cycle %q", i, err, tc.path)
		}
	}
}

func TestNegationWithConstructiveRules(t *testing.T) {
	// Constructive rules grow the Interval class; a rule negating a
	// predicate over intervals must run after all concatenation settles.
	// Here: merged intervals exist after concatenation; "atomic" intervals
	// are those that are not a proper concatenation result.
	s := store.New()
	s.Put(object.NewInterval("g1", interval.FromPairs(0, 10)).
		Set(object.AttrEntities, object.RefSet("x")))
	s.Put(object.NewInterval("g2", interval.FromPairs(20, 30)).
		Set(object.AttrEntities, object.RefSet("x")))
	p := NewProgram(
		// Stratum of merged: creates g1+g2 (both orientations of the pair
		// concatenate to the same object).
		NewRule(Rel("merged", Concat(Var("G1"), Var("G2"))),
			Interval(Var("G1")), Interval(Var("G2")),
			Member(TermOp(Oid("x")), AttrOp(Var("G1"), "entities")),
			Member(TermOp(Oid("x")), AttrOp(Var("G2"), "entities")),
			Cmp(TermOp(Var("G1")), constraint.Ne, TermOp(Var("G2")))),
		// proper(G): merged result that is none of its operands.
		NewRule(Rel("proper", Var("G")),
			Rel("merged", Var("G")),
			Not(Rel("base_interval", Var("G")))),
		NewRule(Rel("base_interval", Oid("g1"))),
		NewRule(Rel("base_interval", Oid("g2"))),
	)
	e := mustEngine(t, s, p)
	got := oidResults(t, e, Rel("proper", Var("G")))
	if len(got) != 1 || got[0] != "g1+g2" {
		t.Errorf("proper = %v", got)
	}
}

func TestNegationStratumOrderingWithIntervalGrowth(t *testing.T) {
	// A rule negating over a predicate that ranges over Interval(G) must
	// be forced above the constructive stratum by the pseudo-predicate
	// dependency. If it ran too early it would see only the base
	// intervals and wrongly derive "no_big".
	s := store.New()
	s.Put(object.NewInterval("g1", interval.FromPairs(0, 10)))
	s.Put(object.NewInterval("g2", interval.FromPairs(20, 30)))
	long := object.Temporal(interval.FromPairs(0, 10, 20, 30))
	p := NewProgram(
		NewRule(Rel("pair", Concat(Oid("g1"), Oid("g2"))), Interval(Oid("g1"))),
		// big(G) holds only for the created object (its duration covers
		// both fragments).
		NewRule(Rel("big", Var("G")),
			Interval(Var("G")),
			Entails(TermOp(Const(long)), AttrOp(Var("G"), "duration"))),
		NewRule(Rel("no_big", Const(object.Str("witness"))),
			Rel("marker", Var("X")), Not(Rel("big", Oid("g1+g2")))),
	)
	s.AddFact(store.NewFact("marker", object.Str("m")))
	e := mustEngine(t, s, p)
	ok, err := e.Ask(Rel("no_big", Var("W")))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("no_big derived: negation evaluated before the interval domain settled")
	}
	bigs := oidResults(t, e, Rel("big", Var("G")))
	if len(bigs) != 1 || bigs[0] != "g1+g2" {
		t.Errorf("big = %v", bigs)
	}
}

func TestNegationNaiveEquivalence(t *testing.T) {
	// Differential check with negation present.
	s := store.New()
	for i := 0; i < 10; i++ {
		s.AddFact(store.NewFact("n", object.Num(float64(i))))
		if i%2 == 0 {
			s.AddFact(store.NewFact("even", object.Num(float64(i))))
		}
	}
	p := NewProgram(
		NewRule(Rel("odd", Var("X")), Rel("n", Var("X")), Not(Rel("even", Var("X")))),
		NewRule(Rel("same", Var("X"), Var("Y")),
			Rel("odd", Var("X")), Rel("odd", Var("Y"))),
	)
	semi := mustEngine(t, s, p)
	naive := mustEngine(t, s, p, Naive())
	r1, err1 := semi.Rows("same")
	r2, err2 := naive.Rows("same")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(r1) != 25 || len(r2) != 25 {
		t.Errorf("same: %d vs %d tuples, want 25", len(r1), len(r2))
	}
}
