package datalog

import (
	"fmt"
	"strings"
)

// Stratification for the negation extension. Each IDB predicate gets a
// stratum; a rule's head must be in a stratum ≥ the strata of the
// predicates it uses positively, and strictly greater than the strata of
// the predicates it negates. Programs with recursion through negation
// are rejected.
//
// Constructive rules interact with stratification through the Interval
// class: creating a generalized interval extends the extension of every
// Interval(G) atom. We model that with a pseudo-predicate ("⊕Interval"):
// every constructive rule also "defines" it, and every rule whose body
// contains an Interval class atom depends on it positively. The ordinary
// stratification condition then guarantees that any rule reading the
// Interval class runs at or after every rule that can grow it — which is
// exactly what negation soundness needs.
//
// The dependency structure itself lives in DepGraph (depgraph.go), which
// is shared with goal-reachability pruning and the static analyzer.

// intervalPseudo is the pseudo-predicate tracking growth of the Interval
// class extension. The NUL byte keeps it out of the user namespace.
const intervalPseudo = "\x00interval"

// stratify returns the stratum of each predicate (IDB predicates and the
// pseudo-predicate; EDB predicates are implicitly stratum 0) and the
// maximum stratum. It fails if the program is not stratified, reporting
// the full predicate cycle through the offending negation.
func stratify(p Program) (map[string]int, int, error) {
	g := NewDepGraph(p)
	if cycle := g.NegationCycle(); cycle != nil {
		return nil, 0, fmt.Errorf("datalog: program is not stratified: recursion through negation: %s",
			renderCycle(cycle))
	}

	// No recursion through negation, so the relaxation below converges:
	// strata only increase across negative edges, and every cycle is
	// negation-free. The iteration cap is a defensive backstop.
	var deps []stratumDep
	for pred, edges := range g.byPred {
		for _, e := range edges {
			if e.Negative || g.IDB(e.To) || e.To == intervalPseudo {
				deps = append(deps, stratumDep{head: pred, body: e.To, negative: e.Negative})
			}
		}
	}
	strata := map[string]int{}
	limit := len(g.byPred) + 2
	for changed, iter := true, 0; changed; iter++ {
		if iter > limit*(len(deps)+1) {
			return nil, 0, fmt.Errorf("datalog: program is not stratified (stratum relaxation diverged)")
		}
		changed = false
		for _, d := range deps {
			want := strata[d.body]
			if d.negative {
				want++
			}
			if strata[d.head] < want {
				strata[d.head] = want
				changed = true
			}
		}
	}
	max := 0
	for _, s := range strata {
		if s > max {
			max = s
		}
	}
	return strata, max, nil
}

type stratumDep struct {
	head, body string
	negative   bool
}

// renderCycle formats a closed negation-cycle path, e.g.
// "b -> not a -> b" for a program where b negates a and a depends on b.
// The first step of the cycle is the negated dependency.
func renderCycle(cycle []string) string {
	parts := make([]string, len(cycle))
	for i, pred := range cycle {
		if pred == intervalPseudo {
			pred = "Interval (constructive rules)"
		}
		if i == 1 {
			pred = "not " + pred
		}
		parts[i] = pred
	}
	return strings.Join(parts, " -> ")
}
