package datalog

import (
	"fmt"
	"strings"

	"videodb/internal/object"
)

// Stratification for the negation extension. Each IDB predicate gets a
// stratum; a rule's head must be in a stratum ≥ the strata of the
// predicates it uses positively, and strictly greater than the strata of
// the predicates it negates. Programs with recursion through negation
// are rejected.
//
// Constructive rules interact with stratification through the Interval
// class: creating a generalized interval extends the extension of every
// Interval(G) atom. We model that with a pseudo-predicate ("⊕Interval"):
// every constructive rule also "defines" it, and every rule whose body
// contains an Interval class atom depends on it positively. The ordinary
// stratification condition then guarantees that any rule reading the
// Interval class runs at or after every rule that can grow it — which is
// exactly what negation soundness needs.

// intervalPseudo is the pseudo-predicate tracking growth of the Interval
// class extension. The NUL byte keeps it out of the user namespace.
const intervalPseudo = "\x00interval"

type stratumDep struct {
	head, body string
	negative   bool
}

// stratify returns the stratum of each predicate (IDB predicates and the
// pseudo-predicate; EDB predicates are implicitly stratum 0) and the
// maximum stratum. It fails if the program is not stratified.
func stratify(p Program) (map[string]int, int, error) {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}

	var deps []stratumDep
	addRuleDeps := func(head string, r Rule) {
		for _, l := range r.Body {
			switch a := l.(type) {
			case RelAtom:
				if idb[a.Pred] {
					deps = append(deps, stratumDep{head: head, body: a.Pred})
				}
			case NotAtom:
				// Negated predicates constrain the stratum even when they
				// are EDB-only (stratum 0), which the +1 handles uniformly.
				deps = append(deps, stratumDep{head: head, body: a.Atom.Pred, negative: true})
			case ClassAtom:
				if a.Kind == object.GenInterval {
					deps = append(deps, stratumDep{head: head, body: intervalPseudo})
				}
			}
		}
	}
	for _, r := range p.Rules {
		addRuleDeps(r.Head.Pred, r)
		if r.IsConstructive() {
			addRuleDeps(intervalPseudo, r)
		}
	}

	strata := map[string]int{}
	nodes := map[string]bool{intervalPseudo: true}
	for pred := range idb {
		nodes[pred] = true
	}
	for _, d := range deps {
		nodes[d.head] = true
		nodes[d.body] = true
	}
	limit := len(nodes) + 1
	for changed, iter := true, 0; changed; iter++ {
		if iter > limit*len(deps)+1 {
			return nil, 0, fmt.Errorf("datalog: program is not stratified (recursion through negation involving %s)", cycleHint(deps, strata))
		}
		changed = false
		for _, d := range deps {
			want := strata[d.body]
			if d.negative {
				want++
			}
			if strata[d.head] < want {
				strata[d.head] = want
				if strata[d.head] > limit {
					return nil, 0, fmt.Errorf("datalog: program is not stratified (recursion through negation involving %q)", d.head)
				}
				changed = true
			}
		}
	}
	max := 0
	for _, s := range strata {
		if s > max {
			max = s
		}
	}
	return strata, max, nil
}

func cycleHint(deps []stratumDep, strata map[string]int) string {
	var preds []string
	seen := map[string]bool{}
	for _, d := range deps {
		if d.negative && !seen[d.head] {
			seen[d.head] = true
			preds = append(preds, fmt.Sprintf("%q", d.head))
		}
	}
	return strings.Join(preds, ", ")
}
