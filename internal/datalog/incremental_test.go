package datalog

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"videodb/internal/object"
	"videodb/internal/store"
)

// closureProgram is the transitive-closure program used throughout the
// incremental tests: reach is recursive, hop2 a non-recursive join.
func closureProgram() Program {
	return NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("edge", Var("Y"), Var("Z"))),
		NewRule(Rel("hop2", Var("X"), Var("Z")),
			Rel("edge", Var("X"), Var("Y")), Rel("edge", Var("Y"), Var("Z"))),
	)
}

func edgeFact(a, b string) store.Fact {
	return store.NewFact("edge", object.Str(a), object.Str(b))
}

// runFull evaluates the program from scratch on the store's current
// contents and returns the engine.
func runFull(t *testing.T, s *store.Store, p Program, opts ...Option) *Engine {
	t.Helper()
	e := mustEngine(t, s, p, opts...)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

// assertSameRows compares every IDB predicate of two engines.
func assertSameRows(t *testing.T, p Program, got, want *Engine, label string) {
	t.Helper()
	for _, pred := range p.IDB() {
		g, err1 := got.Rows(pred)
		w, err2 := want.Rows(pred)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", label, err1, err2)
		}
		gk := make([]string, len(g))
		wk := make([]string, len(w))
		for i, r := range g {
			gk[i] = rowKey(r)
		}
		for i, r := range w {
			wk[i] = rowKey(r)
		}
		sort.Strings(gk)
		sort.Strings(wk)
		if len(gk) != len(wk) {
			t.Fatalf("%s: %s has %d tuples, want %d\ngot  %v\nwant %v",
				label, pred, len(gk), len(wk), gk, wk)
		}
		for i := range gk {
			if gk[i] != wk[i] {
				t.Fatalf("%s: %s row %d: got %q want %q", label, pred, i, gk[i], wk[i])
			}
		}
	}
}

func TestIncrementalInsertPropagates(t *testing.T) {
	s := store.New()
	s.AddFact(edgeFact("a", "b"))
	s.AddFact(edgeFact("b", "c"))
	p := closureProgram()

	prior := runFull(t, s, p).Extensions()

	// Insert an edge that extends every chain: d closes c→d and opens
	// transitive reach from a, b, c.
	s.AddFact(edgeFact("c", "d"))
	ins := FactDelta{"edge": {{object.Str("c"), object.Str("d")}}}

	inc := mustEngine(t, s, p)
	if err := inc.RunIncremental(prior, ins, nil); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, p, inc, runFull(t, s, p), "insert")

	rows, err := inc.Rows("reach")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // ab ac ad bc bd cd
		t.Fatalf("reach has %d tuples, want 6", len(rows))
	}
}

func TestIncrementalDeleteRederivesDiamond(t *testing.T) {
	// Diamond a→b→d, a→c→d: deleting b→d over-deletes reach(a,d) and
	// reach(b,d), but reach(a,d) must be rederived through c.
	s := store.New()
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		s.AddFact(edgeFact(e[0], e[1]))
	}
	p := closureProgram()
	prior := runFull(t, s, p).Extensions()

	if !s.DeleteFact(edgeFact("b", "d")) {
		t.Fatal("delete failed")
	}
	del := FactDelta{"edge": {{object.Str("b"), object.Str("d")}}}

	inc := mustEngine(t, s, p)
	if err := inc.RunIncremental(prior, nil, del); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, p, inc, runFull(t, s, p), "diamond delete")

	res, err := inc.Query(Rel("reach", Const(object.Str("a")), Const(object.Str("d"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("reach(a,d) lost despite alternative derivation through c")
	}
	res, err = inc.Query(Rel("reach", Const(object.Str("b")), Const(object.Str("d"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("reach(b,d) survived though its only derivation was deleted")
	}
}

func TestIncrementalDeleteCascades(t *testing.T) {
	// Chain a→b→c→d: deleting a→b must cascade away reach(a,*).
	s := store.New()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		s.AddFact(edgeFact(e[0], e[1]))
	}
	p := closureProgram()
	prior := runFull(t, s, p).Extensions()

	s.DeleteFact(edgeFact("a", "b"))
	del := FactDelta{"edge": {{object.Str("a"), object.Str("b")}}}

	inc := mustEngine(t, s, p)
	if err := inc.RunIncremental(prior, nil, del); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, p, inc, runFull(t, s, p), "cascade delete")

	rows, err := inc.Rows("reach")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].String() == object.Str("a").String() {
			t.Fatalf("reach(a,%s) survived the cascade", r[1])
		}
	}
}

func TestIncrementalMixedBatch(t *testing.T) {
	// A batch with both kinds: delete b→c, insert b→e and e→c. The
	// closure is the same set of sources but rerouted through e.
	s := store.New()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		s.AddFact(edgeFact(e[0], e[1]))
	}
	p := closureProgram()
	prior := runFull(t, s, p).Extensions()

	s.DeleteFact(edgeFact("b", "c"))
	s.AddFact(edgeFact("b", "e"))
	s.AddFact(edgeFact("e", "c"))
	ins := FactDelta{"edge": {{object.Str("b"), object.Str("e")}, {object.Str("e"), object.Str("c")}}}
	del := FactDelta{"edge": {{object.Str("b"), object.Str("c")}}}

	inc := mustEngine(t, s, p)
	if err := inc.RunIncremental(prior, ins, del); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, p, inc, runFull(t, s, p), "mixed batch")
}

// TestIncrementalRandomOracle is the differential oracle at the datalog
// layer: on random graphs and random mutation batches, incremental
// maintenance must agree with from-scratch evaluation — serially and
// under parallel workers.
func TestIncrementalRandomOracle(t *testing.T) {
	p := closureProgram()
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := store.New()
		nodes := make([]string, 4+r.Intn(5))
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%d", i)
		}
		present := make(map[[2]string]bool)
		addRandom := func() ([2]string, bool) {
			e := [2]string{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
			if present[e] {
				return e, false
			}
			s.AddFact(edgeFact(e[0], e[1]))
			present[e] = true
			return e, true
		}
		for i := 0; i < 8+r.Intn(8); i++ {
			addRandom()
		}

		prior := runFull(t, s, p).Extensions()
		before := make(map[[2]string]bool, len(present))
		for e := range present {
			before[e] = true
		}

		// Random mutations: each either inserts a missing edge or deletes
		// a present one. The same edge may flip twice (add then delete or
		// vice versa) — the net delta below must cancel those out, which
		// is exactly the contract FactDelta states.
		for i := 0; i < 1+r.Intn(6); i++ {
			if r.Intn(2) == 0 || len(present) == 0 {
				addRandom()
				continue
			}
			var keys [][2]string
			for e := range present {
				keys = append(keys, e)
			}
			sort.Slice(keys, func(i, j int) bool {
				return keys[i][0]+keys[i][1] < keys[j][0]+keys[j][1]
			})
			e := keys[r.Intn(len(keys))]
			s.DeleteFact(edgeFact(e[0], e[1]))
			delete(present, e)
		}

		// Net delta = symmetric difference of the before/after edge sets.
		ins := FactDelta{}
		del := FactDelta{}
		for e := range present {
			if !before[e] {
				ins["edge"] = append(ins["edge"], []object.Value{object.Str(e[0]), object.Str(e[1])})
			}
		}
		for e := range before {
			if !present[e] {
				del["edge"] = append(del["edge"], []object.Value{object.Str(e[0]), object.Str(e[1])})
			}
		}

		want := runFull(t, s, p)
		for _, opts := range [][]Option{nil, {Parallel(4)}} {
			inc := mustEngine(t, s, p, opts...)
			if err := inc.RunIncremental(prior, ins, del); err != nil {
				t.Fatalf("seed %d (opts %v): %v", seed, opts, err)
			}
			assertSameRows(t, p, inc, want, fmt.Sprintf("seed %d opts %v", seed, opts))
		}
	}
}

func TestRunIncrementalGuards(t *testing.T) {
	s := store.New()
	s.AddFact(edgeFact("a", "b"))
	p := closureProgram()

	// Second evaluation on the same engine is an error.
	e := runFull(t, s, p)
	if err := e.RunIncremental(e.Extensions(), nil, nil); err == nil {
		t.Fatal("RunIncremental after Run should fail")
	}

	// Negation and constructive heads are outside the fragment.
	neg := NewProgram(
		NewRule(Rel("lonely", Var("X")), Rel("edge", Var("X"), Var("Y")),
			Not(Rel("edge", Var("Y"), Var("X")))),
	)
	if neg.SupportsIncremental() {
		t.Fatal("negation reported as incrementally maintainable")
	}
	ne := mustEngine(t, s, neg)
	if err := ne.RunIncremental(Extension{}, nil, nil); err == nil {
		t.Fatal("RunIncremental accepted a program with negation")
	}

	// Cancellation surfaces as ErrCanceled and poisons only this engine.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ce := mustEngine(t, s, p, WithContext(ctx))
	err := ce.RunIncremental(Extension{}, nil, nil)
	if !IsCanceled(err) {
		t.Fatalf("want cancellation error, got %v", err)
	}
}

func TestIncrementalQueryServesMaintainedExtension(t *testing.T) {
	// After RunIncremental, Query and Rows must serve the maintained
	// state exactly like a normal run's.
	s := store.New()
	s.AddFact(edgeFact("a", "b"))
	p := closureProgram()
	prior := runFull(t, s, p).Extensions()

	s.AddFact(edgeFact("b", "c"))
	inc := mustEngine(t, s, p)
	if err := inc.RunIncremental(prior, FactDelta{"edge": {{object.Str("b"), object.Str("c")}}}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := inc.Query(Rel("reach", Const(object.Str("a")), Var("Y")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("reach(a,Y) returned %d rows, want 2", len(res))
	}
}
