package datalog

import (
	"fmt"
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// ropeStore builds the worked example of Section 5.2: the movie "The
// Rope" with generalized intervals gi1 (the murder) and gi2 (the party),
// semantic objects o1…o9, and the in(o1, o4, gi) facts.
func ropeStore(t testing.TB) *store.Store {
	t.Helper()
	s := store.New()
	put := func(o *object.Object) {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	put(object.NewInterval("gi1", interval.New(interval.Open(0, 30))).
		Set(object.AttrEntities, object.RefSet("o1", "o2", "o3", "o4")).
		Set("subject", object.Str("murder")).
		Set("victim", object.Ref("o1")).
		Set("murderer", object.RefSet("o2", "o3")))
	put(object.NewInterval("gi2", interval.New(interval.Open(40, 80))).
		Set(object.AttrEntities, object.RefSet("o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9")).
		Set("subject", object.Str("Giving a party")).
		Set("host", object.RefSet("o2", "o3")).
		Set("guest", object.RefSet("o5", "o6", "o7", "o8", "o9")))
	put(object.NewEntity("o1").Set("name", object.Str("David")).Set("role", object.Str("Victim")))
	put(object.NewEntity("o2").Set("name", object.Str("Philip")).
		Set("realname", object.Str("Farley Granger")).Set("role", object.Str("Murderer")))
	put(object.NewEntity("o3").Set("name", object.Str("Brandon")).
		Set("realname", object.Str("John Dall")).Set("role", object.Str("Murderer")))
	put(object.NewEntity("o4").Set("identification", object.Str("Chest")))
	put(object.NewEntity("o5").Set("name", object.Str("Janet")).
		Set("realname", object.Str("Joan Chandler")))
	put(object.NewEntity("o6").Set("name", object.Str("Kenneth")).
		Set("realname", object.Str("Douglas Dick")))
	put(object.NewEntity("o7").Set("name", object.Str("Mr.Kentley")).
		Set("realname", object.Str("Cedric Hardwicke")))
	put(object.NewEntity("o8").Set("name", object.Str("Mrs.Atwater")).
		Set("realname", object.Str("Constance Collier")))
	put(object.NewEntity("o9").Set("name", object.Str("Rupert Cadell")).
		Set("realname", object.Str("James Stewart")))
	s.AddFact(store.RefFact("in", "o1", "o4", "gi1"))
	s.AddFact(store.RefFact("in", "o1", "o4", "gi2"))
	return s
}

func mustEngine(t testing.TB, s *store.Store, p Program, opts ...Option) *Engine {
	t.Helper()
	e, err := NewEngine(s, p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func oidResults(t testing.TB, e *Engine, q RelAtom) []object.OID {
	t.Helper()
	oids, err := e.QueryOIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	return oids
}

func wantOIDs(t *testing.T, got []object.OID, want ...object.OID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestRopeExampleQueries reproduces the six example queries of Section
// 6.1 against the Rope database (experiment E4).
func TestRopeExampleQueries(t *testing.T) {
	s := ropeStore(t)

	t.Run("q1 objects in a given sequence", func(t *testing.T) {
		// q(O) :- Interval(gi1), Object(O), O in gi1.entities
		p := NewProgram(NewRule(
			Rel("q", Var("O")),
			Interval(Oid("gi1")),
			ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Oid("gi1"), "entities")),
		))
		e := mustEngine(t, s, p)
		wantOIDs(t, oidResults(t, e, Rel("q", Var("O"))), "o1", "o2", "o3", "o4")
	})

	t.Run("q2 intervals where object appears", func(t *testing.T) {
		// q(G) :- Interval(G), Object(o1), o1 in G.entities
		p := NewProgram(NewRule(
			Rel("q", Var("G")),
			Interval(Var("G")),
			ObjectAtom(Oid("o1")),
			Member(TermOp(Oid("o1")), AttrOp(Var("G"), "entities")),
		))
		e := mustEngine(t, s, p)
		wantOIDs(t, oidResults(t, e, Rel("q", Var("G"))), "gi1", "gi2")
	})

	t.Run("q3 object within temporal frame", func(t *testing.T) {
		// q(o1) :- Interval(G), Object(o1), o1 in G.entities,
		//          G.duration => (t > -5 and t < 35)
		frame := object.Temporal(interval.New(interval.Open(-5, 35)))
		p := NewProgram(NewRule(
			Rel("q", Oid("o1")),
			Interval(Var("G")),
			ObjectAtom(Oid("o1")),
			Member(TermOp(Oid("o1")), AttrOp(Var("G"), "entities")),
			Entails(AttrOp(Var("G"), "duration"), TermOp(Const(frame))),
		))
		e := mustEngine(t, s, p)
		ok, err := e.Ask(Rel("q", Oid("o1")))
		if err != nil || !ok {
			t.Errorf("o1 should appear in frame (-5,35): %v %v", ok, err)
		}
		// A frame covering neither interval completely.
		frame2 := object.Temporal(interval.New(interval.Open(10, 20)))
		p2 := NewProgram(NewRule(
			Rel("q", Oid("o1")),
			Interval(Var("G")),
			Member(TermOp(Oid("o1")), AttrOp(Var("G"), "entities")),
			Entails(AttrOp(Var("G"), "duration"), TermOp(Const(frame2))),
		))
		e2 := mustEngine(t, s, p2)
		ok, err = e2.Ask(Rel("q", Oid("o1")))
		if err != nil || ok {
			t.Errorf("no interval fits inside (10,20): %v %v", ok, err)
		}
	})

	t.Run("q4 two objects together", func(t *testing.T) {
		// Both formulations of the paper: two membership atoms, and a
		// set-inclusion atom; they must agree.
		p1 := NewProgram(NewRule(
			Rel("q", Var("G")),
			Interval(Var("G")),
			Member(TermOp(Oid("o1")), AttrOp(Var("G"), "entities")),
			Member(TermOp(Oid("o5")), AttrOp(Var("G"), "entities")),
		))
		p2 := NewProgram(NewRule(
			Rel("q", Var("G")),
			Interval(Var("G")),
			SubsetAtom(AttrOp(Var("G"), "entities"), TermOp(Oid("o1")), TermOp(Oid("o5"))),
		))
		e1 := mustEngine(t, s, p1)
		e2 := mustEngine(t, s, p2)
		wantOIDs(t, oidResults(t, e1, Rel("q", Var("G"))), "gi2")
		wantOIDs(t, oidResults(t, e2, Rel("q", Var("G"))), "gi2")
	})

	t.Run("q5 pairs in relation within interval", func(t *testing.T) {
		// q(O1,O2,G) :- Interval(G), Object(O1), Object(O2),
		//               O1 in G.entities, O2 in G.entities, in(O1,O2,G)
		p := NewProgram(NewRule(
			Rel("q", Var("O1"), Var("O2"), Var("G")),
			Interval(Var("G")),
			ObjectAtom(Var("O1")),
			ObjectAtom(Var("O2")),
			Member(TermOp(Var("O1")), AttrOp(Var("G"), "entities")),
			Member(TermOp(Var("O2")), AttrOp(Var("G"), "entities")),
			Rel("in", Var("O1"), Var("O2"), Var("G")),
		))
		e := mustEngine(t, s, p)
		res, err := e.Query(Rel("q", Var("O1"), Var("O2"), Var("G")))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("results = %v", res)
		}
		if res[0].String() != "o1\x1fo4\x1fgi1" || res[1].String() != "o1\x1fo4\x1fgi2" {
			t.Errorf("results = %v", res)
		}
	})

	t.Run("q6 interval containing object with attribute value", func(t *testing.T) {
		// q(G) :- Interval(G), Object(O), O in G.entities, O.name = "David"
		p := NewProgram(NewRule(
			Rel("q", Var("G")),
			Interval(Var("G")),
			ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G"), "entities")),
			Cmp(AttrOp(Var("O"), "name"), constraint.Eq, TermOp(Const(object.Str("David")))),
		))
		e := mustEngine(t, s, p)
		wantOIDs(t, oidResults(t, e, Rel("q", Var("G"))), "gi1", "gi2")
	})
}

// TestRopeDerivedRelations reproduces the rules of Section 6.2.
func TestRopeDerivedRelations(t *testing.T) {
	s := ropeStore(t)
	// Add a third interval nested inside gi1's period.
	if err := s.Put(object.NewInterval("gi3", interval.New(interval.Open(5, 25))).
		Set(object.AttrEntities, object.RefSet("o2", "o3"))); err != nil {
		t.Fatal(err)
	}

	t.Run("contains", func(t *testing.T) {
		// contains(G1,G2) :- Interval(G1), Interval(G2),
		//                    G2.duration => G1.duration
		p := NewProgram(NewRule(
			Rel("contains", Var("G1"), Var("G2")),
			Interval(Var("G1")),
			Interval(Var("G2")),
			Entails(AttrOp(Var("G2"), "duration"), AttrOp(Var("G1"), "duration")),
		))
		e := mustEngine(t, s, p)
		rows, err := e.Rows("contains")
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, r := range rows {
			got[rowKey(r)] = true
		}
		want := []string{
			"gi1\x1fgi1", "gi2\x1fgi2", "gi3\x1fgi3", // reflexive
			"gi1\x1fgi3", // (5,25) inside (0,30)
		}
		if len(got) != len(want) {
			t.Fatalf("contains = %v", rows)
		}
		for _, w := range want {
			if !got[w] {
				t.Errorf("missing %q in %v", w, rows)
			}
		}
	})

	t.Run("same-object-in", func(t *testing.T) {
		p := NewProgram(NewRule(
			Rel("same_object_in", Var("G1"), Var("G2"), Var("O")),
			Interval(Var("G1")),
			Interval(Var("G2")),
			ObjectAtom(Var("O")),
			Member(TermOp(Var("O")), AttrOp(Var("G1"), "entities")),
			Member(TermOp(Var("O")), AttrOp(Var("G2"), "entities")),
		))
		e := mustEngine(t, s, p)
		res, err := e.Query(Rel("same_object_in", Oid("gi1"), Oid("gi3"), Var("O")))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("results = %v", res)
		}
		wantOIDs(t, oidResults(t, e, Rel("same_object_in", Oid("gi1"), Oid("gi3"), Var("O"))), "o2", "o3")
	})
}

func TestRecursionTransitiveClosure(t *testing.T) {
	s := store.New()
	const n = 20
	for i := 0; i < n; i++ {
		s.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%02d", i)), object.Str(fmt.Sprintf("n%02d", i+1))))
	}
	p := NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))),
	)
	e := mustEngine(t, s, p)
	rows, err := e.Rows("reach")
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n + 1) / 2
	if len(rows) != want {
		t.Errorf("reach has %d tuples, want %d", len(rows), want)
	}
	st := e.Stats()
	if st.Rounds < n {
		t.Errorf("a length-%d chain needs at least %d rounds, got %d", n, n, st.Rounds)
	}
	// Ask a specific pair.
	ok, err := e.Ask(Rel("reach", Const(object.Str("n00")), Const(object.Str("n20"))))
	if err != nil || !ok {
		t.Errorf("n00 should reach n20: %v %v", ok, err)
	}
	ok, err = e.Ask(Rel("reach", Const(object.Str("n05")), Const(object.Str("n03"))))
	if err != nil || ok {
		t.Errorf("n05 should not reach n03: %v %v", ok, err)
	}
}

func TestAttributeComparisons(t *testing.T) {
	s := store.New()
	s.Put(object.NewEntity("a").Set("score", object.Num(10)).Set("name", object.Str("alpha")))
	s.Put(object.NewEntity("b").Set("score", object.Num(20)).Set("name", object.Str("beta")))
	s.Put(object.NewEntity("c").Set("score", object.Num(30)))

	// Numeric comparison between attributes of two objects.
	p := NewProgram(NewRule(
		Rel("lt", Var("X"), Var("Y")),
		ObjectAtom(Var("X")),
		ObjectAtom(Var("Y")),
		Cmp(AttrOp(Var("X"), "score"), constraint.Lt, AttrOp(Var("Y"), "score")),
	))
	e := mustEngine(t, s, p)
	res, err := e.Query(Rel("lt", Var("X"), Var("Y")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 { // (a,b), (a,c), (b,c)
		t.Errorf("lt = %v", res)
	}

	// Comparison against a constant; missing attribute never matches.
	p2 := NewProgram(NewRule(
		Rel("named", Var("X")),
		ObjectAtom(Var("X")),
		Cmp(AttrOp(Var("X"), "name"), constraint.Ge, TermOp(Const(object.Str("b")))),
	))
	e2 := mustEngine(t, s, p2)
	wantOIDs(t, oidResults(t, e2, Rel("named", Var("X"))), "b")

	// Ne with missing attribute: null != string holds.
	p3 := NewProgram(NewRule(
		Rel("anon", Var("X")),
		ObjectAtom(Var("X")),
		Cmp(AttrOp(Var("X"), "name"), constraint.Ne, TermOp(Const(object.Str("alpha")))),
	))
	e3 := mustEngine(t, s, p3)
	wantOIDs(t, oidResults(t, e3, Rel("anon", Var("X"))), "b", "c")
}

func TestQueryAPI(t *testing.T) {
	s := ropeStore(t)
	p := NewProgram(NewRule(
		Rel("q", Var("G"), Var("O")),
		Interval(Var("G")),
		ObjectAtom(Var("O")),
		Member(TermOp(Var("O")), AttrOp(Var("G"), "entities")),
	))
	e := mustEngine(t, s, p)

	// Repeated variables enforce equality: q(X, X) has no answers here.
	res, err := e.Query(Rel("q", Var("X"), Var("X")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("q(X,X) = %v", res)
	}

	// Ground query.
	ok, err := e.Ask(Rel("q", Oid("gi1"), Oid("o4")))
	if err != nil || !ok {
		t.Errorf("Ask ground = %v %v", ok, err)
	}
	ok, err = e.Ask(Rel("q", Oid("gi1"), Oid("o5")))
	if err != nil || ok {
		t.Errorf("Ask false ground = %v %v", ok, err)
	}

	// Unknown predicate: empty, no error (it is an empty EDB relation).
	res, err = e.Query(Rel("nosuch", Var("X")))
	if err != nil || len(res) != 0 {
		t.Errorf("unknown predicate = %v %v", res, err)
	}

	// Constructive term in query rejected.
	if _, err := e.Query(Rel("q", Concat(Var("A"), Var("B")), Var("O"))); err == nil {
		t.Error("constructive query should be rejected")
	}

	// QueryOIDs shape errors.
	if _, err := e.QueryOIDs(Rel("q", Var("G"), Var("O"))); err == nil {
		t.Error("QueryOIDs with two variables should fail")
	}

	// EDB facts of an IDB predicate are part of the answers.
	p2 := NewProgram(NewRule(
		Rel("in", Var("O"), Oid("o4"), Oid("gi1")),
		Rel("in", Var("O"), Oid("o4"), Oid("gi2")),
	))
	e2 := mustEngine(t, s, p2)
	rows, err := e2.Rows("in")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // o1 already in gi1; derived tuple is a duplicate
		t.Errorf("in rows = %v", rows)
	}
}

func TestEngineUnsafeFilterPlan(t *testing.T) {
	// Filters whose variables are never bound are rejected at validation.
	p := NewProgram(NewRule(
		Rel("q", Oid("x")),
		Cmp(TermOp(Var("A")), constraint.Lt, TermOp(Const(object.Num(3)))),
	))
	if _, err := NewEngine(store.New(), p); err == nil {
		t.Error("expected validation error")
	}
}

func TestEngineArityMismatchTolerated(t *testing.T) {
	s := store.New()
	s.AddFact(store.NewFact("r", object.Num(1)))
	s.AddFact(store.NewFact("r", object.Num(1), object.Num(2)))
	p := NewProgram(NewRule(Rel("q", Var("X")), Rel("r", Var("X"))))
	e := mustEngine(t, s, p)
	res, err := e.Query(Rel("q", Var("X")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("only the unary fact should match: %v", res)
	}
}

func TestMemberIndexOnOff(t *testing.T) {
	// The inverted-index plan and the scan plan must return identical
	// answers.
	s := ropeStore(t)
	p := NewProgram(NewRule(
		Rel("q", Var("G")),
		Interval(Var("G")),
		Member(TermOp(Oid("o5")), AttrOp(Var("G"), "entities")),
	))
	e1 := mustEngine(t, s, p)
	e2 := mustEngine(t, s, p, WithoutMemberIndex())
	wantOIDs(t, oidResults(t, e1, Rel("q", Var("G"))), "gi2")
	wantOIDs(t, oidResults(t, e2, Rel("q", Var("G"))), "gi2")
}

func TestEngineStats(t *testing.T) {
	s := ropeStore(t)
	p := NewProgram(NewRule(
		Rel("q", Var("G")),
		Interval(Var("G")),
	))
	e := mustEngine(t, s, p)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Derived != 2 || st.Created != 0 || st.Rounds < 1 {
		t.Errorf("stats = %+v", st)
	}
	// Run is idempotent.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Stats() != st {
		t.Error("second Run should be a no-op")
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	s := store.New()
	for i := 0; i < 5; i++ {
		s.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%d", i)), object.Str(fmt.Sprintf("n%d", i+1))))
	}
	p := NewProgram(
		NewRule(Rel("reach", Var("X"), Var("Y")), Rel("next", Var("X"), Var("Y"))),
		NewRule(Rel("reach", Var("X"), Var("Z")),
			Rel("reach", Var("X"), Var("Y")), Rel("next", Var("Y"), Var("Z"))),
	)
	e := mustEngine(t, s, p, MaxRounds(2))
	if err := e.Run(); err == nil {
		t.Error("MaxRounds(2) should trip on a 5-step chain")
	}
	// Generous bound converges normally.
	e2 := mustEngine(t, s, p, MaxRounds(100))
	if err := e2.Run(); err != nil {
		t.Errorf("generous MaxRounds failed: %v", err)
	}
}
