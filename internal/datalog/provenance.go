package datalog

import (
	"fmt"
	"strings"

	"videodb/internal/object"
)

// Provenance tracing: with TraceProvenance enabled, the engine records,
// for every derived tuple, the first rule instantiation that produced it.
// Why renders the resulting derivation tree — the answer to "why is this
// tuple in the fixpoint?".

// TraceProvenance makes the engine record one derivation per derived
// tuple (modest overhead; off by default).
func TraceProvenance() Option { return func(e *Engine) { e.trace = true } }

// PremiseFact is one relational premise of a derivation.
type PremiseFact struct {
	Pred string
	Args []object.Value
}

// String renders the premise in fact notation.
func (p PremiseFact) String() string {
	parts := make([]string, len(p.Args))
	for i, v := range p.Args {
		parts[i] = v.String()
	}
	return p.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Derivation explains one derived tuple: the rule that fired, the
// relational premises it consumed, and the side conditions (class,
// constraint and negated atoms) that held.
type Derivation struct {
	Rule       string
	Premises   []PremiseFact
	Conditions []string
}

func provKey(pred string, args []object.Value) string {
	return pred + "\x00" + rowKey(args)
}

// recordProvenance captures the instantiated body of a successful rule
// firing. All rule variables are bound at this point.
func (e *Engine) recordProvenance(r Rule, b bindings, pred string, tuple row) {
	key := provKey(pred, tuple)
	if _, ok := e.prov[key]; ok {
		return
	}
	d := &Derivation{Rule: r.String()}
	if r.Name != "" {
		d.Rule = r.Name
	}
	for _, l := range r.Body {
		switch a := l.(type) {
		case RelAtom:
			args := make([]object.Value, len(a.Args))
			for i, t := range a.Args {
				v, ok := termValue(t, b)
				if !ok {
					v = object.Null()
				}
				args[i] = v
			}
			d.Premises = append(d.Premises, PremiseFact{Pred: a.Pred, Args: args})
		default:
			d.Conditions = append(d.Conditions, substitute(l, b))
		}
	}
	e.prov[key] = d
}

// substitute renders a literal with bound variables replaced by their
// values.
func substitute(l Literal, b bindings) string {
	s := l.String()
	// Longest names first so X1 is not clobbered by X.
	names := make([]string, 0, len(b))
	for v := range b {
		names = append(names, v)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if len(names[j]) > len(names[i]) {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, v := range names {
		s = replaceIdent(s, v, b[v].String())
	}
	return s
}

// replaceIdent replaces whole-word occurrences of name in s.
func replaceIdent(s, name, with string) string {
	var out strings.Builder
	for i := 0; i < len(s); {
		j := strings.Index(s[i:], name)
		if j < 0 {
			out.WriteString(s[i:])
			break
		}
		j += i
		end := j + len(name)
		beforeOK := j == 0 || !isWordByte(s[j-1])
		afterOK := end == len(s) || !isWordByte(s[end])
		out.WriteString(s[i:j])
		if beforeOK && afterOK {
			out.WriteString(with)
		} else {
			out.WriteString(name)
		}
		i = end
	}
	return out.String()
}

func isWordByte(c byte) bool {
	return c == '_' || ('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

// DerivationOf returns the recorded derivation of the tuple, or nil if
// the tuple is an extensional fact or unknown. Run must have completed
// with TraceProvenance enabled.
func (e *Engine) DerivationOf(pred string, args ...object.Value) *Derivation {
	if e.prov == nil {
		return nil
	}
	return e.prov[provKey(pred, args)]
}

// Why renders the derivation tree of the tuple. Extensional facts render
// as leaves; tuples never derived render as "unknown".
func (e *Engine) Why(pred string, args ...object.Value) (string, error) {
	if !e.trace {
		return "", fmt.Errorf("datalog: Why requires TraceProvenance()")
	}
	if err := e.Run(); err != nil {
		return "", err
	}
	var b strings.Builder
	e.why(&b, PremiseFact{Pred: pred, Args: args}, 0, map[string]bool{})
	return b.String(), nil
}

func (e *Engine) why(b *strings.Builder, f PremiseFact, depth int, onPath map[string]bool) {
	indent := strings.Repeat("  ", depth)
	key := provKey(f.Pred, f.Args)
	d := e.prov[key]
	switch {
	case onPath[key]:
		fmt.Fprintf(b, "%s%s  (see above)\n", indent, f)
		return
	case d == nil && e.hasTuple(f.Pred, row(f.Args)):
		fmt.Fprintf(b, "%s%s  [fact]\n", indent, f)
		return
	case d == nil:
		fmt.Fprintf(b, "%s%s  [unknown]\n", indent, f)
		return
	}
	fmt.Fprintf(b, "%s%s  [by %s]\n", indent, f, d.Rule)
	for _, c := range d.Conditions {
		fmt.Fprintf(b, "%s  | %s\n", indent, c)
	}
	onPath[key] = true
	for _, p := range d.Premises {
		e.why(b, p, depth+1, onPath)
	}
	delete(onPath, key)
}
