package analyze

import (
	"fmt"

	"videodb/internal/datalog"
)

// windowPred is the reserved sliding-window predicate, mirrored from
// core.WindowPred (analyze cannot import core — core imports analyze).
// core.SubscribeQuery strips window(F, N) atoms from the goal and turns
// them into delivery filters; the one-shot query path knows nothing
// about them, so a windowed goal sent to /v1/query either fails as an
// undefined predicate or — when someone defines a `window` relation —
// silently changes meaning.
const windowPred = "window"

// runWindowPass flags window(F, N) atoms in the script under analysis:
// in goal atoms and in the script's own rule bodies (which includes the
// helper rule a conjunctive query synthesizes). The fix is almost always
// to make the query a standing one.
func runWindowPass(c *context) {
	report := func(pos datalog.Pos, rule string) {
		c.report(Diagnostic{
			Severity:   SeverityWarn,
			Code:       CodeWindowMisuse,
			Pos:        pos,
			Rule:       rule,
			Message:    fmt.Sprintf("%s(F, N) is a subscription delivery filter and has no effect in a one-shot query", windowPred),
			Suggestion: "did you mean a standing query? /v1/subscribe evaluates windowed goals",
		})
	}
	for i, r := range c.prog.Rules {
		if !c.fromScript(i) {
			continue
		}
		for _, l := range r.Body {
			switch a := l.(type) {
			case datalog.RelAtom:
				if a.Pred == windowPred {
					report(a.Pos, ruleLabel(r))
				}
			case datalog.NotAtom:
				if a.Atom.Pred == windowPred {
					report(datalog.PosOf(l), ruleLabel(r))
				}
			}
		}
	}
	for _, g := range c.opts.Goals {
		if g.Pred == windowPred {
			report(g.Pos, "goal")
		}
	}
}
