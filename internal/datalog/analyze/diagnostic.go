// Package analyze is a pass-based static analyzer for VideoQL rule
// programs. It takes a parsed datalog.Program plus the query goals and an
// optional store schema snapshot, and reports structured diagnostics:
// typo'd predicates with did-you-mean suggestions, arity clashes, rules
// whose constraint bodies the internal/constraint solvers prove
// unsatisfiable (the rule can never fire), rules unreachable from every
// goal, and performance lints (cartesian products, singleton variables).
//
// The analyzer never mutates the program and never evaluates it; the only
// non-syntactic machinery it uses is the dense-order and set-order
// constraint solvers, run under a step budget so analysis time stays
// bounded on adversarial inputs.
package analyze

import (
	"fmt"
	"sort"

	"videodb/internal/datalog"
)

// Severity classifies a diagnostic. Errors mean the query is wrong (it
// cannot produce what the author intended); warnings flag likely
// mistakes; infos are advisory.
type Severity string

// The severity levels, ordered error > warning > info.
const (
	SeverityError Severity = "error"
	SeverityWarn  Severity = "warning"
	SeverityInfo  Severity = "info"
)

func (s Severity) rank() int {
	switch s {
	case SeverityError:
		return 0
	case SeverityWarn:
		return 1
	default:
		return 2
	}
}

// Diagnostic codes. Each analyzer finding carries one; the table is part
// of the public interface (DESIGN.md §5e) and codes are never reused.
const (
	CodeParseError    = "VQL0001" // script failed to parse (CLI/server surface only)
	CodeUndefinedPred = "VQL0002" // body predicate with no rule and no facts
	CodeDeadRule      = "VQL0003" // constraint body unsatisfiable: rule can never fire
	CodeRedundant     = "VQL0004" // constraint atom entailed by the rest of the body
	CodeArityMismatch = "VQL0005" // predicate used with differing arities
	CodeUnreachable   = "VQL0006" // rule on no dependency path to any goal
	CodeCartesian     = "VQL0007" // body literals with no shared variables
	CodeSingletonVar  = "VQL0008" // variable used exactly once
	CodeBudget        = "VQL0009" // solver budget exhausted: analysis incomplete
	CodeWindowMisuse  = "VQL0010" // window(F, N) in a one-shot query: subscription-only
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Severity   Severity    `json:"severity"`
	Code       string      `json:"code"`
	Pos        datalog.Pos `json:"pos,omitzero"`
	Rule       string      `json:"rule,omitempty"` // rule label or head predicate, when rule-scoped
	Message    string      `json:"message"`
	Suggestion string      `json:"suggestion,omitempty"`
}

// String renders the diagnostic in the conventional compiler format:
// "line:col: severity[CODE]: message (suggestion)".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Message)
	if d.Suggestion != "" {
		s += " (" + d.Suggestion + ")"
	}
	return s
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// sortDiagnostics orders findings by source position, then severity,
// then code, then message — a stable order for golden tests and users.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity.rank() < b.Severity.rank()
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}
