package analyze

import (
	"fmt"

	"videodb/internal/datalog"
)

// Perf lints: joins that degenerate to cartesian products, and variables
// used exactly once. Neither is wrong — both are the shape of queries
// that blow up the fixpoint or silently match more than intended.

// varOccurrences appends every variable occurrence of the literal, with
// multiplicity (p(X, X) contributes X twice).
func varOccurrences(l datalog.Literal, dst []string) []string {
	addTerm := func(t datalog.Term) {
		if t.IsVar() {
			dst = append(dst, t.Name())
		}
	}
	addOp := func(o datalog.Operand) { addTerm(o.Term) }
	switch a := l.(type) {
	case datalog.RelAtom:
		for _, t := range a.Args {
			addTerm(t)
		}
	case datalog.ClassAtom:
		addTerm(a.Arg)
	case datalog.CmpAtom:
		addOp(a.Left)
		addOp(a.Right)
	case datalog.MemberAtom:
		for _, e := range a.Elems {
			addOp(e)
		}
		addOp(a.Set)
	case datalog.EntailAtom:
		addOp(a.Left)
		addOp(a.Right)
	case datalog.TemporalAtom:
		addOp(a.Left)
		addOp(a.Right)
	case datalog.NotAtom:
		for _, t := range a.Atom.Args {
			addTerm(t)
		}
	}
	return dst
}

func runPerfPass(c *context) {
	for i, r := range c.prog.Rules {
		if !c.fromScript(i) {
			continue
		}
		cartesianLint(c, r)
		singletonLint(c, r)
	}
}

// cartesianLint warns when a rule's body splits into variable-disjoint
// groups that each bind tuples: the engine must enumerate their full
// cross product. Constraint atoms connect groups (X < Y joins the groups
// of X and Y); ground atoms are cheap existence checks and don't count.
func cartesianLint(c *context, r datalog.Rule) {
	comp := map[string]int{} // variable -> component id
	// binder remembers, per component, the first binding literal in it.
	binder := map[int]datalog.Literal{}
	binders := 0
	next := 0
	var order []int
	merge := func(a, b int) int {
		if a == b {
			return a
		}
		if _, ok := binder[b]; ok {
			if _, have := binder[a]; !have {
				binder[a] = binder[b]
			}
		}
		delete(binder, b)
		for v, id := range comp {
			if id == b {
				comp[v] = a
			}
		}
		for i, id := range order {
			if id == b {
				order[i] = a
			}
		}
		return a
	}
	for _, l := range r.Body {
		vars := varOccurrences(l, nil)
		if len(vars) == 0 {
			continue
		}
		id := -1
		for _, v := range vars {
			if got, ok := comp[v]; ok {
				if id == -1 {
					id = got
				} else {
					id = merge(id, got)
				}
			}
		}
		if id == -1 {
			id = next
			next++
			order = append(order, id)
		}
		for _, v := range vars {
			comp[v] = id
		}
		if _, isRel := l.(datalog.RelAtom); isRel {
			if _, ok := binder[id]; !ok {
				binder[id] = l
			}
		} else if _, isClass := l.(datalog.ClassAtom); isClass {
			if _, ok := binder[id]; !ok {
				binder[id] = l
			}
		}
	}
	// Count distinct live components that contain a binding literal.
	seen := map[int]bool{}
	var parts []datalog.Literal
	for _, id := range order {
		if seen[id] {
			continue
		}
		seen[id] = true
		if b, ok := binder[id]; ok {
			parts = append(parts, b)
			binders++
		}
	}
	if binders < 2 {
		return
	}
	c.report(Diagnostic{
		Severity: SeverityWarn,
		Code:     CodeCartesian,
		Pos:      datalog.PosOf(parts[1]),
		Rule:     ruleLabel(r),
		Message: fmt.Sprintf("literals %q and %q share no variables: the rule joins them as a cartesian product",
			parts[0].String(), parts[1].String()),
	})
}

// singletonLint reports variables used exactly once in the whole rule
// (head and body, counting repeats). A singleton matches everything and
// joins nothing — often a typo for another variable.
func singletonLint(c *context, r datalog.Rule) {
	count := map[string]int{}
	where := map[string]datalog.Pos{}
	var order []string
	note := func(vars []string, pos datalog.Pos) {
		for _, v := range vars {
			if count[v] == 0 {
				order = append(order, v)
				where[v] = pos
			}
			count[v]++
		}
	}
	// Head variables, with multiplicity; VarsOf dedups, so walk args as
	// occurrences (concatenation operands are covered by VarsOf per arg).
	for _, t := range r.Head.Args {
		note(datalog.VarsOf(datalog.Rel("", t)), r.Head.Pos)
	}
	for _, l := range r.Body {
		note(varOccurrences(l, nil), datalog.PosOf(l))
	}
	for _, v := range order {
		if count[v] != 1 {
			continue
		}
		c.report(Diagnostic{
			Severity: SeverityInfo,
			Code:     CodeSingletonVar,
			Pos:      where[v],
			Rule:     ruleLabel(r),
			Message:  fmt.Sprintf("variable %q is used only once", v),
		})
	}
}
