package analyze

import (
	"errors"
	"fmt"
	"strings"

	"videodb/internal/constraint"
	"videodb/internal/datalog"
	"videodb/internal/object"
)

// The dead-rule pass proves rules unable to fire by conjoining the
// constraint atoms of each body and asking the internal/constraint
// solvers for satisfiability, under the shared step budget:
//
//   - comparison atoms lower to a dense-order conjunction (numeric
//     constants stay numeric; string and other constants become points
//     whose mutual order/distinctness is asserted from their actual
//     values, so "X = "a", X = "b"" or "X >= "b", X <= "a"" are caught);
//   - temporal entailments "L => g" with constant right sides group by
//     left operand and intersect as interval formulas;
//   - membership and set-equality atoms lower to a set-order conjunction
//     (e.g. G.entities = {o1} together with o2 in G.entities).
//
// An unsatisfiable family is a VQL0003 error. Atoms entailed by the rest
// of their family are VQL0004 infos (redundant). Constant-only atoms are
// decided directly with the engine's own comparison semantics. The
// lowering is conservative: atoms that do not fit a family are dropped,
// so "dead" findings are proofs, never guesses.

func runDeadRulePass(c *context) {
	for i := range c.prog.Rules {
		if c.budgetHit {
			return
		}
		if !c.fromScript(i) {
			continue
		}
		analyzeRuleConstraints(c, c.prog.Rules[i])
	}
}

// deadDiag builds the VQL0003 error for a rule.
func deadDiag(r datalog.Rule, pos datalog.Pos, why string) Diagnostic {
	if pos.IsZero() {
		pos = r.Pos
	}
	return Diagnostic{
		Severity: SeverityError,
		Code:     CodeDeadRule,
		Pos:      pos,
		Rule:     ruleLabel(r),
		Message:  fmt.Sprintf("rule %q can never fire: %s", ruleLabel(r), why),
	}
}

func redundantDiag(r datalog.Rule, pos datalog.Pos, atom fmt.Stringer) Diagnostic {
	return Diagnostic{
		Severity: SeverityInfo,
		Code:     CodeRedundant,
		Pos:      pos,
		Rule:     ruleLabel(r),
		Message:  fmt.Sprintf("constraint %q is implied by the rest of the rule body", atom.String()),
	}
}

func analyzeRuleConstraints(c *context, r datalog.Rule) {
	if dead := constantChecks(c, r); dead {
		return
	}
	if dead := denseFamily(c, r); dead || c.budgetHit {
		return
	}
	if dead := entailFamily(c, r); dead || c.budgetHit {
		return
	}
	setFamily(c, r)
}

// constOf returns the constant value of a plain (non-attribute,
// non-variable) operand.
func constOf(o datalog.Operand) (object.Value, bool) {
	if o.Attr != "" || o.Term.IsVar() || o.Term.IsConcat() {
		return object.Value{}, false
	}
	return o.Term.Value(), true
}

// isScalarKind reports whether ordered comparison is meaningful for the
// value under the engine's semantics (numbers and strings only; ordered
// comparison with any other constant kind is identically false).
func isScalarKind(v object.Value) bool {
	k := v.Kind()
	return k == object.KindNumber || k == object.KindString
}

// evalConstCmp decides a comparison between two constants exactly as the
// engine does.
func evalConstCmp(l object.Value, op constraint.Op, r object.Value) bool {
	switch op {
	case constraint.Eq:
		return l.Equal(r)
	case constraint.Ne:
		return !l.Equal(r)
	}
	if ln, ok := l.AsNumber(); ok {
		rn, ok := r.AsNumber()
		return ok && op.Holds(ln, rn)
	}
	if ls, ok := l.AsString(); ok {
		if rs, ok := r.AsString(); ok {
			return op.Holds(float64(strings.Compare(ls, rs)), 0)
		}
	}
	return false
}

// constantChecks decides atoms whose outcome is fixed regardless of
// bindings. Returns true when the rule is proven dead.
func constantChecks(c *context, r datalog.Rule) bool {
	for _, l := range r.Body {
		pos := datalog.PosOf(l)
		switch a := l.(type) {
		case datalog.CmpAtom:
			lc, lok := constOf(a.Left)
			rc, rok := constOf(a.Right)
			switch {
			case lok && rok:
				if !evalConstCmp(lc, a.Op, rc) {
					c.report(deadDiag(r, pos, fmt.Sprintf("comparison %q is always false", a.String())))
					return true
				}
				c.report(redundantDiag(r, pos, a))
			case a.Op != constraint.Eq && a.Op != constraint.Ne:
				// Ordered comparison against a non-scalar constant (an
				// object reference, set, or temporal value) never holds.
				if (lok && !isScalarKind(lc)) || (rok && !isScalarKind(rc)) {
					c.report(deadDiag(r, pos,
						fmt.Sprintf("ordered comparison %q with a non-scalar constant is always false", a.String())))
					return true
				}
			}
		case datalog.EntailAtom:
			if dead := constEntailCheck(c, r, a, pos); dead {
				return true
			}
		case datalog.TemporalAtom:
			if dead := constTemporalCheck(c, r, a, pos); dead {
				return true
			}
		case datalog.MemberAtom:
			if dead := constMemberCheck(c, r, a, pos); dead {
				return true
			}
		}
	}
	return false
}

func constEntailCheck(c *context, r datalog.Rule, a datalog.EntailAtom, pos datalog.Pos) bool {
	lc, lok := constOf(a.Left)
	rc, rok := constOf(a.Right)
	// A constant non-temporal operand can never satisfy "=>": the engine
	// evaluates entailment only between temporal values.
	if lok {
		if _, ok := lc.AsTemporal(); !ok {
			c.report(deadDiag(r, pos, fmt.Sprintf("entailment %q is always false: left side is not a temporal value", a.String())))
			return true
		}
	}
	if rok {
		if _, ok := rc.AsTemporal(); !ok {
			c.report(deadDiag(r, pos, fmt.Sprintf("entailment %q is always false: right side is not a temporal value", a.String())))
			return true
		}
	}
	if lok && rok {
		lt, _ := lc.AsTemporal()
		rt, _ := rc.AsTemporal()
		if !rt.ContainsGen(lt) {
			c.report(deadDiag(r, pos, fmt.Sprintf("entailment %q is always false", a.String())))
			return true
		}
		c.report(redundantDiag(r, pos, a))
	}
	return false
}

func constTemporalCheck(c *context, r datalog.Rule, a datalog.TemporalAtom, pos datalog.Pos) bool {
	lc, lok := constOf(a.Left)
	rc, rok := constOf(a.Right)
	if lok {
		if _, ok := lc.AsTemporal(); !ok {
			c.report(deadDiag(r, pos, fmt.Sprintf("temporal atom %q is always false: left side is not a temporal value", a.String())))
			return true
		}
	}
	if rok {
		if _, ok := rc.AsTemporal(); !ok {
			c.report(deadDiag(r, pos, fmt.Sprintf("temporal atom %q is always false: right side is not a temporal value", a.String())))
			return true
		}
	}
	if lok && rok {
		lt, _ := lc.AsTemporal()
		rt, _ := rc.AsTemporal()
		if !datalog.EvalTemporal(a.Rel, lt, rt) {
			c.report(deadDiag(r, pos, fmt.Sprintf("temporal atom %q is always false", a.String())))
			return true
		}
		c.report(redundantDiag(r, pos, a))
	}
	return false
}

func constMemberCheck(c *context, r datalog.Rule, a datalog.MemberAtom, pos datalog.Pos) bool {
	set, ok := constOf(a.Set)
	if !ok {
		return false
	}
	allConst := true
	for _, e := range a.Elems {
		ev, eok := constOf(e)
		if !eok {
			allConst = false
			continue
		}
		if !set.ContainsElem(ev) {
			c.report(deadDiag(r, pos,
				fmt.Sprintf("membership %q is always false: %s is not an element of %s", a.String(), ev, set)))
			return true
		}
	}
	if allConst {
		c.report(redundantDiag(r, pos, a))
	}
	return false
}

// --- Dense-order family --------------------------------------------------------

// denseLowering maps rule operands to dense-solver terms. Non-numeric
// constants become named points whose mutual order (strings) or
// distinctness (everything else) is asserted as extra atoms.
type denseLowering struct {
	consts map[string]object.Value // solver var key -> constant value
}

func (lo *denseLowering) operand(o datalog.Operand) (constraint.Term, bool) {
	t := o.Term
	if o.Attr != "" {
		switch {
		case t.IsVar():
			return constraint.V("v:" + t.Name() + "." + o.Attr), true
		case !t.IsConcat():
			return constraint.V("c:" + t.Value().String() + "." + o.Attr), true
		}
		return constraint.Term{}, false
	}
	switch {
	case t.IsVar():
		return constraint.V("v:" + t.Name()), true
	case t.IsConcat():
		return constraint.Term{}, false
	}
	v := t.Value()
	if n, ok := v.AsNumber(); ok {
		return constraint.C(n), true
	}
	key := fmt.Sprintf("k%d:%s", v.Kind(), v.String())
	lo.consts[key] = v
	return constraint.V(key), true
}

// worldFacts returns the atoms fixing the relationships between the
// lowered non-numeric constants: lexicographic order between strings,
// distinctness between everything else.
func (lo *denseLowering) worldFacts() constraint.Conj {
	keys := make([]string, 0, len(lo.consts))
	for k := range lo.consts {
		keys = append(keys, k)
	}
	// Deterministic order keeps solver work and diagnostics stable.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var out constraint.Conj
	for i, ka := range keys {
		for _, kb := range keys[i+1:] {
			va, vb := lo.consts[ka], lo.consts[kb]
			sa, aStr := va.AsString()
			sb, bStr := vb.AsString()
			switch {
			case aStr && bStr && sa < sb:
				out = append(out, constraint.NewAtom(constraint.V(ka), constraint.Lt, constraint.V(kb)))
			case aStr && bStr:
				out = append(out, constraint.NewAtom(constraint.V(ka), constraint.Gt, constraint.V(kb)))
			default:
				out = append(out, constraint.NewAtom(constraint.V(ka), constraint.Ne, constraint.V(kb)))
			}
		}
	}
	return out
}

// satWithin runs a budgeted satisfiability check, recording budget
// exhaustion on the context.
func (c *context) satWithin(f constraint.Formula) (bool, bool) {
	sat, err := f.SatisfiableWithin(c.budget)
	if err != nil {
		if errors.Is(err, constraint.ErrBudget) {
			c.budgetHit = true
		}
		return true, false
	}
	return sat, true
}

func (c *context) entailsWithin(f, g constraint.Formula) (bool, bool) {
	ok, err := f.EntailsWithin(g, c.budget)
	if err != nil {
		if errors.Is(err, constraint.ErrBudget) {
			c.budgetHit = true
		}
		return false, false
	}
	return ok, true
}

// denseFamily lowers the rule's comparison atoms and checks joint
// satisfiability, then per-atom redundancy. Returns true when the rule is
// proven dead.
func denseFamily(c *context, r datalog.Rule) bool {
	lo := &denseLowering{consts: map[string]object.Value{}}
	var atoms constraint.Conj
	var sources []datalog.CmpAtom
	for _, l := range r.Body {
		a, ok := l.(datalog.CmpAtom)
		if !ok {
			continue
		}
		// Constant-only atoms were decided (and reported) by
		// constantChecks; a surviving one is true and constrains nothing.
		if _, lc := constOf(a.Left); lc {
			if _, rc := constOf(a.Right); rc {
				continue
			}
		}
		lt, lok := lo.operand(a.Left)
		rt, rok := lo.operand(a.Right)
		if !lok || !rok {
			continue
		}
		atoms = append(atoms, constraint.NewAtom(lt, a.Op, rt))
		sources = append(sources, a)
	}
	if len(atoms) == 0 {
		return false
	}
	world := lo.worldFacts()
	full := append(append(constraint.Conj{}, world...), atoms...)
	sat, ok := c.satWithin(constraint.Formula{full})
	if !ok {
		return false
	}
	if !sat {
		c.report(deadDiag(r, datalog.Pos{}, "its comparison constraints are unsatisfiable"))
		return true
	}
	// Redundancy: an atom entailed by the others (plus the constant world
	// facts) filters nothing.
	for i := range atoms {
		rest := append(constraint.Conj{}, world...)
		rest = append(rest, atoms[:i]...)
		rest = append(rest, atoms[i+1:]...)
		ent, ok := c.entailsWithin(constraint.Formula{rest}, constraint.FromAtom(atoms[i]))
		if !ok {
			return false
		}
		if ent {
			c.report(redundantDiag(r, sources[i].Pos, sources[i]))
		}
	}
	return false
}

// --- Temporal-entailment family -------------------------------------------------

// entailFamily groups "L => g" atoms with constant temporal right sides
// by their left operand; the left side's instants must lie in the
// intersection of the right sides, so an empty intersection kills the
// rule. Returns true when the rule is proven dead.
func entailFamily(c *context, r datalog.Rule) bool {
	type group struct {
		formulas []constraint.Formula
		sources  []datalog.EntailAtom
	}
	groups := map[string]*group{}
	var order []string
	for _, l := range r.Body {
		a, ok := l.(datalog.EntailAtom)
		if !ok {
			continue
		}
		rc, rok := constOf(a.Right)
		if !rok {
			continue
		}
		g, tok := rc.AsTemporal()
		if !tok {
			continue // constantChecks already handles non-temporal constants
		}
		key := a.Left.String()
		grp := groups[key]
		if grp == nil {
			grp = &group{}
			groups[key] = grp
			order = append(order, key)
		}
		grp.formulas = append(grp.formulas, constraint.FromInterval("t", g))
		grp.sources = append(grp.sources, a)
	}
	for _, key := range order {
		grp := groups[key]
		conj := constraint.True()
		for _, f := range grp.formulas {
			conj = conj.And(f)
		}
		sat, ok := c.satWithin(conj)
		if !ok {
			return false
		}
		if !sat {
			c.report(deadDiag(r, grp.sources[0].Pos,
				fmt.Sprintf("the temporal entailments on %q require an empty time set", key)))
			return true
		}
		if len(grp.formulas) < 2 {
			continue
		}
		for i := range grp.formulas {
			rest := constraint.True()
			for j, f := range grp.formulas {
				if j != i {
					rest = rest.And(f)
				}
			}
			ent, ok := c.entailsWithin(rest, grp.formulas[i])
			if !ok {
				return false
			}
			if ent {
				c.report(redundantDiag(r, grp.sources[i].Pos, grp.sources[i]))
			}
		}
	}
	return false
}

// --- Set-order family -----------------------------------------------------------

// setFamily lowers membership atoms and set-valued equalities to a
// set-order conjunction: "e in K" contributes a lower bound on K, and
// "K = {…}" bounds K from both sides, so together they can contradict.
func setFamily(c *context, r datalog.Rule) {
	var atoms []constraint.SetAtom
	// sources tracks the originating literal of each user-visible atom
	// for redundancy positions; equality-derived bounds share a source.
	type src struct {
		lit datalog.Literal
		pos datalog.Pos
		ord int // body-literal ordinal, for grouping atoms per literal
	}
	var sources []src
	ord := 0
	add := func(a constraint.SetAtom, l datalog.Literal) {
		atoms = append(atoms, a)
		sources = append(sources, src{lit: l, pos: datalog.PosOf(l), ord: ord})
	}
	setKey := func(o datalog.Operand) (string, bool) {
		if o.Attr == "" || o.Term.IsConcat() {
			return "", false
		}
		if o.Term.IsVar() {
			return "v:" + o.Term.Name() + "." + o.Attr, true
		}
		return "c:" + o.Term.Value().String() + "." + o.Attr, true
	}
	for _, l := range r.Body {
		ord++
		switch a := l.(type) {
		case datalog.MemberAtom:
			key, ok := setKey(a.Set)
			if !ok {
				continue
			}
			for _, e := range a.Elems {
				ev, eok := constOf(e)
				if !eok || ev.Kind() == object.KindSet {
					continue
				}
				add(constraint.Member(ev.String(), key), l)
			}
		case datalog.CmpAtom:
			if a.Op != constraint.Eq {
				continue
			}
			for _, pair := range [][2]datalog.Operand{{a.Left, a.Right}, {a.Right, a.Left}} {
				key, kok := setKey(pair[0])
				cv, cok := constOf(pair[1])
				if !kok || !cok || cv.Kind() != object.KindSet {
					continue
				}
				elems := make([]string, 0, cv.Len())
				for _, e := range cv.Elems() {
					elems = append(elems, e.String())
				}
				lit := constraint.SetLit(elems...)
				kv := constraint.SetVar(key)
				add(constraint.Subset(kv, lit), l)
				add(constraint.Subset(lit, kv), l)
			}
		}
	}
	if len(atoms) == 0 {
		return
	}
	conj := constraint.SetConj(atoms)
	sat, err := conj.SatisfiableWithin(c.budget)
	if err != nil {
		if errors.Is(err, constraint.ErrBudget) {
			c.budgetHit = true
		}
		return
	}
	if !sat {
		c.report(deadDiag(r, sources[0].pos, "its membership and set-equality constraints are unsatisfiable"))
		return
	}
	// Redundancy over membership atoms only (equality-derived bounds come
	// in entangled pairs and are reported through their comparison atom).
	// A multi-element subset literal lowers to several set atoms; it is
	// redundant when the other literals entail all of them together.
	for li := 0; li < len(atoms); {
		m, ok := sources[li].lit.(datalog.MemberAtom)
		end := li + 1
		for end < len(atoms) && sources[end].ord == sources[li].ord {
			end++
		}
		if !ok {
			li = end
			continue
		}
		rest := make(constraint.SetConj, 0, len(atoms)-(end-li))
		rest = append(rest, atoms[:li]...)
		rest = append(rest, atoms[end:]...)
		ent, err := rest.EntailsWithin(constraint.SetConj(atoms[li:end]), c.budget)
		if err != nil {
			if errors.Is(err, constraint.ErrBudget) {
				c.budgetHit = true
			}
			return
		}
		if ent {
			c.report(redundantDiag(r, sources[li].pos, m))
		}
		li = end
	}
}
