package analyze

import (
	"testing"

	"videodb/internal/parser"
)

// FuzzAnalyze proves the analyzer total: it must never panic on any
// program the parser accepts, whatever the constraint shapes.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"p(X) :- q(X).\n?- p(X).",
		"rope(r1).\ntaut(X) :- rope(X), X.t > 10, X.t < 5.\n?- taut(X).",
		"clip(G) :- Interval(G), G.duration => [0, 10], G.duration => [20, 30].\n?- clip(G).",
		"both(G) :- Interval(G), G.entities = {o1}, o2 in G.entities.\n?- both(G).",
		"m(G1 + G2) :- Interval(G1), Interval(G2), o1 in G1.entities, o1 in G2.entities.\n?- m(G).",
		"w(X) :- n(X), not f(X).\n?- w(X).",
		"a(X) :- b(X), X.n = \"s\", X.n = \"t\".\n?- a(X).",
		"t(X) :- b(X), X.d before [0, 5], [7, 9] => X.d.\n?- t(X).",
		"g(X, Y) :- b(X), c(Y).\n?- g(X, Y).",
		"s(X) :- b(X, Y).\n?- s(X).",
		"p(X) :- q(X, X), {o1, o2} subset X.e.\nq(a, a).\n?- p(X).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := parser.Parse(src)
		if err != nil {
			return
		}
		prog, opts := scriptOptions(s)
		opts.MaxSolverSteps = 10_000 // keep hostile inputs fast
		_ = Analyze(prog, opts)
	})
}
