package analyze

import (
	"videodb/internal/constraint"
	"videodb/internal/datalog"
)

// Schema is a snapshot of the extensional database visible to the
// analyzer: which fact relations exist and with which arities. It is
// plain data so callers (core, CLI, server) can assemble it from a store,
// a script, or both without the analyzer importing either.
type Schema struct {
	// Preds maps an EDB predicate name to the set of arities it occurs
	// with (usually one).
	Preds map[string][]int
}

// NewSchema returns an empty schema ready for AddPred.
func NewSchema() *Schema { return &Schema{Preds: map[string][]int{}} }

// AddPred records that the predicate occurs with the given arity.
func (s *Schema) AddPred(name string, arity int) {
	for _, a := range s.Preds[name] {
		if a == arity {
			return
		}
	}
	s.Preds[name] = append(s.Preds[name], arity)
}

// has reports whether the predicate exists in the schema.
func (s *Schema) has(name string) bool {
	if s == nil {
		return false
	}
	_, ok := s.Preds[name]
	return ok
}

// DefaultBudget is the per-analysis solver step budget. Dead-rule and
// redundancy checks across all rules share it; exhausting it downgrades
// the analysis (a VQL0009 info) instead of stalling the caller.
const DefaultBudget = 200_000

// Options configures an analysis.
type Options struct {
	// Goals are the query atoms the program will be asked; the
	// unreachable-rule pass warns about rules contributing to none of
	// them. Empty means "no goals known" and disables that pass.
	Goals []datalog.RelAtom
	// Schema describes the extensional database. Nil means "no fact
	// information": the undefined-predicate pass then reports warnings
	// instead of errors, since a predicate may be defined by facts the
	// analyzer cannot see.
	Schema *Schema
	// MaxSolverSteps bounds the constraint-solver work (0 = DefaultBudget,
	// negative = unlimited).
	MaxSolverSteps int64
	// DisableCodes suppresses diagnostics by code (e.g. a server that
	// considers singleton variables noise).
	DisableCodes []string
	// ContextRules marks the first N rules of the program as database
	// context: rules already loaded (and vetted) before the script under
	// analysis. They participate fully — they define predicates, seed
	// arities, and carry reachability — but rule-scoped findings are not
	// reported for them; vetting a script should not re-lint the database
	// it runs against.
	ContextRules int
}

// pass is one analysis unit. Passes run in order over a shared context
// and append diagnostics; they must not panic on any parser-accepted
// program.
type pass struct {
	name string
	run  func(*context)
}

// passes is the registered pass list, in execution order.
var passes = []pass{
	{"undefined-predicate", runUndefinedPass},
	{"window-misuse", runWindowPass},
	{"arity-consistency", runArityPass},
	{"dead-rule", runDeadRulePass},
	{"unreachable-rule", runUnreachablePass},
	{"perf-lints", runPerfPass},
}

// context is the shared state of one analysis run.
type context struct {
	prog   datalog.Program
	opts   Options
	graph  *datalog.DepGraph
	budget *constraint.Budget
	// budgetHit is set when a solver call ran out of steps; constraint
	// passes stop and a single VQL0009 is reported.
	budgetHit bool
	diags     []Diagnostic
}

func (c *context) report(d Diagnostic) { c.diags = append(c.diags, d) }

// fromScript reports whether rule i belongs to the script under analysis
// (as opposed to the database context prefix).
func (c *context) fromScript(i int) bool { return i >= c.opts.ContextRules }

// ruleLabel names a rule in diagnostics: its label if present, else its
// head predicate.
func ruleLabel(r datalog.Rule) string {
	if r.Name != "" {
		return r.Name
	}
	return r.Head.Pred
}

// Analyze runs every registered pass over the program and returns the
// findings sorted by position and severity.
func Analyze(p datalog.Program, opts Options) []Diagnostic {
	steps := opts.MaxSolverSteps
	if steps == 0 {
		steps = DefaultBudget
	}
	if steps < 0 {
		steps = 0 // constraint.NewBudget treats 0 as unlimited
	}
	c := &context{
		prog:   p,
		opts:   opts,
		graph:  datalog.NewDepGraph(p),
		budget: constraint.NewBudget(steps, nil),
	}
	for _, ps := range passes {
		ps.run(c)
	}
	if c.budgetHit {
		c.report(Diagnostic{
			Severity: SeverityInfo,
			Code:     CodeBudget,
			Message:  "constraint-solver budget exhausted; dead-rule analysis is incomplete",
		})
	}
	out := c.diags[:0]
	disabled := map[string]bool{}
	for _, code := range opts.DisableCodes {
		disabled[code] = true
	}
	for _, d := range c.diags {
		if !disabled[d.Code] {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}
