package analyze

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videodb/internal/datalog"
	"videodb/internal/parser"
)

var update = flag.Bool("update", false, "rewrite golden files")

// scriptOptions assembles the analyzer inputs the CLI would build for a
// standalone script: program = rules + query helper rules, goals = query
// atoms, schema = the script's own facts.
func scriptOptions(s *parser.Script) (datalog.Program, Options) {
	schema := NewSchema()
	for _, f := range s.Facts {
		schema.AddPred(f.Name, len(f.Args))
	}
	var goals []datalog.RelAtom
	for _, q := range s.Queries {
		goals = append(goals, q.Atom)
	}
	return s.Program(), Options{Goals: goals, Schema: schema}
}

func render(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGolden runs the analyzer over each testdata script and compares
// the rendered diagnostics with the script's .golden file. Regenerate
// with: go test ./internal/datalog/analyze -run Golden -update
func TestGolden(t *testing.T) {
	scripts, err := filepath.Glob("testdata/*.vql")
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no testdata scripts (err=%v)", err)
	}
	for _, path := range scripts {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			prog, opts := scriptOptions(s)
			got := render(Analyze(prog, opts))
			golden := strings.TrimSuffix(path, ".vql") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// The acceptance scenario: one script with a typo'd predicate, an
// unsatisfiable constraint body, and an unreachable rule yields three
// distinct positioned diagnostics, with a did-you-mean for the typo.
func TestCombinedScenario(t *testing.T) {
	src, err := os.ReadFile("testdata/combined.vql")
	if err != nil {
		t.Fatal(err)
	}
	s, err := parser.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	prog, opts := scriptOptions(s)
	ds := Analyze(prog, opts)
	byCode := map[string]Diagnostic{}
	for _, d := range ds {
		byCode[d.Code] = d
	}
	undef, ok := byCode[CodeUndefinedPred]
	if !ok || undef.Pos.IsZero() || !strings.Contains(undef.Suggestion, `"rope"`) {
		t.Errorf("undefined-predicate diagnostic missing position or suggestion: %+v", undef)
	}
	dead, ok := byCode[CodeDeadRule]
	if !ok || dead.Pos.IsZero() {
		t.Errorf("dead-rule diagnostic missing: %+v", dead)
	}
	unreach, ok := byCode[CodeUnreachable]
	if !ok || unreach.Pos.IsZero() {
		t.Errorf("unreachable-rule diagnostic missing: %+v", unreach)
	}
	if !HasErrors(ds) {
		t.Error("combined scenario should contain errors")
	}
	positions := map[string]bool{}
	for _, d := range []Diagnostic{undef, dead, unreach} {
		positions[d.Pos.String()] = true
	}
	if len(positions) != 3 {
		t.Errorf("expected three distinct positions, got %v", positions)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A rule with enough comparison atoms to burn a one-step budget.
	var b strings.Builder
	b.WriteString("busy(X) :- rope(X)")
	for i := 0; i < 20; i++ {
		b.WriteString(", X.a < ")
		b.WriteString(string(rune('0' + i%10)))
	}
	b.WriteString(".\n?- busy(X).\n")
	s, err := parser.Parse("rope(r1).\n" + b.String())
	if err != nil {
		t.Fatal(err)
	}
	prog, opts := scriptOptions(s)
	opts.MaxSolverSteps = 1
	ds := Analyze(prog, opts)
	found := false
	for _, d := range ds {
		if d.Code == CodeBudget {
			found = true
		}
		if d.Code == CodeDeadRule || d.Code == CodeRedundant {
			t.Errorf("constraint finding %v despite exhausted budget", d)
		}
	}
	if !found {
		t.Errorf("expected a %s diagnostic, got %v", CodeBudget, ds)
	}
}

func TestNilSchemaDowngradesUndefined(t *testing.T) {
	s, err := parser.Parse("deep(X) :- ropee(X).\n?- deep(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	prog, opts := scriptOptions(s)
	opts.Schema = nil
	ds := Analyze(prog, opts)
	for _, d := range ds {
		if d.Code == CodeUndefinedPred && d.Severity != SeverityWarn {
			t.Errorf("undefined predicate with no schema should be a warning, got %v", d)
		}
	}
}

func TestDisableCodes(t *testing.T) {
	s, err := parser.Parse("liked(Y) :- likes(X, Y).\nlikes(a, b).\n?- liked(Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	prog, opts := scriptOptions(s)
	if ds := Analyze(prog, opts); len(ds) == 0 {
		t.Fatal("expected a singleton-variable diagnostic")
	}
	opts.DisableCodes = []string{CodeSingletonVar}
	for _, d := range Analyze(prog, opts) {
		if d.Code == CodeSingletonVar {
			t.Errorf("disabled code still reported: %v", d)
		}
	}
}

// Context rules (the database the script runs against) resolve
// predicates and carry reachability but are never themselves reported:
// only the script's own rules get rule-scoped findings.
func TestContextRulesNotReported(t *testing.T) {
	s, err := parser.Parse(`base(b1).
dead1(X) :- base(X), X.n > 5, X.n < 1.
dead2(X) :- base(X), X.n > 5, X.n < 1.
?- dead2(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, opts := scriptOptions(s)

	count := func(ds []Diagnostic, code string) int {
		n := 0
		for _, d := range ds {
			if d.Code == code {
				n++
			}
		}
		return n
	}
	all := Analyze(prog, opts)
	if count(all, CodeDeadRule) != 2 || count(all, CodeUnreachable) != 1 {
		t.Fatalf("without context marking: %v", all)
	}

	// Rule 0 (dead1) becomes database context: its dead body and its
	// unreachability are no longer the script's problem.
	opts.ContextRules = 1
	scoped := Analyze(prog, opts)
	if count(scoped, CodeDeadRule) != 1 || count(scoped, CodeUnreachable) != 0 {
		t.Fatalf("with context marking: %v", scoped)
	}
	for _, d := range scoped {
		if d.Rule == "dead1" {
			t.Errorf("context rule reported: %v", d)
		}
	}
}

// No goals: the unreachable pass must stay silent instead of flagging
// every rule.
func TestNoGoalsNoUnreachable(t *testing.T) {
	s, err := parser.Parse("rope(r1).\ndeep(X) :- rope(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	prog, opts := scriptOptions(s)
	for _, d := range Analyze(prog, opts) {
		if d.Code == CodeUnreachable {
			t.Errorf("unreachable reported without goals: %v", d)
		}
	}
}
