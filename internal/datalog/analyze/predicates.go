package analyze

import (
	"fmt"
	"sort"

	"videodb/internal/datalog"
)

// predUse is one occurrence of a predicate with an arity, in source
// order: rule heads and bodies first, then goals.
type predUse struct {
	pred    string
	arity   int
	pos     datalog.Pos
	rule    string
	defines bool // head occurrence
	negated bool
	ctx     bool // occurrence inside a database-context rule
}

// predUses lists every predicate occurrence in the program and goals.
func predUses(c *context) []predUse {
	var uses []predUse
	for i, r := range c.prog.Rules {
		label := ruleLabel(r)
		ctx := !c.fromScript(i)
		uses = append(uses, predUse{
			pred: r.Head.Pred, arity: len(r.Head.Args),
			pos: r.Head.Pos, rule: label, defines: true, ctx: ctx,
		})
		for _, l := range r.Body {
			switch a := l.(type) {
			case datalog.RelAtom:
				uses = append(uses, predUse{
					pred: a.Pred, arity: len(a.Args), pos: a.Pos, rule: label, ctx: ctx,
				})
			case datalog.NotAtom:
				uses = append(uses, predUse{
					pred: a.Atom.Pred, arity: len(a.Atom.Args),
					pos: datalog.PosOf(l), rule: label, negated: true, ctx: ctx,
				})
			}
		}
	}
	for _, g := range c.opts.Goals {
		uses = append(uses, predUse{pred: g.Pred, arity: len(g.Args), pos: g.Pos, rule: "goal"})
	}
	return uses
}

// runUndefinedPass flags body and goal predicates that no rule defines
// and no EDB fact provides, with a did-you-mean suggestion when a known
// predicate is within small edit distance. Without a schema the finding
// is a warning — facts the analyzer cannot see may define the predicate.
func runUndefinedPass(c *context) {
	known := map[string]bool{}
	for _, r := range c.prog.Rules {
		known[r.Head.Pred] = true
	}
	if c.opts.Schema != nil {
		for p := range c.opts.Schema.Preds {
			known[p] = true
		}
	}
	// The built-in class predicates are candidates for suggestions only:
	// a body atom spelled "interval(G)" parses as a relational atom, and
	// the fix is the capitalized class atom.
	candidates := make([]string, 0, len(known)+2)
	for p := range known {
		candidates = append(candidates, p)
	}
	candidates = append(candidates, "Interval", "Object")
	sort.Strings(candidates)

	sev := SeverityError
	if c.opts.Schema == nil {
		sev = SeverityWarn
	}
	for _, u := range predUses(c) {
		if u.defines || u.ctx || known[u.pred] {
			continue
		}
		// The reserved window predicate is never defined by rules or
		// facts; the window-misuse pass owns its diagnostic (VQL0010).
		if u.pred == windowPred {
			continue
		}
		d := Diagnostic{
			Severity: sev,
			Code:     CodeUndefinedPred,
			Pos:      u.pos,
			Rule:     u.rule,
			Message:  fmt.Sprintf("predicate %q is not defined by any rule or fact", u.pred),
		}
		if best := closestName(u.pred, candidates); best != "" {
			d.Suggestion = fmt.Sprintf("did you mean %q?", best)
		}
		c.report(d)
	}
}

// runArityPass flags predicates used with differing arities. The arity of
// the first occurrence (definition-order) is canonical; later deviating
// uses are errors.
func runArityPass(c *context) {
	canonical := map[string]predUse{}
	if c.opts.Schema != nil {
		for p, arities := range c.opts.Schema.Preds {
			if len(arities) > 0 {
				canonical[p] = predUse{pred: p, arity: arities[0], rule: "facts"}
			}
		}
	}
	for _, u := range predUses(c) {
		first, ok := canonical[u.pred]
		if !ok {
			canonical[u.pred] = u
			continue
		}
		if u.arity == first.arity || u.ctx {
			continue
		}
		where := "facts"
		if first.rule != "facts" {
			where = fmt.Sprintf("rule %q", first.rule)
		}
		c.report(Diagnostic{
			Severity: SeverityError,
			Code:     CodeArityMismatch,
			Pos:      u.pos,
			Rule:     u.rule,
			Message: fmt.Sprintf("predicate %q used with %d argument(s) here but %d in %s",
				u.pred, u.arity, first.arity, where),
		})
	}
}

// closestName returns the candidate within edit distance 2 (1 for short
// names) of name, preferring smaller distance and then lexicographic
// order. Empty when nothing is close.
func closestName(name string, candidates []string) string {
	maxDist := 2
	if len(name) <= 4 {
		maxDist = 1
	}
	best, bestDist := "", maxDist+1
	for _, cand := range candidates {
		if cand == name {
			continue
		}
		if d := editDistance(name, cand, maxDist); d < bestDist {
			best, bestDist = cand, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, cut off at
// limit+1 (returns limit+1 when the distance exceeds the limit).
func editDistance(a, b string, limit int) int {
	if diff := len(a) - len(b); diff > limit || -diff > limit {
		return limit + 1
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if v := prev[j] + 1; v < m { // delete
				m = v
			}
			if v := cur[j-1] + 1; v < m { // insert
				m = v
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > limit {
			return limit + 1
		}
		prev, cur = cur, prev
	}
	if prev[len(b)] > limit {
		return limit + 1
	}
	return prev[len(b)]
}
