package analyze

import "fmt"

// runUnreachablePass warns about rules that sit on no dependency path
// from any goal predicate. It reuses the shared dependency graph (the
// same one stratification and goal pruning use), so the "reachable"
// notion here matches evaluation exactly — including the coupling of
// constructive rules to rules that read the Interval class. A rule the
// engine would prune for every declared goal is effort the author
// probably meant to wire in.
func runUnreachablePass(c *context) {
	if len(c.opts.Goals) == 0 || len(c.prog.Rules) == 0 {
		return
	}
	reachable := make([]bool, len(c.prog.Rules))
	for _, g := range c.opts.Goals {
		for i, ok := range c.graph.ReachableRules(g.Pred) {
			if ok {
				reachable[i] = true
			}
		}
	}
	for i, r := range c.prog.Rules {
		if reachable[i] || !c.fromScript(i) {
			continue
		}
		c.report(Diagnostic{
			Severity: SeverityWarn,
			Code:     CodeUnreachable,
			Pos:      r.Pos,
			Rule:     ruleLabel(r),
			Message:  fmt.Sprintf("rule %q does not contribute to any query goal", ruleLabel(r)),
		})
	}
}
