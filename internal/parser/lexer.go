// Package parser implements VideoQL, the textual surface syntax for the
// paper's rule-based constraint query language and its data format. A
// script mixes four statement kinds, each terminated by a period:
//
//	// object definitions (the database of Section 5.2)
//	interval gi1 {
//	    duration: (t > 0 and t < 30),
//	    entities: {o1, o2, o3, o4},
//	    subject: "murder",
//	    victim: o1,
//	    murderer: {o2, o3}
//	}.
//	object o1 { name: "David", role: "Victim" }.
//
//	// ground facts (the relations R)
//	in(o1, o4, gi1).
//
//	// rules (Definition 10); identifiers starting with an upper-case
//	// letter are variables, others are constants
//	r1: q(G) :- Interval(G), o1 in G.entities.
//	contains(G1, G2) :- Interval(G1), Interval(G2),
//	                    G2.duration => G1.duration.
//	merge(G1 + G2) :- Interval(G1), Interval(G2).
//
//	// queries (Definition 13); arbitrary conjunctive bodies allowed
//	?- q(G).
//	?- Interval(G), Object(O), O in G.entities, O.name = "David".
//
// Comments run from "//" or "%" to end of line. A "." between two
// identifier characters is attribute access (G.duration); elsewhere it
// terminates a statement.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokColon
	tokDot     // statement terminator
	tokAttrDot // attribute access dot
	tokPlus
	tokTurnstile // :-
	tokQuery     // ?-
	tokOp        // < <= = != >= >
	tokImplies   // =>
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokNumber: "number",
	tokString: "string", tokLParen: "'('", tokRParen: "')'",
	tokLBrace: "'{'", tokRBrace: "'}'", tokLBracket: "'['", tokRBracket: "']'",
	tokComma: "','", tokColon: "':'", tokDot: "'.'", tokAttrDot: "attribute '.'",
	tokPlus: "'+'", tokTurnstile: "':-'", tokQuery: "'?-'",
	tokOp: "comparison operator", tokImplies: "'=>'",
}

type token struct {
	kind      tokenKind
	text      string
	line, col int
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", tokenNames[t.kind], t.text)
	}
	return tokenNames[t.kind]
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src       string
	pos       int
	line, col int
	toks      []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) peekAt(off int) rune {
	p := l.pos + off
	if p >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[p:])
	return r
}

func (l *lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) emit(kind tokenKind, text string, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		r := l.peek()
		line, col := l.line, l.col
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '%':
			l.skipLine()
		case r == '/' && l.peekAt(1) == '/':
			l.skipLine()
		case isIdentStart(r):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.peek()) {
				l.advance()
			}
			l.emit(tokIdent, l.src[start:l.pos], line, col)
		case unicode.IsDigit(r) || (r == '-' && unicode.IsDigit(l.peekAt(1))):
			if err := l.lexNumber(line, col); err != nil {
				return err
			}
		case r == '"':
			if err := l.lexString(line, col); err != nil {
				return err
			}
		case r == '(':
			l.advance()
			l.emit(tokLParen, "", line, col)
		case r == ')':
			l.advance()
			l.emit(tokRParen, "", line, col)
		case r == '{':
			l.advance()
			l.emit(tokLBrace, "", line, col)
		case r == '}':
			l.advance()
			l.emit(tokRBrace, "", line, col)
		case r == '[':
			l.advance()
			l.emit(tokLBracket, "", line, col)
		case r == ']':
			l.advance()
			l.emit(tokRBracket, "", line, col)
		case r == ',':
			l.advance()
			l.emit(tokComma, "", line, col)
		case r == '+':
			l.advance()
			l.emit(tokPlus, "", line, col)
		case r == '∪':
			l.advance()
			l.emit(tokPlus, "", line, col) // union separator in interval literals
		case r == ':':
			l.advance()
			if l.peek() == '-' {
				l.advance()
				l.emit(tokTurnstile, "", line, col)
			} else {
				l.emit(tokColon, "", line, col)
			}
		case r == '?':
			l.advance()
			if l.peek() != '-' {
				return l.errf("expected '-' after '?'")
			}
			l.advance()
			l.emit(tokQuery, "", line, col)
		case r == '.':
			// Attribute access when squeezed between identifier characters.
			prevIsIdent := l.pos > 0 && isIdentPart(rune(l.src[l.pos-1]))
			nextIsIdent := isIdentStart(l.peekAt(1))
			l.advance()
			if prevIsIdent && nextIsIdent {
				l.emit(tokAttrDot, "", line, col)
			} else {
				l.emit(tokDot, "", line, col)
			}
		case r == '=':
			l.advance()
			switch l.peek() {
			case '>':
				l.advance()
				l.emit(tokImplies, "", line, col)
			case '=':
				l.advance()
				l.emit(tokOp, "=", line, col)
			default:
				l.emit(tokOp, "=", line, col)
			}
		case r == '<':
			l.advance()
			switch l.peek() {
			case '=':
				l.advance()
				l.emit(tokOp, "<=", line, col)
			case '>':
				l.advance()
				l.emit(tokOp, "!=", line, col)
			default:
				l.emit(tokOp, "<", line, col)
			}
		case r == '>':
			l.advance()
			if l.peek() == '=' {
				l.advance()
				l.emit(tokOp, ">=", line, col)
			} else {
				l.emit(tokOp, ">", line, col)
			}
		case r == '!':
			l.advance()
			if l.peek() != '=' {
				return l.errf("expected '=' after '!'")
			}
			l.advance()
			l.emit(tokOp, "!=", line, col)
		default:
			return l.errf("unexpected character %q", r)
		}
	}
	l.emit(tokEOF, "", l.line, l.col)
	return nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

func (l *lexer) lexNumber(line, col int) error {
	start := l.pos
	if l.peek() == '-' {
		l.advance()
	}
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	// Fractional part: only when the dot is followed by a digit, so the
	// statement terminator after a number ("… [0,30].") still works.
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		l.advance()
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !unicode.IsDigit(l.peek()) {
			l.pos = save // not an exponent; leave 'e…' for the next token
		} else {
			for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], line, col)
	return nil
}

func (l *lexer) lexString(line, col int) error {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return &Error{Line: line, Col: col, Msg: "unterminated string"}
		}
		r := l.advance()
		switch r {
		case '"':
			l.emit(tokString, b.String(), line, col)
			return nil
		case '\\':
			if l.pos >= len(l.src) {
				return &Error{Line: line, Col: col, Msg: "unterminated string escape"}
			}
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteRune(esc)
			default:
				return l.errf("unknown string escape %q", esc)
			}
		case '\n':
			return &Error{Line: line, Col: col, Msg: "newline in string"}
		default:
			b.WriteRune(r)
		}
	}
}
