package parser

import (
	"strings"
	"testing"

	"videodb/internal/datalog"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

const ropeScript = `
// The worked example of Section 5.2: "The Rope".
interval gi1 {
    duration: (t > 0 and t < 30),
    entities: {o1, o2, o3, o4},
    subject: "murder",
    victim: o1,
    murderer: {o2, o3}
}.
interval gi2 {
    duration: (t > 40 and t < 80),
    entities: {o1, o2, o3, o4, o5, o6, o7, o8, o9},
    subject: "Giving a party",
    host: {o2, o3},
    guest: {o5, o6, o7, o8, o9}
}.
object o1 { name: "David", role: "Victim" }.
object o2 { name: "Philip", realname: "Farley Granger", role: "Murderer" }.
object o3 { name: "Brandon", realname: "John Dall", role: "Murderer" }.
object o4 { identification: "Chest" }.
object o5 { name: "Janet", realname: "Joan Chandler" }.
object o6 { name: "Kenneth", realname: "Douglas Dick" }.
object o7 { name: "Mr_Kentley", realname: "Cedric Hardwicke" }.
object o8 { name: "Mrs_Atwater", realname: "Constance Collier" }.
object o9 { name: "Rupert_Cadell", realname: "James Stewart" }.

in(o1, o4, gi1).
in(o1, o4, gi2).

% Derived relations of Section 6.2.
contains(G1, G2) :- Interval(G1), Interval(G2), G2.duration => G1.duration.
same_object_in(G1, G2, O) :- Interval(G1), Interval(G2), Object(O),
                             O in G1.entities, O in G2.entities.

?- Interval(G), Object(O), O in G.entities, O.name = "David".
?- contains(G1, G2).
`

func TestParseRopeScript(t *testing.T) {
	script, err := Parse(ropeScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Objects) != 11 {
		t.Errorf("objects = %d, want 11", len(script.Objects))
	}
	if len(script.Facts) != 2 {
		t.Errorf("facts = %d, want 2", len(script.Facts))
	}
	if len(script.Rules) != 2 {
		t.Errorf("rules = %d, want 2", len(script.Rules))
	}
	if len(script.Queries) != 2 {
		t.Errorf("queries = %d, want 2", len(script.Queries))
	}

	// gi1's duration must be the open interval (0,30).
	var gi1 *object.Object
	for _, o := range script.Objects {
		if o.OID() == "gi1" {
			gi1 = o
		}
	}
	if gi1 == nil {
		t.Fatal("gi1 missing")
	}
	if gi1.Kind() != object.GenInterval {
		t.Error("gi1 should be an interval object")
	}
	if !gi1.Duration().Equal(interval.New(interval.Open(0, 30))) {
		t.Errorf("gi1 duration = %v", gi1.Duration())
	}
	ents := gi1.Entities()
	if len(ents) != 4 || ents[0] != "o1" || ents[3] != "o4" {
		t.Errorf("gi1 entities = %v", ents)
	}
	if !gi1.Attr("murderer").Equal(object.RefSet("o2", "o3")) {
		t.Errorf("gi1 murderer = %v", gi1.Attr("murderer"))
	}

	// End-to-end: apply + run the first query.
	st := store.New()
	if err := script.Apply(st); err != nil {
		t.Fatal(err)
	}
	e, err := datalog.NewEngine(st, script.Program())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(script.Queries[0].Atom)
	if err != nil {
		t.Fatal(err)
	}
	// Columns are (G, O) in first-occurrence order; David (o1) appears in
	// gi1 and gi2.
	if len(res) != 2 {
		t.Fatalf("query results = %v", res)
	}
	g0, _ := res[0].Values[0].AsRef()
	g1, _ := res[1].Values[0].AsRef()
	if g0 != "gi1" || g1 != "gi2" {
		t.Errorf("results = %v", res)
	}

	// Second query: direct predicate query over the derived contains.
	res, err = e.Query(script.Queries[1].Atom)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 { // (gi1,gi1), (gi2,gi2): reflexive only, durations disjoint
		t.Errorf("contains = %v", res)
	}
}

func TestParseValues(t *testing.T) {
	script, err := Parse(`object x {
		n: 42,
		f: -2.5,
		s: "hello\nworld",
		r: someoid,
		set: {1, 2, "a", inner},
		span: [0, 30],
		openspan: (0, 30),
		multi: [0, 10] + (20, 30],
		con: (t > 5 and t < 10 or t = 50)
	}.`)
	if err != nil {
		t.Fatal(err)
	}
	o := script.Objects[0]
	checks := []struct {
		attr string
		want object.Value
	}{
		{"n", object.Num(42)},
		{"f", object.Num(-2.5)},
		{"s", object.Str("hello\nworld")},
		{"r", object.Ref("someoid")},
		{"set", object.Set(object.Num(1), object.Num(2), object.Str("a"), object.Ref("inner"))},
		{"span", object.Temporal(interval.FromPairs(0, 30))},
		{"openspan", object.Temporal(interval.New(interval.Open(0, 30)))},
		{"multi", object.Temporal(interval.New(interval.Closed(0, 10), interval.OpenClosed(20, 30)))},
		{"con", object.Temporal(interval.New(interval.Open(5, 10), interval.Point(50)))},
	}
	for _, c := range checks {
		if got := o.Attr(c.attr); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.attr, got, c.want)
		}
	}
}

func TestParseRuleForms(t *testing.T) {
	cases := []string{
		"q(O) :- Interval(gi1), Object(O), O in gi1.entities",
		"q(G) :- Interval(G), Object(o1), o1 in G.entities",
		"q(o1) :- Interval(G), o1 in G.entities, G.duration => (t > 0 and t < 35)",
		"q(G) :- Interval(G), {o1, o2} subset G.entities",
		"q(O1, O2, G) :- Interval(G), Object(O1), Object(O2), rel(O1, O2, G)",
		"q(G) :- Interval(G), Object(O), O in G.entities, O.a = 5",
		"contains(G1, G2) :- Interval(G1), Interval(G2), G2.duration => G1.duration",
		"cat(G1 + G2) :- Interval(G1), Interval(G2), {o1, o2} subset G1.entities",
		"named: q(X) :- p(X)",
		"q(X, Y) :- p(X), r(Y), X.a < Y.b",
		"q(X) :- p(X), X != other",
		`q(X) :- p(X), X.name >= "m"`,
		"q(G) :- Interval(G), G.duration => [0, 100]",
		"q(G) :- Interval(G), [5, 6] => G.duration",
	}
	for _, src := range cases {
		r, err := ParseRule(src)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", src, err)
			continue
		}
		// The printed form must parse back to the same string (fixpoint of
		// print∘parse).
		printed := r.String()
		r2, err := ParseRule(printed)
		if err != nil {
			t.Errorf("round trip of %q failed to parse %q: %v", src, printed, err)
			continue
		}
		if r2.String() != printed {
			t.Errorf("print∘parse not stable:\n  %q\n  %q", printed, r2.String())
		}
	}
}

func TestParseRuleTrailingDot(t *testing.T) {
	r1, err := ParseRule("q(X) :- p(X).")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseRule("q(X) :- p(X)")
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Error("trailing dot should not matter")
	}
}

func TestParseQueryForms(t *testing.T) {
	q, err := ParseQuery("?- q(X).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rule != nil || q.Atom.Pred != "q" {
		t.Errorf("direct query = %+v", q)
	}
	q, err = ParseQuery("Interval(G), o1 in G.entities")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rule == nil {
		t.Fatal("conjunctive query should synthesize a rule")
	}
	if len(q.Atom.Args) != 1 || q.Atom.Args[0].Name() != "G" {
		t.Errorf("query atom = %v", q.Atom)
	}
	// A query over a built-in class is conjunctive even if single.
	q, err = ParseQuery("?- Interval(G).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rule == nil {
		t.Error("class-atom query should synthesize a rule")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"q(X :- p(X).", "expected"},
		{"q(X) :- p(X)", "expected '.'"},
		{"q(X) :- .", "expected a value"},
		{"?- .", "expected a value"},
		{"q(X).", "ground"},
		{"Q(X) :- p(X).", "upper-case"},
		{"interval Gi { }.", "upper-case"},
		{"q(X) :- p(Y).", "range-restricted"},
		{`object x { s: "unterminated }.`, "unterminated"},
		{"object x { n: 1e }.", "expected '}'"},
		{"object x { d: (t > 1 and u < 2) }.", "single time variable"},
		{"object x { d: [5, 2] }.", "empty time interval"},
		{"q(X) :- p(X), X ~ 3.", "unexpected character"},
		{"fact(o1) extra.", "expected"},
		{"q(X) :- p(X), {X} union G.entities.", "subset"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
		var pe *Error
		if !errorsAs(err, &pe) {
			t.Errorf("Parse(%q) error %T should be *parser.Error", tc.src, err)
		} else if pe.Line < 1 || pe.Col < 1 {
			t.Errorf("Parse(%q) error has bad position: %+v", tc.src, pe)
		}
	}
}

func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestParseComments(t *testing.T) {
	script, err := Parse(`
% percent comment
// slash comment
p(a, b). // trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Facts) != 1 {
		t.Errorf("facts = %v", script.Facts)
	}
}

func TestConstructiveRuleEndToEnd(t *testing.T) {
	src := `
interval g1 { duration: [0, 10], entities: {x} }.
interval g2 { duration: [20, 30], entities: {x} }.
merged(G1 + G2) :- Interval(G1), Interval(G2), x in G1.entities, x in G2.entities.
?- merged(G).
`
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := script.Apply(st); err != nil {
		t.Fatal(err)
	}
	e, err := datalog.NewEngine(st, script.Program())
	if err != nil {
		t.Fatal(err)
	}
	oids, err := e.QueryOIDs(script.Queries[0].Atom)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 3 { // g1, g2, g1+g2
		t.Errorf("merged = %v", oids)
	}
	obj := e.Object("g1+g2")
	if obj == nil || !obj.Duration().Equal(interval.FromPairs(0, 10, 20, 30)) {
		t.Errorf("created object = %v", obj)
	}
}

func TestConstraintStartingWithConstant(t *testing.T) {
	script, err := Parse(`object x { d: (5 < t and t < 10) }.`)
	if err != nil {
		t.Fatal(err)
	}
	want := object.Temporal(interval.New(interval.Open(5, 10)))
	if got := script.Objects[0].Attr("d"); !got.Equal(want) {
		t.Errorf("d = %v, want %v", got, want)
	}
	// And as an entailment right-hand side.
	r, err := ParseRule("q(G) :- Interval(G), G.duration => (0 < t and t < 100)")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 2 {
		t.Errorf("body = %v", r.Body)
	}
}
