package parser

import (
	"fmt"
	"strconv"

	"videodb/internal/constraint"
	"videodb/internal/datalog"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// Script is the result of parsing a VideoQL source: the database content
// (objects and facts), the program rules, and the queries, in source
// order.
type Script struct {
	Objects []*object.Object
	Facts   []store.Fact
	Rules   []datalog.Rule
	Queries []Query
}

// Query is a parsed query. Single-atom queries over a predicate are
// answered directly; conjunctive queries synthesize a helper rule that
// must be added to the program (Rule non-nil).
type Query struct {
	Atom datalog.RelAtom
	Rule *datalog.Rule
	Text string
}

// Program returns the script's rules plus any query helper rules, as a
// validated-by-construction program (validation still happens at engine
// construction).
func (s *Script) Program() datalog.Program {
	rules := append([]datalog.Rule(nil), s.Rules...)
	for _, q := range s.Queries {
		if q.Rule != nil {
			rules = append(rules, *q.Rule)
		}
	}
	return datalog.NewProgram(rules...)
}

// Apply loads the script's objects and facts into the store.
func (s *Script) Apply(st *store.Store) error {
	for _, o := range s.Objects {
		if err := st.Put(o); err != nil {
			return err
		}
	}
	for _, f := range s.Facts {
		st.AddFact(f)
	}
	return nil
}

// Parse parses a full VideoQL script.
func Parse(src string) (*Script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	script := &Script{}
	for p.cur().kind != tokEOF {
		if err := p.statement(script); err != nil {
			return nil, err
		}
	}
	return script, nil
}

// ParseRule parses a single rule (the trailing period is optional).
func ParseRule(src string) (datalog.Rule, error) {
	toks, err := lex(src)
	if err != nil {
		return datalog.Rule{}, err
	}
	p := &parser{toks: toks}
	r, err := p.ruleOrFact()
	if err != nil {
		return datalog.Rule{}, err
	}
	if p.cur().kind == tokDot {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return datalog.Rule{}, p.errf("unexpected %s after rule", p.cur())
	}
	if r.fact != nil {
		return datalog.Rule{}, p.errf("expected a rule, got a ground fact")
	}
	return *r.rule, nil
}

// ParseQuery parses a single query, with or without the leading "?-" (the
// trailing period is optional).
func ParseQuery(src string) (Query, error) {
	toks, err := lex(src)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	if p.cur().kind == tokQuery {
		p.next()
	}
	q, err := p.query(0, src)
	if err != nil {
		return Query{}, err
	}
	if p.cur().kind == tokDot {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return Query{}, p.errf("unexpected %s after query", p.cur())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) peek2() token {
	return p.toks[min(p.pos+2, len(p.toks)-1)]
}
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(format string, args ...interface{}) error {
	return p.errAt(p.cur(), format, args...)
}

// errAt reports an error positioned at an explicit token — used when the
// offending construct started earlier than the current token (e.g. rule
// validation failures point at the rule, not the trailing period).
func (p *parser) errAt(t token, format string, args ...interface{}) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// tokPos converts a token's location to an AST position.
func tokPos(t token) datalog.Pos { return datalog.Pos{Line: t.line, Col: t.col} }

// litAt stamps a literal with its source position.
func litAt(l datalog.Literal, t token) datalog.Literal {
	pos := tokPos(t)
	switch a := l.(type) {
	case datalog.RelAtom:
		a.Pos = pos
		return a
	case datalog.ClassAtom:
		a.Pos = pos
		return a
	case datalog.CmpAtom:
		a.Pos = pos
		return a
	case datalog.MemberAtom:
		a.Pos = pos
		return a
	case datalog.EntailAtom:
		a.Pos = pos
		return a
	case datalog.TemporalAtom:
		a.Pos = pos
		return a
	case datalog.NotAtom:
		a.Pos = pos
		return a
	}
	return l
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %s", tokenNames[kind], p.cur())
	}
	return p.next(), nil
}

// isVariable implements the paper's convention: identifiers starting with
// an upper-case letter are variables.
func isVariable(name string) bool {
	if name == "" {
		return false
	}
	r := rune(name[0])
	return r >= 'A' && r <= 'Z'
}

func (p *parser) statement(script *Script) error {
	t := p.cur()
	switch {
	case t.kind == tokQuery:
		p.next()
		q, err := p.query(len(script.Queries), "")
		if err != nil {
			return err
		}
		script.Queries = append(script.Queries, q)
		_, err = p.expect(tokDot)
		return err

	case t.kind == tokIdent && (t.text == "interval" || t.text == "object") &&
		p.peek().kind == tokIdent && p.peek2().kind == tokLBrace:
		obj, err := p.objectDef()
		if err != nil {
			return err
		}
		script.Objects = append(script.Objects, obj)
		_, err = p.expect(tokDot)
		return err

	case t.kind == tokIdent:
		rf, err := p.ruleOrFact()
		if err != nil {
			return err
		}
		if rf.fact != nil {
			script.Facts = append(script.Facts, *rf.fact)
		} else {
			script.Rules = append(script.Rules, *rf.rule)
		}
		_, err = p.expect(tokDot)
		return err

	default:
		return p.errf("expected a statement, got %s", t)
	}
}

// --- Object definitions -------------------------------------------------------

func (p *parser) objectDef() (*object.Object, error) {
	kindTok := p.next() // "interval" or "object"
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if isVariable(nameTok.text) {
		return nil, p.errf("object identity %q must not start with an upper-case letter", nameTok.text)
	}
	kind := object.Entity
	if kindTok.text == "interval" {
		kind = object.GenInterval
	}
	obj := object.New(object.OID(nameTok.text), kind)
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRBrace {
		attrTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		obj.Set(attrTok.text, v)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return obj, nil
}

// value parses a constant value: number, string, object reference, set
// literal, interval literal, or parenthesized temporal constraint.
func (p *parser) value() (object.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return object.Null(), p.errf("bad number %q", t.text)
		}
		return object.Num(f), nil
	case tokString:
		p.next()
		return object.Str(t.text), nil
	case tokIdent:
		if isVariable(t.text) {
			return object.Null(), p.errf("variable %s not allowed in a constant value", t.text)
		}
		p.next()
		return object.Ref(object.OID(t.text)), nil
	case tokLBrace:
		p.next()
		var elems []object.Value
		for p.cur().kind != tokRBrace {
			v, err := p.value()
			if err != nil {
				return object.Null(), err
			}
			elems = append(elems, v)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return object.Null(), err
		}
		return object.Set(elems...), nil
	case tokLBracket:
		g, err := p.temporalLiteral()
		if err != nil {
			return object.Null(), err
		}
		return object.Temporal(g), nil
	case tokLParen:
		// "(lo, hi)" is an open time span; "(t > 5 and …)" — or
		// "(5 < t …)" — is a constraint. The comma disambiguates.
		if p.peek().kind == tokNumber && p.peek2().kind == tokComma {
			g, err := p.temporalLiteral()
			if err != nil {
				return object.Null(), err
			}
			return object.Temporal(g), nil
		}
		g, err := p.temporalConstraint()
		if err != nil {
			return object.Null(), err
		}
		return object.Temporal(g), nil
	default:
		return object.Null(), p.errf("expected a value, got %s", t)
	}
}

// temporalLiteral parses a union of spans: "[0,30]", "(0,30) + [40,80]".
func (p *parser) temporalLiteral() (interval.Generalized, error) {
	var spans []interval.Span
	for {
		s, err := p.span()
		if err != nil {
			return interval.Generalized{}, err
		}
		spans = append(spans, s)
		if p.cur().kind == tokPlus {
			p.next()
			continue
		}
		return interval.New(spans...), nil
	}
}

func (p *parser) span() (interval.Span, error) {
	var s interval.Span
	switch p.cur().kind {
	case tokLBracket:
		p.next()
	case tokLParen:
		s.LoOpen = true
		p.next()
	default:
		return s, p.errf("expected '[' or '(' starting a time interval, got %s", p.cur())
	}
	lo, err := p.numberValue()
	if err != nil {
		return s, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return s, err
	}
	hi, err := p.numberValue()
	if err != nil {
		return s, err
	}
	switch p.cur().kind {
	case tokRBracket:
		p.next()
	case tokRParen:
		s.HiOpen = true
		p.next()
	default:
		return s, p.errf("expected ']' or ')' ending a time interval, got %s", p.cur())
	}
	s.Lo, s.Hi = lo, hi
	if s.IsEmpty() {
		return s, p.errf("empty time interval [%g,%g]", lo, hi)
	}
	return s, nil
}

func (p *parser) numberValue() (float64, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q", t.text)
	}
	return f, nil
}

// temporalConstraint parses "(t > 0 and t < 30 or t > 50)" — a dense
// linear order constraint over a single time variable — and returns its
// solution set.
func (p *parser) temporalConstraint() (interval.Generalized, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return interval.Generalized{}, err
	}
	f, v, err := p.orExpr("")
	if err != nil {
		return interval.Generalized{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return interval.Generalized{}, err
	}
	if v == "" {
		v = "t"
	}
	return f.ToInterval(v)
}

func (p *parser) orExpr(v string) (constraint.Formula, string, error) {
	f, v, err := p.andExpr(v)
	if err != nil {
		return nil, v, err
	}
	for p.cur().kind == tokIdent && p.cur().text == "or" {
		p.next()
		g, v2, err := p.andExpr(v)
		if err != nil {
			return nil, v2, err
		}
		v = v2
		f = f.Or(g)
	}
	return f, v, nil
}

func (p *parser) andExpr(v string) (constraint.Formula, string, error) {
	f, v, err := p.constraintPrim(v)
	if err != nil {
		return nil, v, err
	}
	for p.cur().kind == tokIdent && p.cur().text == "and" {
		p.next()
		g, v2, err := p.constraintPrim(v)
		if err != nil {
			return nil, v2, err
		}
		v = v2
		f = f.And(g)
	}
	return f, v, nil
}

func (p *parser) constraintPrim(v string) (constraint.Formula, string, error) {
	if p.cur().kind == tokLParen {
		p.next()
		f, v, err := p.orExpr(v)
		if err != nil {
			return nil, v, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, v, err
		}
		return f, v, nil
	}
	left, v, err := p.constraintTerm(v)
	if err != nil {
		return nil, v, err
	}
	opTok, err := p.expect(tokOp)
	if err != nil {
		return nil, v, err
	}
	op, err := constraint.ParseOp(opTok.text)
	if err != nil {
		return nil, v, p.errf("%v", err)
	}
	right, v, err := p.constraintTerm(v)
	if err != nil {
		return nil, v, err
	}
	return constraint.FromAtom(constraint.NewAtom(left, op, right)), v, nil
}

func (p *parser) constraintTerm(v string) (constraint.Term, string, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return constraint.Term{}, v, p.errf("bad number %q", t.text)
		}
		return constraint.C(f), v, nil
	case tokIdent:
		p.next()
		if v == "" {
			v = t.text
		} else if t.text != v {
			return constraint.Term{}, v, p.errf(
				"temporal constraint must use a single time variable (%q and %q)", v, t.text)
		}
		return constraint.V(t.text), v, nil
	default:
		return constraint.Term{}, v, p.errf("expected a time variable or number, got %s", t)
	}
}

// --- Rules, facts and queries --------------------------------------------------

type ruleOrFact struct {
	rule *datalog.Rule
	fact *store.Fact
}

func (p *parser) ruleOrFact() (ruleOrFact, error) {
	start := p.cur()
	var label string
	if p.cur().kind == tokIdent && p.peek().kind == tokColon && p.peek2().kind == tokIdent {
		label = p.next().text
		p.next() // colon
	}
	head, err := p.headAtom()
	if err != nil {
		return ruleOrFact{}, err
	}
	if p.cur().kind != tokTurnstile {
		// A ground head is a fact.
		fact, err := atomToFact(head)
		if err != nil {
			return ruleOrFact{}, p.errAt(start, "%v", err)
		}
		if label != "" {
			return ruleOrFact{}, p.errAt(start, "facts cannot carry a rule label")
		}
		return ruleOrFact{fact: &fact}, nil
	}
	p.next() // :-
	body, err := p.body()
	if err != nil {
		return ruleOrFact{}, err
	}
	r := datalog.NewRule(head, body...).Named(label)
	r.Pos = tokPos(start)
	if err := r.Validate(); err != nil {
		return ruleOrFact{}, p.errAt(start, "%v", err)
	}
	return ruleOrFact{rule: &r}, nil
}

func atomToFact(a datalog.RelAtom) (store.Fact, error) {
	args := make([]object.Value, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() || t.IsConcat() {
			return store.Fact{}, fmt.Errorf("fact %s must be ground", a)
		}
		args[i] = t.Value()
	}
	return store.NewFact(a.Pred, args...), nil
}

func (p *parser) query(n int, text string) (Query, error) {
	start := p.cur()
	body, err := p.body()
	if err != nil {
		return Query{}, err
	}
	// A single relational atom queries the predicate directly.
	if len(body) == 1 {
		if rel, ok := body[0].(datalog.RelAtom); ok && rel.Pred != "Interval" && rel.Pred != "Object" {
			return Query{Atom: rel, Text: text}, nil
		}
	}
	// Otherwise synthesize q_n(vars) :- body.
	vars := map[string]bool{}
	var order []string
	for _, l := range body {
		for _, v := range datalog.VarsOf(l) {
			if !vars[v] {
				vars[v] = true
				order = append(order, v)
			}
		}
	}
	args := make([]datalog.Term, len(order))
	for i, v := range order {
		args[i] = datalog.Var(v)
	}
	head := datalog.Rel(fmt.Sprintf("query_%d", n), args...)
	head.Pos = tokPos(start)
	rule := datalog.NewRule(head, body...)
	rule.Pos = tokPos(start)
	if err := rule.Validate(); err != nil {
		return Query{}, p.errAt(start, "%v", err)
	}
	return Query{Atom: head, Rule: &rule, Text: text}, nil
}

func (p *parser) body() ([]datalog.Literal, error) {
	var body []datalog.Literal
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		body = append(body, lit)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		return body, nil
	}
}

// headAtom parses "pred(term, …)" where terms may be concatenations.
func (p *parser) headAtom() (datalog.RelAtom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return datalog.RelAtom{}, err
	}
	if isVariable(name.text) {
		return datalog.RelAtom{}, p.errf("predicate %q must not start with an upper-case letter", name.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return datalog.RelAtom{}, err
	}
	var args []datalog.Term
	for p.cur().kind != tokRParen {
		t, err := p.concatTerm()
		if err != nil {
			return datalog.RelAtom{}, err
		}
		args = append(args, t)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return datalog.RelAtom{}, err
	}
	a := datalog.Rel(name.text, args...)
	a.Pos = tokPos(name)
	return a, nil
}

// concatTerm parses "term (+ term)*" as a left-nested concatenation.
func (p *parser) concatTerm() (datalog.Term, error) {
	t, err := p.term()
	if err != nil {
		return datalog.Term{}, err
	}
	for p.cur().kind == tokPlus {
		p.next()
		r, err := p.term()
		if err != nil {
			return datalog.Term{}, err
		}
		t = datalog.Concat(t, r)
	}
	return t, nil
}

// term parses a variable or constant value.
func (p *parser) term() (datalog.Term, error) {
	t := p.cur()
	if t.kind == tokIdent && isVariable(t.text) {
		p.next()
		return datalog.Var(t.text), nil
	}
	v, err := p.value()
	if err != nil {
		return datalog.Term{}, err
	}
	return datalog.Const(v), nil
}

// operand parses "term" or "term.attr".
func (p *parser) operand() (datalog.Operand, error) {
	t, err := p.term()
	if err != nil {
		return datalog.Operand{}, err
	}
	if p.cur().kind == tokAttrDot {
		p.next()
		attr, err := p.expect(tokIdent)
		if err != nil {
			return datalog.Operand{}, err
		}
		return datalog.AttrOp(t, attr.text), nil
	}
	return datalog.TermOp(t), nil
}

// literal parses one body literal and stamps it with the position of its
// first token.
func (p *parser) literal() (datalog.Literal, error) {
	start := p.cur()
	l, err := p.literalInner()
	if err != nil {
		return nil, err
	}
	return litAt(l, start), nil
}

func (p *parser) literalInner() (datalog.Literal, error) {
	t := p.cur()

	// Negated relational atom: "not p(t, …)". Only relational atoms can
	// be negated (the stratified-negation extension).
	if t.kind == tokIdent && t.text == "not" &&
		p.peek().kind == tokIdent && p.peek2().kind == tokLParen {
		p.next() // not
		inner, err := p.literal()
		if err != nil {
			return nil, err
		}
		rel, ok := inner.(datalog.RelAtom)
		if !ok {
			return nil, p.errf("only relational atoms can be negated, got %s", inner)
		}
		return datalog.Not(rel), nil
	}

	// Class atoms and relational atoms: IDENT "(" …
	if t.kind == tokIdent && p.peek().kind == tokLParen && !isVariable(t.text) {
		name := p.next().text
		p.next() // (
		var args []datalog.Term
		for p.cur().kind != tokRParen {
			a, err := p.term()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return datalog.Rel(name, args...), nil
	}

	// Built-in class atoms are spelled capitalized: Interval(G), Object(O).
	if t.kind == tokIdent && (t.text == "Interval" || t.text == "Object") && p.peek().kind == tokLParen {
		name := p.next().text
		p.next() // (
		arg, err := p.term()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if name == "Interval" {
			return datalog.Interval(arg), nil
		}
		return datalog.ObjectAtom(arg), nil
	}

	// Set-inclusion constraint: { terms } subset operand.
	if t.kind == tokLBrace {
		p.next()
		var elems []datalog.Operand
		for p.cur().kind != tokRBrace {
			e, err := p.operand()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if kw.text != "subset" && kw.text != "in" {
			return nil, p.errf("expected 'subset' after a set of terms, got %q", kw.text)
		}
		set, err := p.operand()
		if err != nil {
			return nil, err
		}
		return datalog.SubsetAtom(set, elems...), nil
	}

	// Remaining forms start with an operand.
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.cur().kind == tokOp:
		opTok := p.next()
		op, err := constraint.ParseOp(opTok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return datalog.Cmp(left, op, right), nil

	case p.cur().kind == tokImplies:
		p.next()
		right, err := p.entailRight()
		if err != nil {
			return nil, err
		}
		return datalog.Entails(left, right), nil

	case p.cur().kind == tokIdent && p.cur().text == "in":
		p.next()
		set, err := p.operand()
		if err != nil {
			return nil, err
		}
		return datalog.Member(left, set), nil

	case p.cur().kind == tokIdent && isTemporalKeyword(p.cur().text):
		rel, _ := datalog.ParseTemporalRel(p.next().text)
		right, err := p.entailRight()
		if err != nil {
			return nil, err
		}
		return datalog.Temporal(left, rel, right), nil

	default:
		return nil, p.errf("expected a comparison, '=>', or 'in' after %s, got %s", left, p.cur())
	}
}

// isTemporalKeyword recognizes the Allen-style relation keywords of the
// temporal-atom extension.
func isTemporalKeyword(s string) bool {
	_, ok := datalog.ParseTemporalRel(s)
	return ok
}

// entailRight parses the right side of "=>": an attribute operand, a
// temporal literal, or a parenthesized constraint.
func (p *parser) entailRight() (datalog.Operand, error) {
	t := p.cur()
	switch {
	case t.kind == tokLBracket,
		t.kind == tokLParen && p.peek().kind == tokNumber && p.peek2().kind == tokComma:
		g, err := p.temporalLiteral()
		if err != nil {
			return datalog.Operand{}, err
		}
		return datalog.TermOp(datalog.Const(object.Temporal(g))), nil
	case t.kind == tokLParen:
		g, err := p.temporalConstraint()
		if err != nil {
			return datalog.Operand{}, err
		}
		return datalog.TermOp(datalog.Const(object.Temporal(g))), nil
	default:
		return p.operand()
	}
}
