package parser

import (
	"strings"
	"testing"

	"videodb/internal/datalog"
)

// Positions threaded from the lexer into the AST: rules carry the
// position of their first token, literals the position of theirs.
func TestParsePositions(t *testing.T) {
	src := "// leading comment\n" +
		"deep(X) :- rope(X),\n" +
		"    X.tension > 5.\n" +
		"\n" +
		"r2: other(Y) :- rope(Y).\n"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(s.Rules))
	}

	r := s.Rules[0]
	if r.Pos != (datalog.Pos{Line: 2, Col: 1}) {
		t.Errorf("rule pos = %v, want 2:1", r.Pos)
	}
	if r.Head.Pos != (datalog.Pos{Line: 2, Col: 1}) {
		t.Errorf("head pos = %v, want 2:1", r.Head.Pos)
	}
	if got := datalog.PosOf(r.Body[0]); got != (datalog.Pos{Line: 2, Col: 12}) {
		t.Errorf("rope literal pos = %v, want 2:12", got)
	}
	if got := datalog.PosOf(r.Body[1]); got != (datalog.Pos{Line: 3, Col: 5}) {
		t.Errorf("cmp literal pos = %v, want 3:5", got)
	}

	// Labeled rule: position points at the label.
	if s.Rules[1].Pos != (datalog.Pos{Line: 5, Col: 1}) {
		t.Errorf("labeled rule pos = %v, want 5:1", s.Rules[1].Pos)
	}
}

func TestParsePositionsNegationAndQuery(t *testing.T) {
	src := "p(X) :- base(X),\n    not q(X).\n?- p(Z), base(Z).\n"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	not := s.Rules[0].Body[1].(datalog.NotAtom)
	if not.Pos != (datalog.Pos{Line: 2, Col: 5}) {
		t.Errorf("not pos = %v, want 2:5", not.Pos)
	}
	if not.Atom.Pos != (datalog.Pos{Line: 2, Col: 9}) {
		t.Errorf("negated atom pos = %v, want 2:9", not.Atom.Pos)
	}
	if len(s.Queries) != 1 || s.Queries[0].Rule == nil {
		t.Fatalf("queries = %+v", s.Queries)
	}
	if s.Queries[0].Rule.Pos != (datalog.Pos{Line: 3, Col: 4}) {
		t.Errorf("query rule pos = %v, want 3:4", s.Queries[0].Rule.Pos)
	}
}

// Rule-validation errors must point at the rule's first token, not at the
// token after the body, while keeping the established error format.
func TestValidationErrorPosition(t *testing.T) {
	_, err := Parse("ok(X) :- rope(X).\nbad(Y) :-\n    rope(X).\n")
	if err == nil {
		t.Fatal("unsafe rule accepted")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "parse error at line 2, column 1:") {
		t.Errorf("error %q should be positioned at the rule start (2:1)", msg)
	}
}
