package parser

import (
	"testing"

	"videodb/internal/datalog"
)

// FuzzParse checks that the parser never panics and that whatever parses
// successfully round-trips through the printed rule form. Run with
// `go test -fuzz=FuzzParse ./internal/parser` for a real fuzzing session;
// the seed corpus runs as an ordinary test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		ropeScript,
		"q(G) :- Interval(G), o1 in G.entities.",
		"cat(G1 + G2) :- Interval(G1), Interval(G2).",
		"absent(O) :- Object(O), not appears(O, gi1).",
		`interval g { duration: (t > 0 and t < 30 or t = 50), entities: {a} }.`,
		`object o { s: "str \" esc", n: -2.5e3, set: {1, {2, x}} }.`,
		"?- Interval(G), {o1, o2} subset G.entities, G.duration => [0, 10].",
		"p(a, b). q(X) :- p(X, Y), X.a >= Y.b.",
		"% comment\n// comment\np(x).",
		"?- q(X), X != y.",
		"", "....", "q(", ")(", "\x00", "interval { }.", "object X {}.",
		"q(X) :- p(X), X => [1,2].",
		"cut(X, Y) :- Interval(X), Interval(Y), X.duration meets Y.duration.",
		"lonely(O) :- Object(O), not appears(O, g2).",
		"scored(O, S) :- Object(O), O.score = S.",
		"q(G) :- Interval(G), G.duration => (0 < t and t < 100).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Whatever parsed must print and re-parse to the same rendering.
		for _, r := range script.Rules {
			printed := r.String()
			r2, err := ParseRule(printed)
			if err != nil {
				t.Fatalf("re-parse of %q failed: %v", printed, err)
			}
			if r2.String() != printed {
				t.Fatalf("print∘parse unstable: %q vs %q", printed, r2.String())
			}
		}
		for _, o := range script.Objects {
			if o.OID() == "" {
				t.Fatal("parsed object with empty oid")
			}
		}
		// Validated rules must be accepted by the engine layer.
		if err := script.Program().Validate(); err != nil {
			t.Fatalf("parsed program fails validation: %v", err)
		}
		_ = datalog.NewProgram(script.Rules...)
	})
}
