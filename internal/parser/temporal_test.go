package parser

import (
	"testing"

	"videodb/internal/datalog"
	"videodb/internal/store"
)

func TestParseTemporalAtoms(t *testing.T) {
	cases := []string{
		"q(X, Y) :- Interval(X), Interval(Y), X.duration before Y.duration",
		"q(X, Y) :- Interval(X), Interval(Y), X.duration overlaps Y.duration",
		"q(X) :- Interval(X), X.duration during [0, 100]",
		"q(X) :- Interval(X), X.duration meets (t > 10 and t < 20)",
		"q(X, Y) :- Interval(X), Interval(Y), X.duration contains Y.duration",
		"q(X, Y) :- Interval(X), Interval(Y), X.duration equals Y.duration",
		"q(X, Y) :- Interval(X), Interval(Y), X.duration after Y.duration",
		"q(X, Y) :- Interval(X), Interval(Y), X.duration metby Y.duration",
	}
	for _, src := range cases {
		r, err := ParseRule(src)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", src, err)
			continue
		}
		found := false
		for _, l := range r.Body {
			if _, ok := l.(datalog.TemporalAtom); ok {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: no temporal atom parsed", src)
			continue
		}
		printed := r.String()
		r2, err := ParseRule(printed)
		if err != nil || r2.String() != printed {
			t.Errorf("round trip %q -> %q: %v", printed, r2.String(), err)
		}
	}
}

func TestTemporalAtomEndToEnd(t *testing.T) {
	script, err := Parse(`
interval morning { duration: [6, 12) }.
interval noon    { duration: [12, 14) }.
interval evening { duration: [18, 24) }.
sequence_cut(X, Y) :- Interval(X), Interval(Y), X.duration meets Y.duration.
gap_after(X, Y) :- Interval(X), Interval(Y), X.duration before Y.duration,
                   not sequence_cut(X, Y).
?- sequence_cut(X, Y).
?- gap_after(X, Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := script.Apply(st); err != nil {
		t.Fatal(err)
	}
	e, err := datalog.NewEngine(st, script.Program())
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := e.Query(script.Queries[0].Atom)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 1 { // morning meets noon
		t.Errorf("cuts = %v", cuts)
	}
	gaps, err := e.Query(script.Queries[1].Atom)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 2 { // morning->evening, noon->evening (before but not meets)
		t.Errorf("gaps = %v", gaps)
	}
}

func TestTemporalKeywordAsRelationName(t *testing.T) {
	// The keywords stay usable as ordinary predicate names in call
	// position.
	r, err := ParseRule("q(X) :- before(X), contains(X, X)")
	if err != nil {
		t.Fatal(err)
	}
	if rel, ok := r.Body[0].(datalog.RelAtom); !ok || rel.Pred != "before" {
		t.Errorf("body[0] = %v", r.Body[0])
	}
}
