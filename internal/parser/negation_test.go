package parser

import (
	"strings"
	"testing"

	"videodb/internal/datalog"
	"videodb/internal/store"
)

func TestParseNegation(t *testing.T) {
	r, err := ParseRule("absent(O) :- Object(O), not appears(O, gi1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 2 {
		t.Fatalf("body = %v", r.Body)
	}
	neg, ok := r.Body[1].(datalog.NotAtom)
	if !ok {
		t.Fatalf("second literal = %T", r.Body[1])
	}
	if neg.Atom.Pred != "appears" || len(neg.Atom.Args) != 2 {
		t.Errorf("negated atom = %v", neg)
	}
	// Print∘parse stability.
	printed := r.String()
	r2, err := ParseRule(printed)
	if err != nil || r2.String() != printed {
		t.Errorf("round trip %q -> %q (%v)", printed, r2.String(), err)
	}
}

func TestParseNegationErrors(t *testing.T) {
	// Unsafe: variable only under negation.
	if _, err := ParseRule("q(X) :- p(X), not r(Y)"); err == nil ||
		!strings.Contains(err.Error(), "range-restricted") {
		t.Error("negation must not bind variables")
	}
	// "not" as a relation name still works when called directly.
	r, err := ParseRule("q(X) :- not(X)")
	if err != nil {
		t.Fatalf("relation named not: %v", err)
	}
	if rel, ok := r.Body[0].(datalog.RelAtom); !ok || rel.Pred != "not" {
		t.Errorf("body = %v", r.Body)
	}
}

func TestNegationEndToEndScript(t *testing.T) {
	script, err := Parse(`
interval g1 { duration: [0, 10], entities: {a, b} }.
interval g2 { duration: [20, 30], entities: {b} }.
object a { name: "Reporter" }.
object b { name: "Minister" }.
appears(O, G) :- Interval(G), Object(O), O in G.entities.
lonely(O) :- Object(O), not appears(O, g2).
?- lonely(O).
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := script.Apply(st); err != nil {
		t.Fatal(err)
	}
	e, err := datalog.NewEngine(st, script.Program())
	if err != nil {
		t.Fatal(err)
	}
	oids, err := e.QueryOIDs(script.Queries[0].Atom)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 1 || oids[0] != "a" {
		t.Errorf("lonely = %v", oids)
	}
}
