package store

import (
	"fmt"
	"math/rand"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// Model-based test: a random sequence of mutations is applied in parallel
// to a durable store (closed and reopened several times mid-sequence, so
// WAL replay is exercised) and to a plain in-memory store acting as the
// oracle. After every reopen and at the end, the two must agree on
// objects, facts and index-backed query results.

type storeOp struct {
	kind string // put-entity, put-interval, update, delete, addfact, delfact, checkpoint
	oid  object.OID
	attr string
	val  float64
	fact Fact
}

func randomOps(r *rand.Rand, n int) []storeOp {
	oids := []object.OID{"a", "b", "c", "d", "e", "f"}
	var ops []storeOp
	for i := 0; i < n; i++ {
		oid := oids[r.Intn(len(oids))]
		switch r.Intn(10) {
		case 0, 1:
			ops = append(ops, storeOp{kind: "put-entity", oid: oid, val: float64(r.Intn(10))})
		case 2, 3:
			ops = append(ops, storeOp{kind: "put-interval", oid: oid, val: float64(r.Intn(50))})
		case 4:
			ops = append(ops, storeOp{kind: "update", oid: oid, val: float64(r.Intn(10))})
		case 5:
			ops = append(ops, storeOp{kind: "delete", oid: oid})
		case 6, 7:
			ops = append(ops, storeOp{kind: "addfact",
				fact: RefFact(fmt.Sprintf("r%d", r.Intn(3)), oid, oids[r.Intn(len(oids))])})
		case 8:
			ops = append(ops, storeOp{kind: "delfact",
				fact: RefFact(fmt.Sprintf("r%d", r.Intn(3)), oid, oids[r.Intn(len(oids))])})
		default:
			ops = append(ops, storeOp{kind: "checkpoint"})
		}
	}
	return ops
}

func applyOp(t *testing.T, s *Store, op storeOp, durable bool) {
	t.Helper()
	switch op.kind {
	case "put-entity":
		if err := s.Put(object.NewEntity(op.oid).Set("v", object.Num(op.val))); err != nil {
			t.Fatal(err)
		}
	case "put-interval":
		o := object.NewInterval(op.oid, interval.FromPairs(op.val, op.val+5)).
			Set(object.AttrEntities, object.RefSet("x"))
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	case "update":
		// Missing objects are allowed to fail identically on both sides.
		_ = s.Update(op.oid, func(o *object.Object) error {
			o.Set("v", object.Num(op.val))
			return nil
		})
	case "delete":
		s.Delete(op.oid)
	case "addfact":
		s.AddFact(op.fact)
	case "delfact":
		s.DeleteFact(op.fact)
	case "checkpoint":
		if durable {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func assertStoresEqual(t *testing.T, got, want *Store) {
	t.Helper()
	if g, w := got.OIDs(), want.OIDs(); len(g) != len(w) {
		t.Fatalf("object count: %v vs %v", g, w)
	}
	for _, oid := range want.OIDs() {
		a, b := got.Get(oid), want.Get(oid)
		if a == nil || !a.Equal(b) {
			t.Fatalf("object %s: %v vs %v", oid, a, b)
		}
	}
	if g, w := got.Relations(), want.Relations(); len(g) != len(w) {
		t.Fatalf("relations: %v vs %v", g, w)
	}
	for _, rel := range want.Relations() {
		gf, wf := got.Facts(rel), want.Facts(rel)
		if len(gf) != len(wf) {
			t.Fatalf("%s: %d vs %d facts", rel, len(gf), len(wf))
		}
		for i := range wf {
			if !gf[i].Equal(wf[i]) {
				t.Fatalf("%s fact %d: %v vs %v", rel, i, gf[i], wf[i])
			}
		}
	}
	// Index-backed queries agree too.
	if g, w := got.IntervalsContaining("x"), want.IntervalsContaining("x"); len(g) != len(w) {
		t.Fatalf("IntervalsContaining: %v vs %v", g, w)
	}
	gw := got.IntervalsOverlapping(interval.Closed(0, 60))
	ww := want.IntervalsOverlapping(interval.Closed(0, 60))
	if len(gw) != len(ww) {
		t.Fatalf("IntervalsOverlapping: %v vs %v", gw, ww)
	}
}

func TestDurableStoreMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			durable, err := OpenDurable(dir)
			if err != nil {
				t.Fatal(err)
			}
			oracle := New()

			ops := randomOps(r, 120)
			for i, op := range ops {
				applyOp(t, durable, op, true)
				applyOp(t, oracle, op, false)
				// Periodically crash-cycle the durable store.
				if i%37 == 36 {
					if err := durable.Close(); err != nil {
						t.Fatal(err)
					}
					durable, err = OpenDurable(dir)
					if err != nil {
						t.Fatal(err)
					}
					assertStoresEqual(t, durable, oracle)
				}
			}
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := OpenDurable(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			assertStoresEqual(t, reopened, oracle)
		})
	}
}
