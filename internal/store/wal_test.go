package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

func openDurable(t *testing.T, dir string, opts ...DurableOption) *Store {
	t.Helper()
	s, err := OpenDurable(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	if err := s.Put(object.NewEntity("o1").Set("name", object.Str("David"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(object.NewInterval("gi1", interval.FromPairs(0, 30)).
		Set(object.AttrEntities, object.RefSet("o1"))); err != nil {
		t.Fatal(err)
	}
	s.AddFact(RefFact("in", "o1", "gi1"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir)
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("recovered %d objects", re.Len())
	}
	if got := re.Get("o1").Attr("name"); !got.Equal(object.Str("David")) {
		t.Errorf("recovered o1 = %v", re.Get("o1"))
	}
	if !re.HasFact(RefFact("in", "o1", "gi1")) {
		t.Error("fact lost")
	}
	// Indexes rebuilt from the replay.
	if got := re.IntervalsContaining("o1"); len(got) != 1 || got[0] != "gi1" {
		t.Errorf("index after recovery = %v", got)
	}
}

func TestDurableUpdateDeleteReplay(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	s.Put(object.NewEntity("a").Set("v", object.Num(1)))
	s.Put(object.NewEntity("b"))
	if err := s.Update("a", func(o *object.Object) error {
		o.Set("v", object.Num(2))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Delete("b")
	s.AddFact(RefFact("r", "a"))
	s.DeleteFact(RefFact("r", "a"))
	s.Close()

	re := openDurable(t, dir)
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("recovered %d objects, want 1", re.Len())
	}
	if got := re.Get("a").Attr("v"); !got.Equal(object.Num(2)) {
		t.Errorf("update lost: %v", got)
	}
	if re.HasFact(RefFact("r", "a")) {
		t.Error("deleted fact resurrected")
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	for i := 0; i < 20; i++ {
		s.Put(object.NewEntity(object.OID(string(rune('a' + i)))))
	}
	walPath := filepath.Join(dir, walFileName)
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() == 0 {
		t.Fatal("log should have content")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 0 {
		t.Errorf("log size after checkpoint = %d", after.Size())
	}
	// Post-checkpoint mutations land in the fresh log.
	s.Put(object.NewEntity("post"))
	s.Close()

	re := openDurable(t, dir)
	defer re.Close()
	if re.Len() != 21 {
		t.Errorf("recovered %d objects, want 21", re.Len())
	}
	if !re.Has("post") {
		t.Error("post-checkpoint object lost")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	s.Put(object.NewEntity("keep1"))
	s.Put(object.NewEntity("keep2"))
	s.Close()

	// Simulate a crash mid-append: half a record at the end.
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"put","object":{"oid":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openDurable(t, dir)
	if re.Len() != 2 || !re.Has("keep1") || !re.Has("keep2") {
		t.Fatalf("recovery after torn tail: %v", re.OIDs())
	}
	// The torn bytes are gone; appending works and survives another
	// recovery.
	re.Put(object.NewEntity("after"))
	re.Close()
	re2 := openDurable(t, dir)
	defer re2.Close()
	if re2.Len() != 3 || !re2.Has("after") {
		t.Fatalf("post-truncation append lost: %v", re2.OIDs())
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	s.Put(object.NewEntity("a"))
	s.Put(object.NewEntity("b"))
	s.Close()

	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected two records, got %q", data)
	}
	// Flip bytes inside the FIRST record: corruption that is not a torn
	// tail must be an error, not a silent skip.
	lines[0] = strings.Replace(lines[0], `"oid":"a"`, `"oid":"x"`, 1)
	if err := os.WriteFile(filepath.Join(dir, walFileName),
		[]byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir); err == nil {
		t.Fatal("mid-log corruption should fail recovery")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error = %v", err)
	}
}

func TestDurableLoadRejected(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	defer s.Close()
	if err := s.Load(strings.NewReader("{}")); err == nil ||
		!strings.Contains(err.Error(), "durable") {
		t.Errorf("Load on durable store: %v", err)
	}
}

func TestCheckpointRequiresDurable(t *testing.T) {
	s := New()
	if err := s.Checkpoint(); err == nil {
		t.Error("Checkpoint on in-memory store should fail")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close on in-memory store should be a no-op: %v", err)
	}
}

func TestDurableSyncOption(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, WithSyncEveryWrite())
	s.Put(object.NewEntity("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir)
	defer re.Close()
	if !re.Has("x") {
		t.Error("synced write lost")
	}
}

func TestDurableWithStoreOptions(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, WithStoreOptions(WithoutEntityIndex()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.disableEntityIdx {
		t.Error("store options not forwarded")
	}
}

func TestDurableEmptyDirIsEmptyStore(t *testing.T) {
	s := openDurable(t, t.TempDir())
	defer s.Close()
	if s.Len() != 0 {
		t.Errorf("fresh durable store has %d objects", s.Len())
	}
}
