package store

import (
	"errors"
	"sync"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

func newTestStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s := NewWith(opts...)
	objs := []*object.Object{
		object.NewEntity("o1").Set("name", object.Str("David")).Set("role", object.Str("Victim")),
		object.NewEntity("o2").Set("name", object.Str("Philip")).Set("role", object.Str("Murderer")),
		object.NewEntity("o3").Set("name", object.Str("Brandon")).Set("role", object.Str("Murderer")),
		object.NewEntity("o4").Set("identification", object.Str("Chest")),
		object.NewInterval("gi1", interval.FromPairs(0, 10)).
			Set(object.AttrEntities, object.RefSet("o1", "o2", "o3", "o4")).
			Set("subject", object.Str("murder")),
		object.NewInterval("gi2", interval.FromPairs(20, 80)).
			Set(object.AttrEntities, object.RefSet("o1", "o2", "o3", "o4")).
			Set("subject", object.Str("Giving a party")),
		object.NewInterval("gi3", interval.FromPairs(5, 25, 40, 50)).
			Set(object.AttrEntities, object.RefSet("o2")).
			Set("subject", object.Str("murder")),
	}
	for _, o := range objs {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	s.AddFact(RefFact("in", "o1", "o4", "gi1"))
	s.AddFact(RefFact("in", "o1", "o4", "gi2"))
	return s
}

func oidsEqual(a []object.OID, b ...object.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPutGetDelete(t *testing.T) {
	s := New()
	if err := s.Put(nil); err == nil {
		t.Error("Put(nil) should error")
	}
	if err := s.Put(object.NewEntity("")); err == nil {
		t.Error("Put with empty oid should error")
	}
	o := object.NewEntity("e1").Set("name", object.Str("x"))
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	// Store keeps a private copy: mutating the original must not leak in.
	o.Set("name", object.Str("changed"))
	if got := s.Get("e1").Attr("name"); !got.Equal(object.Str("x")) {
		t.Errorf("store leaked caller mutation: %v", got)
	}
	// GetCopy is isolated the other way.
	c := s.GetCopy("e1")
	c.Set("name", object.Str("other"))
	if got := s.Get("e1").Attr("name"); !got.Equal(object.Str("x")) {
		t.Errorf("GetCopy mutation leaked: %v", got)
	}
	if s.Get("missing") != nil || s.GetCopy("missing") != nil {
		t.Error("missing object should be nil")
	}
	if !s.Has("e1") || s.Has("zz") {
		t.Error("Has")
	}
	if !s.Delete("e1") || s.Delete("e1") {
		t.Error("Delete should report prior presence")
	}
	if s.Len() != 0 {
		t.Error("store should be empty after delete")
	}
}

func TestKindsAndListing(t *testing.T) {
	s := newTestStore(t)
	if got := s.Entities(); !oidsEqual(got, "o1", "o2", "o3", "o4") {
		t.Errorf("Entities = %v", got)
	}
	if got := s.Intervals(); !oidsEqual(got, "gi1", "gi2", "gi3") {
		t.Errorf("Intervals = %v", got)
	}
	if got := s.OIDs(); len(got) != 7 {
		t.Errorf("OIDs = %v", got)
	}
	var n int
	s.ForEach(func(o *object.Object) bool { n++; return true })
	if n != 7 {
		t.Errorf("ForEach visited %d", n)
	}
	n = 0
	s.ForEach(func(o *object.Object) bool { n++; return false })
	if n != 1 {
		t.Errorf("ForEach early stop visited %d", n)
	}
}

func TestUpdate(t *testing.T) {
	s := newTestStore(t)
	err := s.Update("o1", func(o *object.Object) error {
		o.Set("role", object.Str("Ghost"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Get("o1").Attr("role"); !got.Equal(object.Str("Ghost")) {
		t.Errorf("after update: %v", got)
	}
	if err := s.Update("nope", func(*object.Object) error { return nil }); err == nil {
		t.Error("Update of missing oid should error")
	}
	sentinel := errors.New("boom")
	if err := s.Update("o1", func(*object.Object) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Update should propagate fn error, got %v", err)
	}
	// fn error must not change the object.
	if got := s.Get("o1").Attr("role"); !got.Equal(object.Str("Ghost")) {
		t.Errorf("failed update mutated object: %v", got)
	}
}

func TestEntityIndex(t *testing.T) {
	for _, disabled := range []bool{false, true} {
		var s *Store
		if disabled {
			s = newTestStore(t, WithoutEntityIndex())
		} else {
			s = newTestStore(t)
		}
		if got := s.IntervalsContaining("o1"); !oidsEqual(got, "gi1", "gi2") {
			t.Errorf("disabled=%v: IntervalsContaining(o1) = %v", disabled, got)
		}
		if got := s.IntervalsContaining("o2"); !oidsEqual(got, "gi1", "gi2", "gi3") {
			t.Errorf("disabled=%v: IntervalsContaining(o2) = %v", disabled, got)
		}
		if got := s.IntervalsContaining("nobody"); len(got) != 0 {
			t.Errorf("disabled=%v: IntervalsContaining(nobody) = %v", disabled, got)
		}
		// Index follows updates.
		if err := s.Update("gi3", func(o *object.Object) error {
			o.Set(object.AttrEntities, object.RefSet("o4"))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := s.IntervalsContaining("o2"); !oidsEqual(got, "gi1", "gi2") {
			t.Errorf("disabled=%v: after update = %v", disabled, got)
		}
		if got := s.IntervalsContaining("o4"); !oidsEqual(got, "gi1", "gi2", "gi3") {
			t.Errorf("disabled=%v: o4 after update = %v", disabled, got)
		}
		// Index follows deletes.
		s.Delete("gi1")
		if got := s.IntervalsContaining("o1"); !oidsEqual(got, "gi2") {
			t.Errorf("disabled=%v: after delete = %v", disabled, got)
		}
	}
}

func TestAttrIndex(t *testing.T) {
	for _, disabled := range []bool{false, true} {
		var s *Store
		if disabled {
			s = newTestStore(t, WithoutAttrIndex())
		} else {
			s = newTestStore(t)
		}
		if got := s.FindByAttr("role", object.Str("Murderer")); !oidsEqual(got, "o2", "o3") {
			t.Errorf("disabled=%v: FindByAttr(role=Murderer) = %v", disabled, got)
		}
		if got := s.FindByAttr("subject", object.Str("murder")); !oidsEqual(got, "gi1", "gi3") {
			t.Errorf("disabled=%v: FindByAttr(subject=murder) = %v", disabled, got)
		}
		if got := s.FindByAttr("role", object.Str("Nobody")); len(got) != 0 {
			t.Errorf("disabled=%v: no match expected, got %v", disabled, got)
		}
		s.Update("o3", func(o *object.Object) error {
			o.Set("role", object.Str("Accomplice"))
			return nil
		})
		if got := s.FindByAttr("role", object.Str("Murderer")); !oidsEqual(got, "o2") {
			t.Errorf("disabled=%v: after update = %v", disabled, got)
		}
	}
}

func TestTemporalQueries(t *testing.T) {
	for _, disabled := range []bool{false, true} {
		var s *Store
		if disabled {
			s = newTestStore(t, WithoutTemporalIndex())
		} else {
			s = newTestStore(t)
		}
		// gi1 [0,10], gi2 [20,80], gi3 [5,25] ∪ [40,50]
		if got := s.IntervalsOverlapping(interval.Closed(0, 4)); !oidsEqual(got, "gi1") {
			t.Errorf("disabled=%v: overlap [0,4] = %v", disabled, got)
		}
		if got := s.IntervalsOverlapping(interval.Closed(8, 22)); !oidsEqual(got, "gi1", "gi2", "gi3") {
			t.Errorf("disabled=%v: overlap [8,22] = %v", disabled, got)
		}
		// The gap of gi3 (25,40): its hull covers the window but the exact
		// duration does not, so only gi2 qualifies.
		if got := s.IntervalsOverlapping(interval.Open(30, 39)); !oidsEqual(got, "gi2") {
			t.Errorf("disabled=%v: gap query = %v", disabled, got)
		}
		if got := s.IntervalsOverlapping(interval.Closed(100, 200)); len(got) != 0 {
			t.Errorf("disabled=%v: far query = %v", disabled, got)
		}
		if got := s.IntervalsWithin(interval.Closed(0, 30)); !oidsEqual(got, "gi1") {
			t.Errorf("disabled=%v: within [0,30] = %v", disabled, got)
		}
		if got := s.IntervalsWithin(interval.Closed(0, 100)); !oidsEqual(got, "gi1", "gi2", "gi3") {
			t.Errorf("disabled=%v: within [0,100] = %v", disabled, got)
		}
		// Writes invalidate the lazily built tree.
		s.Put(object.NewInterval("gi4", interval.FromPairs(100, 110)))
		if got := s.IntervalsOverlapping(interval.Closed(100, 200)); !oidsEqual(got, "gi4") {
			t.Errorf("disabled=%v: after insert = %v", disabled, got)
		}
	}
}

func TestStats(t *testing.T) {
	s := newTestStore(t)
	st := s.Stats()
	if st.Objects != 7 || st.Entities != 4 || st.Intervals != 3 {
		t.Errorf("Stats objects = %+v", st)
	}
	if st.Facts != 2 || st.Relations != 1 {
		t.Errorf("Stats facts = %+v", st)
	}
	if st.IndexTerms == 0 {
		t.Error("expected index terms")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newTestStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				switch j % 4 {
				case 0:
					s.IntervalsContaining("o1")
				case 1:
					s.IntervalsOverlapping(interval.Closed(0, 50))
				case 2:
					s.Put(object.NewEntity(object.OID("tmp")).Set("n", object.Num(float64(i*100+j))))
				default:
					s.Get("o1")
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestFindByAttrRange(t *testing.T) {
	s := New()
	for i, v := range []float64{5, 1, 9, 3, 7, 3} {
		s.Put(object.NewEntity(object.OID(string(rune('a'+i)))).Set("score", object.Num(v)))
	}
	s.Put(object.NewEntity("nostr").Set("score", object.Str("not numeric")))
	s.Put(object.NewEntity("noattr"))

	if got := s.FindByAttrRange("score", interval.Closed(3, 7)); !oidsEqual(got, "a", "d", "e", "f") {
		t.Errorf("[3,7] = %v", got)
	}
	// Open endpoints exclude the bounds.
	if got := s.FindByAttrRange("score", interval.Open(3, 7)); !oidsEqual(got, "a") {
		t.Errorf("(3,7) = %v", got)
	}
	if got := s.FindByAttrRange("score", interval.Closed(100, 200)); len(got) != 0 {
		t.Errorf("far range = %v", got)
	}
	if got := s.FindByAttrRange("score", interval.Span{Lo: 2, Hi: 1}); got != nil {
		t.Errorf("empty span = %v", got)
	}
	if got := s.FindByAttrRange("missing", interval.Closed(0, 10)); len(got) != 0 {
		t.Errorf("unknown attr = %v", got)
	}
	// Index follows writes.
	s.Put(object.NewEntity("z").Set("score", object.Num(4)))
	if got := s.FindByAttrRange("score", interval.Closed(4, 4)); !oidsEqual(got, "z") {
		t.Errorf("after insert = %v", got)
	}
	s.Delete("z")
	if got := s.FindByAttrRange("score", interval.Closed(4, 4)); len(got) != 0 {
		t.Errorf("after delete = %v", got)
	}
	// Unbounded span.
	if got := s.FindByAttrRange("score", interval.AtLeast(7)); !oidsEqual(got, "c", "e") {
		t.Errorf("[7,inf) = %v", got)
	}
}
