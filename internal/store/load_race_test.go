package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"videodb/internal/object"
)

// Regression test for the Load write-path bug: Load used to take the
// write lock in two separate critical sections (clear, then repopulate),
// so a concurrent AddFact/Query could observe a half-reset store, and it
// never bumped schemaVer, so cached query plans survived a wholesale
// snapshot swap. Run under -race: concurrent Loads, asserts, and reads
// must never see a state that is neither the old nor the new snapshot.
func TestLoadConcurrentWithAsserts(t *testing.T) {
	// Snapshot with a known marker object and fact set.
	base := New()
	if err := base.Put(object.NewEntity("snap")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		base.AddFact(NewFact("loaded", object.Num(float64(i))))
	}
	var snap bytes.Buffer
	if err := base.Save(&snap); err != nil {
		t.Fatal(err)
	}
	data := snap.Bytes()

	s := New()
	verBefore := func() uint64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.schemaVer
	}()

	var wg sync.WaitGroup
	start := make(chan struct{})
	// Writers keep asserting into a scratch relation.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				s.AddFact(NewFact("scratch", object.Str(fmt.Sprintf("w%d-%d", w, i))))
			}
		}(w)
	}
	// Readers scan while the swap happens.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				n := 0
				s.ForEachFact("loaded", func(Fact) bool { n++; return true })
				// A scan must see the relation either absent or complete:
				// never a partially-populated snapshot.
				if n != 0 && n != 50 {
					t.Errorf("observed partially loaded relation: %d facts", n)
					return
				}
				_ = s.TotalFacts()
				_ = s.Stats()
			}
		}()
	}
	// Loaders swap in the snapshot repeatedly.
	for l := 0; l < 2; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				if err := s.Load(bytes.NewReader(data)); err != nil {
					t.Errorf("load: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	// The final state is exactly the last snapshot (every Load clears
	// scratch writes that landed before it; writes after the last Load
	// may remain, but "loaded" must be complete either way).
	if got := s.FactCount("loaded"); got != 50 {
		t.Fatalf("loaded facts after concurrent swap = %d, want 50", got)
	}
	if !s.Has("snap") {
		t.Fatal("snapshot object missing after Load")
	}
	// Load must bump schemaVer so plan caches keyed on it are invalidated.
	s.mu.RLock()
	verAfter := s.schemaVer
	s.mu.RUnlock()
	if verAfter <= verBefore {
		t.Fatalf("schemaVer = %d after Load, want > %d", verAfter, verBefore)
	}
}
