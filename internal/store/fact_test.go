package store

import (
	"testing"

	"videodb/internal/object"
)

func TestFactBasics(t *testing.T) {
	f := RefFact("in", "o1", "o4", "gi1")
	if got := f.String(); got != "in(o1, o4, gi1)" {
		t.Errorf("String = %q", got)
	}
	g := NewFact("in", object.Ref("o1"), object.Ref("o4"), object.Ref("gi1"))
	if !f.Equal(g) {
		t.Error("structurally equal facts should be Equal")
	}
	if f.Equal(RefFact("in", "o1", "o4")) {
		t.Error("arity should matter")
	}
	if f.Equal(RefFact("out", "o1", "o4", "gi1")) {
		t.Error("name should matter")
	}
	if f.Equal(RefFact("in", "o1", "o4", "gi2")) {
		t.Error("args should matter")
	}
}

func TestFactStoreOperations(t *testing.T) {
	s := New()
	f := RefFact("in", "o1", "o4", "gi1")
	if !s.AddFact(f) {
		t.Error("first add should report change")
	}
	if s.AddFact(f) {
		t.Error("duplicate add should report no change")
	}
	if !s.HasFact(f) {
		t.Error("HasFact should find it")
	}
	if s.HasFact(RefFact("in", "o9", "o4", "gi1")) {
		t.Error("HasFact false positive")
	}
	if s.AddFact(Fact{Name: ""}) {
		t.Error("empty relation name should be rejected")
	}
	s.AddFact(RefFact("in", "o1", "o4", "gi2"))
	s.AddFact(RefFact("talks_to", "o2", "o3", "gi2"))

	if got := s.Facts("in"); len(got) != 2 {
		t.Errorf("Facts(in) = %v", got)
	}
	if got := s.Relations(); len(got) != 2 || got[0] != "in" || got[1] != "talks_to" {
		t.Errorf("Relations = %v", got)
	}

	// Mutating the returned slice must not affect the store.
	fs := s.Facts("in")
	fs[0] = RefFact("in", "hacked")
	if got := s.Facts("in")[0]; !got.Equal(f) {
		t.Error("Facts return value is not isolated")
	}

	var seen int
	s.ForEachFact("in", func(Fact) bool { seen++; return true })
	if seen != 2 {
		t.Errorf("ForEachFact visited %d", seen)
	}
	seen = 0
	s.ForEachFact("in", func(Fact) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("ForEachFact early stop visited %d", seen)
	}

	if !s.DeleteFact(f) || s.DeleteFact(f) {
		t.Error("DeleteFact should report prior presence")
	}
	if got := s.Facts("in"); len(got) != 1 {
		t.Errorf("after delete: %v", got)
	}
	// Deleting the last fact of a relation removes the relation.
	s.DeleteFact(RefFact("in", "o1", "o4", "gi2"))
	if got := s.Relations(); len(got) != 1 || got[0] != "talks_to" {
		t.Errorf("Relations after drain = %v", got)
	}
}

func TestFactDedupIgnoresArgSliceIdentity(t *testing.T) {
	s := New()
	args := []object.Value{object.Ref("a"), object.Num(1)}
	f := Fact{Name: "r", Args: args}
	s.AddFact(f)
	// Mutating the caller's slice must not corrupt the stored fact.
	args[0] = object.Ref("z")
	got := s.Facts("r")[0]
	if !got.Equal(NewFact("r", object.Ref("a"), object.Num(1))) {
		t.Errorf("stored fact mutated via caller slice: %v", got)
	}
}
