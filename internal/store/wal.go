package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"videodb/internal/object"
)

// Durability: an append-only write-ahead log of mutations with a CRC per
// record, plus periodic checkpoints into the snapshot format. A durable
// store opened with OpenDurable recovers by loading the latest snapshot
// and replaying the log. A torn final record (crash mid-append) is
// detected and truncated; corruption anywhere earlier is reported as an
// error rather than silently skipped.

const (
	walFileName      = "db.wal"
	snapshotFileName = "db.snapshot"
)

type walOp string

const (
	walPut        walOp = "put"
	walDelete     walOp = "delete"
	walAddFact    walOp = "addfact"
	walDeleteFact walOp = "delfact"
)

type walRecord struct {
	Seq    uint64         `json:"seq"`
	Op     walOp          `json:"op"`
	Object *object.Object `json:"object,omitempty"`
	OID    string         `json:"oid,omitempty"`
	Fact   *jsonFact      `json:"fact,omitempty"`
	CRC    uint32         `json:"crc"`
}

func (r walRecord) checksum() (uint32, error) {
	c := r
	c.CRC = 0
	body, err := json.Marshal(c)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(body), nil
}

type wal struct {
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	sync bool
}

func (w *wal) append(rec walRecord) error {
	w.seq++
	rec.Seq = w.seq
	crc, err := rec.checksum()
	if err != nil {
		return err
	}
	rec.CRC = crc
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(append(body, '\n')); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// DurableOption configures OpenDurable.
type DurableOption func(*durableConfig)

type durableConfig struct {
	storeOpts []Option
	sync      bool
}

// WithStoreOptions forwards index options to the underlying store.
func WithStoreOptions(opts ...Option) DurableOption {
	return func(c *durableConfig) { c.storeOpts = append(c.storeOpts, opts...) }
}

// WithSyncEveryWrite fsyncs the log after every record (slow, maximally
// durable). The default flushes to the OS per record without fsync.
func WithSyncEveryWrite() DurableOption {
	return func(c *durableConfig) { c.sync = true }
}

// OpenDurable opens (or creates) a durable store in dir: it loads the
// latest checkpoint snapshot if present, replays the write-ahead log on
// top, truncates a torn tail if the process previously crashed
// mid-append, and attaches the log so every subsequent mutation is
// persisted. Call Close when done and Checkpoint to compact.
func OpenDurable(dir string, opts ...DurableOption) (*Store, error) {
	var cfg durableConfig
	for _, o := range opts {
		o(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := NewWith(cfg.storeOpts...)

	snapPath := filepath.Join(dir, snapshotFileName)
	if _, err := os.Stat(snapPath); err == nil {
		if err := s.LoadFile(snapPath); err != nil {
			return nil, fmt.Errorf("store: loading checkpoint: %w", err)
		}
	}

	walPath := filepath.Join(dir, walFileName)
	lastSeq, err := s.replayWAL(walPath)
	if err != nil {
		return nil, err
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.wal = &wal{f: f, w: bufio.NewWriter(f), seq: lastSeq, sync: cfg.sync}
	s.walDir = dir
	return s, nil
}

// replayWAL applies the log to the store and returns the last applied
// sequence number. A torn final record is truncated away; earlier
// corruption is an error.
func (s *Store) replayWAL(path string) (uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	var (
		lastSeq    uint64
		goodOffset int64
		r          = bufio.NewReader(f)
	)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return 0, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var rec walRecord
			bad := json.Unmarshal(trimmed, &rec) != nil
			if !bad {
				want, cerr := rec.checksum()
				bad = cerr != nil || want != rec.CRC
			}
			if bad {
				// Torn tail if nothing but whitespace follows; otherwise
				// real corruption.
				rest, rerr := io.ReadAll(r)
				if rerr != nil {
					return 0, rerr
				}
				if len(bytes.TrimSpace(rest)) > 0 || !endsLog(line, atEOF) {
					return 0, fmt.Errorf("store: corrupt WAL record at line %d", lineNo)
				}
				if err := os.Truncate(path, goodOffset); err != nil {
					return 0, fmt.Errorf("store: truncating torn WAL tail: %w", err)
				}
				return lastSeq, nil
			}
			if err := s.applyWALRecord(rec); err != nil {
				return 0, fmt.Errorf("store: replaying WAL record %d: %w", rec.Seq, err)
			}
			lastSeq = rec.Seq
			goodOffset += int64(len(line))
		} else {
			goodOffset += int64(len(line))
		}
		if atEOF {
			return lastSeq, nil
		}
	}
}

// endsLog reports whether the bad line plausibly ends the log (a torn
// append): it is the final line, complete or not.
func endsLog(line []byte, atEOF bool) bool {
	return atEOF || len(line) == 0 || line[len(line)-1] == '\n'
}

func (s *Store) applyWALRecord(rec walRecord) error {
	switch rec.Op {
	case walPut:
		if rec.Object == nil {
			return fmt.Errorf("put record without object")
		}
		return s.Put(rec.Object)
	case walDelete:
		s.Delete(object.OID(rec.OID))
		return nil
	case walAddFact:
		if rec.Fact == nil {
			return fmt.Errorf("addfact record without fact")
		}
		s.AddFact(Fact{Name: rec.Fact.Name, Args: rec.Fact.Args})
		return nil
	case walDeleteFact:
		if rec.Fact == nil {
			return fmt.Errorf("delfact record without fact")
		}
		s.DeleteFact(Fact{Name: rec.Fact.Name, Args: rec.Fact.Args})
		return nil
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// walHealthy refuses new mutations once a WAL append has failed: the log
// no longer reflects the store, so acknowledging further writes would
// lose them across recovery. Callers hold s.mu and check this before
// touching state; reads remain available. Reopening the directory with
// OpenDurable recovers exactly the acknowledged prefix.
func (s *Store) walHealthy() error {
	if s.walErr != nil {
		return fmt.Errorf("store: write-ahead log poisoned by an earlier append failure (reopen the store to resume writes): %w", s.walErr)
	}
	return nil
}

// testLogFail, when non-nil, intercepts WAL appends — fault injection for
// the failing-writer tests. Returning a non-nil error simulates an append
// failure without touching the file.
var testLogFail func(rec walRecord) error

// log appends a mutation record if the store is durable. Callers hold
// s.mu, so records are totally ordered with the mutations they describe.
// The first failure latches into walErr: the caller rolls its in-memory
// mutation back (nothing is acknowledged), and every later mutation fails
// fast in walHealthy. Close and Checkpoint surface the error too.
//
// On a backend store, object records route to the backend's own log;
// fact records never reach here (AddFactErr/DeleteFactErr call the
// backend directly).
func (s *Store) log(rec walRecord) error {
	if s.wal == nil && s.backend == nil {
		return nil
	}
	err := error(nil)
	if testLogFail != nil {
		//videolint:ignore lockcheck test-only failure-injection hook, nil outside wal tests
		err = testLogFail(rec)
	}
	if err == nil {
		if s.backend != nil {
			switch rec.Op {
			case walPut:
				err = s.backend.LogPutObject(rec.Object)
			case walDelete:
				err = s.backend.LogDeleteObject(object.OID(rec.OID))
			default:
				err = fmt.Errorf("store: unexpected backend log op %q", rec.Op)
			}
		} else {
			err = s.wal.append(rec)
		}
	}
	if err != nil && s.walErr == nil {
		s.walErr = err
	}
	return err
}

// Checkpoint writes a snapshot of the current state and truncates the
// log. After a crash, recovery loads the snapshot and replays only the
// records appended since.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backend != nil {
		return s.backend.Flush()
	}
	if s.wal == nil {
		return fmt.Errorf("store: Checkpoint requires a durable store (OpenDurable)")
	}
	if s.walErr != nil {
		return fmt.Errorf("store: earlier WAL append failed: %w", s.walErr)
	}
	if err := s.saveFileLocked(filepath.Join(s.walDir, snapshotFileName)); err != nil {
		return err
	}
	//videolint:ignore lockcheck WAL durability: Checkpoint must flush and truncate under the lock so no acknowledged record is lost
	if err := s.wal.w.Flush(); err != nil {
		return err
	}
	if err := s.wal.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.wal.w.Reset(s.wal.f)
	return nil
}

// Close flushes and closes the write-ahead log (no-op for non-durable
// stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backend != nil {
		return s.backend.Close()
	}
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	if s.walErr != nil {
		return fmt.Errorf("store: a WAL append failed during the session: %w", s.walErr)
	}
	return err
}
