package store

import (
	"sort"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// Numeric attribute range scans. The hash index of FindByAttr answers
// equality only; FindByAttrRange answers "attr within [lo, hi]" over a
// sorted per-attribute index that is rebuilt lazily after writes, like
// the interval tree. Applications use it for feature-valued attributes
// (scores, screen coordinates, histogram distances).

type numEntry struct {
	value float64
	oid   object.OID
}

// FindByAttrRange returns the sorted oids of objects whose attribute attr
// holds a numeric value within the span (endpoint openness honoured).
// Objects whose attribute is missing or non-numeric never match.
//
// Concurrent readers share the cached per-attribute index under a read
// lock; only a cache miss (first query after a write) takes the write
// lock, re-checking the cache before rebuilding (double-checked rebuild).
func (s *Store) FindByAttrRange(attr string, within interval.Span) []object.OID {
	if within.IsEmpty() {
		return nil
	}
	s.mu.RLock()
	entries, ok := []numEntry(nil), false
	if s.numIdxOK {
		entries, ok = s.numIdx[attr]
	}
	s.mu.RUnlock()
	if !ok {
		// Entry slices are immutable once published (writes invalidate by
		// replacing the whole map), so scanning outside the lock is safe.
		//videolint:ignore lockcheck double-checked locking: numericIndexLocked re-validates the index state under the write lock before rebuilding
		s.mu.Lock()
		entries = s.numericIndexLocked(attr)
		s.mu.Unlock()
	}

	// Binary-search the first candidate, then walk while within range.
	start := sort.Search(len(entries), func(i int) bool { return entries[i].value >= within.Lo })
	var out []object.OID
	for _, e := range entries[start:] {
		if e.value > within.Hi {
			break
		}
		if within.Contains(e.value) {
			out = append(out, e.oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// numericIndexLocked returns the sorted numeric entries for the
// attribute, rebuilding the per-attribute index if writes invalidated it.
// Caller holds s.mu.
func (s *Store) numericIndexLocked(attr string) []numEntry {
	if !s.numIdxOK {
		s.numIdx = make(map[string][]numEntry)
		s.numIdxOK = true
	}
	if entries, ok := s.numIdx[attr]; ok {
		return entries
	}
	var entries []numEntry
	for oid, o := range s.objects {
		if n, ok := o.Attr(attr).AsNumber(); ok {
			entries = append(entries, numEntry{value: n, oid: oid})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].value != entries[j].value {
			return entries[i].value < entries[j].value
		}
		return entries[i].oid < entries[j].oid
	})
	s.numIdx[attr] = entries
	return entries
}
