package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// Tests for the PR5 store write-path fixes: WAL error latching with
// fail-fast mutations (no acknowledged-then-lost writes), the
// reader-parallel range index, tombstone-based fact deletion, the
// changelog, and crash-recovery equivalence at every WAL record
// boundary.

// injectWALFailures makes every WAL append after the first n fail, and
// undoes the hook at test end. Tests using it must not run in parallel.
func injectWALFailures(t *testing.T, allow int) {
	t.Helper()
	seen := 0
	testLogFail = func(walRecord) error {
		seen++
		if seen > allow {
			return errors.New("injected append failure (disk full)")
		}
		return nil
	}
	t.Cleanup(func() { testLogFail = nil })
}

// TestWALFailureNoAcknowledgedWriteLost drives a random mutation stream
// into a durable store whose log starts failing partway through, and
// checks the central durability promise: the set of acknowledged
// mutations — exactly those — survives recovery. Unacknowledged
// mutations must be rolled back in memory too, so the live store never
// diverges from what recovery will reproduce.
func TestWALFailureNoAcknowledgedWriteLost(t *testing.T) {
	dir := t.TempDir()
	injectWALFailures(t, 23)
	s := openDurable(t, dir)
	oracle := New() // mirrors acknowledged mutations only

	r := rand.New(rand.NewSource(5))
	oids := []object.OID{"a", "b", "c", "d"}
	sawFailure := false
	for i := 0; i < 120; i++ {
		oid := oids[r.Intn(len(oids))]
		switch r.Intn(6) {
		case 0, 1:
			o := object.NewEntity(oid).Set("v", object.Num(float64(i)))
			if err := s.Put(o); err == nil {
				if err := oracle.Put(o); err != nil {
					t.Fatal(err)
				}
			} else {
				sawFailure = true
			}
		case 2:
			f := RefFact(fmt.Sprintf("r%d", r.Intn(2)), oid, oids[r.Intn(len(oids))])
			changed, err := s.AddFactErr(f)
			if err != nil {
				sawFailure = true
			} else if changed != oracle.AddFact(f) {
				t.Fatalf("op %d: acknowledged AddFact diverged from oracle", i)
			}
		case 3:
			f := RefFact(fmt.Sprintf("r%d", r.Intn(2)), oid, oids[r.Intn(len(oids))])
			changed, err := s.DeleteFactErr(f)
			if err != nil {
				sawFailure = true
			} else if changed != oracle.DeleteFact(f) {
				t.Fatalf("op %d: acknowledged DeleteFact diverged from oracle", i)
			}
		case 4:
			changed, err := s.DeleteErr(oid)
			if err != nil {
				sawFailure = true
			} else if changed != oracle.Delete(oid) {
				t.Fatalf("op %d: acknowledged Delete diverged from oracle", i)
			}
		default:
			err := s.Update(oid, func(o *object.Object) error {
				o.Set("u", object.Num(float64(i)))
				return nil
			})
			if err == nil {
				if uerr := oracle.Update(oid, func(o *object.Object) error {
					o.Set("u", object.Num(float64(i)))
					return nil
				}); uerr != nil {
					t.Fatal(uerr)
				}
			} else {
				sawFailure = true
			}
		}
	}
	if !sawFailure {
		t.Fatal("fault injection never fired; test is vacuous")
	}

	// Once poisoned, every mutation fails fast without touching state.
	if err := s.Put(object.NewEntity("zz")); err == nil {
		t.Fatal("Put succeeded on a poisoned store")
	}
	if s.Has("zz") {
		t.Fatal("failed Put left the object behind")
	}
	if _, err := s.AddFactErr(RefFact("r0", "zz", "zz")); err == nil {
		t.Fatal("AddFactErr succeeded on a poisoned store")
	}
	if s.AddFact(RefFact("r0", "zz", "zz")) {
		t.Fatal("AddFact reported a change on a poisoned store")
	}
	if s.HasFact(RefFact("r0", "zz", "zz")) {
		t.Fatal("failed AddFact left the fact behind")
	}

	// The live store equals the acknowledged oracle (rollback worked)...
	assertStoresEqual(t, s, oracle)
	if err := s.Close(); err == nil {
		t.Fatal("Close must surface the latched WAL error")
	}

	// ...and so does the recovered store: nothing acknowledged is
	// missing, nothing unacknowledged appears.
	testLogFail = nil
	re := openDurable(t, dir)
	defer re.Close()
	assertStoresEqual(t, re, oracle)
}

// TestWALFailureDeleteRestoresIndexes pins the rollback detail: a Delete
// whose log append fails must leave the object queryable through the
// secondary indexes, not just present in the map.
func TestWALFailureDeleteRestoresIndexes(t *testing.T) {
	dir := t.TempDir()
	injectWALFailures(t, 2)
	s := openDurable(t, dir)
	defer s.Close()
	if err := s.Put(object.NewEntity("e1").Set("score", object.Num(7))); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(object.NewInterval("gi1", interval.FromPairs(0, 10)).
		Set(object.AttrEntities, object.RefSet("e1"))); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.DeleteErr("gi1"); ok || err == nil {
		t.Fatalf("DeleteErr = (%v, %v), want failure", ok, err)
	}
	if got := s.IntervalsContaining("e1"); len(got) != 1 || got[0] != "gi1" {
		t.Fatalf("entity index after rolled-back delete = %v", got)
	}
	if got := s.FindByAttr("score", object.Num(7)); len(got) != 1 || got[0] != "e1" {
		t.Fatalf("attr index after rolled-back delete = %v", got)
	}
}

// TestDeleteFactOrderPreserved is the S3 regression test: tombstone-based
// deletion (and the compaction it triggers) must keep Facts returning the
// surviving facts in insertion order, with re-added facts at the end.
func TestDeleteFactOrderPreserved(t *testing.T) {
	s := New()
	var oracle []Fact
	fact := func(i int) Fact { return NewFact("r", object.Num(float64(i))) }
	for i := 0; i < 40; i++ {
		s.AddFact(fact(i))
		oracle = append(oracle, fact(i))
	}
	check := func(step string) {
		t.Helper()
		got := s.Facts("r")
		if len(got) != len(oracle) {
			t.Fatalf("%s: %d facts, want %d", step, len(got), len(oracle))
		}
		for i := range oracle {
			if !got[i].Equal(oracle[i]) {
				t.Fatalf("%s: fact %d = %v, want %v", step, i, got[i], oracle[i])
			}
		}
	}

	// Scattered deletes (below the compaction threshold).
	for _, i := range []int{3, 0, 39, 17, 18} {
		if !s.DeleteFact(fact(i)) {
			t.Fatalf("delete %d reported absent", i)
		}
		for j, f := range oracle {
			if f.Equal(fact(i)) {
				oracle = append(oracle[:j], oracle[j+1:]...)
				break
			}
		}
	}
	check("scattered deletes")

	// Re-adding a deleted fact appends at the end.
	s.AddFact(fact(17))
	oracle = append(oracle, fact(17))
	check("re-add")

	// Enough deletes to force compaction, in shuffled order.
	r := rand.New(rand.NewSource(9))
	for _, i := range r.Perm(36) {
		f := oracle[i%len(oracle)]
		if s.DeleteFact(f) {
			for j := range oracle {
				if oracle[j].Equal(f) {
					oracle = append(oracle[:j], oracle[j+1:]...)
					break
				}
			}
		}
		check("compacting deletes")
	}
}

// TestFindByAttrRangeConcurrent exercises the RLock fast path: many
// readers share the cached index while a writer keeps invalidating it.
// Run with -race; the assertion is that results are always consistent
// snapshots (sorted, within range).
func TestFindByAttrRangeConcurrent(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		s.Put(object.NewEntity(object.OID(fmt.Sprintf("o%02d", i))).
			Set("score", object.Num(float64(i))))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := s.FindByAttrRange("score", interval.Closed(10, 50))
				for i, id := range got {
					if i > 0 && got[i-1] >= id {
						t.Errorf("unsorted result: %v", got)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s.Put(object.NewEntity(object.OID(fmt.Sprintf("o%02d", i%64))).
			Set("score", object.Num(float64(i%97))))
	}
	close(stop)
	wg.Wait()
}

// TestCrashRecoveryEquivalence is the S4 property test: after a random
// mutation sequence (fact deletions and checkpoints included), truncating
// the WAL at every record boundary and reopening must yield exactly the
// checkpoint state plus the surviving record prefix.
func TestCrashRecoveryEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s := openDurable(t, dir)
			r := rand.New(rand.NewSource(seed))

			// Oracle bookkeeping: a snapshot of the acknowledged state at
			// the last checkpoint, plus the acknowledged mutations since.
			oracle := New()
			var base bytes.Buffer
			if err := oracle.Save(&base); err != nil {
				t.Fatal(err)
			}
			var tail []storeOp

			for _, op := range randomOps(r, 90) {
				applyOp(t, s, op, true)
				if op.kind == "checkpoint" {
					base.Reset()
					if err := oracle.Save(&base); err != nil {
						t.Fatal(err)
					}
					tail = nil
					continue
				}
				// Mirror into the oracle; keep only ops that changed state
				// (only those produced a WAL record).
				before := oracle.Stats()
				applyOp(t, oracle, op, false)
				if op.kind == "update" {
					// An update logs a record iff the object existed.
					if oracle.Get(op.oid) != nil {
						tail = append(tail, op)
					}
					continue
				}
				if oracle.Stats() != before || op.kind == "put-entity" || op.kind == "put-interval" {
					tail = append(tail, op)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
			if err != nil {
				t.Fatal(err)
			}
			boundaries := []int{0}
			for i, b := range walBytes {
				if b == '\n' {
					boundaries = append(boundaries, i+1)
				}
			}
			if len(boundaries)-1 != len(tail) {
				t.Fatalf("WAL has %d records, oracle tracked %d acknowledged ops",
					len(boundaries)-1, len(tail))
			}

			snapBytes, snapErr := os.ReadFile(filepath.Join(dir, snapshotFileName))
			for k, off := range boundaries {
				// Crash image: checkpoint snapshot + the first k records.
				crash := t.TempDir()
				if snapErr == nil {
					if err := os.WriteFile(filepath.Join(crash, snapshotFileName), snapBytes, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				if err := os.WriteFile(filepath.Join(crash, walFileName), walBytes[:off], 0o644); err != nil {
					t.Fatal(err)
				}
				re := openDurable(t, crash)

				want := New()
				if err := want.Load(bytes.NewReader(base.Bytes())); err != nil {
					t.Fatal(err)
				}
				for _, op := range tail[:k] {
					applyOp(t, want, op, false)
				}
				assertStoresEqual(t, re, want)
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSubscribeChangelog pins the changelog contract: acknowledged
// mutations emit exactly one event each, in order; rejected or failed
// mutations emit nothing; unsubscribe stops delivery.
func TestSubscribeChangelog(t *testing.T) {
	s := New()
	var got []Event
	cancel := s.Subscribe(func(ev Event) { got = append(got, ev) })

	s.AddFact(RefFact("r", "a", "b"))
	s.AddFact(RefFact("r", "a", "b")) // duplicate: no event
	if err := s.Put(object.NewEntity("e1")); err != nil {
		t.Fatal(err)
	}
	s.DeleteFact(RefFact("r", "a", "b"))
	s.DeleteFact(RefFact("r", "a", "b")) // absent: no event
	s.Delete("e1")
	s.Delete("e1") // absent: no event

	want := []EventKind{EventAddFact, EventPutObject, EventDeleteFact, EventDeleteObject}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(want), got)
	}
	for i, k := range want {
		if got[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, got[i].Kind, k)
		}
	}
	if got[0].Fact.Name != "r" || got[1].OID != "e1" {
		t.Fatalf("event payloads wrong: %+v", got[:2])
	}

	cancel()
	s.AddFact(RefFact("r", "x", "y"))
	if len(got) != len(want) {
		t.Fatal("event delivered after unsubscribe")
	}
}

// TestSubscribeNoEventOnFailedAppend: a mutation rolled back by a WAL
// failure must not reach subscribers.
func TestSubscribeNoEventOnFailedAppend(t *testing.T) {
	dir := t.TempDir()
	injectWALFailures(t, 1)
	s := openDurable(t, dir)
	defer s.Close()
	var events int
	s.Subscribe(func(Event) { events++ })
	if !s.AddFact(RefFact("r", "a", "b")) {
		t.Fatal("first add should be acknowledged")
	}
	if s.AddFact(RefFact("r", "c", "d")) {
		t.Fatal("second add should fail")
	}
	if events != 1 {
		t.Fatalf("got %d events, want 1 (failed mutation must not notify)", events)
	}
}
