package store

import "videodb/internal/object"

// Pushdown scan API: the datalog executor's streaming operators push
// constant argument bindings into the store so a rule body literal like
// in(O, "o4", G) scans only the matching facts, selected under the
// store's lock in one pass, instead of materializing the full relation
// and filtering tuple by tuple on the engine side.

// ArgBind constrains one argument position of a fact scan to an exact
// value (canonical Value.Equal comparison).
type ArgBind struct {
	Pos int
	Val object.Value
}

// ScanFacts calls fn for every fact of the relation whose arguments
// match all binds, in insertion order, until fn returns false. A bind
// position beyond a fact's arity never matches that fact.
func (s *Store) ScanFacts(name string, binds []ArgBind, fn func(Fact) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		s.backend.ScanFacts(name, binds, fn)
		return
	}
	rel := s.facts[name]
	if rel == nil {
		return
	}
	rel.each(func(f Fact) bool {
		for _, b := range binds {
			if b.Pos >= len(f.Args) || !f.Args[b.Pos].Equal(b.Val) {
				return true // skip, keep scanning
			}
		}
		return fn(f)
	})
}

// FactCount returns the number of live facts in the relation — the
// cardinality estimate the engine uses to pre-size its hash structures.
func (s *Store) FactCount(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		return s.backend.FactCount(name)
	}
	if rel := s.facts[name]; rel != nil {
		return rel.live()
	}
	return 0
}

// TotalFacts returns the number of live facts across all relations — the
// coarse corpus-size signal the plan cache folds into its keys so a plan
// chosen against a tiny database is re-costed after a bulk load.
func (s *Store) TotalFacts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		return s.backend.TotalFacts()
	}
	n := 0
	for _, rel := range s.facts {
		n += rel.live()
	}
	return n
}

// SchemaVersion returns a counter that increases whenever the set of
// stored relations changes (a relation appears or disappears). Cached
// query plans key on it: a plan compiled against one relation schema is
// invalid once the schema moves.
func (s *Store) SchemaVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.schemaVer
}
