package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"videodb/internal/object"
)

// Fault-injection tests for the checkpoint crash-ordering invariant:
// whatever instant the process dies at during Checkpoint, recovery must
// see every acknowledged mutation. The two interesting instants are
// (a) after the snapshot is renamed into place but before the WAL is
// truncated — the snapshot and the full old log coexist, and replay on
// top of the snapshot must be idempotent — and (b) after the truncation
// but before any further append — the snapshot alone carries the state.

func ackMutations(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		oid := object.OID(fmt.Sprintf("e%d", i))
		if err := s.Put(object.NewEntity(oid).Set("n", object.Num(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	s.AddFact(RefFact("linked", "e0", "e1"))
	// An update and a delete, so replay-on-top-of-snapshot has to be
	// idempotent for every record type, not just blind Puts.
	if err := s.Update("e1", func(o *object.Object) error {
		o.Set("n", object.Num(100))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Delete(object.OID(fmt.Sprintf("e%d", n-1)))
}

func verifyAcked(t *testing.T, s *Store, n int) {
	t.Helper()
	if s.Len() != n-1 {
		t.Fatalf("recovered %d objects, want %d: %v", s.Len(), n-1, s.OIDs())
	}
	for i := 0; i < n-1; i++ {
		oid := object.OID(fmt.Sprintf("e%d", i))
		if !s.Has(oid) {
			t.Fatalf("acknowledged object %s lost", oid)
		}
	}
	if s.Has(object.OID(fmt.Sprintf("e%d", n-1))) {
		t.Error("deleted object resurrected")
	}
	if got := s.Get("e1").Attr("n"); !got.Equal(object.Num(100)) {
		t.Errorf("update lost: e1.n = %v", got)
	}
	if !s.HasFact(RefFact("linked", "e0", "e1")) {
		t.Error("acknowledged fact lost")
	}
}

func TestCrashBetweenSnapshotAndWALTruncate(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	s := openDurable(t, dir)
	ackMutations(t, s, n)

	walPath := filepath.Join(dir, walFileName)
	preWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(preWAL) == 0 {
		t.Fatal("expected a non-empty pre-checkpoint WAL")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash model: the snapshot rename reached disk, the WAL truncation
	// did not — on restart the full old log is still there.
	if err := os.WriteFile(walPath, preWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir)
	defer re.Close()
	verifyAcked(t, re, n)
}

func TestCrashBetweenTruncateAndNextAppend(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	s := openDurable(t, dir)
	ackMutations(t, s, n)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash model: die right after the truncation, before any further
	// append and without a clean Close — the empty WAL plus the snapshot
	// is the entire on-disk state. (No Close: every append already
	// flushed, and Checkpoint itself leaves nothing buffered.)
	if fi, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL after checkpoint: %v, size %d", err, fi.Size())
	}
	re := openDurable(t, dir)
	verifyAcked(t, re, n)

	// And a crash right after the next acknowledged append: the fresh log
	// carries exactly that record on top of the snapshot.
	if err := re.Put(object.NewEntity("post")); err != nil {
		t.Fatal(err)
	}
	re2 := openDurable(t, dir) // again no Close before "restart"
	defer re2.Close()
	if !re2.Has("post") {
		t.Error("acknowledged post-checkpoint write lost")
	}
	if re2.Len() != n {
		t.Errorf("recovered %d objects, want %d", re2.Len(), n)
	}
}

// TestSnapshotTempFilesCleanedUp guards the atomic-write path: after a
// checkpoint the directory holds exactly the snapshot and the WAL, no
// stray temp files.
func TestSnapshotTempFilesCleanedUp(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	s.Put(object.NewEntity("x"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != walFileName && e.Name() != snapshotFileName {
			t.Errorf("stray file after checkpoint: %s", e.Name())
		}
	}
}
