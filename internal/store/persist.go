package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"videodb/internal/object"
)

// Snapshot persistence: a single JSON document with a format version and
// a SHA-256 checksum over the payload, so corrupted or truncated files are
// detected on load rather than silently yielding a partial database.

const snapshotVersion = 1

type snapshot struct {
	Version  int              `json:"version"`
	Objects  []*object.Object `json:"objects"`
	Facts    []jsonFact       `json:"facts"`
	Checksum string           `json:"checksum"` // hex SHA-256 of payload
}

type jsonFact struct {
	Name string         `json:"name"`
	Args []object.Value `json:"args"`
}

// payload is the checksummed portion (everything except the checksum).
type payload struct {
	Version int              `json:"version"`
	Objects []*object.Object `json:"objects"`
	Facts   []jsonFact       `json:"facts"`
}

func (s *Store) buildPayload() payload {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.buildPayloadLocked()
}

func (s *Store) buildPayloadLocked() payload {
	p := payload{Version: snapshotVersion}
	// Deterministic object order for reproducible snapshots.
	oids := make([]object.OID, 0, len(s.objects))
	for id := range s.objects {
		oids = append(oids, id)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, id := range oids {
		p.Objects = append(p.Objects, s.objects[id])
	}
	if s.backend != nil {
		for _, n := range s.backend.Relations() { // already sorted
			s.backend.ScanFacts(n, nil, func(f Fact) bool {
				p.Facts = append(p.Facts, jsonFact{Name: f.Name, Args: f.Args})
				return true
			})
		}
		return p
	}
	names := make([]string, 0, len(s.facts))
	for n := range s.facts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.facts[n].each(func(f Fact) bool {
			p.Facts = append(p.Facts, jsonFact{Name: f.Name, Args: f.Args})
			return true
		})
	}
	return p
}

// Save writes a snapshot of the store to w.
func (s *Store) Save(w io.Writer) error {
	return savePayload(w, s.buildPayload())
}

func savePayload(w io.Writer, p payload) error {
	body, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(body)
	snap := snapshot{
		Version:  p.Version,
		Objects:  p.Objects,
		Facts:    p.Facts,
		Checksum: hex.EncodeToString(sum[:]),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Load replaces the contents of the store with a snapshot read from r. On
// any error the store is left unchanged. Durable and backend stores
// refuse Load: replacing state behind the write-ahead log would
// desynchronize recovery — use Checkpoint-managed directories instead.
//
// Decoding and verification happen outside the lock; the durability
// check, the state swap, the schema-version bump, and the reset
// notification then share one write-lock critical section. (An earlier
// version checked durability under a read lock, released it, and swapped
// under a second lock — mutations racing the gap could be lost without
// the swap ever observing them, and the missing schema bump left plan
// caches serving plans compiled against the pre-Load relation schema.)
func (s *Store) Load(r io.Reader) error {
	// Advisory fail-fast before paying for the decode; the authoritative
	// check runs again inside the write-lock critical section below.
	s.mu.RLock()
	durable := s.wal != nil || s.backend != nil
	s.mu.RUnlock()
	if durable {
		return fmt.Errorf("store: Load is not supported on a durable store")
	}
	var snap snapshot
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	body, err := json.Marshal(payload{Version: snap.Version, Objects: snap.Objects, Facts: snap.Facts})
	if err != nil {
		return fmt.Errorf("store: re-encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != snap.Checksum {
		return fmt.Errorf("store: snapshot checksum mismatch (corrupted file?)")
	}

	//videolint:ignore lockcheck PR 7 fix shape: the RLock section is an advisory precheck; durability and staleness are re-validated under this write lock before the swap
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil || s.backend != nil {
		return fmt.Errorf("store: Load is not supported on a durable store")
	}

	// Build fresh state, then swap in. fresh is private to this call, so
	// locking its own mutex per Put/AddFact is cheap and cannot deadlock.
	fresh := NewWith()
	fresh.disableEntityIdx = s.disableEntityIdx
	fresh.disableTreeIdx = s.disableTreeIdx
	fresh.disableAttrIdx = s.disableAttrIdx
	for _, o := range snap.Objects {
		if err := fresh.Put(o); err != nil {
			return err
		}
	}
	for _, f := range snap.Facts {
		fresh.AddFact(Fact{Name: f.Name, Args: f.Args})
	}

	s.objects = fresh.objects
	s.facts = fresh.facts
	s.entityIdx = fresh.entityIdx
	s.attrIdx = fresh.attrIdx
	s.itreeOK = false
	s.numIdxOK = false
	// The relation set may have changed wholesale; invalidate cached
	// plans keyed on the schema version.
	s.schemaVer++
	// No per-mutation events can describe a wholesale swap; subscribers
	// (e.g. materialized views) must discard derived state.
	s.notify(Event{Kind: EventReset})
	return nil
}

// SaveFile writes a snapshot to the named file atomically (write to a
// temporary file in the same directory, then rename).
func (s *Store) SaveFile(path string) error {
	return writeSnapshotFile(path, s.buildPayload())
}

// saveFileLocked is SaveFile for callers already holding s.mu.
func (s *Store) saveFileLocked(path string) error {
	return writeSnapshotFile(path, s.buildPayloadLocked())
}

// writeSnapshotFile persists a snapshot atomically AND durably.
//
// Crash-ordering invariant: by the time this function returns, the
// snapshot is on disk under its final name even across a power failure.
// Checkpoint relies on this — it truncates the WAL immediately after, and
// a crash between the two must find a complete snapshot, or acknowledged
// writes are lost. That requires both fsyncs below: fsync(tmp) before the
// rename (otherwise the kernel may order the rename's metadata ahead of
// the data blocks, leaving a named but empty/partial file), and fsync of
// the parent directory after (otherwise the rename itself may not have
// reached the directory's on-disk entries, resurrecting the old snapshot
// while the WAL is already truncated).
func writeSnapshotFile(path string, p payload) error {
	tmp, err := os.CreateTemp(dirOf(path), ".videodb-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := savePayload(tmp, p); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dirOf(path))
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadFile reads a snapshot from the named file.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
