package store

import (
	"sort"

	"videodb/internal/object"
)

// Backend is a pluggable fact/durability engine behind the Store facade.
// The default (nil backend) keeps every fact in the in-memory factRel
// maps with an optional WAL; a persistent backend (internal/store/segment)
// owns the facts itself — on disk, loaded lazily — and logs object
// mutations, while the Store keeps owning the object maps and secondary
// indexes.
//
// Locking contract: the Store invokes every mutating method (AddFact,
// DeleteFact, LogPutObject, LogDeleteObject, Flush, Compact, Close) under
// its write lock and every read under at least its read lock, so a
// backend may keep its mutable state unsynchronized except for whatever
// caches its concurrent readers share.
type Backend interface {
	// SetObjectSource installs the callback that snapshots the live
	// object set at flush time. It is called with the store lock held and
	// must not re-enter the store.
	SetObjectSource(fn func() []*object.Object)
	// RecoveredObjects returns the object set recovered at open, once,
	// for the store to adopt into its maps and indexes.
	RecoveredObjects() []*object.Object

	// AddFact durably records and applies an insertion. The caller has
	// already verified the fact is absent (key is f.Key()). An error
	// means nothing was applied.
	AddFact(f Fact, key string) error
	// DeleteFact durably records and applies a deletion of a present
	// fact. An error means nothing was applied.
	DeleteFact(f Fact, key string) error

	HasFact(name, key string) bool
	// ScanFacts streams visible facts of the relation matching the binds
	// until fn returns false. Unlike the in-memory path the order is
	// unspecified (segment order, then memtable insertion order).
	ScanFacts(name string, binds []ArgBind, fn func(Fact) bool)
	FactCount(name string) int
	TotalFacts() int
	Relations() []string
	FactArities() map[string][]int

	// LogPutObject / LogDeleteObject durably record object mutations;
	// the store applies them to its own maps.
	LogPutObject(o *object.Object) error
	LogDeleteObject(oid object.OID) error

	// Flush persists all volatile state (Checkpoint routes here);
	// Compact reorganizes storage. Close flushes and releases resources.
	Flush() error
	Compact() error
	Close() error

	BackendStats() BackendStats
}

// BackendStats describes a backend's resident state and cache traffic;
// the server exports these as metrics.
type BackendStats struct {
	Kind           string `json:"kind"` // "mem" or "segment"
	Segments       int    `json:"segments"`
	SegmentFacts   int    `json:"segmentFacts"`  // fact records resident in segment files
	Tombstones     int    `json:"tombstones"`    // tombstones resident in segment files
	MemtableFacts  int    `json:"memtableFacts"` // adds + deletes buffered since the last flush
	DictValues     int    `json:"dictValues"`    // dictionary entries across segment files
	CacheHits      uint64 `json:"cacheHits"`
	CacheMisses    uint64 `json:"cacheMisses"`
	CacheEvictions uint64 `json:"cacheEvictions"`
	CacheBytes     int64  `json:"cacheBytes"`
	CacheBudget    int64  `json:"cacheBudget"`
	CachedBlocks   int    `json:"cachedBlocks"`
	Flushes        uint64 `json:"flushes"`
	Compactions    uint64 `json:"compactions"`
	ReadErrors     uint64 `json:"readErrors"`
}

// OpenBackend wires a backend into a fresh store: recovered objects are
// adopted into the object maps and indexes, and the flush-time object
// source is connected. The backend must not be shared between stores.
func OpenBackend(b Backend, opts ...Option) (*Store, error) {
	s := NewWith(opts...)
	s.backend = b
	b.SetObjectSource(func() []*object.Object {
		// Called under s.mu (flush runs inside a mutation or Checkpoint).
		out := make([]*object.Object, 0, len(s.objects))
		for _, o := range s.objects {
			out = append(out, o)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].OID() < out[j].OID() })
		return out
	})
	for _, o := range b.RecoveredObjects() {
		c := o.Clone()
		s.objects[c.OID()] = c
		s.index(c)
	}
	if n := len(b.Relations()); n > 0 {
		s.schemaVer++ // recovered relations exist from the first version
	}
	return s, nil
}

// BackendStats reports the active backend's statistics; in-memory stores
// report Kind "mem" with the live fact count.
func (s *Store) BackendStats() BackendStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		return s.backend.BackendStats()
	}
	n := 0
	for _, rel := range s.facts {
		n += rel.live()
	}
	return BackendStats{Kind: "mem", MemtableFacts: n}
}

// Compact asks the backend to reorganize its storage (merge segments,
// resolve tombstones); a no-op on the in-memory backend.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backend != nil {
		return s.backend.Compact()
	}
	return nil
}

// addFactBackend is the backend branch of AddFactErr; the caller holds
// the write lock and has checked walHealthy.
func (s *Store) addFactBackend(f Fact) (bool, error) {
	key := f.Key()
	if s.backend.HasFact(f.Name, key) {
		return false, nil
	}
	args := make([]object.Value, len(f.Args))
	copy(args, f.Args)
	g := Fact{Name: f.Name, Args: args}
	newRel := s.backend.FactCount(f.Name) == 0
	if err := s.backend.AddFact(g, key); err != nil {
		if s.walErr == nil {
			s.walErr = err
		}
		return false, err
	}
	if newRel {
		s.schemaVer++
	}
	s.notify(Event{Kind: EventAddFact, Fact: g})
	return true, nil
}

// deleteFactBackend is the backend branch of DeleteFactErr.
func (s *Store) deleteFactBackend(f Fact) (bool, error) {
	key := f.Key()
	if !s.backend.HasFact(f.Name, key) {
		return false, nil
	}
	args := make([]object.Value, len(f.Args))
	copy(args, f.Args)
	g := Fact{Name: f.Name, Args: args}
	if err := s.backend.DeleteFact(g, key); err != nil {
		if s.walErr == nil {
			s.walErr = err
		}
		return false, err
	}
	if s.backend.FactCount(f.Name) == 0 {
		s.schemaVer++
	}
	s.notify(Event{Kind: EventDeleteFact, Fact: g})
	return true, nil
}
