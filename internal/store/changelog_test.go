package store

import (
	"fmt"
	"sync"
	"testing"

	"videodb/internal/object"
)

// TestSubscribeCancelFromCallback is the regression test for the
// unsubscribe self-deadlock: cancel() used to take the store's write
// lock, so calling it from inside a subscriber callback — which runs
// with that lock held — blocked forever.
func TestSubscribeCancelFromCallback(t *testing.T) {
	s := New()
	var got int
	var cancel func()
	cancel = s.Subscribe(func(Event) {
		got++
		cancel() // must not deadlock
	})
	if !s.AddFact(RefFact("edge", "a", "b")) {
		t.Fatal("add edge(a,b) not applied")
	}
	if got != 1 {
		t.Fatalf("callback ran %d times before cancel, want 1", got)
	}
	// The cancelled subscriber must not see later mutations.
	if !s.AddFact(RefFact("edge", "b", "c")) {
		t.Fatal("add edge(b,c) not applied")
	}
	if got != 1 {
		t.Fatalf("cancelled subscriber still delivered: %d events", got)
	}
}

// TestSubscribeCancelPeerFromCallback is the other half of the
// callback-under-write-lock repro: a subscriber cancelling a *peer*
// from inside its callback. With a lock-taking cancel this self-
// deadlocks exactly like the self-cancel case; with the flag-based
// cancel the peer must simply stop receiving events.
func TestSubscribeCancelPeerFromCallback(t *testing.T) {
	s := New()
	var peerGot int
	peerCancel := s.Subscribe(func(Event) { peerGot++ })
	killed := false
	cancelKiller := s.Subscribe(func(Event) {
		if !killed {
			killed = true
			peerCancel() // must not deadlock: we run under the write lock
		}
	})
	defer cancelKiller()

	if !s.AddFact(RefFact("edge", "a", "b")) {
		t.Fatal("add edge(a,b) not applied")
	}
	// Subscriber order is registration order, so the peer saw the first
	// event before the killer cancelled it; nothing after may arrive.
	first := peerGot
	if !s.AddFact(RefFact("edge", "b", "c")) {
		t.Fatal("add edge(b,c) not applied")
	}
	if peerGot != first {
		t.Fatalf("peer delivered after cancel-from-callback: %d -> %d", first, peerGot)
	}
}

// TestSubscribeCancelConcurrentWithNotify races cancel() against a
// stream of mutations: with the old lock-taking cancel this deadlocks or
// trips the race detector; with the flag-based cancel it must finish,
// and no subscriber may observe an event after its cancel returned plus
// one in-flight delivery.
func TestSubscribeCancelConcurrentWithNotify(t *testing.T) {
	s := New()
	const subs = 8
	cancels := make([]func(), subs)
	var mu sync.Mutex
	counts := make([]int, subs)
	for i := 0; i < subs; i++ {
		i := i
		cancels[i] = s.Subscribe(func(Event) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for j := 0; j < 500; j++ {
			_ = s.AddFact(RefFact("r", object.OID(fmt.Sprintf("n%d", j)), object.OID(fmt.Sprintf("n%d", j+1))))
		}
	}()
	go func() {
		defer wg.Done()
		for _, c := range cancels {
			c()
		}
	}()
	wg.Wait()

	// After all cancels returned and mutations stopped, one more
	// mutation must reach nobody.
	mu.Lock()
	snapshot := append([]int(nil), counts...)
	mu.Unlock()
	_ = s.AddFact(RefFact("r", "x", "y"))
	mu.Lock()
	defer mu.Unlock()
	for i := range counts {
		if counts[i] != snapshot[i] {
			t.Fatalf("subscriber %d delivered after cancel settled: %d -> %d",
				i, snapshot[i], counts[i])
		}
	}
}
