package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videodb/internal/object"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Stats(), s.Stats(); got != want {
		t.Errorf("stats after load = %+v, want %+v", got, want)
	}
	for _, oid := range s.OIDs() {
		a, b := s.Get(oid), loaded.Get(oid)
		if b == nil || !a.Equal(b) {
			t.Errorf("object %s differs after round trip: %v vs %v", oid, a, b)
		}
	}
	for _, rel := range s.Relations() {
		a, b := s.Facts(rel), loaded.Facts(rel)
		if len(a) != len(b) {
			t.Errorf("relation %s: %d vs %d facts", rel, len(a), len(b))
			continue
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Errorf("fact %d of %s differs: %v vs %v", i, rel, a[i], b[i])
			}
		}
	}
	// Indexes work after load.
	if got := loaded.IntervalsContaining("o1"); !oidsEqual(got, "gi1", "gi2") {
		t.Errorf("index after load = %v", got)
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := newTestStore(t)
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots should be byte-identical")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	s := newTestStore(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := []struct {
		name string
		data string
	}{
		{"truncated", good[:len(good)/2]},
		{"bit flip", strings.Replace(good, `"David"`, `"Давид"`, 1)},
		{"empty", ""},
		{"not json", "hello world"},
		{"bad version", strings.Replace(good, `"version":1`, `"version":99`, 1)},
	}
	for _, tc := range cases {
		fresh := New()
		fresh.Put(object.NewEntity("keep"))
		if err := fresh.Load(strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: Load should fail", tc.name)
		}
		// Failed load leaves the store unchanged.
		if !fresh.Has("keep") || fresh.Len() != 1 {
			t.Errorf("%s: failed load mutated the store", tc.name)
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.json")
	s := newTestStore(t)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Errorf("Len after file round trip = %d, want %d", loaded.Len(), s.Len())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory should contain only the snapshot, got %v", entries)
	}
	if err := loaded.LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadFile of missing path should fail")
	}
}
