// Package store implements the video database of Section 5.1: storage for
// the 7-tuple V = (I, O, f, R, Σ, λ1, λ2). It holds v-objects (semantic
// entities and generalized interval objects), relation facts over them,
// and secondary indexes that accelerate the query patterns of the paper:
//
//   - an inverted index from entity oid to the generalized intervals whose
//     λ1 contains it (the "O ∈ G.entities" constraint);
//   - a centered interval tree over interval durations (temporal stabbing
//     and overlap queries, i.e. duration entailment pre-filtering);
//   - a hash index from (attribute, value) to objects (the "O.A = val"
//     constraint);
//   - a sorted numeric index per attribute for range scans
//     (FindByAttrRange).
//
// Persistence comes in two forms: checksummed snapshots (Save/Load) and a
// durable mode (OpenDurable) with a write-ahead log and checkpoints.
//
// The store is safe for concurrent use. Objects returned by Get are owned
// by the store and must not be mutated; use Update to modify an object
// under the store's lock with index maintenance.
package store

import (
	"fmt"
	"sort"
	"sync"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// Store is an in-memory video database with secondary indexes and
// snapshot persistence.
type Store struct {
	mu      sync.RWMutex
	objects map[object.OID]*object.Object
	facts   map[string]*factRel // relation name -> facts (see fact.go)

	// Changelog subscribers (see changelog.go).
	subs    []subscriber
	nextSub int

	// Secondary indexes (see package comment). Maintained incrementally
	// except for the interval tree, which is rebuilt lazily.
	entityIdx map[object.OID]map[object.OID]bool // entity -> interval oids
	attrIdx   map[attrKey]map[object.OID]bool
	itree     *intervalTree
	itreeOK   bool
	numIdx    map[string][]numEntry
	numIdxOK  bool

	// Index switches for the E10 ablation; all on by default.
	disableEntityIdx bool
	disableTreeIdx   bool
	disableAttrIdx   bool

	// Relation-schema version: bumped whenever the set of relation names
	// changes. Read by SchemaVersion; plan caches key on it.
	schemaVer uint64

	// Durability (nil for purely in-memory stores; see OpenDurable).
	// walErr latches the first log-append failure; once set, every
	// subsequent mutation is refused before touching state (fail-fast;
	// see walHealthy), and Close/Checkpoint surface the error too.
	wal    *wal
	walDir string
	walErr error

	// Pluggable fact/durability engine (see backend.go). When non-nil,
	// facts live in the backend instead of s.facts, and object mutations
	// are logged through it instead of the WAL.
	backend Backend
}

type attrKey struct {
	attr  string
	value string // canonical Value.String()
}

// New creates an empty store.
func New() *Store {
	return &Store{
		objects:   make(map[object.OID]*object.Object),
		facts:     make(map[string]*factRel),
		entityIdx: make(map[object.OID]map[object.OID]bool),
		attrIdx:   make(map[attrKey]map[object.OID]bool),
	}
}

// Option toggles store features; used by the index ablation experiment.
type Option func(*Store)

// WithoutEntityIndex disables the entity→interval inverted index
// (membership queries fall back to scans).
func WithoutEntityIndex() Option { return func(s *Store) { s.disableEntityIdx = true } }

// WithoutTemporalIndex disables the interval tree (temporal queries fall
// back to scans).
func WithoutTemporalIndex() Option { return func(s *Store) { s.disableTreeIdx = true } }

// WithoutAttrIndex disables the attribute hash index.
func WithoutAttrIndex() Option { return func(s *Store) { s.disableAttrIdx = true } }

// NewWith creates an empty store with the given options.
func NewWith(opts ...Option) *Store {
	s := New()
	for _, o := range opts {
		o(s)
	}
	return s
}

// Put inserts or replaces the object (a private copy is stored). The oid
// must be non-empty. On a durable store a poisoned or failing write-ahead
// log makes Put fail without applying the mutation.
func (s *Store) Put(o *object.Object) error {
	if o == nil || o.OID() == "" {
		return fmt.Errorf("store: object must have a non-empty oid")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walHealthy(); err != nil {
		return err
	}
	old := s.objects[o.OID()]
	if old != nil {
		s.unindex(old)
	}
	c := o.Clone()
	s.objects[c.OID()] = c
	s.index(c)
	if err := s.log(walRecord{Op: walPut, Object: c}); err != nil {
		s.unindex(c)
		if old != nil {
			s.objects[o.OID()] = old
			s.index(old)
		} else {
			delete(s.objects, o.OID())
		}
		return err
	}
	s.notify(Event{Kind: EventPutObject, OID: c.OID()})
	return nil
}

// Get returns the stored object, or nil if absent. The returned object is
// owned by the store: treat it as read-only.
func (s *Store) Get(oid object.OID) *object.Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.objects[oid]
}

// GetCopy returns a private copy of the stored object, or nil.
func (s *Store) GetCopy(oid object.OID) *object.Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if o, ok := s.objects[oid]; ok {
		return o.Clone()
	}
	return nil
}

// Has reports whether the oid is present.
func (s *Store) Has(oid object.OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[oid]
	return ok
}

// Update applies fn to a private copy of the object and stores the result,
// maintaining indexes. It returns an error if the oid is absent or if fn
// returns an error.
func (s *Store) Update(oid object.OID, fn func(*object.Object) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walHealthy(); err != nil {
		return err
	}
	old, ok := s.objects[oid]
	if !ok {
		return fmt.Errorf("store: no object %q", oid)
	}
	c := old.Clone()
	//videolint:ignore lockcheck Update's read-modify-write contract runs fn under the lock for atomicity; fn is documented not to re-enter the store
	if err := fn(c); err != nil {
		return err
	}
	if c.OID() != oid {
		return fmt.Errorf("store: update must not change the oid (got %q, want %q)", c.OID(), oid)
	}
	s.unindex(old)
	s.objects[oid] = c
	s.index(c)
	if err := s.log(walRecord{Op: walPut, Object: c}); err != nil {
		s.unindex(c)
		s.objects[oid] = old
		s.index(old)
		return err
	}
	s.notify(Event{Kind: EventPutObject, OID: oid})
	return nil
}

// Delete removes the object and its index entries; facts mentioning the
// oid are not touched (the model allows dangling references, which simply
// never join). It reports whether the object existed and was removed; on
// a durable store with a poisoned write-ahead log the deletion is refused
// (see DeleteErr for the error).
func (s *Store) Delete(oid object.OID) bool {
	ok, _ := s.DeleteErr(oid)
	return ok
}

// DeleteErr is Delete with the failure surfaced: on a durable store it
// returns a non-nil error — and leaves the object in place — if the
// write-ahead log is poisoned or the append fails, so an unacknowledged
// deletion is never applied.
func (s *Store) DeleteErr(oid object.OID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walHealthy(); err != nil {
		return false, err
	}
	o, ok := s.objects[oid]
	if !ok {
		return false, nil
	}
	s.unindex(o)
	delete(s.objects, oid)
	if err := s.log(walRecord{Op: walDelete, OID: string(oid)}); err != nil {
		s.objects[oid] = o
		s.index(o)
		return false, err
	}
	s.notify(Event{Kind: EventDeleteObject, OID: oid})
	return true, nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// OIDs returns all oids, sorted.
func (s *Store) OIDs() []object.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]object.OID, 0, len(s.objects))
	for id := range s.objects {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OIDsOfKind returns the oids of the given kind, sorted. These populate
// the built-in Interval and Object class predicates of the query language.
func (s *Store) OIDsOfKind(k object.Kind) []object.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []object.OID
	for id, o := range s.objects {
		if o.Kind() == k {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intervals returns the oids of all generalized interval objects, sorted.
func (s *Store) Intervals() []object.OID { return s.OIDsOfKind(object.GenInterval) }

// Entities returns the oids of all semantic objects, sorted.
func (s *Store) Entities() []object.OID { return s.OIDsOfKind(object.Entity) }

// ForEach calls fn for every stored object (read-only) until fn returns
// false. Iteration order is unspecified.
func (s *Store) ForEach(fn func(*object.Object) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, o := range s.objects {
		//videolint:ignore lockcheck documented read-only iteration contract: fn must not call back into the store
		if !fn(o) {
			return
		}
	}
}

// --- Index maintenance -----------------------------------------------------

func (s *Store) index(o *object.Object) {
	s.itreeOK = false
	s.numIdxOK = false
	if !s.disableEntityIdx && o.Kind() == object.GenInterval {
		for _, e := range o.Entities() {
			set := s.entityIdx[e]
			if set == nil {
				set = make(map[object.OID]bool)
				s.entityIdx[e] = set
			}
			set[o.OID()] = true
		}
	}
	if !s.disableAttrIdx {
		for _, a := range o.Attrs() {
			k := attrKey{attr: a, value: o.Attr(a).String()}
			set := s.attrIdx[k]
			if set == nil {
				set = make(map[object.OID]bool)
				s.attrIdx[k] = set
			}
			set[o.OID()] = true
		}
	}
}

func (s *Store) unindex(o *object.Object) {
	s.itreeOK = false
	s.numIdxOK = false
	if !s.disableEntityIdx && o.Kind() == object.GenInterval {
		for _, e := range o.Entities() {
			if set := s.entityIdx[e]; set != nil {
				delete(set, o.OID())
				if len(set) == 0 {
					delete(s.entityIdx, e)
				}
			}
		}
	}
	if !s.disableAttrIdx {
		for _, a := range o.Attrs() {
			k := attrKey{attr: a, value: o.Attr(a).String()}
			if set := s.attrIdx[k]; set != nil {
				delete(set, o.OID())
				if len(set) == 0 {
					delete(s.attrIdx, k)
				}
			}
		}
	}
}

// IntervalsContaining returns the sorted oids of generalized intervals
// whose entities attribute contains the entity (the inverted index behind
// "O ∈ G.entities"). Falls back to a scan when the index is disabled.
func (s *Store) IntervalsContaining(entity object.OID) []object.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.disableEntityIdx {
		var out []object.OID
		for id, o := range s.objects {
			if o.Kind() != object.GenInterval {
				continue
			}
			for _, e := range o.Entities() {
				if e == entity {
					out = append(out, id)
					break
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	set := s.entityIdx[entity]
	out := make([]object.OID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindByAttr returns the sorted oids of objects whose attribute attr has
// exactly the value v (canonical comparison).
func (s *Store) FindByAttr(attr string, v object.Value) []object.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.disableAttrIdx {
		var out []object.OID
		for id, o := range s.objects {
			if o.Has(attr) && o.Attr(attr).Equal(v) {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	set := s.attrIdx[attrKey{attr: attr, value: v.String()}]
	out := make([]object.OID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntervalsOverlapping returns the sorted oids of generalized interval
// objects whose duration overlaps the query window. With the temporal
// index enabled this uses the interval tree; otherwise it scans.
func (s *Store) IntervalsOverlapping(w interval.Span) []object.OID {
	s.mu.Lock() // may rebuild the tree
	defer s.mu.Unlock()
	if s.disableTreeIdx {
		var out []object.OID
		for id, o := range s.objects {
			if o.Kind() == object.GenInterval && o.Duration().Overlaps(interval.New(w)) {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	s.ensureTree()
	cands := s.itree.overlapping(w)
	// The tree indexes hulls; confirm against the exact duration.
	out := cands[:0]
	for _, id := range cands {
		if o := s.objects[id]; o != nil && o.Duration().Overlaps(interval.New(w)) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntervalsWithin returns the sorted oids of generalized intervals whose
// entire duration lies within the query window — the paper's temporal
// frame query "does the object appear in [a,b]" uses this shape through
// entailment: G.duration ⇒ (t > a ∧ t < b).
func (s *Store) IntervalsWithin(w interval.Span) []object.OID {
	window := interval.New(w)
	s.mu.Lock()
	defer s.mu.Unlock()
	var cands []object.OID
	if s.disableTreeIdx {
		for id, o := range s.objects {
			if o.Kind() == object.GenInterval {
				cands = append(cands, id)
			}
		}
	} else {
		s.ensureTree()
		cands = s.itree.overlapping(w)
	}
	var out []object.OID
	for _, id := range cands {
		o := s.objects[id]
		if o == nil || o.Kind() != object.GenInterval {
			continue
		}
		d := o.Duration()
		if !d.IsEmpty() && window.ContainsGen(d) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Store) ensureTree() {
	if s.itreeOK {
		return
	}
	var items []treeItem
	for id, o := range s.objects {
		if o.Kind() != object.GenInterval {
			continue
		}
		d := o.Duration()
		if d.IsEmpty() {
			continue
		}
		items = append(items, treeItem{span: d.Hull(), oid: id})
	}
	s.itree = buildIntervalTree(items)
	s.itreeOK = true
}

// Stats summarizes the store contents.
type Stats struct {
	Objects    int
	Entities   int
	Intervals  int
	Facts      int
	Relations  int
	IndexTerms int // entity-index entries + attr-index entries
}

// Stats returns current statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Objects: len(s.objects)}
	for _, o := range s.objects {
		if o.Kind() == object.GenInterval {
			st.Intervals++
		} else {
			st.Entities++
		}
	}
	if s.backend != nil {
		st.Relations = len(s.backend.Relations())
		st.Facts = s.backend.TotalFacts()
	} else {
		st.Relations = len(s.facts)
		for _, rel := range s.facts {
			st.Facts += rel.live()
		}
	}
	st.IndexTerms = len(s.entityIdx) + len(s.attrIdx)
	return st
}
