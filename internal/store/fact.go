package store

import (
	"sort"
	"strings"

	"videodb/internal/object"
)

// Fact is a ground relational fact R(v1, …, vn), the R component of the
// video sequence tuple (relations on O × I, e.g. in(o1, o4, gi1)).
type Fact struct {
	Name string
	Args []object.Value
}

// NewFact builds a fact.
func NewFact(name string, args ...object.Value) Fact {
	return Fact{Name: name, Args: args}
}

// RefFact builds the common all-references fact, e.g.
// RefFact("in", "o1", "o4", "gi1").
func RefFact(name string, oids ...object.OID) Fact {
	args := make([]object.Value, len(oids))
	for i, id := range oids {
		args[i] = object.Ref(id)
	}
	return Fact{Name: name, Args: args}
}

// Key returns a canonical string identifying the fact (used for
// de-duplication).
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Name)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact in predicate notation.
func (f Fact) String() string { return f.Key() }

// Equal reports structural equality.
func (f Fact) Equal(g Fact) bool {
	if f.Name != g.Name || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if !f.Args[i].Equal(g.Args[i]) {
			return false
		}
	}
	return true
}

// AddFact inserts the fact if not already present; it reports whether the
// store changed. Facts with empty names are rejected (no change).
func (s *Store) AddFact(f Fact) bool {
	if f.Name == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := f.Key()
	set := s.factSet[f.Name]
	if set == nil {
		set = make(map[string]bool)
		s.factSet[f.Name] = set
	}
	if set[key] {
		return false
	}
	set[key] = true
	// Store a private copy of the args slice (values are immutable).
	args := make([]object.Value, len(f.Args))
	copy(args, f.Args)
	s.facts[f.Name] = append(s.facts[f.Name], Fact{Name: f.Name, Args: args})
	_ = s.log(walRecord{Op: walAddFact, Fact: &jsonFact{Name: f.Name, Args: args}})
	return true
}

// HasFact reports whether the exact fact is present.
func (s *Store) HasFact(f Fact) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.factSet[f.Name][f.Key()]
}

// DeleteFact removes the exact fact; it reports whether it was present.
func (s *Store) DeleteFact(f Fact) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := f.Key()
	set := s.factSet[f.Name]
	if set == nil || !set[key] {
		return false
	}
	delete(set, key)
	fs := s.facts[f.Name]
	for i := range fs {
		if fs[i].Key() == key {
			s.facts[f.Name] = append(fs[:i], fs[i+1:]...)
			break
		}
	}
	if len(s.facts[f.Name]) == 0 {
		delete(s.facts, f.Name)
		delete(s.factSet, f.Name)
	}
	_ = s.log(walRecord{Op: walDeleteFact, Fact: &jsonFact{Name: f.Name, Args: f.Args}})
	return true
}

// Facts returns a copy of all facts of the relation, in insertion order.
func (s *Store) Facts(name string) []Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fs := s.facts[name]
	out := make([]Fact, len(fs))
	copy(out, fs)
	return out
}

// Relations returns the sorted names of all relations with at least one
// fact.
func (s *Store) Relations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.facts))
	for n := range s.facts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FactArities returns, per relation, the sorted distinct arities its
// facts occur with — the schema snapshot the static analyzer consumes.
func (s *Store) FactArities() map[string][]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]int, len(s.facts))
	for name, fs := range s.facts {
		seen := map[int]bool{}
		for _, f := range fs {
			seen[len(f.Args)] = true
		}
		arities := make([]int, 0, len(seen))
		for a := range seen {
			arities = append(arities, a)
		}
		sort.Ints(arities)
		if len(arities) > 0 {
			out[name] = arities
		}
	}
	return out
}

// ForEachFact calls fn for every fact of the relation until fn returns
// false.
func (s *Store) ForEachFact(name string, fn func(Fact) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, f := range s.facts[name] {
		if !fn(f) {
			return
		}
	}
}
