package store

import (
	"fmt"
	"sort"
	"strings"

	"videodb/internal/object"
)

// Fact is a ground relational fact R(v1, …, vn), the R component of the
// video sequence tuple (relations on O × I, e.g. in(o1, o4, gi1)).
type Fact struct {
	Name string
	Args []object.Value
}

// NewFact builds a fact.
func NewFact(name string, args ...object.Value) Fact {
	return Fact{Name: name, Args: args}
}

// RefFact builds the common all-references fact, e.g.
// RefFact("in", "o1", "o4", "gi1").
func RefFact(name string, oids ...object.OID) Fact {
	args := make([]object.Value, len(oids))
	for i, id := range oids {
		args[i] = object.Ref(id)
	}
	return Fact{Name: name, Args: args}
}

// Key returns a canonical string identifying the fact (used for
// de-duplication).
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Name)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact in predicate notation.
func (f Fact) String() string { return f.Key() }

// Equal reports structural equality.
func (f Fact) Equal(g Fact) bool {
	if f.Name != g.Name || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if !f.Args[i].Equal(g.Args[i]) {
			return false
		}
	}
	return true
}

// factRel stores one relation's facts in insertion order with O(1)
// membership and amortized O(1) deletion. Deleted slots become tombstones
// (zero Fact) rather than shifting the list; the list compacts once
// tombstones outnumber live facts. The position map doubles as the
// membership set (it holds live facts only).
type factRel struct {
	list []Fact         // insertion order; tombstoned slots have Name == ""
	pos  map[string]int // fact key -> index into list, live facts only
	dead int            // tombstoned slots in list
}

func newFactRel() *factRel { return &factRel{pos: make(map[string]int)} }

func (r *factRel) live() int { return len(r.pos) }

func (r *factRel) has(key string) bool { _, ok := r.pos[key]; return ok }

func (r *factRel) get(key string) (Fact, bool) {
	if i, ok := r.pos[key]; ok {
		return r.list[i], true
	}
	return Fact{}, false
}

func (r *factRel) add(key string, f Fact) {
	r.pos[key] = len(r.list)
	r.list = append(r.list, f)
}

// undoAdd reverts an add that has not been observed by anyone (WAL append
// failed under the same critical section). The fact is necessarily the
// last list entry.
func (r *factRel) undoAdd(key string) {
	delete(r.pos, key)
	r.list = r.list[:len(r.list)-1]
}

// tombstone removes the fact by key, returning the stored fact and its
// slot so a WAL failure can restore it in place.
func (r *factRel) tombstone(key string) (Fact, int) {
	i := r.pos[key]
	f := r.list[i]
	r.list[i] = Fact{}
	delete(r.pos, key)
	r.dead++
	return f, i
}

// restore reverts a tombstone (WAL append failed before the deletion was
// acknowledged).
func (r *factRel) restore(key string, f Fact, i int) {
	r.list[i] = f
	r.pos[key] = i
	r.dead--
}

// maybeCompact rewrites the list without tombstones once they dominate,
// preserving insertion order; the amortized cost per delete is O(1).
func (r *factRel) maybeCompact() {
	if r.dead <= len(r.list)/2 || r.dead < 16 {
		return
	}
	fresh := make([]Fact, 0, len(r.pos))
	for _, f := range r.list {
		if f.Name != "" {
			r.pos[f.Key()] = len(fresh)
			fresh = append(fresh, f)
		}
	}
	r.list = fresh
	r.dead = 0
}

// each calls fn for every live fact in insertion order until fn returns
// false.
func (r *factRel) each(fn func(Fact) bool) {
	for _, f := range r.list {
		if f.Name == "" {
			continue
		}
		if !fn(f) {
			return
		}
	}
}

// AddFact inserts the fact if not already present; it reports whether the
// store changed. Facts with empty names are rejected (no change), as are
// mutations on a durable store whose write-ahead log is poisoned (see
// AddFactErr for the error).
func (s *Store) AddFact(f Fact) bool {
	ok, _ := s.AddFactErr(f)
	return ok
}

// AddFactErr is AddFact with the failure surfaced: on a durable store it
// returns a non-nil error — and reports no change — if the write-ahead
// log is poisoned or the append fails. A failed append rolls the
// in-memory insertion back, so an unacknowledged fact is never present
// after recovery.
func (s *Store) AddFactErr(f Fact) (bool, error) {
	if f.Name == "" {
		return false, fmt.Errorf("store: fact must have a non-empty relation name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walHealthy(); err != nil {
		return false, err
	}
	if s.backend != nil {
		return s.addFactBackend(f)
	}
	key := f.Key()
	rel := s.facts[f.Name]
	if rel == nil {
		rel = newFactRel()
		s.facts[f.Name] = rel
		s.schemaVer++
	}
	if rel.has(key) {
		return false, nil
	}
	// Store a private copy of the args slice (values are immutable).
	args := make([]object.Value, len(f.Args))
	copy(args, f.Args)
	g := Fact{Name: f.Name, Args: args}
	rel.add(key, g)
	if err := s.log(walRecord{Op: walAddFact, Fact: &jsonFact{Name: f.Name, Args: args}}); err != nil {
		rel.undoAdd(key)
		if rel.live() == 0 && rel.dead == 0 {
			delete(s.facts, f.Name)
			s.schemaVer++
		}
		return false, err
	}
	s.notify(Event{Kind: EventAddFact, Fact: g})
	return true, nil
}

// HasFact reports whether the exact fact is present.
func (s *Store) HasFact(f Fact) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		return s.backend.HasFact(f.Name, f.Key())
	}
	rel := s.facts[f.Name]
	return rel != nil && rel.has(f.Key())
}

// DeleteFact removes the exact fact; it reports whether it was present
// and removed. On a durable store with a poisoned write-ahead log the
// deletion is refused (see DeleteFactErr for the error).
func (s *Store) DeleteFact(f Fact) bool {
	ok, _ := s.DeleteFactErr(f)
	return ok
}

// DeleteFactErr is DeleteFact with the failure surfaced: on a durable
// store it returns a non-nil error — and leaves the fact in place — if
// the write-ahead log is poisoned or the append fails, so an
// unacknowledged deletion is never applied.
func (s *Store) DeleteFactErr(f Fact) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walHealthy(); err != nil {
		return false, err
	}
	if s.backend != nil {
		return s.deleteFactBackend(f)
	}
	rel := s.facts[f.Name]
	if rel == nil {
		return false, nil
	}
	key := f.Key()
	if !rel.has(key) {
		return false, nil
	}
	stored, slot := rel.tombstone(key)
	if err := s.log(walRecord{Op: walDeleteFact, Fact: &jsonFact{Name: stored.Name, Args: stored.Args}}); err != nil {
		rel.restore(key, stored, slot)
		return false, err
	}
	if rel.live() == 0 {
		delete(s.facts, f.Name)
		s.schemaVer++
	} else {
		rel.maybeCompact()
	}
	s.notify(Event{Kind: EventDeleteFact, Fact: stored})
	return true, nil
}

// Facts returns a copy of all facts of the relation, in insertion order.
func (s *Store) Facts(name string) []Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		var out []Fact
		s.backend.ScanFacts(name, nil, func(f Fact) bool {
			out = append(out, f)
			return true
		})
		return out
	}
	rel := s.facts[name]
	if rel == nil {
		return nil
	}
	out := make([]Fact, 0, rel.live())
	rel.each(func(f Fact) bool {
		out = append(out, f)
		return true
	})
	return out
}

// Relations returns the sorted names of all relations with at least one
// fact.
func (s *Store) Relations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		return s.backend.Relations()
	}
	out := make([]string, 0, len(s.facts))
	for n, rel := range s.facts {
		if rel.live() > 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// FactArities returns, per relation, the sorted distinct arities its
// facts occur with — the schema snapshot the static analyzer consumes.
func (s *Store) FactArities() map[string][]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		return s.backend.FactArities()
	}
	out := make(map[string][]int, len(s.facts))
	for name, rel := range s.facts {
		seen := map[int]bool{}
		rel.each(func(f Fact) bool {
			seen[len(f.Args)] = true
			return true
		})
		arities := make([]int, 0, len(seen))
		for a := range seen {
			arities = append(arities, a)
		}
		sort.Ints(arities)
		if len(arities) > 0 {
			out[name] = arities
		}
	}
	return out
}

// ForEachFact calls fn for every fact of the relation until fn returns
// false.
func (s *Store) ForEachFact(name string, fn func(Fact) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.backend != nil {
		s.backend.ScanFacts(name, nil, fn)
		return
	}
	if rel := s.facts[name]; rel != nil {
		rel.each(fn)
	}
}
