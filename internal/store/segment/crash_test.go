package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videodb/internal/object"
	"videodb/internal/store"
)

// Crash-recovery fault injection, mirroring the store's checkpoint crash
// tests: each test manufactures the on-disk state a crash at a specific
// instant would leave behind, reopens, and checks that exactly the
// acknowledged state is recovered (or that corruption is refused, never
// silently skipped).

func readDirNames(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, e := range entries {
		out[e.Name()] = true
	}
	return out
}

// TestTornTailTruncated: a crash mid-append leaves a partial final
// record; recovery keeps the acknowledged prefix and truncates the tear.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.AddFactErr(fact("r", "a"))
	st.AddFactErr(fact("r", "b"))
	// Crash without Close; then tear the last record in half.
	tail := filepath.Join(dir, tailName)
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tail, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTestStore(t, dir)
	if !re.HasFact(fact("r", "a")) {
		t.Fatal("first record lost")
	}
	if re.HasFact(fact("r", "b")) {
		t.Fatal("torn record resurrected")
	}
}

// TestMidTailCorruptionRejected: corruption before the final record is
// an error — silently skipping it would drop an acknowledged write while
// applying later ones.
func TestMidTailCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.AddFactErr(fact("r", "aaaa"))
	st.AddFactErr(fact("r", "bbbb"))
	st.Close()
	tail := filepath.Join(dir, tailName)
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	// Close flushed; the tail is empty. Rebuild a two-record tail by
	// reopening and writing again without flush.
	if len(data) == 0 {
		st2 := openTestStore(t, dir)
		st2.AddFactErr(fact("r", "cccc"))
		st2.AddFactErr(fact("r", "dddd"))
		data, err = os.ReadFile(tail)
		if err != nil {
			t.Fatal(err)
		}
	}
	mangled := strings.Replace(string(data), "cccc", "xxxx", 1)
	if mangled == string(data) {
		t.Fatal("test setup: pattern not found")
	}
	if err := os.WriteFile(tail, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-tail corruption must fail recovery, got %v", err)
	}
}

// TestCrashBetweenManifestAndTailTruncate: the flush published the new
// manifest but crashed before truncating the tail. The TailSeq watermark
// must make replay skip the already-baked records (no double-apply, no
// duplicates).
func TestCrashBetweenManifestAndTailTruncate(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.AddFactErr(fact("r", "a"))
	st.AddFactErr(fact("r", "b"))
	st.DeleteFactErr(fact("r", "a"))
	tail := filepath.Join(dir, tailName)
	pre, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil { // flush: manifest published, tail truncated
		t.Fatal(err)
	}
	// Undo the truncation: restore the pre-flush tail content, as if the
	// crash hit between the manifest rename and the truncate.
	if err := os.WriteFile(tail, pre, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTestStore(t, dir)
	if got := factKeys(re, "r"); fmt.Sprint(got) != `[r("b")]` {
		t.Fatalf("replay not idempotent: %v", got)
	}
	if n := re.TotalFacts(); n != 1 {
		t.Fatalf("TotalFacts = %d, want 1 (double-applied?)", n)
	}
}

// TestOrphanSegmentCleanedUp: a crash after writing a segment file but
// before the manifest rename leaves an orphan; open must ignore and
// delete it.
func TestOrphanSegmentCleanedUp(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.AddFactErr(fact("r", "a"))
	st.Checkpoint()
	st.Close()
	// Fabricate the orphans a crash mid-flush would leave.
	orphanSeg := filepath.Join(dir, "seg-00009999.seg")
	if err := os.WriteFile(orphanSeg, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphanObj := filepath.Join(dir, "obj-00009998.json")
	if err := os.WriteFile(orphanObj, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphanTmp := filepath.Join(dir, ".manifest-123.tmp")
	if err := os.WriteFile(orphanTmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTestStore(t, dir)
	if !re.HasFact(fact("r", "a")) {
		t.Fatal("state lost")
	}
	names := readDirNames(t, dir)
	for _, orphan := range []string{"seg-00009999.seg", "obj-00009998.json", ".manifest-123.tmp"} {
		if names[orphan] {
			t.Fatalf("orphan %s not cleaned up (have %v)", orphan, names)
		}
	}
}

// TestPartialCompactionRecovered: a crash after the compaction wrote its
// merged segment but before the manifest swap leaves the old manifest
// pointing at the old segments plus a merged orphan. Recovery must serve
// the old state and delete the orphan.
func TestPartialCompactionRecovered(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, WithCompactThreshold(1000))
	for round := 0; round < 3; round++ {
		st.AddFactErr(fact("r", fmt.Sprintf("k%d", round)))
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	before := factKeys(st, "r")
	namesBefore := readDirNames(t, dir)
	st.Close()

	// The merged segment a crashed compaction would have left: a valid
	// segment file whose name the manifest does not reference.
	merged := segInput{adds: map[string][]store.Fact{
		"r": {fact("r", "k0"), fact("r", "k1"), fact("r", "k2")},
	}}
	orphan := filepath.Join(dir, "seg-00000777.seg")
	if err := writeSegment(orphan, merged, 1<<14); err != nil {
		t.Fatal(err)
	}

	re := openTestStore(t, dir)
	if got := factKeys(re, "r"); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatalf("recovered %v, want %v", got, before)
	}
	names := readDirNames(t, dir)
	if names["seg-00000777.seg"] {
		t.Fatal("partial-compaction orphan not removed")
	}
	for n := range namesBefore {
		if !names[n] && n != tailName {
			t.Fatalf("live file %s removed during orphan cleanup", n)
		}
	}
}

// TestCorruptManifestRejected and friends: checksummed files refuse to
// load when mangled, instead of serving partial state.
func TestCorruptFilesRejected(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.AddFactErr(fact("r", "payload-value-1"))
	st.Put(object.NewEntity("e1"))
	st.Checkpoint()
	st.Close()

	mangle := func(t *testing.T, name, old, new string) func() {
		t.Helper()
		p := filepath.Join(dir, name)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out := strings.Replace(string(data), old, new, 1)
		if out == string(data) {
			t.Fatalf("test setup: %q not in %s", old, name)
		}
		if err := os.WriteFile(p, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return func() {
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	man, _, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 1 || man.ObjFile == "" {
		t.Fatalf("unexpected manifest %+v", man)
	}

	t.Run("manifest", func(t *testing.T) {
		restore := mangle(t, manifestName, `"tailSeq"`, `"tailSeX"`)
		defer restore()
		if _, err := Open(dir); err == nil {
			t.Fatal("corrupt manifest accepted")
		}
	})
	t.Run("segment-index", func(t *testing.T) {
		restore := mangle(t, man.Segments[0], `"relStats"`, `"relStatX"`)
		defer restore()
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupt segment index accepted: %v", err)
		}
	})
	t.Run("segment-truncated", func(t *testing.T) {
		p := filepath.Join(dir, man.Segments[0])
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data[:len(data)-4], 0o644); err != nil {
			t.Fatal(err)
		}
		defer os.WriteFile(p, data, 0o644)
		if _, err := Open(dir); err == nil {
			t.Fatal("truncated segment accepted")
		}
	})
	t.Run("object-file", func(t *testing.T) {
		restore := mangle(t, man.ObjFile, `"e1"`, `"eX"`)
		defer restore()
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupt object snapshot accepted: %v", err)
		}
	})
	// After restoring everything the directory opens again.
	re := openTestStore(t, dir)
	if !re.HasFact(fact("r", "payload-value-1")) || re.Get("e1") == nil {
		t.Fatal("state lost after restore")
	}
}

// TestCorruptBlockSurfacesReadError: block corruption is detected by the
// per-block CRC at read time and reported via BackendStats.ReadErrors
// (reads are under RLock; the error is latched, not panicked).
func TestCorruptBlockSurfacesReadError(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.AddFactErr(fact("r", "block-payload-aa"))
	st.Checkpoint()
	st.Close()
	man, _, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, man.Segments[0])
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first block (right after the 8-byte magic)
	// without touching the index, so open succeeds but the block read
	// fails its CRC.
	data[9] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTestStore(t, dir)
	if re.HasFact(fact("r", "block-payload-aa")) {
		t.Fatal("corrupt block served")
	}
	if bs := re.BackendStats(); bs.ReadErrors == 0 {
		t.Fatalf("read error not counted: %+v", bs)
	}
}

// TestWriteFailurePoisonsBackend: a tail append failure must refuse the
// mutation and every later one (fail-fast), like the WAL contract.
func TestWriteFailurePoisonsBackend(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenBackend(b)
	if err != nil {
		t.Fatal(err)
	}
	st.AddFactErr(fact("r", "a"))
	// Close the tail file behind the backend's back: the next append
	// fails at the OS level.
	b.tail.f.Close()
	if ok, err := st.AddFactErr(fact("r", "b")); err == nil || ok {
		t.Fatalf("append onto closed tail acknowledged: ok=%v err=%v", ok, err)
	}
	if ok, err := st.AddFactErr(fact("r", "c")); err == nil || ok {
		t.Fatalf("poisoned backend accepted a write: ok=%v err=%v", ok, err)
	}
	if err := st.Put(object.NewEntity("e1")); err == nil {
		t.Fatal("poisoned backend accepted an object write")
	}
	// Reads stay available.
	if !st.HasFact(fact("r", "a")) {
		t.Fatal("acknowledged fact lost after poisoning")
	}
	// Close surfaces the failure.
	if err := st.Close(); err == nil {
		t.Fatal("Close after poisoned write returned nil")
	}
	// Reopening recovers exactly the acknowledged prefix.
	re := openTestStore(t, dir)
	if !re.HasFact(fact("r", "a")) || re.HasFact(fact("r", "b")) {
		t.Fatal("recovery state wrong after poisoned session")
	}
}
