package segment

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"videodb/internal/object"
	"videodb/internal/store"
)

// Differential property test: drive an identical randomized operation
// sequence into the in-memory store (the oracle) and a segment-backed
// store (with aggressive thresholds so flushes, compactions, and block
// evictions all trigger), interleaving checkpoints and full restarts on
// the segment side, and require the observable state to stay identical.

type storePair struct {
	t   *testing.T
	dir string
	mem *store.Store
	seg *store.Store
}

func (p *storePair) reopenSeg() {
	p.t.Helper()
	if err := p.seg.Close(); err != nil {
		p.t.Fatalf("close before reopen: %v", err)
	}
	b, err := Open(p.dir,
		WithFlushThreshold(32),
		WithBlockTargetBytes(128),
		WithBlockCacheBytes(2<<10),
		WithCompactThreshold(4))
	if err != nil {
		p.t.Fatalf("reopen backend: %v", err)
	}
	st, err := store.OpenBackend(b)
	if err != nil {
		p.t.Fatalf("reopen store: %v", err)
	}
	p.seg = st
}

func (p *storePair) check(step int) {
	p.t.Helper()
	relsM, relsS := p.mem.Relations(), p.seg.Relations()
	if fmt.Sprint(relsM) != fmt.Sprint(relsS) {
		p.t.Fatalf("step %d: relations diverged\n mem %v\n seg %v", step, relsM, relsS)
	}
	for _, rel := range relsM {
		if cm, cs := p.mem.FactCount(rel), p.seg.FactCount(rel); cm != cs {
			p.t.Fatalf("step %d: count(%s) mem=%d seg=%d", step, rel, cm, cs)
		}
		km := sortedKeys(p.mem, rel)
		ks := sortedKeys(p.seg, rel)
		if fmt.Sprint(km) != fmt.Sprint(ks) {
			p.t.Fatalf("step %d: facts(%s) diverged\n mem %v\n seg %v", step, rel, km, ks)
		}
	}
	if tm, ts := p.mem.TotalFacts(), p.seg.TotalFacts(); tm != ts {
		p.t.Fatalf("step %d: TotalFacts mem=%d seg=%d", step, tm, ts)
	}
	am := p.mem.FactArities()
	as := p.seg.FactArities()
	if fmt.Sprint(am) != fmt.Sprint(as) {
		p.t.Fatalf("step %d: arities diverged mem=%v seg=%v", step, am, as)
	}
	if om, os := p.mem.OIDs(), p.seg.OIDs(); fmt.Sprint(om) != fmt.Sprint(os) {
		p.t.Fatalf("step %d: objects diverged mem=%v seg=%v", step, om, os)
	}
}

func sortedKeys(st *store.Store, rel string) []string {
	var out []string
	st.ForEachFact(rel, func(f store.Fact) bool {
		out = append(out, f.Key())
		return true
	})
	sort.Strings(out)
	return out
}

func TestMemSegmentEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	p := &storePair{t: t, dir: dir, mem: store.New()}
	p.seg = openTestStore(t, dir,
		WithFlushThreshold(32),
		WithBlockTargetBytes(128),
		WithBlockCacheBytes(2<<10),
		WithCompactThreshold(4))
	t.Cleanup(func() { p.seg.Close() })

	rels := []string{"in", "next", "overlap"}
	randFact := func() store.Fact {
		rel := rels[rng.Intn(len(rels))]
		arity := 1 + rng.Intn(3)
		args := make([]object.Value, arity)
		for i := range args {
			switch rng.Intn(3) {
			case 0:
				args[i] = object.Str(fmt.Sprintf("s%d", rng.Intn(40)))
			case 1:
				args[i] = object.Num(float64(rng.Intn(25)))
			default:
				args[i] = object.Ref(object.OID(fmt.Sprintf("o%d", rng.Intn(15))))
			}
		}
		return store.NewFact(rel, args...)
	}

	const steps = 3000
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(100); {
		case r < 55: // add
			f := randFact()
			okM, errM := p.mem.AddFactErr(f)
			okS, errS := p.seg.AddFactErr(f)
			if okM != okS || (errM == nil) != (errS == nil) {
				t.Fatalf("step %d: add %s mem=(%v,%v) seg=(%v,%v)", i, f, okM, errM, okS, errS)
			}
		case r < 85: // delete (often of a recently-likely fact)
			f := randFact()
			okM, errM := p.mem.DeleteFactErr(f)
			okS, errS := p.seg.DeleteFactErr(f)
			if okM != okS || (errM == nil) != (errS == nil) {
				t.Fatalf("step %d: del %s mem=(%v,%v) seg=(%v,%v)", i, f, okM, errM, okS, errS)
			}
		case r < 90: // object churn
			oid := object.OID(fmt.Sprintf("o%d", rng.Intn(15)))
			if rng.Intn(2) == 0 {
				o := object.NewEntity(oid)
				o.Set("n", object.Num(float64(i)))
				if err := p.mem.Put(o); err != nil {
					t.Fatal(err)
				}
				if err := p.seg.Put(o); err != nil {
					t.Fatal(err)
				}
			} else {
				p.mem.Delete(oid)
				p.seg.Delete(oid)
			}
		case r < 93: // membership probe on a random fact
			f := randFact()
			if hm, hs := p.mem.HasFact(f), p.seg.HasFact(f); hm != hs {
				t.Fatalf("step %d: HasFact(%s) mem=%v seg=%v", i, f, hm, hs)
			}
		case r < 95: // bound scan comparison
			rel := rels[rng.Intn(len(rels))]
			bind := []store.ArgBind{{Pos: rng.Intn(2), Val: object.Str(fmt.Sprintf("s%d", rng.Intn(40)))}}
			var km, ks []string
			p.mem.ScanFacts(rel, bind, func(f store.Fact) bool { km = append(km, f.Key()); return true })
			p.seg.ScanFacts(rel, bind, func(f store.Fact) bool { ks = append(ks, f.Key()); return true })
			sort.Strings(km)
			sort.Strings(ks)
			if fmt.Sprint(km) != fmt.Sprint(ks) {
				t.Fatalf("step %d: bound scan diverged\n mem %v\n seg %v", i, km, ks)
			}
		case r < 98: // checkpoint the segment side
			if err := p.seg.Checkpoint(); err != nil {
				t.Fatalf("step %d: checkpoint: %v", i, err)
			}
		default: // full restart of the segment side
			p.reopenSeg()
		}
		if i%250 == 0 || i == steps-1 {
			p.check(i)
		}
	}
	// The run must actually have exercised the disk path (counters are
	// per-instance, so read them before the final restart resets them).
	bs := p.seg.BackendStats()
	if bs.SegmentFacts == 0 || bs.CacheMisses == 0 {
		t.Fatalf("test did not exercise the disk path: %+v", bs)
	}
	// Final restart and full comparison.
	p.reopenSeg()
	p.check(steps)
}
