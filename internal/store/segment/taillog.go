package segment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"videodb/internal/object"
	"videodb/internal/store"
)

// The tail log is the segment backend's short write-ahead log: every
// acknowledged mutation since the last flush, one CRC-protected JSON
// record per line. Unlike the mem backend's WAL it never grows past the
// flush threshold (a flush bakes its records into a segment + object
// snapshot and truncates), which is what bounds recovery at O(active
// set). A torn final record — crash mid-append — is detected and
// truncated; corruption anywhere earlier is an error.

type tailOp string

const (
	tailAddFact tailOp = "addfact"
	tailDelFact tailOp = "delfact"
	tailPutObj  tailOp = "putobj"
	tailDelObj  tailOp = "delobj"
)

type tailFact struct {
	Name string         `json:"name"`
	Args []object.Value `json:"args"`
}

type tailRecord struct {
	Seq    uint64         `json:"seq"`
	Op     tailOp         `json:"op"`
	Fact   *tailFact      `json:"fact,omitempty"`
	Object *object.Object `json:"object,omitempty"`
	OID    string         `json:"oid,omitempty"`
	CRC    uint32         `json:"crc"`
}

func (r tailRecord) checksum() (uint32, error) {
	c := r
	c.CRC = 0
	body, err := json.Marshal(c)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(body), nil
}

type tailLog struct {
	path string
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	sync bool
}

// openTail opens (or creates) the tail log for appending. Replay happens
// separately, before the append handle is attached.
func openTail(path string, lastSeq uint64, syncEvery bool) (*tailLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &tailLog{path: path, f: f, w: bufio.NewWriter(f), seq: lastSeq, sync: syncEvery}, nil
}

func (t *tailLog) append(rec tailRecord) error {
	t.seq++
	rec.Seq = t.seq
	crc, err := rec.checksum()
	if err != nil {
		return err
	}
	rec.CRC = crc
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := t.w.Write(append(body, '\n')); err != nil {
		return err
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	if t.sync {
		return t.f.Sync()
	}
	return nil
}

// truncate resets the log to empty after a flush baked its records into
// the manifest-referenced files. The sequence counter keeps running, so
// the TailSeq watermark stays monotonic across truncations.
func (t *tailLog) truncate() error {
	if err := t.w.Flush(); err != nil {
		return err
	}
	if err := t.f.Truncate(0); err != nil {
		return err
	}
	if _, err := t.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	t.w.Reset(t.f)
	return nil
}

func (t *tailLog) close() error {
	if t.f == nil {
		return nil
	}
	if err := t.w.Flush(); err != nil {
		t.f.Close()
		return err
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// replayTail reads the log and calls apply for every record with
// Seq > afterSeq, in order. It returns the last sequence number seen
// (applied or skipped). A torn final record is truncated away.
func replayTail(path string, afterSeq uint64, apply func(tailRecord) error) (uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return afterSeq, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	var (
		lastSeq    = afterSeq
		goodOffset int64
		r          = bufio.NewReader(f)
	)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return 0, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var rec tailRecord
			bad := json.Unmarshal(trimmed, &rec) != nil
			if !bad {
				want, cerr := rec.checksum()
				bad = cerr != nil || want != rec.CRC
			}
			if bad {
				rest, rerr := io.ReadAll(r)
				if rerr != nil {
					return 0, rerr
				}
				torn := atEOF || len(line) == 0 || line[len(line)-1] == '\n'
				if len(bytes.TrimSpace(rest)) > 0 || !torn {
					return 0, fmt.Errorf("segment: corrupt tail-log record at line %d", lineNo)
				}
				if err := os.Truncate(path, goodOffset); err != nil {
					return 0, fmt.Errorf("segment: truncating torn tail: %w", err)
				}
				return lastSeq, nil
			}
			if rec.Seq > afterSeq {
				if err := apply(rec); err != nil {
					return 0, fmt.Errorf("segment: replaying tail record %d: %w", rec.Seq, err)
				}
			}
			if rec.Seq > lastSeq {
				lastSeq = rec.Seq
			}
			goodOffset += int64(len(line))
		} else {
			goodOffset += int64(len(line))
		}
		if atEOF {
			return lastSeq, nil
		}
	}
}

// --- Object snapshot files ---------------------------------------------------

// objSnapshot is the object file format: every live object at flush
// time, checksummed like the store's snapshot format.
type objSnapshot struct {
	Version  int              `json:"version"`
	Objects  []*object.Object `json:"objects"`
	Checksum string           `json:"checksum"`
}

// tailFactOf converts to the wire form.
func tailFactOf(f store.Fact) *tailFact { return &tailFact{Name: f.Name, Args: f.Args} }
