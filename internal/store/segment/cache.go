package segment

import (
	"container/list"
	"sync"
	"sync/atomic"

	"videodb/internal/store"
)

// decodedBlock is one fact block resident in the cache: the decoded
// facts in key order with their canonical keys (for membership binary
// search), and the cost charged against the cache budget.
type decodedBlock struct {
	facts []store.Fact
	keys  []string // sorted; parallel to facts
	cost  int64
}

// find returns the position of key in the block, or -1.
func (b *decodedBlock) find(key string) int {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(b.keys) && b.keys[lo] == key {
		return lo
	}
	return -1
}

type blockKey struct {
	seg   uint64
	block int
}

// blockCache is a byte-budgeted LRU over decoded blocks. It has its own
// lock because fact reads run under the store's read lock — many readers
// hit the cache concurrently, and a get mutates LRU order. The budget is
// soft by one block: the block being served is always admitted, so a
// single block larger than the whole budget still works (and evicts
// everything else).
type blockCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	entries map[blockKey]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key blockKey
	blk *decodedBlock
}

func newBlockCache(budget int64) *blockCache {
	return &blockCache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[blockKey]*list.Element),
	}
}

func (c *blockCache) get(k blockKey) (*decodedBlock, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).blk, true
	}
	c.misses.Add(1)
	return nil, false
}

// put admits a block, evicting least-recently-used entries until the
// budget holds. Racing puts for the same key keep the first.
func (c *blockCache) put(k blockKey, blk *decodedBlock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, blk: blk})
	c.used += blk.cost
	for c.used > c.budget && c.ll.Len() > 1 {
		el := c.ll.Back()
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, ent.key)
		c.used -= ent.blk.cost
		c.evictions.Add(1)
	}
}

// dropSegment discards every cached block of a segment (called after
// compaction retires the file; the ids are never reused, so stale
// entries would only waste budget).
func (c *blockCache) dropSegment(seg uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.seg == seg {
			c.ll.Remove(el)
			delete(c.entries, ent.key)
			c.used -= ent.blk.cost
		}
		el = next
	}
}

func (c *blockCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

func (c *blockCache) entriesLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
