package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"videodb/internal/object"
	"videodb/internal/store"
)

// Store is the persistent segment backend. It implements store.Backend.
//
// Locking contract: the parent store.Store serializes every mutation
// (AddFact, DeleteFact, LogPutObject, Flush, Compact, Close) under its
// write lock and runs reads (HasFact, ScanFacts, counts) under its read
// lock, so this type needs no lock of its own for the memtable, segment
// list, horizon, or statistics. The block cache and the lazy dictionary
// loads have internal synchronization because concurrent readers share
// them.
type Store struct {
	dir  string
	opt  options
	man  manifest
	tail *tailLog

	segs  []*segmentReader
	cache *blockCache

	mem memtable

	// horizon maps rel -> fact key -> the highest segment position (index
	// into segs) holding a tombstone for that key. An add instance in
	// segment i is visible iff no tombstone exists at a position > i.
	horizon map[string]map[string]int

	// agg aggregates live per-relation statistics across segments and
	// memtable; total is the live fact count over all relations.
	agg   map[string]*relAgg
	total int

	segAdds  int // fact records resident in segment files
	segTombs int // tombstones resident in segment files

	objSrc    func() []*object.Object
	recovered []*object.Object

	err    error // latched first write/flush failure; mutations fail fast
	closed bool

	flushes     uint64
	compactions uint64

	readErrMu   sync.Mutex
	readErrs    atomic.Uint64
	lastReadErr error
}

type relAgg struct {
	live    int
	arities map[int]int // arity -> live count
}

type memRel struct {
	order []string // insertion order; stale entries skipped via facts map
	facts map[string]store.Fact
	// removed tracks keys deleted in place: their order entries are
	// stale. A later re-add of such a key compacts order first, so every
	// live key appears in order exactly once (scans and flushes iterate
	// order and must not emit duplicates).
	removed map[string]bool
}

// add inserts a key that is not currently live, compacting the order
// slice when the key's previous incarnation left a stale entry behind.
func (mr *memRel) add(key string, f store.Fact) {
	if mr.removed[key] {
		fresh := make([]string, 0, len(mr.facts)+1)
		for _, k := range mr.order {
			if _, ok := mr.facts[k]; ok {
				fresh = append(fresh, k)
			}
		}
		mr.order = fresh
		mr.removed = nil // every stale entry is gone
	}
	mr.facts[key] = f
	mr.order = append(mr.order, key)
}

type memtable struct {
	adds    map[string]*memRel
	dels    map[string]map[string]int // rel -> key -> arity
	records int                       // fact mutations since last flush
}

func newMemtable() memtable {
	return memtable{adds: make(map[string]*memRel), dels: make(map[string]map[string]int)}
}

func (m *memtable) delCount() int {
	n := 0
	for _, d := range m.dels {
		n += len(d)
	}
	return n
}

func (m *memtable) addCount() int {
	n := 0
	for _, a := range m.adds {
		n += len(a.facts)
	}
	return n
}

// options configures the backend.
type options struct {
	cacheBytes  int64
	flushEvery  int
	blockTarget int
	compactAt   int
	syncEvery   bool
}

// Option configures Open.
type Option func(*options)

// WithBlockCacheBytes sets the decoded-block cache budget (soft by one
// block). Default 32 MiB.
func WithBlockCacheBytes(n int64) Option { return func(o *options) { o.cacheBytes = n } }

// WithFlushThreshold sets how many fact mutations accumulate in the
// memtable before an automatic flush into a new segment. Default 8192.
func WithFlushThreshold(n int) Option { return func(o *options) { o.flushEvery = n } }

// WithBlockTargetBytes bounds the encoded size of one fact block.
// Default 16 KiB.
func WithBlockTargetBytes(n int) Option { return func(o *options) { o.blockTarget = n } }

// WithCompactThreshold sets the segment count that triggers an automatic
// full compaction after a flush. Default 8.
func WithCompactThreshold(n int) Option { return func(o *options) { o.compactAt = n } }

// WithSyncEveryWrite fsyncs the tail log after every record (slow,
// maximally durable; the default flushes to the OS per record).
func WithSyncEveryWrite() Option { return func(o *options) { o.syncEvery = true } }

func defaultOptions() options {
	return options{
		cacheBytes:  32 << 20,
		flushEvery:  8192,
		blockTarget: 16 << 10,
		compactAt:   8,
	}
}

// Open opens (or creates) a segment-backed database directory and
// recovers its state: manifest, segment footers/indexes, the object
// snapshot, and a tail-log replay bounded by the flush threshold. Fact
// blocks and dictionaries are not read. Orphan files from a crash
// mid-flush or mid-compaction are removed.
func Open(dir string, opts ...Option) (*Store, error) {
	opt := defaultOptions()
	for _, o := range opts {
		o(&opt)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		cache:   newBlockCache(opt.cacheBytes),
		mem:     newMemtable(),
		horizon: make(map[string]map[string]int),
		agg:     make(map[string]*relAgg),
		objSrc:  func() []*object.Object { return nil },
	}
	man, ok, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		man = manifest{Version: manifestVersion, NextID: 1}
	}
	s.man = man

	for _, name := range man.Segments {
		id, perr := segFileID(name)
		if perr != nil {
			return nil, perr
		}
		sr, err := openSegment(id, filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, sr)
	}
	s.rebuildDerived()

	objects := make(map[object.OID]*object.Object)
	if man.ObjFile != "" {
		if err := readObjects(filepath.Join(dir, man.ObjFile), objects); err != nil {
			return nil, err
		}
	}

	tailPath := filepath.Join(dir, tailName)
	lastSeq, err := replayTail(tailPath, man.TailSeq, func(rec tailRecord) error {
		switch rec.Op {
		case tailAddFact:
			if rec.Fact == nil {
				return fmt.Errorf("addfact record without fact")
			}
			f := store.Fact{Name: rec.Fact.Name, Args: rec.Fact.Args}
			s.applyAdd(f, f.Key())
			return nil
		case tailDelFact:
			if rec.Fact == nil {
				return fmt.Errorf("delfact record without fact")
			}
			f := store.Fact{Name: rec.Fact.Name, Args: rec.Fact.Args}
			s.applyDel(f.Name, f.Key(), len(f.Args))
			return nil
		case tailPutObj:
			if rec.Object == nil {
				return fmt.Errorf("putobj record without object")
			}
			objects[rec.Object.OID()] = rec.Object
			return nil
		case tailDelObj:
			delete(objects, object.OID(rec.OID))
			return nil
		default:
			return fmt.Errorf("unknown op %q", rec.Op)
		}
	})
	if err != nil {
		return nil, err
	}
	s.tail, err = openTail(tailPath, lastSeq, opt.syncEvery)
	if err != nil {
		return nil, err
	}

	oids := make([]object.OID, 0, len(objects))
	for oid := range objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	s.recovered = make([]*object.Object, 0, len(objects))
	for _, oid := range oids {
		s.recovered = append(s.recovered, objects[oid])
	}

	s.removeOrphans()
	return s, nil
}

// rebuildDerived recomputes horizon, aggregate statistics, and resident
// counts from the segment indexes plus the current memtable.
func (s *Store) rebuildDerived() {
	s.horizon = make(map[string]map[string]int)
	s.agg = make(map[string]*relAgg)
	s.total = 0
	s.segAdds = 0
	s.segTombs = 0
	for si, sr := range s.segs {
		for rel, st := range sr.idx.RelStats {
			a := s.aggFor(rel)
			a.live += st.Adds
			s.segAdds += st.Adds
			for arity, n := range st.Arities {
				a.arities[arity] += n
			}
			s.total += st.Adds
		}
		for rel, tombs := range sr.idx.Tombs {
			a := s.aggFor(rel)
			h := s.horizon[rel]
			if h == nil {
				h = make(map[string]int)
				s.horizon[rel] = h
			}
			for _, tr := range tombs {
				a.live--
				a.arities[tr.Arity]--
				s.total--
				s.segTombs++
				if cur, ok := h[tr.Key]; !ok || si > cur {
					h[tr.Key] = si
				}
			}
		}
	}
	// Memtable contributions (non-empty only mid-run; at open the
	// memtable is rebuilt by tail replay after this call).
	for rel, mr := range s.mem.adds {
		a := s.aggFor(rel)
		for _, f := range mr.facts {
			a.live++
			a.arities[len(f.Args)]++
			s.total++
		}
	}
	for rel, dels := range s.mem.dels {
		a := s.aggFor(rel)
		for _, arity := range dels {
			a.live--
			a.arities[arity]--
			s.total--
		}
	}
}

func (s *Store) aggFor(rel string) *relAgg {
	a := s.agg[rel]
	if a == nil {
		a = &relAgg{arities: make(map[int]int)}
		s.agg[rel] = a
	}
	return a
}

// --- store.Backend: wiring ---------------------------------------------------

// SetObjectSource installs the callback that snapshots the live object
// set at flush time. The parent store calls it with its lock held, so
// the callback must not re-lock.
//
//videolint:ignore errlatch open-time wiring, not durable state: the latch gates the fact and flush paths, not backend installation
func (s *Store) SetObjectSource(fn func() []*object.Object) { s.objSrc = fn }

// RecoveredObjects returns the object set reconstructed at Open (object
// snapshot plus tail-log replay), sorted by oid.
func (s *Store) RecoveredObjects() []*object.Object { return s.recovered }

// --- store.Backend: fact mutations -------------------------------------------

func (s *Store) healthy() error {
	if s.closed {
		return fmt.Errorf("segment: store is closed")
	}
	if s.err != nil {
		return fmt.Errorf("segment: backend poisoned by an earlier write failure (reopen to resume): %w", s.err)
	}
	return nil
}

// AddFact durably appends the fact and applies it to the memtable. The
// caller has verified the fact is absent. A failed tail append leaves
// state untouched and poisons the backend (fail-fast, mirroring the WAL
// contract).
func (s *Store) AddFact(f store.Fact, key string) error {
	if err := s.healthy(); err != nil {
		return err
	}
	if err := s.tail.append(tailRecord{Op: tailAddFact, Fact: tailFactOf(f)}); err != nil {
		s.err = err
		return err
	}
	s.applyAdd(f, key)
	s.maybeAutoFlush()
	return nil
}

// DeleteFact durably appends the deletion and applies it. The caller has
// verified the fact is present.
func (s *Store) DeleteFact(f store.Fact, key string) error {
	if err := s.healthy(); err != nil {
		return err
	}
	if err := s.tail.append(tailRecord{Op: tailDelFact, Fact: tailFactOf(f)}); err != nil {
		s.err = err
		return err
	}
	s.applyDel(f.Name, key, len(f.Args))
	s.maybeAutoFlush()
	return nil
}

// maybeAutoFlush flushes when the memtable crosses the threshold. The
// mutation that triggered it is already durable in the tail log, so a
// flush failure is latched rather than failing the acknowledged write.
func (s *Store) maybeAutoFlush() {
	if s.mem.records < s.opt.flushEvery {
		return
	}
	if err := s.flushLocked(); err != nil && s.err == nil {
		s.err = err
	}
}

// applyAdd applies an acknowledged fact insertion to the memtable. A key
// tombstoned in the memtable is resurrected (the segment-resident copy
// becomes visible again); otherwise the fact joins the memtable adds.
func (s *Store) applyAdd(f store.Fact, key string) {
	rel := f.Name
	s.mem.records++
	if dels := s.mem.dels[rel]; dels != nil {
		if arity, ok := dels[key]; ok {
			delete(dels, key)
			if len(dels) == 0 {
				delete(s.mem.dels, rel)
			}
			a := s.aggFor(rel)
			a.live++
			a.arities[arity]++
			s.total++
			return
		}
	}
	mr := s.mem.adds[rel]
	if mr == nil {
		mr = &memRel{facts: make(map[string]store.Fact)}
		s.mem.adds[rel] = mr
	}
	if _, ok := mr.facts[key]; ok {
		return // replay idempotence guard; unreachable in the live path
	}
	mr.add(key, f)
	a := s.aggFor(rel)
	a.live++
	a.arities[len(f.Args)]++
	s.total++
}

// applyDel applies an acknowledged fact deletion: a memtable add is
// cancelled in place; a segment-resident fact gets a memtable tombstone.
func (s *Store) applyDel(rel, key string, arity int) {
	s.mem.records++
	if mr := s.mem.adds[rel]; mr != nil {
		if _, ok := mr.facts[key]; ok {
			delete(mr.facts, key)
			if len(mr.facts) == 0 {
				delete(s.mem.adds, rel)
			} else {
				if mr.removed == nil {
					mr.removed = make(map[string]bool)
				}
				mr.removed[key] = true
			}
			s.noteDel(rel, arity)
			return
		}
	}
	dels := s.mem.dels[rel]
	if dels == nil {
		dels = make(map[string]int)
		s.mem.dels[rel] = dels
	}
	if _, ok := dels[key]; ok {
		return // replay idempotence guard
	}
	dels[key] = arity
	s.noteDel(rel, arity)
}

func (s *Store) noteDel(rel string, arity int) {
	a := s.aggFor(rel)
	a.live--
	a.arities[arity]--
	s.total--
}

// --- store.Backend: object durability ----------------------------------------

// LogPutObject durably records an object upsert. The object itself lives
// in the parent store's maps; a flush snapshots the full set.
func (s *Store) LogPutObject(o *object.Object) error {
	if err := s.healthy(); err != nil {
		return err
	}
	if err := s.tail.append(tailRecord{Op: tailPutObj, Object: o}); err != nil {
		s.err = err
		return err
	}
	return nil
}

// LogDeleteObject durably records an object deletion.
func (s *Store) LogDeleteObject(oid object.OID) error {
	if err := s.healthy(); err != nil {
		return err
	}
	if err := s.tail.append(tailRecord{Op: tailDelObj, OID: string(oid)}); err != nil {
		s.err = err
		return err
	}
	return nil
}

// --- store.Backend: reads ----------------------------------------------------

// HasFact reports whether the fact identified by its canonical key is
// visible: memtable first, then segments newest-to-oldest with the
// tombstone horizon applied.
func (s *Store) HasFact(name, key string) bool {
	if dels := s.mem.dels[name]; dels != nil {
		if _, ok := dels[key]; ok {
			return false
		}
	}
	if mr := s.mem.adds[name]; mr != nil {
		if _, ok := mr.facts[key]; ok {
			return true
		}
	}
	return s.segVisible(name, key)
}

// segVisible probes the segments newest-to-oldest for the key. The first
// instance found is the newest; it is live iff no newer tombstone exists.
func (s *Store) segVisible(name, key string) bool {
	for si := len(s.segs) - 1; si >= 0; si-- {
		sr := s.segs[si]
		blocks := sr.byRel[name]
		bi, ok := findBlockFor(sr, blocks, key)
		if !ok {
			continue
		}
		blk, err := s.block(si, bi)
		if err != nil {
			s.noteReadErr(err)
			continue
		}
		if blk.find(key) >= 0 {
			if h, ok := s.horizon[name]; ok {
				if pos, ok := h[key]; ok && pos > si {
					return false
				}
			}
			return true
		}
	}
	return false
}

// findBlockFor binary-searches a relation's key-ordered block list for
// the block whose [FirstKey, LastKey] range may contain key.
func findBlockFor(sr *segmentReader, blocks []int, key string) (int, bool) {
	lo, hi := 0, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if sr.idx.Blocks[blocks[mid]].LastKey < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(blocks) || sr.idx.Blocks[blocks[lo]].FirstKey > key {
		return 0, false
	}
	return blocks[lo], true
}

// block fetches one decoded block through the cache.
func (s *Store) block(si, bi int) (*decodedBlock, error) {
	sr := s.segs[si]
	k := blockKey{seg: sr.id, block: bi}
	if blk, ok := s.cache.get(k); ok {
		return blk, nil
	}
	blk, err := sr.readBlock(bi)
	if err != nil {
		return nil, err
	}
	s.cache.put(k, blk)
	return blk, nil
}

func (s *Store) noteReadErr(err error) {
	s.readErrs.Add(1)
	s.readErrMu.Lock()
	s.lastReadErr = err
	s.readErrMu.Unlock()
}

// ScanFacts streams every visible fact of the relation matching the
// binds: segment instances oldest-to-newest (key order within each
// segment), then memtable adds in insertion order. Blocks load lazily
// through the cache, so the scan's working set is the cache budget, not
// the relation size.
func (s *Store) ScanFacts(name string, binds []store.ArgBind, fn func(store.Fact) bool) {
	h := s.horizon[name]
	dels := s.mem.dels[name]
	for si, sr := range s.segs {
		for _, bi := range sr.byRel[name] {
			blk, err := s.block(si, bi)
			if err != nil {
				s.noteReadErr(err)
				continue
			}
			for j, f := range blk.facts {
				key := blk.keys[j]
				if h != nil {
					if pos, ok := h[key]; ok && pos > si {
						continue
					}
				}
				if dels != nil {
					if _, ok := dels[key]; ok {
						continue
					}
				}
				if !matchBinds(f, binds) {
					continue
				}
				if !fn(f) {
					return
				}
			}
		}
	}
	if mr := s.mem.adds[name]; mr != nil {
		for _, key := range mr.order {
			f, ok := mr.facts[key]
			if !ok {
				continue // cancelled in place
			}
			if !matchBinds(f, binds) {
				continue
			}
			if !fn(f) {
				return
			}
		}
	}
}

func matchBinds(f store.Fact, binds []store.ArgBind) bool {
	for _, b := range binds {
		if b.Pos >= len(f.Args) || !f.Args[b.Pos].Equal(b.Val) {
			return false
		}
	}
	return true
}

// FactCount returns the live fact count of the relation (O(1), from the
// maintained aggregates).
func (s *Store) FactCount(name string) int {
	if a := s.agg[name]; a != nil {
		return a.live
	}
	return 0
}

// TotalFacts returns the live fact count over all relations.
func (s *Store) TotalFacts() int { return s.total }

// Relations returns the sorted names of relations with live facts.
func (s *Store) Relations() []string {
	out := make([]string, 0, len(s.agg))
	for rel, a := range s.agg {
		if a.live > 0 {
			out = append(out, rel)
		}
	}
	sort.Strings(out)
	return out
}

// FactArities returns, per live relation, the sorted distinct arities.
func (s *Store) FactArities() map[string][]int {
	out := make(map[string][]int, len(s.agg))
	for rel, a := range s.agg {
		if a.live <= 0 {
			continue
		}
		var arities []int
		for arity, n := range a.arities {
			if n > 0 {
				arities = append(arities, arity)
			}
		}
		if len(arities) > 0 {
			sort.Ints(arities)
			out[rel] = arities
		}
	}
	return out
}

// --- Flush, compaction, close ------------------------------------------------

// Flush bakes the memtable into a new immutable segment, snapshots the
// object set, publishes a new manifest, and truncates the tail log. A
// crash at any instant leaves a recoverable state (see the manifest
// crash-ordering invariant).
func (s *Store) Flush() error {
	if err := s.healthy(); err != nil {
		return err
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.tail.seq == s.man.TailSeq {
		return nil // nothing new since the last flush
	}
	man := s.man
	man.Segments = append([]string(nil), s.man.Segments...)

	var newReader *segmentReader
	if s.mem.addCount() > 0 || s.mem.delCount() > 0 {
		in := segInput{adds: make(map[string][]store.Fact), tombs: make(map[string][]tombRec)}
		for rel, mr := range s.mem.adds {
			facts := make([]store.Fact, 0, len(mr.facts))
			for _, key := range mr.order {
				if f, ok := mr.facts[key]; ok {
					facts = append(facts, f)
				}
			}
			if len(facts) > 0 {
				in.adds[rel] = facts
			}
		}
		for rel, dels := range s.mem.dels {
			for key, arity := range dels {
				in.tombs[rel] = append(in.tombs[rel], tombRec{Key: key, Arity: arity})
			}
			sort.Slice(in.tombs[rel], func(i, j int) bool { return in.tombs[rel][i].Key < in.tombs[rel][j].Key })
		}
		id := man.NextID
		man.NextID++
		name := segFileName(id)
		if err := writeSegment(filepath.Join(s.dir, name), in, s.opt.blockTarget); err != nil {
			return err
		}
		sr, err := openSegment(id, filepath.Join(s.dir, name))
		if err != nil {
			return err
		}
		newReader = sr
		man.Segments = append(man.Segments, name)
	}

	objID := man.NextID
	man.NextID++
	objName := objFileName(objID)
	oldObj := man.ObjFile
	//videolint:ignore lockcheck objSrc snapshots the parent store's objects; the parent holds its lock and the callback is documented not to re-lock
	if err := writeObjects(filepath.Join(s.dir, objName), s.objSrc()); err != nil {
		if newReader != nil {
			newReader.close()
		}
		return err
	}
	man.ObjFile = objName
	man.TailSeq = s.tail.seq

	if err := writeManifest(s.dir, man); err != nil {
		if newReader != nil {
			newReader.close()
		}
		return err
	}

	// The manifest is published: adopt the new state.
	s.man = man
	if newReader != nil {
		s.segs = append(s.segs, newReader)
		newIdx := len(s.segs) - 1
		for rel, dels := range s.mem.dels {
			h := s.horizon[rel]
			if h == nil {
				h = make(map[string]int)
				s.horizon[rel] = h
			}
			for key := range dels {
				h[key] = newIdx
				s.segTombs++
			}
		}
		for _, st := range newReader.idx.RelStats {
			s.segAdds += st.Adds
		}
	}
	s.mem = newMemtable()
	if err := s.tail.truncate(); err != nil {
		return err
	}
	if oldObj != "" && oldObj != man.ObjFile {
		//videolint:ignore lockcheck flush runs under the parent store's lock by design: durability must be atomic w.r.t. readers
		os.Remove(filepath.Join(s.dir, oldObj))
	}
	s.flushes++

	if len(s.segs) >= s.opt.compactAt {
		return s.compactLocked()
	}
	return nil
}

// Compact merges every segment into one, resolving tombstones and
// dropping shadowed instances, then swaps the manifest atomically. The
// memtable and tail log are untouched.
func (s *Store) Compact() error {
	if err := s.healthy(); err != nil {
		return err
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if len(s.segs) <= 1 && s.segTombs == 0 {
		return nil
	}
	// Visible segment-resident facts, computed with the horizon alone
	// (memtable tombstones stay in the memtable and keep shadowing the
	// merged copies until their own flush).
	in := segInput{adds: make(map[string][]store.Fact)}
	rels := make(map[string]bool)
	for _, sr := range s.segs {
		for rel := range sr.idx.RelStats {
			rels[rel] = true
		}
	}
	for rel := range rels {
		h := s.horizon[rel]
		var facts []store.Fact
		for si, sr := range s.segs {
			for _, bi := range sr.byRel[rel] {
				blk, err := s.block(si, bi)
				if err != nil {
					return fmt.Errorf("segment: compaction read: %w", err)
				}
				for j, f := range blk.facts {
					if h != nil {
						if pos, ok := h[blk.keys[j]]; ok && pos > si {
							continue
						}
					}
					facts = append(facts, f)
				}
			}
		}
		if len(facts) > 0 {
			in.adds[rel] = facts
		}
	}

	man := s.man
	id := man.NextID
	man.NextID++
	name := segFileName(id)
	if err := writeSegment(filepath.Join(s.dir, name), in, s.opt.blockTarget); err != nil {
		return err
	}
	sr, err := openSegment(id, filepath.Join(s.dir, name))
	if err != nil {
		return err
	}
	old := s.segs
	oldNames := man.Segments
	man.Segments = []string{name}
	if err := writeManifest(s.dir, man); err != nil {
		sr.close()
		return err
	}
	s.man = man
	s.segs = []*segmentReader{sr}
	for _, o := range old {
		s.cache.dropSegment(o.id)
		o.close()
	}
	for _, n := range oldNames {
		//videolint:ignore lockcheck compaction runs under the parent store's lock by design: segment replacement must be atomic w.r.t. readers
		os.Remove(filepath.Join(s.dir, n))
	}
	// Aggregates are unchanged (the merge preserves net counts); the
	// horizon and resident counts are rebuilt from the one new index.
	mem := s.mem
	s.mem = newMemtable()
	s.rebuildDerived()
	s.mem = mem
	s.rememtable()
	s.compactions++
	return nil
}

// rememtable re-applies the memtable contributions to the aggregates
// after rebuildDerived reset them to segment-only state.
func (s *Store) rememtable() {
	for rel, mr := range s.mem.adds {
		a := s.aggFor(rel)
		for _, f := range mr.facts {
			a.live++
			a.arities[len(f.Args)]++
			s.total++
		}
	}
	for rel, dels := range s.mem.dels {
		a := s.aggFor(rel)
		for _, arity := range dels {
			a.live--
			a.arities[arity]--
			s.total--
		}
	}
}

// Close flushes outstanding state and releases every file handle. A
// close after a latched write failure skips the flush (the tail log
// still holds the acknowledged records) and surfaces the error.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	//videolint:ignore errlatch teardown bookkeeping: only the idempotency flag is set before the latch check, which gates the flush
	s.closed = true
	var ferr error
	if s.err == nil {
		ferr = s.flushLocked()
	} else {
		ferr = fmt.Errorf("segment: a write failed during the session: %w", s.err)
	}
	if s.tail != nil {
		if cerr := s.tail.close(); ferr == nil {
			ferr = cerr
		}
	}
	for _, sr := range s.segs {
		if cerr := sr.close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

// BackendStats reports the backend's resident state and cache traffic.
func (s *Store) BackendStats() store.BackendStats {
	dict := 0
	for _, sr := range s.segs {
		dict += sr.idx.DictCount
	}
	return store.BackendStats{
		Kind:           "segment",
		Segments:       len(s.segs),
		SegmentFacts:   s.segAdds,
		Tombstones:     s.segTombs,
		MemtableFacts:  s.mem.addCount() + s.mem.delCount(),
		DictValues:     dict,
		CacheHits:      s.cache.hits.Load(),
		CacheMisses:    s.cache.misses.Load(),
		CacheEvictions: s.cache.evictions.Load(),
		CacheBytes:     s.cache.bytes(),
		CacheBudget:    s.cache.budget,
		CachedBlocks:   s.cache.entriesLen(),
		Flushes:        s.flushes,
		Compactions:    s.compactions,
		ReadErrors:     s.readErrs.Load(),
	}
}

// --- File naming and housekeeping --------------------------------------------

func segFileName(id uint64) string { return fmt.Sprintf("seg-%08d.seg", id) }
func objFileName(id uint64) string { return fmt.Sprintf("obj-%08d.json", id) }

func segFileID(name string) (uint64, error) {
	var id uint64
	if _, err := fmt.Sscanf(name, "seg-%d.seg", &id); err != nil {
		return 0, fmt.Errorf("segment: bad segment file name %q", name)
	}
	return id, nil
}

// removeOrphans deletes files a crash left behind: segment/object files
// the manifest does not reference, and stray temp files.
func (s *Store) removeOrphans() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	live := map[string]bool{manifestName: true, tailName: true}
	for _, n := range s.man.Segments {
		live[n] = true
	}
	if s.man.ObjFile != "" {
		live[s.man.ObjFile] = true
	}
	for _, e := range entries {
		name := e.Name()
		if live[name] {
			continue
		}
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"),
			strings.HasPrefix(name, "obj-") && strings.HasSuffix(name, ".json"),
			strings.HasPrefix(name, ".manifest-") && strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// writeObjects persists the object snapshot (sorted by oid for
// reproducibility) with a checksum, fsynced before rename.
func writeObjects(path string, objs []*object.Object) error {
	sorted := append([]*object.Object(nil), objs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].OID() < sorted[j].OID() })
	body, err := json.Marshal(struct {
		Version int              `json:"version"`
		Objects []*object.Object `json:"objects"`
	}{Version: 1, Objects: sorted})
	if err != nil {
		return fmt.Errorf("segment: encoding objects: %w", err)
	}
	sum := sha256.Sum256(body)
	snap := objSnapshot{Version: 1, Objects: sorted, Checksum: hex.EncodeToString(sum[:])}
	full, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(full, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readObjects loads an object snapshot into dst.
func readObjects(path string, dst map[object.OID]*object.Object) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap objSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("segment: decoding object snapshot: %w", err)
	}
	body, err := json.Marshal(struct {
		Version int              `json:"version"`
		Objects []*object.Object `json:"objects"`
	}{Version: snap.Version, Objects: snap.Objects})
	if err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != snap.Checksum {
		return fmt.Errorf("segment: object snapshot checksum mismatch (corrupted file?)")
	}
	for _, o := range snap.Objects {
		dst[o.OID()] = o
	}
	return nil
}
