package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the root of the on-disk state: it names the live
// segment files (oldest first), the current object snapshot, and the
// tail-log sequence number up to which mutations are already baked into
// those files. Files not named by the manifest are orphans from a crash
// mid-flush or mid-compaction and are deleted at open.
//
// Crash-ordering invariant: a manifest is only renamed into place after
// every file it references has been written AND fsynced, and the rename
// itself is followed by a directory fsync. Recovery therefore always
// sees a manifest whose referenced files are complete; the TailSeq
// watermark makes tail replay idempotent across a crash between the
// manifest publish and the tail truncation.

const (
	manifestName    = "MANIFEST"
	tailName        = "tail.log"
	manifestVersion = 1
)

type manifest struct {
	Version  int      `json:"version"`
	NextID   uint64   `json:"nextId"`  // next file id to allocate
	TailSeq  uint64   `json:"tailSeq"` // tail records with Seq <= TailSeq are baked in
	Segments []string `json:"segments"`
	ObjFile  string   `json:"objFile,omitempty"`
	Checksum string   `json:"checksum"` // hex SHA-256 of the payload
}

type manifestPayload struct {
	Version  int      `json:"version"`
	NextID   uint64   `json:"nextId"`
	TailSeq  uint64   `json:"tailSeq"`
	Segments []string `json:"segments"`
	ObjFile  string   `json:"objFile,omitempty"`
}

func (m manifest) payload() manifestPayload {
	return manifestPayload{
		Version: m.Version, NextID: m.NextID, TailSeq: m.TailSeq,
		Segments: m.Segments, ObjFile: m.ObjFile,
	}
}

// writeManifest atomically publishes m: write to a temp file in dir,
// fsync, rename over MANIFEST, fsync the directory.
func writeManifest(dir string, m manifest) error {
	body, err := json.Marshal(m.payload())
	if err != nil {
		return fmt.Errorf("segment: encoding manifest: %w", err)
	}
	sum := sha256.Sum256(body)
	m.Checksum = hex.EncodeToString(sum[:])
	full, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("segment: encoding manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(full, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readManifest loads and verifies the manifest; ok is false if none
// exists yet (a fresh directory).
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("segment: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("segment: unsupported manifest version %d", m.Version)
	}
	body, err := json.Marshal(m.payload())
	if err != nil {
		return manifest{}, false, err
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != m.Checksum {
		return manifest{}, false, fmt.Errorf("segment: manifest checksum mismatch (corrupted file?)")
	}
	return m, true, nil
}

// syncDir fsyncs a directory so completed renames survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
