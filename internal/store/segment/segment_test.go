package segment

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"videodb/internal/object"
	"videodb/internal/store"
)

// openTestStore opens a segment backend wired into a store.Store and
// registers cleanup. Tiny thresholds by default so tests exercise
// flushes, multiple blocks, and evictions with small corpora.
func openTestStore(t *testing.T, dir string, opts ...Option) *store.Store {
	t.Helper()
	b, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenBackend(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func fact(rel string, args ...string) store.Fact {
	vals := make([]object.Value, len(args))
	for i, a := range args {
		vals[i] = object.Str(a)
	}
	return store.NewFact(rel, vals...)
}

// factKeys returns the sorted canonical keys of a relation's facts.
func factKeys(st *store.Store, rel string) []string {
	var out []string
	st.ForEachFact(rel, func(f store.Fact) bool {
		out = append(out, f.Key())
		return true
	})
	sort.Strings(out)
	return out
}

func TestSegmentFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := segInput{adds: map[string][]store.Fact{
		"in":   {fact("in", "b", "x"), fact("in", "a", "y"), fact("in", "c", "z")},
		"next": {fact("next", "1")},
	}}
	path := filepath.Join(dir, "seg-00000001.seg")
	if err := writeSegment(path, in, 32); err != nil {
		t.Fatal(err)
	}
	sr, err := openSegment(1, path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.close()
	if got := sr.idx.RelStats["in"].Adds; got != 3 {
		t.Fatalf("in adds = %d, want 3", got)
	}
	var keys []string
	for _, bi := range sr.byRel["in"] {
		blk, err := sr.readBlock(bi)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, blk.keys...)
	}
	want := []string{`in("a", "y")`, `in("b", "x")`, `in("c", "z")`}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("keys = %v, want %v (sorted within segment)", keys, want)
	}
	// Keys must be globally sorted across the relation's blocks.
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("relation keys not sorted: %v", keys)
	}
}

func TestBasicOpsAndRestart(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, WithFlushThreshold(4))
	if err := st.Put(object.NewEntity("o1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if ok, err := st.AddFactErr(fact("in", fmt.Sprintf("k%02d", i), "v")); err != nil || !ok {
			t.Fatalf("add %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Duplicate add is a no-op.
	if ok, _ := st.AddFactErr(fact("in", "k00", "v")); ok {
		t.Fatal("duplicate add reported a change")
	}
	if n := st.FactCount("in"); n != 10 {
		t.Fatalf("FactCount = %d, want 10", n)
	}
	if ok, err := st.DeleteFactErr(fact("in", "k03", "v")); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if st.HasFact(fact("in", "k03", "v")) {
		t.Fatal("deleted fact still visible")
	}
	before := factKeys(st, "in")
	if len(before) != 9 {
		t.Fatalf("got %d facts, want 9", len(before))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestStore(t, dir)
	if re.Get("o1") == nil {
		t.Fatal("object lost across restart")
	}
	if got := factKeys(re, "in"); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatalf("facts across restart:\n got %v\nwant %v", got, before)
	}
	if got := re.Relations(); len(got) != 1 || got[0] != "in" {
		t.Fatalf("Relations = %v", got)
	}
	if got := re.FactArities(); len(got["in"]) != 1 || got["in"][0] != 2 {
		t.Fatalf("FactArities = %v", got)
	}
	if n := re.TotalFacts(); n != 9 {
		t.Fatalf("TotalFacts = %d, want 9", n)
	}
}

// TestRestartWithoutFlush exercises pure tail-log recovery: no explicit
// checkpoint, mutations live only in the tail.
func TestRestartWithoutFlush(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir) // default threshold: nothing auto-flushes
	st.AddFactErr(fact("r", "a"))
	st.AddFactErr(fact("r", "b"))
	st.DeleteFactErr(fact("r", "a"))
	st.Put(object.NewEntity("e1"))
	st.Delete("e1")
	st.Put(object.NewEntity("e2"))
	// Simulate a crash: drop the store without Close (Close would flush).
	// The tail log was written per record, so reopening replays it.
	re := openTestStore(t, dir)
	if got := factKeys(re, "r"); fmt.Sprint(got) != `[r("b")]` {
		t.Fatalf("facts = %v", got)
	}
	if re.Get("e1") != nil || re.Get("e2") == nil {
		t.Fatal("object tail replay wrong")
	}
}

// TestDeleteReAddChains covers tombstone/resurrect transitions in every
// residence combination: memtable-only, segment+memtable, across
// multiple flushes.
func TestDeleteReAddChains(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	f := fact("chain", "k")

	// add → delete → re-add inside one memtable window.
	st.AddFactErr(f)
	st.DeleteFactErr(f)
	st.AddFactErr(f)
	if got := factKeys(st, "chain"); len(got) != 1 {
		t.Fatalf("memtable chain: %v", got)
	}
	if err := st.Checkpoint(); err != nil { // flush #1: fact in segment
		t.Fatal(err)
	}
	// segment-resident delete → memtable tombstone → resurrect.
	st.DeleteFactErr(f)
	if st.HasFact(f) {
		t.Fatal("tombstoned fact visible")
	}
	st.AddFactErr(f)
	if !st.HasFact(f) {
		t.Fatal("resurrected fact invisible")
	}
	if got := factKeys(st, "chain"); len(got) != 1 {
		t.Fatalf("after resurrect: %v", got)
	}
	// delete, flush the tombstone, re-add into a newer segment.
	st.DeleteFactErr(f)
	if err := st.Checkpoint(); err != nil { // flush #2: tombstone in segment
		t.Fatal(err)
	}
	if st.HasFact(f) || st.FactCount("chain") != 0 {
		t.Fatal("flushed tombstone not applied")
	}
	st.AddFactErr(f)
	if err := st.Checkpoint(); err != nil { // flush #3: re-add in newest segment
		t.Fatal(err)
	}
	if !st.HasFact(f) || st.FactCount("chain") != 1 {
		t.Fatal("re-add shadowed by older tombstone")
	}
	st.Close()

	re := openTestStore(t, dir)
	if !re.HasFact(f) || re.FactCount("chain") != 1 {
		t.Fatalf("restart: has=%v count=%d", re.HasFact(f), re.FactCount("chain"))
	}
}

func TestScanWithBinds(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.AddFactErr(fact("in", "o1", "g1"))
	st.AddFactErr(fact("in", "o1", "g2"))
	st.AddFactErr(fact("in", "o2", "g1"))
	st.Checkpoint() // half in a segment …
	st.AddFactErr(fact("in", "o1", "g3"))
	st.AddFactErr(fact("in", "o3", "g1")) // … half in the memtable
	var got []string
	st.ScanFacts("in", []store.ArgBind{{Pos: 0, Val: object.Str("o1")}}, func(f store.Fact) bool {
		got = append(got, f.Key())
		return true
	})
	sort.Strings(got)
	want := []string{`in("o1", "g1")`, `in("o1", "g2")`, `in("o1", "g3")`}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bound scan = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	st.ScanFacts("in", nil, func(store.Fact) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestLargerThanCacheServing loads a corpus whose decoded blocks exceed
// the cache budget by an order of magnitude, then scans and probes it:
// everything must stay readable while the cache evicts.
func TestLargerThanCacheServing(t *testing.T) {
	dir := t.TempDir()
	const n = 2000
	st := openTestStore(t, dir,
		WithBlockCacheBytes(4<<10), // ~4 KiB budget
		WithBlockTargetBytes(512),
		WithFlushThreshold(500))
	for i := 0; i < n; i++ {
		if ok, err := st.AddFactErr(fact("big", fmt.Sprintf("key-%05d", i), fmt.Sprintf("val-%d", i%97))); err != nil || !ok {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.FactCount("big"); got != n {
		t.Fatalf("FactCount = %d, want %d", got, n)
	}
	seen := 0
	st.ScanFacts("big", nil, func(store.Fact) bool { seen++; return true })
	if seen != n {
		t.Fatalf("scan saw %d facts, want %d", seen, n)
	}
	for _, i := range []int{0, 1, 999, 1998, 1999} {
		if !st.HasFact(fact("big", fmt.Sprintf("key-%05d", i), fmt.Sprintf("val-%d", i%97))) {
			t.Fatalf("fact %d invisible", i)
		}
	}
	if st.HasFact(fact("big", "key-99999", "nope")) {
		t.Fatal("phantom fact")
	}
	bs := st.BackendStats()
	if bs.Kind != "segment" {
		t.Fatalf("Kind = %q", bs.Kind)
	}
	if bs.CacheEvictions == 0 {
		t.Fatalf("no evictions despite corpus >> budget: %+v", bs)
	}
	if bs.CacheBytes > bs.CacheBudget+2048 {
		t.Fatalf("cache far over budget: %+v", bs)
	}
	if bs.SegmentFacts != n {
		t.Fatalf("SegmentFacts = %d, want %d", bs.SegmentFacts, n)
	}
}

// TestCompactionEquivalence checks that compaction preserves exactly the
// visible fact set while collapsing segments and dropping tombstones.
func TestCompactionEquivalence(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, WithCompactThreshold(1000)) // manual compaction only
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			st.AddFactErr(fact("r", fmt.Sprintf("%d-%d", round, i)))
		}
		if round > 0 {
			for i := 0; i < 10; i++ { // delete half of the previous round
				st.DeleteFactErr(fact("r", fmt.Sprintf("%d-%d", round-1, i)))
			}
		}
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st.AddFactErr(fact("r", "tail-1")) // leave something in the memtable
	st.DeleteFactErr(fact("r", "4-0")) // … and a memtable tombstone

	before := factKeys(st, "r")
	countBefore := st.FactCount("r")
	bsBefore := st.BackendStats()
	if bsBefore.Segments < 5 || bsBefore.Tombstones == 0 {
		t.Fatalf("precondition: %+v", bsBefore)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after := factKeys(st, "r")
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Fatalf("compaction changed visible facts:\n before %v\n after  %v", before, after)
	}
	if got := st.FactCount("r"); got != countBefore {
		t.Fatalf("count %d -> %d", countBefore, got)
	}
	bs := st.BackendStats()
	if bs.Segments != 1 || bs.Tombstones != 0 {
		t.Fatalf("after compaction: %+v", bs)
	}
	// Restart on the compacted state.
	st.Close()
	re := openTestStore(t, dir)
	if got := factKeys(re, "r"); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatalf("restart after compaction:\n got %v\nwant %v", got, before)
	}
}

// TestAutoCompaction: enough flushes trigger a compaction on their own.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, WithCompactThreshold(3))
	for round := 0; round < 5; round++ {
		st.AddFactErr(fact("r", fmt.Sprintf("k%d", round)))
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	bs := st.BackendStats()
	if bs.Compactions == 0 {
		t.Fatalf("no auto compaction after 5 flushes at threshold 3: %+v", bs)
	}
	if bs.Segments >= 3 {
		t.Fatalf("segments not merged: %+v", bs)
	}
	if n := st.FactCount("r"); n != 5 {
		t.Fatalf("FactCount = %d", n)
	}
}

// TestObjectSnapshotRoundTrip: flush bakes objects into the object file;
// restart must not need the tail.
func TestObjectSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	o := object.NewEntity("p1")
	o.Set("name", object.Str("Philip"))
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTestStore(t, dir)
	got := re.Get("p1")
	if got == nil || !got.Attr("name").Equal(object.Str("Philip")) {
		t.Fatalf("object not recovered: %v", got)
	}
	// Secondary indexes were rebuilt from recovered objects.
	if ids := re.FindByAttr("name", object.Str("Philip")); len(ids) != 1 || ids[0] != "p1" {
		t.Fatalf("FindByAttr after restart = %v", ids)
	}
}

// TestSnapshotExportFromBackend: Save/SaveFile work on a backend store
// (export path), while Load is refused (it would bypass the manifest).
func TestSnapshotExportFromBackend(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.Put(object.NewEntity("e1"))
	st.AddFactErr(fact("r", "a"))
	snap := filepath.Join(t.TempDir(), "out.snapshot")
	if err := st.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	mem := store.New()
	if err := mem.LoadFile(snap); err != nil {
		t.Fatal(err)
	}
	if !mem.HasFact(fact("r", "a")) || mem.Get("e1") == nil {
		t.Fatal("snapshot export lost data")
	}
	if err := st.LoadFile(snap); err == nil {
		t.Fatal("Load on a backend store must be refused")
	}
}
