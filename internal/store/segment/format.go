// Package segment implements the persistent storage backend of the
// store: an LSM-style layout of immutable, relation/key-ordered segment
// files (the EAVT analogue for the paper's fact relations R) with values
// interned into a per-segment on-disk dictionary, a byte-budgeted block
// cache with lazy fact loading, a manifest describing the live file set,
// and a small tail log holding the mutations since the last flush.
//
// The design goals, in order:
//
//   - the fact base is NOT resident in memory: scans and membership
//     probes fetch fixed-size blocks through the cache, so a node can
//     serve a corpus far larger than its block-cache budget;
//   - restart cost is O(active set), not O(history): recovery reads the
//     manifest, each segment's footer/index, the object snapshot, and
//     replays only the tail log (bounded by the flush threshold) —
//     never the full mutation history the WAL backend replays;
//   - every state transition is crash-atomic: segment and object files
//     are fsynced before the manifest that references them is renamed
//     into place, and the manifest's TailSeq lets replay skip tail
//     records already baked into segments, so a crash between manifest
//     publish and tail truncation never double-applies.
//
// Within a segment, facts are ordered by (relation, canonical fact key)
// and chunked into blocks; the block index carries each block's key
// range, so membership probes binary-search the block list and touch at
// most one block. Deletes of segment-resident facts are tombstones,
// stored eagerly in the index (they are assumed rare relative to adds);
// compaction merges all segments, resolves tombstones, and swaps the
// manifest atomically.
package segment

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"

	"videodb/internal/object"
	"videodb/internal/store"
)

// Segment file layout:
//
//	magic "VDBSEG01"                        (8 bytes)
//	blocks…        fact records, uvarint-encoded dictionary ids
//	dict           uvarint count, then per value: uvarint len + JSON
//	index          JSON segIndex
//	footer         indexOff, indexLen (8 bytes LE each),
//	               CRC32(index) (4 bytes LE), magic "10GESBDV" (8 bytes)
//
// Fact record inside a block: uvarint arity, then arity × uvarint
// dictionary ids. The relation name lives in the block's index entry,
// not in the record.

const (
	segMagic    = "VDBSEG01"
	segMagicEnd = "10GESBDV"
	footerLen   = 8 + 8 + 4 + 8
)

// blockMeta locates one block of one relation's facts.
type blockMeta struct {
	Rel      string `json:"rel"`
	Off      uint64 `json:"off"`
	Len      uint64 `json:"len"`
	Count    int    `json:"count"`
	CRC      uint32 `json:"crc"`
	FirstKey string `json:"firstKey"`
	LastKey  string `json:"lastKey"`
}

// tombRec is one tombstone: the canonical key of a fact deleted from an
// older segment, plus its arity (for the per-relation arity statistics).
type tombRec struct {
	Key   string `json:"key"`
	Arity int    `json:"arity"`
}

// relStat summarizes one relation inside a segment: how many facts were
// added, per arity; tombstones are counted from the Tombs list.
type relStat struct {
	Adds    int         `json:"adds"`
	Arities map[int]int `json:"arities"` // arity -> added facts
}

// segIndex is the JSON index section of a segment file. Tombstones are
// part of the index — they are loaded eagerly at open, while fact blocks
// load lazily through the cache.
type segIndex struct {
	Blocks    []blockMeta          `json:"blocks"`
	Tombs     map[string][]tombRec `json:"tombs,omitempty"`
	RelStats  map[string]relStat   `json:"relStats"`
	DictOff   uint64               `json:"dictOff"`
	DictLen   uint64               `json:"dictLen"`
	DictCount int                  `json:"dictCount"`
}

// segInput is the memtable's contribution to one segment: per relation,
// the added facts (any order; the writer sorts) and the tombstones.
type segInput struct {
	adds  map[string][]store.Fact
	tombs map[string][]tombRec
}

// writeSegment encodes in into a new segment file at path and fsyncs it.
// blockTarget bounds the encoded size of one block (soft: at least one
// fact per block).
func writeSegment(path string, in segInput, blockTarget int) (retErr error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); retErr == nil {
			retErr = cerr
		}
	}()

	// Dictionary: each distinct value appears once on disk; fact records
	// reference values by id. Ids are assigned in first-use order.
	dictIDs := make(map[string]uint64)
	var dictVals []object.Value
	intern := func(v object.Value) uint64 {
		k := v.String()
		if id, ok := dictIDs[k]; ok {
			return id
		}
		id := uint64(len(dictVals))
		dictIDs[k] = id
		dictVals = append(dictVals, v)
		return id
	}

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, segMagic...)

	idx := segIndex{
		Tombs:    in.tombs,
		RelStats: make(map[string]relStat),
	}
	rels := make([]string, 0, len(in.adds))
	for rel := range in.adds {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		facts := append([]store.Fact(nil), in.adds[rel]...)
		keys := make([]string, len(facts))
		for i, f := range facts {
			keys[i] = f.Key()
		}
		sort.Sort(&factsByKey{facts: facts, keys: keys})

		st := relStat{Adds: len(facts), Arities: make(map[int]int)}
		var (
			block    []byte
			bm       blockMeta
			flushBlk = func() {
				if bm.Count == 0 {
					return
				}
				bm.Off = uint64(len(buf))
				bm.Len = uint64(len(block))
				bm.CRC = crc32.ChecksumIEEE(block)
				buf = append(buf, block...)
				idx.Blocks = append(idx.Blocks, bm)
				block = block[:0]
				bm = blockMeta{Rel: rel}
			}
		)
		bm.Rel = rel
		for i, f := range facts {
			st.Arities[len(f.Args)]++
			rec := binary.AppendUvarint(nil, uint64(len(f.Args)))
			for _, a := range f.Args {
				rec = binary.AppendUvarint(rec, intern(a))
			}
			if bm.Count > 0 && len(block)+len(rec) > blockTarget {
				flushBlk()
			}
			if bm.Count == 0 {
				bm.FirstKey = keys[i]
			}
			bm.LastKey = keys[i]
			bm.Count++
			block = append(block, rec...)
		}
		flushBlk()
		idx.RelStats[rel] = st
	}

	// Dictionary section.
	idx.DictOff = uint64(len(buf))
	idx.DictCount = len(dictVals)
	buf = binary.AppendUvarint(buf, uint64(len(dictVals)))
	for _, v := range dictVals {
		body, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("segment: encoding dictionary value: %w", err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(body)))
		buf = append(buf, body...)
	}
	idx.DictLen = uint64(len(buf)) - idx.DictOff

	// Index + footer.
	idxBody, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("segment: encoding index: %w", err)
	}
	idxOff := uint64(len(buf))
	buf = append(buf, idxBody...)
	buf = binary.LittleEndian.AppendUint64(buf, idxOff)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(idxBody)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(idxBody))
	buf = append(buf, segMagicEnd...)

	if _, err := f.Write(buf); err != nil {
		return err
	}
	return f.Sync()
}

// factsByKey co-sorts facts with their precomputed keys.
type factsByKey struct {
	facts []store.Fact
	keys  []string
}

func (s *factsByKey) Len() int           { return len(s.facts) }
func (s *factsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *factsByKey) Swap(i, j int) {
	s.facts[i], s.facts[j] = s.facts[j], s.facts[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// segmentReader serves one immutable segment file: the index is resident,
// the dictionary loads lazily on first block decode, and blocks load on
// demand through the store's cache.
type segmentReader struct {
	id   uint64
	path string
	f    *os.File
	idx  segIndex

	// byRel maps a relation to the positions of its blocks in idx.Blocks,
	// in key order (the writer emits them sorted).
	byRel map[string][]int

	// The dictionary loads lazily on first block decode; concurrent
	// readers under the store's read lock share the one load.
	dictOnce sync.Once
	dict     []object.Value
	dictErr  error
}

// openSegment validates a segment file's footer and index and returns a
// reader. The dictionary and fact blocks are not read.
func openSegment(id uint64, path string) (*segmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() < int64(len(segMagic)+footerLen) {
		f.Close()
		return nil, fmt.Errorf("segment: %s: truncated file (%d bytes)", path, fi.Size())
	}
	head := make([]byte, len(segMagic))
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(head) != segMagic {
		f.Close()
		return nil, fmt.Errorf("segment: %s: bad magic", path)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, fi.Size()-footerLen); err != nil {
		f.Close()
		return nil, err
	}
	if string(footer[20:]) != segMagicEnd {
		f.Close()
		return nil, fmt.Errorf("segment: %s: bad footer magic (torn write?)", path)
	}
	idxOff := binary.LittleEndian.Uint64(footer[0:8])
	idxLen := binary.LittleEndian.Uint64(footer[8:16])
	idxCRC := binary.LittleEndian.Uint32(footer[16:20])
	if idxOff+idxLen > uint64(fi.Size()) {
		f.Close()
		return nil, fmt.Errorf("segment: %s: index out of bounds", path)
	}
	idxBody := make([]byte, idxLen)
	if _, err := f.ReadAt(idxBody, int64(idxOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(idxBody) != idxCRC {
		f.Close()
		return nil, fmt.Errorf("segment: %s: index checksum mismatch", path)
	}
	var idx segIndex
	if err := json.Unmarshal(idxBody, &idx); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: %s: decoding index: %w", path, err)
	}
	r := &segmentReader{id: id, path: path, f: f, idx: idx, byRel: make(map[string][]int)}
	for i, bm := range idx.Blocks {
		r.byRel[bm.Rel] = append(r.byRel[bm.Rel], i)
	}
	return r, nil
}

func (r *segmentReader) close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// readBlock fetches and decodes one block (cache miss path). The caller
// provides the relation via the block's meta entry.
func (r *segmentReader) readBlock(i int) (*decodedBlock, error) {
	dict, err := r.loadDict()
	if err != nil {
		return nil, err
	}
	bm := r.idx.Blocks[i]
	raw := make([]byte, bm.Len)
	if _, err := r.f.ReadAt(raw, int64(bm.Off)); err != nil {
		return nil, fmt.Errorf("segment: %s block %d: %w", r.path, i, err)
	}
	if crc32.ChecksumIEEE(raw) != bm.CRC {
		return nil, fmt.Errorf("segment: %s block %d: checksum mismatch", r.path, i)
	}
	blk := &decodedBlock{
		facts: make([]store.Fact, 0, bm.Count),
		keys:  make([]string, 0, bm.Count),
		cost:  int64(bm.Len),
	}
	for len(raw) > 0 {
		arity, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("segment: %s block %d: bad record", r.path, i)
		}
		raw = raw[n:]
		args := make([]object.Value, arity)
		for j := range args {
			id, n := binary.Uvarint(raw)
			if n <= 0 || id >= uint64(len(dict)) {
				return nil, fmt.Errorf("segment: %s block %d: bad dictionary reference", r.path, i)
			}
			raw = raw[n:]
			args[j] = dict[id]
		}
		f := store.Fact{Name: bm.Rel, Args: args}
		blk.facts = append(blk.facts, f)
		blk.keys = append(blk.keys, f.Key())
		// Decoded cost dominates the on-disk size; count both the raw
		// block and the rendered keys against the cache budget.
		blk.cost += int64(len(blk.keys[len(blk.keys)-1]))
	}
	if len(blk.facts) != bm.Count {
		return nil, fmt.Errorf("segment: %s block %d: decoded %d facts, index says %d",
			r.path, i, len(blk.facts), bm.Count)
	}
	return blk, nil
}

// loadDict reads and decodes the dictionary section once; concurrent
// callers share the load. Keeping it out of openSegment is what makes
// restart O(active set): a segment none of whose blocks are touched
// never pays for its dictionary.
func (r *segmentReader) loadDict() ([]object.Value, error) {
	r.dictOnce.Do(func() {
		raw := make([]byte, r.idx.DictLen)
		if _, err := r.f.ReadAt(raw, int64(r.idx.DictOff)); err != nil {
			r.dictErr = fmt.Errorf("segment: %s: reading dictionary: %w", r.path, err)
			return
		}
		count, n := binary.Uvarint(raw)
		if n <= 0 || count != uint64(r.idx.DictCount) {
			r.dictErr = fmt.Errorf("segment: %s: dictionary header mismatch", r.path)
			return
		}
		raw = raw[n:]
		vals := make([]object.Value, 0, count)
		for i := uint64(0); i < count; i++ {
			l, n := binary.Uvarint(raw)
			if n <= 0 || uint64(len(raw)-n) < l {
				r.dictErr = fmt.Errorf("segment: %s: truncated dictionary entry %d", r.path, i)
				return
			}
			raw = raw[n:]
			var v object.Value
			if err := json.Unmarshal(raw[:l], &v); err != nil {
				r.dictErr = fmt.Errorf("segment: %s: decoding dictionary entry %d: %w", r.path, i, err)
				return
			}
			raw = raw[l:]
			vals = append(vals, v)
		}
		r.dict = vals
	})
	return r.dict, r.dictErr
}
