package store

import (
	"math"
	"sort"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// A classic centered interval tree over the hull spans of generalized
// interval durations. Built in O(n log n), answers overlap queries in
// O(log n + k). The tree is static; the store rebuilds it lazily after
// writes (ensureTree).

type treeItem struct {
	span interval.Span
	oid  object.OID
}

type itreeNode struct {
	center      float64
	left, right *itreeNode
	// Items whose span contains center, sorted two ways for pruned scans.
	byLo []treeItem // ascending Lo
	byHi []treeItem // descending Hi
}

type intervalTree struct {
	root *itreeNode
	size int
}

func buildIntervalTree(items []treeItem) *intervalTree {
	t := &intervalTree{size: len(items)}
	t.root = buildNode(items)
	return t
}

func buildNode(items []treeItem) *itreeNode {
	if len(items) == 0 {
		return nil
	}
	// Center on the median of the finite endpoints for balance.
	var points []float64
	for _, it := range items {
		if !math.IsInf(it.span.Lo, 0) {
			points = append(points, it.span.Lo)
		}
		if !math.IsInf(it.span.Hi, 0) {
			points = append(points, it.span.Hi)
		}
	}
	var center float64
	if len(points) > 0 {
		sort.Float64s(points)
		center = points[len(points)/2]
	}
	node := &itreeNode{center: center}
	var leftItems, rightItems []treeItem
	for _, it := range items {
		switch {
		case it.span.Hi < center:
			leftItems = append(leftItems, it)
		case it.span.Lo > center:
			rightItems = append(rightItems, it)
		default: // span contains (or touches) center
			node.byLo = append(node.byLo, it)
		}
	}
	// Degenerate split (all items at the center and none strictly aside)
	// terminates because children receive strictly fewer items.
	node.byHi = append(node.byHi, node.byLo...)
	sort.Slice(node.byLo, func(i, j int) bool { return node.byLo[i].span.Lo < node.byLo[j].span.Lo })
	sort.Slice(node.byHi, func(i, j int) bool { return node.byHi[i].span.Hi > node.byHi[j].span.Hi })
	node.left = buildNode(leftItems)
	node.right = buildNode(rightItems)
	return node
}

// overlapping returns the oids of items whose span shares at least one
// point with the query (endpoint openness honoured).
func (t *intervalTree) overlapping(q interval.Span) []object.OID {
	if t == nil || q.IsEmpty() {
		return nil
	}
	var out []object.OID
	var walk func(n *itreeNode)
	walk = func(n *itreeNode) {
		if n == nil {
			return
		}
		switch {
		case q.Hi < n.center:
			// Only items starting before q.Hi can overlap; byLo is sorted
			// ascending on Lo, so stop at the first Lo > q.Hi.
			for _, it := range n.byLo {
				if it.span.Lo > q.Hi {
					break
				}
				if it.span.Overlaps(q) {
					out = append(out, it.oid)
				}
			}
			walk(n.left)
		case q.Lo > n.center:
			for _, it := range n.byHi {
				if it.span.Hi < q.Lo {
					break
				}
				if it.span.Overlaps(q) {
					out = append(out, it.oid)
				}
			}
			walk(n.right)
		default:
			// The query straddles the center: all stored items here may
			// overlap (they all contain the center region boundary); check
			// each, then descend both sides.
			for _, it := range n.byLo {
				if it.span.Overlaps(q) {
					out = append(out, it.oid)
				}
			}
			walk(n.left)
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}
