package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

func TestIntervalTreeMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var items []treeItem
	for i := 0; i < 500; i++ {
		lo := float64(r.Intn(1000))
		hi := lo + float64(r.Intn(50))
		items = append(items, treeItem{
			span: interval.Span{Lo: lo, Hi: hi, LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0},
			oid:  object.OID(fmt.Sprintf("i%d", i)),
		})
	}
	tree := buildIntervalTree(items)
	if tree.size != len(items) {
		t.Fatalf("size = %d", tree.size)
	}
	for q := 0; q < 200; q++ {
		lo := float64(r.Intn(1000))
		hi := lo + float64(r.Intn(80))
		query := interval.Span{Lo: lo, Hi: hi, LoOpen: q%2 == 0, HiOpen: q%3 == 0}
		got := tree.overlapping(query)
		var want []object.OID
		for _, it := range items {
			if it.span.Overlaps(query) {
				want = append(want, it.oid)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d, want %d", query, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: mismatch at %d: %v vs %v", query, i, got[i], want[i])
			}
		}
	}
}

func TestIntervalTreeEdgeCases(t *testing.T) {
	if got := buildIntervalTree(nil).overlapping(interval.Closed(0, 1)); got != nil {
		t.Errorf("empty tree = %v", got)
	}
	var tree *intervalTree
	if got := tree.overlapping(interval.Closed(0, 1)); got != nil {
		t.Errorf("nil tree = %v", got)
	}
	// All items identical (degenerate split must terminate).
	var same []treeItem
	for i := 0; i < 50; i++ {
		same = append(same, treeItem{span: interval.Closed(5, 5), oid: object.OID(fmt.Sprintf("p%d", i))})
	}
	tr := buildIntervalTree(same)
	if got := tr.overlapping(interval.Closed(5, 5)); len(got) != 50 {
		t.Errorf("point stab = %d, want 50", len(got))
	}
	if got := tr.overlapping(interval.Open(5, 6)); len(got) != 0 {
		t.Errorf("open miss = %v", got)
	}
	// Empty query returns nothing.
	if got := tr.overlapping(interval.Span{Lo: 1, Hi: 0}); got != nil {
		t.Errorf("empty query = %v", got)
	}
	// Unbounded items.
	unb := buildIntervalTree([]treeItem{
		{span: interval.Above(100), oid: "above"},
		{span: interval.Below(0), oid: "below"},
		{span: interval.Full(), oid: "full"},
	})
	got := unb.overlapping(interval.Closed(50, 60))
	if len(got) != 1 || got[0] != "full" {
		t.Errorf("unbounded middle = %v", got)
	}
	got = unb.overlapping(interval.Closed(150, 160))
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != "above" || got[1] != "full" {
		t.Errorf("unbounded high = %v", got)
	}
}
