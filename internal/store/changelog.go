package store

import (
	"sync/atomic"

	"videodb/internal/object"
)

// Changelog: subscribers observe every acknowledged mutation of the
// store, in mutation order. This is the feed that incremental view
// maintenance (core.Materialize) consumes; WAL replay drives the same
// mutators, so a subscriber attached after OpenDurable sees exactly the
// post-recovery mutations.
//
// Contract:
//
//   - Events are delivered synchronously, under the store's write lock,
//     strictly after the mutation has been applied AND (on a durable
//     store) its WAL record appended. A mutation that is rejected or
//     rolled back — duplicate fact, missing oid, poisoned or failing
//     log — emits nothing: the stream contains acknowledged changes only.
//   - Handlers must be fast and must not call back into the store (the
//     write lock is held); queue the event and process it later.
//   - Events fire only on actual state change, so for a given fact key
//     the Add/Delete sequence strictly alternates.

// EventKind discriminates changelog events.
type EventKind uint8

const (
	// EventAddFact: Fact was inserted (it was not present before).
	EventAddFact EventKind = iota + 1
	// EventDeleteFact: Fact was removed (it was present before).
	EventDeleteFact
	// EventPutObject: the object named by OID was inserted or replaced
	// (Put or Update).
	EventPutObject
	// EventDeleteObject: the object named by OID was removed.
	EventDeleteObject
	// EventReset: the store's contents were wholesale replaced (Load);
	// no per-mutation events describe the difference.
	EventReset
)

func (k EventKind) String() string {
	switch k {
	case EventAddFact:
		return "addfact"
	case EventDeleteFact:
		return "delfact"
	case EventPutObject:
		return "putobject"
	case EventDeleteObject:
		return "delobject"
	case EventReset:
		return "reset"
	default:
		return "unknown"
	}
}

// Event is one acknowledged store mutation. Fact is set for fact events,
// OID for object events; neither for EventReset.
type Event struct {
	Kind EventKind
	Fact Fact
	OID  object.OID
}

type subscriber struct {
	id   int
	fn   func(Event)
	dead *atomic.Bool
}

// Subscribe registers fn to receive every subsequent acknowledged
// mutation (see the changelog contract above) and returns a function
// that unregisters it. Safe for concurrent use.
//
// cancel never takes the store lock, so it is safe to call from inside a
// subscriber callback (which runs with the write lock held) and safe to
// defer or race against concurrent mutations. Cancellation is
// asynchronous: a delivery already in flight when cancel returns may
// still invoke fn once more; afterwards fn is never called again, and
// the subscriber slot is reclaimed on the next delivery.
func (s *Store) Subscribe(fn func(Event)) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSub++
	dead := &atomic.Bool{}
	s.subs = append(s.subs, subscriber{id: s.nextSub, fn: fn, dead: dead})
	return func() { dead.Store(true) }
}

// notify delivers an event to every live subscriber and compacts out the
// cancelled ones. Caller holds s.mu, so the compaction cannot race other
// deliveries; cancel flips only the dead flag and never touches s.subs.
func (s *Store) notify(ev Event) {
	kept := s.subs[:0]
	for _, sub := range s.subs {
		if sub.dead.Load() {
			continue
		}
		//videolint:ignore lockcheck synchronous delivery contract: subscriber callbacks are documented queue-only and must not block or re-enter the store
		sub.fn(ev)
		kept = append(kept, sub)
	}
	// A callback may have cancelled itself (or a peer) during delivery;
	// those stay in kept and are dropped on the next notify.
	s.subs = kept
}
