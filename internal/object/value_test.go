package object

import (
	"encoding/json"
	"testing"

	"videodb/internal/interval"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Kind() != KindNull {
		t.Error("Null basics")
	}
	if s, ok := Str("abc").AsString(); !ok || s != "abc" {
		t.Error("Str basics")
	}
	if n, ok := Num(3.5).AsNumber(); !ok || n != 3.5 {
		t.Error("Num basics")
	}
	if r, ok := Ref("id1").AsRef(); !ok || r != OID("id1") {
		t.Error("Ref basics")
	}
	g := interval.FromPairs(0, 10)
	if tv, ok := Temporal(g).AsTemporal(); !ok || !tv.Equal(g) {
		t.Error("Temporal basics")
	}
	if _, ok := Str("x").AsNumber(); ok {
		t.Error("cross-kind accessor should fail")
	}
	if _, ok := Num(1).AsRef(); ok {
		t.Error("cross-kind accessor should fail")
	}
}

func TestSetCanonicalization(t *testing.T) {
	a := Set(Num(2), Num(1), Num(2), Str("x"), Null())
	b := Set(Str("x"), Num(1), Num(2))
	if !a.Equal(b) {
		t.Errorf("canonical sets should be equal: %v vs %v", a, b)
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d, want 3 (nulls dropped, dups merged)", a.Len())
	}
	if !Set().Equal(Set(Null())) {
		t.Error("empty set should equal set of nulls")
	}
	if Set().IsNull() {
		t.Error("empty set is not null")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{
		Null(), Str("a"), Str("b"), Num(1), Num(2), Ref("id1"), Ref("id2"),
		Temporal(interval.FromPairs(0, 1)), Set(), Set(Num(1)), Set(Num(1), Num(2)),
	}
	for i, v := range vals {
		for j, w := range vals {
			c, cr := v.Compare(w), w.Compare(v)
			if c != -cr {
				t.Errorf("Compare(%v,%v)=%d but reverse=%d", v, w, c, cr)
			}
			if (i == j) != (c == 0) {
				t.Errorf("Compare(%v,%v)=%d, equality mismatch", v, w, c)
			}
		}
	}
	// Transitivity spot check on a sorted triple.
	if !(Num(1).Compare(Num(2)) < 0 && Num(2).Compare(Num(3)) < 0 && Num(1).Compare(Num(3)) < 0) {
		t.Error("number order broken")
	}
}

func TestContainsElemAndSubsetOf(t *testing.T) {
	s := RefSet("o1", "o2", "o3")
	if !s.ContainsElem(Ref("o2")) {
		t.Error("ContainsElem should find o2")
	}
	if s.ContainsElem(Ref("o9")) {
		t.Error("ContainsElem should not find o9")
	}
	if !RefSet("o1", "o2").SubsetOf(s) {
		t.Error("subset should hold")
	}
	if RefSet("o1", "o9").SubsetOf(s) {
		t.Error("subset should fail")
	}
	// Scalars behave as singletons.
	if !Ref("o1").SubsetOf(s) {
		t.Error("scalar subset should hold")
	}
	if !Num(5).ContainsElem(Num(5)) {
		t.Error("scalar contains itself")
	}
	if Num(5).ContainsElem(Num(6)) {
		t.Error("scalar does not contain others")
	}
	if Null().ContainsElem(Num(5)) {
		t.Error("null contains nothing")
	}
	if !Null().SubsetOf(Num(5)) {
		t.Error("null (empty) is subset of everything")
	}
	if !Set().SubsetOf(Set()) {
		t.Error("empty subset of empty")
	}
}

func TestValueUnion(t *testing.T) {
	cases := []struct {
		name string
		a, b Value
		want Value
	}{
		{"null identity left", Null(), Num(1), Num(1)},
		{"null identity right", Num(1), Null(), Num(1)},
		{"equal scalars", Str("x"), Str("x"), Str("x")},
		{"distinct scalars", Str("x"), Str("y"), Set(Str("x"), Str("y"))},
		{"scalar with set", Ref("a"), RefSet("b", "c"), RefSet("a", "b", "c")},
		{"set with set", RefSet("a", "b"), RefSet("b", "c"), RefSet("a", "b", "c")},
		{"temporal", Temporal(interval.FromPairs(0, 1)), Temporal(interval.FromPairs(2, 3)),
			Temporal(interval.FromPairs(0, 1, 2, 3))},
		{"temporal overlap", Temporal(interval.FromPairs(0, 5)), Temporal(interval.FromPairs(3, 8)),
			Temporal(interval.FromPairs(0, 8))},
	}
	for _, tc := range cases {
		if got := tc.a.Union(tc.b); !got.Equal(tc.want) {
			t.Errorf("%s: %v ∪ %v = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
	// Union is commutative and idempotent.
	a, b := RefSet("x", "y"), Str("z")
	if !a.Union(b).Equal(b.Union(a)) {
		t.Error("union not commutative")
	}
	if !a.Union(a).Equal(a) {
		t.Error("union not idempotent")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Str("a"), `"a"`},
		{Num(1.5), "1.5"},
		{Ref("id3"), "id3"},
		{Set(Num(2), Num(1)), "{1, 2}"},
		{Temporal(interval.FromPairs(0, 1)), "[0,1]"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Str("hello"), Num(-2.5), Ref("id42"),
		Temporal(interval.New(interval.Open(0, 10), interval.Point(20))),
		Set(), Set(Num(1), Str("x"), RefSet("a", "b"), Temporal(interval.FromPairs(1, 2))),
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !back.Equal(v) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
	var bad Value
	if err := json.Unmarshal([]byte(`{"t":"[broken"}`), &bad); err == nil {
		t.Error("expected error for malformed temporal payload")
	}
}
