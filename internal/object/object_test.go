package object

import (
	"encoding/json"
	"testing"

	"videodb/internal/interval"
)

func TestObjectBasics(t *testing.T) {
	o := NewEntity("id3").
		Set("name", Str("David")).
		Set("role", Str("Victim"))
	if o.OID() != "id3" || o.Kind() != Entity {
		t.Error("identity/kind")
	}
	if v := o.Attr("name"); !v.Equal(Str("David")) {
		t.Errorf("Attr(name) = %v", v)
	}
	if !o.Attr("missing").IsNull() {
		t.Error("missing attribute should be null")
	}
	if !o.Has("role") || o.Has("missing") {
		t.Error("Has")
	}
	if got := o.NumAttrs(); got != 2 {
		t.Errorf("NumAttrs = %d", got)
	}
	names := o.Attrs()
	if len(names) != 2 || names[0] != "name" || names[1] != "role" {
		t.Errorf("Attrs = %v", names)
	}
	// Setting null deletes.
	o.Set("role", Null())
	if o.Has("role") {
		t.Error("Set(Null) should delete")
	}
}

func TestIntervalObject(t *testing.T) {
	dur := interval.FromPairs(10, 20, 30, 40)
	gi := NewInterval("id1", dur).
		Set(AttrEntities, RefSet("o1", "o2")).
		Set("subject", Str("murder"))
	if gi.Kind() != GenInterval {
		t.Error("kind")
	}
	if !gi.Duration().Equal(dur) {
		t.Errorf("Duration = %v", gi.Duration())
	}
	ents := gi.Entities()
	if len(ents) != 2 || ents[0] != "o1" || ents[1] != "o2" {
		t.Errorf("Entities = %v", ents)
	}
	// Scalar entities value tolerated.
	gi2 := NewInterval("id2", dur).Set(AttrEntities, Ref("solo"))
	if ents := gi2.Entities(); len(ents) != 1 || ents[0] != "solo" {
		t.Errorf("scalar Entities = %v", ents)
	}
	// Entity objects have empty duration.
	if !NewEntity("e").Duration().IsEmpty() {
		t.Error("entity should have empty duration")
	}
}

func TestObjectCloneAndEqual(t *testing.T) {
	o := NewEntity("id4").Set("name", Str("Philip")).Set("score", Num(7))
	c := o.Clone()
	if !o.Equal(c) {
		t.Error("clone should be equal")
	}
	c.Set("score", Num(8))
	if o.Equal(c) {
		t.Error("mutating clone must not affect original")
	}
	if v := o.Attr("score"); !v.Equal(Num(7)) {
		t.Error("original changed by clone mutation")
	}
	// Different kind, oid, attr count, attr value.
	if NewEntity("id4").Equal(New("id4", GenInterval)) {
		t.Error("kind should matter")
	}
	if NewEntity("a").Equal(NewEntity("b")) {
		t.Error("oid should matter")
	}
	p := o.Clone()
	p.Set("extra", Num(1))
	if o.Equal(p) {
		t.Error("attr count should matter")
	}
}

func TestObjectMerge(t *testing.T) {
	// Concatenation semantics of §6.1: attrs union, values union.
	g1 := NewInterval("id1", interval.FromPairs(0, 10)).
		Set(AttrEntities, RefSet("o1", "o2")).
		Set("subject", Str("murder"))
	g2 := NewInterval("id2", interval.FromPairs(20, 30)).
		Set(AttrEntities, RefSet("o2", "o3")).
		Set("host", RefSet("o2"))

	m := g1.Merge(g2, "id1+id2")
	if m.OID() != "id1+id2" || m.Kind() != GenInterval {
		t.Error("merge identity/kind")
	}
	if !m.Duration().Equal(interval.FromPairs(0, 10, 20, 30)) {
		t.Errorf("merged duration = %v", m.Duration())
	}
	if got := m.Attr(AttrEntities); !got.Equal(RefSet("o1", "o2", "o3")) {
		t.Errorf("merged entities = %v", got)
	}
	if got := m.Attr("subject"); !got.Equal(Str("murder")) {
		t.Errorf("subject should survive: %v", got)
	}
	if got := m.Attr("host"); !got.Equal(RefSet("o2")) {
		t.Errorf("host should survive: %v", got)
	}
	// Merge with itself reproduces the same attribute tuple (idempotence).
	self := g1.Merge(g1, "x")
	for _, a := range g1.Attrs() {
		if !self.Attr(a).Equal(g1.Attr(a)) {
			t.Errorf("self-merge changed %s: %v -> %v", a, g1.Attr(a), self.Attr(a))
		}
	}
}

func TestObjectString(t *testing.T) {
	o := NewEntity("id3").Set("name", Str("David")).Set("role", Str("Victim"))
	want := `(id3, [name: "David", role: "Victim"])`
	if got := o.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestObjectJSONRoundTrip(t *testing.T) {
	objs := []*Object{
		NewEntity("id3").Set("name", Str("David")).Set("n", Num(2)),
		NewInterval("id1", interval.FromPairs(0, 10, 20, 30)).
			Set(AttrEntities, RefSet("o1", "o2")).
			Set("subject", Str("murder")),
		NewEntity("empty"),
	}
	for _, o := range objs {
		data, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		var back Object
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !back.Equal(o) {
			t.Errorf("round trip: %v -> %s -> %v", o, data, &back)
		}
	}
	var bad Object
	if err := json.Unmarshal([]byte(`{"oid":"x","kind":"weird"}`), &bad); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestKindString(t *testing.T) {
	if Entity.String() != "entity" || GenInterval.String() != "interval" {
		t.Error("kind names")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}
