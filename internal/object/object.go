package object

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"videodb/internal/interval"
)

// Kind distinguishes the two classes of v-objects of Section 5.2: semantic
// objects (entities of interest) and generalized interval objects
// (fragments of a video sequence).
type Kind uint8

// The two object classes. Entity objects populate the built-in Object
// predicate of the query language, GenInterval objects the Interval
// predicate.
const (
	Entity Kind = iota
	GenInterval
)

// String returns "entity" or "interval".
func (k Kind) String() string {
	switch k {
	case Entity:
		return "entity"
	case GenInterval:
		return "interval"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Well-known attribute names used by the model. Duration is the attribute
// the paper attaches to every generalized interval (λ2: the temporal
// constraint); Entities is λ1 (the set of objects visible in the
// interval).
const (
	AttrDuration = "duration"
	AttrEntities = "entities"
)

// Object is a v-object: an object identity together with a finite tuple
// of attribute/value pairs (Definition 7). Objects are mutable builders
// until stored; the store works on copies.
type Object struct {
	oid   OID
	kind  Kind
	attrs map[string]Value
}

// New creates an object with the given identity and kind.
func New(oid OID, kind Kind) *Object {
	return &Object{oid: oid, kind: kind, attrs: make(map[string]Value)}
}

// NewEntity creates a semantic object.
func NewEntity(oid OID) *Object { return New(oid, Entity) }

// NewInterval creates a generalized interval object with the given
// duration (λ2 as a canonical generalized interval).
func NewInterval(oid OID, duration interval.Generalized) *Object {
	o := New(oid, GenInterval)
	o.Set(AttrDuration, Temporal(duration))
	return o
}

// OID returns the object's identity.
func (o *Object) OID() OID { return o.oid }

// Kind returns the object's class.
func (o *Object) Kind() Kind { return o.kind }

// Set sets attribute name to value v and returns the object for chaining.
// Setting Null removes the attribute (an attribute defined for an object
// always has a value, per Section 5.2).
func (o *Object) Set(name string, v Value) *Object {
	if v.IsNull() {
		delete(o.attrs, name)
		return o
	}
	o.attrs[name] = v
	return o
}

// Attr returns the value of the attribute, or Null if undefined.
func (o *Object) Attr(name string) Value { return o.attrs[name] }

// Has reports whether the attribute is defined.
func (o *Object) Has(name string) bool {
	_, ok := o.attrs[name]
	return ok
}

// Attrs returns the sorted attribute names (attr(o) of Definition 7).
func (o *Object) Attrs() []string {
	names := make([]string, 0, len(o.attrs))
	for n := range o.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumAttrs returns the number of defined attributes.
func (o *Object) NumAttrs() int { return len(o.attrs) }

// Duration returns the temporal extent of a generalized interval object
// (λ2); the empty interval for entities or intervals without a duration.
func (o *Object) Duration() interval.Generalized {
	g, _ := o.attrs[AttrDuration].AsTemporal()
	return g
}

// Entities returns the oids of the semantic objects attached to a
// generalized interval (λ1), in sorted order.
func (o *Object) Entities() []OID {
	v := o.attrs[AttrEntities]
	var out []OID
	for _, e := range v.Elems() {
		if id, ok := e.AsRef(); ok {
			out = append(out, id)
		}
	}
	if id, ok := v.AsRef(); ok { // tolerate a scalar ref
		out = append(out, id)
	}
	return out
}

// Clone returns a deep-enough copy (values are immutable, so copying the
// attribute map suffices).
func (o *Object) Clone() *Object {
	c := New(o.oid, o.kind)
	for k, v := range o.attrs {
		c.attrs[k] = v
	}
	return c
}

// Equal reports whether the two objects have the same identity, kind and
// attribute tuple.
func (o *Object) Equal(p *Object) bool {
	if o.oid != p.oid || o.kind != p.kind || len(o.attrs) != len(p.attrs) {
		return false
	}
	for k, v := range o.attrs {
		if w, ok := p.attrs[k]; !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Merge implements the attribute semantics of concatenation (Section 6.1):
// attr(e) = attr(e1) ∪ attr(e2) and e.Ai = e1.Ai ∪ e2.Ai. The receiver is
// unchanged; a new object with the given oid is returned.
func (o *Object) Merge(p *Object, oid OID) *Object {
	m := New(oid, o.kind)
	for k, v := range o.attrs {
		m.attrs[k] = v
	}
	for k, v := range p.attrs {
		m.attrs[k] = m.attrs[k].Union(v)
	}
	return m
}

// String renders the object in the paper's notation:
// (oid, [A1: v1, …, An: vn]).
func (o *Object) String() string {
	names := o.Attrs()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + ": " + o.attrs[n].String()
	}
	return fmt.Sprintf("(%s, [%s])", o.oid, strings.Join(parts, ", "))
}

// jsonObject is the persistent encoding of an Object.
type jsonObject struct {
	OID   string           `json:"oid"`
	Kind  string           `json:"kind"`
	Attrs map[string]Value `json:"attrs"`
}

// MarshalJSON implements json.Marshaler.
func (o *Object) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonObject{
		OID:   string(o.oid),
		Kind:  o.kind.String(),
		Attrs: o.attrs,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (o *Object) UnmarshalJSON(data []byte) error {
	var j jsonObject
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	var kind Kind
	switch j.Kind {
	case "entity":
		kind = Entity
	case "interval":
		kind = GenInterval
	default:
		return fmt.Errorf("object: unknown kind %q", j.Kind)
	}
	o.oid = OID(j.OID)
	o.kind = kind
	o.attrs = j.Attrs
	if o.attrs == nil {
		o.attrs = make(map[string]Value)
	}
	return nil
}
