// Package object implements the value system and video objects (v-objects)
// of Section 5.2 of "A Database Approach for Modeling and Querying Video
// Data": a v-object is a pair (oid, [A1:v1, …, Am:vm]) whose attribute
// values are drawn from the smallest set containing atomic constants,
// object identities, restricted temporal constraints, and finite sets of
// values (Definition 6).
//
// Values are immutable; sets are kept in a canonical sorted, de-duplicated
// form so that structural equality coincides with set equality.
package object

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"videodb/internal/interval"
)

// OID is a logical object identity (Section 5.2). OIDs are pure syntactic
// names: equality of oids is equality of objects.
type OID string

// ValueKind discriminates the variants of Value.
type ValueKind uint8

// The value variants of Definition 6: atomic constants (strings and
// numbers of concrete domains), object identities, restricted dense-order
// constraints (represented canonically by the generalized interval of
// their solutions), and finite sets of values.
const (
	KindNull ValueKind = iota
	KindString
	KindNumber
	KindRef
	KindTemporal
	KindSet
)

var kindNames = [...]string{
	KindNull: "null", KindString: "string", KindNumber: "number",
	KindRef: "ref", KindTemporal: "temporal", KindSet: "set",
}

// String returns the kind name.
func (k ValueKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("ValueKind(%d)", uint8(k))
}

// Value is an immutable attribute value. The zero value is the null value
// (used for "attribute not present" results).
type Value struct {
	kind ValueKind
	str  string // KindString payload; KindRef oid
	num  float64
	temp interval.Generalized
	set  []Value // canonical: sorted by Compare, de-duplicated
}

// Null returns the null value.
func Null() Value { return Value{} }

// Str returns a string constant value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Num returns a numeric constant value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Ref returns an object-identity value.
func Ref(oid OID) Value { return Value{kind: KindRef, str: string(oid)} }

// Temporal returns a temporal-constraint value: the set of instants
// satisfying the restricted dense-order constraint, in canonical
// generalized-interval form.
func Temporal(g interval.Generalized) Value { return Value{kind: KindTemporal, temp: g} }

// Set returns a set value containing the given elements, canonicalized:
// sorted, de-duplicated, nulls dropped, and temporal elements merged into
// a single temporal value (their point-set union). The merge mirrors the
// paper's treatment of constraint-valued attributes — the collection of
// temporal constraints denotes their disjunction — and makes Union
// associative regardless of how values of mixed kinds combine.
func Set(elems ...Value) Value {
	s := make([]Value, 0, len(elems))
	var temporal Value
	for _, e := range elems {
		switch e.kind {
		case KindNull:
		case KindTemporal:
			temporal = temporal.Union(e)
		default:
			s = append(s, e)
		}
	}
	if !temporal.IsNull() {
		s = append(s, temporal)
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Compare(s[j]) < 0 })
	out := s[:0]
	for i, e := range s {
		if i == 0 || s[i-1].Compare(e) != 0 {
			out = append(out, e)
		}
	}
	return Value{kind: KindSet, set: out}
}

// RefSet builds a set of object references, the common shape of the
// paper's multi-valued attributes (entities, host, guest, murderer, …).
func RefSet(oids ...OID) Value {
	elems := make([]Value, len(oids))
	for i, id := range oids {
		elems[i] = Ref(id)
	}
	return Set(elems...)
}

// Kind returns the value's kind.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsString returns the string payload and whether the value is a string.
func (v Value) AsString() (string, bool) { return v.str, v.kind == KindString }

// AsNumber returns the numeric payload and whether the value is a number.
func (v Value) AsNumber() (float64, bool) { return v.num, v.kind == KindNumber }

// AsRef returns the oid payload and whether the value is a reference.
func (v Value) AsRef() (OID, bool) { return OID(v.str), v.kind == KindRef }

// AsTemporal returns the temporal payload and whether the value is
// temporal.
func (v Value) AsTemporal() (interval.Generalized, bool) {
	return v.temp, v.kind == KindTemporal
}

// Elems returns the canonical elements of a set value (nil for non-sets).
// The caller must not modify the returned slice.
func (v Value) Elems() []Value {
	if v.kind != KindSet {
		return nil
	}
	return v.set
}

// Len returns the cardinality of a set value, 0 for null, and 1 for any
// scalar.
func (v Value) Len() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindSet:
		return len(v.set)
	default:
		return 1
	}
}

// Compare defines a total order over values used for canonicalization:
// first by kind, then by payload. It returns -1, 0 or +1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString, KindRef:
		return strings.Compare(v.str, w.str)
	case KindNumber:
		switch {
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		default:
			return 0
		}
	case KindTemporal:
		return strings.Compare(v.temp.String(), w.temp.String())
	default: // KindSet
		for i := 0; i < len(v.set) && i < len(w.set); i++ {
			if c := v.set[i].Compare(w.set[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.set) < len(w.set):
			return -1
		case len(v.set) > len(w.set):
			return 1
		default:
			return 0
		}
	}
}

// Equal reports deep structural equality (which, thanks to canonical
// sets and intervals, is semantic equality).
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// ContainsElem reports whether the set value v contains the element e
// (the primitive constraint e ∈ v of the query language). Scalars are
// treated as singletons, so ContainsElem also answers e = v for scalars.
func (v Value) ContainsElem(e Value) bool {
	switch v.kind {
	case KindSet:
		i := sort.Search(len(v.set), func(i int) bool { return v.set[i].Compare(e) >= 0 })
		return i < len(v.set) && v.set[i].Equal(e)
	case KindNull:
		return false
	default:
		return v.Equal(e)
	}
}

// SubsetOf reports whether every element of v is an element of w, with
// scalars treated as singletons (the constraint s ⊆ X̃ of the query
// language).
func (v Value) SubsetOf(w Value) bool {
	switch v.kind {
	case KindNull:
		return true
	case KindSet:
		for _, e := range v.set {
			if !w.ContainsElem(e) {
				return false
			}
		}
		return true
	default:
		return w.ContainsElem(v)
	}
}

// Union merges two attribute values per the concatenation semantics of
// Section 6.1 (e.Ai = e1.Ai ∪ e2.Ai): temporal values union as point
// sets; anything else unions as sets with scalars lifted to singletons.
// Null is the identity.
func (v Value) Union(w Value) Value {
	switch {
	case v.IsNull():
		return w
	case w.IsNull():
		return v
	}
	if v.kind == KindTemporal && w.kind == KindTemporal {
		return Temporal(v.temp.Union(w.temp))
	}
	if v.Equal(w) {
		return v
	}
	elems := make([]Value, 0, v.Len()+w.Len())
	elems = appendElems(elems, v)
	elems = appendElems(elems, w)
	return Set(elems...)
}

func appendElems(dst []Value, v Value) []Value {
	if v.kind == KindSet {
		return append(dst, v.set...)
	}
	return append(dst, v)
}

// String renders the value: strings are quoted, refs are bare oids,
// temporal values use interval notation, sets use {…}.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return strconv.Quote(v.str)
	case KindNumber:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindRef:
		return v.str
	case KindTemporal:
		return v.temp.String()
	default:
		parts := make([]string, len(v.set))
		for i, e := range v.set {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
}

// jsonValue is the tagged JSON encoding of a Value.
type jsonValue struct {
	S   *string     `json:"s,omitempty"`
	N   *float64    `json:"n,omitempty"`
	Ref *string     `json:"ref,omitempty"`
	T   *string     `json:"t,omitempty"`
	Set []jsonValue `json:"set,omitempty"`
	// IsSet disambiguates the empty set from null (both encode no fields).
	IsSet bool `json:"isSet,omitempty"`
}

func (v Value) toJSON() jsonValue {
	switch v.kind {
	case KindString:
		return jsonValue{S: &v.str}
	case KindNumber:
		return jsonValue{N: &v.num}
	case KindRef:
		return jsonValue{Ref: &v.str}
	case KindTemporal:
		s := v.temp.String()
		return jsonValue{T: &s}
	case KindSet:
		set := make([]jsonValue, len(v.set))
		for i, e := range v.set {
			set[i] = e.toJSON()
		}
		return jsonValue{Set: set, IsSet: true}
	default:
		return jsonValue{}
	}
}

func (j jsonValue) toValue() (Value, error) {
	switch {
	case j.S != nil:
		return Str(*j.S), nil
	case j.N != nil:
		return Num(*j.N), nil
	case j.Ref != nil:
		return Ref(OID(*j.Ref)), nil
	case j.T != nil:
		g, err := interval.Parse(*j.T)
		if err != nil {
			return Value{}, err
		}
		return Temporal(g), nil
	case j.IsSet || j.Set != nil:
		elems := make([]Value, len(j.Set))
		for i, e := range j.Set {
			v, err := e.toValue()
			if err != nil {
				return Value{}, err
			}
			elems[i] = v
		}
		return Set(elems...), nil
	default:
		return Null(), nil
	}
}

// MarshalJSON implements json.Marshaler with a tagged encoding.
func (v Value) MarshalJSON() ([]byte, error) { return json.Marshal(v.toJSON()) }

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var j jsonValue
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	parsed, err := j.toValue()
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}
