package object

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"videodb/internal/interval"
)

// The attribute-merge semantics of concatenation (§6.1: e.Ai = e1.Ai ∪
// e2.Ai) is only well-defined because Union is associative, commutative
// and idempotent — otherwise (a⊕b)⊕c and a⊕(b⊕c) would carry different
// attribute tuples. These properties are load-bearing; check them over
// random values.

func genValue(r *rand.Rand, depth int) Value {
	switch n := r.Intn(6); {
	case n == 0:
		return Str([]string{"a", "b", "c"}[r.Intn(3)])
	case n == 1:
		return Num(float64(r.Intn(4)))
	case n == 2:
		return Ref(OID([]string{"o1", "o2"}[r.Intn(2)]))
	case n == 3:
		lo := float64(r.Intn(10))
		return Temporal(interval.FromPairs(lo, lo+float64(r.Intn(5))))
	case n == 4 && depth > 0:
		k := r.Intn(3)
		elems := make([]Value, k)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return Set(elems...)
	default:
		return Null()
	}
}

type quickValue struct{ V Value }

func (quickValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickValue{V: genValue(r, 2)})
}

func TestPropUnionLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(a, b, c quickValue) bool {
		// Idempotent.
		if !a.V.Union(a.V).Equal(a.V) {
			return false
		}
		// Commutative.
		if !a.V.Union(b.V).Equal(b.V.Union(a.V)) {
			return false
		}
		// Associative (set canonicalization merges temporal elements, so
		// this holds across mixed kinds — it is what makes the attribute
		// tuples of ⊕-created objects independent of association order).
		left := a.V.Union(b.V).Union(c.V)
		right := a.V.Union(b.V.Union(c.V))
		if !left.Equal(right) {
			t.Logf("assoc failed: a=%v b=%v c=%v left=%v right=%v", a.V, b.V, c.V, left, right)
			return false
		}
		// Null is the identity.
		if !a.V.Union(Null()).Equal(a.V) || !Null().Union(a.V).Equal(a.V) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropSetMembershipConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(a, b quickValue) bool {
		u := a.V.Union(b.V)
		// Every element of each operand is contained in the union
		// (temporal values may merge, so check only non-temporal
		// elements).
		check := func(v Value) bool {
			if v.Kind() == KindTemporal {
				return true
			}
			if v.Kind() == KindSet {
				for _, e := range v.Elems() {
					if e.Kind() != KindTemporal && !u.ContainsElem(e) {
						return false
					}
				}
				return true
			}
			if v.IsNull() {
				return true
			}
			return u.ContainsElem(v)
		}
		return check(a.V) && check(b.V)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropCompareConsistentWithEqual(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(a, b, c quickValue) bool {
		// Antisymmetry and transitivity of the canonical order.
		if (a.V.Compare(b.V) == 0) != a.V.Equal(b.V) {
			return false
		}
		if a.V.Compare(b.V) <= 0 && b.V.Compare(c.V) <= 0 && a.V.Compare(c.V) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
