package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// The admission gate wraps every evaluation entrypoint: each call either
// acquires and releases exactly once, or is refused before any parsing
// or engine work happens.
func TestEvalGate(t *testing.T) {
	var entered, released atomic.Int64
	var refuse atomic.Bool
	errRefused := errors.New("gate: refused")
	gate := func(ctx context.Context) (func(), error) {
		if ctx == nil {
			t.Error("gate received a nil context")
		}
		if refuse.Load() {
			return nil, errRefused
		}
		entered.Add(1)
		return func() { released.Add(1) }, nil
	}

	db := New(WithGate(gate))
	defer db.Close()
	if _, err := db.LoadScript("object o1 { }.\nobject o2 { }.\nr(o1, o2)."); err != nil {
		t.Fatal(err)
	}
	// LoadScript itself is gated; start counting from the entrypoint sweep.
	entered.Store(0)
	released.Store(0)

	ctx := context.Background()
	entrypoints := []struct {
		name string
		call func() error
	}{
		{"QueryContext", func() error { _, err := db.QueryContext(ctx, "?- r(X, Y)."); return err }},
		{"QueryProfiledContext", func() error { _, err := db.QueryProfiledContext(ctx, "?- r(X, Y)."); return err }},
		{"LoadScriptContext", func() error { _, err := db.LoadScriptContext(ctx, "?- r(X, Y)."); return err }},
		{"ExplainContext", func() error { _, err := db.ExplainContext(ctx, "?- r(X, Y)."); return err }},
		{"MaterializeContext", func() error { _, err := db.MaterializeContext(ctx, "v", "?- r(X, Y)"); return err }},
		{"ViewContext", func() error { _, err := db.ViewContext(ctx, "v"); return err }},
	}

	for i, ep := range entrypoints {
		if err := ep.call(); err != nil {
			t.Fatalf("%s: %v", ep.name, err)
		}
		if got := entered.Load(); got != int64(i+1) {
			t.Fatalf("%s: gate entered %d times, want %d", ep.name, got, i+1)
		}
		if entered.Load() != released.Load() {
			t.Fatalf("%s: %d acquisitions vs %d releases", ep.name, entered.Load(), released.Load())
		}
	}

	// A parse error still releases the admitted slot.
	if _, err := db.QueryContext(ctx, "?- broken("); err == nil {
		t.Fatal("expected a parse error")
	}
	if entered.Load() != released.Load() {
		t.Fatalf("parse error leaked a slot: %d entered, %d released", entered.Load(), released.Load())
	}

	// A refusing gate surfaces its error verbatim and evaluates nothing.
	refuse.Store(true)
	before := entered.Load()
	for _, ep := range entrypoints {
		if err := ep.call(); !errors.Is(err, errRefused) {
			t.Fatalf("%s with refusing gate: err = %v, want %v", ep.name, err, errRefused)
		}
	}
	if entered.Load() != before {
		t.Fatalf("refused calls still entered the gate: %d -> %d", before, entered.Load())
	}
}

// A gate returning a nil release must not crash the entrypoints, and a
// gateless DB admits everything (the default path).
func TestEvalGateNilRelease(t *testing.T) {
	db := New(WithGate(func(ctx context.Context) (func(), error) { return nil, nil }))
	defer db.Close()
	if err := db.Relate("e", "a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rs, err := db.Query("?- e(X).")
		if err != nil || len(rs.Rows) != 1 {
			t.Fatalf("run %d: rows=%v err=%v", i, rs, err)
		}
	}
}

// The gate observes the caller's context, so a deadline-aware admission
// queue can give up when the request dies while queued.
func TestEvalGateSeesCallerContext(t *testing.T) {
	type ctxKey struct{}
	var sawValue atomic.Bool
	db := New(WithGate(func(ctx context.Context) (func(), error) {
		if v, ok := ctx.Value(ctxKey{}).(string); ok && v == "tenant-7" {
			sawValue.Store(true)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("gate: caller gone: %w", err)
		}
		return func() {}, nil
	}))
	defer db.Close()
	if err := db.Relate("e", "a"); err != nil {
		t.Fatal(err)
	}

	ctx := context.WithValue(context.Background(), ctxKey{}, "tenant-7")
	if _, err := db.QueryContext(ctx, "?- e(X)."); err != nil {
		t.Fatal(err)
	}
	if !sawValue.Load() {
		t.Fatal("gate did not observe the caller's context values")
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(dead, "?- e(X)."); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller: err = %v, want context.Canceled", err)
	}
}
