package core

import (
	"videodb/internal/datalog"
	"videodb/internal/datalog/analyze"
	"videodb/internal/parser"
	"videodb/internal/store"
)

// Static analysis surface: Vet runs the internal/datalog/analyze passes
// over a VideoQL script in the context of this database — its fact
// schema, loaded rules, and taxonomy — and returns diagnostics instead of
// evaluating anything. A script that fails to parse yields a single
// VQL0001 diagnostic rather than an error, so callers present one shape.

// schemaSnapshot captures the database's EDB relations plus the script's
// own facts.
func (db *DB) schemaSnapshot(extra []store.Fact) *analyze.Schema {
	schema := analyze.NewSchema()
	for name, arities := range db.st.FactArities() {
		for _, a := range arities {
			schema.AddPred(name, a)
		}
	}
	for _, f := range extra {
		schema.AddPred(f.Name, len(f.Args))
	}
	return schema
}

// vetProgram assembles the full program a script's queries would run
// against: the DB's loaded rules, taxonomy closure rules, and the
// script's rules and query helper rules. The returned count is the
// context-rule prefix length — the rules that belong to the database,
// not the script, and are therefore exempt from rule-scoped findings.
func (db *DB) vetProgram(s *parser.Script) (datalog.Program, int) {
	rules := append([]datalog.Rule(nil), db.rules...)
	rules = append(rules, db.taxonomy.Rules()...)
	contextRules := len(rules)
	rules = append(rules, s.Program().Rules...)
	return datalog.NewProgram(rules...), contextRules
}

func parseDiagnostic(err error) analyze.Diagnostic {
	d := analyze.Diagnostic{
		Severity: analyze.SeverityError,
		Code:     analyze.CodeParseError,
		Message:  err.Error(),
	}
	if pe, ok := err.(*parser.Error); ok {
		d.Pos = datalog.Pos{Line: pe.Line, Col: pe.Col}
		d.Message = pe.Msg
	}
	return d
}

// Vet statically analyzes a VideoQL script against this database without
// evaluating it. Parse failures come back as a VQL0001 diagnostic. The
// nil error return is reserved for future I/O-backed schema sources.
func (db *DB) Vet(src string) ([]analyze.Diagnostic, error) {
	return db.vet(src, nil)
}

// VetQuery statically analyzes a single query (with or without the
// leading "?-") against the database. The DB's own rules are analysis
// context — they resolve predicates and reachability but are not
// re-linted on every query.
func (db *DB) VetQuery(src string) []analyze.Diagnostic {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return []analyze.Diagnostic{parseDiagnostic(err)}
	}
	rules := append([]datalog.Rule(nil), db.rules...)
	rules = append(rules, db.taxonomy.Rules()...)
	contextRules := len(rules)
	if q.Rule != nil {
		rules = append(rules, *q.Rule)
	}
	return analyze.Analyze(datalog.NewProgram(rules...), analyze.Options{
		Goals:        []datalog.RelAtom{q.Atom},
		Schema:       db.schemaSnapshot(nil),
		ContextRules: contextRules,
	})
}

func (db *DB) vet(src string, disable []string) ([]analyze.Diagnostic, error) {
	s, err := parser.Parse(src)
	if err != nil {
		return []analyze.Diagnostic{parseDiagnostic(err)}, nil
	}
	var goals []datalog.RelAtom
	for _, q := range s.Queries {
		goals = append(goals, q.Atom)
	}
	prog, contextRules := db.vetProgram(s)
	opts := analyze.Options{
		Goals:        goals,
		Schema:       db.schemaSnapshot(s.Facts),
		DisableCodes: disable,
		ContextRules: contextRules,
	}
	// A script without queries still deserves rule-level findings; the
	// unreachable pass simply stays quiet (no goals).
	return analyze.Analyze(prog, opts), nil
}
