package core

import (
	"fmt"
	"math/rand"
	"testing"

	"videodb/internal/datalog"
	"videodb/internal/object"
	"videodb/internal/store"
	"videodb/internal/store/segment"
)

// Differential oracle between the in-memory backend and the segment
// backend at the query level: the same rule program over the same fact
// churn must answer every query identically — through recursive rules,
// materialized views (incremental maintenance reads the changelog,
// which the backend feeds), parallel engine workers, and segment-side
// restarts. Mirrors the PR 5/6 oracle style (rowsKey comparison).

// segCoreDB opens a segment-backed DB in dir with rules and views
// installed; thresholds are tiny so the run crosses flushes and block
// evictions.
func segCoreDB(t *testing.T, dir string, opts ...Option) *DB {
	t.Helper()
	b, err := segment.Open(dir,
		segment.WithFlushThreshold(16),
		segment.WithBlockTargetBytes(128),
		segment.WithBlockCacheBytes(2<<10),
		segment.WithCompactThreshold(4))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenBackend(b)
	if err != nil {
		t.Fatal(err)
	}
	db := New(append([]Option{WithStore(st)}, opts...)...)
	t.Cleanup(func() { db.Close() })
	return db
}

func installClosureRules(t *testing.T, db *DB) {
	t.Helper()
	for _, rule := range []string{
		"reach(X, Y) :- edge(X, Y)",
		"reach(X, Z) :- reach(X, Y), edge(Y, Z)",
		"hop2(X, Z) :- edge(X, Y), edge(Y, Z)",
	} {
		if err := db.DefineRule(rule); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBackendDifferentialOracle(t *testing.T) {
	variants := []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"parallel", []Option{WithEngineOptions(datalog.Parallel(4))}},
	}
	goals := []string{"?- reach(X, Y)", "?- hop2(X, Z)", "?- edge(X, Y)"}
	for _, variant := range variants {
		t.Run(variant.name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				r := rand.New(rand.NewSource(seed))
				dir := t.TempDir()
				mem := New(variant.opts...)
				defer mem.Close()
				seg := segCoreDB(t, dir, variant.opts...)
				installClosureRules(t, mem)
				installClosureRules(t, seg)
				if _, err := mem.Materialize("closure", "?- reach(X, Y)"); err != nil {
					t.Fatal(err)
				}
				if _, err := seg.Materialize("closure", "?- reach(X, Y)"); err != nil {
					t.Fatal(err)
				}

				nodes := make([]object.OID, 6)
				for i := range nodes {
					nodes[i] = object.OID(fmt.Sprintf("n%d", i))
				}
				present := make(map[[2]object.OID]bool)
				relate := func(e [2]object.OID) {
					t.Helper()
					if err := mem.Relate("edge", e[0], e[1]); err != nil {
						t.Fatal(err)
					}
					if err := seg.Relate("edge", e[0], e[1]); err != nil {
						t.Fatal(err)
					}
					present[e] = true
				}
				unrelate := func(e [2]object.OID) {
					t.Helper()
					okM, errM := mem.Unrelate("edge", e[0], e[1])
					okS, errS := seg.Unrelate("edge", e[0], e[1])
					if okM != okS || (errM == nil) != (errS == nil) {
						t.Fatalf("seed %d: unrelate diverged mem=(%v,%v) seg=(%v,%v)", seed, okM, errM, okS, errS)
					}
					delete(present, e)
				}

				for step := 0; step < 25; step++ {
					for m := 0; m < 1+r.Intn(3); m++ {
						e := [2]object.OID{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
						if k := r.Intn(10); k < 6 || len(present) == 0 {
							if !present[e] {
								relate(e)
							}
						} else {
							for have := range present {
								e = have
								break
							}
							unrelate(e)
						}
					}
					if r.Intn(5) == 0 {
						if err := seg.Checkpoint(); err != nil {
							t.Fatalf("seed %d step %d: checkpoint: %v", seed, step, err)
						}
					}
					for _, goal := range goals {
						rm, err := mem.Query(goal)
						if err != nil {
							t.Fatalf("seed %d step %d: mem %s: %v", seed, step, goal, err)
						}
						rs, err := seg.Query(goal)
						if err != nil {
							t.Fatalf("seed %d step %d: seg %s: %v", seed, step, goal, err)
						}
						gm, gs := rowsKey(rm.Rows), rowsKey(rs.Rows)
						if fmt.Sprint(gm) != fmt.Sprint(gs) {
							t.Fatalf("seed %d step %d: %s diverged\n mem %v\n seg %v", seed, step, goal, gm, gs)
						}
					}
					// Incremental view vs from-scratch query, on both.
					assertViewMatchesQuery(t, mem, "closure", "?- reach(X, Y)", fmt.Sprintf("mem seed %d step %d", seed, step))
					assertViewMatchesQuery(t, seg, "closure", "?- reach(X, Y)", fmt.Sprintf("seg seed %d step %d", seed, step))
				}

				// Restart the segment DB and compare once more (rules and
				// views are source artifacts: reinstall).
				if err := seg.Close(); err != nil {
					t.Fatalf("seed %d: close: %v", seed, err)
				}
				seg2 := segCoreDB(t, dir, variant.opts...)
				installClosureRules(t, seg2)
				for _, goal := range goals {
					rm, err := mem.Query(goal)
					if err != nil {
						t.Fatal(err)
					}
					rs, err := seg2.Query(goal)
					if err != nil {
						t.Fatal(err)
					}
					gm, gs := rowsKey(rm.Rows), rowsKey(rs.Rows)
					if fmt.Sprint(gm) != fmt.Sprint(gs) {
						t.Fatalf("seed %d: after restart %s diverged\n mem %v\n seg %v", seed, goal, gm, gs)
					}
				}
			}
		})
	}
}

// TestOpenSegmentEndToEnd drives the public core.OpenSegment API:
// model objects and facts, query, reopen, query again.
func TestOpenSegmentEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutEntity("o1", map[string]object.Value{"name": object.Str("David")}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEntity("o2", map[string]object.Value{"name": object.Str("Philip")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("knows", "o1", "o2"); err != nil {
		t.Fatal(err)
	}
	rs, err := db.Query("?- knows(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rs2, err := re.Query("?- knows(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rowsKey(rs2.Rows)) != fmt.Sprint(rowsKey(rs.Rows)) {
		t.Fatalf("restart changed the answer: %v vs %v", rs2.Rows, rs.Rows)
	}
	if got := re.Object("o1"); got == nil || !got.Attr("name").Equal(object.Str("David")) {
		t.Fatalf("object lost: %v", got)
	}
	if bs := re.Store().BackendStats(); bs.Kind != "segment" {
		t.Fatalf("backend = %q", bs.Kind)
	}
}
