// Package core assembles the paper's system: a video database
// V = (I, O, f, R, Σ, λ1, λ2) (Section 5.1) together with its rule-based
// constraint query language (Section 6). DB is the public entry point a
// downstream application uses: model video content as generalized
// interval objects and semantic objects, relate them with facts, define
// derived relations with rules, and query declaratively — including
// virtual editing through constructive rules.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"videodb/internal/datalog"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/parser"
	"videodb/internal/store"
)

// DB is a video database with an attached rule program.
//
// Concurrency: the underlying store is safe for concurrent use, and each
// query evaluates on its own engine, but a query is not transactionally
// isolated from concurrent writes (the engine reads the store lazily
// while it runs), and rule definition is not synchronized with queries.
// Serialize writers against readers externally — internal/server does
// exactly that for network access.
type DB struct {
	st        *store.Store
	rules     []datalog.Rule
	ruleSet   map[string]bool // rendered rule -> present (dedup)
	progVer   uint64          // bumped on every rule addition; plan-cache key component
	taxonomy  *Taxonomy
	engOpts   []datalog.Option
	noPruning bool

	// Cross-query plan cache (see plancache.go); nil when disabled with
	// WithoutQueryPlanCache.
	plans *planCache

	// Materialized views (see views.go). viewFeed attaches the store
	// changelog subscription once, on first Materialize.
	views    viewRegistry
	viewFeed sync.Once

	// Continuous queries (see subscribe.go). subFeed attaches the store
	// changelog subscription once, on first SubscribeQuery. defMu guards
	// the rule/taxonomy definitions against the subscription pumps, which
	// assemble programs from background goroutines (one-shot queries keep
	// the documented external-serialization contract above).
	subs    subRegistry
	subFeed sync.Once
	defMu   sync.RWMutex

	// gate is the optional admission hook applied by every evaluation
	// entrypoint (see gate.go); nil admits everything.
	gate Gate

	// closeOnce releases the DB's pin on the global value-interner epoch
	// exactly once, however many times Close is called.
	closeOnce sync.Once
}

// New creates an empty video database. The DB pins the process-wide
// value-interner epoch until Close — call Close (even on in-memory
// databases) when discarding a DB so the intern table can be reclaimed
// once no database remains open.
func New(opts ...Option) *DB {
	db := &DB{
		st:       store.New(),
		ruleSet:  make(map[string]bool),
		taxonomy: NewTaxonomy(),
		plans:    newPlanCache(defaultPlanCacheCap),
	}
	for _, o := range opts {
		o(db)
	}
	datalog.AcquireInterner()
	return db
}

// Option configures a DB.
type Option func(*DB)

// WithStore uses a pre-populated store (e.g. loaded from a snapshot or
// configured with index ablation options).
func WithStore(st *store.Store) Option { return func(db *DB) { db.st = st } }

// WithEngineOptions forwards options to every query engine the DB
// creates (naive evaluation, eager extension, index toggles…).
func WithEngineOptions(opts ...datalog.Option) Option {
	return func(db *DB) { db.engOpts = append(db.engOpts, opts...) }
}

// WithoutQueryPruning evaluates the full rule program for every query
// instead of the goal-reachable subprogram (the default). Used by the
// pruning ablation and for debugging.
func WithoutQueryPruning() Option { return func(db *DB) { db.noPruning = true } }

// Store exposes the underlying store.
func (db *DB) Store() *store.Store { return db.st }

// --- Modeling (the 7-tuple) ----------------------------------------------------

// PutInterval adds or replaces a generalized interval object (an element
// of I, with λ2 = duration and λ1 = the entities attribute if provided in
// attrs).
func (db *DB) PutInterval(oid object.OID, duration interval.Generalized, attrs map[string]object.Value) error {
	o := object.NewInterval(oid, duration)
	for k, v := range attrs {
		o.Set(k, v)
	}
	return db.st.Put(o)
}

// PutEntity adds or replaces a semantic object (an element of O).
func (db *DB) PutEntity(oid object.OID, attrs map[string]object.Value) error {
	o := object.NewEntity(oid)
	for k, v := range attrs {
		o.Set(k, v)
	}
	return db.st.Put(o)
}

// Attach records that the entities appear in the generalized interval
// (extends λ1).
func (db *DB) Attach(intervalOID object.OID, entities ...object.OID) error {
	return db.st.Update(intervalOID, func(o *object.Object) error {
		if o.Kind() != object.GenInterval {
			return fmt.Errorf("core: %s is not a generalized interval", intervalOID)
		}
		cur := o.Attr(object.AttrEntities)
		o.Set(object.AttrEntities, cur.Union(object.RefSet(entities...)))
		return nil
	})
}

// Relate asserts the fact rel(args...) (an element of R). The error is
// non-nil only on a durable store that refuses the write because its
// write-ahead log is poisoned or the append failed (fail-fast; the
// in-memory state is rolled back, nothing is acknowledged).
func (db *DB) Relate(rel string, args ...object.OID) error {
	_, err := db.st.AddFactErr(store.RefFact(rel, args...))
	return err
}

// Unrelate retracts the fact rel(args...). It reports whether the fact
// was present and removed; the error mirrors Relate's durability
// contract.
func (db *DB) Unrelate(rel string, args ...object.OID) (bool, error) {
	return db.st.DeleteFactErr(store.RefFact(rel, args...))
}

// Object returns the stored object, or nil.
func (db *DB) Object(oid object.OID) *object.Object { return db.st.Get(oid) }

// Intervals returns the oids of all generalized intervals, sorted.
func (db *DB) Intervals() []object.OID { return db.st.Intervals() }

// Entities returns the oids of all semantic objects, sorted.
func (db *DB) Entities() []object.OID { return db.st.Entities() }

// --- Rules and scripts ----------------------------------------------------------

// DefineRule parses and adds a single rule in VideoQL syntax. Adding the
// same rule twice is a no-op.
func (db *DB) DefineRule(src string) error {
	r, err := parser.ParseRule(src)
	if err != nil {
		return err
	}
	db.addRule(r)
	return nil
}

// AddRule adds an already-constructed rule after validating it.
func (db *DB) AddRule(r datalog.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	db.addRule(r)
	return nil
}

func (db *DB) addRule(r datalog.Rule) {
	key := r.String()
	db.defMu.Lock()
	defer db.defMu.Unlock()
	if db.ruleSet[key] {
		return
	}
	db.ruleSet[key] = true
	db.rules = append(db.rules, r)
	db.progVer++
}

// Rules returns the current program.
func (db *DB) Rules() datalog.Program { return datalog.NewProgram(db.rules...) }

// LoadScript parses a VideoQL script, applies its objects and facts to
// the database, adds its rules, and returns the result sets of its
// queries in order.
func (db *DB) LoadScript(src string) ([]*ResultSet, error) {
	return db.LoadScriptContext(context.Background(), src)
}

// LoadScriptContext is LoadScript under a context: the script's queries
// evaluate with ctx attached, so a cancellation or deadline stops them
// mid-fixpoint with an error matching datalog.ErrCanceled. Mutations the
// script already applied are not rolled back.
func (db *DB) LoadScriptContext(ctx context.Context, src string) ([]*ResultSet, error) {
	release, err := db.enter(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	script, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := script.Apply(db.st); err != nil {
		return nil, err
	}
	//videolint:ignore ctxcheck bounded by the parsed script's rule list; in-memory registration, no blocking work
	for _, r := range script.Rules {
		db.addRule(r)
	}
	var results []*ResultSet
	for _, q := range script.Queries {
		rs, err := db.runQuery(ctx, q)
		if err != nil {
			return nil, err
		}
		results = append(results, rs)
	}
	return results, nil
}

// --- Queries --------------------------------------------------------------------

// ResultSet holds the answers to one query.
type ResultSet struct {
	Columns []string         // variable names in first-occurrence order
	Rows    [][]object.Value // distinct answers in canonical order
	Created []*object.Object // ⊕-created objects, if the program is constructive
	Stats   datalog.RunStats
	Profile *datalog.Profile // per-rule/per-round timings; nil unless profiled
	engine  *datalog.Engine
}

// OIDs extracts single-column object references.
func (rs *ResultSet) OIDs() ([]object.OID, error) {
	out := make([]object.OID, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		if len(r) != 1 {
			return nil, fmt.Errorf("core: result has %d columns, want 1", len(r))
		}
		oid, ok := r[0].AsRef()
		if !ok {
			return nil, fmt.Errorf("core: non-reference answer %s", r[0])
		}
		out = append(out, oid)
	}
	return out, nil
}

// Object resolves an oid against the query's extended domain (store plus
// created objects), so answers referring to ⊕-created intervals can be
// inspected.
func (rs *ResultSet) Object(oid object.OID) *object.Object {
	if rs.engine != nil {
		return rs.engine.Object(oid)
	}
	return nil
}

// Query parses and evaluates a VideoQL query ("?-" optional) against the
// database and its current rules.
func (db *DB) Query(src string) (*ResultSet, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: the evaluation observes ctx and
// stops with an error matching datalog.ErrCanceled (and ctx's own cause)
// soon after ctx is cancelled or its deadline passes.
func (db *DB) QueryContext(ctx context.Context, src string) (*ResultSet, error) {
	release, err := db.enter(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return db.runQuery(ctx, q)
}

// QueryProfiledContext is QueryContext with the engine's profiler on:
// the result's Profile carries per-rule and per-round wall time, firings,
// derived counts, and solver/memo consumption — the EXPLAIN ANALYZE
// companion to Explain. Profiling adds bookkeeping to rule evaluation,
// so it is opt-in per query rather than always-on.
func (db *DB) QueryProfiledContext(ctx context.Context, src string) (*ResultSet, error) {
	release, err := db.enter(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return db.runQuery(ctx, q, datalog.WithProfiling())
}

// QueryAtom evaluates a pre-built query atom against the database.
func (db *DB) QueryAtom(atom datalog.RelAtom) (*ResultSet, error) {
	return db.QueryAtomContext(context.Background(), atom)
}

// QueryAtomContext is QueryAtom under a context.
func (db *DB) QueryAtomContext(ctx context.Context, atom datalog.RelAtom) (*ResultSet, error) {
	release, err := db.enter(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return db.runQuery(ctx, parser.Query{Atom: atom})
}

// newEngine builds a fresh engine over the database's rules, the
// taxonomy's rules, and the query's synthesized rule (if any). A
// non-Background ctx is attached to the engine so the fixpoint observes
// cancellation; Background stays off the hot path entirely.
func (db *DB) newEngine(ctx context.Context, q parser.Query, extra ...datalog.Option) (*datalog.Engine, error) {
	cp, err := db.compiledProgramFor(q.Atom.Pred, q.Rule)
	if err != nil {
		return nil, err
	}
	opts := db.engOpts
	if ctx != nil && ctx != context.Background() {
		opts = append(append([]datalog.Option(nil), opts...), datalog.WithContext(ctx))
	}
	if len(extra) > 0 {
		opts = append(append([]datalog.Option(nil), opts...), extra...)
	}
	return datalog.NewEngineWith(db.st, cp, opts...), nil
}

// engineFor parses a query and builds the engine that would answer it,
// without running it (used by Explain).
func (db *DB) engineFor(ctx context.Context, src string) (*datalog.Engine, parser.Query, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, parser.Query{}, err
	}
	eng, err := db.newEngine(ctx, q)
	return eng, q, err
}

func (db *DB) runQuery(ctx context.Context, q parser.Query, extra ...datalog.Option) (*ResultSet, error) {
	eng, err := db.newEngine(ctx, q, extra...)
	if err != nil {
		return nil, err
	}
	res, err := eng.Query(q.Atom)
	if err != nil {
		return nil, err
	}
	var cols []string
	seen := map[string]bool{}
	//videolint:ignore ctxcheck bounded by the goal atom's arity; pure column-name collection, no blocking work
	for _, t := range q.Atom.Args {
		if t.IsVar() && !seen[t.Name()] {
			seen[t.Name()] = true
			cols = append(cols, t.Name())
		}
	}
	rs := &ResultSet{
		Columns: cols,
		Created: eng.Created(),
		Stats:   eng.Stats(),
		Profile: eng.Profile(),
		engine:  eng,
	}
	for _, r := range res {
		rs.Rows = append(rs.Rows, r.Values)
	}
	return rs, nil
}

// --- Virtual editing -------------------------------------------------------------

// Compose concatenates the given generalized intervals into a new
// interval object (the virtual-editing functionality of Section 6.1,
// available imperatively) and stores it. The resulting oid is returned;
// composing the same set twice yields the same oid.
func (db *DB) Compose(oids ...object.OID) (object.OID, error) {
	if len(oids) == 0 {
		return "", fmt.Errorf("core: Compose needs at least one interval")
	}
	sorted := append([]object.OID(nil), oids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	dedup := sorted[:0]
	for i, id := range sorted {
		if i == 0 || sorted[i-1] != id {
			dedup = append(dedup, id)
		}
	}
	var merged *object.Object
	for _, oid := range dedup {
		o := db.st.Get(oid)
		if o == nil {
			return "", fmt.Errorf("core: no object %q", oid)
		}
		if o.Kind() != object.GenInterval {
			return "", fmt.Errorf("core: %q is not a generalized interval", oid)
		}
		if merged == nil {
			merged = o.Clone()
		} else {
			merged = merged.Merge(o, "")
		}
	}
	if len(dedup) == 1 {
		return dedup[0], nil
	}
	name := ""
	for i, id := range dedup {
		if i > 0 {
			name += "+"
		}
		name += string(id)
	}
	oid := object.OID(name)
	final := merged.Merge(object.New(oid, object.GenInterval), oid)
	if err := db.st.Put(final); err != nil {
		return "", err
	}
	return oid, nil
}

// --- Persistence ------------------------------------------------------------------

// SaveFile writes the database content (objects and facts; rules are
// source artifacts, not data) to a snapshot file.
func (db *DB) SaveFile(path string) error { return db.st.SaveFile(path) }

// LoadFile replaces the database content from a snapshot file.
func (db *DB) LoadFile(path string) error { return db.st.LoadFile(path) }
