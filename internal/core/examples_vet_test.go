package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleScriptsVetClean pins the examples to the analyzer: every
// shipped .vql script must produce zero diagnostics — not even infos.
// `make vet-examples` enforces the same invariant via the CLI.
func TestExampleScriptsVetClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.FromSlash("../../examples/scripts/*.vql"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example scripts found under examples/scripts")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			db := New()
			defer db.Close()
			ds, err := db.Vet(string(src))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range ds {
				t.Errorf("%s: %s", path, d)
			}
		})
	}
}
