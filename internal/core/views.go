package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"videodb/internal/datalog"
	"videodb/internal/object"
	"videodb/internal/parser"
	"videodb/internal/store"
)

// Materialized views: a view is a named VideoQL goal whose answers are
// computed once and then maintained against store mutations instead of
// re-evaluated per read — the paper's workload (Section 6 queries asked
// repeatedly over a slowly mutating annotation base) rarely needs a full
// fixpoint per question.
//
// Maintenance strategy, per read:
//
//   - cached: no relevant mutations since the last refresh — serve the
//     stored rows.
//   - incremental: only fact mutations on predicates of the view's
//     reachable slice arrived, and the slice is in the incrementally
//     maintainable fragment (positive, non-constructive). The pending
//     events fold to a net FactDelta and datalog.RunIncremental applies
//     insertion semi-naive propagation plus DRed deletion, seeded from
//     the previous extension.
//   - recompute: anything else — object mutations (class atoms and
//     attribute filters can depend on any object), a store reset, a
//     rule-set change (detected by fingerprinting the rendered reachable
//     slice, the Vet-style schema snapshot), an overflowing event queue,
//     or a slice outside the maintainable fragment.
//
// Events are queued by a store.Subscribe hook under the store's write
// lock and drained under the view's own mutex at read time; a view read
// therefore reflects every mutation acknowledged before the read
// started. Reads of different views proceed independently.

// maxPendingEvents bounds a view's event queue; overflow degrades to a
// full recompute instead of unbounded memory growth.
const maxPendingEvents = 4096

type viewRegistry struct {
	mu    sync.Mutex
	views map[string]*viewState
}

type viewState struct {
	name    string
	goalSrc string
	goal    parser.Query

	// mu serializes refreshes (and result reads) of this view.
	mu sync.Mutex

	// The event queue, guarded separately so store mutations delivering
	// events never contend with a running refresh. relevant is read by
	// the delivery path and rebuilt by refreshes, so it lives under
	// pendingMu too.
	pendingMu sync.Mutex
	pending   []store.Event
	reset     bool // object event, store reset, or overflow → recompute
	relevant  map[string]bool

	// Materialized state, guarded by mu.
	valid       bool
	fingerprint string
	incremental bool // slice is maintainable and the goal is rule-defined
	ext         datalog.Extension
	columns     []string
	rows        [][]object.Value
	lastStats   datalog.RunStats

	recomputes      uint64
	incrementalRuns uint64
	cacheHits       uint64
	lastMode        ViewMode
}

// ViewMode says how a view read was served.
type ViewMode string

const (
	ViewCached      ViewMode = "cached"
	ViewIncremental ViewMode = "incremental"
	ViewRecompute   ViewMode = "recompute"
)

// ViewResult is one view read: the (maintained) answers plus how they
// were produced. Rows are shared with the view's cache — treat them as
// immutable. Unlike Query results, rows are in no particular order
// (maintained views avoid the canonical re-sort per refresh; sort
// client-side if order matters).
type ViewResult struct {
	Name    string
	Columns []string
	Rows    [][]object.Value
	Mode    ViewMode
	// Net fact changes the refresh applied (incremental mode only).
	AppliedInserts int
	AppliedDeletes int
	// Stats of the engine run that produced the current extension (the
	// last recompute or incremental run; cached reads repeat it).
	Stats datalog.RunStats
}

// ViewInfo summarizes a registered view for listings.
type ViewInfo struct {
	Name            string   `json:"name"`
	Goal            string   `json:"goal"`
	Valid           bool     `json:"valid"`
	Rows            int      `json:"rows"`
	Pending         int      `json:"pending"`
	LastMode        ViewMode `json:"last_mode,omitempty"`
	Recomputes      uint64   `json:"recomputes"`
	IncrementalRuns uint64   `json:"incremental_runs"`
	CacheHits       uint64   `json:"cache_hits"`
}

// Materialize registers a named view over a VideoQL goal ("?-" optional;
// conjunctive goals allowed) and computes it. On a computation error
// (e.g. cancellation) the view stays registered but invalid, and the
// next read retries. Rule definition must be serialized against view
// reads, exactly as it must be against queries.
func (db *DB) Materialize(name, goal string) (*ViewResult, error) {
	return db.MaterializeContext(context.Background(), name, goal)
}

// MaterializeContext is Materialize under a context.
func (db *DB) MaterializeContext(ctx context.Context, name, goal string) (*ViewResult, error) {
	release, err := db.enter(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if name == "" {
		return nil, fmt.Errorf("core: view name must be non-empty")
	}
	q, err := parser.ParseQuery(goal)
	if err != nil {
		return nil, err
	}
	// Attach the changelog feed before registering, so no acknowledged
	// mutation can slip between registration and the initial compute.
	db.viewFeed.Do(func() { db.st.Subscribe(db.onStoreEvent) })
	db.views.mu.Lock()
	if db.views.views == nil {
		db.views.views = make(map[string]*viewState)
	}
	if _, dup := db.views.views[name]; dup {
		db.views.mu.Unlock()
		return nil, fmt.Errorf("core: view %q already exists", name)
	}
	v := &viewState{name: name, goalSrc: strings.TrimSpace(goal), goal: q}
	db.views.views[name] = v
	db.views.mu.Unlock()
	return db.refreshView(ctx, v)
}

// View reads a materialized view, maintaining it first if relevant
// mutations arrived since the last read.
func (db *DB) View(name string) (*ViewResult, error) {
	return db.ViewContext(context.Background(), name)
}

// ViewContext is View under a context: cancellation mid-maintenance
// returns an error matching datalog.ErrCanceled and leaves the view at
// its previous consistent state; the interrupted batch is re-queued and
// applied by the next read.
func (db *DB) ViewContext(ctx context.Context, name string) (*ViewResult, error) {
	release, err := db.enter(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	db.views.mu.Lock()
	v := db.views.views[name]
	db.views.mu.Unlock()
	if v == nil {
		return nil, fmt.Errorf("core: no view %q", name)
	}
	return db.refreshView(ctx, v)
}

// DropView unregisters a view; it reports whether it existed.
func (db *DB) DropView(name string) bool {
	db.views.mu.Lock()
	defer db.views.mu.Unlock()
	if _, ok := db.views.views[name]; !ok {
		return false
	}
	delete(db.views.views, name)
	return true
}

// Views lists the registered views, sorted by name.
func (db *DB) Views() []ViewInfo {
	db.views.mu.Lock()
	states := make([]*viewState, 0, len(db.views.views))
	for _, v := range db.views.views {
		states = append(states, v)
	}
	db.views.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	out := make([]ViewInfo, len(states))
	for i, v := range states {
		v.mu.Lock()
		v.pendingMu.Lock()
		out[i] = ViewInfo{
			Name:            v.name,
			Goal:            v.goalSrc,
			Valid:           v.valid,
			Rows:            len(v.rows),
			Pending:         len(v.pending),
			LastMode:        v.lastMode,
			Recomputes:      v.recomputes,
			IncrementalRuns: v.incrementalRuns,
			CacheHits:       v.cacheHits,
		}
		v.pendingMu.Unlock()
		v.mu.Unlock()
	}
	return out
}

// onStoreEvent queues an acknowledged store mutation for every view. It
// runs under the store's write lock (see the changelog contract), so it
// must only queue — never read the store or run maintenance.
func (db *DB) onStoreEvent(ev store.Event) {
	db.views.mu.Lock()
	defer db.views.mu.Unlock()
	for _, v := range db.views.views {
		v.enqueue(ev)
	}
}

func (v *viewState) enqueue(ev store.Event) {
	v.pendingMu.Lock()
	defer v.pendingMu.Unlock()
	switch ev.Kind {
	case store.EventAddFact, store.EventDeleteFact:
		if v.reset {
			return // a recompute is owed anyway
		}
		// Facts on predicates outside the view's reachable slice cannot
		// change its answers. Before the first successful build relevant
		// is nil and everything is kept (conservative).
		if v.relevant != nil && !v.relevant[ev.Fact.Name] {
			return
		}
		if len(v.pending) >= maxPendingEvents {
			v.reset = true
			v.pending = nil
			return
		}
		v.pending = append(v.pending, ev)
	default:
		// Object mutations and store resets invalidate wholesale: class
		// atoms, attribute filters, and constraint entailment can depend
		// on any object.
		v.reset = true
		v.pending = nil
	}
}

// viewProgram assembles the view's reachable rule slice and its
// fingerprint — the rendered slice, which changes exactly when a
// rule-set or taxonomy change touches a rule the view can reach.
func (db *DB) viewProgram(v *viewState) (datalog.Program, string) {
	rules := append([]datalog.Rule(nil), db.rules...)
	rules = append(rules, db.taxonomy.Rules()...)
	if v.goal.Rule != nil {
		rules = append(rules, *v.goal.Rule)
	}
	prog := datalog.NewProgram(rules...).Reachable(v.goal.Atom.Pred)
	var fp strings.Builder
	for _, r := range prog.Rules {
		fp.WriteString(r.String())
		fp.WriteByte('\n')
	}
	fp.WriteString("?- ")
	fp.WriteString(v.goal.Atom.String())
	return prog, fp.String()
}

func (db *DB) viewEngine(ctx context.Context, prog datalog.Program) (*datalog.Engine, error) {
	opts := db.engOpts
	if ctx != nil && ctx != context.Background() {
		opts = append(append([]datalog.Option(nil), opts...), datalog.WithContext(ctx))
	}
	return datalog.NewEngine(db.st, prog, opts...)
}

// refreshView brings the view up to date and returns a read snapshot.
func (db *DB) refreshView(ctx context.Context, v *viewState) (*ViewResult, error) {
	v.mu.Lock()
	defer v.mu.Unlock()

	prog, fp := db.viewProgram(v)

	// Drain the pending mutations this refresh will cover.
	v.pendingMu.Lock()
	batch := v.pending
	v.pending = nil
	needReset := v.reset
	v.reset = false
	v.pendingMu.Unlock()

	// requeue puts an unapplied batch back at the front of the queue so
	// a cancelled maintenance pass loses nothing.
	requeue := func() {
		v.pendingMu.Lock()
		if needReset {
			v.reset = true
		}
		v.pending = append(append([]store.Event(nil), batch...), v.pending...)
		v.pendingMu.Unlock()
	}

	full := !v.valid || needReset || fp != v.fingerprint
	var (
		eng      *datalog.Engine
		mode     ViewMode
		ins, del datalog.FactDelta
		nIns     int
		nDel     int
	)
	if !full {
		if len(batch) == 0 {
			v.cacheHits++
			v.lastMode = ViewCached
			return v.snapshot(ViewCached, 0, 0), nil
		}
		ins, del, nIns, nDel = foldEvents(batch)
		if nIns == 0 && nDel == 0 {
			// The batch nets out to nothing (e.g. add then delete).
			v.cacheHits++
			v.lastMode = ViewCached
			return v.snapshot(ViewCached, 0, 0), nil
		}
		if !v.incremental {
			// Relevant mutations arrived but the slice is outside the
			// maintainable fragment: recompute. (Idle reads above still
			// serve the cache — non-maintainable only costs on change.)
			full = true
		}
	}
	if !full {
		var err error
		eng, err = db.viewEngine(ctx, prog)
		if err != nil {
			//videolint:ignore lockcheck requeue is a local closure that only re-queues the batch under pendingMu; it cannot block or re-enter v.mu
			requeue()
			return nil, err
		}
		if err = eng.RunIncremental(v.ext, ins, del); err != nil {
			if datalog.IsCanceled(err) {
				// The previous extension is untouched (the engine is
				// private); re-queue the batch for the next read.
				requeue()
				return nil, err
			}
			// Unexpected incremental failure: fall through to a full
			// recompute, which needs no event bookkeeping.
			full = true
		} else {
			mode = ViewIncremental
		}
	}
	if full {
		var err error
		eng, err = db.viewEngine(ctx, prog)
		if err != nil {
			requeue()
			return nil, err
		}
		if err = eng.Run(); err != nil {
			// Leave the view invalid: the next read recomputes from
			// scratch (the dropped batch is subsumed by the recompute).
			v.valid = false
			return nil, err
		}
		mode = ViewRecompute
		nIns, nDel = 0, 0
	}

	v.ext = eng.Extensions()
	rows, direct := v.ext[v.goal.Atom.Pred]
	if !direct || !distinctVarAtom(v.goal.Atom) {
		// The goal filters (constants, repeated variables) or targets an
		// extensional predicate: extract through the engine's query path.
		res, err := eng.Query(v.goal.Atom)
		if err != nil {
			v.valid = false
			return nil, err
		}
		rows = make([][]object.Value, len(res))
		for i, r := range res {
			rows[i] = r.Values
		}
	}

	v.fingerprint = fp
	v.incremental = prog.SupportsIncremental() && isIDBPred(prog, v.goal.Atom.Pred)
	v.columns = goalColumns(v.goal.Atom)
	v.rows = rows
	v.lastStats = eng.Stats()
	v.valid = true
	v.lastMode = mode
	if mode == ViewIncremental {
		v.incrementalRuns++
	} else {
		v.recomputes++
	}

	// Publish the predicate relevance filter for the event path.
	rel := relevantPreds(prog, v.goal.Atom.Pred)
	//videolint:ignore lockcheck deliberate split: publishing the relevance filter; events racing the build stay queued and trigger the next flush
	v.pendingMu.Lock()
	v.relevant = rel
	v.pendingMu.Unlock()

	return v.snapshot(mode, nIns, nDel), nil
}

// snapshot builds a read result from the current materialized state.
// Caller holds v.mu.
func (v *viewState) snapshot(mode ViewMode, ins, del int) *ViewResult {
	return &ViewResult{
		Name:           v.name,
		Columns:        v.columns,
		Rows:           v.rows,
		Mode:           mode,
		AppliedInserts: ins,
		AppliedDeletes: del,
		Stats:          v.lastStats,
	}
}

// foldEvents reduces an in-order event batch to net fact deltas. Events
// fire only on actual change, so per fact key the kinds alternate; the
// net effect is the first kind iff it equals the last, else nothing.
func foldEvents(batch []store.Event) (ins, del datalog.FactDelta, nIns, nDel int) {
	type slot struct {
		first, last store.EventKind
		fact        store.Fact
	}
	var order []string
	slots := make(map[string]*slot)
	for _, ev := range batch {
		k := ev.Fact.Key()
		s := slots[k]
		if s == nil {
			s = &slot{first: ev.Kind, fact: ev.Fact}
			slots[k] = s
			order = append(order, k)
		}
		s.last = ev.Kind
	}
	ins, del = make(datalog.FactDelta), make(datalog.FactDelta)
	for _, k := range order {
		s := slots[k]
		if s.first != s.last {
			continue
		}
		if s.first == store.EventAddFact {
			ins[s.fact.Name] = append(ins[s.fact.Name], s.fact.Args)
			nIns++
		} else {
			del[s.fact.Name] = append(del[s.fact.Name], s.fact.Args)
			nDel++
		}
	}
	return ins, del, nIns, nDel
}

// relevantPreds collects every predicate mentioned in the slice (heads
// and relational body atoms, negated included) plus the goal predicate:
// fact events elsewhere cannot affect the view.
func relevantPreds(prog datalog.Program, goal string) map[string]bool {
	out := map[string]bool{goal: true}
	for _, r := range prog.Rules {
		out[r.Head.Pred] = true
		for _, l := range r.Body {
			switch a := l.(type) {
			case datalog.RelAtom:
				out[a.Pred] = true
			case datalog.NotAtom:
				out[a.Atom.Pred] = true
			}
		}
	}
	return out
}

// distinctVarAtom reports whether every argument of the atom is a
// variable and no variable repeats — the case where querying the atom
// returns the predicate's extension unchanged.
func distinctVarAtom(atom datalog.RelAtom) bool {
	seen := map[string]bool{}
	for _, t := range atom.Args {
		if !t.IsVar() || seen[t.Name()] {
			return false
		}
		seen[t.Name()] = true
	}
	return true
}

func isIDBPred(prog datalog.Program, pred string) bool {
	for _, r := range prog.Rules {
		if r.Head.Pred == pred {
			return true
		}
	}
	return false
}

// goalColumns mirrors runQuery's column extraction: goal variables in
// first-occurrence order.
func goalColumns(atom datalog.RelAtom) []string {
	var cols []string
	seen := map[string]bool{}
	for _, t := range atom.Args {
		if t.IsVar() && !seen[t.Name()] {
			seen[t.Name()] = true
			cols = append(cols, t.Name())
		}
	}
	return cols
}

// IsViewNotFound reports whether err is a missing-view error from View,
// ViewContext, or DropView-adjacent lookups.
func IsViewNotFound(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no view")
}
