package core

import (
	"fmt"
	"math"
	"sort"

	"videodb/internal/object"
)

// Aggregation helpers over result sets — a lightweight realization of the
// aggregation abstraction the paper's conclusion lists as future work.
// They operate on the already-computed distinct answers, so they compose
// with any query the language can express.

// Count returns the number of distinct answers.
func (rs *ResultSet) Count() int { return len(rs.Rows) }

// Column returns the values of the named column.
func (rs *ResultSet) Column(name string) ([]object.Value, error) {
	idx := -1
	for i, c := range rs.Columns {
		if c == name {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("core: no column %q (have %v)", name, rs.Columns)
	}
	out := make([]object.Value, len(rs.Rows))
	for i, row := range rs.Rows {
		out[i] = row[idx]
	}
	return out, nil
}

// numericColumn extracts the column and requires every value numeric.
func (rs *ResultSet) numericColumn(name string) ([]float64, error) {
	vals, err := rs.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		n, ok := v.AsNumber()
		if !ok {
			return nil, fmt.Errorf("core: column %q has non-numeric value %s", name, v)
		}
		out[i] = n
	}
	return out, nil
}

// Sum returns the sum of a numeric column (0 for no rows).
func (rs *ResultSet) Sum(column string) (float64, error) {
	ns, err := rs.numericColumn(column)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, n := range ns {
		s += n
	}
	return s, nil
}

// Min returns the minimum of a numeric column (+Inf for no rows).
func (rs *ResultSet) Min(column string) (float64, error) {
	ns, err := rs.numericColumn(column)
	if err != nil {
		return 0, err
	}
	m := math.Inf(1)
	for _, n := range ns {
		if n < m {
			m = n
		}
	}
	return m, nil
}

// Max returns the maximum of a numeric column (-Inf for no rows).
func (rs *ResultSet) Max(column string) (float64, error) {
	ns, err := rs.numericColumn(column)
	if err != nil {
		return 0, err
	}
	m := math.Inf(-1)
	for _, n := range ns {
		if n > m {
			m = n
		}
	}
	return m, nil
}

// GroupCount groups the answers by the named column and returns the
// distinct-answer count per group, sorted by the canonical order of the
// group values.
func (rs *ResultSet) GroupCount(column string) ([]Group, error) {
	vals, err := rs.Column(column)
	if err != nil {
		return nil, err
	}
	byKey := map[string]*Group{}
	var order []string
	for _, v := range vals {
		k := v.String()
		g, ok := byKey[k]
		if !ok {
			g = &Group{Key: v}
			byKey[k] = g
			order = append(order, k)
		}
		g.Count++
	}
	sort.Strings(order)
	out := make([]Group, len(order))
	for i, k := range order {
		out[i] = *byKey[k]
	}
	return out, nil
}

// Group is one bucket of GroupCount.
type Group struct {
	Key   object.Value
	Count int
}

// TotalScreenTime sums the durations of interval-object answers in the
// named column — the archive question "how long is X on screen overall",
// computed from generalized intervals without double counting (each
// answer's duration is already a union of fragments).
func (rs *ResultSet) TotalScreenTime(column string) (float64, error) {
	vals, err := rs.Column(column)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, v := range vals {
		oid, ok := v.AsRef()
		if !ok {
			return 0, fmt.Errorf("core: column %q has non-reference value %s", column, v)
		}
		o := rs.Object(oid)
		if o == nil {
			return 0, fmt.Errorf("core: no object %q", oid)
		}
		total += o.Duration().Duration()
	}
	return total, nil
}
