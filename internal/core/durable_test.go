package core

import (
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

func TestDurableDB(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutEntity("o1", map[string]object.Value{"name": object.Str("David")}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutInterval("gi1", interval.FromPairs(0, 30), map[string]object.Value{
		object.AttrEntities: object.RefSet("o1"),
	}); err != nil {
		t.Fatal(err)
	}
	db.Relate("in", "o1", "gi1")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEntity("o2", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Entities()) != 2 || len(re.Intervals()) != 1 {
		t.Fatalf("recovered %v entities, %v intervals", re.Entities(), re.Intervals())
	}
	rs, err := re.Query("?- in(X, G).")
	if err != nil || len(rs.Rows) != 1 {
		t.Errorf("facts after recovery: %v %v", rs, err)
	}
	// Queries over recovered data behave normally.
	rs, err = re.Query("?- Interval(G), o1 in G.entities.")
	if err != nil || rs.Count() != 1 {
		t.Errorf("query after recovery: %v %v", rs, err)
	}
}

func TestInMemoryDBCloseNoop(t *testing.T) {
	db := New()
	if err := db.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Error("Checkpoint on in-memory DB should fail")
	}
}
