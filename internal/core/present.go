package core

import (
	"fmt"
	"sort"
	"strings"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// Cue is one entry of an edit decision list: play the span, which comes
// from the given source generalized interval.
type Cue struct {
	Span   interval.Span
	Source object.OID
}

// String renders the cue, e.g. "gi1 [0,30)".
func (c Cue) String() string { return fmt.Sprintf("%s %s", c.Source, c.Span) }

// EDL is a playable edit decision list, the sequence-presentation helper
// the paper's conclusion calls for: query answers (generalized interval
// objects) ordered into a linear playback plan.
type EDL []Cue

// String renders the list, one cue per line.
func (e EDL) String() string {
	parts := make([]string, len(e))
	for i, c := range e {
		parts[i] = c.String()
	}
	return strings.Join(parts, "\n")
}

// Runtime returns the total playback time (the sum of cue lengths).
func (e EDL) Runtime() float64 {
	var d float64
	for _, c := range e {
		d += c.Span.Length()
	}
	return d
}

// Compact retimes the list into a gapless playback plan: cues keep their
// order and lengths but start back-to-back at the given origin, as a
// cutting room would splice the fragments. Unbounded cues are rejected.
func (e EDL) Compact(origin float64) (EDL, error) {
	out := make(EDL, len(e))
	at := origin
	for i, c := range e {
		if !c.Span.IsBounded() {
			return nil, fmt.Errorf("core: cue %d (%s) is unbounded", i, c)
		}
		length := c.Span.Length()
		out[i] = Cue{
			Span:   interval.ClosedOpen(at, at+length),
			Source: c.Source,
		}
		at += length
	}
	return out, nil
}

// Presentation builds an edit decision list from generalized interval
// objects: every fragment of every interval becomes a cue, ordered by
// start time (ties by source oid). Objects are resolved against the
// store; pass a ResultSet-resolved object list for ⊕-created intervals.
func (db *DB) Presentation(oids ...object.OID) (EDL, error) {
	objs := make([]*object.Object, 0, len(oids))
	for _, oid := range oids {
		o := db.st.Get(oid)
		if o == nil {
			return nil, fmt.Errorf("core: no object %q", oid)
		}
		objs = append(objs, o)
	}
	return PresentationOf(objs...)
}

// PresentationOf builds an edit decision list from already-resolved
// interval objects (e.g. including ⊕-created ones from a ResultSet).
func PresentationOf(objs ...*object.Object) (EDL, error) {
	var edl EDL
	for _, o := range objs {
		if o.Kind() != object.GenInterval {
			return nil, fmt.Errorf("core: %q is not a generalized interval", o.OID())
		}
		for _, s := range o.Duration().Spans() {
			edl = append(edl, Cue{Span: s, Source: o.OID()})
		}
	}
	sort.Slice(edl, func(i, j int) bool {
		a, b := edl[i], edl[j]
		if a.Span.Lo != b.Span.Lo {
			return a.Span.Lo < b.Span.Lo
		}
		if a.Span.Hi != b.Span.Hi {
			return a.Span.Hi < b.Span.Hi
		}
		return a.Source < b.Source
	})
	return edl, nil
}
