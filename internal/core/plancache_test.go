package core

import (
	"fmt"
	"testing"

	"videodb/internal/datalog"
	"videodb/internal/object"
)

// resultKeys renders a result set's rows for comparison.
func resultKeys(rs *ResultSet) []string {
	out := make([]string, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		key := ""
		for i, v := range r {
			if i > 0 {
				key += "\x1f"
			}
			key += v.String()
		}
		out = append(out, key)
	}
	return out
}

func TestPlanCacheHitsOnRepeatedQuery(t *testing.T) {
	db := buildRope(t)
	if err := db.DefineRule(`appears(O, G) :- Interval(G), Object(O), O in G.entities`); err != nil {
		t.Fatal(err)
	}
	const q = "?- appears(O, G)"
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first query: %+v", st)
	}
	for i := 0; i < 3; i++ {
		again, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a, b := resultKeys(first), resultKeys(again)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("cached plan changed the answer: %v vs %v", a, b)
		}
	}
	st = db.PlanCacheStats()
	if st.Hits != 3 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after repeats: %+v", st)
	}
}

func TestPlanCacheInvalidation(t *testing.T) {
	db := buildRope(t)
	if err := db.DefineRule(`appears(O, G) :- Interval(G), Object(O), O in G.entities`); err != nil {
		t.Fatal(err)
	}
	const q = "?- appears(O, G)"
	query := func() {
		t.Helper()
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	query()
	query()
	st := db.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warmup: %+v", st)
	}

	// A new rule changes the program version: the next query must
	// recompile (miss), and hit again after.
	if err := db.DefineRule(`also(O) :- appears(O, G).`); err != nil {
		t.Fatal(err)
	}
	query()
	if st = db.PlanCacheStats(); st.Misses != 2 {
		t.Fatalf("after rule change: %+v", st)
	}

	// A taxonomy change invalidates too (its rules join every program).
	if err := db.DefineClass("person", ""); err != nil {
		t.Fatal(err)
	}
	query()
	if st = db.PlanCacheStats(); st.Misses != 3 {
		t.Fatalf("after taxonomy change: %+v", st)
	}

	// A store-schema change (a relation appearing) invalidates; adding a
	// fact to an existing relation does not (total 2 -> 3 facts stays in
	// size class 2).
	if err := db.Relate("fresh_rel", "o1", "o2"); err != nil {
		t.Fatal(err)
	}
	query()
	if st = db.PlanCacheStats(); st.Misses != 4 {
		t.Fatalf("after schema change: %+v", st)
	}
	// Crossing a power of two (3 -> 4 facts) moves the cardinality
	// bucket: the next query re-costs the plan (miss)...
	if err := db.Relate("fresh_rel", "o2", "o3"); err != nil {
		t.Fatal(err)
	}
	query()
	if st = db.PlanCacheStats(); st.Misses != 5 {
		t.Fatalf("after size-class change: %+v", st)
	}
	// ...while an insert within the same bucket (4 -> 5, class 3) does
	// not invalidate.
	if err := db.Relate("fresh_rel", "o3", "o4"); err != nil {
		t.Fatal(err)
	}
	query()
	if st = db.PlanCacheStats(); st.Misses != 5 || st.Hits < 2 {
		t.Fatalf("fact insert within the size class should not invalidate: %+v", st)
	}
}

// TestPlanCacheReplansAfterBulkLoad is the regression test for the
// stale-plan bug: plan keys carried only the schema version, so a plan
// compiled against a near-empty relation kept serving after the
// relation grew by orders of magnitude, freezing a join order chosen
// for the wrong cardinalities. Keys now include a coarse size class
// (log2 of total facts), so a 100x bulk load forces exactly one replan
// while steady-state inserts keep hitting.
func TestPlanCacheReplansAfterBulkLoad(t *testing.T) {
	db := buildRope(t)
	if err := db.DefineRule(`linked(X, Y) :- edge(X, Y)`); err != nil {
		t.Fatal(err)
	}
	// Seed a small relation and warm the cache on it.
	for i := 0; i < 4; i++ {
		if err := db.Relate("edge", object.OID(fmt.Sprintf("a%d", i)), object.OID(fmt.Sprintf("a%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	const q = "?- linked(X, Y)"
	for i := 0; i < 2; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	warm := db.PlanCacheStats()
	if warm.Hits == 0 {
		t.Fatalf("cache never warmed: %+v", warm)
	}

	// Bulk-load 100x the facts into the existing relation — no schema
	// change, no new relation, just cardinality growth.
	before := db.Store().FactCount("edge")
	for i := 0; i < 100*4; i++ {
		if err := db.Relate("edge", object.OID(fmt.Sprintf("b%d", i)), object.OID(fmt.Sprintf("b%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if after := db.Store().FactCount("edge"); after < before*100 {
		t.Fatalf("bulk load too small: %d -> %d facts", before, after)
	}

	rs, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	grown := db.PlanCacheStats()
	if grown.Misses <= warm.Misses {
		t.Fatalf("100x bulk load did not force a replan: warm %+v, grown %+v", warm, grown)
	}
	if len(rs.Rows) != 4+100*4 {
		t.Fatalf("replanned query lost rows: %d", len(rs.Rows))
	}
	// Steady state after the load: repeats hit again.
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := db.PlanCacheStats(); st.Misses != grown.Misses || st.Hits <= grown.Hits {
		t.Fatalf("replanned entry not reused: %+v", st)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := buildRope(t)
	WithoutQueryPlanCache()(db)
	if err := db.DefineRule(`appears(O, G) :- Interval(G), Object(O), O in G.entities`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := db.Query("?- appears(O, G)"); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Fatalf("disabled cache reported traffic: %+v", st)
	}
}

// TestPlanCacheMatchesUncached compares every answer of a mixed query
// workload between a cached and an uncached DB over the same store.
func TestPlanCacheMatchesUncached(t *testing.T) {
	queries := []string{
		"?- appears(O, G)",
		`?- in(X, Y, G)`,
		"?- appears(O, G), G.subject = \"murder\"",
		"?- appears(O, G)", // repeat: served from cache
	}
	cached := buildRope(t)
	plain := New(WithStore(cached.Store()), WithoutQueryPlanCache())
	for _, db := range []*DB{cached, plain} {
		if err := db.DefineRule(`appears(O, G) :- Interval(G), Object(O), O in G.entities`); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		a, err := cached.Query(q)
		if err != nil {
			t.Fatalf("%s (cached): %v", q, err)
		}
		b, err := plain.Query(q)
		if err != nil {
			t.Fatalf("%s (uncached): %v", q, err)
		}
		if fmt.Sprint(resultKeys(a)) != fmt.Sprint(resultKeys(b)) {
			t.Fatalf("%s: cached %v vs uncached %v", q, resultKeys(a), resultKeys(b))
		}
	}
	if st := cached.PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("workload never hit the cache: %+v", st)
	}
}

// TestPlanCacheWithEngineOptions checks the NewEngineWith fallback: an
// option that changes what compiled plans must contain (EagerExtension)
// still evaluates correctly from a cached artifact.
func TestPlanCacheWithEngineOptions(t *testing.T) {
	db := buildRope(t)
	WithEngineOptions(datalog.EagerExtension(), datalog.MaxCreated(64))(db)
	if err := db.DefineRule(`appears(O, G) :- Interval(G), Object(O), O in G.entities`); err != nil {
		t.Fatal(err)
	}
	var prev []string
	for i := 0; i < 2; i++ {
		rs, err := db.Query("?- appears(O, G)")
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && fmt.Sprint(resultKeys(rs)) != fmt.Sprint(prev) {
			t.Fatalf("eager run changed between cold and warm plans")
		}
		prev = resultKeys(rs)
	}
}
