package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"videodb/internal/datalog"
	"videodb/internal/object"
)

// rowsKey flattens a result row set into a canonical sorted form for
// comparison between a view read and a from-scratch query.
func rowsKey(rows [][]object.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "\x1f")
	}
	sort.Strings(out)
	return out
}

func assertViewMatchesQuery(t *testing.T, db *DB, view, goal, label string) *ViewResult {
	t.Helper()
	vr, err := db.View(view)
	if err != nil {
		t.Fatalf("%s: view read: %v", label, err)
	}
	rs, err := db.Query(goal)
	if err != nil {
		t.Fatalf("%s: oracle query: %v", label, err)
	}
	got, want := rowsKey(vr.Rows), rowsKey(rs.Rows)
	if len(got) != len(want) {
		t.Fatalf("%s: view has %d rows, recompute %d\nview  %v\nquery %v\n(mode %s)",
			label, len(got), len(want), got, want, vr.Mode)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: view %q vs recompute %q (mode %s)",
				label, i, got[i], want[i], vr.Mode)
		}
	}
	return vr
}

func closureDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	for _, r := range []string{
		"reach(X, Y) :- edge(X, Y)",
		"reach(X, Z) :- reach(X, Y), edge(Y, Z)",
	} {
		if err := db.DefineRule(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestMaterializeModes(t *testing.T) {
	db := closureDB(t)
	mustRelate := func(a, b string) {
		t.Helper()
		if err := db.Relate("edge", object.OID(a), object.OID(b)); err != nil {
			t.Fatal(err)
		}
	}
	mustRelate("a", "b")
	mustRelate("b", "c")

	vr, err := db.Materialize("closure", "?- reach(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if vr.Mode != ViewRecompute {
		t.Fatalf("initial build mode = %s, want recompute", vr.Mode)
	}
	if len(vr.Rows) != 3 { // ab ac bc
		t.Fatalf("initial rows = %d, want 3", len(vr.Rows))
	}

	// No mutations since: cached.
	vr, err = db.View("closure")
	if err != nil {
		t.Fatal(err)
	}
	if vr.Mode != ViewCached {
		t.Fatalf("idle read mode = %s, want cached", vr.Mode)
	}

	// A relevant fact mutation: incremental.
	mustRelate("c", "d")
	vr = assertViewMatchesQuery(t, db, "closure", "?- reach(X, Y)", "after insert")
	if vr.Mode != ViewIncremental {
		t.Fatalf("post-insert mode = %s, want incremental", vr.Mode)
	}
	if vr.AppliedInserts != 1 || vr.AppliedDeletes != 0 {
		t.Fatalf("applied = +%d/-%d, want +1/-0", vr.AppliedInserts, vr.AppliedDeletes)
	}

	// A deletion: incremental DRed.
	if ok, err := db.Unrelate("edge", "b", "c"); err != nil || !ok {
		t.Fatalf("unrelate: %v %v", ok, err)
	}
	vr = assertViewMatchesQuery(t, db, "closure", "?- reach(X, Y)", "after delete")
	if vr.Mode != ViewIncremental {
		t.Fatalf("post-delete mode = %s, want incremental", vr.Mode)
	}

	// An irrelevant fact (different predicate) keeps the cache warm.
	if err := db.Relate("likes", "a", "b"); err != nil {
		t.Fatal(err)
	}
	vr, err = db.View("closure")
	if err != nil {
		t.Fatal(err)
	}
	if vr.Mode != ViewCached {
		t.Fatalf("irrelevant-fact read mode = %s, want cached", vr.Mode)
	}

	// Add-then-delete of the same fact nets to nothing: cached.
	mustRelate("x", "y")
	if _, err := db.Unrelate("edge", "x", "y"); err != nil {
		t.Fatal(err)
	}
	vr, err = db.View("closure")
	if err != nil {
		t.Fatal(err)
	}
	if vr.Mode != ViewCached {
		t.Fatalf("net-zero batch mode = %s, want cached", vr.Mode)
	}

	// An object mutation invalidates wholesale.
	if err := db.PutEntity("e1", map[string]object.Value{"n": object.Num(1)}); err != nil {
		t.Fatal(err)
	}
	vr = assertViewMatchesQuery(t, db, "closure", "?- reach(X, Y)", "after object put")
	if vr.Mode != ViewRecompute {
		t.Fatalf("post-object mode = %s, want recompute", vr.Mode)
	}
}

func TestMaterializeDuplicateDropList(t *testing.T) {
	db := closureDB(t)
	if err := db.Relate("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("v", "?- reach(X, Y)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("v", "?- reach(X, Y)"); err == nil {
		t.Fatal("duplicate Materialize should fail")
	}
	if _, err := db.Materialize("", "?- reach(X, Y)"); err == nil {
		t.Fatal("empty view name should fail")
	}
	infos := db.Views()
	if len(infos) != 1 || infos[0].Name != "v" || !infos[0].Valid || infos[0].Rows != 1 {
		t.Fatalf("Views() = %+v", infos)
	}
	if !db.DropView("v") {
		t.Fatal("DropView should report existing view")
	}
	if db.DropView("v") {
		t.Fatal("second DropView should report missing view")
	}
	if _, err := db.View("v"); err == nil {
		t.Fatal("View after drop should fail")
	}
}

func TestViewRuleChangeInvalidates(t *testing.T) {
	db := closureDB(t)
	if err := db.Relate("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("v", "?- reach(X, Y)"); err != nil {
		t.Fatal(err)
	}
	// A rule the view can reach changes the fingerprint: the next read
	// must recompute and reflect it.
	if err := db.DefineRule("reach(X, Y) :- back(Y, X)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("back", "z", "a"); err != nil {
		t.Fatal(err)
	}
	vr := assertViewMatchesQuery(t, db, "v", "?- reach(X, Y)", "after rule change")
	if vr.Mode != ViewRecompute {
		t.Fatalf("post-rule-change mode = %s, want recompute", vr.Mode)
	}
	// An unreachable rule must NOT invalidate the cache.
	if err := db.DefineRule("unrelated(X) :- likes(X, Y)"); err != nil {
		t.Fatal(err)
	}
	vr2, err := db.View("v")
	if err != nil {
		t.Fatal(err)
	}
	if vr2.Mode != ViewCached {
		t.Fatalf("unreachable rule change mode = %s, want cached", vr2.Mode)
	}
}

func TestViewConjunctiveGoal(t *testing.T) {
	db := closureDB(t)
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if err := db.Relate("edge", object.OID(e[0]), object.OID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	goal := "?- reach(X, Y), edge(Y, Z)"
	if _, err := db.Materialize("conj", goal); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("edge", "d", "e"); err != nil {
		t.Fatal(err)
	}
	vr := assertViewMatchesQuery(t, db, "conj", goal, "conjunctive")
	if vr.Mode != ViewIncremental {
		t.Fatalf("conjunctive view mode = %s, want incremental", vr.Mode)
	}
}

// A view outside the maintainable fragment (here: an extensional goal
// with no rule slice) must still serve the cache on idle reads; only a
// relevant mutation forces the recompute.
func TestViewNonIncrementalStillCaches(t *testing.T) {
	db := New()
	if err := db.Relate("edge", object.OID("a"), object.OID("b")); err != nil {
		t.Fatal(err)
	}
	goal := "?- edge(X, Y)"
	vr, err := db.Materialize("base", goal)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Mode != ViewRecompute || len(vr.Rows) != 1 {
		t.Fatalf("initial read: mode %s rows %d, want recompute/1", vr.Mode, len(vr.Rows))
	}
	vr = assertViewMatchesQuery(t, db, "base", goal, "idle")
	if vr.Mode != ViewCached {
		t.Fatalf("idle read mode = %s, want cached", vr.Mode)
	}
	if err := db.Relate("edge", object.OID("b"), object.OID("c")); err != nil {
		t.Fatal(err)
	}
	vr = assertViewMatchesQuery(t, db, "base", goal, "after relevant mutation")
	if vr.Mode != ViewRecompute || len(vr.Rows) != 2 {
		t.Fatalf("post-mutation read: mode %s rows %d, want recompute/2", vr.Mode, len(vr.Rows))
	}
	if err := db.Relate("likes", object.OID("a"), object.OID("b")); err != nil {
		t.Fatal(err)
	}
	vr = assertViewMatchesQuery(t, db, "base", goal, "after irrelevant mutation")
	if vr.Mode != ViewCached {
		t.Fatalf("irrelevant mutation read mode = %s, want cached", vr.Mode)
	}
}

func TestViewCancellationLeavesViewIntact(t *testing.T) {
	db := closureDB(t)
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}} {
		if err := db.Relate("edge", object.OID(e[0]), object.OID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Materialize("v", "?- reach(X, Y)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("edge", "c", "d"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ViewContext(ctx, "v"); !datalog.IsCanceled(err) {
		t.Fatalf("canceled maintenance: got %v, want cancellation", err)
	}

	// The interrupted batch must not be lost: the next read applies it.
	vr := assertViewMatchesQuery(t, db, "v", "?- reach(X, Y)", "after cancellation")
	if vr.Mode != ViewIncremental {
		t.Fatalf("post-cancel mode = %s, want incremental (batch requeued)", vr.Mode)
	}
	if len(vr.Rows) != 6 {
		t.Fatalf("post-cancel rows = %d, want 6", len(vr.Rows))
	}

	// Cancellation on the initial build leaves the view registered but
	// invalid; the next read recovers.
	if _, err := db.MaterializeContext(ctx, "v2", "?- reach(X, Y)"); !datalog.IsCanceled(err) {
		t.Fatal("initial build under canceled ctx should fail with cancellation")
	}
	vr2, err := db.View("v2")
	if err != nil {
		t.Fatal(err)
	}
	if vr2.Mode != ViewRecompute || len(vr2.Rows) != 6 {
		t.Fatalf("recovered initial build: mode %s rows %d", vr2.Mode, len(vr2.Rows))
	}
}

// TestViewDifferentialOracle is the acceptance-criteria oracle: after
// every random interleaving of fact asserts/retracts (with occasional
// object writes), each materialized view equals a from-scratch query —
// serially and under parallel engine workers.
func TestViewDifferentialOracle(t *testing.T) {
	variants := []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"parallel", []Option{WithEngineOptions(datalog.Parallel(4))}},
	}
	for _, variant := range variants {
		t.Run(variant.name, func(t *testing.T) {
			incrementalRuns := 0
			for seed := int64(0); seed < 12; seed++ {
				r := rand.New(rand.NewSource(seed))
				db := New(variant.opts...)
				for _, rule := range []string{
					"reach(X, Y) :- edge(X, Y)",
					"reach(X, Z) :- reach(X, Y), edge(Y, Z)",
					"hop2(X, Z) :- edge(X, Y), edge(Y, Z)",
				} {
					if err := db.DefineRule(rule); err != nil {
						t.Fatal(err)
					}
				}
				nodes := make([]object.OID, 5+r.Intn(4))
				for i := range nodes {
					nodes[i] = object.OID(fmt.Sprintf("n%d", i))
				}
				present := make(map[[2]object.OID]bool)
				for i := 0; i < 6+r.Intn(6); i++ {
					e := [2]object.OID{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
					if !present[e] {
						if err := db.Relate("edge", e[0], e[1]); err != nil {
							t.Fatal(err)
						}
						present[e] = true
					}
				}

				goals := map[string]string{
					"closure": "?- reach(X, Y)",
					"hops":    "?- hop2(X, Z)",
				}
				for name, goal := range goals {
					if _, err := db.Materialize(name, goal); err != nil {
						t.Fatalf("seed %d: materialize %s: %v", seed, name, err)
					}
				}

				for step := 0; step < 15; step++ {
					// A burst of 1–4 mutations between reads, so folding
					// and multi-event batches are exercised.
					for m := 0; m < 1+r.Intn(4); m++ {
						switch k := r.Intn(10); {
						case k < 4 || len(present) == 0: // insert edge
							e := [2]object.OID{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
							if !present[e] {
								if err := db.Relate("edge", e[0], e[1]); err != nil {
									t.Fatal(err)
								}
								present[e] = true
							}
						case k < 8: // delete edge
							var keys [][2]object.OID
							for e := range present {
								keys = append(keys, e)
							}
							sort.Slice(keys, func(i, j int) bool {
								return keys[i][0]+keys[i][1] < keys[j][0]+keys[j][1]
							})
							e := keys[r.Intn(len(keys))]
							if _, err := db.Unrelate("edge", e[0], e[1]); err != nil {
								t.Fatal(err)
							}
							delete(present, e)
						case k < 9: // object write (forces recompute)
							err := db.PutEntity(object.OID(fmt.Sprintf("obj%d", r.Intn(4))),
								map[string]object.Value{"n": object.Num(float64(step))})
							if err != nil {
								t.Fatal(err)
							}
						default: // irrelevant fact (cache stays warm)
							if err := db.Relate("likes", nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]); err != nil {
								t.Fatal(err)
							}
						}
					}
					for name, goal := range goals {
						vr := assertViewMatchesQuery(t, db, name, goal,
							fmt.Sprintf("seed %d step %d view %s", seed, step, name))
						if vr.Mode == ViewIncremental {
							incrementalRuns++
						}
					}
				}
			}
			if incrementalRuns == 0 {
				t.Fatal("oracle never exercised the incremental path")
			}
		})
	}
}
