package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videodb/internal/datalog"
	"videodb/internal/object"
	"videodb/internal/parser"
	"videodb/internal/store"
)

// Continuous queries: a subscription is a standing VideoQL goal whose
// answer set is maintained against the live store changelog — the
// situation-monitoring counterpart of materialized views (views pull at
// read time; subscriptions push on change). Each subscription owns a
// pump goroutine that drains queued store events, brings the answer set
// up to date (incrementally via datalog.RunIncremental when the slice is
// in the maintainable fragment, full recompute otherwise — the exact
// mode logic of views.go), diffs the old and new visible answer sets,
// and emits +tuple/-tuple deltas into a bounded per-subscriber queue.
//
// Delivery contract:
//
//   - The first event is always a snapshot (SubSnapshot) carrying the
//     full answer set at subscribe time; deltas follow.
//   - Every event carries a per-subscription monotone sequence number;
//     a consumer that reconnects can discard events it already saw.
//   - A consumer slower than the delta rate hits the queue bound. Under
//     SubDropResync (the default) the backlog is dropped and replaced by
//     one fresh snapshot — the client replaces its accumulated state and
//     is exact again. Under SubDisconnect the subscription is closed with
//     ErrSlowConsumer.
//   - After a quiescent store, the accumulated answer set (snapshot plus
//     applied deltas) equals the one-shot query answer: maintenance runs
//     that raced concurrent writers taint the extension and force the
//     next flush to recompute, so the final flush is always exact.
//
// Windows: the goal may conjoin window(F, N) — F a goal variable, N a
// positive integer — restricting answers to those whose F binds to one
// of the last N generalized-interval objects ingested since the
// subscription started ("the last N frames of live ingest"). Objects
// present before the subscription age out after N live frames. Window
// atoms are stripped before evaluation; aging out emits a -tuple delta
// even though the tuple is still derivable.

// WindowPred is the reserved goal predicate selecting a sliding ingest
// window; it never reaches the evaluator.
const WindowPred = "window"

// maxWindowFrames bounds window widths: the frame clock shares the
// bounded event queue, so wider windows could silently age tuples early.
const maxWindowFrames = maxPendingEvents

// SubPolicy says what happens to a subscriber that cannot keep up with
// its delta stream.
type SubPolicy string

const (
	// SubDropResync (default): drop the queued backlog and replace it
	// with one fresh snapshot event; delivery continues.
	SubDropResync SubPolicy = "drop-resync"
	// SubDisconnect: close the subscription with ErrSlowConsumer.
	SubDisconnect SubPolicy = "disconnect"
)

// SubOptions configures a subscription.
type SubOptions struct {
	// QueueSize bounds the outbound event queue (default 256, min 1).
	QueueSize int
	// Policy is the slow-consumer policy (default SubDropResync).
	Policy SubPolicy
	// MaxPerSec rate-limits maintenance flushes (0 = unlimited). Store
	// events arriving faster coalesce into fewer, larger delta batches;
	// the queue never sees more than MaxPerSec flushes worth of deltas
	// per second.
	MaxPerSec float64
	// RefreshBudget bounds each maintenance pass (0 = unbounded). A pass
	// that exceeds it closes the subscription with the deadline error —
	// the per-delta analogue of the server's query timeout.
	RefreshBudget time.Duration
}

func (o SubOptions) withDefaults() SubOptions {
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
	if o.Policy == "" {
		o.Policy = SubDropResync
	}
	return o
}

// SubEventKind discriminates subscription events.
type SubEventKind uint8

const (
	// SubSnapshot carries the full current answer set in Rows; the
	// consumer replaces any accumulated state. Sent as the first event
	// and after a drop-resync.
	SubSnapshot SubEventKind = iota + 1
	// SubDelta carries one answer tuple in Row with Sign +1 (entered the
	// answer set) or -1 (left it).
	SubDelta
)

func (k SubEventKind) String() string {
	switch k {
	case SubSnapshot:
		return "snapshot"
	case SubDelta:
		return "delta"
	default:
		return "unknown"
	}
}

// SubEvent is one subscription notification.
type SubEvent struct {
	Seq  uint64
	Kind SubEventKind
	Sign int              // +1 / -1 for SubDelta
	Row  []object.Value   // SubDelta
	Rows [][]object.Value // SubSnapshot
}

// Errors surfaced by Subscription.Next after the stream ends.
var (
	ErrSubscriptionClosed = errors.New("core: subscription closed")
	ErrSlowConsumer       = errors.New("core: subscription dropped: consumer too slow (disconnect policy)")
)

// windowSpec is one parsed window(F, N) atom: the goal-column index F
// occupies and the width N in ingest frames.
type windowSpec struct {
	col int
	n   uint64
}

// Subscription is a registered standing query. One consumer at a time
// reads it with Next; Close is idempotent and safe from any goroutine.
type Subscription struct {
	id      uint64
	db      *DB
	goalSrc string
	goal    parser.Query // window atoms stripped
	rules   []datalog.Rule
	columns []string
	windows []windowSpec
	opts    SubOptions

	// Intake: store events queued under the store's write lock, drained
	// by the pump. Mirrors viewState's queue/overflow/recompute
	// machinery, except object puts are additionally retained (bounded)
	// as the frame clock when the goal is windowed.
	pendingMu  sync.Mutex
	pending    []store.Event
	reset      bool
	clockReset bool
	relevant   map[string]bool
	framePuts  []object.OID
	frameLost  uint64
	stopped    bool

	wake chan struct{} // capacity 1; tokens mean "pending work"

	// Pump-private maintenance state.
	valid       bool
	tainted     bool
	incremental bool
	fingerprint string
	ext         datalog.Extension
	fullRows    [][]object.Value
	cur         map[string][]object.Value // visible answers by row key
	frames      uint64
	stamps      map[object.OID]uint64

	//videolint:ignore ctxcheck pump lifetime context: created and cancelled by the subscription itself (Close), never borrowed from a request
	pumpCtx    context.Context
	pumpCancel context.CancelFunc
	done       chan struct{}

	// Outbound queue.
	qmu          sync.Mutex
	queue        []SubEvent
	nextSeq      uint64
	closed       bool
	closeErr     error
	consumerWake chan struct{}

	delivered atomic.Uint64
	dropped   atomic.Uint64
	resyncs   atomic.Uint64
	flushes   atomic.Uint64
	recomps   atomic.Uint64
	incrs     atomic.Uint64
}

// subRegistry tracks a DB's live subscriptions plus cumulative totals
// (which outlive individual subscriptions, for metrics).
type subRegistry struct {
	mu     sync.Mutex
	m      map[uint64]*Subscription
	nextID uint64

	deltasPlus  atomic.Uint64
	deltasMinus atomic.Uint64
	dropped     atomic.Uint64
	resyncs     atomic.Uint64
	opened      atomic.Uint64
}

// SubTotals is the cumulative subscription accounting for /metrics.
type SubTotals struct {
	Active      int    `json:"active"`
	Opened      uint64 `json:"opened"`
	DeltasPlus  uint64 `json:"deltasPlus"`
	DeltasMinus uint64 `json:"deltasMinus"`
	Dropped     uint64 `json:"dropped"`
	Resyncs     uint64 `json:"resyncs"`
}

// SubscriptionStats returns the DB's cumulative subscription totals.
func (db *DB) SubscriptionStats() SubTotals {
	db.subs.mu.Lock()
	active := len(db.subs.m)
	db.subs.mu.Unlock()
	return SubTotals{
		Active:      active,
		Opened:      db.subs.opened.Load(),
		DeltasPlus:  db.subs.deltasPlus.Load(),
		DeltasMinus: db.subs.deltasMinus.Load(),
		Dropped:     db.subs.dropped.Load(),
		Resyncs:     db.subs.resyncs.Load(),
	}
}

// SubInfo summarizes one live subscription.
type SubInfo struct {
	ID        uint64 `json:"id"`
	Goal      string `json:"goal"`
	Rules     int    `json:"rules"`
	Windowed  bool   `json:"windowed"`
	Queued    int    `json:"queued"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Resyncs   uint64 `json:"resyncs"`
	Flushes   uint64 `json:"flushes"`
}

// Subscriptions lists the live subscriptions, sorted by id.
func (db *DB) Subscriptions() []SubInfo {
	db.subs.mu.Lock()
	subs := make([]*Subscription, 0, len(db.subs.m))
	for _, s := range db.subs.m {
		subs = append(subs, s)
	}
	db.subs.mu.Unlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
	out := make([]SubInfo, len(subs))
	for i, s := range subs {
		s.qmu.Lock()
		queued := len(s.queue)
		s.qmu.Unlock()
		out[i] = SubInfo{
			ID:        s.id,
			Goal:      s.goalSrc,
			Rules:     len(s.rules),
			Windowed:  len(s.windows) > 0,
			Queued:    queued,
			Delivered: s.delivered.Load(),
			Dropped:   s.dropped.Load(),
			Resyncs:   s.resyncs.Load(),
			Flushes:   s.flushes.Load(),
		}
	}
	return out
}

// SubscribeQuery registers a standing query: the goal (plus optional
// subscription-local rules, in VideoQL syntax) is evaluated once and
// then maintained against every acknowledged store mutation, pushing
// answer deltas to the returned Subscription. The caller must Close it.
func (db *DB) SubscribeQuery(rules []string, goal string, opts SubOptions) (*Subscription, error) {
	q, err := parser.ParseQuery(goal)
	if err != nil {
		return nil, err
	}
	var parsed []datalog.Rule
	for _, src := range rules {
		r, err := parser.ParseRule(src)
		if err != nil {
			return nil, err
		}
		if mentionsWindow(r) {
			return nil, fmt.Errorf("core: window(...) is only allowed in the subscription goal, not in rules")
		}
		parsed = append(parsed, r)
	}
	stripped, windows, err := extractWindows(q)
	if err != nil {
		return nil, err
	}

	opts = opts.withDefaults()
	//videolint:ignore ctxcheck the subscription outlives the creating request by design; its pump stops via Close, not the caller's ctx
	ctx, cancel := context.WithCancel(context.Background())
	s := &Subscription{
		db:           db,
		goalSrc:      strings.TrimSpace(goal),
		goal:         stripped,
		rules:        parsed,
		columns:      goalColumns(stripped.Atom),
		windows:      windows,
		opts:         opts,
		wake:         make(chan struct{}, 1),
		consumerWake: make(chan struct{}, 1),
		pumpCtx:      ctx,
		pumpCancel:   cancel,
		done:         make(chan struct{}),
		cur:          make(map[string][]object.Value),
		stamps:       make(map[object.OID]uint64),
	}

	// Validate the assembled program now, so a bad goal or rule fails
	// the subscribe call instead of killing the pump later.
	prog, _ := db.subProgram(s)
	if _, err := datalog.NewEngine(db.st, prog, db.engOpts...); err != nil {
		cancel()
		return nil, err
	}

	// Register and attach the changelog feed before the initial compute,
	// so no acknowledged mutation slips between registration and the
	// snapshot (same ordering as Materialize).
	db.subFeed.Do(func() { db.st.Subscribe(db.onStoreEventSub) })
	db.subs.mu.Lock()
	if db.subs.m == nil {
		db.subs.m = make(map[uint64]*Subscription)
	}
	db.subs.nextID++
	s.id = db.subs.nextID
	db.subs.m[s.id] = s
	db.subs.mu.Unlock()
	db.subs.opened.Add(1)

	s.wake <- struct{}{} // prime the pump: first flush emits the snapshot
	go s.pump()
	return s, nil
}

// mentionsWindow reports whether the rule body uses the reserved window
// predicate.
func mentionsWindow(r datalog.Rule) bool {
	for _, l := range r.Body {
		if a, ok := l.(datalog.RelAtom); ok && a.Pred == WindowPred {
			return true
		}
	}
	return false
}

// extractWindows strips window(F, N) atoms from the goal's synthesized
// rule and maps each onto the goal column F occupies.
func extractWindows(q parser.Query) (parser.Query, []windowSpec, error) {
	if q.Rule == nil {
		if q.Atom.Pred == WindowPred {
			return q, nil, fmt.Errorf("core: window(F, N) must be conjoined with other goal literals")
		}
		return q, nil, nil
	}
	var kept []datalog.Literal
	type w struct {
		v string
		n uint64
	}
	var found []w
	for _, l := range q.Rule.Body {
		a, ok := l.(datalog.RelAtom)
		if !ok || a.Pred != WindowPred {
			kept = append(kept, l)
			continue
		}
		if len(a.Args) != 2 || !a.Args[0].IsVar() {
			return q, nil, fmt.Errorf("core: window wants window(Var, N), got %s", a)
		}
		nv, ok := a.Args[1].Value().AsNumber()
		if !ok || nv != float64(uint64(nv)) || nv < 1 {
			return q, nil, fmt.Errorf("core: window width must be a positive integer, got %s", a.Args[1])
		}
		if nv > maxWindowFrames {
			return q, nil, fmt.Errorf("core: window width %d exceeds the maximum %d", uint64(nv), maxWindowFrames)
		}
		found = append(found, w{v: a.Args[0].Name(), n: uint64(nv)})
	}
	if len(found) == 0 {
		return q, nil, nil
	}
	if len(kept) == 0 {
		return q, nil, fmt.Errorf("core: window(F, N) must be conjoined with other goal literals")
	}
	rule := datalog.NewRule(q.Rule.Head, kept...)
	rule.Pos = q.Rule.Pos
	if err := rule.Validate(); err != nil {
		return q, nil, fmt.Errorf("core: goal invalid after stripping window atoms (window variables must be bound elsewhere): %w", err)
	}
	stripped := q
	stripped.Rule = &rule
	cols := goalColumns(q.Atom)
	var specs []windowSpec
	for _, f := range found {
		col := -1
		for i, c := range cols {
			if c == f.v {
				col = i
				break
			}
		}
		if col < 0 {
			return q, nil, fmt.Errorf("core: window variable %s is not a goal variable", f.v)
		}
		specs = append(specs, windowSpec{col: col, n: f.n})
	}
	return stripped, specs, nil
}

// onStoreEventSub queues an acknowledged store mutation for every live
// subscription. Runs under the store's write lock: queue only.
func (db *DB) onStoreEventSub(ev store.Event) {
	db.subs.mu.Lock()
	defer db.subs.mu.Unlock()
	for _, s := range db.subs.m {
		s.enqueue(ev)
	}
}

func (s *Subscription) enqueue(ev store.Event) {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	if s.stopped {
		return
	}
	switch ev.Kind {
	case store.EventAddFact, store.EventDeleteFact:
		if !s.reset {
			if s.relevant != nil && !s.relevant[ev.Fact.Name] {
				return
			}
			if len(s.pending) >= maxPendingEvents {
				s.reset = true
				s.pending = nil
			} else {
				s.pending = append(s.pending, ev)
			}
		}
	case store.EventPutObject:
		// Object mutations invalidate wholesale (class atoms, attribute
		// filters), and interval puts additionally advance the windowed
		// frame clock — retain the oid so the pump can stamp it.
		s.reset = true
		s.pending = nil
		if len(s.windows) > 0 {
			if len(s.framePuts) >= maxPendingEvents {
				s.framePuts = s.framePuts[1:]
				s.frameLost++
			}
			s.framePuts = append(s.framePuts, ev.OID)
		}
	case store.EventDeleteObject:
		s.reset = true
		s.pending = nil
	default: // EventReset: the ingest history itself is gone
		s.reset = true
		s.clockReset = true
		s.pending = nil
		s.framePuts = nil
		s.frameLost = 0
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// subProgram assembles the subscription's reachable rule slice (database
// rules + taxonomy + subscription-local rules + the goal rule) and its
// fingerprint, under the definition lock so pumps never race DefineRule.
func (db *DB) subProgram(s *Subscription) (datalog.Program, string) {
	db.defMu.RLock()
	defer db.defMu.RUnlock()
	rules := append([]datalog.Rule(nil), db.rules...)
	rules = append(rules, db.taxonomy.Rules()...)
	rules = append(rules, s.rules...)
	if s.goal.Rule != nil {
		rules = append(rules, *s.goal.Rule)
	}
	prog := datalog.NewProgram(rules...).Reachable(s.goal.Atom.Pred)
	var fp strings.Builder
	for _, r := range prog.Rules {
		fp.WriteString(r.String())
		fp.WriteByte('\n')
	}
	fp.WriteString("?- ")
	fp.WriteString(s.goal.Atom.String())
	return prog, fp.String()
}

// pump is the subscription's maintenance goroutine: wait for work,
// respect the flush rate limit, flush.
func (s *Subscription) pump() {
	defer close(s.done)
	var lastFlush time.Time
	var minGap time.Duration
	if s.opts.MaxPerSec > 0 {
		minGap = time.Duration(float64(time.Second) / s.opts.MaxPerSec)
	}
	for {
		select {
		case <-s.pumpCtx.Done():
			return
		case <-s.wake:
		}
		if minGap > 0 && !lastFlush.IsZero() {
			if wait := minGap - time.Since(lastFlush); wait > 0 {
				select {
				case <-s.pumpCtx.Done():
					return
				case <-time.After(wait):
				}
			}
		}
		if !s.flush() {
			return
		}
		lastFlush = time.Now()
	}
}

// flush drains the intake queue, refreshes the answer set, and emits the
// resulting deltas. Returns false when the subscription should stop.
func (s *Subscription) flush() bool {
	// Drain.
	s.pendingMu.Lock()
	batch := s.pending
	s.pending = nil
	needReset := s.reset
	s.reset = false
	clockReset := s.clockReset
	s.clockReset = false
	puts := s.framePuts
	s.framePuts = nil
	lost := s.frameLost
	s.frameLost = 0
	s.pendingMu.Unlock()

	// Advance the frame clock: each ingested generalized interval is one
	// frame. Kind is resolved against the live store at drain time (the
	// intake path may not touch the store); an object already deleted
	// again simply never counted as a frame.
	if clockReset {
		s.frames = 0
		s.stamps = make(map[object.OID]uint64)
	}
	s.frames += lost
	for _, oid := range puts {
		if o := s.db.st.Get(oid); o != nil && o.Kind() == object.GenInterval {
			s.frames++
			s.stamps[oid] = s.frames
		}
	}
	s.pruneStamps()

	prog, fp := s.db.subProgram(s)
	full := !s.valid || needReset || s.tainted || fp != s.fingerprint
	s.tainted = false

	var ins, del datalog.FactDelta
	if !full {
		var nIns, nDel int
		ins, del, nIns, nDel = foldEvents(batch)
		if nIns == 0 && nDel == 0 {
			// Net no-op batch; only window aging can change visibility.
			return s.emitDiff(false)
		}
		if !s.incremental {
			full = true
		}
	}
	runCtx := s.pumpCtx
	cancel := func() {}
	if s.opts.RefreshBudget > 0 {
		runCtx, cancel = context.WithTimeout(s.pumpCtx, s.opts.RefreshBudget)
	}
	defer cancel()
	engOpts := s.db.engOpts
	engOpts = append(append([]datalog.Option(nil), engOpts...), datalog.WithContext(runCtx))

	var eng *datalog.Engine
	if !full {
		var err error
		eng, err = datalog.NewEngine(s.db.st, prog, engOpts...)
		if err != nil {
			return s.fail(err)
		}
		if err = eng.RunIncremental(s.ext, ins, del); err != nil {
			if datalog.IsCanceled(err) {
				return s.fail(err)
			}
			full = true // unexpected incremental failure: recompute
		} else {
			s.incrs.Add(1)
		}
	}
	if full {
		var err error
		eng, err = datalog.NewEngine(s.db.st, prog, engOpts...)
		if err != nil {
			return s.fail(err)
		}
		if err = eng.Run(); err != nil {
			return s.fail(err)
		}
		s.recomps.Add(1)
	}

	s.ext = eng.Extensions()
	rows, direct := s.ext[s.goal.Atom.Pred]
	if !direct || !distinctVarAtom(s.goal.Atom) {
		res, err := eng.Query(s.goal.Atom)
		if err != nil {
			return s.fail(err)
		}
		rows = make([][]object.Value, len(res))
		for i, r := range res {
			rows[i] = r.Values
		}
	}
	s.fullRows = rows
	s.fingerprint = fp
	s.incremental = prog.SupportsIncremental() && isIDBPred(prog, s.goal.Atom.Pred)
	s.valid = true

	// Publish the relevance filter, and detect racing writers: any event
	// queued while the engine ran means the store may have moved past
	// what this flush read, so the maintained extension cannot be
	// trusted as a prior — the next flush must recompute. The events
	// themselves are still queued and will trigger that flush.
	rel := relevantPreds(prog, s.goal.Atom.Pred)
	//videolint:ignore lockcheck deliberate two-phase flush: events racing the engine run set tainted and force the next flush to recompute
	s.pendingMu.Lock()
	s.relevant = rel
	if len(s.pending) > 0 || s.reset {
		s.tainted = true
	}
	s.pendingMu.Unlock()

	return s.emitDiff(false)
}

// pruneStamps drops frame stamps that have aged past every window.
func (s *Subscription) pruneStamps() {
	if len(s.stamps) == 0 {
		return
	}
	var maxW uint64
	for _, w := range s.windows {
		if w.n > maxW {
			maxW = w.n
		}
	}
	for oid, st := range s.stamps {
		if st+maxW <= s.frames {
			delete(s.stamps, oid)
		}
	}
}

// visibleRow applies the window filter: every windowed column must hold
// a reference to one of the last N ingested frames. Objects never
// stamped (present before the subscription, or re-loaded) carry stamp 0
// and stay visible until N live frames have arrived.
func (s *Subscription) visibleRow(r []object.Value) bool {
	for _, w := range s.windows {
		if w.col >= len(r) {
			return false
		}
		oid, ok := r[w.col].AsRef()
		if !ok {
			return false
		}
		if s.stamps[oid]+w.n <= s.frames {
			return false
		}
	}
	return true
}

// emitDiff recomputes the visible answer set, diffs it against the
// previous one, and pushes the resulting events. snapshotOnly forces a
// snapshot instead of deltas (initial emission). Returns false when the
// subscription closed.
func (s *Subscription) emitDiff(snapshotOnly bool) bool {
	s.flushes.Add(1)
	newVis := make(map[string][]object.Value, len(s.fullRows))
	for _, r := range s.fullRows {
		if s.visibleRow(r) {
			newVis[subRowKey(r)] = r
		}
	}

	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return false
	}
	first := s.nextSeq == 0
	overflowed := false
	if first || snapshotOnly {
		s.pushLocked(s.snapshotEvent(newVis))
	} else {
		// Deterministic emission order keeps tests and logs stable.
		var keys []string
		for k := range newVis {
			if _, ok := s.cur[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !s.pushDeltaLocked(SubEvent{Kind: SubDelta, Sign: +1, Row: newVis[k]}) {
				overflowed = true
				break
			}
		}
		if !overflowed {
			keys = keys[:0]
			for k := range s.cur {
				if _, ok := newVis[k]; !ok {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				if !s.pushDeltaLocked(SubEvent{Kind: SubDelta, Sign: -1, Row: s.cur[k]}) {
					overflowed = true
					break
				}
			}
		}
	}
	if overflowed && !s.closed {
		// Drop-resync: the backlog (and the rest of this diff) is
		// replaced by one fresh snapshot.
		s.dropQueueLocked()
		s.pushLocked(s.snapshotEvent(newVis))
		s.resyncs.Add(1)
		s.db.subs.resyncs.Add(1)
	}
	closed := s.closed
	s.qmu.Unlock()
	s.cur = newVis
	return !closed
}

func (s *Subscription) snapshotEvent(vis map[string][]object.Value) SubEvent {
	rows := make([][]object.Value, 0, len(vis))
	keys := make([]string, 0, len(vis))
	for k := range vis {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rows = append(rows, vis[k])
	}
	return SubEvent{Kind: SubSnapshot, Rows: rows}
}

// pushLocked appends unconditionally (snapshots always fit: the queue
// was just cleared, or this is the first event). Caller holds qmu.
func (s *Subscription) pushLocked(ev SubEvent) {
	s.nextSeq++
	ev.Seq = s.nextSeq
	s.queue = append(s.queue, ev)
	s.wakeConsumerLocked()
}

// pushDeltaLocked appends a delta, applying the slow-consumer policy on
// overflow. Returns false if the queue is full (drop-resync) — the
// caller stops diffing and resyncs — or the subscription was closed
// (disconnect). Caller holds qmu.
func (s *Subscription) pushDeltaLocked(ev SubEvent) bool {
	if len(s.queue) >= s.opts.QueueSize {
		if s.opts.Policy == SubDisconnect {
			s.dropQueueLocked()
			s.closeLocked(ErrSlowConsumer)
			return false
		}
		return false
	}
	s.nextSeq++
	ev.Seq = s.nextSeq
	s.queue = append(s.queue, ev)
	if ev.Sign >= 0 {
		s.db.subs.deltasPlus.Add(1)
	} else {
		s.db.subs.deltasMinus.Add(1)
	}
	s.wakeConsumerLocked()
	return true
}

// dropQueueLocked discards the queued backlog. Each call is one
// slow-consumer drop cycle and bumps the dropped counters exactly once —
// not once per discarded delta: the resync snapshot that follows makes
// the consumer exact again regardless of how many deltas were in the
// backlog, so per-delta counting would just scale the "drops" metric
// with the queue depth and the write churn, telling operators nothing
// about how often consumers actually fell behind. Caller holds qmu.
func (s *Subscription) dropQueueLocked() {
	s.dropped.Add(1)
	s.db.subs.dropped.Add(1)
	s.queue = s.queue[:0]
}

func (s *Subscription) wakeConsumerLocked() {
	select {
	case s.consumerWake <- struct{}{}:
	default:
	}
}

// fail closes the subscription with an evaluation error, unless the
// error is this pump's own shutdown.
func (s *Subscription) fail(err error) bool {
	if s.pumpCtx.Err() != nil {
		return false
	}
	s.closeWith(fmt.Errorf("core: subscription maintenance failed: %w", err))
	return false
}

// Next blocks until an event is available, the subscription is closed
// (queued events drain first; then the close error is returned), or ctx
// is done.
func (s *Subscription) Next(ctx context.Context) (SubEvent, error) {
	for {
		s.qmu.Lock()
		if len(s.queue) > 0 {
			ev := s.queue[0]
			s.queue = s.queue[1:]
			s.delivered.Add(1)
			s.qmu.Unlock()
			return ev, nil
		}
		if s.closed {
			err := s.closeErr
			s.qmu.Unlock()
			return SubEvent{}, err
		}
		s.qmu.Unlock()
		select {
		case <-ctx.Done():
			return SubEvent{}, ctx.Err()
		case <-s.consumerWake:
		}
	}
}

// SkipTo drops queued events with Seq <= seq — the Last-Event-ID resume
// path: a reconnecting consumer discards what it already saw.
func (s *Subscription) SkipTo(seq uint64) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	i := 0
	for i < len(s.queue) && s.queue[i].Seq <= seq {
		i++
	}
	if i > 0 {
		s.queue = append(s.queue[:0], s.queue[i:]...)
	}
}

// SubStats is a point-in-time snapshot of one subscription's counters.
type SubStats struct {
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	Resyncs     uint64 `json:"resyncs"`
	Flushes     uint64 `json:"flushes"`
	Recomputes  uint64 `json:"recomputes"`
	Incremental uint64 `json:"incremental"`
	Queued      int    `json:"queued"`
}

// Stats snapshots the subscription's counters.
func (s *Subscription) Stats() SubStats {
	s.qmu.Lock()
	queued := len(s.queue)
	s.qmu.Unlock()
	return SubStats{
		Delivered:   s.delivered.Load(),
		Dropped:     s.dropped.Load(),
		Resyncs:     s.resyncs.Load(),
		Flushes:     s.flushes.Load(),
		Recomputes:  s.recomps.Load(),
		Incremental: s.incrs.Load(),
		Queued:      queued,
	}
}

// Columns returns the goal's output columns (variable names in
// first-occurrence order), fixed for the subscription's lifetime.
func (s *Subscription) Columns() []string { return s.columns }

// ID returns the subscription's registry id (unique per DB).
func (s *Subscription) ID() uint64 { return s.id }

// Goal returns the original goal source, window atoms included.
func (s *Subscription) Goal() string { return s.goalSrc }

// Err returns the close error, or nil while the subscription is live.
func (s *Subscription) Err() error {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if !s.closed {
		return nil
	}
	return s.closeErr
}

// Close stops maintenance and delivery. Idempotent; queued events remain
// readable until drained, after which Next returns
// ErrSubscriptionClosed (or the failure that closed the subscription).
func (s *Subscription) Close() { s.closeWith(nil) }

func (s *Subscription) closeWith(err error) {
	s.qmu.Lock()
	s.closeLocked(err)
	s.qmu.Unlock()
	s.pumpCancel()
}

// closeLocked marks the subscription closed and unregisters it. Caller
// holds qmu.
func (s *Subscription) closeLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	if err == nil {
		err = ErrSubscriptionClosed
	}
	s.closeErr = err
	s.wakeConsumerLocked()
	s.pendingMu.Lock()
	s.stopped = true
	s.pending, s.framePuts = nil, nil
	s.pendingMu.Unlock()
	db := s.db
	go func() {
		// Unregister outside qmu: the event fan-out takes subs.mu then
		// pendingMu, never qmu, so this ordering only avoids surprises.
		db.subs.mu.Lock()
		delete(db.subs.m, s.id)
		db.subs.mu.Unlock()
		s.pumpCancel()
	}()
}

// Done is closed when the pump goroutine has exited.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// closeSubscriptions closes every live subscription and waits for their
// pumps — called from DB.Close so no maintenance races teardown.
func (db *DB) closeSubscriptions() {
	db.subs.mu.Lock()
	subs := make([]*Subscription, 0, len(db.subs.m))
	for _, s := range db.subs.m {
		subs = append(subs, s)
	}
	db.subs.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
	for _, s := range subs {
		<-s.done
	}
}

// subRowKey is the canonical identity of one answer tuple.
func subRowKey(r []object.Value) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(v.String())
	}
	return b.String()
}
