package core

import (
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// ropeSequence rebuilds the worked example as one video document (the
// paper's 7-tuple).
func ropeSequence(t *testing.T) (*DB, *Sequence) {
	t.Helper()
	db := buildRope(t)
	seq, err := db.CreateSequence("the_rope", map[string]object.Value{
		"title": object.Str("The Rope"), "director": object.Str("Alfred Hitchcock"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Attach("gi1"); err != nil {
		t.Fatal(err)
	}
	if err := seq.Attach("gi2"); err != nil {
		t.Fatal(err)
	}
	return db, seq
}

func TestSequenceTuple(t *testing.T) {
	_, seq := ropeSequence(t)
	v := seq.Tuple()

	// I: the two generalized intervals.
	if len(v.I) != 2 || v.I[0] != "gi1" || v.I[1] != "gi2" {
		t.Errorf("I = %v", v.I)
	}
	// O: the nine semantic objects (union of λ1).
	if len(v.O) != 9 || v.O[0] != "o1" || v.O[8] != "o9" {
		t.Errorf("O = %v", v.O)
	}
	// f: atomic values include names, roles, subjects.
	var sawDavid, sawMurder bool
	for _, val := range v.F {
		if s, ok := val.AsString(); ok {
			if s == "David" {
				sawDavid = true
			}
			if s == "murder" {
				sawMurder = true
			}
		}
	}
	if !sawDavid || !sawMurder {
		t.Errorf("F misses expected atoms: %v", v.F)
	}
	// R: the two in(o1, o4, gi) facts (part_of bookkeeping excluded).
	if len(v.R) != 2 {
		t.Errorf("R = %v", v.R)
	}
	// Σ and λ2 agree, indexed like I.
	if len(v.Sigma) != 2 {
		t.Fatalf("Sigma = %v", v.Sigma)
	}
	if !v.Sigma[0].Equal(interval.New(interval.Open(0, 30))) {
		t.Errorf("Sigma[0] = %v", v.Sigma[0])
	}
	if !v.Lambda2["gi2"].Equal(interval.New(interval.Open(40, 80))) {
		t.Errorf("Lambda2[gi2] = %v", v.Lambda2["gi2"])
	}
	// λ1 maps each interval to its entities.
	if got := v.Lambda1["gi1"]; len(got) != 4 {
		t.Errorf("Lambda1[gi1] = %v", got)
	}
	if got := v.Lambda1["gi2"]; len(got) != 9 {
		t.Errorf("Lambda1[gi2] = %v", got)
	}
}

func TestSequenceMembershipQueryable(t *testing.T) {
	db, _ := ropeSequence(t)
	// part_of facts participate in queries like any relation.
	rs, err := db.Query("?- part_of(G, the_rope).")
	if err != nil {
		t.Fatal(err)
	}
	oids, err := rs.OIDs()
	if err != nil || len(oids) != 2 {
		t.Errorf("part_of = %v, %v", oids, err)
	}
	// Cross-document isolation: a second sequence holds different intervals.
	seq2, err := db.CreateSequence("other_film", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq2.AddInterval("x1", interval.FromPairs(0, 5), nil); err != nil {
		t.Fatal(err)
	}
	if got := seq2.Intervals(); len(got) != 1 || got[0] != "x1" {
		t.Errorf("seq2 intervals = %v", got)
	}
	rs, err = db.Query("?- part_of(G, the_rope).")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Errorf("the_rope gained intervals: %v", rs.Rows)
	}
}

func TestSequenceErrors(t *testing.T) {
	db, seq := ropeSequence(t)
	if err := seq.Attach("o1"); err == nil {
		t.Error("attaching an entity should fail")
	}
	if err := seq.Attach("zzz"); err == nil {
		t.Error("attaching a missing object should fail")
	}
	if _, err := db.OpenSequence("gi1"); err == nil {
		t.Error("opening a non-sequence should fail")
	}
	if _, err := db.OpenSequence("zzz"); err == nil {
		t.Error("opening a missing sequence should fail")
	}
	re, err := db.OpenSequence("the_rope")
	if err != nil {
		t.Fatal(err)
	}
	if re.OID() != "the_rope" || len(re.Intervals()) != 2 {
		t.Errorf("reopened sequence = %v", re.Intervals())
	}
}
