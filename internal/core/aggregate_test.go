package core

import (
	"math"
	"strings"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

func scoreDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	data := []struct {
		oid   object.OID
		team  string
		score float64
	}{
		{"p1", "red", 10}, {"p2", "red", 20}, {"p3", "blue", 5}, {"p4", "blue", 7},
		{"p5", "blue", 7},
	}
	for _, d := range data {
		if err := db.PutEntity(d.oid, map[string]object.Value{
			"team":  object.Str(d.team),
			"score": object.Num(d.score),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAggregates(t *testing.T) {
	db := scoreDB(t)
	rs, err := db.Query("?- Object(O), O.team = T, O.score = S.")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Count() != 5 {
		t.Fatalf("Count = %d", rs.Count())
	}
	if sum, err := rs.Sum("S"); err != nil || sum != 49 {
		t.Errorf("Sum = %v, %v", sum, err)
	}
	if min, err := rs.Min("S"); err != nil || min != 5 {
		t.Errorf("Min = %v, %v", min, err)
	}
	if max, err := rs.Max("S"); err != nil || max != 20 {
		t.Errorf("Max = %v, %v", max, err)
	}
	groups, err := rs.GroupCount("T")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if k, _ := groups[0].Key.AsString(); k != "blue" || groups[0].Count != 3 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if k, _ := groups[1].Key.AsString(); k != "red" || groups[1].Count != 2 {
		t.Errorf("group 1 = %+v", groups[1])
	}

	// Errors.
	if _, err := rs.Sum("nope"); err == nil || !strings.Contains(err.Error(), "no column") {
		t.Errorf("Sum(nope) err = %v", err)
	}
	if _, err := rs.Sum("T"); err == nil || !strings.Contains(err.Error(), "non-numeric") {
		t.Errorf("Sum(T) err = %v", err)
	}

	// Empty result set.
	empty, err := db.Query(`?- Object(O), O.team = "green", O.score = S.`)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Count() != 0 {
		t.Fatal("expected no rows")
	}
	if s, _ := empty.Sum("S"); s != 0 {
		t.Errorf("empty Sum = %v", s)
	}
	if m, _ := empty.Min("S"); !math.IsInf(m, 1) {
		t.Errorf("empty Min = %v", m)
	}
	if m, _ := empty.Max("S"); !math.IsInf(m, -1) {
		t.Errorf("empty Max = %v", m)
	}
}

func TestTotalScreenTime(t *testing.T) {
	db := New()
	if err := db.PutInterval("g1", interval.FromPairs(0, 10, 20, 25), map[string]object.Value{
		object.AttrEntities: object.RefSet("a"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutInterval("g2", interval.FromPairs(100, 130), map[string]object.Value{
		object.AttrEntities: object.RefSet("a"),
	}); err != nil {
		t.Fatal(err)
	}
	db.PutEntity("a", nil)
	rs, err := db.Query("?- Interval(G), a in G.entities.")
	if err != nil {
		t.Fatal(err)
	}
	total, err := rs.TotalScreenTime("G")
	if err != nil {
		t.Fatal(err)
	}
	if total != 45 { // 15 + 30
		t.Errorf("TotalScreenTime = %v", total)
	}
	if _, err := rs.TotalScreenTime("missing"); err == nil {
		t.Error("expected column error")
	}
}

func TestQueryComparisonBindsColumns(t *testing.T) {
	// The query "O.team = T" binds T through the comparison? No — filters
	// do not bind. This documents the behaviour: such a query must be
	// written with the attribute projected through a rule or bound
	// otherwise; parsing succeeds but validation rejects the unbound
	// variable.
	db := scoreDB(t)
	_, err := db.Query("?- O.team = T.")
	if err == nil {
		t.Error("comparison-only query should be rejected as unsafe")
	}
}

func TestExplainThroughDB(t *testing.T) {
	db := scoreDB(t)
	if err := db.DefineRule("peer(X, Y) :- Object(X), Object(Y), X.team = Y.team, X != Y"); err != nil {
		t.Fatal(err)
	}
	out, err := db.Explain("?- peer(p1, Y), Y.score = S.")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stratum 0", "peer(X, Y)", "query_0", "assign S"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	if _, err := db.Explain("?- broken("); err == nil {
		t.Error("Explain should propagate parse errors")
	}
}

func TestWhyThroughDB(t *testing.T) {
	db := buildRope(t)
	if err := db.DefineRule(
		"contains(G1, G2) :- Interval(G1), Interval(G2), G2.duration => G1.duration"); err != nil {
		t.Fatal(err)
	}
	out, err := db.Why("contains(gi1, gi1).")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "contains(gi1, gi1)") || !strings.Contains(out, "gi1.duration => gi1.duration") {
		t.Errorf("Why output:\n%s", out)
	}
	if _, err := db.Why("contains(G1, G2)."); err == nil {
		t.Error("non-ground atom should be rejected")
	}
	if _, err := db.Why("Interval(G), contains(G, G)."); err == nil {
		t.Error("conjunctive query should be rejected")
	}
	if _, err := db.Why("broken("); err == nil {
		t.Error("parse error should propagate")
	}
}
