package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"videodb/internal/datalog"
	"videodb/internal/interval"
	"videodb/internal/object"
)

// subAccum replays a subscription's event stream into an answer set, the
// way a well-behaved client would: snapshots replace, deltas apply.
type subAccum struct {
	rows map[string][]object.Value
	seq  uint64
}

func newSubAccum() *subAccum { return &subAccum{rows: make(map[string][]object.Value)} }

func (a *subAccum) apply(t *testing.T, ev SubEvent) {
	t.Helper()
	if ev.Seq <= a.seq {
		t.Fatalf("sequence not monotone: %d after %d", ev.Seq, a.seq)
	}
	a.seq = ev.Seq
	switch ev.Kind {
	case SubSnapshot:
		a.rows = make(map[string][]object.Value, len(ev.Rows))
		for _, r := range ev.Rows {
			a.rows[subRowKey(r)] = r
		}
	case SubDelta:
		k := subRowKey(ev.Row)
		if ev.Sign > 0 {
			if _, dup := a.rows[k]; dup {
				t.Fatalf("+delta for already-present row %q", k)
			}
			a.rows[k] = ev.Row
		} else {
			if _, ok := a.rows[k]; !ok {
				t.Fatalf("-delta for absent row %q", k)
			}
			delete(a.rows, k)
		}
	default:
		t.Fatalf("unknown event kind %v", ev.Kind)
	}
}

func (a *subAccum) key() []string {
	out := make([]string, 0, len(a.rows))
	for k := range a.rows {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// drainUntil consumes subscription events until the accumulated answer
// set satisfies ok, failing the test after an overall deadline. It
// tolerates idle periods (maintenance is asynchronous).
func drainUntil(t *testing.T, s *Subscription, a *subAccum, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("subscription never converged; accumulated %v", a.key())
		}
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		ev, err := s.Next(ctx)
		cancel()
		if err != nil {
			if err == context.DeadlineExceeded {
				continue
			}
			t.Fatalf("Next: %v", err)
		}
		a.apply(t, ev)
	}
}

// drainToOracle waits until the accumulated answer set equals the
// one-shot query answer — the differential oracle of the acceptance
// criteria.
func drainToOracle(t *testing.T, db *DB, s *Subscription, a *subAccum, goal, label string) {
	t.Helper()
	var want []string
	drainUntil(t, s, a, func() bool {
		rs, err := db.Query(goal)
		if err != nil {
			t.Fatalf("%s: oracle query: %v", label, err)
		}
		want = rowsKey(rs.Rows)
		return sameKeys(a.key(), want)
	})
}

func TestSubscribeLifecycle(t *testing.T) {
	db := closureDB(t)
	defer db.Close()
	if err := db.Relate("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}

	sub, err := db.SubscribeQuery(nil, "?- reach(X, Y)", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Columns(); len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("Columns() = %v", got)
	}

	// First event: snapshot of the current answer set.
	ev, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != SubSnapshot || len(ev.Rows) != 1 || ev.Seq != 1 {
		t.Fatalf("first event = %+v, want snapshot of 1 row at seq 1", ev)
	}

	a := newSubAccum()
	a.apply(t, ev)

	// An insert shows up as +deltas (b->c closes to a->c too).
	if err := db.Relate("edge", "b", "c"); err != nil {
		t.Fatal(err)
	}
	drainToOracle(t, db, sub, a, "?- reach(X, Y)", "after insert")

	// A retraction shows up as -deltas (DRed path).
	if _, err := db.Unrelate("edge", "b", "c"); err != nil {
		t.Fatal(err)
	}
	drainToOracle(t, db, sub, a, "?- reach(X, Y)", "after delete")

	// Irrelevant facts produce no traffic and must not break the stream.
	if err := db.Relate("likes", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("edge", "c", "d"); err != nil {
		t.Fatal(err)
	}
	drainToOracle(t, db, sub, a, "?- reach(X, Y)", "after mixed batch")

	// Close: Next drains any queued events, then reports the close.
	sub.Close()
	for {
		ev, err := sub.Next(context.Background())
		if err != nil {
			if err != ErrSubscriptionClosed {
				t.Fatalf("Next after close: %v, want ErrSubscriptionClosed", err)
			}
			break
		}
		a.apply(t, ev)
	}
	if len(db.Subscriptions()) != 0 {
		// Unregistration is asynchronous; give it a moment.
		time.Sleep(50 * time.Millisecond)
		if got := db.Subscriptions(); len(got) != 0 {
			t.Fatalf("subscription still registered after Close: %v", got)
		}
	}
}

func TestSubscribeValidation(t *testing.T) {
	db := closureDB(t)
	defer db.Close()
	cases := []struct {
		rules []string
		goal  string
	}{
		{nil, "?- reach(X,"},                                // parse error
		{[]string{"p(X) :-"}, "?- reach(X, Y)"},             // rule parse error
		{nil, "?- window(F, 3)"},                            // window alone
		{nil, "?- reach(X, Y), window(X, 0)"},               // width < 1
		{nil, "?- reach(X, Y), window(X, 2.5)"},             // non-integer width
		{nil, "?- reach(X, Y), window(X, 99999)"},           // width over cap
		{nil, "?- window(F, 3), window(G, 3)"},              // windows only
		{[]string{"p(X) :- q(X), window(X, 3)"}, "?- p(X)"}, // window in a rule
	}
	for _, c := range cases {
		if _, err := db.SubscribeQuery(c.rules, c.goal, SubOptions{}); err == nil {
			t.Errorf("SubscribeQuery(%v, %q) should fail", c.rules, c.goal)
		}
	}
	if got := db.SubscriptionStats().Active; got != 0 {
		t.Fatalf("failed subscribes leaked: %d active", got)
	}
}

// Subscription-local rules extend the program without touching the DB's
// rule set.
func TestSubscribeLocalRules(t *testing.T) {
	db := New()
	defer db.Close()
	if err := db.Relate("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}
	sub, err := db.SubscribeQuery(
		[]string{"sym(X, Y) :- edge(X, Y)", "sym(X, Y) :- edge(Y, X)"},
		"?- sym(X, Y)", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	a := newSubAccum()
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 2 })
	if err := db.Relate("edge", "b", "c"); err != nil {
		t.Fatal(err)
	}
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 4 })
	// The local rules are invisible to one-shot queries.
	if rs, err := db.Query("?- sym(X, Y)"); err != nil || len(rs.Rows) != 0 {
		t.Fatalf("local rules leaked into DB: rows=%v err=%v", rs, err)
	}
}

// Overflowing the outbound queue under the default policy drops the
// backlog and resyncs with one snapshot; the client state still
// converges to the oracle.
func TestSubscribeOverflowResync(t *testing.T) {
	db := New()
	defer db.Close()
	sub, err := db.SubscribeQuery(nil, "?- edge(X, Y)", SubOptions{QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Consume the initial (empty) snapshot so the burst below must flow
	// as deltas, then stop consuming: pile up far more deltas than the
	// queue holds.
	a := newSubAccum()
	drainUntil(t, sub, a, func() bool { return a.seq > 0 })
	for i := 0; i < 200; i++ {
		if err := db.Relate("edge", object.OID(fmt.Sprintf("n%d", i)), "x"); err != nil {
			t.Fatal(err)
		}
	}

	drainUntil(t, sub, a, func() bool { return len(a.rows) == 200 })
	// Convergence with a 4-slot queue and 200 inserts is only possible
	// through at least one resync snapshot.
	st := sub.Stats()
	if st.Resyncs == 0 {
		t.Fatalf("expected at least one resync, stats %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatalf("expected drop cycles counted, stats %+v", st)
	}
	// Under drop-resync every drop cycle ends in exactly one resync
	// snapshot (both bumped in the same critical section), so the two
	// counters must agree — if dropped counted discarded deltas instead
	// of cycles it would race ahead of resyncs by the backlog size.
	if st.Dropped != st.Resyncs {
		t.Fatalf("dropped (%d) must count cycles and equal resyncs (%d); stats %+v",
			st.Dropped, st.Resyncs, st)
	}
	totals := db.SubscriptionStats()
	if totals.Resyncs == 0 || totals.Dropped == 0 {
		t.Fatalf("DB totals missed the resync: %+v", totals)
	}
	if totals.Dropped != totals.Resyncs {
		t.Fatalf("DB totals: dropped (%d) != resyncs (%d)", totals.Dropped, totals.Resyncs)
	}
}

// The dropped counter counts slow-consumer drop cycles, not discarded
// deltas: one overflow that throws away a whole backlog is one event to
// an operator, however deep the queue was. This drives emitDiff directly
// (white box) so the per-cycle count is deterministic — the end-to-end
// path coalesces flushes and cannot pin an exact number.
func TestSubscribeDroppedCountsCyclesNotDeltas(t *testing.T) {
	db := New()
	defer db.Close()
	s := &Subscription{
		db:           db,
		opts:         SubOptions{QueueSize: 2}.withDefaults(),
		consumerWake: make(chan struct{}, 1),
		cur:          make(map[string][]object.Value),
	}
	s.nextSeq = 1 // past the initial snapshot, so diffs flow as deltas

	rows := func(lo, n int) [][]object.Value {
		out := make([][]object.Value, n)
		for i := range out {
			out[i] = []object.Value{object.Str(fmt.Sprintf("row%03d", lo+i))}
		}
		return out
	}

	// Ten new rows against a 2-slot queue: two deltas fit, the third
	// overflows — one drop cycle, one resync snapshot.
	s.fullRows = rows(0, 10)
	if !s.emitDiff(false) {
		t.Fatal("emitDiff reported the subscription closed")
	}
	if got := s.dropped.Load(); got != 1 {
		t.Fatalf("dropped after first overflow = %d, want 1 (one cycle, not one per delta)", got)
	}
	if got := s.resyncs.Load(); got != 1 {
		t.Fatalf("resyncs after first overflow = %d, want 1", got)
	}

	// A second overflowing diff is a second cycle: the counter advances
	// by exactly one again, regardless of backlog contents.
	s.fullRows = rows(100, 10)
	if !s.emitDiff(false) {
		t.Fatal("emitDiff reported the subscription closed")
	}
	if got := s.dropped.Load(); got != 2 {
		t.Fatalf("dropped after second overflow = %d, want 2", got)
	}
	if got := db.subs.dropped.Load(); got != 2 {
		t.Fatalf("DB dropped total = %d, want 2", got)
	}
}

// Under the disconnect policy a slow consumer is cut off with
// ErrSlowConsumer instead of resynced.
func TestSubscribeDisconnectPolicy(t *testing.T) {
	db := New()
	defer db.Close()
	sub, err := db.SubscribeQuery(nil, "?- edge(X, Y)",
		SubOptions{QueueSize: 2, Policy: SubDisconnect})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Consume the initial snapshot, then stall while deltas pile up.
	if ev, err := sub.Next(context.Background()); err != nil || ev.Kind != SubSnapshot {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Relate("edge", object.OID(fmt.Sprintf("n%d", i)), "x"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never disconnected")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		_, err := sub.Next(ctx)
		cancel()
		if err == context.DeadlineExceeded {
			continue
		}
		if err != nil {
			if err != ErrSlowConsumer {
				t.Fatalf("Next: %v, want ErrSlowConsumer", err)
			}
			break
		}
	}
	if sub.Err() != ErrSlowConsumer {
		t.Fatalf("Err() = %v, want ErrSlowConsumer", sub.Err())
	}
}

// A store Load mid-delivery (EventReset) forces a recompute; the stream
// converges to the post-Load answer set.
func TestSubscribeStoreLoadReset(t *testing.T) {
	db := New()
	defer db.Close()
	if err := db.Relate("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "snap.json")
	if err := db.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	// Diverge from the snapshot, then subscribe.
	if err := db.Relate("edge", "b", "c"); err != nil {
		t.Fatal(err)
	}
	sub, err := db.SubscribeQuery(nil, "?- edge(X, Y)", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	a := newSubAccum()
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 2 })

	// Load replaces the whole store: the subscriber must converge to the
	// snapshot contents (one edge), not the union.
	if err := db.LoadFile(snap); err != nil {
		t.Fatal(err)
	}
	drainToOracle(t, db, sub, a, "?- edge(X, Y)", "after Load")
	if len(a.rows) != 1 {
		t.Fatalf("post-Load answer set = %v, want the snapshot's single edge", a.key())
	}
}

// SkipTo models Last-Event-ID resume: queued events at or below the
// acknowledged sequence number are discarded.
func TestSubscribeSkipTo(t *testing.T) {
	db := New()
	defer db.Close()
	sub, err := db.SubscribeQuery(nil, "?- edge(X, Y)", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ev, err := sub.Next(context.Background())
	if err != nil || ev.Kind != SubSnapshot {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Relate("edge", object.OID(fmt.Sprintf("n%d", i)), "x"); err != nil {
			t.Fatal(err)
		}
	}
	a := newSubAccum()
	a.apply(t, ev)
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 5 })
	last := a.seq

	// More deltas queue up; skipping to the latest seq we saw must not
	// lose the new ones, and skipping past everything empties the queue.
	if err := db.Relate("edge", "y", "x"); err != nil {
		t.Fatal(err)
	}
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 6 })
	sub.SkipTo(last) // already consumed; must be a no-op
	if err := db.Relate("edge", "z", "x"); err != nil {
		t.Fatal(err)
	}
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 7 })
}

// window(F, N): answers leave the visible set once N newer intervals
// have been ingested, even though they are still derivable.
func TestSubscribeWindowAging(t *testing.T) {
	db := New()
	defer db.Close()
	if err := db.DefineRule("shot(G) :- Interval(G), appears(G, X)"); err != nil {
		t.Fatal(err)
	}
	sub, err := db.SubscribeQuery(nil, "?- shot(G), window(G, 2)", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	a := newSubAccum()
	drainUntil(t, sub, a, func() bool { return a.seq > 0 })

	put := func(i int) {
		t.Helper()
		oid := object.OID(fmt.Sprintf("g%d", i))
		if err := db.PutInterval(oid, interval.FromPairs(float64(i*10), float64(i*10+5)), nil); err != nil {
			t.Fatal(err)
		}
		if err := db.Relate("appears", oid, "obj"); err != nil {
			t.Fatal(err)
		}
	}
	put(1)
	drainUntil(t, sub, a, func() bool { return sameKeys(a.key(), []string{"g1"}) })
	put(2)
	drainUntil(t, sub, a, func() bool { return sameKeys(a.key(), []string{"g1", "g2"}) })
	// g3 is the third frame: g1 ages out of window(G, 2).
	put(3)
	drainUntil(t, sub, a, func() bool { return sameKeys(a.key(), []string{"g2", "g3"}) })
	put(4)
	drainUntil(t, sub, a, func() bool { return sameKeys(a.key(), []string{"g3", "g4"}) })

	// The one-shot query (no window) still sees everything.
	rs, err := db.Query("?- shot(G)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Fatalf("one-shot sees %d shots, want 4", len(rs.Rows))
	}
}

// TestSubscribeDifferentialOracle is the acceptance-criteria oracle for
// subscriptions: random mutation bursts from concurrent writers, with
// the engine running Parallel(4); at quiescence the accumulated stream
// equals the one-shot query answer.
func TestSubscribeDifferentialOracle(t *testing.T) {
	variants := []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"parallel", []Option{WithEngineOptions(datalog.Parallel(4))}},
	}
	for _, variant := range variants {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				db := New(variant.opts...)
				for _, rule := range []string{
					"reach(X, Y) :- edge(X, Y)",
					"reach(X, Z) :- reach(X, Y), edge(Y, Z)",
				} {
					if err := db.DefineRule(rule); err != nil {
						t.Fatal(err)
					}
				}
				sub, err := db.SubscribeQuery(nil, "?- reach(X, Y)", SubOptions{QueueSize: 64})
				if err != nil {
					t.Fatal(err)
				}

				// 4 writers mutate concurrently — with each other, with the
				// pump, and with the consumer below.
				var wg sync.WaitGroup
				for w := 0; w < 4; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						r := rand.New(rand.NewSource(seed*31 + int64(w)))
						for i := 0; i < 40; i++ {
							a := object.OID(fmt.Sprintf("n%d", r.Intn(6)))
							b := object.OID(fmt.Sprintf("n%d", r.Intn(6)))
							if r.Intn(3) == 0 {
								if _, err := db.Unrelate("edge", a, b); err != nil {
									t.Error(err)
									return
								}
							} else if err := db.Relate("edge", a, b); err != nil {
								t.Error(err)
								return
							}
						}
					}()
				}
				acc := newSubAccum()
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				// Consume while the writers run (events may resync under
				// pressure; the accumulator handles both shapes).
				consuming := true
				for consuming {
					select {
					case <-done:
						consuming = false
					default:
						ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
						ev, err := sub.Next(ctx)
						cancel()
						if err == nil {
							acc.apply(t, ev)
						}
					}
				}
				// Quiescent store: the stream must converge exactly.
				drainToOracle(t, db, sub, acc,
					"?- reach(X, Y)", fmt.Sprintf("seed %d", seed))
				sub.Close()
				db.Close()
			}
		})
	}
}

// Rule and taxonomy changes re-fingerprint the standing program: the
// subscription picks them up without re-subscribing.
func TestSubscribeRuleAndClassChange(t *testing.T) {
	db := New()
	defer db.Close()
	if err := db.DefineRule("reach(X, Y) :- edge(X, Y)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("edge", "a", "b"); err != nil {
		t.Fatal(err)
	}
	sub, err := db.SubscribeQuery(nil, "?- reach(X, Y)", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	a := newSubAccum()
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 1 })

	// A new reachable rule changes the answer set. The fingerprint check
	// happens on the next flush, which needs a store event to trigger —
	// exactly how rule changes surface in live ingest.
	if err := db.DefineRule("reach(X, Z) :- reach(X, Y), edge(Y, Z)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Relate("edge", "b", "c"); err != nil {
		t.Fatal(err)
	}
	drainToOracle(t, db, sub, a, "?- reach(X, Y)", "after rule change")
	if len(a.rows) != 3 {
		t.Fatalf("accumulated %v, want 3 rows", a.key())
	}
}

// DB.Close stops all pumps and closes their streams.
func TestSubscribeDBCloseStopsPumps(t *testing.T) {
	db := New()
	sub, err := db.SubscribeQuery(nil, "?- edge(X, Y)", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("pump did not stop on DB.Close")
	}
	for {
		_, err := sub.Next(context.Background())
		if err != nil {
			if err != ErrSubscriptionClosed {
				t.Fatalf("Next after DB.Close: %v", err)
			}
			break
		}
	}
}

// The flush rate limit coalesces bursts: with MaxPerSec=4 a burst of
// rapid mutations arrives in far fewer flushes than mutations.
func TestSubscribeRateLimitCoalesces(t *testing.T) {
	db := New()
	defer db.Close()
	sub, err := db.SubscribeQuery(nil, "?- edge(X, Y)",
		SubOptions{MaxPerSec: 4, QueueSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	a := newSubAccum()
	drainUntil(t, sub, a, func() bool { return a.seq > 0 })
	for i := 0; i < 50; i++ {
		if err := db.Relate("edge", object.OID(fmt.Sprintf("n%d", i)), "x"); err != nil {
			t.Fatal(err)
		}
	}
	drainUntil(t, sub, a, func() bool { return len(a.rows) == 50 })
	if got := sub.Stats().Flushes; got > 30 {
		t.Fatalf("rate-limited burst used %d flushes for 50 mutations, want far fewer", got)
	}
}

// Goal source and listing plumbing.
func TestSubscriptionsListing(t *testing.T) {
	db := New()
	defer db.Close()
	goal := "?- edge(X, Y), window(X, 8)"
	sub, err := db.SubscribeQuery(nil, goal, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	infos := db.Subscriptions()
	if len(infos) != 1 {
		t.Fatalf("Subscriptions() = %v", infos)
	}
	if infos[0].ID != sub.ID() || infos[0].Goal != strings.TrimSpace(goal) || !infos[0].Windowed {
		t.Fatalf("listing = %+v", infos[0])
	}
	if os.Getenv("VIDEODB_TEST_BACKEND") == "segment" {
		t.Log("listing path exercised on segment-config process")
	}
}
