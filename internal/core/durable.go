package core

import (
	"context"
	"fmt"

	"videodb/internal/datalog"
	"videodb/internal/object"
	"videodb/internal/parser"
	"videodb/internal/store"
)

// Open opens (or creates) a durable video database in dir: mutations are
// written to a write-ahead log and recovered on the next Open; call
// Checkpoint to compact the log into a snapshot and Close before exiting.
// Rules are program source, not data — re-add them (or reload scripts)
// after opening.
func Open(dir string, opts ...store.DurableOption) (*DB, error) {
	st, err := store.OpenDurable(dir, opts...)
	if err != nil {
		return nil, err
	}
	return New(WithStore(st)), nil
}

// Checkpoint compacts the durable database's log into a snapshot.
func (db *DB) Checkpoint() error { return db.st.Checkpoint() }

// Close flushes and closes the durable database (no-op for in-memory
// databases).
func (db *DB) Close() error { return db.st.Close() }

// Explain renders the evaluation strategy for the database's current
// rules (plus the query's synthesized rule, if any) — strata, body
// orders, index usage.
func (db *DB) Explain(query string) (string, error) {
	return db.ExplainContext(context.Background(), query)
}

// ExplainContext is Explain under a context. Explanation itself does not
// run the fixpoint, but the context keeps the API uniform with
// QueryContext and lets future plan-time work observe cancellation.
func (db *DB) ExplainContext(ctx context.Context, query string) (string, error) {
	eng, _, err := db.engineFor(ctx, query)
	if err != nil {
		return "", err
	}
	return eng.Explain(), nil
}

// Why evaluates the program with provenance tracing and renders the
// derivation tree of a ground atom, e.g. Why(`contains(gi1, gi3)`): the
// answer to "why is this in the fixpoint?". The atom must be a single
// ground relational atom.
func (db *DB) Why(atomSrc string) (string, error) {
	q, err := parser.ParseQuery(atomSrc)
	if err != nil {
		return "", err
	}
	if q.Rule != nil {
		return "", fmt.Errorf("core: Why needs a single ground atom, got a conjunctive query")
	}
	args := make([]object.Value, len(q.Atom.Args))
	for i, t := range q.Atom.Args {
		if t.IsVar() || t.IsConcat() {
			return "", fmt.Errorf("core: Why needs a ground atom (argument %d is %s)", i+1, t)
		}
		args[i] = t.Value()
	}
	rules := append([]datalog.Rule(nil), db.rules...)
	rules = append(rules, db.taxonomy.Rules()...)
	prog := datalog.NewProgram(rules...)
	if !db.noPruning {
		prog = prog.Reachable(q.Atom.Pred)
	}
	opts := append([]datalog.Option(nil), db.engOpts...)
	opts = append(opts, datalog.TraceProvenance())
	eng, err := datalog.NewEngine(db.st, prog, opts...)
	if err != nil {
		return "", err
	}
	return eng.Why(q.Atom.Pred, args...)
}
