package core

import (
	"context"
	"fmt"

	"videodb/internal/datalog"
	"videodb/internal/object"
	"videodb/internal/parser"
	"videodb/internal/store"
	"videodb/internal/store/segment"
)

// Open opens (or creates) a durable video database in dir: mutations are
// written to a write-ahead log and recovered on the next Open; call
// Checkpoint to compact the log into a snapshot and Close before exiting.
// Rules are program source, not data — re-add them (or reload scripts)
// after opening.
func Open(dir string, opts ...store.DurableOption) (*DB, error) {
	st, err := store.OpenDurable(dir, opts...)
	if err != nil {
		return nil, err
	}
	return New(WithStore(st)), nil
}

// OpenSegment opens (or creates) a video database on the persistent
// segment backend in dir: facts live in immutable segment files served
// through a byte-budgeted block cache (the corpus does not need to fit
// in memory), recovery reads the manifest plus a short tail log instead
// of replaying a full WAL, and Checkpoint/Close flush the memtable into
// a new segment. Rules are program source, not data — re-add them after
// opening.
func OpenSegment(dir string, opts ...segment.Option) (*DB, error) {
	b, err := segment.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	st, err := store.OpenBackend(b)
	if err != nil {
		b.Close()
		return nil, err
	}
	return New(WithStore(st)), nil
}

// Checkpoint compacts the durable database's log into a snapshot (on the
// segment backend: flushes the memtable and truncates the tail log).
func (db *DB) Checkpoint() error { return db.st.Checkpoint() }

// Close stops all live subscriptions, flushes and closes the database's
// durable state (a no-op for in-memory stores), and releases the DB's
// pin on the value-interner epoch; once every DB in the process is
// closed the intern table is reclaimed. Safe to call more than once.
func (db *DB) Close() error {
	db.closeSubscriptions()
	err := db.st.Close()
	db.closeOnce.Do(datalog.ReleaseInterner)
	return err
}

// Explain renders the evaluation strategy for the database's current
// rules (plus the query's synthesized rule, if any) — strata, body
// orders, index usage.
func (db *DB) Explain(query string) (string, error) {
	return db.ExplainContext(context.Background(), query)
}

// ExplainContext is Explain under a context. Explanation itself does not
// run the fixpoint, but the context keeps the API uniform with
// QueryContext and lets future plan-time work observe cancellation.
func (db *DB) ExplainContext(ctx context.Context, query string) (string, error) {
	release, err := db.enter(ctx)
	if err != nil {
		return "", err
	}
	defer release()
	eng, _, err := db.engineFor(ctx, query)
	if err != nil {
		return "", err
	}
	return eng.Explain(), nil
}

// Why evaluates the program with provenance tracing and renders the
// derivation tree of a ground atom, e.g. Why(`contains(gi1, gi3)`): the
// answer to "why is this in the fixpoint?". The atom must be a single
// ground relational atom.
func (db *DB) Why(atomSrc string) (string, error) {
	q, err := parser.ParseQuery(atomSrc)
	if err != nil {
		return "", err
	}
	if q.Rule != nil {
		return "", fmt.Errorf("core: Why needs a single ground atom, got a conjunctive query")
	}
	args := make([]object.Value, len(q.Atom.Args))
	for i, t := range q.Atom.Args {
		if t.IsVar() || t.IsConcat() {
			return "", fmt.Errorf("core: Why needs a ground atom (argument %d is %s)", i+1, t)
		}
		args[i] = t.Value()
	}
	rules := append([]datalog.Rule(nil), db.rules...)
	rules = append(rules, db.taxonomy.Rules()...)
	prog := datalog.NewProgram(rules...)
	if !db.noPruning {
		prog = prog.Reachable(q.Atom.Pred)
	}
	opts := append([]datalog.Option(nil), db.engOpts...)
	opts = append(opts, datalog.TraceProvenance())
	eng, err := datalog.NewEngine(db.st, prog, opts...)
	if err != nil {
		return "", err
	}
	return eng.Why(q.Atom.Pred, args...)
}
