package core

import (
	"container/list"
	"math/bits"
	"sync"

	"videodb/internal/datalog"
)

// Cross-query plan cache: compiling a query — assembling the program
// from the DB's rules, the taxonomy fragment, and the query's
// synthesized rule, pruning it to the goal, validating, stratifying,
// and building every rule's execution plan — costs more than evaluating
// many small queries. Repeated queries (dashboards, views, the server's
// hot endpoints) pay it every time, so the DB keeps an LRU of
// datalog.CompiledProgram artifacts keyed by the query shape and the
// versions of everything the compilation read:
//
//	(goal predicate, synthesized rule, pruning flag)
//	  × rule-program version   (bumped on DefineRule/AddRule/LoadScript)
//	  × taxonomy version       (bumped on DefineClass)
//	  × store schema version   (bumped when a relation appears/disappears)
//
// A version bump changes the key, so stale entries are never served;
// they age out of the LRU. Entries are immutable and shared: a hit
// stamps out a fresh engine with datalog.NewEngineWith, skipping
// parse-free compilation entirely.

// defaultPlanCacheCap bounds the number of cached compiled programs.
const defaultPlanCacheCap = 128

// PlanCacheStats reports the cache's lifetime traffic.
type PlanCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

type planKey struct {
	goal      string // goal predicate the program was pruned to
	ruleSrc   string // rendered synthesized query rule ("" if none)
	noPruning bool
	progVer   uint64
	taxVer    uint64
	schemaVer uint64
	sizeClass int // log2 bucket of the total fact count (see planKeyFor)
}

type planEntry struct {
	key planKey
	cp  *datalog.CompiledProgram
}

type planCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	entries   map[planKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[planKey]*list.Element),
	}
}

// get returns the cached compiled program for the key, promoting it to
// most-recently-used, or nil on a miss.
func (c *planCache) get(k planKey) *datalog.CompiledProgram {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*planEntry).cp
	}
	c.misses++
	return nil
}

// put inserts the compiled program, evicting the least recently used
// entry beyond capacity. Racing puts for the same key keep the first.
func (c *planCache) put(k planKey, cp *datalog.CompiledProgram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	c.entries[k] = c.ll.PushFront(&planEntry{key: k, cp: cp})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*planEntry).key)
		c.evictions++
	}
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
	}
}

// WithoutQueryPlanCache disables the cross-query plan cache: every query
// re-assembles and re-compiles its program, as the seed did. Ablation
// knob for benchmarking the cache's contribution.
func WithoutQueryPlanCache() Option { return func(db *DB) { db.plans = nil } }

// PlanCacheStats reports the DB's plan-cache traffic; the zero value is
// returned when the cache is disabled.
func (db *DB) PlanCacheStats() PlanCacheStats {
	if db.plans == nil {
		return PlanCacheStats{}
	}
	return db.plans.stats()
}

// planKeyFor derives the cache key for a query against the DB's current
// rule, taxonomy, and store-schema versions, plus a coarse cardinality
// bucket. The schema version only moves when a relation appears or
// disappears, so a plan costed against a near-empty database used to be
// served forever even after a bulk load grew the same relations by
// orders of magnitude; bucketing the total fact count by its bit length
// forces a replan whenever the corpus crosses a power of two, while
// steady-state workloads (same bucket) keep hitting.
func (db *DB) planKeyFor(goal, ruleSrc string) planKey {
	return planKey{
		goal:      goal,
		ruleSrc:   ruleSrc,
		noPruning: db.noPruning,
		progVer:   db.progVer,
		taxVer:    db.taxonomy.Version(),
		schemaVer: db.st.SchemaVersion(),
		sizeClass: bits.Len(uint(db.st.TotalFacts())),
	}
}

// compiledProgramFor returns the compiled program a query needs,
// consulting the plan cache when enabled.
func (db *DB) compiledProgramFor(goal string, qRule *datalog.Rule) (*datalog.CompiledProgram, error) {
	ruleSrc := ""
	if qRule != nil {
		ruleSrc = qRule.String()
	}
	var key planKey
	if db.plans != nil {
		key = db.planKeyFor(goal, ruleSrc)
		if cp := db.plans.get(key); cp != nil {
			return cp, nil
		}
	}
	rules := append([]datalog.Rule(nil), db.rules...)
	rules = append(rules, db.taxonomy.Rules()...)
	if qRule != nil {
		rules = append(rules, *qRule)
	}
	prog := datalog.NewProgram(rules...)
	if !db.noPruning {
		prog = prog.Reachable(goal)
	}
	cp, err := datalog.CompileProgram(prog)
	if err != nil {
		return nil, err
	}
	if db.plans != nil {
		db.plans.put(key, cp)
	}
	return cp, nil
}
