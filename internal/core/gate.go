package core

import "context"

// Gate is an admission hook invoked at the top of every evaluation
// entrypoint (QueryContext and friends, LoadScriptContext,
// ExplainContext, MaterializeContext, ViewContext) before any parsing or
// engine work. It either admits the evaluation — returning a release
// function the entrypoint calls when the evaluation finishes — or
// refuses it with an error, which the entrypoint returns verbatim.
//
// The gate is how an embedder layers load control onto the per-query
// cancellation/budget machinery: the budgets bound how much one admitted
// evaluation may cost, the gate bounds how many evaluations run at all.
// internal/server implements its tenant-aware admission controller at
// the HTTP layer (where the tenant identity and the 429 wire contract
// live, and where a rejection can skip request parsing entirely); the
// DB-level gate serves embedders that drive core directly — cmd/bench,
// scripts, an in-process loadgen — with exactly the same semantics.
//
// A Gate must not call back into the DB's evaluation entrypoints: the
// entrypoints are not re-entrant through the gate, so a gate that
// queries would admit through itself recursively. Internal maintenance
// work (materialized-view refresh batches, subscription pumps) runs
// below the gate deliberately — it executes on behalf of already-
// admitted work or a standing registration, and gating it would let a
// saturated gate deadlock maintenance.
type Gate func(ctx context.Context) (release func(), err error)

// WithGate installs an admission gate on the DB's evaluation
// entrypoints. A nil gate (the default) admits everything at zero cost.
func WithGate(g Gate) Option { return func(db *DB) { db.gate = g } }

// releaseNothing is the no-op release shared by all ungated admissions,
// so the gateless hot path allocates nothing.
func releaseNothing() {}

// enter applies the DB's admission gate, if any. Callers must invoke the
// returned release exactly once when err is nil; release is never nil.
func (db *DB) enter(ctx context.Context) (func(), error) {
	if db.gate == nil {
		return releaseNothing, nil
	}
	release, err := db.gate(ctx)
	if err != nil {
		return nil, err
	}
	if release == nil {
		release = releaseNothing
	}
	return release, nil
}
