package core

import (
	"fmt"
	"sort"

	"videodb/internal/constraint"
	"videodb/internal/datalog"
	"videodb/internal/object"
)

// Taxonomy is the classification extension sketched in the paper's
// conclusion (abstraction mechanisms: classification/generalization): a
// class hierarchy over semantic objects. Objects declare their class in
// the "class" attribute; the taxonomy contributes instance_of rules to
// every query, so class membership — including inherited membership — is
// queryable from VideoQL:
//
//	?- instance_of(O, "person").
type Taxonomy struct {
	parent  map[string]string
	version uint64 // bumped on every Define; plan caches key on it
}

// ClassAttr is the attribute carrying an object's declared class.
const ClassAttr = "class"

// InstanceOfPred is the derived predicate contributed by the taxonomy.
const InstanceOfPred = "instance_of"

// NewTaxonomy creates an empty taxonomy.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{parent: make(map[string]string)}
}

// Define declares a class with an optional parent (empty for a root).
// Cycles are rejected.
func (t *Taxonomy) Define(class, parent string) error {
	if class == "" {
		return fmt.Errorf("core: class name must be non-empty")
	}
	if parent != "" {
		for p := parent; p != ""; p = t.parent[p] {
			if p == class {
				return fmt.Errorf("core: class cycle: %s would be its own ancestor", class)
			}
		}
	}
	t.parent[class] = parent
	t.version++
	return nil
}

// Version returns a counter that increases on every Define. Cached query
// plans embed the taxonomy's rules, so they key on it.
func (t *Taxonomy) Version() uint64 { return t.version }

// IsA reports whether class equals or descends from ancestor.
func (t *Taxonomy) IsA(class, ancestor string) bool {
	for c := class; c != ""; c = t.parent[c] {
		if c == ancestor {
			return true
		}
		if _, ok := t.parent[c]; !ok {
			return false
		}
	}
	return false
}

// Classes returns the declared class names, sorted.
func (t *Taxonomy) Classes() []string {
	out := make([]string, 0, len(t.parent))
	for c := range t.parent {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Rules generates the instance_of program fragment: direct membership
// from the class attribute, plus propagation to ancestors.
func (t *Taxonomy) Rules() []datalog.Rule {
	var rules []datalog.Rule
	for _, c := range t.Classes() {
		cval := datalog.Const(object.Str(c))
		rules = append(rules, datalog.NewRule(
			datalog.Rel(InstanceOfPred, datalog.Var("O"), cval),
			datalog.ObjectAtom(datalog.Var("O")),
			datalog.Cmp(datalog.AttrOp(datalog.Var("O"), ClassAttr),
				constraint.Eq, datalog.TermOp(cval)),
		))
		if p := t.parent[c]; p != "" {
			rules = append(rules, datalog.NewRule(
				datalog.Rel(InstanceOfPred, datalog.Var("O"), datalog.Const(object.Str(p))),
				datalog.Rel(InstanceOfPred, datalog.Var("O"), cval),
			))
		}
	}
	return rules
}

// --- DB-level classification API ------------------------------------------------

// DefineClass declares a class in the database's taxonomy.
func (db *DB) DefineClass(class, parent string) error {
	db.defMu.Lock()
	defer db.defMu.Unlock()
	return db.taxonomy.Define(class, parent)
}

// Taxonomy exposes the database's taxonomy.
func (db *DB) Taxonomy() *Taxonomy { return db.taxonomy }

// AssignClass sets the object's class attribute.
func (db *DB) AssignClass(oid object.OID, class string) error {
	return db.st.Update(oid, func(o *object.Object) error {
		o.Set(ClassAttr, object.Str(class))
		return nil
	})
}

// InstancesOf returns the oids of objects whose class equals or descends
// from the given class, via the instance_of derived predicate.
func (db *DB) InstancesOf(class string) ([]object.OID, error) {
	rs, err := db.QueryAtom(datalog.Rel(InstanceOfPred,
		datalog.Var("O"), datalog.Const(object.Str(class))))
	if err != nil {
		return nil, err
	}
	return rs.OIDs()
}
