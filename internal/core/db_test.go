package core

import (
	"path/filepath"
	"testing"

	"videodb/internal/interval"
	"videodb/internal/object"
)

// buildRope models the paper's worked example through the public API.
func buildRope(t testing.TB) *DB {
	t.Helper()
	db := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.PutInterval("gi1", interval.New(interval.Open(0, 30)), map[string]object.Value{
		object.AttrEntities: object.RefSet("o1", "o2", "o3", "o4"),
		"subject":           object.Str("murder"),
		"victim":            object.Ref("o1"),
		"murderer":          object.RefSet("o2", "o3"),
	}))
	must(db.PutInterval("gi2", interval.New(interval.Open(40, 80)), map[string]object.Value{
		object.AttrEntities: object.RefSet("o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9"),
		"subject":           object.Str("Giving a party"),
		"host":              object.RefSet("o2", "o3"),
		"guest":             object.RefSet("o5", "o6", "o7", "o8", "o9"),
	}))
	people := map[object.OID]map[string]object.Value{
		"o1": {"name": object.Str("David"), "role": object.Str("Victim")},
		"o2": {"name": object.Str("Philip"), "realname": object.Str("Farley Granger"), "role": object.Str("Murderer")},
		"o3": {"name": object.Str("Brandon"), "realname": object.Str("John Dall"), "role": object.Str("Murderer")},
		"o4": {"identification": object.Str("Chest")},
		"o5": {"name": object.Str("Janet")},
		"o6": {"name": object.Str("Kenneth")},
		"o7": {"name": object.Str("Mr.Kentley")},
		"o8": {"name": object.Str("Mrs.Atwater")},
		"o9": {"name": object.Str("Rupert Cadell")},
	}
	for oid, attrs := range people {
		must(db.PutEntity(oid, attrs))
	}
	db.Relate("in", "o1", "o4", "gi1")
	db.Relate("in", "o1", "o4", "gi2")
	return db
}

func TestModelingAPI(t *testing.T) {
	db := buildRope(t)
	if got := db.Intervals(); len(got) != 2 {
		t.Errorf("Intervals = %v", got)
	}
	if got := db.Entities(); len(got) != 9 {
		t.Errorf("Entities = %v", got)
	}
	if db.Object("gi1") == nil || db.Object("nope") != nil {
		t.Error("Object lookup")
	}
	// Attach extends λ1.
	if err := db.PutEntity("o10", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Attach("gi1", "o10"); err != nil {
		t.Fatal(err)
	}
	ents := db.Object("gi1").Entities()
	if len(ents) != 5 {
		t.Errorf("after Attach: %v", ents)
	}
	if err := db.Attach("o1", "o2"); err == nil {
		t.Error("Attach to an entity should fail")
	}
	if err := db.Attach("missing", "o2"); err == nil {
		t.Error("Attach to a missing object should fail")
	}
}

func TestQueryTextEndToEnd(t *testing.T) {
	db := buildRope(t)
	rs, err := db.Query(`?- Interval(G), Object(O), O in G.entities, O.name = "David".`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 2 || rs.Columns[0] != "G" || rs.Columns[1] != "O" {
		t.Errorf("Columns = %v", rs.Columns)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("Rows = %v", rs.Rows)
	}
	g, _ := rs.Rows[0][0].AsRef()
	if g != "gi1" {
		t.Errorf("first row = %v", rs.Rows[0])
	}
}

func TestDefineRuleAndQuery(t *testing.T) {
	db := buildRope(t)
	if err := db.DefineRule(
		"together(O1, O2, G) :- Interval(G), Object(O1), Object(O2), " +
			"O1 in G.entities, O2 in G.entities, O1 != O2"); err != nil {
		t.Fatal(err)
	}
	// Defining the same rule twice is a no-op.
	if err := db.DefineRule(
		"together(O1, O2, G) :- Interval(G), Object(O1), Object(O2), " +
			"O1 in G.entities, O2 in G.entities, O1 != O2"); err != nil {
		t.Fatal(err)
	}
	if got := len(db.Rules().Rules); got != 1 {
		t.Errorf("rules = %d, want 1 (dedup)", got)
	}
	rs, err := db.Query("?- together(o1, O, gi1).")
	if err != nil {
		t.Fatal(err)
	}
	oids, err := rs.OIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 3 || oids[0] != "o2" || oids[2] != "o4" {
		t.Errorf("together with o1 in gi1 = %v", oids)
	}
	if err := db.DefineRule("broken(X) :- "); err == nil {
		t.Error("bad rule text should fail")
	}
	if err := db.DefineRule("unsafe(X) :- p(Y)"); err == nil {
		t.Error("unsafe rule should fail")
	}
}

func TestLoadScript(t *testing.T) {
	db := New()
	results, err := db.LoadScript(`
interval g1 { duration: [0, 10], entities: {a, b} }.
interval g2 { duration: [20, 30], entities: {b} }.
object a { name: "Reporter" }.
object b { name: "Minister" }.
appears(O, G) :- Interval(G), Object(O), O in G.entities.
?- appears(b, G).
?- appears(O, g1).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	oids, err := results[0].OIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 2 || oids[0] != "g1" || oids[1] != "g2" {
		t.Errorf("appears(b, G) = %v", oids)
	}
	oids, err = results[1].OIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 2 || oids[0] != "a" || oids[1] != "b" {
		t.Errorf("appears(O, g1) = %v", oids)
	}
}

func TestConstructiveQueryThroughDB(t *testing.T) {
	db := buildRope(t)
	if err := db.DefineRule(
		"montage(G1 + G2) :- Interval(G1), Interval(G2), " +
			"{o1, o2} subset G1.entities, {o1, o2} subset G2.entities"); err != nil {
		t.Fatal(err)
	}
	rs, err := db.Query("?- montage(G).")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 { // gi1, gi2, gi1+gi2
		t.Errorf("montage = %v", rs.Rows)
	}
	if len(rs.Created) != 1 || rs.Created[0].OID() != "gi1+gi2" {
		t.Fatalf("Created = %v", rs.Created)
	}
	// The created object resolves through the result set.
	o := rs.Object("gi1+gi2")
	if o == nil || !o.Duration().Equal(interval.New(interval.Open(0, 30), interval.Open(40, 80))) {
		t.Errorf("created object = %v", o)
	}
	if rs.Stats.Created != 1 {
		t.Errorf("stats = %+v", rs.Stats)
	}
}

func TestCompose(t *testing.T) {
	db := buildRope(t)
	oid, err := db.Compose("gi1", "gi2")
	if err != nil {
		t.Fatal(err)
	}
	if oid != "gi1+gi2" {
		t.Errorf("Compose oid = %s", oid)
	}
	o := db.Object(oid)
	if o == nil {
		t.Fatal("composed object not stored")
	}
	if !o.Duration().Equal(interval.New(interval.Open(0, 30), interval.Open(40, 80))) {
		t.Errorf("composed duration = %v", o.Duration())
	}
	// Idempotent: same set -> same oid.
	oid2, err := db.Compose("gi2", "gi1", "gi1")
	if err != nil {
		t.Fatal(err)
	}
	if oid2 != oid {
		t.Errorf("Compose not canonical: %s vs %s", oid2, oid)
	}
	// Single interval composes to itself.
	self, err := db.Compose("gi1")
	if err != nil || self != "gi1" {
		t.Errorf("Compose single = %s, %v", self, err)
	}
	if _, err := db.Compose(); err == nil {
		t.Error("empty Compose should fail")
	}
	if _, err := db.Compose("o1"); err == nil {
		t.Error("composing an entity should fail")
	}
	if _, err := db.Compose("zzz"); err == nil {
		t.Error("composing a missing object should fail")
	}
}

func TestPersistenceThroughDB(t *testing.T) {
	db := buildRope(t)
	path := filepath.Join(t.TempDir(), "rope.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := New()
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Intervals()) != 2 || len(fresh.Entities()) != 9 {
		t.Error("snapshot round trip lost objects")
	}
	rs, err := fresh.Query("?- in(X, Y, gi1).")
	if err != nil || len(rs.Rows) != 1 {
		t.Errorf("facts after load: %v, %v", rs, err)
	}
}

func TestClassification(t *testing.T) {
	db := buildRope(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineClass("person", ""))
	must(db.DefineClass("actor", "person"))
	must(db.DefineClass("prop", ""))
	must(db.AssignClass("o1", "actor"))
	must(db.AssignClass("o2", "actor"))
	must(db.AssignClass("o4", "prop"))

	actors, err := db.InstancesOf("actor")
	if err != nil {
		t.Fatal(err)
	}
	if len(actors) != 2 || actors[0] != "o1" || actors[1] != "o2" {
		t.Errorf("actors = %v", actors)
	}
	// Inherited membership.
	people, err := db.InstancesOf("person")
	if err != nil {
		t.Fatal(err)
	}
	if len(people) != 2 {
		t.Errorf("people = %v", people)
	}
	props, err := db.InstancesOf("prop")
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 || props[0] != "o4" {
		t.Errorf("props = %v", props)
	}
	// instance_of is usable inside VideoQL queries too.
	rs, err := db.Query(`?- Interval(G), Object(O), O in G.entities, instance_of(O, "prop").`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 { // chest appears in gi1 and gi2
		t.Errorf("prop appearances = %v", rs.Rows)
	}
	// Taxonomy guards.
	if err := db.DefineClass("", ""); err == nil {
		t.Error("empty class name should fail")
	}
	if err := db.DefineClass("person", "actor"); err == nil {
		t.Error("cycle should fail")
	}
	if !db.Taxonomy().IsA("actor", "person") || db.Taxonomy().IsA("person", "actor") {
		t.Error("IsA")
	}
}

func TestPresentation(t *testing.T) {
	db := New()
	if err := db.PutInterval("g1", interval.FromPairs(20, 30, 0, 5), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.PutInterval("g2", interval.FromPairs(10, 15), nil); err != nil {
		t.Fatal(err)
	}
	edl, err := db.Presentation("g1", "g2")
	if err != nil {
		t.Fatal(err)
	}
	if len(edl) != 3 {
		t.Fatalf("EDL = %v", edl)
	}
	if edl[0].Source != "g1" || edl[0].Span.Lo != 0 {
		t.Errorf("cue 0 = %v", edl[0])
	}
	if edl[1].Source != "g2" || edl[2].Source != "g1" {
		t.Errorf("EDL order = %v", edl)
	}
	if got := edl.Runtime(); got != 20 {
		t.Errorf("Runtime = %v", got)
	}
	if _, err := db.Presentation("missing"); err == nil {
		t.Error("missing source should fail")
	}
	db.PutEntity("e", nil)
	if _, err := db.Presentation("e"); err == nil {
		t.Error("entity source should fail")
	}
	if s := edl.String(); s == "" {
		t.Error("EDL String")
	}
}

func TestEDLCompact(t *testing.T) {
	db := New()
	if err := db.PutInterval("g1", interval.FromPairs(100, 110, 200, 205), nil); err != nil {
		t.Fatal(err)
	}
	edl, err := db.Presentation("g1")
	if err != nil {
		t.Fatal(err)
	}
	compact, err := edl.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(compact) != 2 {
		t.Fatalf("compact = %v", compact)
	}
	if compact[0].Span.Lo != 0 || compact[0].Span.Hi != 10 {
		t.Errorf("cue 0 = %v", compact[0])
	}
	if compact[1].Span.Lo != 10 || compact[1].Span.Hi != 15 {
		t.Errorf("cue 1 = %v", compact[1])
	}
	if compact.Runtime() != edl.Runtime() {
		t.Errorf("runtime changed: %v vs %v", compact.Runtime(), edl.Runtime())
	}
	// Unbounded cues are rejected.
	bad := EDL{{Span: interval.Above(0), Source: "g1"}}
	if _, err := bad.Compact(0); err == nil {
		t.Error("unbounded cue should fail")
	}
}
