package core

import (
	"fmt"
	"sort"

	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
)

// A video archive hosts many video documents; the paper's formal object
// is a single sequence V = (I, O, f, R, Σ, λ1, λ2) (Section 5.1).
// Sequence groups the generalized intervals belonging to one document —
// membership is the part_of(interval, sequence) relation, so it is
// queryable from VideoQL like any other fact — and Tuple materializes the
// seven components for inspection.

// PartOfPred is the relation linking a generalized interval to the video
// sequence (document) it fragments.
const PartOfPred = "part_of"

// SequenceAttr marks a sequence object.
const SequenceAttr = "video_sequence"

// Sequence is a handle on one video document within the database.
type Sequence struct {
	db  *DB
	oid object.OID
}

// CreateSequence registers a video document. The sequence itself is a
// semantic object carrying the given attributes (title, source, …).
func (db *DB) CreateSequence(oid object.OID, attrs map[string]object.Value) (*Sequence, error) {
	o := object.NewEntity(oid)
	for k, v := range attrs {
		o.Set(k, v)
	}
	o.Set(SequenceAttr, object.Str("true"))
	if err := db.st.Put(o); err != nil {
		return nil, err
	}
	return &Sequence{db: db, oid: oid}, nil
}

// OpenSequence returns a handle on an existing sequence object.
func (db *DB) OpenSequence(oid object.OID) (*Sequence, error) {
	o := db.st.Get(oid)
	if o == nil {
		return nil, fmt.Errorf("core: no sequence %q", oid)
	}
	if !o.Attr(SequenceAttr).Equal(object.Str("true")) {
		return nil, fmt.Errorf("core: %q is not a video sequence", oid)
	}
	return &Sequence{db: db, oid: oid}, nil
}

// OID returns the sequence's identity.
func (s *Sequence) OID() object.OID { return s.oid }

// AddInterval stores a generalized interval object and attaches it to
// this sequence.
func (s *Sequence) AddInterval(oid object.OID, duration interval.Generalized, attrs map[string]object.Value) error {
	if err := s.db.PutInterval(oid, duration, attrs); err != nil {
		return err
	}
	s.db.st.AddFact(store.RefFact(PartOfPred, oid, s.oid))
	return nil
}

// Attach links an existing generalized interval to this sequence.
func (s *Sequence) Attach(oid object.OID) error {
	o := s.db.st.Get(oid)
	if o == nil {
		return fmt.Errorf("core: no object %q", oid)
	}
	if o.Kind() != object.GenInterval {
		return fmt.Errorf("core: %q is not a generalized interval", oid)
	}
	s.db.st.AddFact(store.RefFact(PartOfPred, oid, s.oid))
	return nil
}

// Intervals returns the sorted oids of the sequence's generalized
// intervals (the component I).
func (s *Sequence) Intervals() []object.OID {
	var out []object.OID
	s.db.st.ForEachFact(PartOfPred, func(f store.Fact) bool {
		if len(f.Args) == 2 {
			if seq, ok := f.Args[1].AsRef(); ok && seq == s.oid {
				if gi, ok := f.Args[0].AsRef(); ok {
					out = append(out, gi)
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Tuple is the materialized 7-tuple V = (I, O, f, R, Σ, λ1, λ2) of
// Section 5.1.
type Tuple struct {
	// I: the generalized interval objects of the sequence.
	I []object.OID
	// O: the semantic objects appearing in some interval of the sequence.
	O []object.OID
	// F: the atomic values appearing as (or inside) attribute values of
	// the sequence's objects — the paper's f, the concrete-domain layer.
	F []object.Value
	// R: the relation facts that mention at least one interval of the
	// sequence (the relations on O × I).
	R []store.Fact
	// Sigma: the temporal constraints (canonical generalized intervals)
	// attached to the intervals — the paper's Σ, indexed like I.
	Sigma []interval.Generalized
	// Lambda1 maps each interval to its entities (λ1: I → 2^O).
	Lambda1 map[object.OID][]object.OID
	// Lambda2 maps each interval to its temporal constraint (λ2: I → Σ).
	Lambda2 map[object.OID]interval.Generalized
}

// Tuple materializes the sequence's 7-tuple.
func (s *Sequence) Tuple() Tuple {
	t := Tuple{
		Lambda1: make(map[object.OID][]object.OID),
		Lambda2: make(map[object.OID]interval.Generalized),
	}
	t.I = s.Intervals()
	inSeq := make(map[object.OID]bool, len(t.I))
	entitySet := map[object.OID]bool{}
	valueSet := map[string]object.Value{}

	var collectAtoms func(v object.Value)
	collectAtoms = func(v object.Value) {
		switch v.Kind() {
		case object.KindString, object.KindNumber:
			valueSet[v.String()] = v
		case object.KindSet:
			for _, e := range v.Elems() {
				collectAtoms(e)
			}
		}
	}

	for _, gi := range t.I {
		inSeq[gi] = true
		o := s.db.st.Get(gi)
		if o == nil {
			continue
		}
		dur := o.Duration()
		t.Sigma = append(t.Sigma, dur)
		t.Lambda2[gi] = dur
		ents := o.Entities()
		t.Lambda1[gi] = ents
		for _, e := range ents {
			entitySet[e] = true
		}
		for _, a := range o.Attrs() {
			collectAtoms(o.Attr(a))
		}
	}
	for e := range entitySet {
		t.O = append(t.O, e)
		if o := s.db.st.Get(e); o != nil {
			for _, a := range o.Attrs() {
				collectAtoms(o.Attr(a))
			}
		}
	}
	sort.Slice(t.O, func(i, j int) bool { return t.O[i] < t.O[j] })
	for _, k := range sortedKeys(valueSet) {
		t.F = append(t.F, valueSet[k])
	}

	for _, rel := range s.db.st.Relations() {
		if rel == PartOfPred {
			continue
		}
		s.db.st.ForEachFact(rel, func(f store.Fact) bool {
			for _, a := range f.Args {
				if oid, ok := a.AsRef(); ok && inSeq[oid] {
					t.R = append(t.R, f)
					break
				}
			}
			return true
		})
	}
	return t
}

func sortedKeys(m map[string]object.Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
