package core

import (
	"strings"
	"testing"

	"videodb/internal/datalog/analyze"
)

func TestVetScript(t *testing.T) {
	db := New()
	defer db.Close()
	db.Relate("rope", "r1")

	// The DB's own facts are visible to the analyzer: "rope" needs no
	// in-script definition, while the typo'd "ropee" is flagged.
	ds, err := db.Vet("deep(X) :- ropee(X), X.depth > 3.\n?- deep(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Code != analyze.CodeUndefinedPred {
		t.Fatalf("diagnostics = %v", ds)
	}
	if !strings.Contains(ds[0].Suggestion, `"rope"`) {
		t.Errorf("suggestion = %q, want did-you-mean rope", ds[0].Suggestion)
	}
	if ds[0].Pos.Line != 1 || ds[0].Pos.Col != 12 {
		t.Errorf("pos = %v, want 1:12", ds[0].Pos)
	}

	clean, err := db.Vet("deep(X) :- rope(X), X.depth > 3.\n?- deep(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Errorf("clean script produced %v", clean)
	}
}

func TestVetParseError(t *testing.T) {
	db := New()
	defer db.Close()
	ds, err := db.Vet("deep(X :-")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Code != analyze.CodeParseError || ds[0].Severity != analyze.SeverityError {
		t.Fatalf("diagnostics = %v", ds)
	}
	if ds[0].Pos.IsZero() {
		t.Errorf("parse diagnostic should carry a position: %+v", ds[0])
	}
}

func TestVetSeesLoadedRules(t *testing.T) {
	db := New()
	defer db.Close()
	db.Relate("rope", "r1")
	if err := db.DefineRule("deep(X) :- rope(X), X.depth > 3"); err != nil {
		t.Fatal(err)
	}
	// The script's query leans on the DB-resident rule.
	ds, err := db.Vet("?- deep(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("diagnostics = %v", ds)
	}
}

// The database's own rules are analysis context: a loaded rule the
// script never touches — even a provably dead one — is not re-linted
// when vetting a script.
func TestVetDoesNotLintDBRules(t *testing.T) {
	db := New()
	defer db.Close()
	db.Relate("rope", "r1")
	if err := db.DefineRule("odd(X) :- rope(X), X.n > 5, X.n < 1"); err != nil {
		t.Fatal(err)
	}
	ds, err := db.Vet("?- rope(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("diagnostics = %v", ds)
	}
}

func TestVetQuery(t *testing.T) {
	db := New()
	defer db.Close()
	db.Relate("rope", "r1")
	if err := db.DefineRule("deep(X) :- rope(X), X.depth > 3"); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRule("spare(X) :- rope(X)"); err != nil {
		t.Fatal(err)
	}

	// A good query over a loaded rule: no findings, and in particular no
	// unreachable-rule noise about "spare".
	if ds := db.VetQuery("?- deep(X)."); len(ds) != 0 {
		t.Errorf("clean query produced %v", ds)
	}

	// Typo'd goal predicate.
	ds := db.VetQuery("?- deeep(X).")
	found := false
	for _, d := range ds {
		if d.Code == analyze.CodeUndefinedPred && strings.Contains(d.Suggestion, `"deep"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics = %v, want undefined predicate with suggestion", ds)
	}

	// Dead conjunctive query body.
	ds = db.VetQuery("?- rope(X), X.depth > 9, X.depth < 1.")
	found = false
	for _, d := range ds {
		if d.Code == analyze.CodeDeadRule {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics = %v, want dead-rule", ds)
	}

	// Malformed query: one parse diagnostic.
	ds = db.VetQuery("?- deep(X")
	if len(ds) != 1 || ds[0].Code != analyze.CodeParseError {
		t.Errorf("diagnostics = %v, want one parse error", ds)
	}
}

func TestStoreFactArities(t *testing.T) {
	db := New()
	defer db.Close()
	db.Relate("edge", "a", "b")
	db.Relate("node", "a")
	got := db.Store().FactArities()
	if len(got["edge"]) != 1 || got["edge"][0] != 2 {
		t.Errorf("edge arities = %v", got["edge"])
	}
	if len(got["node"]) != 1 || got["node"][0] != 1 {
		t.Errorf("node arities = %v", got["node"])
	}
}
