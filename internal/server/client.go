package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"videodb/internal/object"
)

// Client is a Go client for the HTTP API.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for the default.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

// Query runs a VideoQL query.
func (c *Client) Query(query string) (*ResultJSON, error) {
	var out ResultJSON
	if err := c.post("/v1/query", queryRequest{Query: query}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explain returns the evaluation plan of a query.
func (c *Client) Explain(query string) (string, error) {
	var out struct {
		Plan string `json:"plan"`
	}
	if err := c.post("/v1/explain", queryRequest{Query: query}, &out); err != nil {
		return "", err
	}
	return out.Plan, nil
}

// LoadScript executes a VideoQL script server-side and returns its query
// results.
func (c *Client) LoadScript(script string) ([]ResultJSON, error) {
	var out struct {
		Results []ResultJSON `json:"results"`
	}
	if err := c.post("/v1/script", scriptRequest{Script: script}, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// DefineRule adds a rule to the server's program.
func (c *Client) DefineRule(rule string) error {
	var out struct {
		OK bool `json:"ok"`
	}
	return c.post("/v1/rules", ruleRequest{Rule: rule}, &out)
}

// Rules lists the server's current rules.
func (c *Client) Rules() ([]string, error) {
	var out struct {
		Rules []string `json:"rules"`
	}
	if err := c.get("/v1/rules", &out); err != nil {
		return nil, err
	}
	return out.Rules, nil
}

// ObjectInfo is one entry of Objects.
type ObjectInfo struct {
	OID  string `json:"oid"`
	Kind string `json:"kind"`
}

// Objects lists the stored objects.
func (c *Client) Objects() ([]ObjectInfo, error) {
	var out struct {
		Objects []ObjectInfo `json:"objects"`
	}
	if err := c.get("/v1/objects", &out); err != nil {
		return nil, err
	}
	return out.Objects, nil
}

// Object fetches one object.
func (c *Client) Object(oid object.OID) (*object.Object, error) {
	var out object.Object
	if err := c.get("/v1/objects/"+url.PathEscape(string(oid)), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats returns the server's statistics: store contents plus cumulative
// engine totals, memo state, and uptime.
func (c *Client) Stats() (*StatsResponse, error) {
	var out StatsResponse
	if err := c.get("/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) post(path string, body, dst interface{}) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return c.finish(resp, dst)
}

func (c *Client) get(path string, dst interface{}) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	return c.finish(resp, dst)
}

func (c *Client) finish(resp *http.Response, dst interface{}) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr errorJSON
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(body, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = string(body)
		}
		return &APIError{Status: resp.StatusCode, Message: apiErr.Error}
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
