package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"videodb/internal/core"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	db := core.New()
	_, err := db.LoadScript(`
interval gi1 { duration: (t > 0 and t < 30), entities: {o1, o2} }.
interval gi2 { duration: (t > 40 and t < 80), entities: {o1} }.
object o1 { name: "David" }.
object o2 { name: "Philip" }.
in(o1, o2, gi1).
`)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/query",
		map[string]string{"query": "?- Interval(G), o1 in G.entities."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	var rows [][]json.RawMessage
	if err := json.Unmarshal(out["rows"], &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	var cols []string
	json.Unmarshal(out["columns"], &cols)
	if len(cols) != 1 || cols[0] != "G" {
		t.Errorf("columns = %v", cols)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- broken("})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("parse error status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query", map[string]string{"query": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query", map[string]string{"nope": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", resp.StatusCode)
	}
	// GET on a POST endpoint.
	getResp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", getResp.StatusCode)
	}
	if allow := getResp.Header.Get("Allow"); allow != "POST" {
		t.Errorf("Allow = %q", allow)
	}
}

func TestRulesEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/rules",
		map[string]string{"rule": "together(G) :- Interval(G), {o1, o2} subset G.entities"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("define rule status = %d", resp.StatusCode)
	}
	// The rule is visible and usable.
	getResp, err := http.Get(ts.URL + "/v1/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var listed struct {
		Rules []string `json:"rules"`
	}
	if err := json.NewDecoder(getResp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if len(listed.Rules) != 1 || !strings.Contains(listed.Rules[0], "together") {
		t.Errorf("rules = %v", listed.Rules)
	}
	resp, out := postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- together(G)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %v", resp.StatusCode, out)
	}
	var rows []json.RawMessage
	json.Unmarshal(out["rows"], &rows)
	if len(rows) != 1 {
		t.Errorf("together rows = %d", len(rows))
	}
	// Bad rule rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/rules", map[string]string{"rule": "broken("})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad rule status = %d", resp.StatusCode)
	}
}

func TestScriptEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/script", map[string]string{"script": `
object o3 { name: "Brandon" }.
?- Object(O), O.name = "Brandon".
`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("script status = %d: %v", resp.StatusCode, out)
	}
	var results []ResultJSON
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Rows) != 1 {
		t.Errorf("results = %+v", results)
	}
}

func TestObjectEndpoints(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/objects")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listed struct {
		Objects []struct{ OID, Kind string } `json:"objects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if len(listed.Objects) != 4 {
		t.Errorf("objects = %v", listed.Objects)
	}

	one, err := http.Get(ts.URL + "/v1/objects/o1")
	if err != nil {
		t.Fatal(err)
	}
	defer one.Body.Close()
	if one.StatusCode != http.StatusOK {
		t.Errorf("object status = %d", one.StatusCode)
	}
	missing, err := http.Get(ts.URL + "/v1/objects/zzz")
	if err != nil {
		t.Fatal(err)
	}
	defer missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("missing object status = %d", missing.StatusCode)
	}
}

func TestStatsAndExplain(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct{ Objects, Intervals, Entities int }
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Objects != 4 || st.Intervals != 2 {
		t.Errorf("stats = %+v", st)
	}
	r2, out := postJSON(t, ts.URL+"/v1/explain",
		map[string]string{"query": "?- Interval(G), o1 in G.entities."})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d", r2.StatusCode)
	}
	var plan struct {
		Plan string `json:"plan"`
	}
	raw, _ := json.Marshal(map[string]json.RawMessage(out))
	if err := json.Unmarshal(raw, &plan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Plan, "stratum 0") {
		t.Errorf("plan = %q", plan.Plan)
	}
}

func TestConcurrentQueriesAndRuleChanges(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if i%3 == 0 {
					postJSONQuiet(t, ts.URL+"/v1/rules", map[string]string{
						"rule": fmt.Sprintf("r%d_%d(G) :- Interval(G)", i, j)})
				} else {
					postJSONQuiet(t, ts.URL+"/v1/query", map[string]string{
						"query": "?- Interval(G), o1 in G.entities."})
				}
			}
		}(i)
	}
	wg.Wait()
}

func postJSONQuiet(t *testing.T, url string, body interface{}) {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Error(err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("%s: status %d", url, resp.StatusCode)
	}
}
