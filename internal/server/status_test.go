package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"videodb/internal/core"
)

// syncBuf is a log sink safe to read while handlers are still writing.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// engineErrors fetches the error-class counters from /v1/stats.
func engineErrors(t *testing.T, url string) (canceled, clientGone uint64) {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Engine struct {
			ErrorsCanceled   uint64 `json:"errorsCanceled"`
			ErrorsClientGone uint64 `json:"errorsClientGone"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Engine.ErrorsCanceled, out.Engine.ErrorsClientGone
}

// A client that walks away is not shed work: the evaluation's death is
// recorded as client_gone (499), and the canceled (503) counter — the
// overload alerting signal — stays untouched.
func TestClientDisconnectCountsClientGoneNotShed(t *testing.T) {
	ts := heavyServer(t, 300, 0) // no server deadline: only the client can cancel
	body, _ := json.Marshal(map[string]string{"query": crossJoinQuery})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 50 * time.Millisecond}
	if _, err := client.Do(req); err == nil {
		t.Fatal("expected the client-side timeout to fire")
	}
	// The handler records the outcome asynchronously after the disconnect.
	deadline := time.Now().Add(10 * time.Second)
	for {
		canceled, clientGone := engineErrors(t, ts.URL)
		if clientGone >= 1 {
			if canceled != 0 {
				t.Fatalf("client disconnect inflated the shed counter: canceled=%d", canceled)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client_gone never recorded (canceled=%d clientGone=%d)", canceled, clientGone)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The server's own deadline is the opposite case: genuinely shed work,
// counted as canceled, with nothing in client_gone.
func TestServerDeadlineCountsShedNotClientGone(t *testing.T) {
	ts := heavyServer(t, 300, 30*time.Millisecond)
	status, _, err := postQuery(ts.URL, crossJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	canceled, clientGone := engineErrors(t, ts.URL)
	if canceled != 1 || clientGone != 0 {
		t.Fatalf("counters: canceled=%d clientGone=%d; want 1, 0", canceled, clientGone)
	}
}

// An admission-rejected request must appear in the access log with its
// real status, not the unwritten-means-200 default.
func TestAccessLogRecordsAdmissionReject(t *testing.T) {
	gate, unblock := blockGate()
	defer unblock()
	db := core.New()
	core.WithGate(gate)(db)
	t.Cleanup(func() { db.Close() })
	if err := db.Relate("e", "a"); err != nil {
		t.Fatal(err)
	}
	buf := &syncBuf{}
	srv := New(db,
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 0}),
		WithAccessLog(log.New(buf, "", 0)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	done := make(chan struct{})
	go func() {
		postQuery(ts.URL, "?- e(A).")
		close(done)
	}()
	waitAdm(t, ts.URL, "slot occupied", func(a AdmissionStats) bool { return a.InFlight == 1 })
	status, _, err := postQuery(ts.URL, "?- e(A).")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if !strings.Contains(buf.String(), "POST /v1/query 429 ") {
		t.Errorf("access log missing the 429 line:\n%s", buf.String())
	}
	unblock()
	<-done
}

// A panicking handler must not be logged as 200: the middleware records
// a 500 (answering with one when nothing was written), then hands the
// panic back to net/http.
func TestPanicIsLoggedAs500NotOK(t *testing.T) {
	buf := &syncBuf{}
	srv := New(core.New(), WithAccessLog(log.New(buf, "", 0)))
	srv.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/boom", nil)
	var recovered interface{}
	func() {
		defer func() { recovered = recover() }()
		srv.ServeHTTP(rec, req)
	}()
	if recovered == nil {
		t.Fatal("panic must propagate to net/http after logging")
	}
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("response status = %d, want 500", rec.Code)
	}
	logLine := buf.String()
	if !strings.Contains(logLine, "GET /boom 500 ") {
		t.Errorf("access log line = %q, want a 500", logLine)
	}
	if strings.Contains(logLine, " 200 ") {
		t.Errorf("panicking handler logged as OK: %q", logLine)
	}
}
