package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"videodb/internal/core"
	"videodb/internal/object"
)

func viewTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	db := core.New()
	for _, r := range []string{
		"reach(X, Y) :- edge(X, Y)",
		"reach(X, Z) :- reach(X, Y), edge(Y, Z)",
	} {
		if err := db.DefineRule(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}} {
		if err := db.Relate("edge", object.OID(e[0]), object.OID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	// Keep a handle for mutating mid-test.
	viewTestDB = db
	return ts
}

var viewTestDB *core.DB

func getJSON(t *testing.T, url string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestViewEndpoints(t *testing.T) {
	ts := viewTestServer(t)

	// Create.
	resp, out := postJSON(t, ts.URL+"/v1/views",
		map[string]string{"name": "closure", "goal": "?- reach(X, Y)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status = %d: %v", resp.StatusCode, out)
	}
	var mode string
	if err := json.Unmarshal(out["mode"], &mode); err != nil || mode != "recompute" {
		t.Fatalf("create mode = %q (%v)", mode, err)
	}
	var rows [][]json.RawMessage
	if err := json.Unmarshal(out["rows"], &rows); err != nil || len(rows) != 3 {
		t.Fatalf("create rows = %d (%v)", len(rows), err)
	}

	// Duplicate create conflicts.
	resp, _ = postJSON(t, ts.URL+"/v1/views",
		map[string]string{"name": "closure", "goal": "?- reach(X, Y)"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status = %d, want 409", resp.StatusCode)
	}

	// Read without mutations: cached.
	resp, out = getJSON(t, ts.URL+"/v1/views/closure")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(out["mode"], &mode); err != nil || mode != "cached" {
		t.Fatalf("idle read mode = %q", mode)
	}

	// Mutate, read again: incremental, one more row pair.
	if err := viewTestDB.Relate("edge", "c", "d"); err != nil {
		t.Fatal(err)
	}
	resp, out = getJSON(t, ts.URL+"/v1/views/closure")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation read status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(out["mode"], &mode); err != nil || mode != "incremental" {
		t.Fatalf("post-mutation mode = %q", mode)
	}
	if err := json.Unmarshal(out["rows"], &rows); err != nil || len(rows) != 6 {
		t.Fatalf("post-mutation rows = %d", len(rows))
	}

	// List.
	resp, out = getJSON(t, ts.URL+"/v1/views")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var infos []core.ViewInfo
	if err := json.Unmarshal(out["views"], &infos); err != nil || len(infos) != 1 {
		t.Fatalf("list = %v (%v)", infos, err)
	}
	if infos[0].Name != "closure" || infos[0].Rows != 6 || infos[0].IncrementalRuns != 1 {
		t.Fatalf("list info = %+v", infos[0])
	}

	// Metrics expose the maintenance counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`videodb_view_maintenance_total{mode="cached"} 1`,
		`videodb_view_maintenance_total{mode="incremental"} 1`,
		`videodb_view_maintenance_total{mode="recompute"} 1`,
		"videodb_view_errors_total 1", // the duplicate create above
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Delete; a second delete and a read both 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/views/closure", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d, want 404", dresp2.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/v1/views/closure")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("read after delete status = %d, want 404", resp.StatusCode)
	}
}

func TestViewEndpointValidation(t *testing.T) {
	ts := viewTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/views", map[string]string{"name": "", "goal": "?- reach(X, Y)"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty name status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/views", map[string]string{"name": "v", "goal": "?- reach(X"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad goal status = %d, want 422", resp.StatusCode)
	}
}
