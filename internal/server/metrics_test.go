package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"videodb/internal/core"
)

// promValue extracts the value of a single-sample metric from a
// Prometheus text exposition body.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in exposition:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q value %q: %v", name, m[1], err)
	}
	return v
}

func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)

	body, ctype := scrape(t, ts.URL)
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ctype)
	}

	// Prometheus-parseable shape: every non-comment line is `name{labels} value`.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.eE+-]+$`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
	for _, want := range []string{
		`videodb_query_errors_total{class="canceled"}`,
		`videodb_query_errors_total{class="limit"}`,
		`videodb_query_errors_total{class="invalid"}`,
		`videodb_query_duration_seconds_bucket{le="+Inf"}`,
		"videodb_query_duration_seconds_sum",
		"videodb_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}

	q0 := promValue(t, body, "videodb_queries_total")
	d0 := promValue(t, body, "videodb_query_duration_seconds_count")

	// One good query, one invalid query: counters must rise accordingly.
	postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- Interval(G)."})
	postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- nope((("})

	body2, _ := scrape(t, ts.URL)
	if q1 := promValue(t, body2, "videodb_queries_total"); q1 != q0+2 {
		t.Errorf("queries_total %g -> %g, want +2", q0, q1)
	}
	if d1 := promValue(t, body2, "videodb_query_duration_seconds_count"); d1 != d0+2 {
		t.Errorf("duration count %g -> %g, want +2", d0, d1)
	}
	if hist := promValue(t, body2, "videodb_query_duration_seconds_count"); hist <= 0 {
		t.Errorf("histogram count = %g", hist)
	}

	// Histogram buckets are cumulative and monotone, ending at count.
	re := regexp.MustCompile(`videodb_query_duration_seconds_bucket\{le="[^"]*"\} ([0-9]+)`)
	var prev float64 = -1
	var last float64
	for _, m := range re.FindAllStringSubmatch(body2, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		if v < prev {
			t.Errorf("histogram buckets not monotone: %g after %g", v, prev)
		}
		prev, last = v, v
	}
	if count := promValue(t, body2, "videodb_query_duration_seconds_count"); last != count {
		t.Errorf("+Inf bucket %g != count %g", last, count)
	}
}

func TestMetricsErrorClasses(t *testing.T) {
	db := core.New()
	if _, err := db.LoadScript(`
object o1 { name: "a" }.
e(o1, o1).
`); err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	body, _ := scrape(t, ts.URL)
	inv0 := promValue(t, body, `videodb_query_errors_total{class="invalid"}`)

	postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- broken(("})
	body2, _ := scrape(t, ts.URL)
	if inv1 := promValue(t, body2, `videodb_query_errors_total{class="invalid"}`); inv1 != inv0+1 {
		t.Errorf("invalid errors %g -> %g, want +1", inv0, inv1)
	}
}

func TestStatsMergesEngineAndMemo(t *testing.T) {
	ts := testServer(t)
	postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- Interval(G)."})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Objects != 4 {
		t.Errorf("store stats lost: %+v", st.Stats)
	}
	if st.Engine.Queries < 1 {
		t.Errorf("engine totals missing: %+v", st.Engine)
	}
	if st.Uptime < 0 {
		t.Errorf("uptime = %g", st.Uptime)
	}
	if st.Memo.HitRate < 0 || st.Memo.HitRate > 1 {
		t.Errorf("memo hit rate = %g", st.Memo.HitRate)
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := core.New()
	if _, err := db.LoadScript(`
object o1 { name: "a" }.
e(o1, o1).
`); err != nil {
		t.Fatal(err)
	}

	// Threshold 0ns-above-everything: every query logs.
	var buf bytes.Buffer
	srv := New(db, WithSlowQueryLog(time.Nanosecond, log.New(&buf, "", 0)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- e(X, Y)."})
	if got := buf.String(); !strings.Contains(got, "slow query") || !strings.Contains(got, "e(X, Y)") {
		t.Errorf("expected a slow-query line, got %q", got)
	}

	// A threshold far above any test query: nothing logs.
	var quiet bytes.Buffer
	srv2 := New(db, WithSlowQueryLog(time.Hour, log.New(&quiet, "", 0)))
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	postJSON(t, ts2.URL+"/v1/query", map[string]string{"query": "?- e(X, Y)."})
	if quiet.Len() != 0 {
		t.Errorf("sub-threshold query logged: %q", quiet.String())
	}
}

func TestAccessLog(t *testing.T) {
	db := core.New()
	var buf bytes.Buffer
	srv := New(db, WithAccessLog(log.New(&buf, "", 0)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := buf.String(); !strings.Contains(got, "GET /v1/stats 200") {
		t.Errorf("access log = %q", got)
	}
}

func TestQueryProfileField(t *testing.T) {
	ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/query",
		map[string]interface{}{"query": "?- Interval(G).", "profile": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	raw, ok := out["profile"]
	if !ok {
		t.Fatal("profiled query response has no profile field")
	}
	var prof struct {
		Rounds  []json.RawMessage `json:"rounds"`
		TotalNs int64             `json:"totalNs"`
	}
	if err := json.Unmarshal(raw, &prof); err != nil {
		t.Fatal(err)
	}
	if len(prof.Rounds) == 0 || prof.TotalNs <= 0 {
		t.Errorf("profile = %s", raw)
	}

	// Unprofiled queries must not carry the field.
	_, plain := postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- Interval(G)."})
	if _, ok := plain["profile"]; ok {
		t.Error("unprofiled query response carries a profile field")
	}
}

func TestPprofGated(t *testing.T) {
	dbOff := core.New()
	off := httptest.NewServer(New(dbOff))
	t.Cleanup(off.Close)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without WithPprof")
	}

	dbOn := core.New()
	on := httptest.NewServer(New(dbOn, WithPprof()))
	t.Cleanup(on.Close)
	resp2, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d with WithPprof", resp2.StatusCode)
	}
}
