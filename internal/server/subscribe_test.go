package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"videodb/internal/core"
	"videodb/internal/object"
)

// sseClient opens an SSE subscription and exposes parsed frames.
type sseClient struct {
	t      *testing.T
	resp   *http.Response
	br     *bufio.Reader
	cancel context.CancelFunc
	subID  string
}

// openSSE subscribes to goal and consumes the stream until the caller
// closes it (via cancel or the test server shutting down).
func openSSE(t *testing.T, base, rawQuery string) *sseClient {
	t.Helper()
	c, err := tryOpenSSE(base, rawQuery, "")
	if err != nil {
		t.Fatal(err)
	}
	c.t = t
	t.Cleanup(c.close)
	return c
}

func tryOpenSSE(base, rawQuery, lastEventID string) (*sseClient, error) {
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/subscribe?"+rawQuery, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var out map[string]string
		json.NewDecoder(resp.Body).Decode(&out)
		cancel()
		return nil, fmt.Errorf("subscribe status %d: %s", resp.StatusCode, out["error"])
	}
	return &sseClient{
		resp:   resp,
		br:     bufio.NewReader(resp.Body),
		cancel: cancel,
		subID:  resp.Header.Get("X-Videodb-Subscription"),
	}, nil
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads one frame with a deadline.
func (c *sseClient) next(timeout time.Duration) (SSEEvent, error) {
	type result struct {
		ev  SSEEvent
		err error
	}
	ch := make(chan result, 1)
	go func() {
		ev, err := ReadSSE(c.br)
		ch <- result{ev, err}
	}()
	select {
	case r := <-ch:
		return r.ev, r.err
	case <-time.After(timeout):
		return SSEEvent{}, fmt.Errorf("timed out waiting for SSE frame")
	}
}

// decodeEvent parses the JSON payload of a frame.
func decodeEvent(t *testing.T, ev SSEEvent) subEventJSON {
	t.Helper()
	var out subEventJSON
	if err := json.Unmarshal([]byte(ev.Data), &out); err != nil {
		t.Fatalf("bad event payload %q: %v", ev.Data, err)
	}
	return out
}

// accumulate applies SSE events to a set of row keys, mirroring what a
// live dashboard would hold.
type sseState struct{ rows map[string]bool }

func (st *sseState) apply(t *testing.T, ev subEventJSON) {
	t.Helper()
	if st.rows == nil {
		st.rows = make(map[string]bool)
	}
	key := func(row []json.RawMessage) string {
		parts := make([]string, len(row))
		for i, r := range row {
			parts[i] = string(r)
		}
		return strings.Join(parts, "\x1f")
	}
	switch ev.Kind {
	case "snapshot":
		st.rows = make(map[string]bool)
		if ev.Rows == nil {
			return
		}
		for _, row := range *ev.Rows {
			raw := make([]json.RawMessage, len(row))
			for i, v := range row {
				b, _ := json.Marshal(v)
				raw[i] = b
			}
			st.rows[key(raw)] = true
		}
	case "delta":
		raw := make([]json.RawMessage, len(ev.Row))
		for i, v := range ev.Row {
			b, _ := json.Marshal(v)
			raw[i] = b
		}
		k := key(raw)
		if ev.Sign > 0 {
			st.rows[k] = true
		} else {
			delete(st.rows, k)
		}
	default:
		t.Fatalf("unexpected event kind %q", ev.Kind)
	}
}

// postScript applies mutations through the HTTP API so events flow
// through the full stack.
func postScript(t *testing.T, base, script string) {
	t.Helper()
	resp, out := postJSON(t, base+"/v1/script", map[string]string{"script": script})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("script status = %d: %v", resp.StatusCode, out)
	}
}

// TestSSEStream is the end-to-end happy path: subscribe, get a snapshot,
// mutate through /v1/script, watch deltas arrive, and check the
// accumulated state matches a one-shot query. It also regression-tests
// the statusWriter Flusher passthrough: if the metrics middleware hides
// http.Flusher, the handler 500s and openSSE fails.
func TestSSEStream(t *testing.T) {
	db := core.New()
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := openSSE(t, ts.URL, "goal="+escapeQuery("?- likes(X, Y)"))
	if c.subID == "" {
		t.Fatal("missing X-Videodb-Subscription header")
	}

	ev, err := c.next(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Event != "snapshot" {
		t.Fatalf("first frame event = %q, want snapshot", ev.Event)
	}
	first := decodeEvent(t, ev)
	if first.Kind != "snapshot" || first.Rows == nil || len(*first.Rows) != 0 {
		t.Fatalf("initial snapshot = %+v", first)
	}
	if !strings.Contains(ev.Data, `"rows":[]`) {
		t.Fatalf("empty snapshot must carry rows explicitly: %s", ev.Data)
	}
	if len(first.Columns) != 2 {
		t.Fatalf("snapshot columns = %v", first.Columns)
	}

	var st sseState
	st.apply(t, first)

	postScript(t, ts.URL, "likes(a, b). likes(c, d).")
	deadline := time.Now().Add(10 * time.Second)
	for len(st.rows) != 2 && time.Now().Before(deadline) {
		ev, err := c.next(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		st.apply(t, decodeEvent(t, ev))
	}
	if len(st.rows) != 2 {
		t.Fatalf("accumulated rows = %v, want 2", st.rows)
	}

	// The script language has no retraction statement; go through the
	// core API, which feeds the same changelog.
	if _, err := db.Unrelate("likes", "a", "b"); err != nil {
		t.Fatal(err)
	}
	for len(st.rows) != 1 && time.Now().Before(deadline) {
		ev, err := c.next(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		st.apply(t, decodeEvent(t, ev))
	}
	if len(st.rows) != 1 {
		t.Fatalf("after retract rows = %v, want 1", st.rows)
	}
}

// attachedSub reports whether any listed subscription has an attached
// SSE handler.
func attachedSub(t *testing.T, base string) bool {
	t.Helper()
	resp, err := http.Get(base + "/v1/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Subscriptions []struct {
			Attached bool `json:"attached"`
		} `json:"subscriptions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	for _, s := range list.Subscriptions {
		if s.Attached {
			return true
		}
	}
	return false
}

func escapeQuery(goal string) string {
	r := strings.NewReplacer(" ", "%20", "?", "%3F", ",", "%2C", "(", "%28", ")", "%29", "+", "%2B", "-", "%2D", ">", "%3E", "<", "%3C", "=", "%3D", ".", "%2E", "\"", "%22", "{", "%7B", "}", "%7D", ":", "%3A")
	return r.Replace(goal)
}

func TestSSEValidation(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name  string
		query string
		code  int
	}{
		{"missing goal", "", http.StatusBadRequest},
		{"bad goal", "goal=" + escapeQuery("?- broken("), http.StatusUnprocessableEntity},
		{"bad queue", "goal=" + escapeQuery("?- likes(X, Y)") + "&queue=0", http.StatusBadRequest},
		{"bad policy", "goal=" + escapeQuery("?- likes(X, Y)") + "&policy=explode", http.StatusBadRequest},
		{"bad rate", "goal=" + escapeQuery("?- likes(X, Y)") + "&rate=-3", http.StatusBadRequest},
		{"unknown resume id", "id=99999", http.StatusNotFound},
		{"bad resume id", "id=banana", http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, err := tryOpenSSE(ts.URL, tc.query, "")
		if err == nil {
			t.Errorf("%s: subscribe unexpectedly succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("status %d", tc.code)) {
			t.Errorf("%s: %v, want status %d", tc.name, err, tc.code)
		}
	}
}

// TestSSEResume covers the disconnect → grace → resume path: a client
// drops mid-stream, reconnects with Last-Event-ID, and sees only events
// it has not acknowledged.
func TestSSEResume(t *testing.T) {
	db := core.New()
	srv := New(db, WithSubscriptionGrace(5*time.Second))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	c, err := tryOpenSSE(ts.URL, "goal="+escapeQuery("?- likes(X, Y)"), "")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := c.next(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Event != "snapshot" {
		t.Fatalf("first frame = %q", ev.Event)
	}
	lastID := ev.ID
	subID := c.subID

	// Drop the connection mid-stream (client context cancel) and wait for
	// the handler to observe it: an event popped before the server notices
	// the dead connection is written there and lost, which is exactly what
	// Last-Event-ID cannot recover (the client resubscribes fresh in that
	// case). Queue the mutation only once nobody is attached.
	c.close()
	deadline := time.Now().Add(5 * time.Second)
	for attachedSub(t, ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("handler never detached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := db.Relate("likes", "a", "b"); err != nil {
		t.Fatal(err)
	}

	rc, err := tryOpenSSE(ts.URL, "id="+subID, lastID)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	defer rc.close()
	if rc.subID != subID {
		t.Fatalf("resumed id = %q, want %q", rc.subID, subID)
	}

	// The queued delta (or a fresh snapshot) arrives on the resumed
	// stream; either way the accumulated state converges.
	var st sseState
	st.rows = make(map[string]bool)
	deadline = time.Now().Add(10 * time.Second)
	for len(st.rows) != 1 && time.Now().Before(deadline) {
		ev, err := rc.next(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		st.apply(t, decodeEvent(t, ev))
	}
	if len(st.rows) != 1 {
		t.Fatalf("resumed state = %v", st.rows)
	}

	// While attached, a second attach on the same id conflicts.
	if _, err := tryOpenSSE(ts.URL, "id="+subID, ""); err == nil ||
		!strings.Contains(err.Error(), "status 409") {
		t.Fatalf("double attach: %v, want 409", err)
	}
}

// TestSSEDetachReap verifies a detached subscription is closed after the
// grace period rather than leaking.
func TestSSEDetachReap(t *testing.T) {
	db := core.New()
	srv := New(db, WithSubscriptionGrace(50*time.Millisecond))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	c, err := tryOpenSSE(ts.URL, "goal="+escapeQuery("?- likes(X, Y)"), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.next(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	subID := c.subID
	c.close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := db.SubscriptionStats().Active; got == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscription never reaped: %+v", db.SubscriptionStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := tryOpenSSE(ts.URL, "id="+subID, ""); err == nil ||
		!strings.Contains(err.Error(), "status 404") {
		t.Fatalf("resume after reap: %v, want 404", err)
	}
}

// TestSubscribeTimeoutExemption is the requestCtx satellite: a server
// with a tiny query timeout must keep an SSE stream alive well past the
// timeout while /v1/query still gets bounded.
func TestSubscribeTimeoutExemption(t *testing.T) {
	db := core.New()
	srv := New(db, WithQueryTimeout(50*time.Millisecond))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	c, err := tryOpenSSE(ts.URL, "goal="+escapeQuery("?- likes(X, Y)"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if _, err := c.next(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Outlive the query timeout several times over, then prove the stream
	// still works by pushing a mutation through it.
	time.Sleep(300 * time.Millisecond)
	if err := db.Relate("likes", "a", "b"); err != nil {
		t.Fatal(err)
	}
	ev, err := c.next(5 * time.Second)
	if err != nil {
		t.Fatalf("stream died after query timeout: %v", err)
	}
	if ev.Event != "delta" && ev.Event != "snapshot" {
		t.Fatalf("unexpected frame %q", ev.Event)
	}
}

// TestSubscriptionsEndpoints covers GET /v1/subscriptions and
// DELETE /v1/subscribe/{id}.
func TestSubscriptionsEndpoints(t *testing.T) {
	ts := testServer(t)
	c := openSSE(t, ts.URL, "goal="+escapeQuery("?- likes(X, Y)"))
	if _, err := c.next(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Subscriptions []struct {
			ID       uint64 `json:"id"`
			Goal     string `json:"goal"`
			Kind     string `json:"kind"`
			Attached bool   `json:"attached"`
		} `json:"subscriptions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Subscriptions) != 1 {
		t.Fatalf("subscriptions = %+v", list.Subscriptions)
	}
	got := list.Subscriptions[0]
	if got.Kind != "sse" || !got.Attached || !strings.Contains(got.Goal, "likes") {
		t.Fatalf("listing = %+v", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/subscribe/%d", ts.URL, got.ID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}

	// The live stream observes the close frame.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ev, err := c.next(5 * time.Second)
		if err != nil {
			break // stream ended, also acceptable
		}
		if ev.Event == "close" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw close frame")
		}
	}

	// Deleting again 404s.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/subscribe/%d", ts.URL, got.ID), nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d", dresp.StatusCode)
	}
}

// TestWebhookDelivery spins up a receiving endpoint that fails the first
// attempt of one event to exercise the retry path, then checks ordered
// delivery of snapshot + deltas.
func TestWebhookDelivery(t *testing.T) {
	var (
		mu       = make(chan struct{}, 1)
		events   []subEventJSON
		failOnce atomic.Bool
	)
	mu <- struct{}{}
	failOnce.Store(true)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev subEventJSON
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		// Fail the first delivery attempt ever seen: the server must retry
		// the same event rather than dropping it.
		if failOnce.CompareAndSwap(true, false) {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		<-mu
		events = append(events, ev)
		mu <- struct{}{}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(sink.Close)

	ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/subscribe", map[string]interface{}{
		"goal":    "?- likes(X, Y)",
		"webhook": sink.URL,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("webhook subscribe status = %d: %v", resp.StatusCode, out)
	}

	postScript(t, ts.URL, "likes(a, b).")

	deadline := time.Now().Add(10 * time.Second)
	for {
		<-mu
		n := len(events)
		mu <- struct{}{}
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook received %d events, want >= 2", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
	<-mu
	defer func() { mu <- struct{}{} }()
	if events[0].Kind != "snapshot" {
		t.Fatalf("first webhook event = %+v", events[0])
	}
	var sawDelta bool
	for _, ev := range events[1:] {
		if ev.Kind == "delta" && ev.Sign == 1 {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Fatalf("no +delta delivered: %+v", events)
	}
}

// TestWebhookValidation rejects bad registration payloads.
func TestWebhookValidation(t *testing.T) {
	ts := testServer(t)
	cases := []map[string]interface{}{
		{"webhook": "http://example.com/hook"},                       // missing goal
		{"goal": "?- likes(X, Y)", "webhook": "not-a-url"},           // relative URL
		{"goal": "?- likes(X, Y)", "webhook": "ftp://example.com/x"}, // bad scheme
		{"goal": "?- broken(", "webhook": "http://example.com/hook"}, // parse error (422)
	}
	for i, body := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/subscribe", body)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("case %d: status = %d", i, resp.StatusCode)
		}
	}
}

// TestWebhookEndpointGoneDisconnects verifies a persistently failing
// endpoint eventually closes the subscription instead of retrying
// forever.
func TestWebhookEndpointGoneDisconnects(t *testing.T) {
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	t.Cleanup(sink.Close)

	db := core.New()
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	resp, out := postJSON(t, ts.URL+"/v1/subscribe", map[string]interface{}{
		"goal":    "?- likes(X, Y)",
		"webhook": sink.URL,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %d: %v", resp.StatusCode, out)
	}

	// Feed it enough events to blow through webhookMaxConsecErr.
	for i := 0; i < webhookMaxConsecErr+2; i++ {
		if err := db.Relate("likes", object.OID(fmt.Sprintf("a%d", i)), object.OID(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for db.SubscriptionStats().Active != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("failing webhook subscription never closed: %+v", db.SubscriptionStats())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSubscribeMetrics checks the Prometheus surface and /v1/stats.
func TestSubscribeMetrics(t *testing.T) {
	ts := testServer(t)
	c := openSSE(t, ts.URL, "goal="+escapeQuery("?- likes(X, Y)"))
	if _, err := c.next(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	postScript(t, ts.URL, "likes(a, b).")
	if _, err := c.next(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		sb.WriteString(line)
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"videodb_subscriptions_active 1",
		`videodb_sub_deltas_total{sign="+"}`,
		"videodb_sub_dropped_total",
		"videodb_sub_resyncs_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Subscriptions core.SubTotals `json:"subscriptions"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Subscriptions.Active != 1 || stats.Subscriptions.Opened < 1 {
		t.Errorf("stats subscriptions = %+v", stats.Subscriptions)
	}
}

// TestServerCloseEndsStreams verifies Server.Close unblocks live SSE
// handlers (the graceful-shutdown prerequisite) and refuses new
// subscriptions.
func TestServerCloseEndsStreams(t *testing.T) {
	db := core.New()
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	c, err := tryOpenSSE(ts.URL, "goal="+escapeQuery("?- likes(X, Y)"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if _, err := c.next(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	srv.Close()

	// The stream ends with a close frame or EOF.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ev, err := c.next(5 * time.Second)
		if err != nil {
			break
		}
		if ev.Event == "close" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream survived Server.Close")
		}
	}

	if _, err := tryOpenSSE(ts.URL, "goal="+escapeQuery("?- likes(X, Y)"), ""); err == nil ||
		!strings.Contains(err.Error(), "status 503") {
		t.Fatalf("subscribe after close: %v, want 503", err)
	}
}

// TestStatusWriterFlusher is the satellite-1 regression test at the unit
// level: the metrics middleware's wrapper must forward Flush and expose
// Unwrap so SSE streaming survives the wrapping.
func TestStatusWriterFlusher(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	var f http.Flusher = sw
	f.Flush()
	if !rec.Flushed {
		t.Error("statusWriter.Flush did not reach the underlying writer")
	}
	if sw.Unwrap() != rec {
		t.Error("statusWriter.Unwrap did not return the wrapped writer")
	}
}
