package server

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"videodb/internal/core"
)

func testClient(t *testing.T) *Client {
	t.Helper()
	db := core.New()
	_, err := db.LoadScript(`
interval gi1 { duration: [0, 30], entities: {o1, o2} }.
object o1 { name: "David" }.
object o2 { name: "Philip" }.
`)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, nil)
}

func TestClientRoundTrip(t *testing.T) {
	c := testClient(t)

	res, err := c.Query("?- Interval(G), o1 in G.entities.")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Columns[0] != "G" {
		t.Errorf("query result = %+v", res)
	}

	if err := c.DefineRule("named(O) :- Object(O), O.name != \"\""); err != nil {
		t.Fatal(err)
	}
	rules, err := c.Rules()
	if err != nil || len(rules) != 1 {
		t.Errorf("rules = %v, %v", rules, err)
	}

	results, err := c.LoadScript(`object o3 { name: "Brandon" }. ?- named(O).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Rows) != 3 {
		t.Errorf("script results = %+v", results)
	}

	objs, err := c.Objects()
	if err != nil || len(objs) != 4 {
		t.Errorf("objects = %v, %v", objs, err)
	}
	o, err := c.Object("o1")
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := o.Attr("name").AsString(); name != "David" {
		t.Errorf("o1 = %v", o)
	}

	stats, err := c.Stats()
	if err != nil || stats.Objects != 4 {
		t.Errorf("stats = %v, %v", stats, err)
	}

	plan, err := c.Explain("?- named(O).")
	if err != nil || !strings.Contains(plan, "stratum") {
		t.Errorf("plan = %q, %v", plan, err)
	}
}

func TestClientErrors(t *testing.T) {
	c := testClient(t)
	_, err := c.Query("?- broken(")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.Status != 422 || !strings.Contains(apiErr.Message, "parse error") {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if _, err := c.Object("nope"); err == nil {
		t.Error("missing object should error")
	}
	bad := NewClient("http://127.0.0.1:1", nil)
	if _, err := bad.Query("?- p(X)."); err == nil {
		t.Error("unreachable server should error")
	}
}
