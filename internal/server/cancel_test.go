package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"videodb/internal/core"
	"videodb/internal/object"
)

// heavyServer serves a database where "?- e(A), e(B), e(C)." is a triple
// cross join over n facts — long enough to outlive any small timeout,
// with cancellation checks firing every join chunk.
func heavyServer(t *testing.T, n int, timeout time.Duration) *httptest.Server {
	t.Helper()
	db := core.New()
	for i := 0; i < n; i++ {
		db.Relate("e", object.OID(fmt.Sprintf("v%d", i)))
	}
	ts := httptest.NewServer(New(db, WithQueryTimeout(timeout)))
	t.Cleanup(ts.Close)
	return ts
}

const crossJoinQuery = "?- e(A), e(B), e(C)."

func postQuery(url, query string) (int, string, error) {
	body, _ := json.Marshal(map[string]string{"query": query})
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data), err
}

func TestQueryTimeoutReturns503(t *testing.T) {
	ts := heavyServer(t, 300, 30*time.Millisecond)
	start := time.Now()
	status, body, err := postQuery(ts.URL, crossJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s; want 503", status, body)
	}
	if !strings.Contains(body, "canceled") {
		t.Errorf("error body should mention cancellation: %s", body)
	}
	// The request must be shed promptly, not after the full cross join.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled query took %v", elapsed)
	}
}

func TestServerResponsiveDuringAndAfterCancellation(t *testing.T) {
	ts := heavyServer(t, 300, 200*time.Millisecond)

	slow := make(chan int, 1)
	go func() {
		status, _, _ := postQuery(ts.URL, crossJoinQuery)
		slow <- status
	}()

	// While the doomed query holds the read lock, other readers must get
	// through: queries share the lock, so the server stays responsive.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats during slow query: %d", resp.StatusCode)
		}
	}
	quick, _, err := postQuery(ts.URL, "?- e(A).")
	if err != nil {
		t.Fatal(err)
	}
	if quick != http.StatusOK {
		t.Fatalf("concurrent quick query status = %d", quick)
	}

	select {
	case status := <-slow:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("slow query status = %d, want 503", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled query never returned")
	}

	// After the cancellation the read lock is released: an exclusive-lock
	// mutation must go through promptly.
	ruleBody, _ := json.Marshal(map[string]string{"rule": "pair(A, B) :- e(A), e(B)."})
	ruleCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/rules", "application/json", bytes.NewReader(ruleBody))
		if err != nil {
			ruleCh <- 0
			return
		}
		resp.Body.Close()
		ruleCh <- resp.StatusCode
	}()
	select {
	case status := <-ruleCh:
		if status != http.StatusOK {
			t.Fatalf("rule mutation after cancellation: %d", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mutation blocked: cancelled query did not release the lock")
	}
}

func TestClientDisconnectCancelsQuery(t *testing.T) {
	// No server-side timeout: the only cancellation signal is the client
	// going away, which the request context propagates into the engine.
	ts := heavyServer(t, 300, 0)
	body, _ := json.Marshal(map[string]string{"query": crossJoinQuery})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 50 * time.Millisecond}
	if _, err := client.Do(req); err == nil {
		t.Fatal("expected the client-side timeout to fire")
	}
	// The abandoned query must release the read lock: a mutation succeeds.
	ruleBody, _ := json.Marshal(map[string]string{"rule": "pair(A, B) :- e(A), e(B)."})
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/rules", "application/json", bytes.NewReader(ruleBody))
		if err != nil {
			done <- 0
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	select {
	case status := <-done:
		if status != http.StatusOK {
			t.Fatalf("mutation after client disconnect: %d", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("disconnected client's query did not release the lock")
	}
}

func TestObjectsEmptyIsArray(t *testing.T) {
	ts := httptest.NewServer(New(core.New()))
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/v1/objects")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(data), "null") {
		t.Errorf("empty objects listing must be [], got %s", data)
	}
	var out struct {
		Objects []json.RawMessage `json:"objects"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Objects == nil || len(out.Objects) != 0 {
		t.Errorf("objects = %s", data)
	}
}

func TestGroundQueryColumnsIsArray(t *testing.T) {
	db := core.New()
	if _, err := db.LoadScript("object o1 { }.\nobject o2 { }.\nr(o1, o2)."); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	status, body, err := postQuery(ts.URL, "?- r(o1, o2).")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if strings.Contains(body, `"columns":null`) {
		t.Errorf("ground query columns must be [], got %s", body)
	}
}
