package server

import (
	"bytes"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"videodb/internal/constraint"
	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/datalog/analyze"
	"videodb/internal/store"
)

// Observability: cumulative counters for every evaluation the server
// runs, exposed two ways — GET /metrics in Prometheus text exposition
// format (0.0.4) and an expvar mirror under the "videodb" variable — plus
// a request log and a slow-query log. Everything here is atomics: the
// recording path adds a handful of uncontended Add calls per request, so
// observability never serializes queries.

// latencyBuckets are the upper bounds (seconds) of the query-latency
// histogram; an implicit +Inf bucket follows the last entry.
var latencyBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// histogram is a fixed-bucket latency histogram. Buckets hold per-bucket
// (not cumulative) counts; the Prometheus writer accumulates.
type histogram struct {
	buckets [len(latencyBuckets) + 1]atomic.Uint64
	sumNs   atomic.Int64
	count   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// metrics holds the server's cumulative counters.
type metrics struct {
	requests atomic.Uint64 // HTTP requests served (all endpoints)
	queries  atomic.Uint64 // query/script evaluations attempted

	// Evaluation errors by class. Cancellations and limit trips get their
	// own counters because they are operational signals (load shedding,
	// guard tuning), not client mistakes. Client disconnects are split
	// from server-side cancellation: a bored client is not shed work, and
	// folding the two together makes the 503 counter useless for alerting.
	errCanceled   atomic.Uint64 // server deadline / budget expired (503)
	errClientGone atomic.Uint64 // client disconnected mid-evaluation (499)
	errLimit      atomic.Uint64 // resource guard tripped (422, retryable by tuning)
	errInvalid    atomic.Uint64 // parse/type/evaluation errors (422)

	// Admission control (see admission.go): requests admitted to run,
	// rejected at the door (429), and those that had to wait in the FIFO
	// queue first; admWait records time from arrival to admission.
	admAdmitted atomic.Uint64
	admRejected atomic.Uint64
	admQueued   atomic.Uint64
	admWait     histogram

	// admState snapshots the limiter's current occupancy (in-flight,
	// waiting, tenants); nil when admission control is off.
	admState func() (int, int, int)

	// Engine totals accumulated from each evaluation's RunStats.
	rounds      atomic.Uint64
	derived     atomic.Uint64
	solverSteps atomic.Uint64
	memoHits    atomic.Uint64
	memoMisses  atomic.Uint64

	latency histogram

	// Materialized-view reads by how they were served, plus maintenance
	// failures. A high recompute share means views are being invalidated
	// (object writes, rule changes) faster than they pay off.
	viewCached     atomic.Uint64
	viewIncr       atomic.Uint64
	viewRecomputed atomic.Uint64
	viewErrors     atomic.Uint64

	// Subscription delivery: deltas pushed to clients by sign, plus
	// webhook-path loss/retry accounting. The authoritative per-DB
	// counters (active, dropped, resyncs) come from subStats — these
	// count what this server actually wrote to the wire.
	subDeltasPlus     atomic.Uint64
	subDeltasMinus    atomic.Uint64
	subSnapshots      atomic.Uint64
	subWebhookRetries atomic.Uint64
	subWebhookDropped atomic.Uint64

	// subStats reads the database's subscription totals; nil-safe like
	// planCache.
	subStats func() core.SubTotals

	// planCache reads the database's cross-query plan-cache counters (the
	// cache lives on core.DB, not here); nil-safe for tests constructing
	// bare metrics.
	planCache func() core.PlanCacheStats

	// backendStats reads the store's storage-backend counters (segment
	// files, block cache, flushes); nil-safe like planCache.
	backendStats func() store.BackendStats

	// Static-analysis diagnostics reported, keyed by code (VQL0001…).
	// The label set is open-ended, so this one counter is a guarded map
	// rather than an atomic; vet runs are rare next to queries, and the
	// lock is never held across an evaluation.
	vetMu    sync.Mutex
	vetDiags map[string]uint64
}

// recordVet accounts the diagnostics of one vet or lint run.
func (m *metrics) recordVet(ds []analyze.Diagnostic) {
	if len(ds) == 0 {
		return
	}
	m.vetMu.Lock()
	defer m.vetMu.Unlock()
	if m.vetDiags == nil {
		m.vetDiags = make(map[string]uint64)
	}
	for _, d := range ds {
		m.vetDiags[d.Code]++
	}
}

// vetSnapshot copies the per-code diagnostic counts.
func (m *metrics) vetSnapshot() map[string]uint64 {
	m.vetMu.Lock()
	defer m.vetMu.Unlock()
	out := make(map[string]uint64, len(m.vetDiags))
	for c, v := range m.vetDiags {
		out[c] = v
	}
	return out
}

// recordView accounts one successful view read by serving mode.
func (m *metrics) recordView(mode core.ViewMode) {
	switch mode {
	case core.ViewCached:
		m.viewCached.Add(1)
	case core.ViewIncremental:
		m.viewIncr.Add(1)
	default:
		m.viewRecomputed.Add(1)
	}
}

// recordSubEvent accounts one subscription event delivered to a client.
func (m *metrics) recordSubEvent(ev core.SubEvent) {
	switch {
	case ev.Kind == core.SubSnapshot:
		m.subSnapshots.Add(1)
	case ev.Sign >= 0:
		m.subDeltasPlus.Add(1)
	default:
		m.subDeltasMinus.Add(1)
	}
}

// isLimit reports whether an evaluation died on a resource guard.
func isLimit(err error) bool { return errors.Is(err, datalog.ErrLimitExceeded) }

// recordQuery accounts one evaluation: its latency always, its engine
// stats on success, its error class on failure. clientGone marks a
// cancellation whose cause was the client disconnecting (499), which
// must not count toward the server's shed-work (503) signal.
func (m *metrics) recordQuery(elapsed time.Duration, st *datalog.RunStats, err error, clientGone bool) {
	m.queries.Add(1)
	m.latency.observe(elapsed)
	if err != nil {
		switch {
		case clientGone:
			m.errClientGone.Add(1)
		case datalog.IsCanceled(err):
			m.errCanceled.Add(1)
		case isLimit(err):
			m.errLimit.Add(1)
		default:
			m.errInvalid.Add(1)
		}
		return
	}
	if st != nil {
		m.rounds.Add(uint64(st.Rounds))
		m.derived.Add(uint64(st.Derived))
		if st.SolverSteps > 0 {
			m.solverSteps.Add(uint64(st.SolverSteps))
		}
		m.memoHits.Add(st.MemoHits)
		m.memoMisses.Add(st.MemoMisses)
	}
}

// engineTotals is the cumulative-evaluation section of /v1/stats and the
// expvar mirror.
type engineTotals struct {
	Requests         uint64            `json:"httpRequests"`
	Queries          uint64            `json:"queries"`
	ErrorsCanceled   uint64            `json:"errorsCanceled"`
	ErrorsClientGone uint64            `json:"errorsClientGone"`
	ErrorsLimit      uint64            `json:"errorsLimit"`
	ErrorsInvalid    uint64            `json:"errorsInvalid"`
	Rounds           uint64            `json:"rounds"`
	Derived          uint64            `json:"derived"`
	SolverSteps      uint64            `json:"solverSteps"`
	MemoHits         uint64            `json:"memoHits"`
	MemoMisses       uint64            `json:"memoMisses"`
	ViewsCached      uint64            `json:"viewsCached"`
	ViewsIncr        uint64            `json:"viewsIncremental"`
	ViewsRecomp      uint64            `json:"viewsRecomputed"`
	ViewErrors       uint64            `json:"viewErrors"`
	VetDiagnostics   map[string]uint64 `json:"vetDiagnostics,omitempty"`

	Subscriptions core.SubTotals `json:"subscriptions"`

	// Wire-level subscription delivery: events actually written to
	// clients (SSE/webhook), as opposed to Subscriptions' queued view.
	SubWireSnapshots   uint64 `json:"subWireSnapshots"`
	SubWireDeltasPlus  uint64 `json:"subWireDeltasPlus"`
	SubWireDeltasMinus uint64 `json:"subWireDeltasMinus"`
	SubWebhookRetries  uint64 `json:"subWebhookRetries"`
	SubWebhookDropped  uint64 `json:"subWebhookDropped"`

	// Admission control (zero when the limiter is off).
	AdmissionAdmitted uint64 `json:"admissionAdmitted"`
	AdmissionRejected uint64 `json:"admissionRejected"`
	AdmissionQueued   uint64 `json:"admissionQueued"`

	PlanCache    core.PlanCacheStats `json:"planCache"`
	InternValues int                 `json:"internValues"` // process-wide value-interner size
}

func (m *metrics) totals() engineTotals {
	var pcs core.PlanCacheStats
	if m.planCache != nil {
		pcs = m.planCache()
	}
	var sub core.SubTotals
	if m.subStats != nil {
		sub = m.subStats()
	}
	return engineTotals{
		PlanCache:     pcs,
		InternValues:  datalog.InternStats().Values,
		Subscriptions: sub,

		SubWireSnapshots:   m.subSnapshots.Load(),
		SubWireDeltasPlus:  m.subDeltasPlus.Load(),
		SubWireDeltasMinus: m.subDeltasMinus.Load(),
		SubWebhookRetries:  m.subWebhookRetries.Load(),
		SubWebhookDropped:  m.subWebhookDropped.Load(),

		AdmissionAdmitted: m.admAdmitted.Load(),
		AdmissionRejected: m.admRejected.Load(),
		AdmissionQueued:   m.admQueued.Load(),

		Requests:         m.requests.Load(),
		Queries:          m.queries.Load(),
		ErrorsCanceled:   m.errCanceled.Load(),
		ErrorsClientGone: m.errClientGone.Load(),
		ErrorsLimit:      m.errLimit.Load(),
		ErrorsInvalid:    m.errInvalid.Load(),
		Rounds:           m.rounds.Load(),
		Derived:          m.derived.Load(),
		SolverSteps:      m.solverSteps.Load(),
		MemoHits:         m.memoHits.Load(),
		MemoMisses:       m.memoMisses.Load(),
		ViewsCached:      m.viewCached.Load(),
		ViewsIncr:        m.viewIncr.Load(),
		ViewsRecomp:      m.viewRecomputed.Load(),
		ViewErrors:       m.viewErrors.Load(),
		VetDiagnostics:   m.vetSnapshot(),
	}
}

// writeProm renders the Prometheus text exposition (format 0.0.4).
func (m *metrics) writeProm(b *bytes.Buffer, uptime time.Duration) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	// histo renders one fixed-bucket histogram (buckets are stored
	// per-bucket; Prometheus wants cumulative).
	histo := func(name, help string, h *histogram) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		var cum uint64
		for i, le := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
		}
		cum += h.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(b, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(b, "%s_count %d\n", name, h.count.Load())
	}

	counter("videodb_http_requests_total", "HTTP requests served.", m.requests.Load())
	counter("videodb_queries_total", "Query and script evaluations attempted.", m.queries.Load())

	fmt.Fprintf(b, "# HELP videodb_query_errors_total Failed evaluations by class.\n")
	fmt.Fprintf(b, "# TYPE videodb_query_errors_total counter\n")
	fmt.Fprintf(b, "videodb_query_errors_total{class=\"canceled\"} %d\n", m.errCanceled.Load())
	fmt.Fprintf(b, "videodb_query_errors_total{class=\"client_gone\"} %d\n", m.errClientGone.Load())
	fmt.Fprintf(b, "videodb_query_errors_total{class=\"limit\"} %d\n", m.errLimit.Load())
	fmt.Fprintf(b, "videodb_query_errors_total{class=\"invalid\"} %d\n", m.errInvalid.Load())

	counter("videodb_query_cancellations_total",
		"Evaluations shed by the server's deadline or budget (client disconnects excluded).", m.errCanceled.Load())
	counter("videodb_query_limit_trips_total",
		"Evaluations stopped by a resource guard (rounds, derived, solver budget).", m.errLimit.Load())

	counter("videodb_admission_admitted_total",
		"Requests admitted to evaluate (immediately or after queueing).", m.admAdmitted.Load())
	counter("videodb_admission_rejected_total",
		"Requests refused with 429 because the wait queue was full.", m.admRejected.Load())
	counter("videodb_admission_queued_total",
		"Admitted or abandoned requests that had to wait for a slot.", m.admQueued.Load())
	if m.admState != nil {
		inFlight, waiting, tenants := m.admState()
		gauge("videodb_admission_in_flight", "Evaluations currently holding an admission slot.", float64(inFlight))
		gauge("videodb_admission_waiting", "Requests currently queued for a slot.", float64(waiting))
		gauge("videodb_admission_tenants", "Tenant classes with live admission state.", float64(tenants))
	}

	counter("videodb_engine_rounds_total", "Fixpoint rounds across all evaluations.", m.rounds.Load())
	counter("videodb_engine_derived_total", "Derived tuples across all evaluations.", m.derived.Load())
	counter("videodb_engine_solver_steps_total", "Constraint-solver steps across all evaluations.", m.solverSteps.Load())
	counter("videodb_engine_memo_hits_total", "Solver-memo hits attributed to this server's evaluations.", m.memoHits.Load())
	counter("videodb_engine_memo_misses_total", "Solver-memo misses attributed to this server's evaluations.", m.memoMisses.Load())

	fmt.Fprintf(b, "# HELP videodb_view_maintenance_total Materialized-view reads by serving mode.\n")
	fmt.Fprintf(b, "# TYPE videodb_view_maintenance_total counter\n")
	fmt.Fprintf(b, "videodb_view_maintenance_total{mode=\"cached\"} %d\n", m.viewCached.Load())
	fmt.Fprintf(b, "videodb_view_maintenance_total{mode=\"incremental\"} %d\n", m.viewIncr.Load())
	fmt.Fprintf(b, "videodb_view_maintenance_total{mode=\"recompute\"} %d\n", m.viewRecomputed.Load())
	counter("videodb_view_errors_total",
		"Materialized-view builds or reads that failed (cancellation included).", m.viewErrors.Load())

	if m.subStats != nil {
		sub := m.subStats()
		gauge("videodb_subscriptions_active", "Standing queries currently registered.", float64(sub.Active))
		fmt.Fprintf(b, "# HELP videodb_sub_deltas_total Answer deltas queued to subscribers, by sign.\n")
		fmt.Fprintf(b, "# TYPE videodb_sub_deltas_total counter\n")
		fmt.Fprintf(b, "videodb_sub_deltas_total{sign=\"+\"} %d\n", sub.DeltasPlus)
		fmt.Fprintf(b, "videodb_sub_deltas_total{sign=\"-\"} %d\n", sub.DeltasMinus)
		counter("videodb_sub_dropped_total",
			"Queued deltas dropped on slow consumers (resynced or disconnected).", sub.Dropped)
		counter("videodb_sub_resyncs_total",
			"Snapshot resyncs sent after a dropped backlog.", sub.Resyncs)
		counter("videodb_sub_webhook_retries_total",
			"Webhook delivery attempts that failed and were retried.", m.subWebhookRetries.Load())
		counter("videodb_sub_webhook_dropped_total",
			"Events abandoned after exhausting webhook retries.", m.subWebhookDropped.Load())
	}

	fmt.Fprintf(b, "# HELP videodb_sub_wire_events_total Subscription events written to clients, by kind.\n")
	fmt.Fprintf(b, "# TYPE videodb_sub_wire_events_total counter\n")
	fmt.Fprintf(b, "videodb_sub_wire_events_total{kind=\"snapshot\"} %d\n", m.subSnapshots.Load())
	fmt.Fprintf(b, "videodb_sub_wire_events_total{kind=\"delta_plus\"} %d\n", m.subDeltasPlus.Load())
	fmt.Fprintf(b, "videodb_sub_wire_events_total{kind=\"delta_minus\"} %d\n", m.subDeltasMinus.Load())

	fmt.Fprintf(b, "# HELP videodb_vet_diagnostics_total Static-analysis diagnostics reported, by code.\n")
	fmt.Fprintf(b, "# TYPE videodb_vet_diagnostics_total counter\n")
	vet := m.vetSnapshot()
	codes := make([]string, 0, len(vet))
	for c := range vet {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(b, "videodb_vet_diagnostics_total{code=%q} %d\n", c, vet[c])
	}

	ms := constraint.MemoSnapshot()
	gauge("videodb_memo_entries", "Entries currently cached in the process-wide solver memo.", float64(ms.Entries))
	counter("videodb_memo_flushes_total", "Generation clears of the process-wide solver memo.", ms.Flushes)
	gauge("videodb_memo_hit_rate", "Process-wide solver-memo hit rate.", ms.HitRate())

	var pcs core.PlanCacheStats
	if m.planCache != nil {
		pcs = m.planCache()
	}
	counter("videodb_plan_cache_hits_total", "Cross-query plan-cache hits.", pcs.Hits)
	counter("videodb_plan_cache_misses_total", "Cross-query plan-cache misses.", pcs.Misses)
	counter("videodb_plan_cache_evictions_total", "Cross-query plan-cache LRU evictions.", pcs.Evictions)
	gauge("videodb_plan_cache_entries", "Compiled programs currently cached.", float64(pcs.Entries))
	gauge("videodb_intern_table_values", "Distinct values in the process-wide row-key interner.", float64(datalog.InternStats().Values))

	if m.backendStats != nil {
		bs := m.backendStats()
		fmt.Fprintf(b, "# HELP videodb_store_backend Storage backend serving this database (1 = active).\n")
		fmt.Fprintf(b, "# TYPE videodb_store_backend gauge\n")
		fmt.Fprintf(b, "videodb_store_backend{kind=%q} 1\n", bs.Kind)
		if bs.Kind == "segment" {
			gauge("videodb_segment_files", "Immutable segment files in the active manifest.", float64(bs.Segments))
			gauge("videodb_segment_facts", "Fact records resident in segment files (pre-tombstone).", float64(bs.SegmentFacts))
			gauge("videodb_segment_tombstones", "Tombstones resident in segment files.", float64(bs.Tombstones))
			gauge("videodb_segment_memtable_facts", "Adds and deletes buffered since the last flush.", float64(bs.MemtableFacts))
			gauge("videodb_segment_dict_values", "On-disk dictionary entries across segment files.", float64(bs.DictValues))
			counter("videodb_segment_flushes_total", "Memtable flushes since this backend opened.", bs.Flushes)
			counter("videodb_segment_compactions_total", "Full-merge compactions since this backend opened.", bs.Compactions)
			counter("videodb_segment_read_errors_total", "Block or dictionary reads that failed checksum or I/O.", bs.ReadErrors)
			counter("videodb_block_cache_hits_total", "Block-cache hits since this backend opened.", bs.CacheHits)
			counter("videodb_block_cache_misses_total", "Block-cache misses since this backend opened.", bs.CacheMisses)
			counter("videodb_block_cache_evictions_total", "Block-cache evictions since this backend opened.", bs.CacheEvictions)
			gauge("videodb_block_cache_bytes", "Decoded bytes currently held by the block cache.", float64(bs.CacheBytes))
			gauge("videodb_block_cache_budget_bytes", "Configured block-cache byte budget.", float64(bs.CacheBudget))
			gauge("videodb_block_cache_blocks", "Decoded blocks currently cached.", float64(bs.CachedBlocks))
		}
	}

	histo("videodb_query_duration_seconds", "Evaluation latency.", &m.latency)
	histo("videodb_admission_queue_wait_seconds",
		"Time from request arrival to admission (0 when a slot was free).", &m.admWait)

	gauge("videodb_uptime_seconds", "Seconds since the server was created.", uptime.Seconds())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	var b bytes.Buffer
	s.metrics.writeProm(&b, time.Since(s.start))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

// --- expvar mirror ---------------------------------------------------------------

// The expvar package forbids re-publishing a name, but tests (and
// embedders) create many Servers per process; a process-wide pointer to
// the newest server's metrics keeps Publish a one-time act.
var (
	expvarOnce sync.Once
	expvarCur  atomic.Pointer[metrics]
)

func publishExpvar(m *metrics) {
	expvarCur.Store(m)
	expvarOnce.Do(func() {
		expvar.Publish("videodb", expvar.Func(func() any {
			cur := expvarCur.Load()
			if cur == nil {
				return nil
			}
			return cur.totals()
		}))
	})
}

// --- Request logging and slow queries ---------------------------------------------

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// statusWriter must keep forwarding Flush: it wraps every response, and
// the SSE endpoint flushes per event — a wrapper that silently drops the
// Flusher interface would buffer deltas until the connection dies.
var _ http.Flusher = (*statusWriter)(nil)

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer's Flusher when it has one, so
// streaming responses pass through the logging middleware unbuffered.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer, the convention used by
// http.ResponseController to find optional interfaces through wrappers.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// WithAccessLog logs every request (method, path, status, latency) to l;
// nil means log.Default().
func WithAccessLog(l *log.Logger) Option {
	return func(s *Server) {
		if l == nil {
			l = log.Default()
		}
		s.accessLog = l
	}
}

// WithSlowQueryLog logs any query or script evaluation that takes at
// least threshold to l (nil means log.Default()), with its source text
// and round/derived counts. threshold <= 0 disables the log.
func WithSlowQueryLog(threshold time.Duration, l *log.Logger) Option {
	return func(s *Server) {
		if l == nil {
			l = log.Default()
		}
		s.slowThreshold = threshold
		s.slowLog = l
	}
}

// WithPprof serves net/http/pprof profiles under /debug/pprof/. Off by
// default: profiling endpoints do not belong on an exposed listener.
func WithPprof() Option { return func(s *Server) { s.pprofOn = true } }

func (s *Server) registerPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// logSlow writes one slow-query log line when the evaluation crossed the
// configured threshold. Failed evaluations log too — a query that dies at
// its deadline is exactly what the slow log is for.
func (s *Server) logSlow(kind, src string, elapsed time.Duration, st *datalog.RunStats, err error) {
	if s.slowLog == nil || s.slowThreshold <= 0 || elapsed < s.slowThreshold {
		return
	}
	if len(src) > 200 {
		src = src[:200] + "…"
	}
	switch {
	case err != nil:
		s.slowLog.Printf("slow %s (%v): %q error: %v", kind, elapsed.Round(time.Microsecond), src, err)
	case st != nil:
		s.slowLog.Printf("slow %s (%v): %q rounds=%d derived=%d solverSteps=%d",
			kind, elapsed.Round(time.Microsecond), src, st.Rounds, st.Derived, st.SolverSteps)
	default:
		s.slowLog.Printf("slow %s (%v): %q", kind, elapsed.Round(time.Microsecond), src)
	}
}
