package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"videodb/internal/datalog/analyze"
)

// The acceptance scenario over HTTP: a typo'd predicate, an
// unsatisfiable body, and an unreachable rule come back as three
// distinct, positioned diagnostics from POST /v1/vet.
func TestVetEndpoint(t *testing.T) {
	ts := testServer(t)
	script := `rope(r1).
deep(X) :- ropee(X), X.depth > 3.
taut(X) :- rope(X), X.tension < 5, X.tension > 10.
spare(X) :- rope(X), X.kind = "static".
?- deep(X).
?- taut(X).
`
	resp, out := postJSON(t, ts.URL+"/v1/vet", map[string]string{"script": script})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	var ok bool
	if err := json.Unmarshal(out["ok"], &ok); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ok = true for a script with errors")
	}
	var diags []analyze.Diagnostic
	if err := json.Unmarshal(out["diagnostics"], &diags); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		analyze.CodeUndefinedPred: false,
		analyze.CodeDeadRule:      false,
		analyze.CodeUnreachable:   false,
	}
	for _, d := range diags {
		if _, interesting := want[d.Code]; !interesting {
			continue
		}
		want[d.Code] = true
		if d.Pos.IsZero() {
			t.Errorf("%s diagnostic has no position: %+v", d.Code, d)
		}
	}
	for code, seen := range want {
		if !seen {
			t.Errorf("missing %s diagnostic in %v", code, diags)
		}
	}

	// The counters surface per code on /metrics.
	body, _ := scrape(t, ts.URL)
	for code := range want {
		if !strings.Contains(body, `videodb_vet_diagnostics_total{code="`+code+`"}`) {
			t.Errorf("exposition is missing vet counter for %s:\n%s", code, body)
		}
	}
}

func TestVetEndpointParseError(t *testing.T) {
	ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/v1/vet", map[string]string{"script": "deep(X :-"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	var diags []analyze.Diagnostic
	if err := json.Unmarshal(out["diagnostics"], &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != analyze.CodeParseError {
		t.Fatalf("diagnostics = %v, want one %s", diags, analyze.CodeParseError)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/vet", map[string]string{"script": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty script status = %d", resp.StatusCode)
	}
}

func TestQueryLint(t *testing.T) {
	ts := testServer(t)

	// Lint on, clean query: result carries no diagnostics.
	resp, out := postJSON(t, ts.URL+"/v1/query", map[string]interface{}{
		"query": "?- Interval(G), o1 in G.entities.",
		"lint":  true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	if raw, present := out["diagnostics"]; present {
		t.Errorf("clean query carried diagnostics: %s", raw)
	}

	// Lint on, query whose temporal constraints cannot hold: it still
	// evaluates (to zero rows), and the analysis rides along.
	resp, out = postJSON(t, ts.URL+"/v1/query", map[string]interface{}{
		"query": "?- Interval(G), G.duration => [0, 5], G.duration => [50, 60].",
		"lint":  true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	var diags []analyze.Diagnostic
	if err := json.Unmarshal(out["diagnostics"], &diags); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Code == analyze.CodeDeadRule {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics = %v, want %s", diags, analyze.CodeDeadRule)
	}

	// Lint off (the default): same query, no diagnostics attached.
	resp, out = postJSON(t, ts.URL+"/v1/query", map[string]interface{}{
		"query": "?- Interval(G), G.duration => [0, 5], G.duration => [50, 60].",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	if raw, present := out["diagnostics"]; present {
		t.Errorf("lint-off query carried diagnostics: %s", raw)
	}
}
