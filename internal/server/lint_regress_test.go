package server

import (
	"bytes"
	"context"
	"testing"
	"time"

	"videodb/internal/core"
)

// Regression tests for the two genuine findings videolint's bring-up
// surfaced in this package: the Prometheus/expvar mirror had diverged
// (metriccheck), and the webhook pump waited on context.Background()
// so Server.Close could not unblock it (ctxcheck).

// TestExpvarMirrorCoversWireCounters pins the mirror contract: every
// wire-level counter the Prometheus exposition reports must also appear
// in the expvar/stats payload with the same value. Before the fix,
// requests, the three sub-wire counters, and both webhook counters were
// missing from totals(), and the wire counters were exposed nowhere.
func TestExpvarMirrorCoversWireCounters(t *testing.T) {
	var m metrics
	m.requests.Add(7)
	m.subSnapshots.Add(3)
	m.subDeltasPlus.Add(5)
	m.subDeltasMinus.Add(2)
	m.subWebhookRetries.Add(11)
	m.subWebhookDropped.Add(1)

	tot := m.totals()
	for _, c := range []struct {
		name string
		got  uint64
		want uint64
	}{
		{"httpRequests", tot.Requests, 7},
		{"subWireSnapshots", tot.SubWireSnapshots, 3},
		{"subWireDeltasPlus", tot.SubWireDeltasPlus, 5},
		{"subWireDeltasMinus", tot.SubWireDeltasMinus, 2},
		{"subWebhookRetries", tot.SubWebhookRetries, 11},
		{"subWebhookDropped", tot.SubWebhookDropped, 1},
	} {
		if c.got != c.want {
			t.Errorf("totals().%s = %d, want %d (expvar mirror diverged from Prometheus)", c.name, c.got, c.want)
		}
	}

	// The same counters must be visible in the exposition, so neither
	// surface can silently drop what the other reports.
	var b bytes.Buffer
	m.writeProm(&b, time.Second)
	body := b.String()
	for _, want := range []string{
		"videodb_http_requests_total 7",
		`videodb_sub_wire_events_total{kind="snapshot"} 3`,
		`videodb_sub_wire_events_total{kind="delta_plus"} 5`,
		`videodb_sub_wire_events_total{kind="delta_minus"} 2`,
	} {
		if !bytes.Contains(b.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestCloseCancelsLifecycleContext reconstructs the webhook-pump hang:
// deliverWebhook used to block in sub.Next(context.Background()), so a
// pump whose subscription was slow to notice closure could outlive the
// server. Waiting on the lifecycle context instead, Close must unblock
// a Next call even when nothing ever closes the subscription itself.
func TestCloseCancelsLifecycleContext(t *testing.T) {
	db := core.New()
	srv := New(db)
	if srv.lifeCtx == nil {
		t.Fatal("server has no lifecycle context")
	}
	if srv.lifeCtx.Err() != nil {
		t.Fatalf("lifecycle context dead at birth: %v", srv.lifeCtx.Err())
	}

	// A bare subscription, never registered with the server: Close will
	// not call sub.Close() on it, so only the lifecycle context can
	// unblock the consumer.
	sub, err := db.SubscribeQuery(nil, "?- likes(X, Y)", core.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Drain the initial snapshot so the next Next genuinely blocks.
	snapCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := sub.Next(snapCtx); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := sub.Next(srv.lifeCtx)
		done <- err
	}()

	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Next returned an event after Close, want cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next survived Server.Close: lifecycle context was not cancelled")
	}
	if srv.lifeCtx.Err() == nil {
		t.Fatal("lifecycle context still live after Close")
	}
}

// TestWebhookPumpExitsOnClose drives the same property end to end: a
// registered webhook session's pump goroutine must drop its session
// after Server.Close, leaving no subscription running.
func TestWebhookPumpExitsOnClose(t *testing.T) {
	db := core.New()
	srv := New(db)

	sub, err := db.SubscribeQuery(nil, "?- likes(X, Y)", core.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ss := &subSession{id: sub.ID(), sub: sub, kind: "webhook", goal: "?- likes(X, Y)",
		webhook: "http://127.0.0.1:1/unreachable"}
	if !srv.registerSession(ss) {
		t.Fatal("register refused")
	}
	pumpDone := make(chan struct{})
	go func() {
		srv.deliverWebhook(ss)
		close(pumpDone)
	}()

	// Give the pump its snapshot (delivery fails against the dead sink,
	// which only counts one consecutive error), then shut down.
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case <-pumpDone:
	case <-time.After(10 * time.Second):
		t.Fatal("webhook pump survived Server.Close")
	}
	if got := db.SubscriptionStats().Active; got != 0 {
		t.Fatalf("%d subscriptions still active after Close", got)
	}
}
