package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"videodb/internal/core"
	"videodb/internal/object"
)

// Materialized-view endpoints:
//
//	POST   /v1/views          {"name": "murders", "goal": "?- reach(X, Y)"}
//	GET    /v1/views          — list registered views
//	GET    /v1/views/{name}   — read (maintains the view first)
//	DELETE /v1/views/{name}
//
// Creating and dropping views are statements (serialized with scripts
// and rule definition); reads take the shared lock like queries, and the
// per-view refresh serialization happens inside core.

type viewRequest struct {
	Name string `json:"name"`
	Goal string `json:"goal"`
}

// ViewJSON is the wire form of one view read.
type ViewJSON struct {
	Name           string           `json:"name"`
	Columns        []string         `json:"columns"`
	Rows           [][]object.Value `json:"rows"`
	Mode           string           `json:"mode"`
	AppliedInserts int              `json:"appliedInserts"`
	AppliedDeletes int              `json:"appliedDeletes"`
	Stats          statsJSON        `json:"stats"`
}

func viewJSON(vr *core.ViewResult) ViewJSON {
	out := ViewJSON{
		Name:           vr.Name,
		Columns:        vr.Columns,
		Rows:           vr.Rows,
		Mode:           string(vr.Mode),
		AppliedInserts: vr.AppliedInserts,
		AppliedDeletes: vr.AppliedDeletes,
		Stats: statsJSON{
			Rounds:      vr.Stats.Rounds,
			Derived:     vr.Stats.Derived,
			SolverSteps: vr.Stats.SolverSteps,
			MemoHits:    vr.Stats.MemoHits,
			MemoMisses:  vr.Stats.MemoMisses,
		},
	}
	if out.Columns == nil {
		out.Columns = []string{}
	}
	if out.Rows == nil {
		out.Rows = [][]object.Value{}
	}
	return out
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		infos := s.db.Views()
		s.mu.RUnlock()
		if infos == nil {
			infos = []core.ViewInfo{} // clients must always see "views": []
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"views": infos})
	case http.MethodPost:
		var req viewRequest
		if !decode(w, r, &req) {
			return
		}
		if strings.TrimSpace(req.Name) == "" || strings.TrimSpace(req.Goal) == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing view name or goal"))
			return
		}
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		began := time.Now()
		s.mu.Lock()
		vr, err := s.db.MaterializeContext(ctx, req.Name, req.Goal)
		s.mu.Unlock()
		if err != nil {
			s.metrics.viewErrors.Add(1)
			status := statusFor(r, err)
			if strings.Contains(err.Error(), "already exists") {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		s.metrics.recordView(vr.Mode)
		s.logSlow("view", req.Name+" = "+req.Goal, time.Since(began), &vr.Stats, nil)
		writeJSON(w, http.StatusOK, viewJSON(vr))
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/views/")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing view name"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		began := time.Now()
		s.mu.RLock()
		vr, err := s.db.ViewContext(ctx, name)
		s.mu.RUnlock()
		elapsed := time.Since(began)
		if err != nil {
			if core.IsViewNotFound(err) {
				writeError(w, http.StatusNotFound, err)
				return
			}
			s.metrics.viewErrors.Add(1)
			s.logSlow("view", name, elapsed, nil, err)
			writeError(w, statusFor(r, err), err)
			return
		}
		s.metrics.recordView(vr.Mode)
		s.logSlow("view", name, elapsed, &vr.Stats, nil)
		writeJSON(w, http.StatusOK, viewJSON(vr))
	case http.MethodDelete:
		s.mu.Lock()
		ok := s.db.DropView(name)
		s.mu.Unlock()
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no view %q", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	default:
		methodNotAllowed(w, "GET, DELETE")
	}
}
