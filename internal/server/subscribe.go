package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"videodb/internal/core"
	"videodb/internal/object"
)

// Live subscriptions: the push counterpart of /v1/query. A standing
// VideoQL goal is registered with core.DB.SubscribeQuery and its answer
// deltas are delivered either over a Server-Sent Events stream
// (GET /v1/subscribe) or to a webhook (POST /v1/subscribe).
//
// SSE contract:
//
//   - every frame carries `id:` = the subscription's delta sequence
//     number, so EventSource's automatic Last-Event-ID resume works;
//   - `event: snapshot` frames carry the full answer set (sent first,
//     and again after a drop-resync — replace accumulated state);
//   - `event: delta` frames carry one row with sign +1/-1;
//   - a dropped connection keeps the subscription alive for a grace
//     period: reconnect with ?id=<subscription id> and the stream
//     resumes after the Last-Event-ID header's sequence number.
//
// Webhook delivery POSTs each event as JSON with retry/backoff;
// a subscriber whose endpoint keeps failing is closed.

const (
	// subDetachGrace is how long a detached SSE subscription survives
	// awaiting a resume before it is reaped.
	subDetachGrace = 30 * time.Second

	// webhook delivery tuning.
	webhookAttempts     = 3
	webhookBackoff      = 100 * time.Millisecond
	webhookTimeout      = 5 * time.Second
	webhookMaxConsecErr = 5
)

// WithSubscriptionGrace overrides how long a detached SSE subscription
// awaits a resume before it is closed (tests use short values).
func WithSubscriptionGrace(d time.Duration) Option {
	return func(s *Server) { s.subGrace = d }
}

// subSession is one server-side subscription: the core subscription plus
// its delivery state.
type subSession struct {
	id      uint64
	sub     *core.Subscription
	kind    string // "sse" | "webhook"
	goal    string
	webhook string

	mu       sync.Mutex
	attached bool        // an SSE handler is currently streaming it
	reap     *time.Timer // pending detach-grace reaper, nil when attached
}

// subRegistry tracks the server's sessions. Subscription IDs come from
// the core registry, so sessions and core subscriptions share keys.
type serverSubs struct {
	mu       sync.Mutex
	sessions map[uint64]*subSession
	closed   bool
}

// Close stops every live subscription session (SSE handlers unblock and
// finish, webhook senders stop) and refuses new ones. Call it before
// http.Server.Shutdown: an open event stream otherwise keeps graceful
// shutdown waiting forever.
func (s *Server) Close() {
	if s.admission != nil {
		// Queued waiters are rejected with 503; admitted work keeps its
		// slot and finishes (graceful drain).
		s.admission.close()
	}
	if s.lifeCancel != nil {
		s.lifeCancel() // unblock webhook pumps waiting in Next
	}
	s.subs.mu.Lock()
	s.subs.closed = true
	sessions := make([]*subSession, 0, len(s.subs.sessions))
	for _, ss := range s.subs.sessions {
		sessions = append(sessions, ss)
	}
	s.subs.sessions = nil
	s.subs.mu.Unlock()
	for _, ss := range sessions {
		ss.mu.Lock()
		if ss.reap != nil {
			ss.reap.Stop()
			ss.reap = nil
		}
		ss.mu.Unlock()
		ss.sub.Close()
	}
}

// register adds a session, or refuses if the server is closed.
func (s *Server) registerSession(ss *subSession) bool {
	s.subs.mu.Lock()
	defer s.subs.mu.Unlock()
	if s.subs.closed {
		return false
	}
	if s.subs.sessions == nil {
		s.subs.sessions = make(map[uint64]*subSession)
	}
	s.subs.sessions[ss.id] = ss
	return true
}

func (s *Server) dropSession(id uint64) {
	s.subs.mu.Lock()
	if ss := s.subs.sessions[id]; ss != nil {
		delete(s.subs.sessions, id)
	}
	s.subs.mu.Unlock()
}

func (s *Server) session(id uint64) *subSession {
	s.subs.mu.Lock()
	defer s.subs.mu.Unlock()
	return s.subs.sessions[id]
}

// subEventJSON is the wire form of one subscription event (SSE `data:`
// payload and webhook body). Rows is a pointer so an *empty* snapshot
// still serializes as "rows":[] — omitempty would drop the key and make
// the empty answer indistinguishable from a delta frame's absent field.
type subEventJSON struct {
	ID      uint64            `json:"id"` // subscription id
	Seq     uint64            `json:"seq"`
	Kind    string            `json:"kind"` // "snapshot" | "delta"
	Sign    int               `json:"sign,omitempty"`
	Row     []object.Value    `json:"row,omitempty"`
	Rows    *[][]object.Value `json:"rows,omitempty"`    // snapshots only
	Columns []string          `json:"columns,omitempty"` // snapshots only
}

func wireEvent(ss *subSession, ev core.SubEvent) subEventJSON {
	out := subEventJSON{ID: ss.id, Seq: ev.Seq}
	switch ev.Kind {
	case core.SubSnapshot:
		out.Kind = "snapshot"
		rows := ev.Rows
		if rows == nil {
			rows = [][]object.Value{}
		}
		out.Rows = &rows
		out.Columns = ss.sub.Columns()
	default:
		out.Kind = "delta"
		out.Sign = ev.Sign
		out.Row = ev.Row
	}
	return out
}

// subscribeOptions parses the shared subscription parameters (query
// string or JSON body fields).
func parseSubOptions(queue, policy, rate string) (core.SubOptions, error) {
	var opts core.SubOptions
	if queue != "" {
		n, err := strconv.Atoi(queue)
		if err != nil || n < 1 {
			return opts, fmt.Errorf("bad queue size %q", queue)
		}
		opts.QueueSize = n
	}
	switch policy {
	case "", string(core.SubDropResync):
		opts.Policy = core.SubDropResync
	case string(core.SubDisconnect):
		opts.Policy = core.SubDisconnect
	default:
		return opts, fmt.Errorf("bad policy %q (want %q or %q)", policy, core.SubDropResync, core.SubDisconnect)
	}
	if rate != "" {
		f, err := strconv.ParseFloat(rate, 64)
		if err != nil || f < 0 {
			return opts, fmt.Errorf("bad rate %q", rate)
		}
		opts.MaxPerSec = f
	}
	return opts, nil
}

// handleSubscribe serves /v1/subscribe: GET = SSE stream (new or
// resumed), POST = webhook registration.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleSubscribeSSE(w, r)
	case http.MethodPost:
		s.handleSubscribeWebhook(w, r)
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

// handleSubscribeItem serves /v1/subscribe/{id}: DELETE closes the
// subscription.
func (s *Server) handleSubscribeItem(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		methodNotAllowed(w, "DELETE")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/subscribe/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad subscription id %q", idStr))
		return
	}
	ss := s.session(id)
	if ss == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no subscription %d", id))
		return
	}
	s.dropSession(id)
	ss.sub.Close()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleSubscriptions lists live subscriptions.
func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	s.mu.RLock()
	infos := s.db.Subscriptions()
	s.mu.RUnlock()
	type wireInfo struct {
		core.SubInfo
		Kind     string `json:"kind"`
		Attached bool   `json:"attached"`
	}
	out := make([]wireInfo, 0, len(infos))
	s.subs.mu.Lock()
	for _, info := range infos {
		wi := wireInfo{SubInfo: info}
		if ss := s.subs.sessions[info.ID]; ss != nil {
			wi.Kind = ss.kind
			ss.mu.Lock()
			wi.Attached = ss.attached
			ss.mu.Unlock()
		}
		out = append(out, wi)
	}
	s.subs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]interface{}{"subscriptions": out})
}

// lastEventID parses the SSE resume header (also accepted as a query
// parameter for clients that cannot set headers).
func lastEventID(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) handleSubscribeSSE(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	q := r.URL.Query()

	var ss *subSession
	if idStr := q.Get("id"); idStr != "" {
		// Resume a detached subscription.
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad subscription id %q", idStr))
			return
		}
		ss = s.session(id)
		if ss == nil {
			// Reaped or never existed: the client must subscribe fresh.
			writeError(w, http.StatusNotFound, fmt.Errorf("no subscription %d (resubscribe)", id))
			return
		}
		ss.mu.Lock()
		if ss.attached {
			ss.mu.Unlock()
			writeError(w, http.StatusConflict, fmt.Errorf("subscription %d is already attached", id))
			return
		}
		if ss.reap != nil {
			ss.reap.Stop()
			ss.reap = nil
		}
		ss.attached = true
		ss.mu.Unlock()
		if seq := lastEventID(r); seq > 0 {
			ss.sub.SkipTo(seq)
		}
	} else {
		goal := q.Get("goal")
		if strings.TrimSpace(goal) == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing goal"))
			return
		}
		opts, err := parseSubOptions(q.Get("queue"), q.Get("policy"), q.Get("rate"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Registration runs the initial snapshot evaluation, so it passes
		// through admission like any query; the slot is released before
		// the stream loop — a standing connection must not pin one.
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		// Per-delta evaluation stays under the query-timeout budget even
		// though the connection itself is exempt (see requestCtx).
		opts.RefreshBudget = s.queryTimeout
		s.mu.RLock()
		sub, err := s.db.SubscribeQuery(q["rule"], goal, opts)
		s.mu.RUnlock()
		if err != nil {
			release()
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		ss = &subSession{id: sub.ID(), sub: sub, kind: "sse", goal: goal, attached: true}
		if !s.registerSession(ss) {
			release()
			sub.Close()
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
			return
		}
		release()
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Videodb-Subscription", strconv.FormatUint(ss.id, 10))
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": subscription %d\n\n", ss.id)
	flusher.Flush()

	var buf bytes.Buffer
	for {
		ev, err := ss.sub.Next(r.Context())
		if err != nil {
			if r.Context().Err() != nil {
				// Client went away: detach and keep the subscription for a
				// grace period so a reconnect can resume.
				s.detachForResume(ss)
				return
			}
			// Subscription ended (server close, slow-consumer disconnect,
			// maintenance failure): tell the client not to resume.
			fmt.Fprintf(w, "event: close\ndata: %s\n\n", sseJSON(map[string]string{"error": err.Error()}))
			flusher.Flush()
			s.dropSession(ss.id)
			return
		}
		buf.Reset()
		fmt.Fprintf(&buf, "id: %d\nevent: %s\ndata: %s\n\n",
			ev.Seq, coreKindName(ev.Kind), sseJSON(wireEvent(ss, ev)))
		if _, err := w.Write(buf.Bytes()); err != nil {
			// Mid-write disconnect: same resume semantics as a clean
			// disconnect; the interrupted event re-sends via Last-Event-ID
			// (the client acks only complete frames).
			s.detachForResume(ss)
			return
		}
		flusher.Flush()
		s.metrics.recordSubEvent(ev)
	}
}

func coreKindName(k core.SubEventKind) string {
	if k == core.SubSnapshot {
		return "snapshot"
	}
	return "delta"
}

// sseJSON renders v as a single-line JSON payload (SSE data frames are
// newline-delimited; encoding/json never emits raw newlines).
func sseJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"encode failure"}`)
	}
	return b
}

// detachForResume marks the session detached and arms the grace reaper.
func (s *Server) detachForResume(ss *subSession) {
	grace := s.subGrace
	if grace <= 0 {
		grace = subDetachGrace
	}
	ss.mu.Lock()
	ss.attached = false
	if ss.reap == nil {
		ss.reap = time.AfterFunc(grace, func() {
			ss.mu.Lock()
			stillDetached := !ss.attached
			ss.mu.Unlock()
			if stillDetached {
				s.dropSession(ss.id)
				ss.sub.Close()
			}
		})
	}
	ss.mu.Unlock()
}

// --- Webhook delivery -------------------------------------------------------------

type webhookRequest struct {
	Goal    string   `json:"goal"`
	Rules   []string `json:"rules,omitempty"`
	Webhook string   `json:"webhook"`
	Queue   int      `json:"queue,omitempty"`
	Policy  string   `json:"policy,omitempty"`
	Rate    float64  `json:"rate,omitempty"`
}

func (s *Server) handleSubscribeWebhook(w http.ResponseWriter, r *http.Request) {
	var req webhookRequest
	if !decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Goal) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing goal"))
		return
	}
	u, err := url.Parse(req.Webhook)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("webhook must be an absolute http(s) URL"))
		return
	}
	opts, err := parseSubOptions("", req.Policy, "")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Queue > 0 {
		opts.QueueSize = req.Queue
	}
	if req.Rate > 0 {
		opts.MaxPerSec = req.Rate
	}
	// Registration evaluates the initial snapshot; admission applies. The
	// delivery pump runs below the gate (maintenance, not request work).
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	opts.RefreshBudget = s.queryTimeout
	s.mu.RLock()
	sub, err := s.db.SubscribeQuery(req.Rules, req.Goal, opts)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	ss := &subSession{id: sub.ID(), sub: sub, kind: "webhook", goal: req.Goal, webhook: req.Webhook}
	if !s.registerSession(ss) {
		sub.Close()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	}
	go s.deliverWebhook(ss)
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": ss.id})
}

// deliverWebhook pumps subscription events to the session's endpoint.
// Each event is retried with exponential backoff; webhookMaxConsecErr
// events lost in a row closes the subscription (the endpoint is gone).
func (s *Server) deliverWebhook(ss *subSession) {
	client := &http.Client{Timeout: webhookTimeout}
	consecFails := 0
	for {
		// The server's lifecycle context, not Background: Close must be
		// able to unblock this pump even if the subscription itself is
		// slow to notice it was closed.
		ev, err := ss.sub.Next(s.lifeCtx)
		if err != nil {
			s.dropSession(ss.id)
			return
		}
		if s.postWebhookEvent(client, ss, ev) {
			consecFails = 0
			s.metrics.recordSubEvent(ev)
			continue
		}
		consecFails++
		s.metrics.subWebhookDropped.Add(1)
		if consecFails >= webhookMaxConsecErr {
			s.dropSession(ss.id)
			ss.sub.Close()
			return
		}
	}
}

// postWebhookEvent delivers one event with retry/backoff; it reports
// whether any attempt succeeded (2xx).
func (s *Server) postWebhookEvent(client *http.Client, ss *subSession, ev core.SubEvent) bool {
	body, err := json.Marshal(wireEvent(ss, ev))
	if err != nil {
		return false
	}
	backoff := webhookBackoff
	for attempt := 0; attempt < webhookAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := client.Post(ss.webhook, "application/json", bytes.NewReader(body))
		if err != nil {
			s.metrics.subWebhookRetries.Add(1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return true
		}
		s.metrics.subWebhookRetries.Add(1)
	}
	return false
}

// --- SSE client-side reader --------------------------------------------------------

// SSEEvent is one parsed Server-Sent Events frame.
type SSEEvent struct {
	ID    string
	Event string
	Data  string
}

// ReadSSE parses the next event frame from an SSE stream. Comment lines
// are skipped; io.EOF surfaces when the stream ends. It exists for
// clients of /v1/subscribe (tests and cmd/bench use it) and implements
// just the subset of the SSE grammar the server emits.
func ReadSSE(br *bufio.Reader) (SSEEvent, error) {
	var ev SSEEvent
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if seen {
				return ev, nil
			}
			// Leading blank or comment-only frame: keep scanning.
		case strings.HasPrefix(line, ":"):
			// comment
		case strings.HasPrefix(line, "id:"):
			ev.ID = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
			seen = true
		case strings.HasPrefix(line, "event:"):
			ev.Event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
			seen = true
		case strings.HasPrefix(line, "data:"):
			if ev.Data != "" {
				ev.Data += "\n"
			}
			ev.Data += strings.TrimSpace(strings.TrimPrefix(line, "data:"))
			seen = true
		}
	}
}
