// Package server exposes a video database over HTTP with a small JSON
// API — the "openness to the external world" the paper counts among the
// advantages of building video archives on database technology
// (Section 1). The handler wraps a core.DB; queries run concurrently,
// while statements that change the rule program or the stored data are
// serialized.
//
// Endpoints:
//
//	POST /v1/query    {"query": "?- Interval(G), o1 in G.entities."}
//	POST /v1/explain  {"query": "…"}
//	POST /v1/script   {"script": "interval gi1 { … }. fact(a,b)."}
//	POST /v1/vet      {"script": "…"} — static analysis, no evaluation
//	POST /v1/rules    {"rule": "q(G) :- Interval(G)."}
//	GET  /v1/rules
//	POST /v1/views    {"name": "n", "goal": "?- reach(X, Y)"}
//	GET  /v1/views
//	GET  /v1/views/{name}
//	DELETE /v1/views/{name}
//	GET  /v1/objects
//	GET  /v1/objects/{oid}
//	GET  /v1/subscribe?goal=…        — SSE stream of answer deltas
//	POST /v1/subscribe               — webhook delivery registration
//	DELETE /v1/subscribe/{id}
//	GET  /v1/subscriptions
//	GET  /v1/stats
//	GET  /metrics
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"videodb/internal/constraint"
	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/datalog/analyze"
	"videodb/internal/object"
	"videodb/internal/store"
)

// MaxRequestBytes bounds request bodies (scripts included).
const MaxRequestBytes = 8 << 20

// Server is an http.Handler serving a video database.
type Server struct {
	mu           sync.RWMutex
	db           *core.DB
	mux          *http.ServeMux
	queryTimeout time.Duration // 0 = no per-request deadline

	start         time.Time
	metrics       *metrics
	accessLog     *log.Logger   // nil = no request log
	slowLog       *log.Logger   // nil = no slow-query log
	slowThreshold time.Duration // <= 0 disables the slow-query log
	pprofOn       bool

	// Admission control for evaluation endpoints (see admission.go);
	// nil = unlimited.
	admission *admission

	// Live subscription sessions (see subscribe.go).
	subs     serverSubs
	subGrace time.Duration // detached-SSE resume window; 0 = default

	// lifeCtx is the server's lifecycle: background delivery loops
	// (webhook pumps) block on it and Close cancels it, so no pump can
	// outlive the server even if its subscription is slow to close.
	//videolint:ignore ctxcheck lifecycle root stored once at construction; cancelled by Close — the http.Server.BaseContext pattern, not a request context
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
}

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds each query, explain, and script evaluation by d
// (0 disables the bound). Requests that exceed it are cancelled
// mid-fixpoint and answered with 503, and the connection's own context
// still applies: a client that disconnects cancels its query either way.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// New wraps the database in an HTTP handler.
func New(db *core.DB, opts ...Option) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), start: time.Now(), metrics: &metrics{}}
	//videolint:ignore ctxcheck server lifecycle root, not a request path: Close cancels it
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())
	s.metrics.planCache = func() core.PlanCacheStats {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.db.PlanCacheStats()
	}
	s.metrics.backendStats = func() store.BackendStats {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.db.Store().BackendStats()
	}
	s.metrics.subStats = func() core.SubTotals {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.db.SubscriptionStats()
	}
	for _, o := range opts {
		o(s)
	}
	if s.admission != nil {
		s.metrics.admState = s.admission.occupancy
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/script", s.handleScript)
	s.mux.HandleFunc("/v1/vet", s.handleVet)
	s.mux.HandleFunc("/v1/rules", s.handleRules)
	s.mux.HandleFunc("/v1/objects", s.handleObjects)
	s.mux.HandleFunc("/v1/objects/", s.handleObject)
	s.mux.HandleFunc("/v1/views", s.handleViews)
	s.mux.HandleFunc("/v1/views/", s.handleView)
	s.mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("/v1/subscribe/", s.handleSubscribeItem)
	s.mux.HandleFunc("/v1/subscriptions", s.handleSubscriptions)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.pprofOn {
		s.registerPprof()
	}
	publishExpvar(s.metrics)
	return s
}

// requestCtx derives the evaluation context for one request: the
// request's own context (cancelled when the client disconnects) plus the
// configured per-query deadline. Streaming endpoints are exempt from the
// deadline — a standing subscription is supposed to outlive any single
// evaluation; its per-delta maintenance passes are bounded separately
// (SubOptions.RefreshBudget carries the same timeout).
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout <= 0 || isStreamingPath(r.URL.Path) {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.queryTimeout)
}

// isStreamingPath reports whether the endpoint holds its connection open
// indefinitely by design.
func isStreamingPath(p string) bool {
	return p == "/v1/subscribe" || strings.HasPrefix(p, "/v1/subscribe/")
}

// statusClientGone is the status recorded when the client abandoned the
// request before a response was produced (the nginx 499 convention).
// Nobody receives it — the connection is gone — but metrics and the
// access log must not confuse a bored client with a shed query.
const statusClientGone = 499

// statusFor maps evaluation errors to HTTP statuses. Cancellation
// splits on who gave up: if the request's own context is dead the
// *client* walked away (499 — not the server's failure, not counted as
// shed work), otherwise the server's deadline or budget expired after
// accepting the work (503 — genuinely shed). Everything else is the
// client's query (422). Note the check is against r.Context(), not the
// derived evaluation context: the per-query timeout cancels the derived
// context while the request's own stays alive.
func statusFor(r *http.Request, err error) int {
	if datalog.IsCanceled(err) {
		if r.Context().Err() != nil {
			return statusClientGone
		}
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// ServeHTTP implements http.Handler. Every request passes through the
// logging middleware: the response status is captured, the request
// counter bumped, and — when an access log is configured — one line
// written per request with its latency. A handler that panics is logged
// as 500 (and answered with one when nothing was written yet), then the
// panic continues to net/http, which owns stack logging and connection
// teardown.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	began := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	defer func() {
		rec := recover()
		if rec != nil && rec != http.ErrAbortHandler && sw.status == 0 {
			writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
		s.metrics.requests.Add(1)
		if s.accessLog != nil {
			status := sw.status
			if status == 0 {
				// Nothing was written. That is an implicit 200 only when the
				// client was still there to receive one; a request whose
				// context died went out as a cut connection.
				status = http.StatusOK
				if r.Context().Err() != nil {
					status = statusClientGone
				}
			}
			s.accessLog.Printf("%s %s %d %v", r.Method, r.URL.Path, status,
				time.Since(began).Round(time.Microsecond))
		}
		if rec != nil {
			panic(rec)
		}
	}()
	s.mux.ServeHTTP(sw, r)
}

// --- Wire types -----------------------------------------------------------------

type queryRequest struct {
	Query   string `json:"query"`
	Profile bool   `json:"profile,omitempty"` // run with the engine profiler on
	Lint    bool   `json:"lint,omitempty"`    // attach non-fatal vet diagnostics
}

type scriptRequest struct {
	Script string `json:"script"`
}

type ruleRequest struct {
	Rule string `json:"rule"`
}

// ResultJSON is the wire form of one query result.
type ResultJSON struct {
	Columns     []string             `json:"columns"`
	Rows        [][]object.Value     `json:"rows"`
	Created     []*object.Object     `json:"created,omitempty"`
	Stats       statsJSON            `json:"stats"`
	Profile     *datalog.Profile     `json:"profile,omitempty"`     // present when requested
	Diagnostics []analyze.Diagnostic `json:"diagnostics,omitempty"` // present with {"lint": true}
}

type statsJSON struct {
	Rounds         int    `json:"rounds"`
	Derived        int    `json:"derived"`
	CreatedObjects int    `json:"createdObjects"`
	SolverSteps    int64  `json:"solverSteps,omitempty"`
	MemoHits       uint64 `json:"memoHits,omitempty"`
	MemoMisses     uint64 `json:"memoMisses,omitempty"`
}

func resultJSON(rs *core.ResultSet) ResultJSON {
	out := ResultJSON{
		Columns: rs.Columns,
		Rows:    rs.Rows,
		Created: rs.Created,
		Stats: statsJSON{
			Rounds:         rs.Stats.Rounds,
			Derived:        rs.Stats.Derived,
			CreatedObjects: rs.Stats.Created,
			SolverSteps:    rs.Stats.SolverSteps,
			MemoHits:       rs.Stats.MemoHits,
			MemoMisses:     rs.Stats.MemoMisses,
		},
		Profile: rs.Profile,
	}
	if out.Columns == nil {
		out.Columns = []string{} // ground queries have no variables
	}
	if out.Rows == nil {
		out.Rows = [][]object.Value{}
	}
	return out
}

type errorJSON struct {
	Error string `json:"error"`
}

// --- Handlers -------------------------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.post(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	// Admission comes after the body is consumed: net/http only watches
	// for client disconnects once the body is read, and a queued waiter
	// must notice its client leaving.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	began := time.Now()
	s.mu.RLock()
	var rs *core.ResultSet
	var err error
	if req.Profile {
		rs, err = s.db.QueryProfiledContext(ctx, req.Query)
	} else {
		rs, err = s.db.QueryContext(ctx, req.Query)
	}
	var diags []analyze.Diagnostic
	if err == nil && req.Lint {
		diags = s.db.VetQuery(req.Query)
	}
	s.mu.RUnlock()
	elapsed := time.Since(began)
	if err != nil {
		status := statusFor(r, err)
		s.metrics.recordQuery(elapsed, nil, err, status == statusClientGone)
		s.logSlow("query", req.Query, elapsed, nil, err)
		writeError(w, status, err)
		return
	}
	s.metrics.recordQuery(elapsed, &rs.Stats, nil, false)
	s.metrics.recordVet(diags)
	s.logSlow("query", req.Query, elapsed, &rs.Stats, nil)
	out := resultJSON(rs)
	out.Diagnostics = diags
	writeJSON(w, http.StatusOK, out)
}

// handleVet statically analyzes a script against the database — same
// diagnostics as `videoql vet` — without evaluating anything. Analysis
// never fails a request: a script that does not even parse comes back as
// 200 with a single VQL0001 diagnostic, so clients handle one shape.
func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	var req scriptRequest
	if !s.post(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Script) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing script"))
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.mu.RLock()
	diags, err := s.db.Vet(req.Script)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.metrics.recordVet(diags)
	if diags == nil {
		diags = []analyze.Diagnostic{} // clients must always see "diagnostics": []
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"diagnostics": diags,
		"ok":          !analyze.HasErrors(diags),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.post(w, r, &req) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	s.mu.RLock()
	plan, err := s.db.ExplainContext(ctx, req.Query)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, statusFor(r, err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

func (s *Server) handleScript(w http.ResponseWriter, r *http.Request) {
	var req scriptRequest
	if !s.post(w, r, &req) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	began := time.Now()
	s.mu.Lock()
	results, err := s.db.LoadScriptContext(ctx, req.Script)
	s.mu.Unlock()
	elapsed := time.Since(began)
	if err != nil {
		status := statusFor(r, err)
		s.metrics.recordQuery(elapsed, nil, err, status == statusClientGone)
		s.logSlow("script", req.Script, elapsed, nil, err)
		writeError(w, status, err)
		return
	}
	var sum datalog.RunStats
	out := make([]ResultJSON, len(results))
	for i, rs := range results {
		out[i] = resultJSON(rs)
		sum.Rounds += rs.Stats.Rounds
		sum.Derived += rs.Stats.Derived
		sum.SolverSteps += rs.Stats.SolverSteps
		sum.MemoHits += rs.Stats.MemoHits
		sum.MemoMisses += rs.Stats.MemoMisses
	}
	s.metrics.recordQuery(elapsed, &sum, nil, false)
	s.logSlow("script", req.Script, elapsed, &sum, nil)
	writeJSON(w, http.StatusOK, map[string]interface{}{"results": out})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		prog := s.db.Rules()
		s.mu.RUnlock()
		rules := make([]string, len(prog.Rules))
		for i, rule := range prog.Rules {
			rules[i] = rule.String()
		}
		writeJSON(w, http.StatusOK, map[string][]string{"rules": rules})
	case http.MethodPost:
		var req ruleRequest
		if !decode(w, r, &req) {
			return
		}
		s.mu.Lock()
		err := s.db.DefineRule(req.Rule)
		s.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	type entry struct {
		OID  string `json:"oid"`
		Kind string `json:"kind"`
	}
	oids := s.db.Store().OIDs()
	// Non-nil even when empty: clients must always see "objects": [].
	out := make([]entry, 0, len(oids))
	for _, oid := range oids {
		out = append(out, entry{OID: string(oid), Kind: s.db.Object(oid).Kind().String()})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"objects": out})
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	oid := strings.TrimPrefix(r.URL.Path, "/v1/objects/")
	if oid == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing oid"))
		return
	}
	s.mu.RLock()
	o := s.db.Object(object.OID(oid))
	s.mu.RUnlock()
	if o == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no object %q", oid))
		return
	}
	writeJSON(w, http.StatusOK, o)
}

// StatsResponse merges the store's content statistics (embedded, so its
// fields stay at the top level for existing clients) with the server's
// cumulative engine totals, the process-wide solver-memo state, and
// uptime.
type StatsResponse struct {
	store.Stats
	Engine        engineTotals        `json:"engine"`
	Memo          memoJSON            `json:"memo"`
	PlanCache     core.PlanCacheStats `json:"planCache"`
	Intern        internJSON          `json:"intern"`
	Backend       store.BackendStats  `json:"backend"`
	Subscriptions core.SubTotals      `json:"subscriptions"`
	Admission     AdmissionStats      `json:"admission"`
	Uptime        float64             `json:"uptimeSeconds"`
}

type internJSON struct {
	Values int `json:"values"` // distinct values in the process-wide interner
}

type memoJSON struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hitRate"`
	Entries int     `json:"entries"`
	Flushes uint64  `json:"flushes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, "GET")
		return
	}
	s.mu.RLock()
	st := s.db.Store().Stats()
	pcs := s.db.PlanCacheStats()
	bs := s.db.Store().BackendStats()
	subs := s.db.SubscriptionStats()
	s.mu.RUnlock()
	ms := constraint.MemoSnapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		Stats:  st,
		Engine: s.metrics.totals(),
		Memo: memoJSON{
			Hits:    ms.Hits,
			Misses:  ms.Misses,
			HitRate: ms.HitRate(),
			Entries: ms.Entries,
			Flushes: ms.Flushes,
		},
		PlanCache:     pcs,
		Intern:        internJSON{Values: datalog.InternStats().Values},
		Backend:       bs,
		Subscriptions: subs,
		Admission:     s.admissionStats(),
		Uptime:        time.Since(s.start).Seconds(),
	})
}

// --- Plumbing -------------------------------------------------------------------

func (s *Server) post(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST")
		return false
	}
	return decode(w, r, dst)
}

func decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method not allowed"))
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // headers are sent; nothing left to do on error
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}
