package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Admission control: a per-tenant concurrency limiter with a bounded,
// deadline-aware FIFO wait queue in front of every evaluation endpoint
// (query, vet, explain, script, view create/read, subscription
// registration). The contract, from the client's side:
//
//   - up to MaxConcurrent evaluations per tenant run at once;
//   - the next QueueDepth requests wait their turn in FIFO order,
//     abandoning the queue the moment their request context dies;
//   - anything beyond that is refused immediately with 429 and a
//     Retry-After hint — the server never accepts work it already knows
//     it cannot run. 503 stays reserved for work that was accepted and
//     then shed (deadline expiry mid-evaluation, shutdown).
//
// Tenants are identified by the X-API-Key header when present, else by
// the request's remote address; PerTenant=false collapses everyone into
// one class, making the limits global. Cheap metadata endpoints
// (/v1/rules GET, /v1/objects, /v1/stats, /metrics) stay outside the
// limiter so an overloaded server remains observable.

// AdmissionConfig bounds concurrent evaluation work.
type AdmissionConfig struct {
	// MaxConcurrent is the number of evaluations one tenant may run at
	// once. <= 0 disables admission control entirely.
	MaxConcurrent int

	// QueueDepth is how many requests per tenant may wait for a slot
	// beyond MaxConcurrent; 0 means reject the moment all slots are busy.
	QueueDepth int

	// PerTenant keys the limits by tenant (X-API-Key, else remote host).
	// False applies them to all traffic as one class.
	PerTenant bool

	// RetryAfter is the hint sent with 429 responses; 0 means one second.
	RetryAfter time.Duration
}

// WithAdmission puts the server's evaluation endpoints behind admission
// control. A zero or negative MaxConcurrent leaves the server unlimited.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) {
		if cfg.MaxConcurrent <= 0 {
			s.admission = nil
			return
		}
		if cfg.QueueDepth < 0 {
			cfg.QueueDepth = 0
		}
		if cfg.RetryAfter <= 0 {
			cfg.RetryAfter = time.Second
		}
		s.admission = &admission{
			cfg:     cfg,
			m:       s.metrics,
			tenants: make(map[string]*tenantQueue),
		}
	}
}

// Rejection reasons. errAdmissionQueueFull maps to 429 (the client can
// back off and retry); errAdmissionClosed to 503 (the server is going
// away and queued work will never run).
var (
	errAdmissionQueueFull = errors.New("server at capacity, retry later")
	errAdmissionClosed    = errors.New("server is shutting down")
)

// waiter is one queued request. ready is closed exactly once, after err
// and admitted are final (both guarded by admission.mu), so the waking
// request reads them without further synchronization.
type waiter struct {
	ready    chan struct{}
	err      error // nil = admitted; set before ready closes
	admitted bool  // a slot was transferred to this waiter
}

// tenantQueue is one tenant's slots and FIFO wait line.
type tenantQueue struct {
	inFlight int
	waiters  []*waiter
}

// admission is the limiter shared by all evaluation handlers.
type admission struct {
	cfg AdmissionConfig
	m   *metrics

	mu      sync.Mutex
	tenants map[string]*tenantQueue
	closed  bool
}

// tenantKey classifies one request. The key space is unbounded (one
// entry per API key or source host), but empty tenantQueues are removed
// on release, so resident state tracks live traffic, not history.
func (a *admission) tenantKey(r *http.Request) string {
	if !a.cfg.PerTenant {
		return ""
	}
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// admit acquires an evaluation slot for tenant, waiting in FIFO order
// behind earlier arrivals when all slots are busy. It returns a release
// function (call exactly once, when the evaluation finishes) or an
// error: errAdmissionQueueFull, errAdmissionClosed, or ctx's error if
// the request died while queued.
func (a *admission) admit(ctx context.Context, tenant string) (func(), error) {
	began := time.Now()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, errAdmissionClosed
	}
	tq := a.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		a.tenants[tenant] = tq
	}
	if tq.inFlight < a.cfg.MaxConcurrent {
		tq.inFlight++
		a.mu.Unlock()
		a.m.admAdmitted.Add(1)
		a.m.admWait.observe(time.Since(began))
		return func() { a.release(tenant) }, nil
	}
	if len(tq.waiters) >= a.cfg.QueueDepth {
		a.maybeDropLocked(tenant, tq)
		a.mu.Unlock()
		a.m.admRejected.Add(1)
		return nil, errAdmissionQueueFull
	}
	w := &waiter{ready: make(chan struct{})}
	tq.waiters = append(tq.waiters, w)
	a.mu.Unlock()
	a.m.admQueued.Add(1)

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		a.m.admAdmitted.Add(1)
		a.m.admWait.observe(time.Since(began))
		return func() { a.release(tenant) }, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.admitted {
			// Lost the race: release already handed this waiter a slot.
			// Pass it on rather than strand it.
			a.mu.Unlock()
			a.release(tenant)
			return nil, ctx.Err()
		}
		if w.err != nil {
			// close() rejected this waiter in the same instant.
			a.mu.Unlock()
			return nil, w.err
		}
		if tq := a.tenants[tenant]; tq != nil {
			for i, qw := range tq.waiters {
				if qw == w {
					tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
					break
				}
			}
			a.maybeDropLocked(tenant, tq)
		}
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns one slot: the longest-queued waiter inherits it, or —
// with nobody waiting — the tenant's in-flight count drops and an idle
// tenant's record is removed.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	tq := a.tenants[tenant]
	if tq == nil {
		a.mu.Unlock()
		return
	}
	if len(tq.waiters) > 0 {
		w := tq.waiters[0]
		tq.waiters = tq.waiters[1:]
		w.admitted = true
		close(w.ready) // inFlight unchanged: the slot transfers
		a.mu.Unlock()
		return
	}
	if tq.inFlight > 0 {
		tq.inFlight--
	}
	a.maybeDropLocked(tenant, tq)
	a.mu.Unlock()
}

// maybeDropLocked removes an idle tenant's record. Caller holds mu.
func (a *admission) maybeDropLocked(tenant string, tq *tenantQueue) {
	if tq.inFlight == 0 && len(tq.waiters) == 0 {
		delete(a.tenants, tenant)
	}
}

// close drains the limiter for shutdown: queued waiters are rejected
// (their work never started, so 503 is honest), while already-admitted
// requests keep their slots and release normally.
func (a *admission) close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	for tenant, tq := range a.tenants {
		for _, w := range tq.waiters {
			w.err = errAdmissionClosed
			close(w.ready)
		}
		tq.waiters = nil
		a.maybeDropLocked(tenant, tq)
	}
	a.mu.Unlock()
}

// occupancy snapshots current limiter state for /v1/stats and /metrics.
func (a *admission) occupancy() (inFlight, waiting, tenants int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, tq := range a.tenants {
		inFlight += tq.inFlight
		waiting += len(tq.waiters)
	}
	return inFlight, waiting, len(a.tenants)
}

// AdmissionStats is the admission section of /v1/stats.
type AdmissionStats struct {
	Enabled       bool   `json:"enabled"`
	MaxConcurrent int    `json:"maxConcurrent,omitempty"`
	QueueDepth    int    `json:"queueDepth,omitempty"`
	PerTenant     bool   `json:"perTenant,omitempty"`
	Admitted      uint64 `json:"admitted"`
	Rejected      uint64 `json:"rejected"`
	Queued        uint64 `json:"queued"`
	InFlight      int    `json:"inFlight"`
	Waiting       int    `json:"waiting"`
	Tenants       int    `json:"tenants"`
}

func (s *Server) admissionStats() AdmissionStats {
	st := AdmissionStats{
		Admitted: s.metrics.admAdmitted.Load(),
		Rejected: s.metrics.admRejected.Load(),
		Queued:   s.metrics.admQueued.Load(),
	}
	if s.admission == nil {
		return st
	}
	st.Enabled = true
	st.MaxConcurrent = s.admission.cfg.MaxConcurrent
	st.QueueDepth = s.admission.cfg.QueueDepth
	st.PerTenant = s.admission.cfg.PerTenant
	st.InFlight, st.Waiting, st.Tenants = s.admission.occupancy()
	return st
}

// admit gates one evaluation request through admission control. The
// returned release is never nil; when ok is false the response has
// already been written and the handler must return without evaluating.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.admission == nil {
		return func() {}, true
	}
	release, err := s.admission.admit(r.Context(), s.admission.tenantKey(r))
	if err == nil {
		return release, true
	}
	switch {
	case errors.Is(err, errAdmissionQueueFull):
		secs := int(math.Ceil(s.admission.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, errAdmissionClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		// The request died while queued. Nobody is reading the response,
		// but writing the 499 records the real status in the access log.
		writeError(w, statusClientGone, fmt.Errorf("request abandoned while queued: %w", err))
	}
	return func() {}, false
}
