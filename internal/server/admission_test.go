package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"videodb/internal/core"
	"videodb/internal/object"
)

// admissionTestDB opens a DB on the backend named by VIDEODB_TEST_BACKEND
// (mem by default, segment for the on-disk matrix leg) and applies opts —
// admission behavior must not depend on the storage layout.
func admissionTestDB(t *testing.T, opts ...core.Option) *core.DB {
	t.Helper()
	var db *core.DB
	switch b := os.Getenv("VIDEODB_TEST_BACKEND"); b {
	case "", "mem":
		db = core.New()
	case "segment":
		var err error
		db, err = core.OpenSegment(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown VIDEODB_TEST_BACKEND %q", b)
	}
	for _, o := range opts {
		o(db)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// blockGate returns a core evaluation gate that parks every evaluation
// until unblock is called (requests park *after* HTTP admission, so one
// parked query deterministically pins an admission slot), plus the
// unblock function (idempotent).
func blockGate() (core.Gate, func()) {
	ch := make(chan struct{})
	var once sync.Once
	gate := func(ctx context.Context) (func(), error) {
		select {
		case <-ch:
			return func() {}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return gate, func() { once.Do(func() { close(ch) }) }
}

// admStats fetches the admission section of /v1/stats (which stays
// reachable under load — stats is deliberately outside the limiter).
func admStats(t *testing.T, url string) AdmissionStats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Admission AdmissionStats `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Admission
}

// waitAdm polls /v1/stats until cond holds.
func waitAdm(t *testing.T, url string, what string, cond func(AdmissionStats) bool) AdmissionStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := admStats(t, url)
		if cond(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (last: %+v)", what, admStats(t, url))
	return AdmissionStats{}
}

func newAdmissionServer(t *testing.T, cfg AdmissionConfig, copts ...core.Option) (*Server, *httptest.Server) {
	t.Helper()
	db := admissionTestDB(t, copts...)
	for i := 0; i < 5; i++ {
		if err := db.Relate("e", object.OID(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(db, WithAdmission(cfg))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestAdmissionQueueFullRejects429(t *testing.T) {
	gate, unblock := blockGate()
	defer unblock()
	_, ts := newAdmissionServer(t,
		AdmissionConfig{MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 7 * time.Second},
		core.WithGate(gate))

	results := make(chan int, 2)
	post := func() {
		status, _, err := postQuery(ts.URL, "?- e(A).")
		if err != nil {
			status = -1
		}
		results <- status
	}
	go post() // takes the only slot, parks in the gate
	waitAdm(t, ts.URL, "slot occupied", func(a AdmissionStats) bool { return a.InFlight == 1 })
	go post() // fills the queue
	waitAdm(t, ts.URL, "queue occupied", func(a AdmissionStats) bool { return a.Waiting == 1 })

	// Queue full: rejected up front with 429 and the Retry-After hint.
	body, _ := json.Marshal(map[string]string{"query": "?- e(A)."})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", ra)
	}
	st := admStats(t, ts.URL)
	if st.Rejected != 1 || st.Admitted != 1 || st.Queued != 1 {
		t.Errorf("admission counters = %+v", st)
	}

	// Capacity freed: both accepted requests complete successfully.
	unblock()
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("accepted request %d finished with %d, want 200", i, status)
		}
	}
	waitAdm(t, ts.URL, "drained", func(a AdmissionStats) bool {
		return a.InFlight == 0 && a.Waiting == 0 && a.Tenants == 0
	})
}

func TestAdmissionWaiterAbandonsQueueOnCancel(t *testing.T) {
	gate, unblock := blockGate()
	defer unblock()
	_, ts := newAdmissionServer(t,
		AdmissionConfig{MaxConcurrent: 1, QueueDepth: 2},
		core.WithGate(gate))

	first := make(chan int, 1)
	go func() {
		status, _, _ := postQuery(ts.URL, "?- e(A).")
		first <- status
	}()
	waitAdm(t, ts.URL, "slot occupied", func(a AdmissionStats) bool { return a.InFlight == 1 })

	// Queue a waiter, then kill its request: it must leave the queue
	// without ever being admitted.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]string{"query": "?- e(A)."})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	waiterErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		waiterErr <- err
	}()
	waitAdm(t, ts.URL, "waiter queued", func(a AdmissionStats) bool { return a.Waiting == 1 })
	cancel()
	if err := <-waiterErr; err == nil {
		t.Fatal("cancelled waiter should have failed client-side")
	}
	st := waitAdm(t, ts.URL, "waiter gone", func(a AdmissionStats) bool { return a.Waiting == 0 })
	if st.Admitted != 1 {
		t.Errorf("abandoned waiter must not count as admitted: %+v", st)
	}

	// The abandoned waiter's departure must not leak the slot: when the
	// first request finishes, a new one is admitted immediately.
	unblock()
	if status := <-first; status != http.StatusOK {
		t.Fatalf("first request status = %d", status)
	}
	if status, _, err := postQuery(ts.URL, "?- e(A)."); err != nil || status != http.StatusOK {
		t.Fatalf("post-drain query: status %d, err %v", status, err)
	}
}

// FIFO order is asserted at the limiter level, where admission order is
// observable without racing on HTTP response scheduling.
func TestAdmissionFIFOOrder(t *testing.T) {
	m := &metrics{}
	a := &admission{
		cfg:     AdmissionConfig{MaxConcurrent: 1, QueueDepth: 3, RetryAfter: time.Second},
		m:       m,
		tenants: make(map[string]*tenantQueue),
	}
	ctx := context.Background()
	release0, err := a.admit(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		i := i
		go func() {
			release, err := a.admit(ctx, "")
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				order <- -i
				return
			}
			order <- i
			release()
		}()
		// Admission order is arrival order, so each waiter must be in line
		// before the next arrives.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, waiting, _ := a.occupancy(); waiting == i {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	release0()
	for want := 1; want <= 3; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("admitted waiter %d, want %d (FIFO)", got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d never admitted", want)
		}
	}
	if m.admAdmitted.Load() != 4 || m.admQueued.Load() != 3 || m.admRejected.Load() != 0 {
		t.Errorf("counters: admitted=%d queued=%d rejected=%d",
			m.admAdmitted.Load(), m.admQueued.Load(), m.admRejected.Load())
	}
}

// One tenant saturating its slots must not impede another: per-tenant
// limits give each key its own slot pool and FIFO line.
func TestAdmissionPerTenantIsolation(t *testing.T) {
	gate, unblock := blockGate()
	defer unblock()
	_, ts := newAdmissionServer(t,
		AdmissionConfig{MaxConcurrent: 1, QueueDepth: 0, PerTenant: true},
		core.WithGate(gate))

	post := func(key, query string) (int, error) {
		body, _ := json.Marshal(map[string]string{"query": query})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	aDone := make(chan int, 1)
	go func() {
		status, _ := post("tenant-a", "?- e(A).")
		aDone <- status
	}()
	waitAdm(t, ts.URL, "tenant A in flight", func(a AdmissionStats) bool { return a.InFlight == 1 })

	// Tenant A is saturated: its next request bounces with 429 …
	if status, err := post("tenant-a", "?- e(A)."); err != nil || status != http.StatusTooManyRequests {
		t.Fatalf("tenant A second request: status %d, err %v; want 429", status, err)
	}
	// … while tenant B's slot pool is untouched. Its request is admitted
	// (InFlight reaches 2) even though it then parks in the shared gate.
	bDone := make(chan int, 1)
	go func() {
		status, _ := post("tenant-b", "?- e(A).")
		bDone <- status
	}()
	st := waitAdm(t, ts.URL, "tenant B admitted", func(a AdmissionStats) bool { return a.InFlight == 2 })
	if st.Tenants != 2 {
		t.Errorf("tenant classes = %d, want 2", st.Tenants)
	}

	unblock()
	if status := <-aDone; status != http.StatusOK {
		t.Fatalf("tenant A status = %d", status)
	}
	if status := <-bDone; status != http.StatusOK {
		t.Fatalf("tenant B status = %d", status)
	}
}

// Shutdown must drain, not dump: requests already admitted finish and
// respond 200; waiters whose work never started are rejected with 503.
func TestAdmissionShutdownDrainsAdmitted(t *testing.T) {
	gate, unblock := blockGate()
	defer unblock()
	srv, ts := newAdmissionServer(t,
		AdmissionConfig{MaxConcurrent: 1, QueueDepth: 1},
		core.WithGate(gate))

	admitted := make(chan int, 1)
	go func() {
		status, _, _ := postQuery(ts.URL, "?- e(A).")
		admitted <- status
	}()
	waitAdm(t, ts.URL, "slot occupied", func(a AdmissionStats) bool { return a.InFlight == 1 })

	queued := make(chan int, 1)
	go func() {
		status, _, _ := postQuery(ts.URL, "?- e(A).")
		queued <- status
	}()
	waitAdm(t, ts.URL, "waiter queued", func(a AdmissionStats) bool { return a.Waiting == 1 })

	srv.Close()

	// The queued waiter is rejected promptly — its work never ran.
	select {
	case status := <-queued:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("queued waiter after Close: %d, want 503", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued waiter not rejected on Close")
	}
	// The admitted request keeps its slot and completes normally.
	unblock()
	if status := <-admitted; status != http.StatusOK {
		t.Fatalf("admitted request after Close: %d, want 200", status)
	}
	// And a brand-new request is turned away while shutting down.
	if status, _, err := postQuery(ts.URL, "?- e(A)."); err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("new request after Close: status %d, err %v; want 503", status, err)
	}
}
