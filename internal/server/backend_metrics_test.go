package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"videodb/internal/core"
	"videodb/internal/store/segment"
)

func segmentTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, err := core.OpenSegment(t.TempDir(), segment.WithFlushThreshold(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadScript(`
object o1 { name: "David" }.
object o2 { name: "Philip" }.
in(o1, o2, gi1).
next(gi1, gi2).
next(gi2, gi3).
next(gi3, gi4).
next(gi4, gi5).
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return ts
}

// The metrics endpoint must expose the storage backend and, for the
// segment backend, the segment-file and block-cache counters.
func TestMetricsSegmentBackend(t *testing.T) {
	ts := segmentTestServer(t)

	// Drive at least one read through the disk path so the cache counters
	// are live.
	resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]string{"query": "?- next(X, Y)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	body, _ := scrape(t, ts.URL)
	if !strings.Contains(body, `videodb_store_backend{kind="segment"} 1`) {
		t.Fatalf("backend kind metric missing:\n%s", body)
	}
	if v := promValue(t, body, "videodb_segment_files"); v < 1 {
		t.Errorf("videodb_segment_files = %g, want >= 1", v)
	}
	if v := promValue(t, body, "videodb_segment_facts"); v < 5 {
		t.Errorf("videodb_segment_facts = %g, want >= 5", v)
	}
	hits := promValue(t, body, "videodb_block_cache_hits_total")
	misses := promValue(t, body, "videodb_block_cache_misses_total")
	if hits+misses == 0 {
		t.Error("block cache saw no traffic")
	}
	if promValue(t, body, "videodb_block_cache_budget_bytes") <= 0 {
		t.Error("cache budget not exported")
	}
}

// The mem backend reports its kind but no segment series.
func TestMetricsMemBackend(t *testing.T) {
	ts := testServer(t)
	body, _ := scrape(t, ts.URL)
	if !strings.Contains(body, `videodb_store_backend{kind="mem"} 1`) {
		t.Fatalf("backend kind metric missing:\n%s", body)
	}
	if strings.Contains(body, "videodb_segment_files") {
		t.Error("mem backend exported segment series")
	}
}

// /v1/stats carries the backend block alongside the existing sections.
func TestStatsBackendSection(t *testing.T) {
	ts := segmentTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Backend struct {
			Kind         string `json:"kind"`
			Segments     int    `json:"segments"`
			SegmentFacts int    `json:"segmentFacts"`
			CacheBudget  int64  `json:"cacheBudget"`
		} `json:"backend"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, raw)
	}
	if got.Backend.Kind != "segment" || got.Backend.Segments < 1 || got.Backend.SegmentFacts < 5 || got.Backend.CacheBudget <= 0 {
		t.Fatalf("backend section = %+v\n%s", got.Backend, raw)
	}
}
