package constraint

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property tests for the solver memo. The single invariant that matters:
// memoization is invisible — every verdict with the memo on (first call,
// a miss, and second call, a hit) equals the verdict with the memo off.

func randTerm(r *rand.Rand) Term {
	if r.Intn(2) == 0 {
		return Term{Var: fmt.Sprintf("x%d", r.Intn(3))}
	}
	return Term{Const: float64(r.Intn(4))}
}

func randAtom(r *rand.Rand) Atom {
	ops := []Op{Lt, Le, Eq, Ne, Ge, Gt}
	return Atom{Left: randTerm(r), Op: ops[r.Intn(len(ops))], Right: randTerm(r)}
}

func randConj(r *rand.Rand, maxAtoms int) Conj {
	c := make(Conj, r.Intn(maxAtoms+1))
	for i := range c {
		c[i] = randAtom(r)
	}
	return c
}

func randFormula(r *rand.Rand) Formula {
	f := make(Formula, r.Intn(3))
	for i := range f {
		f[i] = randConj(r, 3)
	}
	return f
}

func randSetConj(r *rand.Rand) SetConj {
	elems := []string{"a", "b", "c"}
	vars := []string{"X", "Y", "Z"}
	randSetTerm := func() SetTerm {
		if r.Intn(2) == 0 {
			return SetVar(vars[r.Intn(len(vars))])
		}
		lit := make([]string, r.Intn(3))
		for i := range lit {
			lit[i] = elems[r.Intn(len(elems))]
		}
		return SetLit(lit...)
	}
	c := make(SetConj, r.Intn(4))
	for i := range c {
		c[i] = Subset(randSetTerm(), randSetTerm())
	}
	return c
}

// TestMemoNeverChangesVerdict compares Satisfiable and Entails verdicts
// (dense order and set order) across memo-off, memo-miss, and memo-hit
// evaluations of the same random inputs.
func TestMemoNeverChangesVerdict(t *testing.T) {
	defer SetMemoEnabled(SetMemoEnabled(true))
	ResetMemo()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		f, g := randFormula(r), randFormula(r)
		sc, sg := randSetConj(r), randSetConj(r)

		SetMemoEnabled(false)
		wantSat := f.Satisfiable()
		wantEnt := f.Entails(g)
		wantSetSat := sc.Satisfiable()
		wantSetEnt := sc.Entails(sg)

		SetMemoEnabled(true)
		for pass, label := range []string{"miss", "hit"} {
			if got := f.Satisfiable(); got != wantSat {
				t.Fatalf("case %d (%s): Satisfiable(%s) = %v with memo, %v without", i, label, f, got, wantSat)
			}
			if got := f.Entails(g); got != wantEnt {
				t.Fatalf("case %d (%s): (%s) Entails (%s) = %v with memo, %v without", i, label, f, g, got, wantEnt)
			}
			if got := sc.Satisfiable(); got != wantSetSat {
				t.Fatalf("case %d (%s): set Satisfiable(%s) = %v with memo, %v without", i, label, sc, got, wantSetSat)
			}
			if got := sc.Entails(sg); got != wantSetEnt {
				t.Fatalf("case %d (%s): set (%s) Entails (%s) = %v with memo, %v without", i, label, sc, sg, got, wantSetEnt)
			}
			_ = pass
		}
	}
	if s := MemoSnapshot(); s.Hits == 0 {
		t.Fatal("property test never hit the memo — keys are not stable")
	}
}

// TestMemoKeyCanonical checks that keys are order-insensitive where the
// semantics are (atoms within a conjunction, disjuncts within a formula)
// and collision-free where they must be (true vs false, variables whose
// names embed digits or separator-adjacent characters).
func TestMemoKeyCanonical(t *testing.T) {
	a := Atom{Left: Term{Var: "x"}, Op: Lt, Right: Term{Const: 1}}
	b := Atom{Left: Term{Var: "y"}, Op: Ge, Right: Term{Const: 2}}
	if conjKey(Conj{a, b}) != conjKey(Conj{b, a}) {
		t.Error("conjKey is order-sensitive")
	}
	c1, c2 := Conj{a}, Conj{b}
	if k1, k2 := string(formulaKeyTo(nil, Formula{c1, c2})), string(formulaKeyTo(nil, Formula{c2, c1})); k1 != k2 {
		t.Error("formulaKey is order-sensitive")
	}

	// Regression: the empty formula (false) and the formula of one empty
	// conjunct (true) must not share a key.
	kFalse := string(formulaKeyTo(nil, Formula{}))
	kTrue := string(formulaKeyTo(nil, Formula{Conj{}}))
	if kFalse == kTrue {
		t.Fatal("true and false collide in formulaKey")
	}

	// One conjunction of two atoms must not collide with two single-atom
	// disjuncts of the same atoms.
	kConj := string(formulaKeyTo(nil, Formula{Conj{a, b}}))
	kDisj := string(formulaKeyTo(nil, Formula{Conj{a}, Conj{b}}))
	if kConj == kDisj {
		t.Fatal("conjunction and disjunction of the same atoms collide")
	}

	// Sorted 2-atom fast path agrees with the general sorted path.
	c3 := Conj{a, b, Atom{Left: Term{Var: "z"}, Op: Ne, Right: Term{Const: 3}}}
	if conjKey(c3) != conjKey(Conj{c3[2], c3[0], c3[1]}) {
		t.Error("3-atom conjKey is order-sensitive")
	}
}

// TestMemoBounded checks the generation-clear: the tables never exceed
// the configured limit and clearing is counted.
func TestMemoBounded(t *testing.T) {
	defer SetMemoEnabled(SetMemoEnabled(true))
	defer SetMemoLimit(0)
	ResetMemo()
	SetMemoLimit(64)
	SetMemoEnabled(true)
	for i := 0; i < 1000; i++ {
		c := Conj{{Left: Term{Var: "x"}, Op: Lt, Right: Term{Const: float64(i)}}}
		Formula{c}.Satisfiable()
	}
	s := MemoSnapshot()
	if s.Flushes == 0 {
		t.Fatalf("expected generation clears, got stats %+v", s)
	}
	if s.Entries > 3*64 {
		t.Fatalf("tables exceed limit: %+v", s)
	}
}
