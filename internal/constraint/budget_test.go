package constraint

import (
	"errors"
	"testing"
)

func TestNilBudgetIsFree(t *testing.T) {
	var b *Budget
	for i := 0; i < 10; i++ {
		if err := b.Spend(1 << 40); err != nil {
			t.Fatalf("nil budget Spend: %v", err)
		}
	}
}

func TestUnlimitedBudgetNeverExhausts(t *testing.T) {
	b := NewBudget(0, nil)
	if err := b.Spend(1 << 40); err != nil {
		t.Fatalf("unlimited budget Spend: %v", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	b := NewBudget(10, nil)
	if err := b.Spend(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := b.Spend(1); !errors.Is(err, ErrBudget) {
		t.Fatalf("over budget err = %v, want ErrBudget", err)
	}
}

func TestBudgetCancellationCheck(t *testing.T) {
	boom := errors.New("client went away")
	calls := 0
	b := NewBudget(0, func() error {
		calls++
		return boom
	})
	// The check fires within one budgetCheckInterval of steps, not on
	// every Spend.
	var got error
	for i := 0; i < budgetCheckInterval+1 && got == nil; i++ {
		got = b.Spend(1)
	}
	if !errors.Is(got, boom) {
		t.Fatalf("check error = %v, want %v", got, boom)
	}
	if calls != 1 {
		t.Errorf("check called %d times, want 1", calls)
	}
}

func TestFormulaEntailsWithinBudget(t *testing.T) {
	prev := SetMemoEnabled(false)
	defer SetMemoEnabled(prev)

	// A multi-variable entailment that exercises the negation search.
	f := FromAtom(NewAtom(V("x"), Lt, V("y"))).And(FromAtom(NewAtom(V("y"), Lt, V("z"))))
	g := FromAtom(NewAtom(V("x"), Lt, V("z")))

	ok, err := f.EntailsWithin(g, NewBudget(0, nil))
	if err != nil || !ok {
		t.Fatalf("unlimited EntailsWithin = %v, %v; want true", ok, err)
	}
	if ok != f.Entails(g) {
		t.Error("budgeted and unbudgeted verdicts diverge")
	}
	if _, err := f.EntailsWithin(g, NewBudget(1, nil)); !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget err = %v, want ErrBudget", err)
	}
}

func TestFormulaSatisfiableWithinBudget(t *testing.T) {
	prev := SetMemoEnabled(false)
	defer SetMemoEnabled(prev)

	f := FromAtom(VarCmp("x", Gt, 0)).And(FromAtom(VarCmp("x", Lt, 10)))
	ok, err := f.SatisfiableWithin(NewBudget(0, nil))
	if err != nil || !ok {
		t.Fatalf("SatisfiableWithin = %v, %v; want true", ok, err)
	}
	if _, err := f.SatisfiableWithin(NewBudget(1, nil)); !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget err = %v, want ErrBudget", err)
	}
}

func TestSetConjWithinBudget(t *testing.T) {
	prev := SetMemoEnabled(false)
	defer SetMemoEnabled(prev)

	c := SetConj{Member("a", "X"), Subset(SetVar("X"), SetVar("Y"))}
	g := SetConj{Member("a", "Y")}
	ok, err := c.EntailsWithin(g, NewBudget(0, nil))
	if err != nil || !ok {
		t.Fatalf("EntailsWithin = %v, %v; want true", ok, err)
	}
	if ok != c.Entails(g) {
		t.Error("budgeted and unbudgeted verdicts diverge")
	}
	if _, err := c.SatisfiableWithin(NewBudget(1, nil)); !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget err = %v, want ErrBudget", err)
	}
}

// TestMemoHitIsFree: with the memo on, a cached verdict must not charge
// the budget — a warm server answers repeated constraint checks without
// burning per-request step budgets.
func TestMemoHitIsFree(t *testing.T) {
	prev := SetMemoEnabled(true)
	defer SetMemoEnabled(prev)
	ResetMemo()

	c := Conj{VarCmp("q", Gt, 1), VarCmp("q", Lt, 5)}
	if _, err := conjSatisfiableB(c, nil); err != nil { // warm the memo
		t.Fatal(err)
	}
	b := NewBudget(1, nil)
	if _, err := conjSatisfiableB(c, b); err != nil {
		t.Fatalf("memo hit charged the budget: %v", err)
	}
}
